// Package bench is the benchmark harness that regenerates every
// figure/table of the paper's evaluation (see DESIGN.md experiment
// index). Run with:
//
//	go test -bench=. -benchmem
//
// Benchmark families:
//
//	BenchmarkFig7/*   — E1: per-network inference latency on the three
//	                    CIM designs + the GPU baseline; the reported
//	                    custom metrics ns/inference and speedup-vs-
//	                    baseline are the Fig. 7 series.
//	BenchmarkFig8/*   — E2: per-network energy; reported metric
//	                    pJ/inference and norm-energy are the Fig. 8
//	                    series.
//	BenchmarkStep/*   — E5: single-array XNOR+Popcount step through the
//	                    functional analog crossbar under both mappings.
//	BenchmarkWDM/*    — E6: oPCM MMM throughput vs wavelength count.
//	BenchmarkBitops/* — the software kernel floor (packed XNOR+popcount).
package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/eval"
	"einsteinbarrier/internal/gpu"
	"einsteinbarrier/internal/robust"
	"einsteinbarrier/internal/serve"
	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/tensor"
	"einsteinbarrier/internal/trace"
)

// benchReport caches one full evaluation for the Fig. 7/8 benches.
var benchReport *eval.Report

func report(b *testing.B) *eval.Report {
	b.Helper()
	if benchReport == nil {
		rep, err := eval.Run(eval.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchReport = rep
	}
	return benchReport
}

// BenchmarkFig7 regenerates the latency figure: for every network and
// design, the simulator prices one inference; the emitted metrics are
// the figure series.
func BenchmarkFig7(b *testing.B) {
	cfg := eval.DefaultConfig()
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		b.Fatal(err)
	}
	rep := report(b)
	for _, nr := range rep.SortedByName() {
		model, err := bnn.NewModel(nr.Network, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
			d := d
			b.Run(fmt.Sprintf("%s/%v", nr.Network, d), func(b *testing.B) {
				var lat float64
				for i := 0; i < b.N; i++ {
					c, err := compiler.Compile(model, cfg.Arch, d)
					if err != nil {
						b.Fatal(err)
					}
					r, err := simulator.Run(c)
					if err != nil {
						b.Fatal(err)
					}
					lat = r.LatencyNs
				}
				b.ReportMetric(lat, "ns/inference")
				b.ReportMetric(nr.LatBaseline/lat, "speedup-vs-baseline")
			})
		}
		b.Run(fmt.Sprintf("%s/Baseline-GPU", nr.Network), func(b *testing.B) {
			g := gpu.DefaultModel()
			var lat float64
			for i := 0; i < b.N; i++ {
				lat = g.InferenceLatencyNs(model)
			}
			b.ReportMetric(lat, "ns/inference")
			b.ReportMetric(nr.LatBaseline/lat, "speedup-vs-baseline")
		})
	}
}

// BenchmarkFig8 regenerates the energy figure.
func BenchmarkFig8(b *testing.B) {
	cfg := eval.DefaultConfig()
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		b.Fatal(err)
	}
	rep := report(b)
	for _, nr := range rep.SortedByName() {
		model, err := bnn.NewModel(nr.Network, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
			d := d
			b.Run(fmt.Sprintf("%s/%v", nr.Network, d), func(b *testing.B) {
				var e float64
				for i := 0; i < b.N; i++ {
					c, err := compiler.Compile(model, cfg.Arch, d)
					if err != nil {
						b.Fatal(err)
					}
					r, err := simulator.Run(c)
					if err != nil {
						b.Fatal(err)
					}
					e = r.EnergyPJ()
				}
				b.ReportMetric(e, "pJ/inference")
				b.ReportMetric(e/nr.EnergyBaseline, "norm-energy")
			})
		}
	}
}

// BenchmarkStep regenerates E5: one XNOR+Popcount pass of an n×m layer
// through the functional analog crossbar under each mapping — the §III
// "n× fewer steps" microbenchmark, measured in real simulated work.
func BenchmarkStep(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{16, 64, 128, 256} {
		const m = 128
		weights := bitops.NewMatrix(n, m)
		for r := 0; r < n; r++ {
			for c := 0; c < m; c++ {
				weights.Set(r, c, rng.Intn(2) == 1)
			}
		}
		x := bitops.NewVector(m)
		for i := 0; i < m; i++ {
			if rng.Intn(2) == 1 {
				x.Set(i)
			}
		}
		b.Run(fmt.Sprintf("TacitMap/n=%d", n), func(b *testing.B) {
			cfg := crossbar.DefaultConfig(device.EPCM)
			mapped, err := core.MapTacit(weights, cfg)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]int, mapped.Plan().N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mapped.ExecuteInto(x, out); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(mapped.Plan().SingleArrayStepsPerInput()), "array-steps")
		})
		b.Run(fmt.Sprintf("CustBinaryMap/n=%d", n), func(b *testing.B) {
			mapped, err := core.MapCust(weights, crossbar.DefaultDiffConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mapped.Execute(x); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(mapped.Plan().SingleArrayStepsPerInput()), "array-steps")
		})
	}
}

// BenchmarkWDM regenerates E6: functional MMM over K wavelengths on one
// oPCM array — work per activation grows K× while the activation count
// stays constant.
func BenchmarkWDM(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	cfg := crossbar.DefaultConfig(device.OPCM)
	cfg.Rows, cfg.Cols = 128, 64
	cfg.ADCBits = 8
	arr, err := crossbar.NewArray(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := bitops.NewMatrix(cfg.Rows, cfg.Cols)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			m.Set(r, c, rng.Intn(2) == 1)
		}
	}
	if err := arr.Program(m); err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		inputs := make([]*bitops.Vector, k)
		for i := range inputs {
			inputs[i] = bitops.NewVector(cfg.Rows)
			for r := 0; r < cfg.Rows; r++ {
				if rng.Intn(2) == 1 {
					inputs[i].Set(r)
				}
			}
		}
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			dst := make([][]int, k)
			for i := range dst {
				dst[i] = make([]int, cfg.Cols)
			}
			arr.ResetStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := arr.MMMInto(inputs, dst); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s := arr.Stats()
			b.ReportMetric(float64(s.WavelengthOps)/float64(b.N), "wavelength-ops/activation")
		})
	}
}

// BenchmarkCalibration is the regression gate's clock: a fixed,
// dependency-free integer workload (splitmix64 over 64Ki steps) whose
// ns/op tracks raw host speed. cmd/benchgate divides every gated
// benchmark's ns/op by this before comparing against
// bench_baseline.json, so a uniformly slower CI runner does not read as
// a regression — only changes relative to the machine do.
func BenchmarkCalibration(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		x := uint64(0x9e3779b97f4a7c15)
		for j := 0; j < 1<<16; j++ {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			sink ^= z ^ (z >> 31)
		}
	}
	if sink == 42 {
		b.Log(sink) // defeat dead-code elimination
	}
}

// BenchmarkBitops measures the packed software kernel (the GPU/CPU
// reference floor for Eq. (1)).
func BenchmarkBitops(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range []int{128, 1024, 8192} {
		x := bitops.NewVector(m)
		w := bitops.NewVector(m)
		for i := 0; i < m; i++ {
			if rng.Intn(2) == 1 {
				x.Set(i)
			}
			if rng.Intn(2) == 1 {
				w.Set(i)
			}
		}
		b.Run(fmt.Sprintf("XnorPopcount/m=%d", m), func(b *testing.B) {
			b.SetBytes(int64(m / 8))
			for i := 0; i < b.N; i++ {
				_ = bitops.XnorPopcount(x, w)
			}
		})
	}
	w := bitops.NewMatrix(256, 1024)
	for r := 0; r < 256; r++ {
		for c := 0; c < 1024; c++ {
			w.Set(r, c, rng.Intn(2) == 1)
		}
	}
	x := bitops.NewVector(1024)
	for i := 0; i < 1024; i++ {
		if rng.Intn(2) == 1 {
			x.Set(i)
		}
	}
	dst := make([]int, 256)
	b.Run("BipolarMatVec/256x1024", func(b *testing.B) {
		b.SetBytes(256 * 1024 / 8)
		for i := 0; i < b.N; i++ {
			w.BipolarMatVecInto(x, dst)
		}
	})
	b.Run("XnorPopcountAllInto/256x1024", func(b *testing.B) {
		b.SetBytes(256 * 1024 / 8)
		for i := 0; i < b.N; i++ {
			w.XnorPopcountAllInto(x, dst)
		}
	})
	b.Run("Transpose/256x1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = w.Transpose()
		}
	})
}

// BenchmarkBitBatch measures the batch-major bit-parallel path (E10):
// 64 samples per machine word through pack/unpack, the fused
// XNOR+popcount+sign batch kernel, and the full model forward. The
// ns/sample metric is the per-inference cost at lane width 64; compare
// against BenchmarkBitops (one sample per call) and the serial64 runs
// for the bit-parallel speedup.
func BenchmarkBitBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	const feat, lanes = 1024, 64
	samples := make([]*bitops.Vector, lanes)
	for s := range samples {
		samples[s] = bitops.NewVector(feat)
		for f := 0; f < feat; f++ {
			if rng.Intn(2) == 1 {
				samples[s].Set(f)
			}
		}
	}
	batch := bitops.PackSamples(samples)
	b.Run(fmt.Sprintf("PackSamples/%dx%d", feat, lanes), func(b *testing.B) {
		b.SetBytes(int64(feat * lanes / 8))
		for i := 0; i < b.N; i++ {
			batch = bitops.PackSamplesInto(samples, batch)
		}
	})
	w := bitops.NewMatrix(1024, feat)
	thresh := make([]int, 1024)
	for r := 0; r < 1024; r++ {
		thresh[r] = rng.Intn(65) - 32
		for c := 0; c < feat; c++ {
			w.Set(r, c, rng.Intn(2) == 1)
		}
	}
	out := bitops.NewBitBatch(1024, lanes)
	var scr bitops.BatchScratch
	b.Run(fmt.Sprintf("BipolarSignBatch/1024x%dx%d", feat, lanes), func(b *testing.B) {
		b.SetBytes(int64(1024 * feat / 8))
		for i := 0; i < b.N; i++ {
			out = w.BipolarSignBatchInto(batch, thresh, out, &scr)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/lanes, "ns/sample")
	})
	for _, name := range []string{"MLP-S", "CNN-S"} {
		model, err := bnn.NewModel(name, 1)
		if err != nil {
			b.Fatal(err)
		}
		xs := make([]*tensor.Float, lanes)
		for i := range xs {
			xs[i] = tensor.NewFloat(model.InputShape...)
			for j := range xs[i].Data() {
				xs[i].Data()[j] = rng.NormFloat64()
			}
		}
		b.Run(fmt.Sprintf("InferBatchBits/%s/batch=%d", name, lanes), func(b *testing.B) {
			model.InferBatchBits(xs) // warm model-owned scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.InferBatchBits(xs)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/lanes, "ns/sample")
		})
	}
}

// BenchmarkPipeline regenerates the batch-throughput extension: the
// tile-level pipelined engine streams B inferences through every
// design's stage pipeline (including the registry-added MLC-ePCM and
// wide-K designs). The reported inf/s metric is the achieved
// steady-state throughput of the simulated hardware; ns/op measures the
// engine itself.
func BenchmarkPipeline(b *testing.B) {
	cfg := eval.DefaultConfig()
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		b.Fatal(err)
	}
	designs := []arch.Design{
		arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier,
		arch.MLCEPCM, arch.EinsteinBarrierK64,
	}
	for _, network := range []string{"CNN-S", "CNN-L", "MLP-L"} {
		model, err := bnn.NewModel(network, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range designs {
			c, err := compiler.Compile(model, cfg.Arch, d)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := simulator.NewEngine(c)
			if err != nil {
				b.Fatal(err)
			}
			for _, batch := range []int{1, 16, 256} {
				b.Run(fmt.Sprintf("%s/%v/B=%d", network, d, batch), func(b *testing.B) {
					var br *sim.BatchResult
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						var err error
						if br, err = eng.RunBatch(batch); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(br.ThroughputPerSec, "inf/s")
					b.ReportMetric(br.SteadyStatePerSec, "inf/s-ceiling")
					b.ReportMetric(br.LatencyNs, "ns/inference")
				})
			}
		}
	}
}

// BenchmarkPlacement measures the placement IR end to end: for each
// placer the model is compiled (placement included) and a batch is
// scheduled through the pipeline engine. ns/op is the compile+schedule
// cost; the emitted metrics are the placement-comparison table's
// essentials — achieved inf/s, NoC stall per batch, and the layout's
// tile footprint. One co-location case prices a two-model shared
// fabric (CompileSet + EngineSet) with its interference wait.
func BenchmarkPlacement(b *testing.B) {
	cfg := eval.DefaultConfig()
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	for _, network := range []string{"CNN-L", "MLP-L"} {
		model, err := bnn.NewModel(network, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		for _, placer := range []compiler.Placer{
			compiler.GreedyPlacer{}, compiler.MeshPlacer{}, compiler.ShardPlacer{},
		} {
			b.Run(fmt.Sprintf("%s/%s", network, placer.Name()), func(b *testing.B) {
				var br *sim.BatchResult
				var tiles int
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c, err := compiler.CompileWith(model, cfg.Arch, arch.EinsteinBarrier,
						compiler.Options{Placer: placer})
					if err != nil {
						b.Fatal(err)
					}
					eng, err := simulator.NewEngine(c)
					if err != nil {
						b.Fatal(err)
					}
					if br, err = eng.RunBatch(batch); err != nil {
						b.Fatal(err)
					}
					tiles = c.Placement.TotalTiles(cfg.Arch)
				}
				b.ReportMetric(br.ThroughputPerSec, "inf/s")
				b.ReportMetric(br.LinkWaitNs, "linkwait-ns")
				b.ReportMetric(float64(tiles), "tiles")
			})
		}
	}
	b.Run("colocate/CNN-L+MLP-M/mesh", func(b *testing.B) {
		m1, err := bnn.NewModel("CNN-L", cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		m2, err := bnn.NewModel("MLP-M", cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		var sr *sim.SetResult
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cs, err := compiler.CompileSet([]*bnn.Model{m1, m2}, cfg.Arch,
				arch.EinsteinBarrier, compiler.SetOptions{Placer: compiler.MeshPlacer{}})
			if err != nil {
				b.Fatal(err)
			}
			es, err := simulator.NewEngineSet(cs)
			if err != nil {
				b.Fatal(err)
			}
			if sr, err = es.RunSet(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(sr.AggregatePerSec, "inf/s")
		b.ReportMetric(sr.FairnessJain, "jain")
		b.ReportMetric(sr.InterferenceWaitNs, "interference-ns")
	})
}

// BenchmarkPlacerSearch measures the optimizing placer at its default
// step count: a full simulated-annealing search over MLP-L layouts with
// the pipeline engine as the objective, every run sharing one
// fingerprint-keyed evaluation cache (the repeated-search pattern of
// ComparePlacements and serve recompilation — search is deterministic,
// so revisited layouts are priced exactly once across the whole
// benchmark). steps/s is the candidate-evaluation rate, cache-hit-% the
// evaluator's cumulative hit rate (the acceptance floor is ≥50%), and
// inf/s the searched layout's engine-measured objective.
func BenchmarkPlacerSearch(b *testing.B) {
	cfg := eval.DefaultConfig()
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	pe, err := simulator.PlacementEvaluator(batch)
	if err != nil {
		b.Fatal(err)
	}
	model, err := bnn.NewModel("MLP-L", cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	search := func() *compiler.SearchPlacer {
		sp, err := compiler.NewSearchPlacer(model, cfg.Arch, arch.EinsteinBarrier, pe,
			compiler.SearchOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := compiler.CompileWith(model, cfg.Arch, arch.EinsteinBarrier,
			compiler.Options{Placer: sp}); err != nil {
			b.Fatal(err)
		}
		return sp
	}
	search() // warm the shared cache, untimed
	b.ReportAllocs()
	b.ResetTimer()
	var sp *compiler.SearchPlacer
	for i := 0; i < b.N; i++ {
		sp = search()
	}
	st := sp.Stats()
	b.ReportMetric(float64(b.N*st.Steps)/b.Elapsed().Seconds(), "steps/s")
	b.ReportMetric(100*pe.HitRate(), "cache-hit-%")
	b.ReportMetric(st.BestScore, "inf/s")
}

// BenchmarkServe measures the online serving subsystem end to end:
// closed-loop clients stream requests through the admission queue and
// the dynamic batcher into backend replicas. ns/op is the wall-clock
// cost per served request; the req/s and mean-batch metrics show what
// the scheduling policy achieved, and sim-inf/s is the per-batch
// accelerator pricing of the stream — the online counterpart of the
// offline BenchmarkPipeline numbers, which have no queueing, batching
// or reply overhead.
func BenchmarkServe(b *testing.B) {
	model, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		b.Fatal(err)
	}
	inputs := serve.SyntheticInputs(784, 32, 9)
	for _, maxBatch := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("Software/MLP-S/maxB=%d", maxBatch), func(b *testing.B) {
			backend, err := serve.NewSoftwareBackend(model, 0)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := eval.Pipeline(eval.DefaultConfig(), model, arch.EinsteinBarrier)
			if err != nil {
				b.Fatal(err)
			}
			pricer, err := serve.NewPricer(eng)
			if err != nil {
				b.Fatal(err)
			}
			s, err := serve.New(serve.Config{
				Backend:  backend,
				MaxBatch: maxBatch,
				MaxWait:  100 * time.Microsecond,
				Pricer:   pricer,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			rep, err := serve.Run(s, serve.LoadConfig{
				Clients: 2 * maxBatch, Requests: b.N, Seed: 9, Inputs: inputs,
			})
			b.StopTimer()
			s.Stop()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.AchievedPerSec, "req/s")
			b.ReportMetric(rep.Stats.MeanBatch, "mean-batch")
			b.ReportMetric(rep.Stats.Latency.P99*1e6, "p99-ns")
			if sim := rep.Stats.Sim; sim != nil {
				b.ReportMetric(sim.PerSec, "sim-inf/s")
			}
		})
	}
	b.Run("Hardware/MLP-S/maxB=4", func(b *testing.B) {
		hw, err := serve.NewHardwareBackend(model, robust.DefaultConfig(device.EPCM))
		if err != nil {
			b.Fatal(err)
		}
		s, err := serve.New(serve.Config{
			Backend:  hw,
			MaxBatch: 4,
			MaxWait:  100 * time.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		rep, err := serve.Run(s, serve.LoadConfig{
			Clients: 8, Requests: b.N, Seed: 9, Inputs: inputs,
		})
		b.StopTimer()
		s.Stop()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.AchievedPerSec, "req/s")
		b.ReportMetric(rep.Stats.MeanBatch, "mean-batch")
	})
}

// BenchmarkLifetime measures the device-lifetime machinery. Probe is
// the steady-state hot path the loop adds to serving — one canary
// evaluation of a hardware replica — and is per-op stable, so it is
// the gated entry. The Loop/* sub-benchmarks run the whole
// detect/drain/recalibrate/return cycle end to end; their per-request
// cost depends on how many recalibrations b.N happens to trigger, so
// they are smoke-only (recals and recal-pJ report the repair work the
// stream triggered at the configured wear rate).
func BenchmarkLifetime(b *testing.B) {
	model, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		b.Fatal(err)
	}
	hw := robust.DefaultConfig(device.EPCM)
	hw.Array.EPCM.ReadNoiseSigma = 0
	hw.Array.Seed = 7
	canary, err := serve.NewCanarySet(model, serve.SyntheticInputs(784, 16, 2))
	if err != nil {
		b.Fatal(err)
	}
	inputs := serve.SyntheticInputs(784, 32, 9)

	b.Run("Probe/MLP-S", func(b *testing.B) {
		backend, err := serve.NewHardwareBackend(model, hw)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := backend.NewReplica()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := canary.Evaluate(rep); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, mode := range []struct {
		name     string
		fallback bool
	}{{"Loop/Canary/MLP-S", false}, {"Loop/Fallback/MLP-S", true}} {
		b.Run(mode.name, func(b *testing.B) {
			backend, err := serve.NewHardwareBackend(model, hw)
			if err != nil {
				b.Fatal(err)
			}
			life := &serve.LifetimeConfig{
				// ~80 device-seconds per batch of 4: aggressive enough
				// that the 120 s drift horizon recurs throughout b.N.
				Clock:       serve.BatchClock{SecondsPerSample: 20},
				Canary:      canary,
				CanaryEvery: 3,
				Floor:       0.99,
				FlagAfter:   2,
			}
			if mode.fallback {
				life.Fallback = model
			}
			s, err := serve.New(serve.Config{
				Backend:  backend,
				MaxBatch: 4,
				MaxWait:  100 * time.Microsecond,
				Lifetime: life,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			rep, err := serve.Run(s, serve.LoadConfig{
				Clients: 8, Requests: b.N, Seed: 9, Inputs: inputs,
			})
			b.StopTimer()
			s.Stop()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.AchievedPerSec, "req/s")
			if life := s.Stats().Lifetime; life != nil {
				b.ReportMetric(float64(life.Recalibrations), "recals")
				b.ReportMetric(life.RecalEnergyPJ, "recal-pJ")
				b.ReportMetric(float64(life.FallbackServed), "fallback-served")
			}
		})
	}
}

// BenchmarkEvalRun measures the full Fig. 7/8 evaluation (compile +
// simulate, all networks × designs) through the parallel engine at
// several worker-pool sizes; workers=1 is the serial reference.
func BenchmarkEvalRun(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			cfg := eval.DefaultConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := eval.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile measures the compiler itself across the zoo.
func BenchmarkCompile(b *testing.B) {
	cfg := arch.DefaultConfig()
	for _, name := range bnn.ZooNames {
		model, err := bnn.NewModel(name, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Compile(model, cfg, arch.EinsteinBarrier); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainerEpoch measures the STE training substrate.
func BenchmarkTrainerEpoch(b *testing.B) {
	xs := make([][]float64, 64)
	ys := make([]int, 64)
	rng := rand.New(rand.NewSource(12))
	for i := range xs {
		xs[i] = make([]float64, 784)
		for j := range xs[i] {
			xs[i][j] = rng.Float64()
		}
		ys[i] = rng.Intn(10)
	}
	tr, err := bnn.NewTrainer(bnn.TrainerConfig{Sizes: []int{784, 64, 64, 10}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TrainEpoch(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnergyModel exercises the cost-table hot path (Eq. 2/3).
func BenchmarkEnergyModel(b *testing.B) {
	costs := energy.DefaultCostParams()
	b.Run("TransmitterPowerEq3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = costs.TransmitterPowerMW(16, 256)
		}
	})
	b.Run("StaticOpticalPower", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = costs.StaticOpticalPowerMW(256, 256, 16)
		}
	})
}

// BenchmarkCrossbarVMM measures the functional analog simulator itself
// across array sizes (per simulated VMM, noise on).
func BenchmarkCrossbarVMM(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{64, 128, 256} {
		cfg := crossbar.DefaultConfig(device.EPCM)
		cfg.Rows, cfg.Cols = n, n
		cfg.ADCBits = 10
		arr, err := crossbar.NewArray(cfg)
		if err != nil {
			b.Fatal(err)
		}
		m := bitops.NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				m.Set(r, c, rng.Intn(2) == 1)
			}
		}
		if err := arr.Program(m); err != nil {
			b.Fatal(err)
		}
		x := bitops.NewVector(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				x.Set(i)
			}
		}
		dst := make([]int, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := arr.VMMInto(x, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHardwareInference measures one full hardware-in-the-loop
// inference (binary layers on simulated arrays) for the robustness
// studies.
func BenchmarkHardwareInference(b *testing.B) {
	model, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		b.Fatal(err)
	}
	hw, err := robust.Map(model, robust.DefaultConfig(device.EPCM))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewFloat(784)
	rng := rand.New(rand.NewSource(14))
	for i := range x.Data() {
		x.Data()[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hw.Predict(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialization measures model save/load round trips.
func BenchmarkSerialization(b *testing.B) {
	model, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := bnn.WriteModel(&buf, model); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
	})
	var buf bytes.Buffer
	if err := bnn.WriteModel(&buf, model); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("Read", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := bnn.ReadModel(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTrace prices the trace recorder against the pipeline hot
// path (DESIGN.md "Trace observability"). Disabled is the guardrail:
// a nil recorder must cost nothing — same schedule and same allocs/op
// as BenchmarkPipeline's CNN-L/EinsteinBarrier/B=256 case (the
// recorder itself adds zero; see the AllocsPerRun pin in
// internal/trace), so the ≤2% overhead acceptance bound reads straight
// off the two series. Enabled re-runs the identical batch into a ring
// sized to hold every event (events/sample is the reported density);
// Export streams the filled ring as Chrome-trace JSON and CSV.
func BenchmarkTrace(b *testing.B) {
	cfg := eval.DefaultConfig()
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		b.Fatal(err)
	}
	model, err := bnn.NewModel("CNN-L", cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	c, err := compiler.Compile(model, cfg.Arch, arch.EinsteinBarrier)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := simulator.NewEngine(c)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 256
	b.Run("Disabled/CNN-L/EinsteinBarrier/B=256", func(b *testing.B) {
		eng.EnableTrace(nil)
		var br *sim.BatchResult
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if br, err = eng.RunBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(br.ThroughputPerSec, "inf/s")
	})
	rec := trace.New(batch*eng.TraceEventsPerSample() + 16)
	b.Run("Enabled/CNN-L/EinsteinBarrier/B=256", func(b *testing.B) {
		eng.EnableTrace(rec)
		defer eng.EnableTrace(nil)
		var br *sim.BatchResult
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Reset()
			if br, err = eng.RunBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(br.ThroughputPerSec, "inf/s")
		b.ReportMetric(float64(rec.Len())/batch, "events/sample")
		if rec.Dropped() != 0 {
			b.Fatalf("ring sized for the batch still dropped %d events", rec.Dropped())
		}
	})
	// Fill the ring once so the export benches stream a full batch.
	eng.EnableTrace(rec)
	rec.Reset()
	if _, err := eng.RunBatch(batch); err != nil {
		b.Fatal(err)
	}
	eng.EnableTrace(nil)
	b.Run("Export/Chrome", func(b *testing.B) {
		var n countingWriter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n = 0
			if err := trace.WriteChrome(&n, rec); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(n))
		b.ReportMetric(float64(rec.Len()), "events")
	})
	b.Run("Export/CSV", func(b *testing.B) {
		var n countingWriter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n = 0
			if err := trace.WriteCSV(&n, rec); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(n))
	})
}

// countingWriter discards writes but keeps the byte count, so export
// benches report MB/s without buffering the document.
type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
