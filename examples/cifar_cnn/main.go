// cifar_cnn: the paper's convolutional workload class on the CIFAR-like
// synthetic dataset.
//
// A binarized CNN's conv layers generate many XNOR+Popcount input
// vectors per inference (one per output position) — the intra-inference
// parallelism that EinsteinBarrier's WDM batches K at a time. This
// example:
//
//  1. runs reference inference of the CNN-S zoo network on synthetic
//     CIFAR-like textures (shape/flow demonstration);
//
//  2. executes one binary conv layer's positions through a simulated
//     oPCM crossbar with ExecuteMMM (K positions per activation) and
//     verifies the WDM path against software;
//
//  3. prints the CNN-S Fig. 7/Fig. 8 rows across all designs.
//
//     go run ./examples/cifar_cnn
package main

import (
	"fmt"
	"log"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/photonics"
	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/tensor"
)

func main() {
	model, err := bnn.NewModel("CNN-M", 1)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Reference inference over a few synthetic CIFAR-like samples,
	// batched through the parallel inference engine (one scratch-carrying
	// model clone per worker; output order matches input order).
	samples := dataset.Textures(8, 3)
	xs := make([]*tensor.Float, len(samples))
	for i, s := range samples {
		xs[i] = s.X
	}
	hist := make(map[int]int)
	classes, err := infer.New(model, 0).PredictBatch(xs)
	if err != nil {
		log.Fatal(err)
	}
	for _, class := range classes {
		hist[class]++
	}
	fmt.Printf("CNN-M reference inference over %d texture samples: class histogram %v\n",
		len(samples), hist)

	// 2. WDM-batched conv positions on a simulated oPCM crossbar.
	var conv *bnn.BinaryConv2D
	for _, l := range model.Layers {
		if c, ok := l.(*bnn.BinaryConv2D); ok {
			conv = c
			break
		}
	}
	// A small activation tensor matching the conv input.
	g := conv.Geom
	act := tensor.NewFloat(g.InC, g.InH, g.InW)
	for i := range act.Data() {
		if i%3 == 0 {
			act.Data()[i] = 1
		} else {
			act.Data()[i] = -1
		}
	}
	patches := conv.PatchVectors(act)
	k := photonics.MaxWDMCapacity
	fmt.Printf("conv layer %q: %d positions of %d bits — WDM batches %d per activation\n",
		conv.Name(), len(patches), g.PatchLen(), k)

	cfg := crossbar.DefaultConfig(device.OPCM)
	cfg.Rows = 2 * nextEven(g.PatchLen())
	cfg.Cols = conv.OutC
	cfg.ADCBits = 11
	// A 1152-row accumulation needs tighter devices than the 256-row
	// default to decode exact integer popcounts: program-and-verify plus
	// per-array calibration brings the spread to ~0.3% (the binary-PCM
	// robustness regime of Cardoso et al. — still far looser than any
	// multi-level scheme would need).
	cfg.OPCM.ProgramSigma = 0.003
	cfg.OPCM.RelIntensityNoise = 0.001
	// At K=16 with ~570-cell accumulations, -30 dB inter-channel
	// crosstalk leaks ~0.1% of 15 aggressor columns — a systematic
	// +5-count bias. A flat-top AWG demux with 45 dB adjacent-channel
	// isolation keeps the leak below half an LSB.
	cfg.OPCM.CrossTalkDB = -45
	mapped, err := core.MapTacit(conv.WeightMatrix(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	mapped.ResetStats()
	batch := patches[:k]
	got, err := mapped.ExecuteMMM(batch)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range batch {
		want := conv.WeightMatrix().XnorPopcountAll(p)
		for j := range want {
			if got[i][j] != want[j] {
				log.Fatalf("WDM position %d kernel %d: got %d, want %d", i, j, got[i][j], want[j])
			}
		}
	}
	st := mapped.Stats()
	fmt.Printf("verified %d positions × %d kernels through WDM: exact, using %d crossbar activation(s)\n",
		k, conv.OutC, st.VMMOps/int64(mapped.Plan().Tiles()))

	// 3. Fig. 7 / Fig. 8 rows for CNN-M.
	acfg := arch.DefaultConfig()
	simulator, err := sim.New(acfg, energy.DefaultCostParams())
	if err != nil {
		log.Fatal(err)
	}
	results, err := sim.RunModelOnDesigns(simulator, func(d arch.Design) (*compiler.Compiled, error) {
		return compiler.Compile(model, acfg, d)
	})
	if err != nil {
		log.Fatal(err)
	}
	base := results[arch.BaselineEPCM]
	fmt.Printf("\nCNN-M, one inference:\n")
	fmt.Printf("  %-16s %12s %12s %12s %12s\n", "design", "latency", "speedup", "energy", "norm.energy")
	for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
		r := results[d]
		fmt.Printf("  %-16s %10.1f us %11.1fx %10.1f uJ %11.2fx\n",
			d.String(), r.LatencyNs/1e3, base.LatencyNs/r.LatencyNs,
			r.EnergyPJ()/1e6, r.EnergyPJ()/base.EnergyPJ())
	}
}

func nextEven(x int) int {
	if x%2 == 1 {
		return x + 1
	}
	return x
}
