// serving: the online serving subsystem end to end —
//
//  1. Wrap a zoo network in the dynamic-batching server with a
//     software backend and per-batch accelerator pricing for the
//     EinsteinBarrier design.
//
//  2. Drive it with the embedded open-loop Poisson load generator at
//     increasing arrival rates (deterministic seeded schedules).
//
//  3. Print the latency–throughput curve: as the rate grows, the mean
//     dynamic batch size grows, and the simulated accelerator
//     throughput climbs toward the pipeline's analytic ceiling while
//     the bounded queue sheds the overload.
//
//  4. Sweep the dynamic-batch cap under a saturating closed loop: the
//     software backend's bit-parallel forward path packs up to 64
//     samples into each machine word (internal/bitops.BitBatch), so
//     software throughput climbs with MaxBatch until a lane word is
//     full — the same sweep as `ebserve -loadgen -sweep-maxbatch`.
//
//     go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/eval"
	"einsteinbarrier/internal/serve"
)

func main() {
	model, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		log.Fatal(err)
	}
	design := arch.EinsteinBarrier

	newServer := func() (*serve.Server, error) {
		backend, err := serve.NewSoftwareBackend(model, 0)
		if err != nil {
			return nil, err
		}
		eng, err := eval.Pipeline(eval.DefaultConfig(), model, design)
		if err != nil {
			return nil, err
		}
		pricer, err := serve.NewPricer(eng)
		if err != nil {
			return nil, err
		}
		return serve.New(serve.Config{
			Backend:  backend,
			MaxBatch: 64,
			MaxWait:  300 * time.Microsecond,
			QueueCap: 256,
			Pricer:   pricer,
		})
	}

	fmt.Printf("online serving: %s on %v (dynamic batching ≤64, 300µs deadline)\n\n",
		model.Name(), design)
	points, err := serve.SweepRates(newServer, []float64{500, 2000, 8000}, serve.LoadConfig{
		Requests: 400,
		Seed:     7,
		Inputs:   serve.SyntheticInputs(784, 32, 7),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(serve.LoadTable(points))

	last := points[len(points)-1].Report.Stats
	if last.Sim != nil {
		fmt.Printf("\nat the highest rate the stream batched to %.1f on average;\n"+
			"the %v pipeline would sustain %.0f inf/s of it (ceiling %.0f, bottleneck %s)\n",
			last.MeanBatch, design, last.Sim.PerSec, last.Sim.CeilingPerSec, last.Sim.Bottleneck)
	}

	fmt.Println()
	batchPoints, err := serve.SweepMaxBatch(func(mb int) (*serve.Server, error) {
		backend, err := serve.NewSoftwareBackend(model, 0)
		if err != nil {
			return nil, err
		}
		return serve.New(serve.Config{
			Backend:  backend,
			MaxBatch: mb,
			MaxWait:  300 * time.Microsecond,
		})
	}, []int{1, 16, 64}, serve.LoadConfig{
		Requests: 600,
		Seed:     7,
		Inputs:   serve.SyntheticInputs(784, 32, 7),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(serve.BatchTable(batchPoints))
	first, lastB := batchPoints[0].Report, batchPoints[len(batchPoints)-1].Report
	if first.AchievedPerSec > 0 {
		fmt.Printf("\nsoftware throughput %.0f → %.0f req/s (%.1fx) from lifting the batch cap:\n"+
			"64 samples ride each uint64 word through the binarized layers\n",
			first.AchievedPerSec, lastB.AchievedPerSec, lastB.AchievedPerSec/first.AchievedPerSec)
	}
}
