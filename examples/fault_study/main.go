// fault_study: hardware-in-the-loop robustness of a trained BNN.
//
// The paper's enabling argument (§II-C, after Cardoso et al.) is that
// *binary* PCM is robust where multi-level PCM is not. This example
// quantifies that end to end with real inference on the simulated
// arrays:
//
//  1. train a BNN on the synthetic digits and freeze it;
//
//  2. run its binary layers on noisy oPCM crossbars across a
//     programming-spread sweep — agreement with software collapses only
//     far beyond the realistic corner;
//
//  3. sweep stuck-at defect density, with and without spare-column
//     repair, showing the BNN's inherent fault margin;
//
//  4. contrast with the multi-level-cell error rates that justify the
//     paper's binary design point.
//
//     go run ./examples/fault_study -workers 4
package main

import (
	"flag"
	"fmt"
	"log"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/robust"
)

func main() {
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = one per CPU, 1 = serial; results are bit-identical at any count)")
	flag.Parse()
	// 1. Train and freeze.
	samples := dataset.Digits(700, 5)
	train, test, err := dataset.Split(samples, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	xs, ys := dataset.Flatten(train)
	tr, err := bnn.NewTrainer(bnn.TrainerConfig{Sizes: []int{784, 64, 64, 10}, LR: 0.01, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 0; epoch < 10; epoch++ {
		if _, err := tr.TrainEpoch(xs, ys); err != nil {
			log.Fatal(err)
		}
	}
	model := tr.Export("digit-mlp")
	fmt.Printf("frozen model, %d held-out samples\n\n", len(test))

	// 2. Noise sweep on oPCM hardware — corners fan out over the
	// robust/infer worker pool.
	base := robust.DefaultConfig(device.OPCM)
	base.Workers = *workers
	fmt.Println("programming-spread sweep (oPCM, WDM=16):")
	fmt.Printf("%-14s %14s %12s %12s\n", "corner", "sw/hw agree", "sw acc", "hw acc")
	points, err := robust.NoiseSweep(model, test, base,
		[]float64{0.005, 0.02, 0.08, 0.2, 0.4})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("%-14s %13.1f%% %11.1f%% %11.1f%%\n", p.Label,
			100*p.Agreement.MatchRate(),
			100*p.Agreement.SoftwareAccuracy,
			100*p.Agreement.HardwareAccuracy)
	}

	// 3. Defect-density sweep.
	fmt.Println("\nstuck-at defect sweep (ePCM):")
	fmt.Printf("%-14s %14s %12s\n", "corner", "sw/hw agree", "hw acc")
	ecfg := robust.DefaultConfig(device.EPCM)
	ecfg.Workers = *workers
	fpoints, err := robust.FaultSweep(model, test, ecfg,
		[]float64{0.001, 0.01, 0.05, 0.2})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range fpoints {
		fmt.Printf("%-14s %13.1f%% %11.1f%%\n", p.Label,
			100*p.Agreement.MatchRate(), 100*p.Agreement.HardwareAccuracy)
	}

	// 3b. Spare-column repair on a defective array.
	cfg := crossbar.DefaultConfig(device.EPCM)
	arr, err := crossbar.NewArray(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := arr.InjectFaults(crossbar.FaultModel{StuckOnRate: 0.02, StuckOffRate: 0.02, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	used := cfg.Cols - 16 // 16 spare columns
	plan, err := arr.PlanRepair(used)
	if err != nil {
		log.Fatal(err)
	}
	before, after, err := arr.RepairEffectiveness(used, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspare-column repair on a 4%%-defective %dx%d array:\n", cfg.Rows, cfg.Cols)
	fmt.Printf("  retired %d of %d spare columns; worst-column defects %d → %d\n",
		len(plan.Remapped), plan.Spares, before, after)

	// 4. Binary vs multi-level decode error (the §II-C argument).
	fmt.Println("\nper-cell decode error rate vs level count (Monte-Carlo, 2% spread):")
	fmt.Printf("%-8s %16s\n", "levels", "error rate")
	for _, l := range []int{2, 4, 8, 16} {
		p := device.MLCParams{Levels: l, Low: 0.10, High: 0.85, ProgramSigma: 0.02, ReadNoiseSigma: 0.005}
		fmt.Printf("%-8d %16.5f\n", l, p.MonteCarloErrorRate(100000, 1))
	}
	p := device.MLCParams{Levels: 2, Low: 0.10, High: 0.85, ProgramSigma: 0.02, ReadNoiseSigma: 0.005}
	fmt.Printf("\nrobust level limit at 1e-4 error: %d (binary operation, as the paper chooses)\n",
		p.RobustLevelLimit(1e-4))
}
