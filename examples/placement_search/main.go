// placement_search: the optimizing placer end to end —
//
//  1. Build the search placer for one zoo network: simulated annealing
//     over per-layer rectangle assignments, warm-started from the three
//     heuristic placers, with the pipeline engine itself as the
//     objective (sim.PlacementEvaluator prices every candidate with
//     Engine.RunBatch — measured inf/s with real NoC contention, never
//     an analytic proxy).
//
//  2. Compile through it and show the search trace: how each heuristic
//     scored under the same objective, how many candidates the
//     annealing evaluated, and the fingerprint-keyed cache hit rate
//     that makes engine-in-the-loop search affordable.
//
//  3. Run the beats-or-matches comparison across the whole zoo —
//     search ≥ best heuristic holds by construction because the best
//     layout EVER evaluated (warm starts included) is what the placer
//     returns.
//
//     go run ./examples/placement_search
package main

import (
	"fmt"
	"log"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/eval"
	"einsteinbarrier/internal/sim"
)

func main() {
	const batch = 256
	cfg := arch.DefaultConfig()
	design := arch.EinsteinBarrier

	// 1. One network, explicit wiring: simulator → evaluator → placer.
	model, err := bnn.NewModel("MLP-L", 1)
	if err != nil {
		log.Fatal(err)
	}
	simulator, err := sim.New(cfg, energy.DefaultCostParams())
	if err != nil {
		log.Fatal(err)
	}
	pe, err := simulator.PlacementEvaluator(batch)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := compiler.NewSearchPlacer(model, cfg, design, pe, compiler.SearchOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	c, err := compiler.CompileWith(model, cfg, design, compiler.Options{Placer: sp})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The search trace: heuristics under the search objective, then
	// the annealing outcome and the evaluation-cache economics.
	st := sp.Stats()
	fmt.Printf("%s on %v, objective = Engine.RunBatch(%d) inf/s\n", model.Name(), design, batch)
	for _, ws := range st.WarmStarts {
		if ws.Err != "" {
			fmt.Printf("  warm start %-7s unplaceable: %s\n", ws.Name, ws.Err)
			continue
		}
		fmt.Printf("  warm start %-7s %12.0f inf/s\n", ws.Name, ws.Score)
	}
	fmt.Printf("  annealed   %-7s %12.0f inf/s (%d evals, %d rounds, %d accepted, best from %s)\n",
		"search", st.BestScore, st.Steps, st.Rounds, st.Accepted, st.BestFrom)
	lookups, hits := pe.Stats()
	fmt.Printf("  cache: %d lookups, %d hits (%.0f%%) — revisited layouts are priced once\n",
		lookups, hits, 100*pe.HitRate())
	fmt.Printf("  placement fingerprint: %s\n\n", c.Placement.Fingerprint())

	// 3. The zoo-wide beats-or-matches table.
	ecfg := eval.DefaultConfig()
	rows, err := eval.ComparePlacements(ecfg, nil, nil, design, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eval.WinsTable(eval.PlacementWins(rows)))
}
