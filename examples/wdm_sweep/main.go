// wdm_sweep: the design-space exploration the paper leaves as future
// work (§VI-C), plus the photonic power/robustness trade-offs behind
// the K = 16 capacity limit.
//
//  1. Eq. (2)/(3) power overheads of the oPCM ECore vs WDM capacity.
//
//  2. Worst-case WDM eye opening vs K and demux isolation — why binary
//     PCM with K ≤ 16 is the robust operating point (§II-C).
//
//  3. Full-system latency/energy of EinsteinBarrier across K and ADC
//     sharing — the ablation of the two readout knobs DESIGN.md calls
//     out.
//
//     go run ./examples/wdm_sweep
package main

import (
	"fmt"
	"log"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/photonics"
	"einsteinbarrier/internal/sim"
)

func main() {
	costs := energy.DefaultCostParams()

	// 1. Power overheads (Eq. 2 + Eq. 3) for a 256×256 crossbar.
	fmt.Println("Transmitter + receiver power for a 256x256 oPCM crossbar:")
	fmt.Printf("%-4s %16s %16s %16s\n", "K", "Eq.3 tx (mW)", "Eq.2 TIAs (mW)", "total (W)")
	for _, k := range []int{1, 2, 4, 8, 16} {
		tx := costs.TransmitterPowerMW(k, 256)
		tia := photonics.CrossbarTIAPowerMW(256)
		fmt.Printf("%-4d %16.0f %16.0f %16.2f\n", k, tx, tia, (tx+tia)/1000)
	}

	// 2. Eye opening vs K and isolation.
	fmt.Println("\nWorst-case WDM eye opening (1.0 = ideal, ≤0 = undecodable):")
	fmt.Printf("%-12s", "isolation")
	ks := []int{1, 2, 4, 8, 16}
	for _, k := range ks {
		fmt.Printf("%8s", fmt.Sprintf("K=%d", k))
	}
	fmt.Println()
	for _, iso := range []float64{-35, -30, -25, -20, -15} {
		fmt.Printf("%-12s", fmt.Sprintf("%.0f dB", iso))
		for _, k := range ks {
			cfg := photonics.DefaultTransmitterConfig(k, 256)
			cfg.ChannelIsolationDB = iso
			fmt.Printf("%8.3f", cfg.WorstCaseEyeOpening())
		}
		fmt.Println()
	}

	// 3. Full-system ablation on CNN-M: K × ColumnsPerADC.
	model, err := bnn.NewModel("CNN-M", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEinsteinBarrier on CNN-M: latency (us) / energy (uJ) per inference")
	fmt.Printf("%-14s", "cols/ADC \\ K")
	for _, k := range ks {
		fmt.Printf("%16s", fmt.Sprintf("K=%d", k))
	}
	fmt.Println()
	for _, share := range []int{1, 4, 8, 16, 32} {
		fmt.Printf("%-14d", share)
		for _, k := range ks {
			cfg := arch.DefaultConfig()
			cfg.WDMCapacity = k
			cfg.ColumnsPerADC = share
			s, err := sim.New(cfg, costs)
			if err != nil {
				log.Fatal(err)
			}
			c, err := compiler.Compile(model, cfg, arch.EinsteinBarrier)
			if err != nil {
				log.Fatal(err)
			}
			r, err := s.Run(c)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%16s", fmt.Sprintf("%.0f/%.0f", r.LatencyNs/1e3, r.EnergyPJ()/1e6))
		}
		fmt.Println()
	}
	fmt.Println("\nReading the grid: latency scales down with K until per-layer")
	fmt.Println("overheads floor it; ADC sharing trades readout latency for ADCs.")
}
