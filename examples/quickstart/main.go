// Quickstart: the paper's core idea in one file.
//
// A BNN layer is n weight vectors of m bits; its inference kernel is
// XNOR+Popcount against an input vector (Eq. (1)). This example maps one
// layer onto an analog crossbar twice — with the SotA CustBinaryMap
// (2T2R, row-serial) and with the paper's TacitMap (1T1R, one-shot
// column-parallel) — verifies both against exact software arithmetic,
// and contrasts their step counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/device"
)

func main() {
	const (
		n = 96  // weight vectors (layer outputs)
		m = 128 // bits per vector (layer inputs)
	)
	rng := rand.New(rand.NewSource(42))

	// A random binary layer and a random binarized input.
	weights := bitops.NewMatrix(n, m)
	for r := 0; r < n; r++ {
		for c := 0; c < m; c++ {
			weights.Set(r, c, rng.Intn(2) == 1)
		}
	}
	x := bitops.NewVector(m)
	for i := 0; i < m; i++ {
		if rng.Intn(2) == 1 {
			x.Set(i)
		}
	}

	// Ground truth: exact integer XNOR+Popcount.
	want := weights.XnorPopcountAll(x)

	// --- TacitMap on a noisy ePCM 1T1R crossbar --------------------------
	tacitCfg := crossbar.DefaultConfig(device.EPCM)
	tacit, err := core.MapTacit(weights, tacitCfg)
	if err != nil {
		log.Fatal(err)
	}
	tacit.ResetStats()
	got, err := tacit.Execute(x)
	if err != nil {
		log.Fatal(err)
	}
	check("TacitMap", got, want)
	ts := tacit.Stats()

	// --- CustBinaryMap on a noisy ePCM 2T2R array ------------------------
	cust, err := core.MapCust(weights, crossbar.DefaultDiffConfig())
	if err != nil {
		log.Fatal(err)
	}
	cust.ResetStats()
	got, err = cust.Execute(x)
	if err != nil {
		log.Fatal(err)
	}
	check("CustBinaryMap", got, want)
	cs := cust.Stats()

	fmt.Println("Both mappings reproduce the exact XNOR+Popcount through the")
	fmt.Println("analog crossbar simulation (device variability + read noise on).")
	fmt.Println()
	fmt.Printf("%-28s %16s %16s\n", "cost per input vector", "CustBinaryMap", "TacitMap")
	fmt.Printf("%-28s %16d %16d\n", "crossbar activations", cs.RowActivations, ts.VMMOps)
	fmt.Printf("%-28s %16d %16d\n", "sense/convert operations", cs.PCSASenses, ts.ADCConversions)
	fmt.Printf("%-28s %16d %16d\n", "digital popcount passes", cs.PopcountOps, 0)
	fmt.Println()

	tp := tacit.Plan()
	cp := cust.Plan()
	fmt.Printf("critical path: CustBinaryMap %d steps vs TacitMap %d step(s) — %gx\n",
		cp.SerialStepsPerInput(), tp.SerialStepsPerInput(), core.TheoreticalSpeedup(tp, cp))
	fmt.Println("(the paper's §III claim: up to n× lower execution time)")
}

func check(name string, got, want []int) {
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("%s: output %d = %d, want %d", name, i, got[i], want[i])
		}
	}
	fmt.Printf("%-14s ok — %d popcounts exact\n", name, len(want))
}
