// mnist_mlp: end-to-end BNN flow on the MNIST-like synthetic dataset —
// the paper's MLP workload class.
//
//  1. Train a small binarized MLP with the straight-through estimator.
//
//  2. Export the frozen inference model (FP input/output layers, binary
//     hidden layer).
//
//  3. Re-run the hidden layer through a *simulated noisy oPCM crossbar*
//     under TacitMap and verify the hardware path reproduces the
//     software inference bit-for-bit.
//
//  4. Compile the MLP-S zoo network for all three accelerator designs
//     and print its Fig. 7-style latency row.
//
//     go run ./examples/mnist_mlp
package main

import (
	"fmt"
	"log"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/tensor"
)

func main() {
	// 1. Train.
	samples := dataset.Digits(800, 7)
	train, test, err := dataset.Split(samples, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	xs, ys := dataset.Flatten(train)
	txs, tys := dataset.Flatten(test)
	tr, err := bnn.NewTrainer(bnn.TrainerConfig{Sizes: []int{784, 64, 64, 10}, LR: 0.01, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 1; epoch <= 10; epoch++ {
		if _, err := tr.TrainEpoch(xs, ys); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("trained BNN test accuracy: %.3f\n", tr.Accuracy(txs, tys))

	// 2. Export the frozen model and check it on the held-out set with
	// the parallel batched inference engine (per-worker model clones,
	// deterministic output order).
	model := tr.Export("digit-mlp")
	if err := model.Validate(); err != nil {
		log.Fatal(err)
	}
	batch := make([]*tensor.Float, len(test))
	for i, s := range test {
		batch[i] = s.X.Reshape(784)
	}
	correct := 0
	classes, err := infer.New(model, 0).PredictBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	for i, class := range classes {
		if class == tys[i] {
			correct++
		}
	}
	fmt.Printf("exported model accuracy (parallel batch of %d): %.3f\n",
		len(batch), float64(correct)/float64(len(batch)))

	// 3. Run the binary hidden layer on a simulated noisy oPCM crossbar.
	var hidden *bnn.BinaryDense
	for _, l := range model.Layers {
		if b, ok := l.(*bnn.BinaryDense); ok {
			hidden = b
			break
		}
	}
	cfg := crossbar.DefaultConfig(device.OPCM)
	cfg.Rows, cfg.Cols = 128, 64
	cfg.ADCBits = 8
	mapped, err := core.MapTacit(hidden.WeightMatrix(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	mismatches := 0
	for _, s := range test[:50] {
		// Software path up to the hidden layer input.
		a := model.Layers[0].Forward(s.X.Reshape(784)) // fc0-fp
		a = model.Layers[1].Forward(a)                 // sign
		xb := bitops.FromFloats(a.Data())
		want := hidden.ForwardPopcounts(xb)
		got, err := mapped.Execute(xb)
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				mismatches++
			}
		}
	}
	fmt.Printf("oPCM crossbar vs software popcounts over 50 samples: %d mismatches\n", mismatches)
	if mismatches != 0 {
		log.Fatal("hardware path diverged from reference")
	}

	// 4. Fig. 7-style row for the MLP-S zoo network.
	zoo, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		log.Fatal(err)
	}
	acfg := arch.DefaultConfig()
	simulator, err := sim.New(acfg, energy.DefaultCostParams())
	if err != nil {
		log.Fatal(err)
	}
	results, err := sim.RunModelOnDesigns(simulator, func(d arch.Design) (*compiler.Compiled, error) {
		return compiler.Compile(zoo, acfg, d)
	})
	if err != nil {
		log.Fatal(err)
	}
	base := results[arch.BaselineEPCM].LatencyNs
	fmt.Printf("\nMLP-S latency (one inference):\n")
	for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
		r := results[d]
		fmt.Printf("  %-16s %10.2f us   %6.1fx vs baseline\n",
			d.String(), r.LatencyNs/1e3, base/r.LatencyNs)
	}
}
