// lifetime: the device-lifetime serving loop end to end —
//
//  1. Map a zoo network onto simulated ePCM crossbars and serve a
//     diurnal request stream through it. A work-driven clock converts
//     every served batch into simulated device-seconds, so the
//     scenario spans several device lifetimes in under a minute of
//     wall clock.
//
//  2. Conductance drift degrades the replicas as they serve; a canary
//     probe stream (labeled with the software model's own predictions)
//     watches each replica's accuracy with flap-proof hysteresis.
//
//  3. When a replica is flagged, the closed loop drains it (zero
//     dropped requests), re-programs every crossbar plane — priced by
//     the energy cost model in joules — and returns it to rotation
//     with its drift age reset.
//
//  4. Print the lifetime report: availability, the accuracy-over-time
//     trace with flagged/post-recal events, recalibration energy, and
//     the drain-window latency SLO. The same scenario is scriptable as
//     `ebserve -lifetime`.
//
//     go run ./examples/lifetime
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/eval"
	"einsteinbarrier/internal/robust"
	"einsteinbarrier/internal/serve"
)

func main() {
	// The drifting device corner: ePCM with its default programming
	// spread and read noise. Read noise is left on here — this is the
	// realistic demo; the pinned deterministic corner lives in the
	// tests.
	hw := robust.DefaultConfig(device.EPCM)
	hw.Array.Seed = 7

	sc := eval.LifetimeScenario{
		Model:    "MLP-S",
		Design:   arch.EinsteinBarrier,
		Eval:     eval.DefaultConfig(),
		Hardware: hw,
		Workers:  1,
		MaxBatch: 4,
		Requests: 48,
		Seed:     1,

		CanarySize: 16,
		Lifetime: serve.LifetimeConfig{
			CanaryEvery: 2,
			Floor:       0.95,
			FlagAfter:   2,
		},
		// 48 requests spread over three 120 s drift horizons.
		SecondsPerSample: 3 * 120.0 / 48,
		Fallback:         true,
		// Day/night arrival modulation, kept under the hardware path's
		// capacity so the report shows drift, not overload.
		Diurnal: &eval.DiurnalLoad{
			BaseRate: 20,
			PeakRate: 80,
			Period:   time.Second,
		},
	}
	rep, err := eval.RunLifetime(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eval.LifetimeTable(rep))
	fmt.Println()
	fmt.Println("accuracy-over-time trace as CSV:")
	if err := eval.WriteLifetimeCSV(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
}
