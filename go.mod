module einsteinbarrier

go 1.24
