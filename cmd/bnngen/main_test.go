package main

import (
	"bytes"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestListZoo(t *testing.T) {
	out := runOK(t, "-list")
	for _, n := range []string{"CNN-S", "CNN-M", "CNN-L", "MLP-S", "MLP-M", "MLP-L", "binary ops"} {
		if !strings.Contains(out, n) {
			t.Fatalf("zoo listing missing %q:\n%s", n, out)
		}
	}
}

func TestInspectModelWithMapping(t *testing.T) {
	out := runOK(t, "-model", "MLP-S", "-map", "tacit")
	for _, frag := range []string{"MLP-S", "layer", "steps/input", "tacit tiling"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("inspect output missing %q:\n%s", frag, out)
		}
	}
	out = runOK(t, "-model", "CNN-S", "-map", "cust")
	if !strings.Contains(out, "cust tiling") {
		t.Fatalf("cust mapping missing:\n%s", out)
	}
}

func TestTrainDemo(t *testing.T) {
	out := runOK(t, "-train", "-epochs", "1")
	if !strings.Contains(out, "epoch  1") || !strings.Contains(out, "exported inference model accuracy") {
		t.Fatalf("train output wrong:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	for name, args := range map[string][]string{
		"no action":       {},
		"unknown model":   {"-model", "MLP-XXL"},
		"unknown mapping": {"-model", "MLP-S", "-map", "spiral"},
		"unknown flag":    {"-frobnicate"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", name, args)
		}
	}
}
