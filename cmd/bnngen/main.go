// Command bnngen inspects the model zoo and the crossbar mappings:
//
//	bnngen -list                     # zoo inventory with workloads
//	bnngen -model CNN-M              # per-layer workload table
//	bnngen -model MLP-S -map tacit   # TacitMap tiling of every layer
//	bnngen -train                    # train a small BNN on synthetic digits
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/tensor"
)

func main() {
	list := flag.Bool("list", false, "list the zoo models")
	model := flag.String("model", "", "inspect one model: "+strings.Join(bnn.ZooNames, ", "))
	mapping := flag.String("map", "", "show crossbar tiling: tacit or cust")
	train := flag.Bool("train", false, "train a demo BNN on synthetic digits")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	switch {
	case *list:
		listZoo(*seed)
	case *train:
		trainDemo(*seed)
	case *model != "":
		inspect(*model, *mapping, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func listZoo(seed int64) {
	models, err := bnn.Zoo(seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-8s %14s %14s %14s %10s\n", "model", "binary ops", "fp MACs", "weight bits", "layers")
	for _, m := range models {
		fmt.Printf("%-8s %14d %14d %14d %10d\n",
			m.Name(), m.TotalBinaryOps(), m.TotalFPMACs(), m.WeightBits(), len(m.Layers))
	}
}

func inspect(name, mapping string, seed int64) {
	m, err := bnn.NewModel(name, seed)
	if err != nil {
		fatal(err)
	}
	cfg := arch.DefaultConfig()
	fmt.Printf("%s (input %v, %d classes)\n", m.Name(), m.InputShape, m.Classes)
	fmt.Printf("%-14s %-7s %8s %8s %10s %14s\n", "layer", "kind", "n", "m", "positions", "ops")
	for _, c := range m.Costs() {
		switch c.Kind {
		case "binary", "fp":
			fmt.Printf("%-14s %-7s %8d %8d %10d %14d\n",
				c.Name, c.Kind, c.Work.N, c.Work.M, c.Work.Positions,
				c.Work.Ops()+c.MACs)
		default:
			fmt.Printf("%-14s %-7s\n", c.Name, c.Kind)
		}
	}
	if mapping == "" {
		return
	}
	fmt.Printf("\n%s tiling onto %dx%d arrays:\n", mapping, cfg.CrossbarRows, cfg.CrossbarCols)
	fmt.Printf("%-14s %10s %10s %8s %16s\n", "layer", "row tiles", "col tiles", "arrays", "steps/input")
	for _, c := range m.Costs() {
		if c.Kind != "binary" {
			continue
		}
		switch mapping {
		case "tacit":
			p, err := core.PlanTacit(c.Work.N, c.Work.M, cfg.CrossbarRows, cfg.CrossbarCols)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-14s %10d %10d %8d %16d\n",
				c.Name, p.RowTiles, p.ColTiles, p.Tiles(), p.SerialStepsPerInput())
		case "cust":
			p, err := core.PlanCust(c.Work.N, c.Work.M, cfg.CrossbarRows, cfg.CrossbarCols/2)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-14s %10d %10d %8d %16d\n",
				c.Name, p.RowTiles, p.ColTiles, p.Tiles(), p.SerialStepsPerInput())
		default:
			fatal(fmt.Errorf("unknown mapping %q (want tacit|cust)", mapping))
		}
	}
}

func trainDemo(seed int64) {
	samples := dataset.Digits(800, seed)
	train, test, err := dataset.Split(samples, 0.8)
	if err != nil {
		fatal(err)
	}
	xs, ys := dataset.Flatten(train)
	txs, tys := dataset.Flatten(test)
	tr, err := bnn.NewTrainer(bnn.TrainerConfig{Sizes: []int{784, 64, 64, 10}, LR: 0.01, Seed: seed})
	if err != nil {
		fatal(err)
	}
	for epoch := 1; epoch <= 12; epoch++ {
		loss, err := tr.TrainEpoch(xs, ys)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("epoch %2d  loss %.4f  test acc %.3f\n", epoch, loss, tr.Accuracy(txs, tys))
	}
	m := tr.Export("digit-mlp")
	batch := make([]*tensor.Float, len(test))
	for i, s := range test {
		batch[i] = s.X.Reshape(784)
	}
	correct := 0
	for i, class := range infer.New(m, 0).PredictBatch(batch) {
		if class == tys[i] {
			correct++
		}
	}
	fmt.Printf("exported inference model accuracy: %.3f\n", float64(correct)/float64(len(test)))
	_ = txs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bnngen:", err)
	os.Exit(1)
}
