// Command bnngen inspects the model zoo and the crossbar mappings:
//
//	bnngen -list                     # zoo inventory with workloads
//	bnngen -model CNN-M              # per-layer workload table
//	bnngen -model MLP-S -map tacit   # TacitMap tiling of every layer
//	bnngen -train                    # train a small BNN on synthetic digits
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bnngen:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: parses args, writes the report to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bnngen", flag.ContinueOnError)
	fs.SetOutput(out)
	list := fs.Bool("list", false, "list the zoo models")
	model := fs.String("model", "", "inspect one model: "+strings.Join(bnn.ZooNames, ", "))
	mapping := fs.String("map", "", "show crossbar tiling: tacit or cust")
	train := fs.Bool("train", false, "train a demo BNN on synthetic digits")
	epochs := fs.Int("epochs", 12, "training epochs for -train")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		return listZoo(out, *seed)
	case *train:
		return trainDemo(out, *seed, *epochs)
	case *model != "":
		return inspect(out, *model, *mapping, *seed)
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -train or -model")
	}
}

func listZoo(out io.Writer, seed int64) error {
	models, err := bnn.Zoo(seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-8s %14s %14s %14s %10s\n", "model", "binary ops", "fp MACs", "weight bits", "layers")
	for _, m := range models {
		fmt.Fprintf(out, "%-8s %14d %14d %14d %10d\n",
			m.Name(), m.TotalBinaryOps(), m.TotalFPMACs(), m.WeightBits(), len(m.Layers))
	}
	return nil
}

func inspect(out io.Writer, name, mapping string, seed int64) error {
	m, err := bnn.NewModel(name, seed)
	if err != nil {
		return err
	}
	cfg := arch.DefaultConfig()
	fmt.Fprintf(out, "%s (input %v, %d classes)\n", m.Name(), m.InputShape, m.Classes)
	fmt.Fprintf(out, "%-14s %-7s %8s %8s %10s %14s\n", "layer", "kind", "n", "m", "positions", "ops")
	for _, c := range m.Costs() {
		switch c.Kind {
		case "binary", "fp":
			fmt.Fprintf(out, "%-14s %-7s %8d %8d %10d %14d\n",
				c.Name, c.Kind, c.Work.N, c.Work.M, c.Work.Positions,
				c.Work.Ops()+c.MACs)
		default:
			fmt.Fprintf(out, "%-14s %-7s\n", c.Name, c.Kind)
		}
	}
	if mapping == "" {
		return nil
	}
	fmt.Fprintf(out, "\n%s tiling onto %dx%d arrays:\n", mapping, cfg.CrossbarRows, cfg.CrossbarCols)
	fmt.Fprintf(out, "%-14s %10s %10s %8s %16s\n", "layer", "row tiles", "col tiles", "arrays", "steps/input")
	for _, c := range m.Costs() {
		if c.Kind != "binary" {
			continue
		}
		switch mapping {
		case "tacit":
			p, err := core.PlanTacit(c.Work.N, c.Work.M, cfg.CrossbarRows, cfg.CrossbarCols)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-14s %10d %10d %8d %16d\n",
				c.Name, p.RowTiles, p.ColTiles, p.Tiles(), p.SerialStepsPerInput())
		case "cust":
			p, err := core.PlanCust(c.Work.N, c.Work.M, cfg.CrossbarRows, cfg.CrossbarCols/2)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-14s %10d %10d %8d %16d\n",
				c.Name, p.RowTiles, p.ColTiles, p.Tiles(), p.SerialStepsPerInput())
		default:
			return fmt.Errorf("unknown mapping %q (want tacit|cust)", mapping)
		}
	}
	return nil
}

func trainDemo(out io.Writer, seed int64, epochs int) error {
	samples := dataset.Digits(800, seed)
	train, test, err := dataset.Split(samples, 0.8)
	if err != nil {
		return err
	}
	xs, ys := dataset.Flatten(train)
	txs, tys := dataset.Flatten(test)
	tr, err := bnn.NewTrainer(bnn.TrainerConfig{Sizes: []int{784, 64, 64, 10}, LR: 0.01, Seed: seed})
	if err != nil {
		return err
	}
	for epoch := 1; epoch <= epochs; epoch++ {
		loss, err := tr.TrainEpoch(xs, ys)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "epoch %2d  loss %.4f  test acc %.3f\n", epoch, loss, tr.Accuracy(txs, tys))
	}
	m := tr.Export("digit-mlp")
	batch := make([]*tensor.Float, len(test))
	for i, s := range test {
		batch[i] = s.X.Reshape(784)
	}
	classes, err := infer.New(m, 0).PredictBatch(batch)
	if err != nil {
		return err
	}
	correct := 0
	for i, class := range classes {
		if class == tys[i] {
			correct++
		}
	}
	fmt.Fprintf(out, "exported inference model accuracy: %.3f\n", float64(correct)/float64(len(test)))
	return nil
}
