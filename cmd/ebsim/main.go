// Command ebsim compiles and simulates one BNN from the model zoo on a
// chosen accelerator design, printing the compiled program statistics,
// per-layer latencies, the energy breakdown, and the pipelined batch
// drill-down. Designs are resolved by registry name or alias
// (arch.ParseDesign); "gpu" selects the analytic GPU baseline.
//
//	ebsim -model CNN-L -design eb
//	ebsim -model MLP-S -design baseline -program   # dump the ISA stream
//	ebsim -model CNN-M -design tacit -k 8 -cols-per-adc 16
//	ebsim -model CNN-S -design eb64 -batch 64      # wide-K batch drill-down
//	ebsim -model CNN-L -placer mesh -batch 64      # locality-aware placement
//	ebsim -model MLP-L -placer search -batch 256   # annealed, engine-priced layout
//	ebsim -models MLP-S,CNN-S -placer mesh         # co-locate on one fabric
//	ebsim -models MLP-S,CNN-S -placer search       # interference-aware co-location
//	ebsim -model CNN-L -batch 256 -trace t.json    # Chrome-trace of the pipeline
//	ebsim -placer search -trace-candidate c.json   # search-trajectory dump
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/eval"
	"einsteinbarrier/internal/gpu"
	"einsteinbarrier/internal/isa"
	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: parses args, writes the drill-down to
// out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ebsim", flag.ContinueOnError)
	fs.SetOutput(out)
	model := fs.String("model", "CNN-S", "zoo model: "+strings.Join(bnn.ZooNames, ", "))
	models := fs.String("models", "", "comma-separated zoo models to CO-LOCATE on one fabric (overrides -model)")
	design := fs.String("design", "eb", "registered design name or alias, or gpu")
	placerName := fs.String("placer", "greedy", "placement strategy: "+strings.Join(compiler.PlacerNames, ", "))
	seed := fs.Int64("seed", 1, "weight-synthesis seed")
	k := fs.Int("k", 0, "override WDM capacity")
	colsPerADC := fs.Int("cols-per-adc", 0, "override ADC sharing factor")
	dumpProgram := fs.Bool("program", false, "print the compiled ISA stream")
	batch := fs.Int("batch", 32, "batch size for the pipeline drill-down")
	searchSteps := fs.Int("search-steps", compiler.DefaultSearchSteps, "candidate-evaluation budget of -placer search")
	searchSeed := fs.Int64("search-seed", 1, "search placer RNG seed")
	searchBatch := fs.Int("search-batch", 0, "batch size of the search objective (0 = -batch)")
	traceOut := fs.String("trace", "", "write the pipeline drill-down as Chrome-trace JSON (chrome://tracing / Perfetto) to this file")
	traceCSV := fs.String("trace-csv", "", "write the same trace as flat CSV to this file")
	traceCand := fs.String("trace-candidate", "", "with -placer search: write the search-candidate trajectory as Chrome-trace JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceCand != "" && *placerName != "search" {
		return fmt.Errorf("-trace-candidate needs -placer search")
	}

	// "search" is model-bound (it compiles and prices candidates itself),
	// so it is constructed after the model and design are known; the
	// heuristics parse here.
	var placer compiler.Placer
	if *placerName != "search" {
		var err error
		placer, err = compiler.ParsePlacer(*placerName)
		if err != nil {
			return err
		}
	}
	cfg := arch.DefaultConfig()
	if *k > 0 {
		cfg.WDMCapacity = *k
	}
	if *colsPerADC > 0 {
		cfg.ColumnsPerADC = *colsPerADC
	}
	var candRec *trace.Recorder
	if *traceCand != "" {
		// Warm starts, candidates, accept/improve markers: ≤3 events per
		// objective evaluation.
		candRec = trace.New(3*(*searchSteps) + 64)
	}
	search := eval.SearchSpec{Steps: *searchSteps, Seed: *searchSeed, Batch: *searchBatch, Trace: candRec}

	if *models != "" {
		names := strings.Split(*models, ",")
		var err error
		if placer == nil {
			err = runSearchCoLocation(out, names, *design, cfg, *seed, *batch, search, *traceOut, *traceCSV)
		} else {
			err = runCoLocation(out, names, *design, placer, cfg, *seed, *batch, *traceOut, *traceCSV)
		}
		if err != nil {
			return err
		}
		return writeTraceFiles(candRec, *traceCand, "")
	}

	m, err := bnn.NewModel(*model, *seed)
	if err != nil {
		return err
	}

	if *design == "gpu" {
		g := gpu.DefaultModel()
		fmt.Fprintf(out, "%s on Baseline-GPU\n", m.Name())
		fmt.Fprintf(out, "  latency: %.2f us\n", g.InferenceLatencyNs(m)/1e3)
		fmt.Fprintf(out, "  energy:  %.2f uJ\n", g.InferenceEnergyPJ(m)/1e6)
		return nil
	}

	d, err := arch.ParseDesign(*design)
	if err != nil {
		return err
	}
	spec, err := d.Spec()
	if err != nil {
		return err
	}

	s, err := sim.New(cfg, energy.DefaultCostParams())
	if err != nil {
		return err
	}
	var sp *compiler.SearchPlacer
	var pe *sim.PlacementEvaluator
	if placer == nil {
		sb := search.Batch
		if sb == 0 {
			sb = *batch
		}
		if pe, err = s.PlacementEvaluator(sb); err != nil {
			return err
		}
		sp, err = compiler.NewSearchPlacer(m, cfg, d, pe, compiler.SearchOptions{Steps: search.Steps, Seed: search.Seed, Trace: candRec})
		if err != nil {
			return err
		}
		placer = sp
	}
	searchStart := time.Now()
	c, err := compiler.CompileWith(m, cfg, d, compiler.Options{Placer: placer})
	searchDur := time.Since(searchStart)
	if err != nil {
		return err
	}
	if !c.Placement.Exact {
		// Greedy programs carry the allocator's average-hop estimate;
		// tighten the SENDs from the implied layout before pricing (the
		// legacy PlaceAndRewrite pass). Exact placers stamped real hops
		// at compile time.
		if _, err := compiler.PlaceAndRewrite(c, cfg); err != nil {
			return err
		}
	}
	if *dumpProgram {
		for _, sec := range c.Program.Sections() {
			if sec.Name != "" {
				fmt.Fprintf(out, "; --- %s ---\n", sec.Name)
			}
			fmt.Fprint(out, sec.Ins.String())
		}
		return nil
	}
	eng, err := s.NewEngine(c)
	if err != nil {
		return err
	}
	var rec *trace.Recorder
	if *traceOut != "" || *traceCSV != "" {
		// Size the ring so the full batch timeline fits — nothing drops.
		rec = trace.New(*batch*eng.TraceEventsPerSample() + 16)
		eng.EnableTrace(rec)
	}
	r := eng.Result()

	fmt.Fprintf(out, "%s on %v (%v on %v%s)\n", m.Name(), d, spec.Mapping, spec.Tech,
		mlcSuffix(spec))
	fmt.Fprintf(out, "  binary ops/inference: %d\n", m.TotalBinaryOps())
	fmt.Fprintf(out, "  fp MACs/inference:    %d\n", m.TotalFPMACs())
	fmt.Fprintf(out, "  VCores used:          %d / %d\n", c.VCoresUsed, cfg.TotalVCores())
	hops, chipHops := sendHops(c)
	fmt.Fprintf(out, "  placement:            %s, %d layer spans over %d tiles, %d total hops, %d chip hops\n",
		c.Placement.Placer, len(c.Placement.Layers), c.Placement.TotalTiles(spec.EffectiveArch(cfg)), hops, chipHops)
	if sp != nil {
		st := sp.Stats()
		improved := "matched the best heuristic"
		if st.Improved {
			improved = "beat the heuristics"
		}
		fmt.Fprintf(out, "  search:               %d evals over %d rounds, %d accepted; best from %s (%s), objective %.0f inf/s\n",
			st.Steps, st.Rounds, st.Accepted, st.BestFrom, improved, st.BestScore)
		if pe != nil {
			ec := pe.Counters()
			rate := 0.0
			if searchDur > 0 {
				rate = float64(st.Steps) / searchDur.Seconds()
			}
			fmt.Fprintf(out, "  search eval:          %.0f candidates/s, cache hit %.1f%%, engine reuse %.1f%% (%d engine runs)\n",
				rate, 100*ec.HitRate(), 100*ec.PoolReuseRate(), ec.Computes)
		}
	}
	if lc, err := sim.WeightLoadCost(c, cfg); err == nil {
		fmt.Fprintf(out, "  weight load (once):   %.2f us, %.2f uJ for %d writes\n",
			lc.LatencyNs/1e3, lc.EnergyPJ/1e6, lc.Writes)
	}
	fmt.Fprintf(out, "  instructions:         %d\n", r.Counters.Instructions)
	fmt.Fprintf(out, "  latency:              %.2f us\n", r.LatencyNs/1e3)
	fmt.Fprintf(out, "  energy:               %.2f uJ\n", r.EnergyPJ()/1e6)
	fmt.Fprintln(out, "  per-layer latency:")
	for _, lt := range r.PerLayer {
		fmt.Fprintf(out, "    %-14s %12.2f us\n", lt.Name, lt.LatencyNs/1e3)
	}
	e := r.Energy
	fmt.Fprintln(out, "  energy breakdown (uJ):")
	for _, row := range []struct {
		name string
		v    float64
	}{
		{"crossbar", e.CrossbarPJ}, {"adc", e.ADCPJ}, {"dac", e.DACPJ},
		{"sense", e.SensePJ}, {"digital", e.DigitalPJ},
		{"control+noc", e.ControlPJ}, {"optical static", e.StaticPJ},
	} {
		fmt.Fprintf(out, "    %-14s %12.3f\n", row.name, row.v/1e6)
	}

	br, err := eng.RunBatch(*batch)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  pipeline (batch %d):  %.0f inf/s achieved, %.0f inf/s ceiling (bottleneck %s)\n",
		br.Batch, br.ThroughputPerSec, br.SteadyStatePerSec, br.BottleneckName)
	fmt.Fprintf(out, "    noc contention stall: %.2f us over the batch\n", br.LinkWaitNs/1e3)
	fmt.Fprintln(out, "    stage occupancy:")
	for _, st := range br.Stages {
		fmt.Fprintf(out, "      %-14s %5.1f%% busy, %4d tiles, %10.2f us/sample\n",
			st.Name, 100*st.Busy, st.Tiles, st.ServiceNs/1e3)
	}

	area := energy.DefaultAreaParams()
	var perArray energy.AreaBreakdown
	switch {
	case spec.Mapping == arch.MappingCust:
		perArray = area.BaselineArrayArea(cfg.CrossbarRows, cfg.CrossbarCols/2)
	case spec.Tech == device.OPCM:
		perArray = area.EinsteinBarrierArrayArea(cfg.CrossbarRows, cfg.CrossbarCols,
			cfg.ColumnsPerADC, cfg.EffectiveK(d), cfg.VCoresPerECore)
	default:
		perArray = area.TacitArrayArea(cfg.CrossbarRows, cfg.CrossbarCols, cfg.ColumnsPerADC)
	}
	fmt.Fprintf(out, "  silicon area:         %.3f mm2/array, %.1f mm2 for the %d arrays used\n",
		perArray.Total()/1e6, perArray.Total()*float64(c.VCoresUsed)/1e6, c.VCoresUsed)
	if err := writeTraceFiles(rec, *traceOut, *traceCSV); err != nil {
		return err
	}
	return writeTraceFiles(candRec, *traceCand, "")
}

// enableSetTrace attaches a full-batch recorder to a co-located engine
// set when either trace output was requested.
func enableSetTrace(es *sim.EngineSet, batch int, traceJSON, traceCSV string) *trace.Recorder {
	if traceJSON == "" && traceCSV == "" {
		return nil
	}
	rec := trace.New(batch*es.TraceEventsPerSample() + 64)
	es.EnableTrace(rec)
	return rec
}

// writeTraceFiles dumps a recorder as Chrome-trace JSON and/or flat
// CSV. A nil recorder (tracing off) writes nothing.
func writeTraceFiles(r *trace.Recorder, jsonPath, csvPath string) error {
	if r == nil {
		return nil
	}
	write := func(path string, enc func(io.Writer, *trace.Recorder) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := enc(f, r); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(jsonPath, trace.WriteChrome); err != nil {
		return err
	}
	return write(csvPath, trace.WriteCSV)
}

// mlcSuffix annotates multi-level-cell designs with their level count
// and the analytic decode error the level choice costs (device/mlc.go).
func mlcSuffix(spec arch.DesignSpec) string {
	if spec.MLC == nil {
		return ""
	}
	return fmt.Sprintf(", %d-level cells, decode err %.2g",
		spec.MLC.Levels, spec.MLC.AnalyticErrorRate())
}

// sendHops sums the program's SEND routing operands.
func sendHops(c *compiler.Compiled) (hops, chipHops int) {
	for _, in := range c.Program {
		if in.Op == isa.OpSend {
			hops += in.Hops
			chipHops += in.ChipHops
		}
	}
	return hops, chipHops
}

// runCoLocation compiles several models onto one shared fabric with
// disjoint regions and prints the co-location drill-down: per-model
// regions, isolated vs co-located throughput, and the fabric's
// fairness/interference report.
func runCoLocation(out io.Writer, names []string, designName string, placer compiler.Placer, cfg arch.Config, seed int64, batch int, traceJSON, traceCSV string) error {
	d, err := arch.ParseDesign(designName)
	if err != nil {
		return err
	}
	var ms []*bnn.Model
	for _, n := range names {
		m, err := bnn.NewModel(strings.TrimSpace(n), seed)
		if err != nil {
			return err
		}
		ms = append(ms, m)
	}
	spec, err := d.Spec()
	if err != nil {
		return err
	}
	ecfg := spec.EffectiveArch(cfg)
	cs, err := compiler.CompileSet(ms, cfg, d, compiler.SetOptions{Placer: placer})
	if err != nil {
		return err
	}
	s, err := sim.New(cfg, energy.DefaultCostParams())
	if err != nil {
		return err
	}
	es, err := s.NewEngineSet(cs)
	if err != nil {
		return err
	}
	rec := enableSetTrace(es, batch, traceJSON, traceCSV)
	r, err := es.RunSet(batch)
	if err != nil {
		return err
	}
	if err := writeTraceFiles(rec, traceJSON, traceCSV); err != nil {
		return err
	}
	fmt.Fprintf(out, "co-location of %d models on %v (placer %s, batch %d)\n", len(cs), d, placer.Name(), batch)
	fmt.Fprintf(out, "  %-8s %-18s %6s %12s %12s %10s %14s\n",
		"model", "region", "tiles", "iso inf/s", "co inf/s", "slowdown", "link wait us")
	for i, mr := range r.Models {
		fmt.Fprintf(out, "  %-8s %-18s %6d %12.0f %12.0f %9.4fx %14.2f\n",
			mr.ModelName, mr.Region.String(), cs[i].Placement.TotalTiles(ecfg),
			mr.IsolatedPerSec, mr.ThroughputPerSec, mr.SlowdownX, mr.LinkWaitNs/1e3)
	}
	fmt.Fprintf(out, "  fabric: %.0f inf/s aggregate, fairness %.4f (Jain), interference wait %.2f us, makespan %.2f us\n",
		r.AggregatePerSec, r.FairnessJain, r.InterferenceWaitNs/1e3, r.MakespanNs/1e3)
	return nil
}

// runSearchCoLocation is runCoLocation's interference-aware sibling:
// eval.SearchCoLocate carves the fabric with the shard placer, then
// anneals each model's region against the WHOLE set's Jain-penalized
// aggregate throughput (sim.SetEvaluator).
func runSearchCoLocation(out io.Writer, names []string, designName string, cfg arch.Config, seed int64, batch int, search eval.SearchSpec, traceJSON, traceCSV string) error {
	d, err := arch.ParseDesign(designName)
	if err != nil {
		return err
	}
	spec, err := d.Spec()
	if err != nil {
		return err
	}
	ecfg := spec.EffectiveArch(cfg)
	evalCfg := eval.DefaultConfig()
	evalCfg.Arch = cfg
	evalCfg.Seed = seed
	evalCfg.Search = search
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	cs, es, msearch, err := eval.SearchCoLocate(evalCfg, names, d, batch)
	if err != nil {
		return err
	}
	rec := enableSetTrace(es, batch, traceJSON, traceCSV)
	r, err := es.RunSet(batch)
	if err != nil {
		return err
	}
	if err := writeTraceFiles(rec, traceJSON, traceCSV); err != nil {
		return err
	}
	fmt.Fprintf(out, "co-location of %d models on %v (placer search, batch %d)\n", len(cs), d, batch)
	fmt.Fprintf(out, "  %-8s %-18s %6s %12s %12s %10s %14s\n",
		"model", "region", "tiles", "iso inf/s", "co inf/s", "slowdown", "link wait us")
	for i, mr := range r.Models {
		fmt.Fprintf(out, "  %-8s %-18s %6d %12.0f %12.0f %9.4fx %14.2f\n",
			mr.ModelName, mr.Region.String(), cs[i].Placement.TotalTiles(ecfg),
			mr.IsolatedPerSec, mr.ThroughputPerSec, mr.SlowdownX, mr.LinkWaitNs/1e3)
	}
	fmt.Fprintf(out, "  fabric: %.0f inf/s aggregate, fairness %.4f (Jain), interference wait %.2f us, makespan %.2f us\n",
		r.AggregatePerSec, r.FairnessJain, r.InterferenceWaitNs/1e3, r.MakespanNs/1e3)
	for _, ms := range msearch {
		st := ms.Stats
		fmt.Fprintf(out, "  search %-8s %d evals, %d accepted, best from %s, set objective %.0f (cache hit %.1f%%, engine reuse %.1f%%)\n",
			ms.Model, st.Steps, st.Accepted, st.BestFrom, st.BestScore,
			100*ms.Eval.HitRate(), 100*ms.Eval.PoolReuseRate())
	}
	return nil
}
