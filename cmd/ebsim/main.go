// Command ebsim compiles and simulates one BNN from the model zoo on a
// chosen accelerator design, printing the compiled program statistics,
// per-layer latencies, the energy breakdown, and the pipelined batch
// drill-down. Designs are resolved by registry name or alias
// (arch.ParseDesign); "gpu" selects the analytic GPU baseline.
//
//	ebsim -model CNN-L -design eb
//	ebsim -model MLP-S -design baseline -program   # dump the ISA stream
//	ebsim -model CNN-M -design tacit -k 8 -cols-per-adc 16
//	ebsim -model CNN-S -design eb64 -batch 64      # wide-K batch drill-down
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/gpu"
	"einsteinbarrier/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: parses args, writes the drill-down to
// out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ebsim", flag.ContinueOnError)
	fs.SetOutput(out)
	model := fs.String("model", "CNN-S", "zoo model: "+strings.Join(bnn.ZooNames, ", "))
	design := fs.String("design", "eb", "registered design name or alias, or gpu")
	seed := fs.Int64("seed", 1, "weight-synthesis seed")
	k := fs.Int("k", 0, "override WDM capacity")
	colsPerADC := fs.Int("cols-per-adc", 0, "override ADC sharing factor")
	dumpProgram := fs.Bool("program", false, "print the compiled ISA stream")
	batch := fs.Int("batch", 32, "batch size for the pipeline drill-down")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := bnn.NewModel(*model, *seed)
	if err != nil {
		return err
	}
	cfg := arch.DefaultConfig()
	if *k > 0 {
		cfg.WDMCapacity = *k
	}
	if *colsPerADC > 0 {
		cfg.ColumnsPerADC = *colsPerADC
	}

	if *design == "gpu" {
		g := gpu.DefaultModel()
		fmt.Fprintf(out, "%s on Baseline-GPU\n", m.Name())
		fmt.Fprintf(out, "  latency: %.2f us\n", g.InferenceLatencyNs(m)/1e3)
		fmt.Fprintf(out, "  energy:  %.2f uJ\n", g.InferenceEnergyPJ(m)/1e6)
		return nil
	}

	d, err := arch.ParseDesign(*design)
	if err != nil {
		return err
	}
	spec, err := d.Spec()
	if err != nil {
		return err
	}

	c, err := compiler.Compile(m, cfg, d)
	if err != nil {
		return err
	}
	placement, err := compiler.PlaceAndRewrite(c, cfg)
	if err != nil {
		return err
	}
	if *dumpProgram {
		for _, sec := range c.Program.Sections() {
			if sec.Name != "" {
				fmt.Fprintf(out, "; --- %s ---\n", sec.Name)
			}
			fmt.Fprint(out, sec.Ins.String())
		}
		return nil
	}
	s, err := sim.New(cfg, energy.DefaultCostParams())
	if err != nil {
		return err
	}
	eng, err := s.NewEngine(c)
	if err != nil {
		return err
	}
	r := eng.Result()

	fmt.Fprintf(out, "%s on %v (%v on %v%s)\n", m.Name(), d, spec.Mapping, spec.Tech,
		mlcSuffix(spec))
	fmt.Fprintf(out, "  binary ops/inference: %d\n", m.TotalBinaryOps())
	fmt.Fprintf(out, "  fp MACs/inference:    %d\n", m.TotalFPMACs())
	fmt.Fprintf(out, "  VCores used:          %d / %d\n", c.VCoresUsed, cfg.TotalVCores())
	fmt.Fprintf(out, "  placement:            %d layer spans, %d total hops, %d chip crossings\n",
		len(placement.Spans), placement.TotalHops, placement.ChipCrossings)
	if lc, err := sim.WeightLoadCost(c, cfg); err == nil {
		fmt.Fprintf(out, "  weight load (once):   %.2f us, %.2f uJ for %d writes\n",
			lc.LatencyNs/1e3, lc.EnergyPJ/1e6, lc.Writes)
	}
	fmt.Fprintf(out, "  instructions:         %d\n", r.Counters.Instructions)
	fmt.Fprintf(out, "  latency:              %.2f us\n", r.LatencyNs/1e3)
	fmt.Fprintf(out, "  energy:               %.2f uJ\n", r.EnergyPJ()/1e6)
	fmt.Fprintln(out, "  per-layer latency:")
	for _, lt := range r.PerLayer {
		fmt.Fprintf(out, "    %-14s %12.2f us\n", lt.Name, lt.LatencyNs/1e3)
	}
	e := r.Energy
	fmt.Fprintln(out, "  energy breakdown (uJ):")
	for _, row := range []struct {
		name string
		v    float64
	}{
		{"crossbar", e.CrossbarPJ}, {"adc", e.ADCPJ}, {"dac", e.DACPJ},
		{"sense", e.SensePJ}, {"digital", e.DigitalPJ},
		{"control+noc", e.ControlPJ}, {"optical static", e.StaticPJ},
	} {
		fmt.Fprintf(out, "    %-14s %12.3f\n", row.name, row.v/1e6)
	}

	br, err := eng.RunBatch(*batch)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  pipeline (batch %d):  %.0f inf/s achieved, %.0f inf/s ceiling (bottleneck %s)\n",
		br.Batch, br.ThroughputPerSec, br.SteadyStatePerSec, br.BottleneckName)
	fmt.Fprintf(out, "    noc contention stall: %.2f us over the batch\n", br.LinkWaitNs/1e3)
	fmt.Fprintln(out, "    stage occupancy:")
	for _, st := range br.Stages {
		fmt.Fprintf(out, "      %-14s %5.1f%% busy, %4d tiles, %10.2f us/sample\n",
			st.Name, 100*st.Busy, st.Tiles, st.ServiceNs/1e3)
	}

	area := energy.DefaultAreaParams()
	var perArray energy.AreaBreakdown
	switch {
	case spec.Mapping == arch.MappingCust:
		perArray = area.BaselineArrayArea(cfg.CrossbarRows, cfg.CrossbarCols/2)
	case spec.Tech == device.OPCM:
		perArray = area.EinsteinBarrierArrayArea(cfg.CrossbarRows, cfg.CrossbarCols,
			cfg.ColumnsPerADC, cfg.EffectiveK(d), cfg.VCoresPerECore)
	default:
		perArray = area.TacitArrayArea(cfg.CrossbarRows, cfg.CrossbarCols, cfg.ColumnsPerADC)
	}
	fmt.Fprintf(out, "  silicon area:         %.3f mm2/array, %.1f mm2 for the %d arrays used\n",
		perArray.Total()/1e6, perArray.Total()*float64(c.VCoresUsed)/1e6, c.VCoresUsed)
	return nil
}

// mlcSuffix annotates multi-level-cell designs with their level count
// and the analytic decode error the level choice costs (device/mlc.go).
func mlcSuffix(spec arch.DesignSpec) string {
	if spec.MLC == nil {
		return ""
	}
	return fmt.Sprintf(", %d-level cells, decode err %.2g",
		spec.MLC.Levels, spec.MLC.AnalyticErrorRate())
}
