// Command ebsim compiles and simulates one BNN from the model zoo on a
// chosen accelerator design, printing the compiled program statistics,
// per-layer latencies, and the energy breakdown.
//
//	ebsim -model CNN-L -design eb
//	ebsim -model MLP-S -design baseline -program   # dump the ISA stream
//	ebsim -model CNN-M -design tacit -k 8 -cols-per-adc 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/gpu"
	"einsteinbarrier/internal/sim"
)

func main() {
	model := flag.String("model", "CNN-S", "zoo model: "+strings.Join(bnn.ZooNames, ", "))
	design := flag.String("design", "eb", "design: baseline, tacit, eb, gpu")
	seed := flag.Int64("seed", 1, "weight-synthesis seed")
	k := flag.Int("k", 0, "override WDM capacity")
	colsPerADC := flag.Int("cols-per-adc", 0, "override ADC sharing factor")
	dumpProgram := flag.Bool("program", false, "print the compiled ISA stream")
	flag.Parse()

	m, err := bnn.NewModel(*model, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := arch.DefaultConfig()
	if *k > 0 {
		cfg.WDMCapacity = *k
	}
	if *colsPerADC > 0 {
		cfg.ColumnsPerADC = *colsPerADC
	}

	if *design == "gpu" {
		g := gpu.DefaultModel()
		fmt.Printf("%s on Baseline-GPU\n", m.Name())
		fmt.Printf("  latency: %.2f us\n", g.InferenceLatencyNs(m)/1e3)
		fmt.Printf("  energy:  %.2f uJ\n", g.InferenceEnergyPJ(m)/1e6)
		return
	}

	var d arch.Design
	switch *design {
	case "baseline":
		d = arch.BaselineEPCM
	case "tacit":
		d = arch.TacitEPCM
	case "eb":
		d = arch.EinsteinBarrier
	default:
		fatal(fmt.Errorf("unknown design %q (want baseline|tacit|eb|gpu)", *design))
	}

	c, err := compiler.Compile(m, cfg, d)
	if err != nil {
		fatal(err)
	}
	placement, err := compiler.PlaceAndRewrite(c, cfg)
	if err != nil {
		fatal(err)
	}
	if *dumpProgram {
		fmt.Print(c.Program.String())
		return
	}
	s, err := sim.New(cfg, energy.DefaultCostParams())
	if err != nil {
		fatal(err)
	}
	r, err := s.Run(c)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %v\n", m.Name(), d)
	fmt.Printf("  binary ops/inference: %d\n", m.TotalBinaryOps())
	fmt.Printf("  fp MACs/inference:    %d\n", m.TotalFPMACs())
	fmt.Printf("  VCores used:          %d / %d\n", c.VCoresUsed, cfg.TotalVCores())
	fmt.Printf("  placement:            %d layer spans, %d total hops, %d chip crossings\n",
		len(placement.Spans), placement.TotalHops, placement.ChipCrossings)
	if lc, err := sim.WeightLoadCost(c, cfg); err == nil {
		fmt.Printf("  weight load (once):   %.2f us, %.2f uJ for %d writes\n",
			lc.LatencyNs/1e3, lc.EnergyPJ/1e6, lc.Writes)
	}
	fmt.Printf("  instructions:         %d\n", r.Counters.Instructions)
	fmt.Printf("  latency:              %.2f us\n", r.LatencyNs/1e3)
	fmt.Printf("  energy:               %.2f uJ\n", r.EnergyPJ()/1e6)
	fmt.Println("  per-layer latency:")
	for _, lt := range r.PerLayer {
		fmt.Printf("    %-14s %12.2f us\n", lt.Name, lt.LatencyNs/1e3)
	}
	e := r.Energy
	fmt.Println("  energy breakdown (uJ):")
	for _, row := range []struct {
		name string
		v    float64
	}{
		{"crossbar", e.CrossbarPJ}, {"adc", e.ADCPJ}, {"dac", e.DACPJ},
		{"sense", e.SensePJ}, {"digital", e.DigitalPJ},
		{"control+noc", e.ControlPJ}, {"optical static", e.StaticPJ},
	} {
		fmt.Printf("    %-14s %12.3f\n", row.name, row.v/1e6)
	}

	if p, err := sim.Pipeline(r); err == nil {
		fmt.Printf("  streaming throughput: %.0f inf/s (bottleneck %s, pipeline gain %.1fx)\n",
			p.ThroughputPerSec, p.BottleneckName, p.SpeedupOverSerial())
	}

	area := energy.DefaultAreaParams()
	var perArray energy.AreaBreakdown
	switch d {
	case arch.BaselineEPCM:
		perArray = area.BaselineArrayArea(cfg.CrossbarRows, cfg.CrossbarCols/2)
	case arch.TacitEPCM:
		perArray = area.TacitArrayArea(cfg.CrossbarRows, cfg.CrossbarCols, cfg.ColumnsPerADC)
	case arch.EinsteinBarrier:
		perArray = area.EinsteinBarrierArrayArea(cfg.CrossbarRows, cfg.CrossbarCols,
			cfg.ColumnsPerADC, cfg.WDMCapacity, cfg.VCoresPerECore)
	}
	fmt.Printf("  silicon area:         %.3f mm2/array, %.1f mm2 for the %d arrays used\n",
		perArray.Total()/1e6, perArray.Total()*float64(c.VCoresUsed)/1e6, c.VCoresUsed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebsim:", err)
	os.Exit(1)
}
