package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestDrillDownSmoke(t *testing.T) {
	out := runOK(t, "-model", "MLP-S", "-design", "tacit", "-batch", "8")
	for _, frag := range []string{
		"MLP-S on TacitMap-ePCM",
		"latency:",
		"energy breakdown (uJ):",
		"per-layer latency:",
		"pipeline (batch 8):",
		"stage occupancy:",
		"silicon area:",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("drill-down missing %q:\n%s", frag, out)
		}
	}
}

func TestRegistryDesignsDrillDown(t *testing.T) {
	out := runOK(t, "-model", "MLP-S", "-design", "mlc")
	if !strings.Contains(out, "MLC-ePCM") || !strings.Contains(out, "4-level cells") {
		t.Fatalf("MLC drill-down missing registry annotations:\n%s", out)
	}
	out = runOK(t, "-model", "CNN-S", "-design", "eb64", "-batch", "16")
	if !strings.Contains(out, "EinsteinBarrier-K64") || !strings.Contains(out, "inf/s ceiling") {
		t.Fatalf("wide-K drill-down wrong:\n%s", out)
	}
}

func TestGPUPath(t *testing.T) {
	out := runOK(t, "-model", "MLP-S", "-design", "gpu")
	if !strings.Contains(out, "Baseline-GPU") || !strings.Contains(out, "latency:") {
		t.Fatalf("gpu drill-down wrong:\n%s", out)
	}
}

func TestProgramDumpSectioned(t *testing.T) {
	out := runOK(t, "-model", "MLP-S", "-design", "eb", "-program")
	if !strings.Contains(out, "; --- fc1-bin ---") {
		t.Fatalf("program dump not sectioned:\n%s", out)
	}
	if !strings.Contains(out, "MMM") || !strings.Contains(out, "HALT") {
		t.Fatalf("program dump missing instructions:\n%s", out)
	}
}

func TestUnknownDesignErrors(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-design", "hal9000"}, &out)
	if err == nil {
		t.Fatal("unknown design must error, not default")
	}
	if !strings.Contains(err.Error(), "hal9000") || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("error should name the design and list the registry: %v", err)
	}
}

func TestPlacerDrillDown(t *testing.T) {
	out := runOK(t, "-model", "CNN-L", "-design", "eb", "-placer", "mesh", "-batch", "8")
	if !strings.Contains(out, "placement:            mesh,") {
		t.Fatalf("mesh placement line missing:\n%s", out)
	}
	if !strings.Contains(out, "pipeline (batch 8):") {
		t.Fatalf("pipeline drill-down missing:\n%s", out)
	}
	if err := run([]string{"-placer", "warp"}, io.Discard); err == nil {
		t.Fatal("unknown placer must error")
	}
}

func TestCoLocationDrillDown(t *testing.T) {
	out := runOK(t, "-models", "MLP-S,CNN-S", "-placer", "mesh", "-batch", "16")
	for _, frag := range []string{
		"co-location of 2 models",
		"MLP-S", "CNN-S",
		"iso inf/s", "slowdown",
		"fairness",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("co-location drill-down missing %q:\n%s", frag, out)
		}
	}
	if err := run([]string{"-models", "MLP-S,ghost"}, io.Discard); err == nil {
		t.Fatal("unknown co-located model must error")
	}
}

func TestSearchPlacerDrillDown(t *testing.T) {
	out := runOK(t, "-model", "MLP-S", "-placer", "search", "-batch", "8", "-search-steps", "8")
	for _, frag := range []string{
		"placement:",
		"search:",
		"best from",
		"objective",
		"search eval:",
		"candidates/s",
		"engine reuse",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("search drill-down missing %q:\n%s", frag, out)
		}
	}
}

func TestSearchCoLocationDrillDown(t *testing.T) {
	out := runOK(t, "-models", "MLP-S,CNN-S", "-placer", "search", "-batch", "8", "-search-steps", "8")
	for _, frag := range []string{
		"co-location of 2 models",
		"placer search",
		"set objective",
		"fairness",
		"cache hit",
		"engine reuse",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("search co-location missing %q:\n%s", frag, out)
		}
	}
}

// readTraceJSON parses a written Chrome-trace file.
func readTraceJSON(t *testing.T, path string) (events []map[string]any, other map[string]any) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("%s not Chrome-trace JSON: %v", path, err)
	}
	return doc.TraceEvents, doc.OtherData
}

func TestTraceFlagWritesChromeAndCSV(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "t.json")
	csvPath := filepath.Join(dir, "t.csv")
	runOK(t, "-model", "MLP-S", "-design", "eb", "-batch", "4",
		"-trace", jsonPath, "-trace-csv", csvPath)
	events, other := readTraceJSON(t, jsonPath)
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	if other["batch"] != "4" || other["model"] != "MLP-S" {
		t.Fatalf("otherData %v", other)
	}
	b, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if lines[0] != "kind,pid,tid,track,name,seq,start_ns,dur_ns,a,b" || len(lines) < 2 {
		t.Fatalf("trace CSV shape wrong:\n%s", lines[0])
	}
}

func TestTraceFlagCoLocation(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "co.json")
	runOK(t, "-models", "MLP-S,MLP-M", "-placer", "mesh", "-batch", "4", "-trace", jsonPath)
	events, _ := readTraceJSON(t, jsonPath)
	pids := map[any]bool{}
	for _, e := range events {
		pids[e["pid"]] = true
	}
	// One process per co-located model.
	if len(pids) != 2 {
		t.Fatalf("co-location trace has %d processes, want 2", len(pids))
	}
}

func TestTraceCandidateDump(t *testing.T) {
	candPath := filepath.Join(t.TempDir(), "cand.json")
	runOK(t, "-model", "MLP-S", "-placer", "search", "-batch", "8",
		"-search-steps", "8", "-trace-candidate", candPath)
	events, other := readTraceJSON(t, candPath)
	var counters int
	for _, e := range events {
		if e["ph"] == "C" {
			counters++
		}
	}
	if counters == 0 {
		t.Fatalf("no objective counters in candidate dump: %v", events)
	}
	if other["best_from"] == "" || other["steps"] == "" {
		t.Fatalf("candidate dump missing search metadata: %v", other)
	}
	if err := run([]string{"-model", "MLP-S", "-trace-candidate", candPath}, io.Discard); err == nil {
		t.Fatal("-trace-candidate without -placer search must error")
	}
}
