// Command ebserve is the online serving front end: it wraps a zoo
// network in the dynamic-batching server (internal/serve) and either
// exposes it over HTTP or drives it with the embedded load generator.
//
//	ebserve -network MLP-S -addr :8080            # HTTP: /infer /stats /healthz
//	ebserve -network CNN-S -design eb -loadgen -rate 2000,8000,32000 -requests 2000
//	ebserve -loadgen -rate 4000 -csv              # latency–throughput curve as CSV
//	ebserve -backend hardware -loadgen -rate 50   # hardware-in-the-loop serving
//
// Designs are resolved by name through the arch registry; every served
// batch is priced on the selected design's simulated pipeline, so the
// loadgen curve reports both wall-clock SLO numbers and the simulated
// accelerator throughput against its analytic ceiling
// (eval.ThroughputAt's steady-state bound).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/eval"
	"einsteinbarrier/internal/robust"
	"einsteinbarrier/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ebserve:", err)
		os.Exit(1)
	}
}

// options is the parsed CLI configuration.
type options struct {
	network  string
	design   string
	backend  string
	maxBatch int
	maxWait  time.Duration
	queueCap int
	workers  int
	inferW   int
	seed     int64
	noPrice  bool

	addr string

	loadgen  bool
	rates    string
	requests int
	clients  int
	csvOut   bool
	jsonOut  bool
}

// run is the testable CLI body: parses args, builds the server, and
// either serves HTTP (addr mode) or runs the load generator against it.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ebserve", flag.ContinueOnError)
	fs.SetOutput(out)
	var o options
	fs.StringVar(&o.network, "network", "MLP-S", "zoo network: "+strings.Join(bnn.ZooNames, ", "))
	fs.StringVar(&o.design, "design", "EinsteinBarrier", "accelerator design for per-batch sim pricing (registry name/alias)")
	fs.StringVar(&o.backend, "backend", "software", "execution backend: software (bitops fast path) or hardware (simulated analog crossbars)")
	fs.IntVar(&o.maxBatch, "max-batch", 64, "dynamic batcher size cap")
	fs.DurationVar(&o.maxWait, "max-wait", 500*time.Microsecond, "dynamic batcher deadline (0 = greedy dispatch)")
	fs.IntVar(&o.queueCap, "queue", 0, "admission queue capacity (0 = 4×max-batch)")
	fs.IntVar(&o.workers, "workers", 1, "concurrent batch executors (backend replicas)")
	fs.IntVar(&o.inferW, "infer-workers", 0, "software backend: per-replica inference pool size (0 = one per CPU)")
	fs.Int64Var(&o.seed, "seed", 1, "zoo weight-synthesis seed")
	fs.BoolVar(&o.noPrice, "no-pricing", false, "disable per-batch accelerator pricing")
	fs.StringVar(&o.addr, "addr", ":8080", "HTTP listen address (serve mode)")
	fs.BoolVar(&o.loadgen, "loadgen", false, "run the embedded load generator instead of serving HTTP")
	fs.StringVar(&o.rates, "rate", "1000,4000,16000", "comma-separated open-loop arrival rates (req/s); 0 entries select the closed loop")
	fs.IntVar(&o.requests, "requests", 1000, "loadgen arrivals per rate point")
	fs.IntVar(&o.clients, "clients", 4, "closed-loop client count (rate 0)")
	fs.BoolVar(&o.csvOut, "csv", false, "emit the loadgen curve as CSV")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the loadgen curve as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := bnn.NewModel(o.network, o.seed)
	if err != nil {
		return err
	}
	design, err := arch.ParseDesign(o.design)
	if err != nil {
		return err
	}
	newServer := func() (*serve.Server, error) { return buildServer(o, model, design) }

	if o.loadgen {
		return runLoadgen(o, model, newServer, out)
	}
	s, err := newServer()
	if err != nil {
		return err
	}
	s.Start()
	defer s.Stop()
	fmt.Fprintf(out, "ebserve: %s on %s (design %v, max-batch %d, max-wait %v) listening on %s\n",
		o.network, s.Stats().Backend, design, o.maxBatch, o.maxWait, o.addr)
	return http.ListenAndServe(o.addr, s.Handler())
}

// buildServer assembles one server from the options (fresh metrics and
// queue — the loadgen sweep calls it once per rate point).
func buildServer(o options, model *bnn.Model, design arch.Design) (*serve.Server, error) {
	var backend serve.Backend
	switch o.backend {
	case "software":
		b, err := serve.NewSoftwareBackend(model, o.inferW)
		if err != nil {
			return nil, err
		}
		backend = b
	case "hardware":
		spec, err := design.Spec()
		if err != nil {
			return nil, err
		}
		b, err := serve.NewHardwareBackend(model, robust.DefaultConfig(spec.Tech))
		if err != nil {
			return nil, err
		}
		backend = b
	default:
		return nil, fmt.Errorf("unknown -backend %q (want software|hardware)", o.backend)
	}
	cfg := serve.Config{
		Backend:  backend,
		MaxBatch: o.maxBatch,
		MaxWait:  o.maxWait,
		QueueCap: o.queueCap,
		Workers:  o.workers,
	}
	if !o.noPrice {
		eng, err := eval.Pipeline(eval.DefaultConfig(), model, design)
		if err != nil {
			return nil, err
		}
		cfg.Pricer, err = serve.NewPricer(eng)
		if err != nil {
			return nil, err
		}
	}
	return serve.New(cfg)
}

// runLoadgen sweeps the requested arrival rates and renders the curve.
func runLoadgen(o options, model *bnn.Model, newServer func() (*serve.Server, error), out io.Writer) error {
	rates, err := parseRates(o.rates)
	if err != nil {
		return err
	}
	size := 1
	for _, d := range model.InputShape {
		size *= d
	}
	base := serve.LoadConfig{
		Requests: o.requests,
		Clients:  o.clients,
		Seed:     o.seed,
		Inputs:   serve.SyntheticInputs(size, 32, o.seed),
	}
	var points []serve.RatePoint
	if len(rates) == 1 && rates[0] == 0 {
		// Closed loop: one point, offered = achieved.
		s, err := newServer()
		if err != nil {
			return err
		}
		rep, err := serve.Run(s, base)
		s.Stop()
		if err != nil {
			return err
		}
		points = []serve.RatePoint{{RatePerSec: 0, Report: rep}}
	} else {
		points, err = serve.SweepRates(newServer, rates, base)
		if err != nil {
			return err
		}
	}
	switch {
	case o.csvOut:
		return serve.WriteLoadCSV(out, points)
	case o.jsonOut:
		return serve.WriteLoadJSON(out, points)
	default:
		fmt.Fprint(out, serve.LoadTable(points))
		return nil
	}
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad -rate entry %q (want non-negative numbers)", f)
		}
		out = append(out, r)
	}
	if len(out) > 1 {
		for _, r := range out {
			if r == 0 {
				return nil, fmt.Errorf("-rate 0 (closed loop) cannot be mixed with open-loop rates")
			}
		}
	}
	return out, nil
}
