// Command ebserve is the online serving front end: it wraps a zoo
// network in the dynamic-batching server (internal/serve) and either
// exposes it over HTTP or drives it with the embedded load generator.
//
//	ebserve -network MLP-S -addr :8080            # HTTP: /infer /stats /metrics /healthz
//	ebserve -network MLP-S -trace -addr :8080     # + per-request spans on GET /trace
//	ebserve -lifetime -trace-out spans.json       # span timeline of a lifetime run
//	ebserve -network CNN-S -design eb -loadgen -rate 2000,8000,32000 -requests 2000
//	ebserve -loadgen -rate 4000 -csv              # latency–throughput curve as CSV
//	ebserve -backend hardware -loadgen -rate 50   # hardware-in-the-loop serving
//	ebserve -models MLP-S,CNN-S -placer mesh      # multi-model router, one fabric
//	ebserve -lifetime -requests 200               # drift → canary → recalibrate loop
//
// With -lifetime, hardware replicas age as they serve (conductance
// drift plus optional wear-driven faults), a canary probe stream
// watches each replica's accuracy, and the closed loop drains and
// re-programs flagged replicas — reporting availability, the
// accuracy-over-time trace, recalibration energy, and the drain-window
// latency SLO. -drift-horizon and -lifetimes size the simulated device
// time; -diurnal-base/-diurnal-peak modulate arrivals day/night.
//
// With -models, several networks are co-located on ONE simulated
// fabric (compiler.CompileSet carves disjoint tile regions) behind the
// multi-model router: POST /infer?model=NAME routes to that model's
// dynamic batcher, and GET /stats reports per-model serving metrics
// plus the shared-fabric co-location snapshot (isolated vs co-located
// throughput, Jain fairness, interference stall).
//
// Designs are resolved by name through the arch registry; every served
// batch is priced on the selected design's simulated pipeline, so the
// loadgen curve reports both wall-clock SLO numbers and the simulated
// accelerator throughput against its analytic ceiling
// (eval.ThroughputAt's steady-state bound).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/eval"
	"einsteinbarrier/internal/robust"
	"einsteinbarrier/internal/serve"
	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ebserve:", err)
		os.Exit(1)
	}
}

// options is the parsed CLI configuration.
type options struct {
	network  string
	models   string
	placer   string
	design   string
	backend  string
	maxBatch int
	maxWait  time.Duration
	queueCap int
	workers  int
	inferW   int
	seed     int64
	noPrice  bool

	searchSteps int
	searchSeed  int64
	searchBatch int

	addr string

	loadgen    bool
	rates      string
	maxBatches string
	requests   int
	clients    int
	csvOut     bool
	jsonOut    bool

	trace    bool
	traceOut string
	rec      *trace.Recorder // shared span ring when -trace is on

	lifetime      bool
	lifetimes     float64
	driftHorizon  float64
	driftNu       float64
	canaryPeriod  int
	canarySize    int
	floor         float64
	flagAfter     int
	fallback      bool
	faultRate     float64
	diurnalBase   float64
	diurnalPeak   float64
	diurnalPeriod time.Duration
}

// run is the testable CLI body: parses args, builds the server, and
// either serves HTTP (addr mode) or runs the load generator against it.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ebserve", flag.ContinueOnError)
	fs.SetOutput(out)
	var o options
	fs.StringVar(&o.network, "network", "MLP-S", "zoo network: "+strings.Join(bnn.ZooNames, ", "))
	fs.StringVar(&o.models, "models", "", "comma-separated zoo networks to co-locate behind the multi-model router (serve mode; overrides -network)")
	fs.StringVar(&o.placer, "placer", "greedy", "fabric placement strategy for co-location: "+strings.Join(compiler.PlacerNames, ", "))
	fs.StringVar(&o.design, "design", "EinsteinBarrier", "accelerator design for per-batch sim pricing (registry name/alias)")
	fs.StringVar(&o.backend, "backend", "software", "execution backend: software (bitops fast path) or hardware (simulated analog crossbars)")
	fs.IntVar(&o.maxBatch, "max-batch", 64, "dynamic batcher size cap")
	fs.DurationVar(&o.maxWait, "max-wait", 500*time.Microsecond, "dynamic batcher deadline (0 = greedy dispatch)")
	fs.IntVar(&o.queueCap, "queue", 0, "admission queue capacity (0 = 4×max-batch)")
	fs.IntVar(&o.workers, "workers", 1, "concurrent batch executors (backend replicas)")
	fs.IntVar(&o.inferW, "infer-workers", 0, "software backend: per-replica inference pool size (0 = one per CPU)")
	fs.Int64Var(&o.seed, "seed", 1, "zoo weight-synthesis seed")
	fs.BoolVar(&o.noPrice, "no-pricing", false, "disable per-batch accelerator pricing")
	fs.IntVar(&o.searchSteps, "search-steps", compiler.DefaultSearchSteps, "candidate-evaluation budget of -placer search")
	fs.Int64Var(&o.searchSeed, "search-seed", 1, "search placer RNG seed")
	fs.IntVar(&o.searchBatch, "search-batch", 0, "batch size of the search objective (0 = -max-batch)")
	fs.StringVar(&o.addr, "addr", ":8080", "HTTP listen address (serve mode)")
	fs.BoolVar(&o.loadgen, "loadgen", false, "run the embedded load generator instead of serving HTTP")
	fs.StringVar(&o.rates, "rate", "1000,4000,16000", "comma-separated open-loop arrival rates (req/s); 0 entries select the closed loop")
	fs.StringVar(&o.maxBatches, "sweep-maxbatch", "", "comma-separated dynamic-batch caps: closed-loop throughput sweep over MaxBatch (loadgen mode; overrides -rate)")
	fs.IntVar(&o.requests, "requests", 1000, "loadgen arrivals per rate point")
	fs.IntVar(&o.clients, "clients", 4, "closed-loop client count (rate 0)")
	fs.BoolVar(&o.csvOut, "csv", false, "emit the loadgen curve as CSV")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the loadgen curve as JSON")
	fs.BoolVar(&o.trace, "trace", false, "record per-request serving spans into a sliding ring (GET /trace in serve mode)")
	fs.StringVar(&o.traceOut, "trace-out", "", "write the recorded spans as Chrome-trace JSON to this file after a loadgen/lifetime run (implies -trace)")
	fs.BoolVar(&o.lifetime, "lifetime", false, "run the device-lifetime scenario: ageing hardware replicas, canary health, closed-loop recalibration")
	fs.Float64Var(&o.lifetimes, "lifetimes", 3, "simulated device lifetimes the run spans")
	fs.Float64Var(&o.driftHorizon, "drift-horizon", 120, "simulated seconds per device lifetime (drift horizon)")
	fs.Float64Var(&o.driftNu, "drift-nu", 0, "ePCM drift exponent override (0 = device default)")
	fs.IntVar(&o.canaryPeriod, "canary-period", 2, "served batches between canary probes per replica")
	fs.IntVar(&o.canarySize, "canary-size", 16, "labeled probes in the canary set")
	fs.Float64Var(&o.floor, "accuracy-floor", 0.95, "canary accuracy below which a pass counts against the replica")
	fs.IntVar(&o.flagAfter, "flag-after", 2, "consecutive below-floor canary passes before recalibration")
	fs.BoolVar(&o.fallback, "fallback", false, "fail open to the software backend when no hardware replica is in rotation")
	fs.Float64Var(&o.faultRate, "fault-rate", 0, "wear-driven stuck-off fault arrival rate per simulated second")
	fs.Float64Var(&o.diurnalBase, "diurnal-base", 0, "diurnal trough arrival rate (req/s, wall clock; 0 = closed loop)")
	fs.Float64Var(&o.diurnalPeak, "diurnal-peak", 0, "diurnal crest arrival rate (req/s; default 4x base)")
	fs.DurationVar(&o.diurnalPeriod, "diurnal-period", time.Second, "one day/night cycle of the diurnal load")
	if err := fs.Parse(args); err != nil {
		return err
	}

	design, err := arch.ParseDesign(o.design)
	if err != nil {
		return err
	}
	if o.traceOut != "" {
		o.trace = true
	}
	if o.trace {
		// One sliding ring for the whole run: every server built from
		// these options (including per-rate-point loadgen servers)
		// registers its own process on it.
		o.rec = trace.New(trace.DefaultCapacity)
	}
	if o.models != "" {
		if o.loadgen {
			return fmt.Errorf("-models serves the multi-model router; the loadgen drives one network (-network)")
		}
		return runMultiModel(o, design, out)
	}
	if o.lifetime {
		return runLifetimeMode(o, design, out)
	}
	model, err := bnn.NewModel(o.network, o.seed)
	if err != nil {
		return err
	}
	newServer := func() (*serve.Server, error) { return buildServer(o, model, design) }

	if o.loadgen {
		if o.maxBatches != "" {
			return runMaxBatchSweep(o, model, design, out)
		}
		return runLoadgen(o, model, newServer, out)
	}
	s, err := newServer()
	if err != nil {
		return err
	}
	s.Start()
	defer s.Stop()
	fmt.Fprintf(out, "ebserve: %s on %s (design %v, max-batch %d, max-wait %v) listening on %s\n",
		o.network, s.Stats().Backend, design, o.maxBatch, o.maxWait, o.addr)
	return http.ListenAndServe(o.addr, s.Handler())
}

// runMultiModel serves several co-located networks behind the router.
func runMultiModel(o options, design arch.Design, out io.Writer) error {
	router, fabric, err := buildRouter(o, design)
	if err != nil {
		return err
	}
	router.Start()
	defer router.Stop()
	fmt.Fprintf(out, "ebserve: %d models co-located on %v (placer %s): %s\n",
		len(router.Names()), design, o.placer, strings.Join(router.Names(), ", "))
	for _, fm := range fabric.Models {
		fmt.Fprintf(out, "  %-8s region %-16s %8.0f inf/s co-located (%.4fx slowdown vs isolated)\n",
			fm.Name, fm.Region, fm.CoLocatedPerSec, fm.SlowdownX)
	}
	fmt.Fprintf(out, "  fabric: %.0f inf/s aggregate, fairness %.4f, interference wait %.2f us; listening on %s\n",
		fabric.AggregatePerSec, fabric.FairnessJain, fabric.InterferenceWaitNs/1e3, o.addr)
	return http.ListenAndServe(o.addr, router.Handler())
}

// buildRouter co-locates the -models networks on one fabric and wires
// every model's server (each priced by its co-located pipeline engine).
func buildRouter(o options, design arch.Design) (*serve.Router, serve.FabricSnapshot, error) {
	var snap serve.FabricSnapshot
	var names []string
	for _, n := range strings.Split(o.models, ",") {
		names = append(names, strings.TrimSpace(n))
	}
	evalCfg := eval.DefaultConfig()
	evalCfg.Seed = o.seed
	var cs []*compiler.Compiled
	var es *sim.EngineSet
	if o.placer == "search" {
		// Interference-aware co-location: anneal each model's region
		// against the set's Jain-penalized aggregate throughput.
		evalCfg.Search = eval.SearchSpec{Steps: o.searchSteps, Seed: o.searchSeed, Batch: o.searchBatch}
		var err error
		cs, es, _, err = eval.SearchCoLocate(evalCfg, names, design, o.maxBatch)
		if err != nil {
			return nil, snap, err
		}
	} else {
		placer, err := compiler.ParsePlacer(o.placer)
		if err != nil {
			return nil, snap, err
		}
		cs, es, err = eval.CoLocate(evalCfg, names, design, placer)
		if err != nil {
			return nil, snap, err
		}
	}
	sr, err := es.RunSet(o.maxBatch)
	if err != nil {
		return nil, snap, err
	}
	snap = serve.NewFabricSnapshot(design.String(), o.placer, sr)
	entries := make([]serve.RouterEntry, 0, len(names))
	for i, name := range names {
		model, err := bnn.NewModel(name, o.seed)
		if err != nil {
			return nil, snap, err
		}
		s, err := buildServerWithPricer(o, model, design, es.Engines()[i])
		if err != nil {
			return nil, snap, fmt.Errorf("%s: %w", cs[i].ModelName, err)
		}
		entries = append(entries, serve.RouterEntry{Name: name, Server: s})
	}
	router, err := serve.NewRouter(entries)
	if err != nil {
		return nil, snap, err
	}
	router.SetFabric(snap)
	return router, snap, nil
}

// buildServerWithPricer assembles one model server priced by an
// existing pipeline engine (the co-located one).
func buildServerWithPricer(o options, model *bnn.Model, design arch.Design, eng *sim.Engine) (*serve.Server, error) {
	backend, err := buildBackend(o, model, design)
	if err != nil {
		return nil, err
	}
	cfg := serve.Config{
		Backend:  backend,
		MaxBatch: o.maxBatch,
		MaxWait:  o.maxWait,
		QueueCap: o.queueCap,
		Workers:  o.workers,
		Trace:    o.rec,
	}
	if !o.noPrice {
		cfg.Pricer, err = serve.NewPricer(eng)
		if err != nil {
			return nil, err
		}
	}
	return serve.New(cfg)
}

// buildBackend picks the execution backend for one model.
func buildBackend(o options, model *bnn.Model, design arch.Design) (serve.Backend, error) {
	switch o.backend {
	case "software":
		return serve.NewSoftwareBackend(model, o.inferW)
	case "hardware":
		spec, err := design.Spec()
		if err != nil {
			return nil, err
		}
		return serve.NewHardwareBackend(model, robust.DefaultConfig(spec.Tech))
	}
	return nil, fmt.Errorf("unknown -backend %q (want software|hardware)", o.backend)
}

// buildServer assembles one server from the options (fresh metrics and
// queue — the loadgen sweep calls it once per rate point).
func buildServer(o options, model *bnn.Model, design arch.Design) (*serve.Server, error) {
	backend, err := buildBackend(o, model, design)
	if err != nil {
		return nil, err
	}
	cfg := serve.Config{
		Backend:  backend,
		MaxBatch: o.maxBatch,
		MaxWait:  o.maxWait,
		QueueCap: o.queueCap,
		Workers:  o.workers,
		Trace:    o.rec,
	}
	if !o.noPrice {
		eng, err := eval.Pipeline(eval.DefaultConfig(), model, design)
		if err != nil {
			return nil, err
		}
		cfg.Pricer, err = serve.NewPricer(eng)
		if err != nil {
			return nil, err
		}
	}
	return serve.New(cfg)
}

// runLifetimeMode drives the device-lifetime scenario — the dynamic
// counterpart of the Fig. 8 robustness statics: replicas always serve
// on simulated ePCM crossbars (the drifting technology), while the
// selected -design prices the stream as usual.
func runLifetimeMode(o options, design arch.Design, out io.Writer) error {
	if o.requests <= 0 {
		return fmt.Errorf("-lifetime needs -requests > 0, got %d", o.requests)
	}
	if o.lifetimes <= 0 || o.driftHorizon <= 0 {
		return fmt.Errorf("-lifetimes %g and -drift-horizon %g must be > 0", o.lifetimes, o.driftHorizon)
	}
	hw := robust.DefaultConfig(device.EPCM)
	hw.Array.Seed = o.seed + 6
	if o.driftNu > 0 {
		hw.Array.EPCM.DriftNu = o.driftNu
	}
	evalCfg := eval.DefaultConfig()
	evalCfg.Seed = o.seed
	sc := eval.LifetimeScenario{
		Model:    o.network,
		Design:   design,
		Eval:     evalCfg,
		Hardware: hw,
		Workers:  o.workers,
		MaxBatch: o.maxBatch,
		Requests: o.requests,
		Seed:     o.seed,

		CanarySize: o.canarySize,
		Lifetime: serve.LifetimeConfig{
			CanaryEvery:        o.canaryPeriod,
			Floor:              o.floor,
			FlagAfter:          o.flagAfter,
			FaultRatePerSecond: o.faultRate,
			FaultSeed:          o.seed + 7,
		},
		// Total simulated device time = lifetimes × horizon, spread
		// evenly over the served samples.
		SecondsPerSample: o.lifetimes * o.driftHorizon / float64(o.requests),
		Fallback:         o.fallback,
		Clients:          o.clients,
		Trace:            o.rec,
	}
	if o.noPrice {
		sc.Design = -1
	}
	if o.diurnalBase > 0 {
		peak := o.diurnalPeak
		if peak <= 0 {
			peak = 4 * o.diurnalBase
		}
		sc.Diurnal = &eval.DiurnalLoad{BaseRate: o.diurnalBase, PeakRate: peak, Period: o.diurnalPeriod}
	}
	rep, err := eval.RunLifetime(sc)
	if err != nil {
		return err
	}
	if err := writeServeTrace(o); err != nil {
		return err
	}
	switch {
	case o.csvOut:
		return eval.WriteLifetimeCSV(out, rep)
	case o.jsonOut:
		return eval.WriteLifetimeJSON(out, rep)
	default:
		fmt.Fprint(out, eval.LifetimeTable(rep))
		return nil
	}
}

// writeServeTrace dumps the recorded span ring to -trace-out (no-op
// when unset).
func writeServeTrace(o options) error {
	if o.traceOut == "" || o.rec == nil {
		return nil
	}
	f, err := os.Create(o.traceOut)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, o.rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runLoadgen sweeps the requested arrival rates and renders the curve.
func runLoadgen(o options, model *bnn.Model, newServer func() (*serve.Server, error), out io.Writer) error {
	rates, err := parseRates(o.rates)
	if err != nil {
		return err
	}
	size := 1
	for _, d := range model.InputShape {
		size *= d
	}
	base := serve.LoadConfig{
		Requests: o.requests,
		Clients:  o.clients,
		Seed:     o.seed,
		Inputs:   serve.SyntheticInputs(size, 32, o.seed),
	}
	var points []serve.RatePoint
	if len(rates) == 1 && rates[0] == 0 {
		// Closed loop: one point, offered = achieved.
		s, err := newServer()
		if err != nil {
			return err
		}
		rep, err := serve.Run(s, base)
		s.Stop()
		if err != nil {
			return err
		}
		points = []serve.RatePoint{{RatePerSec: 0, Report: rep}}
	} else {
		points, err = serve.SweepRates(newServer, rates, base)
		if err != nil {
			return err
		}
	}
	if err := writeServeTrace(o); err != nil {
		return err
	}
	switch {
	case o.csvOut:
		return serve.WriteLoadCSV(out, points)
	case o.jsonOut:
		return serve.WriteLoadJSON(out, points)
	default:
		fmt.Fprint(out, serve.LoadTable(points))
		return nil
	}
}

// runMaxBatchSweep drives the closed-loop generator once per
// dynamic-batch cap and renders throughput vs MaxBatch — the software
// batching curve: the bit-parallel forward path packs up to 64 samples
// per machine word, so software throughput climbs with the cap until
// the lane word is full.
func runMaxBatchSweep(o options, model *bnn.Model, design arch.Design, out io.Writer) error {
	var caps []int
	for _, f := range strings.Split(o.maxBatches, ",") {
		mb, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || mb < 1 {
			return fmt.Errorf("bad -sweep-maxbatch entry %q (want positive integers)", f)
		}
		caps = append(caps, mb)
	}
	size := 1
	for _, d := range model.InputShape {
		size *= d
	}
	base := serve.LoadConfig{
		Requests: o.requests,
		Seed:     o.seed,
		Inputs:   serve.SyntheticInputs(size, 32, o.seed),
	}
	points, err := serve.SweepMaxBatch(func(mb int) (*serve.Server, error) {
		oo := o
		oo.maxBatch = mb
		return buildServer(oo, model, design)
	}, caps, base)
	if err != nil {
		return err
	}
	if err := writeServeTrace(o); err != nil {
		return err
	}
	switch {
	case o.csvOut:
		return serve.WriteBatchCSV(out, points)
	case o.jsonOut:
		return serve.WriteBatchJSON(out, points)
	default:
		fmt.Fprint(out, serve.BatchTable(points))
		return nil
	}
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad -rate entry %q (want non-negative numbers)", f)
		}
		out = append(out, r)
	}
	if len(out) > 1 {
		for _, r := range out {
			if r == 0 {
				return nil, fmt.Errorf("-rate 0 (closed loop) cannot be mixed with open-loop rates")
			}
		}
	}
	return out, nil
}
