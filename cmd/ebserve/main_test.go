package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/trace"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestLoadgenTable(t *testing.T) {
	out := runOK(t, "-loadgen", "-network", "MLP-S", "-rate", "2000,8000",
		"-requests", "40", "-max-wait", "200us")
	for _, frag := range []string{"rate/s", "p99 ms", "sim ceiling", "2000", "8000"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("loadgen table missing %q:\n%s", frag, out)
		}
	}
}

func TestLoadgenCSV(t *testing.T) {
	out := runOK(t, "-loadgen", "-rate", "4000", "-requests", "30", "-csv")
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0][0] != "rate_per_sec" {
		t.Fatalf("CSV shape wrong: %v", recs)
	}
	// With pricing on (the default), the sim columns must be populated.
	idx := -1
	for i, h := range recs[0] {
		if h == "sim_ceiling_per_sec" {
			idx = i
		}
	}
	if idx < 0 || recs[1][idx] == "0" {
		t.Fatalf("sim ceiling missing from CSV row: %v", recs[1])
	}
}

func TestLoadgenClosedLoopJSON(t *testing.T) {
	out := runOK(t, "-loadgen", "-rate", "0", "-requests", "30", "-clients", "3", "-json", "-no-pricing")
	var points []map[string]any
	if err := json.Unmarshal([]byte(out), &points); err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("closed loop should yield one point, got %d", len(points))
	}
	rep := points[0]["report"].(map[string]any)
	if rep["completed"].(float64) != 30 {
		t.Fatalf("closed loop completed %v, want 30", rep["completed"])
	}
}

func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	for name, args := range map[string][]string{
		"unknown network": {"-network", "MLP-XXL"},
		"unknown design":  {"-design", "warp-drive"},
		"unknown backend": {"-backend", "quantum", "-loadgen"},
		"bad rate":        {"-loadgen", "-rate", "fast"},
		"mixed rate 0":    {"-loadgen", "-rate", "0,1000"},
		"unknown flag":    {"-frobnicate"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", name, args)
		}
	}
	// The design error must name the offender and the registry.
	err := run([]string{"-design", "warp-drive"}, &out)
	if err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Fatalf("design error should name the bad design: %v", err)
	}
}

// TestMultiModelRouter builds the co-located router directly (run()
// would block on ListenAndServe) and drives it end to end: routing,
// per-model stats and the shared-fabric snapshot.
func TestMultiModelRouter(t *testing.T) {
	o := options{
		models:   "MLP-S, CNN-M",
		placer:   "mesh",
		design:   "eb",
		backend:  "software",
		maxBatch: 8,
		maxWait:  100 * time.Microsecond,
		workers:  1,
		seed:     1,
	}
	design, err := arch.ParseDesign(o.design)
	if err != nil {
		t.Fatal(err)
	}
	router, fabric, err := buildRouter(o, design)
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	defer router.Stop()
	if len(fabric.Models) != 2 || fabric.Placer != "mesh" {
		t.Fatalf("fabric snapshot %+v", fabric)
	}
	for _, fm := range fabric.Models {
		if fm.Region == "" || fm.CoLocatedPerSec <= 0 || fm.SlowdownX < 1-1e-9 {
			t.Fatalf("fabric model %+v", fm)
		}
	}
	h := router.Handler()
	input := make([]float64, 784)
	body, _ := json.Marshal(map[string]any{"input": input})
	req := httptest.NewRequest("POST", "/infer?model=MLP-S", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("infer status %d: %s", rec.Code, rec.Body.String())
	}
	req = httptest.NewRequest("GET", "/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["fabric"]; !ok {
		t.Fatalf("stats missing fabric block: %s", rec.Body.String())
	}
}

// TestMultiModelRouterSearchPlacer: `-placer search` routes through
// eval.SearchCoLocate — the fabric snapshot reports the searched
// layouts and the endpoints serve as usual.
func TestMultiModelRouterSearchPlacer(t *testing.T) {
	o := options{
		models:      "MLP-S, CNN-S",
		placer:      "search",
		design:      "eb",
		backend:     "software",
		maxBatch:    8,
		maxWait:     100 * time.Microsecond,
		workers:     1,
		seed:        1,
		searchSteps: 8,
		searchSeed:  1,
	}
	design, err := arch.ParseDesign(o.design)
	if err != nil {
		t.Fatal(err)
	}
	router, fabric, err := buildRouter(o, design)
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	defer router.Stop()
	if len(fabric.Models) != 2 || fabric.Placer != "search" {
		t.Fatalf("fabric snapshot %+v", fabric)
	}
	for _, fm := range fabric.Models {
		if fm.Region == "" || fm.CoLocatedPerSec <= 0 {
			t.Fatalf("fabric model %+v", fm)
		}
	}
	h := router.Handler()
	req := httptest.NewRequest("GET", "/models", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "MLP-S") {
		t.Fatalf("models endpoint: %d %s", rec.Code, rec.Body.String())
	}
}

func TestMultiModelFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-models", "MLP-S", "-loadgen"}, &out); err == nil {
		t.Fatal("-models with -loadgen must error")
	}
	if err := run([]string{"-models", "MLP-S", "-placer", "warp"}, &out); err == nil {
		t.Fatal("unknown placer must error")
	}
	if err := run([]string{"-models", "MLP-S,ghost"}, &out); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestSweepMaxBatchTable(t *testing.T) {
	out := runOK(t, "-loadgen", "-network", "MLP-S", "-sweep-maxbatch", "1,8",
		"-requests", "48", "-max-wait", "200us", "-no-pricing")
	for _, frag := range []string{"max-batch", "achieved/s", "mean batch"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("sweep table missing %q:\n%s", frag, out)
		}
	}
}

func TestSweepMaxBatchCSV(t *testing.T) {
	out := runOK(t, "-loadgen", "-sweep-maxbatch", "4", "-requests", "24", "-csv", "-no-pricing")
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0][0] != "max_batch" || recs[1][0] != "4" {
		t.Fatalf("CSV shape wrong: %v", recs)
	}
}

func TestSweepMaxBatchFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-loadgen", "-sweep-maxbatch", "0"}, &out); err == nil {
		t.Fatal("accepted -sweep-maxbatch 0")
	}
	if err := run([]string{"-loadgen", "-sweep-maxbatch", "x"}, &out); err == nil {
		t.Fatal("accepted -sweep-maxbatch x")
	}
}

func TestLifetimeTableMode(t *testing.T) {
	out := runOK(t, "-lifetime", "-network", "MLP-S", "-requests", "12",
		"-lifetimes", "3", "-drift-horizon", "80", "-canary-period", "2",
		"-canary-size", "8", "-max-batch", "4", "-no-pricing")
	for _, frag := range []string{"Device lifetime", "MLP-S", "availability", "recalibrations", "canary accuracy"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("lifetime table missing %q:\n%s", frag, out)
		}
	}
}

func TestLifetimeJSONMode(t *testing.T) {
	out := runOK(t, "-lifetime", "-requests", "12", "-lifetimes", "3",
		"-drift-horizon", "80", "-canary-period", "2", "-canary-size", "8",
		"-max-batch", "4", "-json")
	var rep map[string]any
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep["completed"].(float64) != 12 {
		t.Fatalf("completed %v, want 12", rep["completed"])
	}
	if rep["recalibrations"].(float64) < 1 {
		t.Fatalf("drift never triggered recalibration:\n%s", out)
	}
	if rep["recal_energy_j"].(float64) <= 0 {
		t.Fatalf("recalibration not priced:\n%s", out)
	}
	// Pricing on by default: the EinsteinBarrier sim block must be there.
	stats := rep["stats"].(map[string]any)
	if _, ok := stats["sim"]; !ok {
		t.Fatalf("stats missing sim pricing block:\n%s", out)
	}
}

func TestLifetimeCSVMode(t *testing.T) {
	out := runOK(t, "-lifetime", "-requests", "12", "-lifetimes", "3",
		"-drift-horizon", "80", "-canary-period", "2", "-canary-size", "8",
		"-max-batch", "4", "-csv", "-no-pricing")
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// The lifetime CSV is the shared trace schema since PR 9: one
	// counter row per canary point, track = replica, seq = served
	// samples.
	if len(recs) < 2 || recs[0][0] != "kind" || recs[0][5] != "seq" {
		t.Fatalf("lifetime CSV shape wrong: %v", recs)
	}
	if recs[1][0] != "counter" {
		t.Fatalf("first lifetime row not a counter event: %v", recs[1])
	}
}

func TestLifetimeDiurnalMode(t *testing.T) {
	out := runOK(t, "-lifetime", "-requests", "12", "-lifetimes", "3",
		"-drift-horizon", "80", "-canary-period", "1", "-canary-size", "8",
		"-max-batch", "4", "-diurnal-base", "200", "-diurnal-period", "100ms",
		"-json", "-no-pricing")
	var rep map[string]any
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	total := rep["completed"].(float64) + rep["shed"].(float64) + rep["failed"].(float64)
	if total != 12 {
		t.Fatalf("diurnal arrivals not accounted for: %v", rep)
	}
}

func TestLifetimeFlagErrors(t *testing.T) {
	var out bytes.Buffer
	for name, args := range map[string][]string{
		"zero requests": {"-lifetime", "-requests", "0"},
		"zero horizon":  {"-lifetime", "-requests", "10", "-drift-horizon", "0"},
		"bad network":   {"-lifetime", "-network", "MLP-XXL", "-requests", "10"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", name, args)
		}
	}
}

func TestTraceOutLoadgen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.json")
	runOK(t, "-loadgen", "-rate", "0", "-requests", "16", "-clients", "1",
		"-no-pricing", "-trace-out", path)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("-trace-out not Chrome-trace JSON: %v", err)
	}
	var spans int
	for _, e := range doc.TraceEvents {
		if e["ph"] == "b" {
			spans++
		}
	}
	if spans != 16 {
		t.Fatalf("%d request spans, want 16", spans)
	}
	if doc.OtherData["time_axis"] != "wall_ns_since_start" {
		t.Fatalf("otherData %v", doc.OtherData)
	}
}

func TestTraceOutLifetime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "life.json")
	runOK(t, "-lifetime", "-requests", "12", "-lifetimes", "3",
		"-drift-horizon", "80", "-canary-period", "2", "-canary-size", "8",
		"-max-batch", "4", "-no-pricing", "-json", "-trace-out", path)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"recalibrate"`) {
		t.Fatalf("lifetime span trace has no recalibration slice:\n%.400s", b)
	}
}

// TestServeModeTraceWired: -trace attaches the span ring, so the
// handler exposes GET /trace (run() would block on ListenAndServe, so
// the server is built directly from the options).
func TestServeModeTraceWired(t *testing.T) {
	o := options{
		network: "MLP-S", design: "eb", backend: "software",
		maxBatch: 8, maxWait: 100 * time.Microsecond, workers: 1, seed: 1,
		noPrice: true, trace: true,
		rec: trace.New(trace.DefaultCapacity),
	}
	design, err := arch.ParseDesign(o.design)
	if err != nil {
		t.Fatal(err)
	}
	model, err := bnn.NewModel(o.network, o.seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := buildServer(o, model, design)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	req := httptest.NewRequest("GET", "/trace", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "traceEvents") {
		t.Fatalf("GET /trace: %d %s", rec.Code, rec.Body.String())
	}
}
