// Command benchgate is the benchmark regression gate: it compares a
// `go test -bench` output stream against the checked-in
// bench_baseline.json and fails when a gated benchmark regressed.
//
//	go test -run xxx -bench '<gate regex>' -benchmem -count 3 . | tee gate.out
//	benchgate -baseline bench_baseline.json gate.out        # gate (CI)
//	benchgate -baseline bench_baseline.json -write gate.out # regenerate baseline
//
// Raw ns/op is meaningless across machines, so every timing is
// normalized by the BenchmarkCalibration result from the SAME run — a
// fixed integer workload that tracks host speed. A benchmark fails the
// gate when its calibration-normalized time exceeds the baseline's by
// more than -tolerance (default 10%). Allocations need no
// normalization or tolerance — counts are deterministic — so any
// allocs/op above the baseline fails: a 0 baseline is a zero-alloc
// contract (the hot paths), and growth over a nonzero baseline is a
// real regression.
// With -count > 1 the minimum across repetitions is compared, which
// filters scheduler noise on shared CI runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Baseline is the checked-in gate reference.
type Baseline struct {
	// Calibration names the normalizing benchmark.
	Calibration string `json:"calibration"`
	// CalibrationNs is the calibration benchmark's ns/op on the machine
	// that produced the baseline.
	CalibrationNs float64 `json:"calibration_ns_per_op"`
	// Entries are the gated benchmarks, sorted by name.
	Entries []Entry `json:"entries"`
}

// Entry is one gated benchmark.
type Entry struct {
	Name string `json:"name"`
	// NsPerOp is the raw timing on the baseline machine; the gate
	// compares NsPerOp/CalibrationNs ratios, never raw numbers.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is gated strictly when 0 (zero-alloc contracts).
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// result is one benchmark measured from the input stream (min over
// repetitions).
type result struct {
	ns     float64
	allocs int64
	seen   int
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkFoo/bar-8   100   12345 ns/op   7 B/op   2 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)$`)

var allocsField = regexp.MustCompile(`(\d+) allocs/op`)

// parse reads benchmark output and folds repeated runs of one name to
// the minimum ns/op (and minimum allocs/op).
func parse(r io.Reader) (map[string]*result, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := map[string]*result{}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		allocs := int64(-1)
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			allocs, _ = strconv.ParseInt(am[1], 10, 64)
		}
		r, ok := out[m[1]]
		if !ok {
			out[m[1]] = &result{ns: ns, allocs: allocs, seen: 1}
			continue
		}
		r.seen++
		if ns < r.ns {
			r.ns = ns
		}
		if allocs >= 0 && (r.allocs < 0 || allocs < r.allocs) {
			r.allocs = allocs
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(out)
	baselinePath := fs.String("baseline", "bench_baseline.json", "checked-in baseline to gate against (or to write with -write)")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional slowdown of the calibration-normalized time")
	calibration := fs.String("calibration", "BenchmarkCalibration", "normalizing benchmark name")
	write := fs.Bool("write", false, "regenerate the baseline from the input instead of gating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: benchgate [flags] <bench-output-file> (use - for stdin)")
	}
	var in io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		return err
	}
	calib, ok := results[*calibration]
	if !ok {
		return fmt.Errorf("input has no %s result — the gate cannot normalize timings without it", *calibration)
	}

	if *write {
		return writeBaseline(*baselinePath, *calibration, calib.ns, results, out)
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", *baselinePath, err)
	}
	if base.Calibration != *calibration {
		return fmt.Errorf("baseline normalizes by %q, gate run by %q", base.Calibration, *calibration)
	}
	if base.CalibrationNs <= 0 {
		return fmt.Errorf("baseline calibration ns/op %v must be > 0", base.CalibrationNs)
	}

	var failures []string
	fmt.Fprintf(out, "benchgate: calibration %s %.0f ns/op (baseline %.0f; machine factor %.2fx)\n",
		*calibration, calib.ns, base.CalibrationNs, calib.ns/base.CalibrationNs)
	for _, e := range base.Entries {
		cur, ok := results[e.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from input", e.Name))
			continue
		}
		rel := (cur.ns / calib.ns) / (e.NsPerOp / base.CalibrationNs)
		status := "ok"
		if rel > 1+*tolerance {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.1f%% slower than baseline (normalized; tolerance %.0f%%)",
				e.Name, (rel-1)*100, *tolerance*100))
		}
		fmt.Fprintf(out, "  %-60s %10.0f ns/op  %+7.1f%% %s\n", e.Name, cur.ns, (rel-1)*100, status)
		// Allocation counts are deterministic (no normalization, no
		// tolerance): a 0 baseline is a zero-alloc contract, and any
		// growth over a nonzero baseline is a real regression. Baselines
		// of -1 (recorded without -benchmem) are never alloc-gated.
		if e.AllocsPerOp >= 0 && cur.allocs > e.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, baseline pins %d", e.Name, cur.allocs, e.AllocsPerOp))
			fmt.Fprintf(out, "  %-60s %10d allocs/op, want ≤ %d FAIL\n", e.Name, cur.allocs, e.AllocsPerOp)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(out, "benchgate: %d benchmarks within %.0f%% of baseline\n", len(base.Entries), *tolerance*100)
	return nil
}

// writeBaseline regenerates the baseline file from measured results:
// every benchmark in the input except the calibration itself becomes a
// gated entry.
func writeBaseline(path, calibration string, calibNs float64, results map[string]*result, out io.Writer) error {
	base := Baseline{Calibration: calibration, CalibrationNs: calibNs}
	names := make([]string, 0, len(results))
	for name := range results {
		if name != calibration {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		r := results[name]
		allocs := r.allocs
		if allocs < 0 {
			allocs = -1 // -benchmem was off; never alloc-gated
		}
		base.Entries = append(base.Entries, Entry{Name: name, NsPerOp: r.ns, AllocsPerOp: allocs})
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "benchgate: wrote %d entries to %s\n", len(base.Entries), path)
	return nil
}
