package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
BenchmarkCalibration-8     	     100	     50000 ns/op
BenchmarkKernel/fast-8     	    1000	      1000 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernel/fast-8     	    1000	      1100 ns/op	       0 B/op	       0 allocs/op
BenchmarkModel/big-8       	      10	    200000 ns/op	    4096 B/op	      12 allocs/op
PASS
`

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseTakesMinOverRepeats(t *testing.T) {
	results, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	k := results["BenchmarkKernel/fast"]
	if k == nil || k.ns != 1000 || k.allocs != 0 || k.seen != 2 {
		t.Fatalf("kernel result = %+v", k)
	}
	if c := results["BenchmarkCalibration"]; c == nil || c.ns != 50000 || c.allocs != -1 {
		t.Fatalf("calibration result = %+v", results["BenchmarkCalibration"])
	}
}

func TestWriteThenGateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bench := writeFile(t, dir, "bench.out", sampleBench)
	baseline := filepath.Join(dir, "baseline.json")
	var out bytes.Buffer
	if err := run([]string{"-baseline", baseline, "-write", bench}, &out); err != nil {
		t.Fatal(err)
	}
	var base Baseline
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.CalibrationNs != 50000 || len(base.Entries) != 2 {
		t.Fatalf("baseline = %+v", base)
	}
	// Gating the same output against its own baseline passes.
	out.Reset()
	if err := run([]string{"-baseline", baseline, bench}, &out); err != nil {
		t.Fatalf("self-gate failed: %v\n%s", err, out.String())
	}
}

func TestGateNormalizesByCalibration(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	var out bytes.Buffer
	if err := run([]string{"-baseline", baseline, "-write",
		writeFile(t, dir, "base.out", sampleBench)}, &out); err != nil {
		t.Fatal(err)
	}
	// Everything 3x slower, calibration included: a slower machine, not a
	// regression — the gate must pass.
	slower := strings.NewReplacer(
		"50000 ns/op", "150000 ns/op",
		"1000 ns/op", "3000 ns/op",
		"1100 ns/op", "3300 ns/op",
		"200000 ns/op", "600000 ns/op",
	).Replace(sampleBench)
	out.Reset()
	if err := run([]string{"-baseline", baseline,
		writeFile(t, dir, "slow.out", slower)}, &out); err != nil {
		t.Fatalf("uniformly slower machine flagged as regression: %v\n%s", err, out.String())
	}
	// One benchmark ~60% slower (both repeats) with calibration
	// unchanged: a regression.
	regressed := strings.NewReplacer(
		"1000 ns/op", "1600 ns/op",
		"1100 ns/op", "1700 ns/op",
	).Replace(sampleBench)
	out.Reset()
	err := run([]string{"-baseline", baseline,
		writeFile(t, dir, "reg.out", regressed)}, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkKernel/fast") {
		t.Fatalf("regression not flagged: %v\n%s", err, out.String())
	}
}

func TestGateFlagsNewAllocations(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	var out bytes.Buffer
	if err := run([]string{"-baseline", baseline, "-write",
		writeFile(t, dir, "base.out", sampleBench)}, &out); err != nil {
		t.Fatal(err)
	}
	// Zero-alloc benchmark starts allocating: fails even with timing flat.
	alloc := strings.ReplaceAll(sampleBench, "0 B/op	       0 allocs/op", "64 B/op	       2 allocs/op")
	out.Reset()
	err := run([]string{"-baseline", baseline, writeFile(t, dir, "alloc.out", alloc)}, &out)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("new allocations not flagged: %v\n%s", err, out.String())
	}
	// Alloc growth on an already-allocating benchmark is gated too:
	// counts are deterministic, so any increase is a real regression.
	grown := strings.Replace(sampleBench, "12 allocs/op", "20 allocs/op", 1)
	out.Reset()
	err = run([]string{"-baseline", baseline, writeFile(t, dir, "grown.out", grown)}, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkModel/big") {
		t.Fatalf("alloc growth over nonzero baseline not flagged: %v\n%s", err, out.String())
	}
	// Shrinking alloc counts pass (headroom to re-baseline).
	fewer := strings.Replace(sampleBench, "12 allocs/op", "7 allocs/op", 1)
	out.Reset()
	if err := run([]string{"-baseline", baseline, writeFile(t, dir, "fewer.out", fewer)}, &out); err != nil {
		t.Fatalf("alloc improvement flagged: %v\n%s", err, out.String())
	}
}

func TestGateFlagsMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	var out bytes.Buffer
	if err := run([]string{"-baseline", baseline, "-write",
		writeFile(t, dir, "base.out", sampleBench)}, &out); err != nil {
		t.Fatal(err)
	}
	missing := strings.Replace(sampleBench,
		"BenchmarkModel/big-8       	      10	    200000 ns/op	    4096 B/op	      12 allocs/op", "", 1)
	out.Reset()
	err := run([]string{"-baseline", baseline, writeFile(t, dir, "missing.out", missing)}, &out)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing gated benchmark not flagged: %v\n%s", err, out.String())
	}
}

func TestGateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("accepted no input file")
	}
	dir := t.TempDir()
	empty := writeFile(t, dir, "empty.out", "no benchmarks here\n")
	if err := run([]string{"-baseline", filepath.Join(dir, "nope.json"), empty}, &out); err == nil {
		t.Fatal("accepted input without benchmark lines")
	}
	noCalib := writeFile(t, dir, "nc.out", "BenchmarkKernel/fast-8 100 1000 ns/op\n")
	if err := run([]string{"-baseline", filepath.Join(dir, "nope.json"), noCalib}, &out); err == nil ||
		!strings.Contains(err.Error(), "BenchmarkCalibration") {
		t.Fatalf("missing calibration not flagged: %v", err)
	}
}
