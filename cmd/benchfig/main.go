// Command benchfig regenerates the paper's evaluation artifacts:
//
//	benchfig -fig 7          # Fig. 7: normalized latency per network
//	benchfig -fig 8          # Fig. 8: normalized energy per network
//	benchfig -fig 7 -summary # §VI callouts vs the paper's values
//	benchfig -fig wdm        # WDM capacity sweep (E6)
//	benchfig -fig steps      # TacitMap vs CustBinaryMap step sweep (E5)
package main

import (
	"flag"
	"fmt"
	"os"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/eval"
)

func main() {
	fig := flag.String("fig", "7", "artifact to regenerate: 7, 8, wdm, steps")
	summary := flag.Bool("summary", false, "also print the §VI observation summary")
	seed := flag.Int64("seed", 1, "zoo weight-synthesis seed")
	k := flag.Int("k", 0, "override WDM capacity (default: architecture default 16)")
	colsPerADC := flag.Int("cols-per-adc", 0, "override ADC sharing factor")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = one per CPU, 1 = serial)")
	csvOut := flag.Bool("csv", false, "emit the full report as CSV instead of tables")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON instead of tables")
	flag.Parse()

	cfg := eval.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *k > 0 {
		cfg.Arch.WDMCapacity = *k
	}
	if *colsPerADC > 0 {
		cfg.Arch.ColumnsPerADC = *colsPerADC
	}

	switch *fig {
	case "7", "8":
		rep, err := eval.Run(cfg)
		if err != nil {
			fatal(err)
		}
		if *csvOut {
			if err := rep.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if *jsonOut {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if *fig == "7" {
			fmt.Print(rep.Fig7Table())
		} else {
			fmt.Print(rep.Fig8Table())
		}
		if *summary {
			fmt.Println()
			fmt.Print(rep.SummaryTable())
		}
	case "wdm":
		wdmSweep(cfg)
	case "steps":
		stepSweep()
	case "ablate":
		ablate(cfg)
	case "area":
		areaTable(cfg)
	default:
		fatal(fmt.Errorf("unknown -fig %q", *fig))
	}
}

// areaTable prints the per-design silicon area of one crossbar unit —
// the paper's §V-A synthesis methodology made explicit.
func areaTable(cfg eval.Config) {
	p := energy.DefaultAreaParams()
	a := cfg.Arch
	rows := []struct {
		name string
		b    energy.AreaBreakdown
	}{
		{"Baseline-ePCM (2T2R+SA)", p.BaselineArrayArea(a.CrossbarRows, a.CrossbarCols/2)},
		{"TacitMap-ePCM (1T1R+ADC)", p.TacitArrayArea(a.CrossbarRows, a.CrossbarCols, a.ColumnsPerADC)},
		{"EinsteinBarrier (oPCM)", p.EinsteinBarrierArrayArea(a.CrossbarRows, a.CrossbarCols, a.ColumnsPerADC, a.WDMCapacity, a.VCoresPerECore)},
	}
	fmt.Println("Per-array silicon area (mm2)")
	fmt.Printf("%-26s %10s %12s %10s %10s %10s\n", "design", "cells", "converters", "photonic", "digital", "total")
	for _, r := range rows {
		fmt.Printf("%-26s %10.4f %12.4f %10.4f %10.4f %10.4f\n", r.name,
			r.b.Cells/1e6, r.b.Converters/1e6, r.b.Photonic/1e6, r.b.Digital/1e6, r.b.Total()/1e6)
	}
}

// ablate prints the three design-choice sweeps DESIGN.md calls out.
func ablate(cfg eval.Config) {
	wdm, err := eval.AblateWDMCapacity(cfg, []int{1, 2, 4, 8, 16})
	if err != nil {
		fatal(err)
	}
	fmt.Print(eval.AblationTable("WDM capacity sweep", wdm))
	fmt.Println()
	adc, err := eval.AblateColumnsPerADC(cfg, []int{1, 4, 8, 16, 32})
	if err != nil {
		fatal(err)
	}
	fmt.Print(eval.AblationTable("ADC sharing sweep", adc))
	fmt.Println()
	sizes, err := eval.AblateCrossbarSize(cfg, []int{128, 256, 512})
	if err != nil {
		fatal(err)
	}
	fmt.Print(eval.AblationTable("Crossbar size sweep", sizes))
}

// wdmSweep reproduces E6: EinsteinBarrier speedup over TacitMap-ePCM as
// the WDM capacity grows — bounded by K and by the network's available
// parallelism (paper §VI-A observation 3).
func wdmSweep(cfg eval.Config) {
	fmt.Println("E6 — EinsteinBarrier/TacitMap-ePCM latency ratio vs WDM capacity K")
	fmt.Printf("%-6s", "K")
	base, err := eval.Run(cfg)
	if err != nil {
		fatal(err)
	}
	for _, n := range base.Networks {
		fmt.Printf("%10s", n.Network)
	}
	fmt.Println()
	for _, k := range []int{1, 2, 4, 8, 16} {
		c := cfg
		c.Arch.WDMCapacity = k
		rep, err := eval.Run(c)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6d", k)
		for _, n := range rep.Networks {
			fmt.Printf("%9.1fx", n.LatTacit/n.LatEB)
		}
		fmt.Println()
	}
}

// stepSweep reproduces E5: the §III theoretical claim that TacitMap
// needs n× fewer crossbar steps than CustBinaryMap on the same device.
func stepSweep() {
	fmt.Println("E5 — serial crossbar steps per input vector (single 256x256 array)")
	fmt.Printf("%-24s %14s %14s %10s\n", "layer (n x m)", "CustBinaryMap", "TacitMap", "ratio")
	cfg := arch.DefaultConfig()
	for _, dims := range [][2]int{{16, 128}, {64, 128}, {128, 128}, {256, 128}, {256, 256}, {512, 512}} {
		n, m := dims[0], dims[1]
		tp, err := core.PlanTacit(n, m, cfg.CrossbarRows, cfg.CrossbarCols)
		if err != nil {
			fatal(err)
		}
		cp, err := core.PlanCust(n, m, cfg.CrossbarRows, cfg.CrossbarCols/2)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-24s %14d %14d %9.0fx\n",
			fmt.Sprintf("%d x %d", n, m),
			cp.SingleArrayStepsPerInput(), tp.SingleArrayStepsPerInput(),
			float64(cp.SingleArrayStepsPerInput())/float64(tp.SingleArrayStepsPerInput()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfig:", err)
	os.Exit(1)
}
