// Command benchfig regenerates the paper's evaluation artifacts:
//
//	benchfig -fig 7             # Fig. 7: normalized latency per network
//	benchfig -fig 8             # Fig. 8: normalized energy per network
//	benchfig -fig 7 -summary    # §VI callouts vs the paper's values
//	benchfig -fig batch         # pipelined batch-throughput sweep
//	benchfig -fig batch -batch 1,8,64 -designs EinsteinBarrier,eb64
//	benchfig -fig placement     # placer comparison (BenchmarkPlacement)
//	benchfig -fig placement -placers greedy,mesh -batch 64
//	benchfig -fig wdm           # WDM capacity sweep (E6)
//	benchfig -fig steps         # TacitMap vs CustBinaryMap step sweep (E5)
//
// Designs are resolved by name through the arch design registry
// (arch.ParseDesign); -csv / -json switch any report to machine-readable
// export.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/eval"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: parses args, writes the report to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchfig", flag.ContinueOnError)
	fs.SetOutput(out)
	fig := fs.String("fig", "7", "artifact to regenerate: 7, 8, batch, placement, wdm, steps, ablate, area")
	summary := fs.Bool("summary", false, "also print the §VI observation summary")
	seed := fs.Int64("seed", 1, "zoo weight-synthesis seed")
	k := fs.Int("k", 0, "override WDM capacity (default: architecture default 16)")
	colsPerADC := fs.Int("cols-per-adc", 0, "override ADC sharing factor")
	workers := fs.Int("workers", 0, "evaluation worker pool size (0 = one per CPU, 1 = serial)")
	csvOut := fs.Bool("csv", false, "emit the report as CSV instead of tables")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of tables")
	batch := fs.String("batch", "1,2,4,8,16,32", "comma-separated batch sizes for -fig batch (-fig placement uses the maximum)")
	designNames := fs.String("designs", "", "comma-separated design names/aliases (default: every registered design for -fig batch, the paper set otherwise)")
	placerNames := fs.String("placers", "", "comma-separated placers for -fig placement (default: "+strings.Join(compiler.PlacerNames, ",")+")")
	searchSteps := fs.Int("search-steps", compiler.DefaultSearchSteps, "candidate-evaluation budget of the search placer")
	searchSeed := fs.Int64("search-seed", 1, "search placer RNG seed")
	searchBatch := fs.Int("search-batch", 0, "batch size of the search objective (0 = the figure's batch)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := eval.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Search = eval.SearchSpec{Steps: *searchSteps, Seed: *searchSeed, Batch: *searchBatch}
	if *k > 0 {
		cfg.Arch.WDMCapacity = *k
	}
	if *colsPerADC > 0 {
		cfg.Arch.ColumnsPerADC = *colsPerADC
	}
	designs, err := parseDesigns(*designNames)
	if err != nil {
		return err
	}

	switch *fig {
	case "7", "8":
		if len(designs) > 0 {
			cfg.Designs = append(append([]arch.Design{}, arch.CIMDesigns...), extrasOf(designs)...)
		}
		rep, err := eval.Run(cfg)
		if err != nil {
			return err
		}
		if *csvOut {
			return rep.WriteCSV(out)
		}
		if *jsonOut {
			return rep.WriteJSON(out)
		}
		if *fig == "7" {
			fmt.Fprint(out, rep.Fig7Table())
		} else {
			fmt.Fprint(out, rep.Fig8Table())
		}
		if *summary {
			fmt.Fprintln(out)
			fmt.Fprint(out, rep.SummaryTable())
		}
		return nil
	case "batch":
		batches, err := parseBatches(*batch)
		if err != nil {
			return err
		}
		rows, err := eval.ThroughputAt(cfg, designs, batches)
		if err != nil {
			return err
		}
		if *csvOut {
			return eval.WriteThroughputCSV(out, rows)
		}
		if *jsonOut {
			return eval.WriteThroughputJSON(out, rows)
		}
		fmt.Fprint(out, eval.ThroughputTable(rows))
		return nil
	case "placement":
		batches, err := parseBatches(*batch)
		if err != nil {
			return err
		}
		maxB := 0
		for _, b := range batches {
			maxB = max(maxB, b)
		}
		placers, err := parsePlacers(*placerNames)
		if err != nil {
			return err
		}
		d := arch.EinsteinBarrier
		if len(designs) > 1 {
			return fmt.Errorf("-fig placement compares placers on ONE design; got %d in -designs", len(designs))
		}
		if len(designs) == 1 {
			d = designs[0]
		}
		rows, err := eval.ComparePlacements(cfg, nil, placers, d, maxB)
		if err != nil {
			return err
		}
		if *csvOut {
			return eval.WritePlacementCSV(out, rows)
		}
		if *jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		fmt.Fprint(out, eval.PlacementTable(rows))
		if wins := eval.PlacementWins(rows); len(wins) > 0 {
			fmt.Fprintln(out)
			fmt.Fprint(out, eval.WinsTable(wins))
		}
		return nil
	case "wdm":
		return wdmSweep(out, cfg)
	case "steps":
		return stepSweep(out)
	case "ablate":
		return ablate(out, cfg)
	case "area":
		return areaTable(out, cfg)
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}
}

// parsePlacers validates a comma-separated placer list; empty means the
// full built-in set (search included). Heuristic names go through
// compiler.ParsePlacer; "search" is legal here because ComparePlacements
// builds the model-bound search placers itself.
func parsePlacers(names string) ([]string, error) {
	if strings.TrimSpace(names) == "" {
		return nil, nil
	}
	var out []string
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n != "search" {
			if _, err := compiler.ParsePlacer(n); err != nil {
				return nil, err
			}
		}
		out = append(out, n)
	}
	return out, nil
}

// parseDesigns resolves a comma-separated design list through the
// registry; unknown names are an error, never a silent default.
func parseDesigns(names string) ([]arch.Design, error) {
	if strings.TrimSpace(names) == "" {
		return nil, nil
	}
	var out []arch.Design
	for _, n := range strings.Split(names, ",") {
		d, err := arch.ParseDesign(n)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// extrasOf filters out the paper designs (already in every report).
func extrasOf(designs []arch.Design) []arch.Design {
	var out []arch.Design
	for _, d := range designs {
		extra := true
		for _, p := range arch.CIMDesigns {
			if d == p {
				extra = false
				break
			}
		}
		if extra {
			out = append(out, d)
		}
	}
	return out
}

func parseBatches(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || b < 1 {
			return nil, fmt.Errorf("bad -batch entry %q (want positive integers)", f)
		}
		out = append(out, b)
	}
	return out, nil
}

// areaTable prints the per-design silicon area of one crossbar unit —
// the paper's §V-A synthesis methodology made explicit.
func areaTable(out io.Writer, cfg eval.Config) error {
	p := energy.DefaultAreaParams()
	a := cfg.Arch
	rows := []struct {
		name string
		b    energy.AreaBreakdown
	}{
		{"Baseline-ePCM (2T2R+SA)", p.BaselineArrayArea(a.CrossbarRows, a.CrossbarCols/2)},
		{"TacitMap-ePCM (1T1R+ADC)", p.TacitArrayArea(a.CrossbarRows, a.CrossbarCols, a.ColumnsPerADC)},
		{"EinsteinBarrier (oPCM)", p.EinsteinBarrierArrayArea(a.CrossbarRows, a.CrossbarCols, a.ColumnsPerADC, a.WDMCapacity, a.VCoresPerECore)},
	}
	fmt.Fprintln(out, "Per-array silicon area (mm2)")
	fmt.Fprintf(out, "%-26s %10s %12s %10s %10s %10s\n", "design", "cells", "converters", "photonic", "digital", "total")
	for _, r := range rows {
		fmt.Fprintf(out, "%-26s %10.4f %12.4f %10.4f %10.4f %10.4f\n", r.name,
			r.b.Cells/1e6, r.b.Converters/1e6, r.b.Photonic/1e6, r.b.Digital/1e6, r.b.Total()/1e6)
	}
	return nil
}

// ablate prints the three design-choice sweeps DESIGN.md calls out.
func ablate(out io.Writer, cfg eval.Config) error {
	wdm, err := eval.AblateWDMCapacity(cfg, []int{1, 2, 4, 8, 16})
	if err != nil {
		return err
	}
	fmt.Fprint(out, eval.AblationTable("WDM capacity sweep", wdm))
	fmt.Fprintln(out)
	adc, err := eval.AblateColumnsPerADC(cfg, []int{1, 4, 8, 16, 32})
	if err != nil {
		return err
	}
	fmt.Fprint(out, eval.AblationTable("ADC sharing sweep", adc))
	fmt.Fprintln(out)
	sizes, err := eval.AblateCrossbarSize(cfg, []int{128, 256, 512})
	if err != nil {
		return err
	}
	fmt.Fprint(out, eval.AblationTable("Crossbar size sweep", sizes))
	return nil
}

// wdmSweep reproduces E6: EinsteinBarrier speedup over TacitMap-ePCM as
// the WDM capacity grows — bounded by K and by the network's available
// parallelism (paper §VI-A observation 3).
func wdmSweep(out io.Writer, cfg eval.Config) error {
	fmt.Fprintln(out, "E6 — EinsteinBarrier/TacitMap-ePCM latency ratio vs WDM capacity K")
	fmt.Fprintf(out, "%-6s", "K")
	base, err := eval.Run(cfg)
	if err != nil {
		return err
	}
	for _, n := range base.Networks {
		fmt.Fprintf(out, "%10s", n.Network)
	}
	fmt.Fprintln(out)
	for _, k := range []int{1, 2, 4, 8, 16} {
		c := cfg
		c.Arch.WDMCapacity = k
		rep, err := eval.Run(c)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-6d", k)
		for _, n := range rep.Networks {
			fmt.Fprintf(out, "%9.1fx", n.LatTacit/n.LatEB)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// stepSweep reproduces E5: the §III theoretical claim that TacitMap
// needs n× fewer crossbar steps than CustBinaryMap on the same device.
func stepSweep(out io.Writer) error {
	fmt.Fprintln(out, "E5 — serial crossbar steps per input vector (single 256x256 array)")
	fmt.Fprintf(out, "%-24s %14s %14s %10s\n", "layer (n x m)", "CustBinaryMap", "TacitMap", "ratio")
	cfg := arch.DefaultConfig()
	for _, dims := range [][2]int{{16, 128}, {64, 128}, {128, 128}, {256, 128}, {256, 256}, {512, 512}} {
		n, m := dims[0], dims[1]
		tp, err := core.PlanTacit(n, m, cfg.CrossbarRows, cfg.CrossbarCols)
		if err != nil {
			return err
		}
		cp, err := core.PlanCust(n, m, cfg.CrossbarRows, cfg.CrossbarCols/2)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-24s %14d %14d %9.0fx\n",
			fmt.Sprintf("%d x %d", n, m),
			cp.SingleArrayStepsPerInput(), tp.SingleArrayStepsPerInput(),
			float64(cp.SingleArrayStepsPerInput())/float64(tp.SingleArrayStepsPerInput()))
	}
	return nil
}
