package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestFig7CSVExport(t *testing.T) {
	out := runOK(t, "-fig", "7", "-csv")
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 { // header + six networks
		t.Fatalf("CSV has %d rows, want 7", len(recs))
	}
	if recs[0][0] != "network" || recs[0][1] != "fig7_tacit_speedup" {
		t.Fatalf("header wrong: %v", recs[0])
	}
	nets := map[string]bool{}
	for _, r := range recs[1:] {
		nets[r[0]] = true
	}
	for _, n := range []string{"CNN-S", "CNN-M", "CNN-L", "MLP-S", "MLP-M", "MLP-L"} {
		if !nets[n] {
			t.Fatalf("CSV missing network %s", n)
		}
	}
}

func TestFig7JSONExport(t *testing.T) {
	out := runOK(t, "-fig", "7", "-json")
	var rep struct {
		Summary  map[string]float64 `json:"summary"`
		Networks []map[string]any   `json:"networks"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Networks) != 6 {
		t.Fatalf("JSON has %d networks, want 6", len(rep.Networks))
	}
	if rep.Summary["MeanEBSpeedup"] <= 0 {
		t.Fatalf("summary missing MeanEBSpeedup: %v", rep.Summary)
	}
}

func TestBatchSweepTableAndExports(t *testing.T) {
	table := runOK(t, "-fig", "batch", "-batch", "1,8")
	for _, frag := range []string{"B=1", "B=8", "MLC-ePCM", "EinsteinBarrier-K64", "bottleneck"} {
		if !strings.Contains(table, frag) {
			t.Fatalf("batch table missing %q:\n%s", frag, table)
		}
	}

	out := runOK(t, "-fig", "batch", "-batch", "1,8", "-designs", "eb,eb64", "-csv")
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 6 networks × 2 designs × 2 batches
	if len(recs) != 1+24 {
		t.Fatalf("batch CSV has %d rows, want 25", len(recs))
	}

	out = runOK(t, "-fig", "batch", "-batch", "4", "-designs", "mlc", "-json")
	var rows []map[string]any
	if err := json.Unmarshal([]byte(out), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || rows[0]["design"] != "MLC-ePCM" {
		t.Fatalf("batch JSON wrong: %d rows, first design %v", len(rows), rows[0]["design"])
	}
}

func TestUnknownDesignAndFigError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "batch", "-designs", "warp-drive"}, &out); err == nil {
		t.Fatal("unknown design must error")
	} else if !strings.Contains(err.Error(), "warp-drive") {
		t.Fatalf("error should name the bad design: %v", err)
	}
	if err := run([]string{"-fig", "nope"}, &out); err == nil {
		t.Fatal("unknown -fig must error")
	}
	if err := run([]string{"-fig", "batch", "-batch", "0,-3"}, &out); err == nil {
		t.Fatal("bad batch list must error")
	}
}

func TestFigPlacement(t *testing.T) {
	out := runOK(t, "-fig", "placement", "-batch", "16", "-placers", "greedy,mesh")
	for _, frag := range []string{"Placement comparison", "greedy", "mesh", "CNN-L", "linkwait_us"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("placement table missing %q:\n%s", frag, out)
		}
	}
	// CSV export carries one row per network×placer.
	csvOut := runOK(t, "-fig", "placement", "-batch", "8", "-placers", "greedy", "-csv")
	rows, err := csv.NewReader(strings.NewReader(csvOut)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+6 { // header + six networks
		t.Fatalf("placement CSV has %d rows", len(rows))
	}
	if err := run([]string{"-fig", "placement", "-placers", "bogus"}, io.Discard); err == nil {
		t.Fatal("unknown placer must error")
	}
	// Multiple designs are an explicit error, never a silent first-pick.
	if err := run([]string{"-fig", "placement", "-designs", "eb,mlc"}, io.Discard); err == nil {
		t.Fatal("multiple designs must error for -fig placement")
	}
}

func TestFigPlacementSearch(t *testing.T) {
	out := runOK(t, "-fig", "placement", "-batch", "8", "-placers", "mesh,search", "-search-steps", "8")
	for _, frag := range []string{
		"Placement comparison",
		"Search vs best heuristic",
		"best-heur", "gain",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("placement search output missing %q:\n%s", frag, out)
		}
	}
}
