package main

import (
	"bytes"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestMLCStudy(t *testing.T) {
	out := runOK(t, "-sweep", "mlc")
	for _, frag := range []string{"levels", "analytic", "monte-carlo", "robust level limit"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("mlc study missing %q:\n%s", frag, out)
		}
	}
}

func TestNoiseSweepSmoke(t *testing.T) {
	// Tiny corner: 1 epoch, 4 held-out samples — exercises the full
	// train→map→sweep path without the full study cost.
	out := runOK(t, "-sweep", "noise", "-tech", "epcm", "-epochs", "1", "-samples", "4")
	if !strings.Contains(out, "sw/hw agree") || !strings.Contains(out, "sigma=0.005") {
		t.Fatalf("noise sweep output wrong:\n%s", out)
	}
	if strings.Count(out, "sigma=") != 7 {
		t.Fatalf("want 7 noise corners:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	for name, args := range map[string][]string{
		"unknown sweep": {"-sweep", "gamma-rays"},
		"unknown tech":  {"-tech", "dna"},
		"drift on opcm": {"-sweep", "drift", "-tech", "opcm"},
		"unknown flag":  {"-frobnicate"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", name, args)
		}
	}
}
