// Command robust runs the hardware-in-the-loop robustness studies: it
// trains (or synthesizes) a BNN, maps its binary layers onto simulated
// analog arrays, and sweeps device corners.
//
//	robust -sweep noise  -tech opcm   # programming-spread sweep
//	robust -sweep faults -tech epcm   # stuck-at defect sweep
//	robust -sweep drift  -tech epcm   # post-programming drift sweep
//	robust -sweep mlc                 # multi-level decode error rates
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/robust"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "robust:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: parses args, writes the report to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("robust", flag.ContinueOnError)
	fs.SetOutput(out)
	sweep := fs.String("sweep", "noise", "study: noise, faults, drift, mlc")
	tech := fs.String("tech", "epcm", "array technology: epcm, opcm")
	samples := fs.Int("samples", 60, "held-out samples per corner")
	epochs := fs.Int("epochs", 10, "training epochs")
	seed := fs.Int64("seed", 7, "seed")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = one per CPU, 1 = serial; results are bit-identical at any count)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *sweep == "mlc" {
		return mlcStudy(out)
	}

	var dtech device.Technology
	switch *tech {
	case "epcm":
		dtech = device.EPCM
	case "opcm":
		dtech = device.OPCM
	default:
		return fmt.Errorf("unknown -tech %q (want epcm|opcm)", *tech)
	}

	model, test, err := train(*seed, *epochs)
	if err != nil {
		return err
	}
	if len(test) > *samples {
		test = test[:*samples]
	}
	base := robust.DefaultConfig(dtech)
	base.Workers = *workers

	var points []robust.SweepPoint
	switch *sweep {
	case "noise":
		points, err = robust.NoiseSweep(model, test, base,
			[]float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4})
	case "faults":
		points, err = robust.FaultSweep(model, test, base,
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.2})
	case "drift":
		if dtech != device.EPCM {
			return fmt.Errorf("drift applies to ePCM arrays")
		}
		points, err = robust.DriftSweep(model, test, base,
			[]float64{0, 60, 3600, 86400, 604800})
	default:
		return fmt.Errorf("unknown -sweep %q (want noise|faults|drift|mlc)", *sweep)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-16s %14s %12s %12s\n", "corner", "sw/hw agree", "sw acc", "hw acc")
	for _, p := range points {
		fmt.Fprintf(out, "%-16s %13.1f%% %11.1f%% %11.1f%%\n", p.Label,
			100*p.Agreement.MatchRate(),
			100*p.Agreement.SoftwareAccuracy,
			100*p.Agreement.HardwareAccuracy)
	}
	return nil
}

func train(seed int64, epochs int) (*bnn.Model, []dataset.Sample, error) {
	samples := dataset.Digits(700, seed)
	trainSet, test, err := dataset.Split(samples, 0.85)
	if err != nil {
		return nil, nil, err
	}
	xs, ys := dataset.Flatten(trainSet)
	tr, err := bnn.NewTrainer(bnn.TrainerConfig{Sizes: []int{784, 64, 64, 10}, LR: 0.01, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	for e := 0; e < epochs; e++ {
		if _, err := tr.TrainEpoch(xs, ys); err != nil {
			return nil, nil, err
		}
	}
	return tr.Export("digit-mlp"), test, nil
}

func mlcStudy(out io.Writer) error {
	fmt.Fprintln(out, "Multi-level PCM decode error (the paper's §VI-C future work)")
	fmt.Fprintf(out, "%-8s %16s %16s\n", "levels", "analytic", "monte-carlo")
	for _, l := range []int{2, 4, 8, 16, 32} {
		p := device.DefaultMLCParams(l)
		p.ProgramSigma, p.ReadNoiseSigma = 0.02, 0.005
		fmt.Fprintf(out, "%-8d %16.6f %16.6f\n", l, p.AnalyticErrorRate(), p.MonteCarloErrorRate(200000, 1))
	}
	p := device.DefaultMLCParams(2)
	p.ProgramSigma, p.ReadNoiseSigma = 0.02, 0.005
	fmt.Fprintf(out, "\nrobust level limit at 1e-4: %d levels\n", p.RobustLevelLimit(1e-4))
	return nil
}
