// Command robust runs the hardware-in-the-loop robustness studies: it
// trains (or synthesizes) a BNN, maps its binary layers onto simulated
// analog arrays, and sweeps device corners.
//
//	robust -sweep noise  -tech opcm   # programming-spread sweep
//	robust -sweep faults -tech epcm   # stuck-at defect sweep
//	robust -sweep drift  -tech epcm   # post-programming drift sweep
//	robust -sweep mlc                 # multi-level decode error rates
package main

import (
	"flag"
	"fmt"
	"os"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/robust"
)

func main() {
	sweep := flag.String("sweep", "noise", "study: noise, faults, drift, mlc")
	tech := flag.String("tech", "epcm", "array technology: epcm, opcm")
	samples := flag.Int("samples", 60, "held-out samples per corner")
	epochs := flag.Int("epochs", 10, "training epochs")
	seed := flag.Int64("seed", 7, "seed")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = one per CPU, 1 = serial; results are bit-identical at any count)")
	flag.Parse()

	if *sweep == "mlc" {
		mlcStudy()
		return
	}

	var dtech device.Technology
	switch *tech {
	case "epcm":
		dtech = device.EPCM
	case "opcm":
		dtech = device.OPCM
	default:
		fatal(fmt.Errorf("unknown -tech %q", *tech))
	}

	model, test := train(*seed, *epochs)
	if len(test) > *samples {
		test = test[:*samples]
	}
	base := robust.DefaultConfig(dtech)
	base.Workers = *workers

	var points []robust.SweepPoint
	var err error
	switch *sweep {
	case "noise":
		points, err = robust.NoiseSweep(model, test, base,
			[]float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4})
	case "faults":
		points, err = robust.FaultSweep(model, test, base,
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.2})
	case "drift":
		if dtech != device.EPCM {
			fatal(fmt.Errorf("drift applies to ePCM arrays"))
		}
		points, err = robust.DriftSweep(model, test, base,
			[]float64{0, 60, 3600, 86400, 604800})
	default:
		fatal(fmt.Errorf("unknown -sweep %q", *sweep))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-16s %14s %12s %12s\n", "corner", "sw/hw agree", "sw acc", "hw acc")
	for _, p := range points {
		fmt.Printf("%-16s %13.1f%% %11.1f%% %11.1f%%\n", p.Label,
			100*p.Agreement.MatchRate(),
			100*p.Agreement.SoftwareAccuracy,
			100*p.Agreement.HardwareAccuracy)
	}
}

func train(seed int64, epochs int) (*bnn.Model, []dataset.Sample) {
	samples := dataset.Digits(700, seed)
	trainSet, test, err := dataset.Split(samples, 0.85)
	if err != nil {
		fatal(err)
	}
	xs, ys := dataset.Flatten(trainSet)
	tr, err := bnn.NewTrainer(bnn.TrainerConfig{Sizes: []int{784, 64, 64, 10}, LR: 0.01, Seed: seed})
	if err != nil {
		fatal(err)
	}
	for e := 0; e < epochs; e++ {
		if _, err := tr.TrainEpoch(xs, ys); err != nil {
			fatal(err)
		}
	}
	return tr.Export("digit-mlp"), test
}

func mlcStudy() {
	fmt.Println("Multi-level PCM decode error (the paper's §VI-C future work)")
	fmt.Printf("%-8s %16s %16s\n", "levels", "analytic", "monte-carlo")
	for _, l := range []int{2, 4, 8, 16, 32} {
		p := device.DefaultMLCParams(l)
		p.ProgramSigma, p.ReadNoiseSigma = 0.02, 0.005
		fmt.Printf("%-8d %16.6f %16.6f\n", l, p.AnalyticErrorRate(), p.MonteCarloErrorRate(200000, 1))
	}
	p := device.DefaultMLCParams(2)
	p.ProgramSigma, p.ReadNoiseSigma = 0.02, 0.005
	fmt.Printf("\nrobust level limit at 1e-4: %d levels\n", p.RobustLevelLimit(1e-4))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "robust:", err)
	os.Exit(1)
}
