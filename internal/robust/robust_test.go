package robust

import (
	"reflect"
	"testing"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/device"
)

// trainedModel returns a small trained digit MLP plus held-out samples.
func trainedModel(t *testing.T) (*bnn.Model, []dataset.Sample) {
	t.Helper()
	samples := dataset.Digits(500, 11)
	train, test, err := dataset.Split(samples, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := dataset.Flatten(train)
	tr, err := bnn.NewTrainer(bnn.TrainerConfig{Sizes: []int{784, 48, 48, 10}, LR: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 8; epoch++ {
		if _, err := tr.TrainEpoch(xs, ys); err != nil {
			t.Fatal(err)
		}
	}
	return tr.Export("digit-mlp"), test
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(device.EPCM).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(device.EPCM)
	bad.WDM = 4 // WDM on electronic arrays
	if err := bad.Validate(); err == nil {
		t.Fatal("expected WDM/ePCM error")
	}
	bad = DefaultConfig(device.OPCM)
	bad.WDM = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected WDM<1 error")
	}
	bad = DefaultConfig(device.EPCM)
	bad.Faults.StuckOnRate = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("expected fault-model error")
	}
}

// TestHardwareAgreesAtDefaultCorner is the §V-C reproduction: at the
// default device corner the hardware-executed model must predict
// identically to software.
func TestHardwareAgreesAtDefaultCorner(t *testing.T) {
	model, test := trainedModel(t)
	for _, tech := range []device.Technology{device.EPCM, device.OPCM} {
		hw, err := Map(model, DefaultConfig(tech))
		if err != nil {
			t.Fatal(err)
		}
		a, err := Compare(model, hw, test)
		if err != nil {
			t.Fatal(err)
		}
		if a.MatchRate() < 1.0 {
			t.Fatalf("%v: hardware/software agreement %.3f < 1.0 at default corner", tech, a.MatchRate())
		}
		if a.HardwareAccuracy != a.SoftwareAccuracy {
			t.Fatalf("%v: accuracies diverge: hw %.3f sw %.3f", tech, a.HardwareAccuracy, a.SoftwareAccuracy)
		}
	}
}

// TestNoiseSweepDegradesMonotonically: agreement must be ~1 at the
// robust corner and visibly degraded at an absurd spread.
func TestNoiseSweepDegrades(t *testing.T) {
	model, test := trainedModel(t)
	points, err := NoiseSweep(model, test[:30], DefaultConfig(device.EPCM),
		[]float64{0.01, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := points[0].Agreement.MatchRate(); got < 0.97 {
		t.Fatalf("robust corner agreement %.3f too low", got)
	}
	if got := points[1].Agreement.MatchRate(); got > 0.95 {
		t.Fatalf("sigma=0.5 agreement %.3f implausibly high — noise not biting", got)
	}
}

// TestFaultToleranceCurve: a BNN shrugs off sparse defects and dies at
// dense ones.
func TestFaultToleranceCurve(t *testing.T) {
	model, test := trainedModel(t)
	points, err := FaultSweep(model, test[:30], DefaultConfig(device.EPCM),
		[]float64{0.001, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	sparse, dense := points[0].Agreement, points[1].Agreement
	if sparse.MatchRate() < 0.9 {
		t.Fatalf("0.1%% defects dropped agreement to %.3f", sparse.MatchRate())
	}
	if dense.MatchRate() >= sparse.MatchRate() {
		t.Fatalf("40%% defects should hurt: sparse %.3f dense %.3f",
			sparse.MatchRate(), dense.MatchRate())
	}
}

func TestFaultsCountedAtMapTime(t *testing.T) {
	model, _ := trainedModel(t)
	cfg := DefaultConfig(device.EPCM)
	cfg.Faults = crossbar.FaultModel{StuckOnRate: 0.05, StuckOffRate: 0.05, Seed: 1}
	hw, err := Map(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hw.FlippedCells == 0 {
		t.Fatal("10% defects must flip some cells")
	}
}

func TestWDMPathMatchesSerialPath(t *testing.T) {
	// oPCM with WDM batching must agree with the same arrays driven
	// serially (per-position VMM).
	model, test := trainedModel(t)
	cfgW := DefaultConfig(device.OPCM)
	cfgS := cfgW
	cfgS.WDM = 1
	hwW, err := Map(model, cfgW)
	if err != nil {
		t.Fatal(err)
	}
	hwS, err := Map(model, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range test[:20] {
		x := s.X.Reshape(784)
		a, err := hwW.Predict(x.Clone())
		if err != nil {
			t.Fatal(err)
		}
		b, err := hwS.Predict(x.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatal("WDM and serial hardware paths disagree")
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	model, test := trainedModel(t)
	hw, err := Map(model, DefaultConfig(device.EPCM))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Predict(test[0].X.Reshape(784)); err != nil {
		t.Fatal(err)
	}
	if hw.Stats().VMMOps == 0 {
		t.Fatal("hardware inference must perform crossbar activations")
	}
}

func TestMapRejectsInvalid(t *testing.T) {
	model, _ := trainedModel(t)
	cfg := DefaultConfig(device.EPCM)
	cfg.Array.Rows = 0
	if _, err := Map(model, cfg); err == nil {
		t.Fatal("invalid array config should fail")
	}
	bad := &bnn.Model{ModelName: "x", InputShape: []int{1}, Classes: 1}
	if _, err := Map(bad, DefaultConfig(device.EPCM)); err == nil {
		t.Fatal("invalid model should fail")
	}
}

// TestDriftDoesNotBreakBinary: §II-C — amorphous drift only widens the
// binary read window, so even a week of drift must leave hardware
// predictions identical to software on ePCM arrays.
func TestDriftDoesNotBreakBinary(t *testing.T) {
	model, test := trainedModel(t)
	points, err := DriftSweep(model, test[:25], DefaultConfig(device.EPCM),
		[]float64{0, 3600, 604800})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Agreement.MatchRate() < 1.0 {
			t.Fatalf("%s: drift broke agreement (%.3f)", p.Label, p.Agreement.MatchRate())
		}
	}
}

// TestSweepsParallelBitIdenticalToSerial: every sweep fans corners out
// over the Config.Workers pool; the parallel results must match the
// serial (Workers = 1) path exactly — corners are independently seeded
// and each worker compares against its own model clone.
func TestSweepsParallelBitIdenticalToSerial(t *testing.T) {
	model, test := trainedModel(t)
	if len(test) > 24 {
		test = test[:24]
	}
	run := func(workers int) [][]SweepPoint {
		serial := DefaultConfig(device.EPCM)
		serial.Workers = workers
		noise, err := NoiseSweep(model, test, serial, []float64{0.01, 0.1, 0.4})
		if err != nil {
			t.Fatal(err)
		}
		faults, err := FaultSweep(model, test, serial, []float64{0.01, 0.1})
		if err != nil {
			t.Fatal(err)
		}
		drift, err := DriftSweep(model, test, serial, []float64{0, 86400})
		if err != nil {
			t.Fatal(err)
		}
		return [][]SweepPoint{noise, faults, drift}
	}
	want := run(1)
	got := run(4)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel sweeps differ from serial:\nserial: %+v\nparallel: %+v", want, got)
	}
}
