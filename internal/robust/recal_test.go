package robust

import (
	"testing"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/tensor"
)

// recalCorner is the deterministic lifetime corner used across the
// recalibration tests: ePCM with read noise off, so every prediction is
// a pure function of the conductance planes.
func recalCorner() Config {
	cfg := DefaultConfig(device.EPCM)
	cfg.Array.EPCM.ReadNoiseSigma = 0
	cfg.Array.Seed = 17
	return cfg
}

func recalSamples(t *testing.T, n int) []*tensor.Float {
	t.Helper()
	raw := dataset.Digits(n, 21)
	xs := make([]*tensor.Float, 0, n)
	for _, s := range raw {
		xs = append(xs, s.X.Reshape(784))
	}
	return xs
}

func predictAll(t *testing.T, hw *HardwareModel, xs []*tensor.Float) []int {
	t.Helper()
	out := make([]int, len(xs))
	for i, x := range xs {
		p, err := hw.Predict(x.Clone())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

// TestRecalibrateRestoresDriftedModel is the substrate half of the
// closed-loop pin: drift visibly changes a synthetic zoo model's
// predictions, and Recalibrate returns the planes to the canonical
// recalibrated state — predictions bit-identical to any other
// recalibrated instant, drift erased.
func TestRecalibrateRestoresDriftedModel(t *testing.T) {
	model, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := Map(model, recalCorner())
	if err != nil {
		t.Fatal(err)
	}
	xs := recalSamples(t, 24)

	rep := hw.Recalibrate() // establish the canonical recalibrated planes
	if rep.Layers == 0 || rep.Tiles == 0 {
		t.Fatalf("empty recalibration report: %+v", rep)
	}
	cfg := recalCorner()
	cells := int64(rep.Tiles * cfg.Array.Rows * cfg.Array.Cols)
	if rep.SetWrites+rep.ResetWrites != cells {
		t.Fatalf("write counts %d+%d ≠ %d cells", rep.SetWrites, rep.ResetWrites, cells)
	}
	wantE := float64(rep.SetWrites)*cfg.Array.EPCM.SetEnergyPJ +
		float64(rep.ResetWrites)*cfg.Array.EPCM.ResetEnergyPJ
	if rep.EnergyPJ != wantE {
		t.Fatalf("recal energy %g want %g", rep.EnergyPJ, wantE)
	}
	if rep.LatencyNs <= 0 {
		t.Fatalf("recal latency %g not positive", rep.LatencyNs)
	}
	canonical := predictAll(t, hw, xs)

	hw.AgeAll(1e8) // years of drift — synthetic zoo margins collapse
	aged := predictAll(t, hw, xs)
	changed := 0
	for i := range aged {
		if aged[i] != canonical[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("1e8 s of drift changed no prediction — degradation model dead?")
	}

	rep2 := hw.Recalibrate()
	if rep2.SetWrites != rep.SetWrites || rep2.ResetWrites != rep.ResetWrites {
		t.Fatalf("second recal write counts differ: %+v vs %+v", rep2, rep)
	}
	restored := predictAll(t, hw, xs)
	for i := range restored {
		if restored[i] != canonical[i] {
			t.Fatalf("sample %d: prediction %d ≠ canonical %d after recalibration",
				i, restored[i], canonical[i])
		}
	}
}

// TestInjectFaultsGrowsMonotonically pins the online fault-arrival
// primitive: with a fixed seed, growing the stuck-off rate only ever
// adds defects — a cell faulted at rate r stays faulted (in the same
// state) at every rate ≥ r.
func TestInjectFaultsGrowsMonotonically(t *testing.T) {
	model, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := Map(model, recalCorner())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, rate := range []float64{0.001, 0.003, 0.01} {
		n, err := hw.InjectFaults(crossbar.FaultModel{StuckOffRate: rate, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("flipped cells shrank %d → %d as rate grew to %g", prev, n, rate)
		}
		if hw.FlippedCells != n {
			t.Fatalf("FlippedCells %d ≠ returned %d", hw.FlippedCells, n)
		}
		prev = n
	}
	if prev == 0 {
		t.Fatal("no cell ever flipped at 1% stuck-off")
	}
	// Faults survive recalibration.
	hw.Recalibrate()
	n, err := hw.InjectFaults(crossbar.FaultModel{StuckOffRate: 0.01, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if n != prev {
		t.Fatalf("re-injecting the same population after recal flipped %d ≠ %d", n, prev)
	}
}
