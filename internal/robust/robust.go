// Package robust runs BNN inference with the binary layers executing on
// the *simulated analog hardware* (internal/core mappings over
// internal/crossbar arrays) instead of exact software arithmetic, and
// quantifies the accuracy impact of device noise, WDM crosstalk and
// stuck-at defects.
//
// This is the hardware-in-the-loop counterpart of the paper's §II-C
// robustness argument (binary PCM stays accurate where multi-level PCM
// does not — Cardoso et al., DATE 2023) and of §V-C ("neither TacitMap
// nor EinsteinBarrier affect the accuracy"): at the default device
// corner, hardware predictions must agree with software; the sweeps
// show how far the corner can degrade before they stop agreeing.
package robust

import (
	"fmt"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/core"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/dataset"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/tensor"
)

// Config selects the hardware corner for the binary layers.
type Config struct {
	// Array is the crossbar configuration (technology, size, noise).
	Array crossbar.Config
	// WDM batches conv positions through MMM when > 1 (oPCM only).
	WDM int
	// Faults, when non-zero, injects stuck-at defects into every tile.
	Faults crossbar.FaultModel
	// Workers bounds the sweep fan-out: every corner of a sweep is an
	// independent job (its own mapped arrays, its own model clone) on
	// an infer.Map worker pool. 0 (the default) means one worker per
	// available CPU; 1 forces the serial path. Sweep results are
	// bit-identical at any worker count — corners are seeded
	// independently.
	Workers int
}

// DefaultConfig returns the default hardware corner for a technology.
func DefaultConfig(tech device.Technology) Config {
	arr := crossbar.DefaultConfig(tech)
	wdm := 1
	if tech == device.OPCM {
		wdm = 16
	}
	return Config{Array: arr, WDM: wdm}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Array.Validate(); err != nil {
		return err
	}
	if c.WDM < 1 {
		return fmt.Errorf("robust: WDM %d must be ≥ 1", c.WDM)
	}
	if c.WDM > 1 && c.Array.Tech != device.OPCM {
		return fmt.Errorf("robust: WDM batching requires oPCM arrays")
	}
	return c.Faults.Validate()
}

// HardwareModel is a Model whose binarized layers are programmed onto
// simulated crossbars.
//
// Each mapped layer carries reusable inference scratch (the binarized
// input vector, the popcount accumulator, and the WDM batch rows), so
// the per-layer hardware execution performs no steady-state heap
// allocations beyond the output tensors. A HardwareModel is therefore
// not safe for concurrent inference.
type HardwareModel struct {
	model  *bnn.Model
	cfg    Config
	mapped map[string]*core.TacitMapped
	// scratch is keyed like mapped.
	scratch map[string]*layerScratch
	// FlippedCells counts fault-induced logical flips at map time.
	FlippedCells int
}

// layerScratch is the reusable per-layer hardware-execution state.
type layerScratch struct {
	xb  *bitops.Vector // binarized dense-layer input
	pc  []int          // popcount output (length n)
	mmm [][]int        // WDM batch popcount rows (k × n)
}

// Map programs every binarized layer of the model onto crossbars.
func Map(model *bnn.Model, cfg Config) (*HardwareModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	h := &HardwareModel{
		model:   model,
		cfg:     cfg,
		mapped:  make(map[string]*core.TacitMapped),
		scratch: make(map[string]*layerScratch),
	}
	seed := cfg.Array.Seed
	for _, l := range model.Layers {
		b, ok := l.(bnn.Binarized)
		if !ok {
			continue
		}
		acfg := cfg.Array
		acfg.Seed = seed
		seed += 1000
		tm, err := core.MapTacit(b.WeightMatrix(), acfg)
		if err != nil {
			return nil, fmt.Errorf("robust: layer %s: %w", l.Name(), err)
		}
		if cfg.Faults.StuckOnRate > 0 || cfg.Faults.StuckOffRate > 0 {
			n, err := tm.InjectFaults(cfg.Faults)
			if err != nil {
				return nil, err
			}
			h.FlippedCells += n
		}
		h.mapped[l.Name()] = tm
		sc := &layerScratch{
			xb: bitops.NewVector(tm.Plan().M),
			pc: make([]int, tm.Plan().N),
		}
		if cfg.WDM > 1 {
			sc.mmm = make([][]int, cfg.WDM)
			for i := range sc.mmm {
				sc.mmm[i] = make([]int, tm.Plan().N)
			}
		}
		h.scratch[l.Name()] = sc
	}
	return h, nil
}

// Infer runs the forward pass with binary layers on hardware. The
// non-binarized layers (FP input/output, sign, pooling, flatten) run in
// software, exactly as the accelerator's digital units would.
func (h *HardwareModel) Infer(x *tensor.Float) (*tensor.Float, error) {
	for _, l := range h.model.Layers {
		switch t := l.(type) {
		case *bnn.BinaryDense:
			y, err := h.denseOnHW(t, x)
			if err != nil {
				return nil, err
			}
			x = y
		case *bnn.BinaryConv2D:
			y, err := h.convOnHW(t, x)
			if err != nil {
				return nil, err
			}
			x = y
		default:
			x = l.Forward(x)
		}
	}
	return x, nil
}

// Predict returns the argmax class.
func (h *HardwareModel) Predict(x *tensor.Float) (int, error) {
	logits, err := h.Infer(x)
	if err != nil {
		return 0, err
	}
	return logits.ArgMax(), nil
}

func (h *HardwareModel) denseOnHW(l *bnn.BinaryDense, x *tensor.Float) (*tensor.Float, error) {
	tm := h.mapped[l.Name()]
	sc := h.scratch[l.Name()]
	sc.xb.SetFromFloats(x.Data())
	pc, err := tm.ExecuteInto(sc.xb, sc.pc)
	if err != nil {
		return nil, err
	}
	m := l.W.Cols()
	y := tensor.NewFloat(l.W.Rows())
	for o, c := range pc {
		if 2*c-m >= l.Thresh[o] {
			y.Data()[o] = 1
		} else {
			y.Data()[o] = -1
		}
	}
	return y, nil
}

func (h *HardwareModel) convOnHW(l *bnn.BinaryConv2D, x *tensor.Float) (*tensor.Float, error) {
	tm := h.mapped[l.Name()]
	sc := h.scratch[l.Name()]
	patches := l.PatchVectors(x)
	pos := l.Geom.Positions()
	m := l.Geom.PatchLen()
	y := tensor.NewFloat(l.OutC, l.Geom.OutH(), l.Geom.OutW())
	apply := func(p int, pc []int) {
		for o := 0; o < l.OutC; o++ {
			v := -1.0
			if 2*pc[o]-m >= l.Thresh[o] {
				v = 1
			}
			y.Data()[o*pos+p] = v
		}
	}
	if h.cfg.WDM > 1 {
		for start := 0; start < len(patches); start += h.cfg.WDM {
			end := min(start+h.cfg.WDM, len(patches))
			counts, err := tm.ExecuteMMMInto(patches[start:end], sc.mmm[:end-start])
			if err != nil {
				return nil, err
			}
			for i, pc := range counts {
				apply(start+i, pc)
			}
		}
		return y, nil
	}
	for p, patch := range patches {
		pc, err := tm.ExecuteInto(patch, sc.pc)
		if err != nil {
			return nil, err
		}
		apply(p, pc)
	}
	return y, nil
}

// Stats aggregates crossbar event counters over all mapped layers.
func (h *HardwareModel) Stats() crossbar.Stats {
	var s crossbar.Stats
	for _, tm := range h.mapped {
		s.Add(tm.Stats())
	}
	return s
}

// Agreement is the outcome of a software-vs-hardware comparison.
type Agreement struct {
	// Samples evaluated.
	Samples int
	// Matches counts identical top-1 predictions.
	Matches int
	// SoftwareAccuracy / HardwareAccuracy against the true labels.
	SoftwareAccuracy, HardwareAccuracy float64
}

// MatchRate is Matches/Samples.
func (a Agreement) MatchRate() float64 {
	if a.Samples == 0 {
		return 0
	}
	return float64(a.Matches) / float64(a.Samples)
}

// Compare runs software and hardware inference over the samples.
func Compare(model *bnn.Model, hw *HardwareModel, samples []dataset.Sample) (Agreement, error) {
	var a Agreement
	swCorrect, hwCorrect := 0, 0
	for _, s := range samples {
		x := s.X
		if len(model.InputShape) == 1 {
			x = x.Reshape(model.InputShape[0])
		}
		sw := model.Predict(x.Clone())
		hwPred, err := hw.Predict(x.Clone())
		if err != nil {
			return a, err
		}
		a.Samples++
		if sw == hwPred {
			a.Matches++
		}
		if sw == s.Label {
			swCorrect++
		}
		if hwPred == s.Label {
			hwCorrect++
		}
	}
	if a.Samples > 0 {
		a.SoftwareAccuracy = float64(swCorrect) / float64(a.Samples)
		a.HardwareAccuracy = float64(hwCorrect) / float64(a.Samples)
	}
	return a, nil
}

// SweepPoint is one corner of a robustness sweep.
type SweepPoint struct {
	// Label identifies the corner (e.g. "sigma=0.05").
	Label string
	// Agreement at that corner.
	Agreement Agreement
}

// sweep fans corner evaluations out over base.Workers goroutines.
// Every corner maps its own HardwareModel and compares against a
// per-worker CloneShared copy of the software model (neither a mapped
// layer's scratch nor a model's forward scratch is safe to share), so
// parallel results are bit-identical to the serial path.
func sweep(model *bnn.Model, samples []dataset.Sample, base Config, n int,
	corner func(i int) (string, Config, func(*HardwareModel))) ([]SweepPoint, error) {
	clones := make([]*bnn.Model, infer.Workers(base.Workers, n))
	return infer.Map(base.Workers, n, func(w, i int) (SweepPoint, error) {
		label, cfg, prep := corner(i)
		// Map a CloneShared copy: HardwareModel.Infer runs the
		// non-binarized layers through the stored model's own scratch,
		// which must not be shared across corner goroutines.
		hw, err := Map(model.CloneShared(), cfg)
		if err != nil {
			return SweepPoint{}, err
		}
		if prep != nil {
			prep(hw)
		}
		if clones[w] == nil {
			clones[w] = model.CloneShared()
		}
		a, err := Compare(clones[w], hw, samples)
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{Label: label, Agreement: a}, nil
	})
}

// NoiseSweep evaluates prediction agreement across programming-spread
// corners — the quantitative §II-C story: agreement stays ~1.0 in the
// binary-robust regime and collapses as the spread approaches the
// read window.
func NoiseSweep(model *bnn.Model, samples []dataset.Sample, base Config, sigmas []float64) ([]SweepPoint, error) {
	return sweep(model, samples, base, len(sigmas), func(i int) (string, Config, func(*HardwareModel)) {
		sigma := sigmas[i]
		cfg := base
		switch cfg.Array.Tech {
		case device.EPCM:
			cfg.Array.EPCM.ProgramSigma = sigma
		case device.OPCM:
			cfg.Array.OPCM.ProgramSigma = sigma
		}
		return fmt.Sprintf("sigma=%g", sigma), cfg, nil
	})
}

// RecalReport summarizes one closed-loop recalibration pass: how much
// re-programming was done and what it cost under the device write
// energies. Serving-layer controllers aggregate these into per-replica
// lifetime energy totals.
type RecalReport struct {
	// Layers and Tiles re-programmed.
	Layers, Tiles int
	// SetWrites / ResetWrites are the per-cell write counts.
	SetWrites, ResetWrites int64
	// EnergyPJ and LatencyNs price the pass via the device write costs
	// (energy.ReprogramEPCM / ReprogramOPCM; tiles serialized).
	EnergyPJ, LatencyNs float64
}

// Recalibrate re-programs every mapped layer's crossbar tiles in place:
// drift ages reset to zero, programming variability is re-drawn
// deterministically (each tile's RNG restarts from its seed, so
// recalibrating twice yields bit-identical planes), and stuck-at
// defects are re-applied — recalibration cannot heal physical damage.
// The pass is priced from the write counts and the configured device
// parameters.
func (h *HardwareModel) Recalibrate() RecalReport {
	var r RecalReport
	for _, tm := range h.mapped {
		set, reset := tm.Reprogram()
		cost := energy.ReprogramForTech(h.cfg.Array.Tech, set, reset,
			h.cfg.Array.Rows, h.cfg.Array.EPCM, h.cfg.Array.OPCM)
		r.Layers++
		r.Tiles += tm.Tiles()
		r.SetWrites += set
		r.ResetWrites += reset
		r.EnergyPJ += cost.EnergyPJ
		r.LatencyNs += cost.LatencyNs
	}
	return r
}

// InjectFaults re-draws the stuck-at defect population across every
// mapped layer from the given model, replacing any previous population
// (each tile derives its placement from the model seed, so a fixed seed
// with a growing rate yields a monotonically growing fault set — the
// online fault-arrival primitive). Returns the flipped-cell count,
// which also replaces FlippedCells.
func (h *HardwareModel) InjectFaults(f crossbar.FaultModel) (int, error) {
	flipped := 0
	for _, tm := range h.mapped {
		n, err := tm.InjectFaults(f)
		if err != nil {
			return flipped, err
		}
		flipped += n
	}
	h.FlippedCells = flipped
	return flipped, nil
}

// AgeAll advances every mapped layer's device age (ePCM drift study;
// a no-op for oPCM arrays, which do not drift — paper §II-C).
func (h *HardwareModel) AgeAll(seconds float64) {
	for _, tm := range h.mapped {
		tm.Age(seconds)
	}
}

// DriftSweep evaluates prediction agreement after increasing amounts of
// post-programming time on ePCM hardware. Binary read windows survive
// drift (the RESET state only gets *more* resistive), so agreement
// should hold across any realistic refresh interval — quantifying why
// the binary design point also neutralizes the drift challenge.
func DriftSweep(model *bnn.Model, samples []dataset.Sample, base Config, ages []float64) ([]SweepPoint, error) {
	return sweep(model, samples, base, len(ages), func(i int) (string, Config, func(*HardwareModel)) {
		age := ages[i]
		return fmt.Sprintf("age=%gs", age), base, func(hw *HardwareModel) { hw.AgeAll(age) }
	})
}

// FaultSweep evaluates prediction agreement across defect densities.
func FaultSweep(model *bnn.Model, samples []dataset.Sample, base Config, rates []float64) ([]SweepPoint, error) {
	return sweep(model, samples, base, len(rates), func(i int) (string, Config, func(*HardwareModel)) {
		rate := rates[i]
		cfg := base
		cfg.Faults = crossbar.FaultModel{StuckOnRate: rate / 2, StuckOffRate: rate / 2, Seed: 99}
		return fmt.Sprintf("defects=%g", rate), cfg, nil
	})
}
