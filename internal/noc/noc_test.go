package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Config{
		{MeshWidth: 0, HopLatencyNs: 1, FlitBytes: 4, ChipHopNs: 1},
		{MeshWidth: 2, HopLatencyNs: 0, FlitBytes: 4, ChipHopNs: 1},
		{MeshWidth: 2, HopLatencyNs: 1, FlitBytes: 0, ChipHopNs: 1},
		{MeshWidth: 2, HopLatencyNs: 1, FlitBytes: 4, ChipHopNs: 1, BytePJ: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestTileCoordAndHops(t *testing.T) {
	c := DefaultConfig(4)
	co, err := c.TileCoord(5) // row-major: (1,1)
	if err != nil || co.X != 1 || co.Y != 1 {
		t.Fatalf("coord = %+v, err %v", co, err)
	}
	h, err := c.Hops(0, 15) // (0,0) → (3,3)
	if err != nil || h != 6 {
		t.Fatalf("hops = %d, err %v", h, err)
	}
	if h, _ := c.Hops(7, 7); h != 0 {
		t.Fatal("self distance must be 0")
	}
	if _, err := c.TileCoord(16); err == nil {
		t.Fatal("out-of-mesh tile should fail")
	}
	if _, err := c.Hops(-1, 0); err == nil {
		t.Fatal("negative tile should fail")
	}
}

func TestHopsSymmetricProperty(t *testing.T) {
	c := DefaultConfig(5)
	f := func(a, b uint8) bool {
		ta, tb := int(a)%25, int(b)%25
		h1, e1 := c.Hops(ta, tb)
		h2, e2 := c.Hops(tb, ta)
		return e1 == nil && e2 == nil && h1 == h2 && h1 >= 0 && h1 <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferZeroBytes(t *testing.T) {
	c := DefaultConfig(4)
	lat, e, err := c.Transfer(0, 3, 1)
	if err != nil || lat != 0 || e != 0 {
		t.Fatalf("zero transfer: %g %g %v", lat, e, err)
	}
}

func TestTransferErrors(t *testing.T) {
	c := DefaultConfig(4)
	if _, _, err := c.Transfer(-1, 0, 0); err == nil {
		t.Fatal("negative bytes should fail")
	}
	if _, _, err := c.Transfer(1, -1, 0); err == nil {
		t.Fatal("negative hops should fail")
	}
}

func TestTransferWormhole(t *testing.T) {
	c := DefaultConfig(4) // 32B flits, 1 ns/hop
	// 64 bytes over 2 hops: head 2 ns + 1 extra flit 1 ns = 3 ns.
	lat, e, err := c.Transfer(64, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-3) > 1e-9 {
		t.Fatalf("latency = %g, want 3", lat)
	}
	wantE := 64.0 * 2 * c.BytePJ
	if math.Abs(e-wantE) > 1e-9 {
		t.Fatalf("energy = %g, want %g", e, wantE)
	}
}

func TestTransferChipHopsCostMore(t *testing.T) {
	c := DefaultConfig(4)
	lOn, eOn, _ := c.Transfer(1024, 1, 0)
	lOff, eOff, _ := c.Transfer(1024, 0, 1)
	if lOff <= lOn || eOff <= eOn {
		t.Fatalf("chip-to-chip should dominate: %g/%g vs %g/%g", lOff, eOff, lOn, eOn)
	}
}

func TestTransferMonotoneInBytes(t *testing.T) {
	c := DefaultConfig(4)
	prevL, prevE := -1.0, -1.0
	for _, b := range []int64{1, 32, 33, 1024, 65536} {
		l, e, err := c.Transfer(b, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if l < prevL || e <= prevE {
			t.Fatalf("not monotone at %d bytes", b)
		}
		prevL, prevE = l, e
	}
}

func TestAverageHops(t *testing.T) {
	if h := DefaultConfig(1).AverageHops(); h != 0 {
		t.Fatalf("1x1 mesh average = %g", h)
	}
	// 2x2 mesh: E|Δ| per axis = (4-1)/(3·2) = 0.5 → total 1.0.
	if h := DefaultConfig(2).AverageHops(); math.Abs(h-1.0) > 1e-9 {
		t.Fatalf("2x2 mesh average = %g, want 1.0", h)
	}
	// Larger meshes have more average hops.
	if DefaultConfig(8).AverageHops() <= DefaultConfig(4).AverageHops() {
		t.Fatal("average hops must grow with mesh size")
	}
}

func TestRouteXYMatchesHops(t *testing.T) {
	c := DefaultConfig(4)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			route, err := c.RouteXY(a, b)
			if err != nil {
				t.Fatal(err)
			}
			hops, err := c.Hops(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if len(route) != hops {
				t.Fatalf("route %d->%d has %d links, Hops says %d", a, b, len(route), hops)
			}
			// The route is connected: each link starts where the previous
			// ended, from a and into b.
			cur := a
			for _, l := range route {
				if l.From != cur {
					t.Fatalf("route %d->%d broken at link %+v (cur %d)", a, b, l, cur)
				}
				cur = l.To
			}
			if hops > 0 && cur != b {
				t.Fatalf("route %d->%d ends at %d", a, b, cur)
			}
		}
	}
	if _, err := c.RouteXY(-1, 3); err == nil {
		t.Fatal("bad tile must error")
	}
}

func TestSerializationNs(t *testing.T) {
	c := DefaultConfig(4)
	if got := c.SerializationNs(0); got != 0 {
		t.Fatalf("zero bytes serialize in %g ns", got)
	}
	// 33 bytes over 32-byte flits = 2 flits × 1 ns/hop.
	if got := c.SerializationNs(33); got != 2*c.HopLatencyNs {
		t.Fatalf("33 bytes: %g ns", got)
	}
}

// Chip-egress routing: transfers leaving the chip drain through the
// egress corner tile. The ShardPlacer relies on the egress spine routes
// and the chipHops pricing below, so both get explicit coverage.

func TestRouteXYToEgressCorner(t *testing.T) {
	c := DefaultConfig(4)
	if e := c.EgressTile(); e != 0 {
		t.Fatalf("egress tile = %d, want the (0,0) corner", e)
	}
	// X-first dimension order: from tile 15 (3,3) the route walks row 3
	// to column 0, then column 0 up to the corner — the exact spine edges
	// co-located programs contend on.
	route, err := c.RouteXY(15, c.EgressTile())
	if err != nil {
		t.Fatal(err)
	}
	want := []Link{{15, 14}, {14, 13}, {13, 12}, {12, 8}, {8, 4}, {4, 0}}
	if len(route) != len(want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
	for i, l := range route {
		if l != want[i] {
			t.Fatalf("route[%d] = %v, want %v", i, l, want[i])
		}
	}
	// Every tile of the bottom row funnels through the same final edge
	// 4->0: the shared-spine contention the multi-program engine models.
	for _, from := range []int{4, 8, 12} {
		r, err := c.RouteXY(from, 0)
		if err != nil {
			t.Fatal(err)
		}
		if last := r[len(r)-1]; last != (Link{4, 0}) {
			t.Fatalf("route %d->0 ends with %v, want 4->0", from, last)
		}
	}
	// Egress from the corner itself uses no mesh links at all.
	r, err := c.RouteXY(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 0 {
		t.Fatalf("corner self-route has %d links", len(r))
	}
}

func TestChipDistance(t *testing.T) {
	c := DefaultConfig(4)
	for _, tc := range []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {0, 3, 3}, {3, 1, 2},
	} {
		if got := c.ChipDistance(tc.a, tc.b); got != tc.want {
			t.Fatalf("ChipDistance(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTransferWithChipHops(t *testing.T) {
	c := DefaultConfig(4)
	// 64 bytes = 2 flits, 2 mesh hops + 3 chip hops: the head pays
	// 2×1 ns mesh + 1 ns body streaming + 3×30 ns board links; energy is
	// per byte per hop with the chip links an order of magnitude costlier.
	lat, pj, err := c.Transfer(64, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantLat := 2*c.HopLatencyNs + 1*c.HopLatencyNs + 3*c.ChipHopNs
	if math.Abs(lat-wantLat) > 1e-12 {
		t.Fatalf("latency = %g, want %g", lat, wantLat)
	}
	wantPJ := 64 * (2*c.BytePJ + 3*c.ChipBytePJ)
	if math.Abs(pj-wantPJ) > 1e-12 {
		t.Fatalf("energy = %g, want %g", pj, wantPJ)
	}
	// Chip hops dominate: one extra chip hop costs more latency than ten
	// extra mesh hops at default parameters.
	lat1, _, err := c.Transfer(64, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lat10, _, err := c.Transfer(64, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat1 <= lat10 {
		t.Fatalf("chip hop (%g ns) should cost more than 10 mesh hops (%g ns)", lat1, lat10)
	}
	// A pure chip-to-chip transfer (no mesh hops) is legal: the body
	// still pays flit streaming on the serial link.
	if _, _, err := c.Transfer(1, 0, 2); err != nil {
		t.Fatal(err)
	}
}
