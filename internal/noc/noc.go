// Package noc models the interconnect of the EinsteinBarrier spatial
// architecture (paper Fig. 4): a 2-D mesh on-chip network between the
// tiles of a node, and serial chip-to-chip links between nodes.
package noc

import (
	"fmt"
	"math"
)

// Config describes the network fabric.
type Config struct {
	// MeshWidth is the side of the per-node tile mesh (tiles arranged
	// MeshWidth × MeshWidth).
	MeshWidth int
	// HopLatencyNs is the per-hop router+link traversal latency.
	HopLatencyNs float64
	// FlitBytes is the link width per cycle.
	FlitBytes int
	// BytePJ is the energy per byte per hop.
	BytePJ float64
	// ChipHopNs / ChipBytePJ describe the chip-to-chip (node-to-node)
	// interconnect, an order of magnitude costlier than on-chip hops.
	ChipHopNs  float64
	ChipBytePJ float64
}

// DefaultConfig returns mesh defaults (PUMA-class 32-bit links).
func DefaultConfig(meshWidth int) Config {
	return Config{
		MeshWidth:    meshWidth,
		HopLatencyNs: 1.0,
		FlitBytes:    32,
		BytePJ:       0.8,
		ChipHopNs:    30,
		ChipBytePJ:   12,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.MeshWidth < 1:
		return fmt.Errorf("noc: mesh width %d must be ≥ 1", c.MeshWidth)
	case c.HopLatencyNs <= 0 || c.ChipHopNs <= 0:
		return fmt.Errorf("noc: hop latencies must be positive")
	case c.FlitBytes < 1:
		return fmt.Errorf("noc: flit bytes %d must be ≥ 1", c.FlitBytes)
	case c.BytePJ < 0 || c.ChipBytePJ < 0:
		return fmt.Errorf("noc: negative energy per byte")
	}
	return nil
}

// Coord is a tile position in the mesh.
type Coord struct{ X, Y int }

// TileCoord maps a tile index to its mesh coordinate (row-major).
func (c Config) TileCoord(tile int) (Coord, error) {
	if tile < 0 || tile >= c.MeshWidth*c.MeshWidth {
		return Coord{}, fmt.Errorf("noc: tile %d outside %d×%d mesh", tile, c.MeshWidth, c.MeshWidth)
	}
	return Coord{X: tile % c.MeshWidth, Y: tile / c.MeshWidth}, nil
}

// Hops returns the Manhattan (XY-routed) hop count between two tiles.
func (c Config) Hops(a, b int) (int, error) {
	ca, err := c.TileCoord(a)
	if err != nil {
		return 0, err
	}
	cb, err := c.TileCoord(b)
	if err != nil {
		return 0, err
	}
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y), nil
}

// Transfer models moving `bytes` over `hops` on-chip hops plus
// `chipHops` chip-to-chip hops, returning latency (ns) and energy (pJ).
// The transfer is wormhole-routed: the head pays the hop latency, the
// body streams at one flit per hop-cycle.
func (c Config) Transfer(bytes int64, hops, chipHops int) (latencyNs, energyPJ float64, err error) {
	if bytes < 0 || hops < 0 || chipHops < 0 {
		return 0, 0, fmt.Errorf("noc: negative transfer args (bytes=%d hops=%d chipHops=%d)",
			bytes, hops, chipHops)
	}
	if bytes == 0 {
		return 0, 0, nil
	}
	flits := math.Ceil(float64(bytes) / float64(c.FlitBytes))
	latencyNs = float64(hops)*c.HopLatencyNs + (flits-1)*c.HopLatencyNs +
		float64(chipHops)*c.ChipHopNs
	energyPJ = float64(bytes) * (float64(hops)*c.BytePJ + float64(chipHops)*c.ChipBytePJ)
	return latencyNs, energyPJ, nil
}

// Link is one directed mesh edge between adjacent tiles, identified by
// the node-local tile indices it connects. Links are the contention
// resource of the pipeline engine: two transfers crossing the same
// directed edge serialize.
type Link struct{ From, To int }

// RouteXY returns the directed links of the XY (dimension-ordered)
// route between two node-local tiles: all X hops first, then Y — the
// same deterministic routing the Hops metric assumes. An empty route
// means source and destination share a tile.
func (c Config) RouteXY(a, b int) ([]Link, error) {
	ca, err := c.TileCoord(a)
	if err != nil {
		return nil, err
	}
	cb, err := c.TileCoord(b)
	if err != nil {
		return nil, err
	}
	var route []Link
	cur := ca
	step := func(next Coord) {
		route = append(route, Link{From: cur.Y*c.MeshWidth + cur.X, To: next.Y*c.MeshWidth + next.X})
		cur = next
	}
	for cur.X != cb.X {
		next := cur
		if cb.X > cur.X {
			next.X++
		} else {
			next.X--
		}
		step(next)
	}
	for cur.Y != cb.Y {
		next := cur
		if cb.Y > cur.Y {
			next.Y++
		} else {
			next.Y--
		}
		step(next)
	}
	return route, nil
}

// ChipDistance is the chip-hop count between two nodes: the serial
// chip-to-chip links form a linear chain (node i connects to i±1), so a
// transfer between nodes a and b crosses |a-b| board-level links. This
// is the ChipHops operand the ShardPlacer stamps on cross-chip gather
// SENDs, priced by Transfer's chipHops term.
func (c Config) ChipDistance(a, b int) int { return abs(a - b) }

// EgressTile is the node-local tile that owns the chip's egress port:
// the mesh corner (0,0), where the memory controller and the
// chip-to-chip serializer attach. Multi-program engines route host
// deliveries through it, so co-located models contend for the spine
// links leading to the corner.
func (c Config) EgressTile() int { return 0 }

// SerializationNs is how long a transfer of the given size occupies
// each link on its route: the wormhole body streams one flit per
// hop-cycle, so the edge is busy for flits × hop latency.
func (c Config) SerializationNs(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return math.Ceil(float64(bytes)/float64(c.FlitBytes)) * c.HopLatencyNs
}

// AverageHops returns the expected hop count between two uniformly
// random distinct tiles of the mesh — the allocator's estimate when the
// placement is not yet known.
func (c Config) AverageHops() float64 {
	// E|x1-x2| for uniform over [0,w) is (w^2-1)/(3w).
	w := float64(c.MeshWidth)
	if w <= 1 {
		return 0
	}
	return 2 * (w*w - 1) / (3 * w)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
