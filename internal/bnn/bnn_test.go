package bnn

import (
	"math/rand"
	"testing"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/tensor"
)

func TestDenseFPForward(t *testing.T) {
	w := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3) // 2 out, 3 in
	d := &DenseFP{LayerName: "d", W: w, B: []float64{1, -1}}
	x := tensor.FromSlice([]float64{1, 0, -1}, 3)
	y := d.Forward(x)
	// out0 = 1 + (1-3) = -1; out1 = -1 + (4-6) = -3
	if y.At(0) != -1 || y.At(1) != -3 {
		t.Fatalf("forward = %v", y.Data())
	}
	if d.MACs() != 6 {
		t.Fatalf("MACs = %d", d.MACs())
	}
}

func TestDenseFPReLU(t *testing.T) {
	w := tensor.FromSlice([]float64{-1}, 1, 1)
	d := &DenseFP{LayerName: "d", W: w, B: []float64{0}, ReLU: true}
	y := d.Forward(tensor.FromSlice([]float64{5}, 1))
	if y.At(0) != 0 {
		t.Fatalf("ReLU failed: %g", y.At(0))
	}
}

func TestDenseFPSizeMismatchPanics(t *testing.T) {
	d := &DenseFP{LayerName: "d", W: tensor.NewFloat(2, 3), B: make([]float64, 2)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Forward(tensor.NewFloat(4))
}

func TestBinaryDenseForwardMatchesManual(t *testing.T) {
	w := bitops.NewMatrix(2, 4)
	// row0 = 1111, row1 = 1000
	for c := 0; c < 4; c++ {
		w.Set(0, c, true)
	}
	w.Set(1, 0, true)
	b := &BinaryDense{LayerName: "b", W: w, Thresh: []int{0, 3}}
	// x = +1,+1,-1,-1 → xb = 1100
	x := tensor.FromSlice([]float64{1, 1, -1, -1}, 4)
	y := b.Forward(x)
	// dot0 = 1+1-1-1 = 0 ≥ 0 → +1 ; dot1 = 1-1+1+1 = 2 < 3 → -1
	if y.At(0) != 1 || y.At(1) != -1 {
		t.Fatalf("forward = %v", y.Data())
	}
}

func TestBinaryDenseWorkload(t *testing.T) {
	b := &BinaryDense{LayerName: "b", W: bitops.NewMatrix(10, 20), Thresh: make([]int, 10)}
	wl := b.Workload()
	if wl.N != 10 || wl.M != 20 || wl.Positions != 1 || wl.Ops() != 200 {
		t.Fatalf("workload = %+v", wl)
	}
}

func TestBinaryConvForwardAgainstDense(t *testing.T) {
	// A 1×1 convolution over a 1-pixel image must equal a dense layer.
	rng := rand.New(rand.NewSource(2))
	g := tensor.ConvGeom{InC: 8, InH: 1, InW: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	k := bitops.NewMatrix(4, 8)
	for r := 0; r < 4; r++ {
		for c := 0; c < 8; c++ {
			k.Set(r, c, rng.Intn(2) == 1)
		}
	}
	thresh := []int{0, 1, -1, 2}
	conv := &BinaryConv2D{LayerName: "c", Geom: g, OutC: 4, K: k, Thresh: thresh}
	dense := &BinaryDense{LayerName: "d", W: k, Thresh: thresh}
	x := tensor.NewFloat(8, 1, 1)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	yc := conv.Forward(x)
	yd := dense.Forward(x.Reshape(8))
	for i := 0; i < 4; i++ {
		if yc.Data()[i] != yd.At(i) {
			t.Fatalf("conv/dense disagree at %d", i)
		}
	}
}

func TestBinaryConvWorkload(t *testing.T) {
	g := tensor.ConvGeom{InC: 16, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b := &BinaryConv2D{LayerName: "c", Geom: g, OutC: 32, K: bitops.NewMatrix(32, g.PatchLen()), Thresh: make([]int, 32)}
	wl := b.Workload()
	if wl.N != 32 || wl.M != 144 || wl.Positions != 64 {
		t.Fatalf("workload = %+v", wl)
	}
}

func TestSignLayer(t *testing.T) {
	s := &Sign{LayerName: "s"}
	y := s.Forward(tensor.FromSlice([]float64{-2, 0, 3}, 3))
	if y.At(0) != -1 || y.At(1) != -1 || y.At(2) != 1 {
		t.Fatalf("sign = %v", y.Data())
	}
}

func TestMaxPool2D(t *testing.T) {
	p := &MaxPool2D{LayerName: "p", Size: 2}
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		-1, -2, -3, -4,
		-5, -6, -7, -8,
	}, 1, 4, 4)
	y := p.Forward(x)
	if y.At(0, 0, 0) != 6 || y.At(0, 0, 1) != 8 || y.At(0, 1, 0) != -1 || y.At(0, 1, 1) != -3 {
		t.Fatalf("pool = %v", y.Data())
	}
	sh := p.OutShape([]int{1, 4, 4})
	if sh[1] != 2 || sh[2] != 2 {
		t.Fatalf("OutShape = %v", sh)
	}
}

func TestFlatten(t *testing.T) {
	f := &Flatten{LayerName: "f"}
	y := f.Forward(tensor.NewFloat(2, 3, 4))
	if len(y.Shape()) != 1 || y.Size() != 24 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
}

func TestZooModelsValidateAndCount(t *testing.T) {
	models, err := Zoo(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 6 {
		t.Fatalf("zoo size = %d", len(models))
	}
	var prevOps int64
	for i, m := range models[:3] { // CNNs ascending
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		ops := m.TotalBinaryOps()
		if ops <= prevOps {
			t.Fatalf("CNN sizes not ascending at %d: %d <= %d", i, ops, prevOps)
		}
		prevOps = ops
	}
	prevOps = 0
	for i, m := range models[3:] { // MLPs ascending
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		ops := m.TotalBinaryOps()
		if ops <= prevOps {
			t.Fatalf("MLP sizes not ascending at %d: %d <= %d", i, ops, prevOps)
		}
		prevOps = ops
	}
}

func TestZooUnknownName(t *testing.T) {
	if _, err := NewModel("nope", 0); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestZooDeterministic(t *testing.T) {
	a, err := NewModel("MLP-S", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel("MLP-S", 7)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewFloat(784)
	rng := rand.New(rand.NewSource(3))
	for i := range x.Data() {
		x.Data()[i] = rng.Float64()
	}
	la, lb := a.Infer(x.Clone()), b.Infer(x.Clone())
	for i := range la.Data() {
		if la.Data()[i] != lb.Data()[i] {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestModelInferShapes(t *testing.T) {
	for _, name := range ZooNames {
		m, err := NewModel(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.NewFloat(m.InputShape...)
		rng := rand.New(rand.NewSource(5))
		for i := range x.Data() {
			x.Data()[i] = rng.Float64()
		}
		logits := m.Infer(x)
		if logits.Size() != m.Classes {
			t.Fatalf("%s: logits size %d", name, logits.Size())
		}
		p := m.Predict(x)
		if p < 0 || p >= m.Classes {
			t.Fatalf("%s: prediction %d out of range", name, p)
		}
	}
}

func TestCostsConsistency(t *testing.T) {
	m, err := NewModel("CNN-S", 1)
	if err != nil {
		t.Fatal(err)
	}
	costs := m.Costs()
	if len(costs) != len(m.Layers) {
		t.Fatalf("%d costs for %d layers", len(costs), len(m.Layers))
	}
	var binOps, macs int64
	for _, c := range costs {
		switch c.Kind {
		case "binary":
			binOps += c.Work.Ops()
			if c.MACs != 0 {
				t.Fatal("binary layer with MACs")
			}
		case "fp":
			macs += c.MACs
		case "shape":
		default:
			t.Fatalf("unknown kind %q", c.Kind)
		}
		if c.ActivationBytes <= 0 {
			t.Fatalf("layer %s has no activation traffic", c.Name)
		}
	}
	if binOps != m.TotalBinaryOps() || macs != m.TotalFPMACs() {
		t.Fatal("cost totals disagree with model totals")
	}
}

func TestValidateCatchesBadStack(t *testing.T) {
	m := &Model{
		ModelName:  "broken",
		InputShape: []int{10},
		Classes:    10,
		Layers: []Layer{
			&DenseFP{LayerName: "d", W: tensor.NewFloat(5, 10), B: make([]float64, 5)},
		},
	}
	if err := m.Validate(); err == nil {
		t.Fatal("expected shape error (5 != 10 classes)")
	}
	empty := &Model{ModelName: "empty", InputShape: []int{1}, Classes: 1}
	if err := empty.Validate(); err == nil {
		t.Fatal("expected error for empty model")
	}
}

func TestWeightBits(t *testing.T) {
	m, _ := NewModel("MLP-S", 1)
	// MLP-S is 784-1024-1024-512-10: binary layers 1024×1024 + 512×1024.
	want := int64(1024*1024 + 512*1024)
	if got := m.WeightBits(); got != want {
		t.Fatalf("WeightBits = %d, want %d", got, want)
	}
}
