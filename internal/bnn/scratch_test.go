package bnn

import (
	"math/rand"
	"sync"
	"testing"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/tensor"
)

func randomDense(rng *rand.Rand, out, in int) *BinaryDense {
	w := bitops.NewMatrix(out, in)
	th := make([]int, out)
	for r := 0; r < out; r++ {
		for c := 0; c < in; c++ {
			w.Set(r, c, rng.Intn(2) == 1)
		}
		th[r] = rng.Intn(7) - 3
	}
	return &BinaryDense{LayerName: "bd", W: w, Thresh: th}
}

// TestBinaryDenseForwardZeroAllocs is the steady-state allocation
// regression test for the scratch-buffer forward path.
func TestBinaryDenseForwardZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := randomDense(rng, 128, 512)
	x := tensor.NewFloat(512)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	l.Forward(x) // warm the scratch buffers
	if avg := testing.AllocsPerRun(100, func() {
		l.Forward(x)
	}); avg != 0 {
		t.Fatalf("BinaryDense.Forward allocates %.1f objects per run, want 0", avg)
	}
}

// TestModelInferSteadyStateAllocs checks the whole MLP forward chain
// stops allocating per layer once every layer's scratch is warm.
func TestModelInferSteadyStateAllocs(t *testing.T) {
	m, err := NewModel("MLP-S", 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewFloat(784)
	rng := rand.New(rand.NewSource(32))
	for i := range x.Data() {
		x.Data()[i] = rng.Float64()
	}
	m.Infer(x)
	if avg := testing.AllocsPerRun(50, func() {
		m.Infer(x)
	}); avg != 0 {
		t.Fatalf("Model.Infer allocates %.1f objects per run in steady state, want 0", avg)
	}
}

// TestForwardScratchReuseKeepsResultsCorrect runs the same layer over
// distinct inputs and checks each call's result against an
// independently computed reference, so buffer reuse cannot leak state
// between calls.
func TestForwardScratchReuseKeepsResultsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	l := randomDense(rng, 9, 40)
	for trial := 0; trial < 20; trial++ {
		x := tensor.NewFloat(40)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		got := l.Forward(x)
		xb := bitops.FromFloats(x.Data())
		dots := l.W.BipolarMatVec(xb)
		for o, d := range dots {
			want := -1.0
			if d >= l.Thresh[o] {
				want = 1
			}
			if got.Data()[o] != want {
				t.Fatalf("trial %d output %d: got %v, want %v", trial, o, got.Data()[o], want)
			}
		}
	}
}

// TestCloneSharedMatchesOriginal checks a shared-weight clone produces
// bit-identical logits, including for conv models, and that clones on
// separate goroutines agree with serial execution.
func TestCloneSharedMatchesOriginal(t *testing.T) {
	for _, name := range []string{"MLP-S", "CNN-S"} {
		m, err := NewModel(name, 5)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(34))
		inputs := make([]*tensor.Float, 8)
		for i := range inputs {
			inputs[i] = tensor.NewFloat(m.InputShape...)
			for j := range inputs[i].Data() {
				inputs[i].Data()[j] = rng.NormFloat64()
			}
		}
		// Serial reference on the original model.
		want := make([][]float64, len(inputs))
		for i, x := range inputs {
			want[i] = append([]float64(nil), m.Infer(x).Data()...)
		}
		// Each goroutine gets its own clone and a disjoint input share.
		var wg sync.WaitGroup
		got := make([][]float64, len(inputs))
		for w := 0; w < 4; w++ {
			clone := m.CloneShared()
			wg.Add(1)
			go func(w int, cm *Model) {
				defer wg.Done()
				for i := w; i < len(inputs); i += 4 {
					got[i] = append([]float64(nil), cm.Infer(inputs[i]).Data()...)
				}
			}(w, clone)
		}
		wg.Wait()
		for i := range inputs {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s input %d logit %d: clone %v != serial %v",
						name, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestFlattenAliasForward checks the no-copy Flatten view reflects the
// input data and shape.
func TestFlattenAliasForward(t *testing.T) {
	f := &Flatten{LayerName: "fl"}
	x := tensor.NewFloat(2, 3)
	for i := range x.Data() {
		x.Data()[i] = float64(i)
	}
	y := f.Forward(x)
	if y.Dims() != 1 || y.Dim(0) != 6 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	for i, v := range y.Data() {
		if v != float64(i) {
			t.Fatalf("flatten data[%d] = %v", i, v)
		}
	}
}
