package bnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/tensor"
)

// Model serialization: a compact little-endian binary format so trained
// or synthesized models can be stored, shipped to the compiler, or
// loaded by the CLI tools. Binary weight matrices are written as their
// packed 64-bit words (64× smaller than float32 weights — the paper's
// §II-B storage advantage, made concrete).
//
// Format (version 1):
//
//	magic "EBNN" | u32 version | str name | shape | u32 classes |
//	u32 layerCount | layers…
//
// where str is u32 length + bytes, shape is u32 rank + u32 dims, and
// each layer starts with a u8 kind tag.

const (
	magic   = "EBNN"
	version = 1
)

// Layer kind tags.
const (
	tagDenseFP = iota + 1
	tagConvFP
	tagBinaryDense
	tagBinaryConv
	tagSign
	tagMaxPool
	tagFlatten
)

// WriteModel serializes m to w.
func WriteModel(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	e := &encoder{w: bw}
	e.bytes([]byte(magic))
	e.u32(version)
	e.str(m.ModelName)
	e.shape(m.InputShape)
	e.u32(uint32(m.Classes))
	e.u32(uint32(len(m.Layers)))
	for _, l := range m.Layers {
		if e.err != nil {
			break
		}
		e.layer(l)
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// ReadModel deserializes a model written by WriteModel.
func ReadModel(r io.Reader) (*Model, error) {
	d := &decoder{r: bufio.NewReader(r)}
	if got := string(d.bytes(4)); d.err == nil && got != magic {
		return nil, fmt.Errorf("bnn: bad magic %q", got)
	}
	if v := d.u32(); d.err == nil && v != version {
		return nil, fmt.Errorf("bnn: unsupported version %d", v)
	}
	m := &Model{}
	m.ModelName = d.str()
	m.InputShape = d.shape()
	m.Classes = int(d.u32())
	n := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("bnn: implausible layer count %d", n)
	}
	for i := 0; i < int(n); i++ {
		l, err := d.layer()
		if err != nil {
			return nil, fmt.Errorf("bnn: layer %d: %w", i, err)
		}
		m.Layers = append(m.Layers, l)
	}
	if d.err != nil {
		return nil, d.err
	}
	return m, m.Validate()
}

// --- encoder ------------------------------------------------------------

type encoder struct {
	w   io.Writer
	err error
}

func (e *encoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) u8(v uint8) { e.bytes([]byte{v}) }
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.bytes(b[:])
}

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.bytes(b[:])
}

func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.bytes([]byte(s))
}

func (e *encoder) shape(s []int) {
	e.u32(uint32(len(s)))
	for _, d := range s {
		e.u32(uint32(d))
	}
}

func (e *encoder) floats(xs []float64) {
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.f64(x)
	}
}

func (e *encoder) ints(xs []int) {
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.u64(uint64(int64(x)))
	}
}

func (e *encoder) bits(m *bitops.Matrix) {
	e.u32(uint32(m.Rows()))
	e.u32(uint32(m.Cols()))
	for r := 0; r < m.Rows(); r++ {
		for _, w := range m.Row(r).Words() {
			e.u64(w)
		}
	}
}

func (e *encoder) geom(g tensor.ConvGeom) {
	for _, v := range []int{g.InC, g.InH, g.InW, g.KH, g.KW, g.StrideH, g.StrideW, g.PadH, g.PadW} {
		e.u32(uint32(v))
	}
}

func (e *encoder) layer(l Layer) {
	switch t := l.(type) {
	case *DenseFP:
		e.u8(tagDenseFP)
		e.str(t.LayerName)
		e.u32(uint32(t.OutDim()))
		e.u32(uint32(t.InDim()))
		e.floats(t.W.Data())
		e.floats(t.B)
		if t.ReLU {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case *ConvFP:
		e.u8(tagConvFP)
		e.str(t.LayerName)
		e.geom(t.Geom)
		e.u32(uint32(t.OutC))
		e.floats(t.K.Data())
		e.floats(t.B)
	case *BinaryDense:
		e.u8(tagBinaryDense)
		e.str(t.LayerName)
		e.bits(t.W)
		e.ints(t.Thresh)
	case *BinaryConv2D:
		e.u8(tagBinaryConv)
		e.str(t.LayerName)
		e.geom(t.Geom)
		e.u32(uint32(t.OutC))
		e.bits(t.K)
		e.ints(t.Thresh)
	case *Sign:
		e.u8(tagSign)
		e.str(t.LayerName)
	case *MaxPool2D:
		e.u8(tagMaxPool)
		e.str(t.LayerName)
		e.u32(uint32(t.Size))
	case *Flatten:
		e.u8(tagFlatten)
		e.str(t.LayerName)
	default:
		e.err = fmt.Errorf("bnn: cannot serialize layer type %T", l)
	}
}

// --- decoder ------------------------------------------------------------

type decoder struct {
	r   io.Reader
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	_, d.err = io.ReadFull(d.r, b)
	return b
}

func (d *decoder) u8() uint8 {
	b := d.bytes(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || n > 1<<20 {
		if d.err == nil {
			d.err = fmt.Errorf("bnn: implausible string length %d", n)
		}
		return ""
	}
	return string(d.bytes(int(n)))
}

func (d *decoder) shape() []int {
	n := d.u32()
	if d.err != nil || n > 8 {
		if d.err == nil {
			d.err = fmt.Errorf("bnn: implausible shape rank %d", n)
		}
		return nil
	}
	s := make([]int, n)
	for i := range s {
		s[i] = int(d.u32())
	}
	return s
}

func (d *decoder) floats() []float64 {
	n := d.u32()
	if d.err != nil || n > 1<<28 {
		if d.err == nil {
			d.err = fmt.Errorf("bnn: implausible float count %d", n)
		}
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.f64()
	}
	return xs
}

func (d *decoder) ints() []int {
	n := d.u32()
	if d.err != nil || n > 1<<24 {
		if d.err == nil {
			d.err = fmt.Errorf("bnn: implausible int count %d", n)
		}
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(int64(d.u64()))
	}
	return xs
}

func (d *decoder) bits() *bitops.Matrix {
	rows, cols := int(d.u32()), int(d.u32())
	if d.err != nil {
		return nil
	}
	// Bound each dimension before multiplying: two u32s can overflow
	// even int64 and sneak a negative product past an area-only check
	// (found by FuzzSerializeRoundTrip).
	if rows < 0 || cols < 0 || rows > 1<<24 || cols > 1<<24 || int64(rows)*int64(cols) > 1<<32 {
		d.err = fmt.Errorf("bnn: implausible bit matrix %dx%d", rows, cols)
		return nil
	}
	m := bitops.NewMatrix(rows, cols)
	wordsPerRow := (cols + 63) / 64
	for r := 0; r < rows; r++ {
		for wi := 0; wi < wordsPerRow; wi++ {
			w := d.u64()
			for b := 0; b < 64; b++ {
				c := wi*64 + b
				if c < cols && w>>uint(b)&1 == 1 {
					m.Set(r, c, true)
				}
			}
		}
	}
	return m
}

func (d *decoder) geom() tensor.ConvGeom {
	var g tensor.ConvGeom
	for _, dst := range []*int{&g.InC, &g.InH, &g.InW, &g.KH, &g.KW, &g.StrideH, &g.StrideW, &g.PadH, &g.PadW} {
		*dst = int(d.u32())
	}
	return g
}

func (d *decoder) layer() (Layer, error) {
	tag := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	switch tag {
	case tagDenseFP:
		name := d.str()
		out, in := int(d.u32()), int(d.u32())
		data := d.floats()
		b := d.floats()
		relu := d.u8() == 1
		if d.err != nil {
			return nil, d.err
		}
		if len(data) != out*in || len(b) != out {
			return nil, fmt.Errorf("dense %q: inconsistent sizes", name)
		}
		return &DenseFP{LayerName: name, W: tensor.FromSlice(data, out, in), B: b, ReLU: relu}, nil
	case tagConvFP:
		name := d.str()
		g := d.geom()
		outC := int(d.u32())
		data := d.floats()
		b := d.floats()
		if d.err != nil {
			return nil, d.err
		}
		if err := g.Validate(); err != nil {
			return nil, err
		}
		if len(data) != outC*g.PatchLen() || len(b) != outC {
			return nil, fmt.Errorf("conv %q: inconsistent sizes", name)
		}
		return &ConvFP{LayerName: name, Geom: g, OutC: outC, K: tensor.FromSlice(data, outC, g.PatchLen()), B: b}, nil
	case tagBinaryDense:
		name := d.str()
		w := d.bits()
		th := d.ints()
		if d.err != nil {
			return nil, d.err
		}
		if len(th) != w.Rows() {
			return nil, fmt.Errorf("binary dense %q: %d thresholds for %d rows", name, len(th), w.Rows())
		}
		return &BinaryDense{LayerName: name, W: w, Thresh: th}, nil
	case tagBinaryConv:
		name := d.str()
		g := d.geom()
		outC := int(d.u32())
		k := d.bits()
		th := d.ints()
		if d.err != nil {
			return nil, d.err
		}
		if err := g.Validate(); err != nil {
			return nil, err
		}
		if k.Rows() != outC || k.Cols() != g.PatchLen() || len(th) != outC {
			return nil, fmt.Errorf("binary conv %q: inconsistent sizes", name)
		}
		return &BinaryConv2D{LayerName: name, Geom: g, OutC: outC, K: k, Thresh: th}, nil
	case tagSign:
		return &Sign{LayerName: d.str()}, d.err
	case tagMaxPool:
		name := d.str()
		size := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if size < 1 {
			return nil, fmt.Errorf("pool %q: bad size %d", name, size)
		}
		return &MaxPool2D{LayerName: name, Size: size}, nil
	case tagFlatten:
		return &Flatten{LayerName: d.str()}, d.err
	default:
		return nil, fmt.Errorf("unknown layer tag %d", tag)
	}
}
