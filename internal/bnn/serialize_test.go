package bnn

import (
	"bytes"
	"math/rand"
	"testing"

	"einsteinbarrier/internal/tensor"
)

func roundTrip(t *testing.T, m *Model) *Model {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSerializeRoundTripAllZoo(t *testing.T) {
	for _, name := range ZooNames {
		m, err := NewModel(name, 5)
		if err != nil {
			t.Fatal(err)
		}
		got := roundTrip(t, m)
		if got.ModelName != m.ModelName || got.Classes != m.Classes {
			t.Fatalf("%s: header mismatch", name)
		}
		if len(got.Layers) != len(m.Layers) {
			t.Fatalf("%s: %d layers, want %d", name, len(got.Layers), len(m.Layers))
		}
		// Same inference on a random input — layer-exact equality via
		// the strongest observable: identical logits.
		x := tensor.NewFloat(m.InputShape...)
		rng := rand.New(rand.NewSource(9))
		for i := range x.Data() {
			x.Data()[i] = rng.Float64()
		}
		a, b := m.Infer(x.Clone()), got.Infer(x.Clone())
		for i := range a.Data() {
			if a.Data()[i] != b.Data()[i] {
				t.Fatalf("%s: logits diverge at %d", name, i)
			}
		}
	}
}

func TestSerializeTrainedModel(t *testing.T) {
	tr, err := NewTrainer(TrainerConfig{Sizes: []int{16, 8, 8, 4}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Export("tiny")
	got := roundTrip(t, m)
	x := tensor.NewFloat(16)
	for i := range x.Data() {
		x.Data()[i] = float64(i%3) - 1
	}
	if m.Predict(x.Clone()) != got.Predict(x.Clone()) {
		t.Fatal("prediction changed after round trip")
	}
}

func TestBinaryWeightsCompact(t *testing.T) {
	// The whole point of BNN storage: serialized binary layers must be
	// ~64× smaller than a float32 encoding of the same weights.
	m, err := NewModel("MLP-M", 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	// Expected: binary weights at 1 bit each, FP weights at 8 bytes
	// (float64), plus thresholds/biases and modest framing.
	binBytes := m.WeightBits() / 8
	fpBytes := m.TotalFPMACs() * 8 // dense/conv weight counts equal their MACs per position
	budget := binBytes + fpBytes + binBytes/2 + 256*1024
	if int64(buf.Len()) > budget {
		t.Fatalf("serialized size %d exceeds budget %d (binary layers not bit-packed?)", buf.Len(), budget)
	}
	// And the binary layers alone must be ~32× below an fp32 encoding.
	if binBytes*32 > m.WeightBits()*4 {
		t.Fatal("arithmetic sanity")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("EBNN"),                     // truncated after magic
		append([]byte("EBNN"), 9, 0, 0, 0), // bad version
	}
	for i, b := range cases {
		if _, err := ReadModel(bytes.NewReader(b)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestReadModelRejectsTruncation(t *testing.T) {
	m, _ := NewModel("MLP-S", 1)
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := ReadModel(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
}

func TestReadModelValidates(t *testing.T) {
	// A structurally valid stream whose shapes do not compose must be
	// rejected by the final Validate.
	m := &Model{
		ModelName:  "bad",
		InputShape: []int{4},
		Classes:    3, // final layer emits 2 — mismatch
		Layers: []Layer{
			&DenseFP{LayerName: "d", W: tensor.NewFloat(2, 4), B: make([]float64, 2)},
		},
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf); err == nil {
		t.Fatal("expected validation error on read")
	}
}
