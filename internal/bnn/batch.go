package bnn

import (
	"fmt"
	"math"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/tensor"
)

// Batch-major bit-parallel inference: Model.InferBatchBits carries up
// to LaneWidth samples through the stack side by side. Activations move
// between layers as batchAct blocks in one of two domains:
//
//   - bit domain (±1 activations): a bitops.BitBatch, one uint64 word
//     per feature with bit s = sample s, so the binary layers run their
//     fused batch kernels and re-binarize without per-sample round
//     trips;
//   - float domain: a lanedFloat, feature f of sample s at
//     data[f*LaneWidth+s], so a dense FP layer reduces all lanes with
//     one broadcast multiply-add per feature (tensor.DenseLanesInto).
//
// Domain conversions are exact (±1 floats ↔ bits), and every kernel
// performs the per-sample operation sequence lane by lane, so batch
// results are bit-identical to Model.Infer — pinned across the zoo by
// TestInferBatchBitsMatchesInfer.
//
// Remainder policy: a batch never exceeds LaneWidth; ragged batches
// (< LaneWidth lanes) run the same code paths with the canonical
// lane-mask invariant keeping dead lanes zero in the bit domain, while
// float-domain dead lanes may hold stale values that no consumer reads.
//
// Scratch ownership: every layer owns its batch buffers (nil'd by
// cloneShared, like the per-sample scratch), the model owns the
// input/output staging and the fan-out scratch for layers without a
// native batch path, and the returned logits are model-owned and
// overwritten by the next call.

// LaneWidth is the maximum batch size of InferBatchBits — the 64
// sample lanes of one machine word.
const LaneWidth = tensor.LaneWidth

// lanedFloat is a batch-major float activation block: feature f of
// lane s lives at data[f*LaneWidth+s]. The lane stride is always
// LaneWidth regardless of the live lane count, so kernels never branch
// on raggedness; dead lanes carry junk that is never read.
type lanedFloat struct {
	features int
	data     []float64
}

// ensure resizes to the feature count, reusing storage when possible.
func (l *lanedFloat) ensure(features int) *lanedFloat {
	need := features * LaneWidth
	if cap(l.data) < need {
		l.data = make([]float64, need)
	} else {
		l.data = l.data[:need]
	}
	l.features = features
	return l
}

// batchAct is the activation block flowing between batch stages:
// logical per-sample shape, live lane count, and exactly one of fl
// (float domain) or bb (bit domain, bit 1 = +1, bit 0 = −1).
type batchAct struct {
	shape []int
	lanes int
	fl    *lanedFloat
	bb    *bitops.BitBatch
}

func (a *batchAct) set(shape []int, lanes int, fl *lanedFloat, bb *bitops.BitBatch) *batchAct {
	a.shape, a.lanes, a.fl, a.bb = shape, lanes, fl, bb
	return a
}

// floatLanes returns the activation in float form, expanding a
// bit-domain block to ±1 lanes into scr when needed.
func (a *batchAct) floatLanes(scr *lanedFloat) *lanedFloat {
	if a.fl != nil {
		return a.fl
	}
	out := scr.ensure(a.bb.Features())
	for f, word := range a.bb.Words() {
		d := out.data[f*LaneWidth : (f+1)*LaneWidth]
		for s := range d {
			if word>>uint(s)&1 == 1 {
				d[s] = 1
			} else {
				d[s] = -1
			}
		}
	}
	return out
}

// bitLanes returns the activation in bit form, packing float lanes
// with the sign rule (x > 0 → 1) into *scr when needed — the batch
// counterpart of Vector.SetFromFloats. Only live lanes are packed, so
// the result is canonical.
func (a *batchAct) bitLanes(scr **bitops.BitBatch) *bitops.BitBatch {
	if a.bb != nil {
		return a.bb
	}
	bb := bitops.EnsureBitBatch(*scr, a.fl.features, a.lanes)
	*scr = bb
	w := bb.Words()
	for f := 0; f < a.fl.features; f++ {
		d := a.fl.data[f*LaneWidth : f*LaneWidth+LaneWidth]
		var word uint64
		for s := 0; s < a.lanes; s++ {
			if d[s] > 0 {
				word |= 1 << uint(s)
			}
		}
		w[f] = word
	}
	return bb
}

// batchForwarder is implemented by layers with a native batch path;
// layers without one fan their lanes over the per-sample Forward (see
// fanScratch.fan). The returned block is layer-owned and overwritten
// by the next forwardBatch call.
type batchForwarder interface {
	forwardBatch(x *batchAct) *batchAct
}

// --- DenseFP ----------------------------------------------------------

type denseFPBatch struct {
	in       lanedFloat // de-transposed ±1 lanes when the input is bits
	out      lanedFloat
	outShape []int
	act      batchAct
}

// forwardBatch runs the dense layer on all lanes: per output neuron,
// bias broadcast + one multiply-add per feature across the 64-lane
// stripe, then ReLU — the scalar Forward loop lane-replicated, so each
// lane is bit-identical to it.
func (d *DenseFP) forwardBatch(x *batchAct) *batchAct {
	in, out := d.InDim(), d.OutDim()
	if sizeOf(x.shape) != in {
		panic(fmt.Sprintf("bnn: %s: batch input size %d, want %d", d.LayerName, sizeOf(x.shape), in))
	}
	if d.batch == nil {
		d.batch = &denseFPBatch{outShape: []int{out}}
	}
	bx := x.floatLanes(&d.batch.in)
	y := d.batch.out.ensure(out)
	wd := d.W.Data()
	for o := 0; o < out; o++ {
		acc := y.data[o*LaneWidth : (o+1)*LaneWidth]
		bo := d.B[o]
		for s := range acc {
			acc[s] = bo
		}
		tensor.DenseLanesInto(acc, bx.data, wd[o*in:(o+1)*in])
		if d.ReLU {
			for s := range acc {
				if acc[s] < 0 {
					acc[s] = 0
				}
			}
		}
	}
	return d.batch.act.set(d.batch.outShape, x.lanes, y, nil)
}

// --- BinaryDense ------------------------------------------------------

type binaryDenseBatch struct {
	xbb      *bitops.BitBatch // binarized input when the input is floats
	out      *bitops.BitBatch
	scr      bitops.BatchScratch
	outShape []int
	act      batchAct
}

// forwardBatch is the fused bit-parallel dense layer: binarize (if
// needed), XNOR+popcount every lane against every weight row, and
// threshold straight back into batch-major bits.
func (b *BinaryDense) forwardBatch(x *batchAct) *batchAct {
	if sizeOf(x.shape) != b.W.Cols() {
		panic(fmt.Sprintf("bnn: %s: batch input size %d, want %d", b.LayerName, sizeOf(x.shape), b.W.Cols()))
	}
	if b.batch == nil {
		b.batch = &binaryDenseBatch{outShape: []int{b.W.Rows()}}
	}
	xb := x.bitLanes(&b.batch.xbb)
	b.batch.out = b.W.BipolarSignBatchInto(xb, b.Thresh, b.batch.out, &b.batch.scr)
	return b.batch.act.set(b.batch.outShape, x.lanes, nil, b.batch.out)
}

// --- BinaryConv2D -----------------------------------------------------

type binaryConvBatch struct {
	xbb      *bitops.BitBatch // binarized input when the input is floats
	patch    *bitops.BitBatch // one position's patch block (patchLen × lanes)
	pout     *bitops.BitBatch // one position's output block (OutC × lanes)
	out      *bitops.BitBatch
	scr      bitops.BatchScratch
	idx      []int // pos×patchLen im2col gather map, -1 = zero pad
	outShape []int
	act      batchAct
}

// convGatherIndices precomputes the bit-domain im2col: for each output
// position, the flat input-feature index of every patch element in
// Im2ColInto's element order, or -1 where padding reads as zero.
func convGatherIndices(g tensor.ConvGeom) []int {
	idx := make([]int, 0, g.Positions()*g.PatchLen())
	for oh := 0; oh < g.OutH(); oh++ {
		for ow := 0; ow < g.OutW(); ow++ {
			for c := 0; c < g.InC; c++ {
				for kh := 0; kh < g.KH; kh++ {
					ih := oh*g.StrideH + kh - g.PadH
					for kw := 0; kw < g.KW; kw++ {
						iw := ow*g.StrideW + kw - g.PadW
						if ih < 0 || ih >= g.InH || iw < 0 || iw >= g.InW {
							idx = append(idx, -1)
						} else {
							idx = append(idx, (c*g.InH+ih)*g.InW+iw)
						}
					}
				}
			}
		}
	}
	return idx
}

// forwardBatch runs the binarized convolution on all lanes: the im2col
// happens in the bit domain as a word gather (one word moves the patch
// element of all 64 samples; padding gathers a zero word, matching
// sign(0) = −1 = bit 0), then each position is one fused batch dense
// step.
func (b *BinaryConv2D) forwardBatch(x *batchAct) *batchAct {
	g := b.Geom
	if len(x.shape) != 3 || x.shape[0] != g.InC || x.shape[1] != g.InH || x.shape[2] != g.InW {
		panic(fmt.Sprintf("bnn: %s: batch input %v does not match geom %dx%dx%d",
			b.LayerName, x.shape, g.InC, g.InH, g.InW))
	}
	pl, pos := g.PatchLen(), g.Positions()
	if b.batch == nil {
		b.batch = &binaryConvBatch{
			outShape: []int{b.OutC, g.OutH(), g.OutW()},
			idx:      convGatherIndices(g),
		}
	}
	xb := x.bitLanes(&b.batch.xbb)
	patch := bitops.EnsureBitBatch(b.batch.patch, pl, x.lanes)
	b.batch.patch = patch
	out := bitops.EnsureBitBatch(b.batch.out, b.OutC*pos, x.lanes)
	b.batch.out = out
	xw, pw, ow := xb.Words(), patch.Words(), out.Words()
	for p := 0; p < pos; p++ {
		for i, si := range b.batch.idx[p*pl : (p+1)*pl] {
			if si >= 0 {
				pw[i] = xw[si]
			} else {
				pw[i] = 0
			}
		}
		b.batch.pout = b.K.BipolarSignBatchInto(patch, b.Thresh, b.batch.pout, &b.batch.scr)
		pv := b.batch.pout.Words()
		for o := 0; o < b.OutC; o++ {
			ow[o*pos+p] = pv[o]
		}
	}
	return b.batch.act.set(b.batch.outShape, x.lanes, nil, out)
}

// --- Sign -------------------------------------------------------------

type signBatch struct {
	bb  *bitops.BitBatch
	act batchAct
}

// forwardBatch binarizes into the bit domain; ±1 is represented
// exactly, so a later float consumer recovers the same values Forward
// would have produced. A bit-domain input passes through unchanged
// (sign is idempotent on ±1).
func (s *Sign) forwardBatch(x *batchAct) *batchAct {
	if s.batch == nil {
		s.batch = &signBatch{}
	}
	bb := x.bitLanes(&s.batch.bb)
	return s.batch.act.set(x.shape, x.lanes, nil, bb)
}

// --- MaxPool2D --------------------------------------------------------

type poolBatch struct {
	bb       *bitops.BitBatch
	fl       lanedFloat
	outShape []int
	act      batchAct
}

// forwardBatch pools all lanes at once. In the bit domain max over ±1
// is an OR reduction, so one word-OR per window element advances 64
// samples; in the float domain each lane runs the scalar window max.
func (m *MaxPool2D) forwardBatch(x *batchAct) *batchAct {
	if len(x.shape) != 3 {
		panic(fmt.Sprintf("bnn: %s: pooling needs CHW input, got %v", m.LayerName, x.shape))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := h/m.Size, w/m.Size
	if m.batch == nil {
		m.batch = &poolBatch{}
	}
	mb := m.batch
	if len(mb.outShape) != 3 || mb.outShape[0] != c || mb.outShape[1] != oh || mb.outShape[2] != ow {
		mb.outShape = []int{c, oh, ow}
	}
	if x.bb != nil {
		out := bitops.EnsureBitBatch(mb.bb, c*oh*ow, x.lanes)
		mb.bb = out
		xw, yw := x.bb.Words(), out.Words()
		for ci := 0; ci < c; ci++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					var acc uint64
					for di := 0; di < m.Size; di++ {
						rowBase := (ci*h + i*m.Size + di) * w
						for dj := 0; dj < m.Size; dj++ {
							acc |= xw[rowBase+j*m.Size+dj]
						}
					}
					yw[(ci*oh+i)*ow+j] = acc
				}
			}
		}
		return mb.act.set(mb.outShape, x.lanes, nil, out)
	}
	out := mb.fl.ensure(c * oh * ow)
	xd := x.fl.data
	for ci := 0; ci < c; ci++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				d := out.data[((ci*oh+i)*ow+j)*LaneWidth:]
				for s := 0; s < LaneWidth; s++ {
					best := math.Inf(-1)
					for di := 0; di < m.Size; di++ {
						rowBase := (ci*h + i*m.Size + di) * w
						for dj := 0; dj < m.Size; dj++ {
							if v := xd[(rowBase+j*m.Size+dj)*LaneWidth+s]; v > best {
								best = v
							}
						}
					}
					d[s] = best
				}
			}
		}
	}
	return mb.act.set(mb.outShape, x.lanes, out, nil)
}

// --- Flatten ----------------------------------------------------------

type flattenBatch struct {
	outShape []int
	act      batchAct
}

// forwardBatch is a pure shape change: batch-major storage is already
// flat per feature.
func (f *Flatten) forwardBatch(x *batchAct) *batchAct {
	if f.batch == nil {
		f.batch = &flattenBatch{}
	}
	n := sizeOf(x.shape)
	if len(f.batch.outShape) != 1 || f.batch.outShape[0] != n {
		f.batch.outShape = []int{n}
	}
	return f.batch.act.set(f.batch.outShape, x.lanes, x.fl, x.bb)
}

// --- Fan-out fallback -------------------------------------------------

// fanScratch runs one layer without a native batch path (ConvFP, or
// any external Layer) by de-transposing each live lane, calling the
// per-sample Forward, and re-transposing the outputs — trivially
// bit-identical, at per-sample cost.
type fanScratch struct {
	in       *tensor.Float
	out      lanedFloat
	outShape []int
	act      batchAct
}

func shapeEqualTensor(shape []int, t *tensor.Float) bool {
	if t == nil || t.Dims() != len(shape) {
		return false
	}
	for i, d := range shape {
		if t.Dim(i) != d {
			return false
		}
	}
	return true
}

func (fs *fanScratch) fan(l Layer, x *batchAct) *batchAct {
	if !shapeEqualTensor(x.shape, fs.in) {
		fs.in = tensor.NewFloat(x.shape...)
	}
	d := fs.in.Data()
	var out *lanedFloat
	for s := 0; s < x.lanes; s++ {
		if x.fl != nil {
			for i := range d {
				d[i] = x.fl.data[i*LaneWidth+s]
			}
		} else {
			words := x.bb.Words()
			for i := range d {
				if words[i]>>uint(s)&1 == 1 {
					d[i] = 1
				} else {
					d[i] = -1
				}
			}
		}
		y := l.Forward(fs.in)
		if s == 0 {
			if !shapeEqualTensor(fs.outShape, y) {
				fs.outShape = y.Shape()
			}
			out = fs.out.ensure(y.Size())
		}
		yd := y.Data()
		for i, v := range yd {
			out.data[i*LaneWidth+s] = v
		}
	}
	return fs.act.set(fs.outShape, x.lanes, out, nil)
}

// --- Model entry point ------------------------------------------------

// modelBatch is the model-owned staging for InferBatchBits.
type modelBatch struct {
	in    lanedFloat
	outFl lanedFloat // final de-transpose scratch when logits end in bits
	act   batchAct
	fans  []fanScratch
	outs  []*tensor.Float
}

// InferBatchBits runs the batch-major bit-parallel forward pass over 1
// to LaneWidth samples and returns their logits in input order, bit-
// identical to calling Infer per sample.
//
// Like Infer, the returned tensors are model-owned scratch, overwritten
// by the next call (Clone to retain), and the method is not safe for
// concurrent use on one model — the internal/infer engine hands each
// worker its own CloneShared copy. Steady-state calls allocate nothing.
func (m *Model) InferBatchBits(xs []*tensor.Float) []*tensor.Float {
	lanes := len(xs)
	if lanes == 0 || lanes > LaneWidth {
		panic(fmt.Sprintf("bnn: model %q: batch size %d, want 1..%d", m.ModelName, lanes, LaneWidth))
	}
	if m.batch == nil {
		m.batch = &modelBatch{
			fans: make([]fanScratch, len(m.Layers)),
			outs: make([]*tensor.Float, LaneWidth),
		}
	}
	mb := m.batch
	size := sizeOf(m.InputShape)
	in := mb.in.ensure(size)
	for s, x := range xs {
		if x == nil || x.Size() != size {
			panic(fmt.Sprintf("bnn: model %q: batch input %d does not hold %d elements", m.ModelName, s, size))
		}
		for i, v := range x.Data() {
			in.data[i*LaneWidth+s] = v
		}
	}
	act := mb.act.set(m.InputShape, lanes, in, nil)
	for li, l := range m.Layers {
		if bf, ok := l.(batchForwarder); ok {
			act = bf.forwardBatch(act)
		} else {
			act = mb.fans[li].fan(l, act)
		}
	}
	fl := act.floatLanes(&mb.outFl)
	n := sizeOf(act.shape)
	for s := 0; s < lanes; s++ {
		t := mb.outs[s]
		if !shapeEqualTensor(act.shape, t) {
			t = tensor.NewFloat(act.shape...)
			mb.outs[s] = t
		}
		td := t.Data()
		for i := 0; i < n; i++ {
			td[i] = fl.data[i*LaneWidth+s]
		}
	}
	return mb.outs[:lanes]
}
