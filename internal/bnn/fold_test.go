package bnn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/tensor"
)

func randomBN(rng *rand.Rand, n int) BatchNorm {
	bn := BatchNorm{
		Gamma: make([]float64, n),
		Beta:  make([]float64, n),
		Mean:  make([]float64, n),
		Var:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		bn.Gamma[i] = rng.NormFloat64()
		if bn.Gamma[i] == 0 {
			bn.Gamma[i] = 1
		}
		bn.Beta[i] = rng.NormFloat64()
		bn.Mean[i] = rng.NormFloat64() * 4
		bn.Var[i] = rng.Float64()*4 + 0.1
	}
	return bn
}

func TestBatchNormValidate(t *testing.T) {
	bad := []BatchNorm{
		{},
		{Gamma: []float64{1}, Beta: []float64{0}, Mean: []float64{0}, Var: []float64{0, 1}},
		{Gamma: []float64{0}, Beta: []float64{0}, Mean: []float64{0}, Var: []float64{1}},
		{Gamma: []float64{1}, Beta: []float64{0}, Mean: []float64{0}, Var: []float64{-1}},
	}
	for i, bn := range bad {
		if err := bn.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

// TestFoldDenseMatchesReference: for every input, the folded layer must
// equal sign(BN(dot)) computed in floating point on the original
// weights.
func TestFoldDenseMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		out, in := 1+rng.Intn(12), 1+rng.Intn(40)
		w := bitops.NewMatrix(out, in)
		for r := 0; r < out; r++ {
			for c := 0; c < in; c++ {
				w.Set(r, c, rng.Intn(2) == 1)
			}
		}
		original := w.Clone()
		bn := randomBN(rng, out)
		l := &BinaryDense{LayerName: "b", W: w, Thresh: make([]int, out)}
		if err := FoldIntoDense(l, bn); err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			x := tensor.NewFloat(in)
			for i := range x.Data() {
				x.Data()[i] = rng.NormFloat64()
			}
			got := l.Forward(x.Clone())
			xb := bitops.FromFloats(x.Data())
			dots := original.BipolarMatVec(xb)
			for o := 0; o < out; o++ {
				if got.At(o) != bn.ReferenceBNSign(o, dots[o]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldConvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := tensor.ConvGeom{InC: 3, InH: 6, InW: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	outC := 5
	k := bitops.NewMatrix(outC, g.PatchLen())
	for r := 0; r < outC; r++ {
		for c := 0; c < g.PatchLen(); c++ {
			k.Set(r, c, rng.Intn(2) == 1)
		}
	}
	original := k.Clone()
	bn := randomBN(rng, outC)
	l := &BinaryConv2D{LayerName: "c", Geom: g, OutC: outC, K: k, Thresh: make([]int, outC)}
	if err := FoldIntoConv(l, bn); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewFloat(g.InC, g.InH, g.InW)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	got := l.Forward(x.Clone())
	// Reference: dots on original kernels, BN+sign in float.
	cols := g.Im2Col(x)
	pos := g.Positions()
	for p := 0; p < pos; p++ {
		patch := bitops.FromFloats(cols.Data()[p*g.PatchLen() : (p+1)*g.PatchLen()])
		dots := original.BipolarMatVec(patch)
		for o := 0; o < outC; o++ {
			if got.Data()[o*pos+p] != bn.ReferenceBNSign(o, dots[o]) {
				t.Fatalf("pos %d ch %d mismatch", p, o)
			}
		}
	}
}

func TestFoldDimensionMismatch(t *testing.T) {
	l := &BinaryDense{LayerName: "b", W: bitops.NewMatrix(3, 4), Thresh: make([]int, 3)}
	bn := randomBN(rand.New(rand.NewSource(1)), 2)
	if err := FoldIntoDense(l, bn); err == nil {
		t.Fatal("expected width mismatch error")
	}
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	c := &BinaryConv2D{LayerName: "c", Geom: g, OutC: 3, K: bitops.NewMatrix(3, 9), Thresh: make([]int, 3)}
	if err := FoldIntoConv(c, bn); err == nil {
		t.Fatal("expected channel mismatch error")
	}
}

func TestNegativeGammaFlipsWeights(t *testing.T) {
	w := bitops.NewMatrix(1, 4)
	w.Set(0, 0, true)
	l := &BinaryDense{LayerName: "b", W: w, Thresh: []int{0}}
	bn := BatchNorm{Gamma: []float64{-1}, Beta: []float64{0}, Mean: []float64{0}, Var: []float64{1}}
	if err := FoldIntoDense(l, bn); err != nil {
		t.Fatal(err)
	}
	// Row must be complemented: 1000 → 0111.
	if l.W.Row(0).String() != "0111" {
		t.Fatalf("row = %s, want 0111", l.W.Row(0).String())
	}
}
