package bnn

import (
	"testing"

	"einsteinbarrier/internal/dataset"
)

func TestNewTrainerValidation(t *testing.T) {
	if _, err := NewTrainer(TrainerConfig{Sizes: []int{4, 2}}); err == nil {
		t.Fatal("expected error for too few layers")
	}
	if _, err := NewTrainer(TrainerConfig{Sizes: []int{4, 0, 2}}); err == nil {
		t.Fatal("expected error for zero-width layer")
	}
}

func TestTrainEpochErrors(t *testing.T) {
	tr, err := NewTrainer(TrainerConfig{Sizes: []int{4, 8, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TrainEpoch(nil, nil); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := tr.TrainEpoch([][]float64{{1, 2}}, []int{0}); err == nil {
		t.Fatal("expected error for wrong feature count")
	}
}

// TestTrainerLearnsSyntheticDigits is the end-to-end learning check:
// an STE-trained BNN must reach high accuracy on the synthetic digit
// task, demonstrating the training substrate works (paper §II-B).
func TestTrainerLearnsSyntheticDigits(t *testing.T) {
	samples := dataset.Digits(600, 42)
	train, test, err := dataset.Split(samples, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := dataset.Flatten(train)
	txs, tys := dataset.Flatten(test)

	tr, err := NewTrainer(TrainerConfig{Sizes: []int{784, 64, 64, 10}, LR: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var loss float64
	for epoch := 0; epoch < 12; epoch++ {
		loss, err = tr.TrainEpoch(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
	}
	acc := tr.Accuracy(txs, tys)
	if acc < 0.85 {
		t.Fatalf("test accuracy %.2f < 0.85 (final loss %.3f)", acc, loss)
	}
}

// TestExportedModelMatchesTrainer verifies that the frozen inference
// Model agrees with the trainer's own binarized forward pass.
func TestExportedModelMatchesTrainer(t *testing.T) {
	samples := dataset.Digits(200, 43)
	xs, ys := dataset.Flatten(samples)
	tr, err := NewTrainer(TrainerConfig{Sizes: []int{784, 48, 48, 10}, LR: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 6; epoch++ {
		if _, err := tr.TrainEpoch(xs, ys); err != nil {
			t.Fatal(err)
		}
	}
	model := tr.Export("digit-mlp")
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i, s := range samples {
		if model.Predict(s.X.Reshape(784)) == labelOfTrainer(tr, xs[i]) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(samples)); frac < 0.98 {
		t.Fatalf("exported model agrees with trainer on only %.2f of samples", frac)
	}
	_ = ys
}

func labelOfTrainer(tr *Trainer, x []float64) int {
	zs, _ := tr.forward(x)
	logits := zs[tr.nLayers()-1]
	best, bi := logits[0], 0
	for j, v := range logits {
		if v > best {
			best, bi = v, j
		}
	}
	return bi
}

func TestExportedModelHasBinaryHidden(t *testing.T) {
	tr, _ := NewTrainer(TrainerConfig{Sizes: []int{16, 8, 8, 4}, Seed: 1})
	m := tr.Export("x")
	wls := m.BinaryWorkloads()
	if len(wls) != 1 {
		t.Fatalf("expected 1 binary layer, got %d", len(wls))
	}
	if wls[0].N != 8 || wls[0].M != 8 {
		t.Fatalf("binary workload = %+v", wls[0])
	}
}
