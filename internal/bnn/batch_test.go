package bnn

import (
	"fmt"
	"math/rand"
	"testing"

	"einsteinbarrier/internal/tensor"
)

func zooInputs(t testing.TB, m *Model, n int, seed int64) []*tensor.Float {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Float, n)
	for i := range out {
		x := tensor.NewFloat(m.InputShape...)
		for j := range x.Data() {
			x.Data()[j] = rng.NormFloat64()
		}
		out[i] = x
	}
	return out
}

// TestInferBatchBitsMatchesInfer pins the tentpole equivalence: for
// every zoo network and several batch sizes (ragged, word-boundary,
// full), the batch-major bit-parallel path reproduces the per-sample
// reference logits bit for bit.
func TestInferBatchBitsMatchesInfer(t *testing.T) {
	for _, name := range ZooNames {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := NewModel(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref := m.CloneShared() // independent scratch for the serial path
			sizes := []int{1, 3, 64}
			if testing.Short() {
				sizes = []int{3}
			}
			for _, n := range sizes {
				xs := zooInputs(t, m, n, int64(100+n))
				got := m.InferBatchBits(xs)
				if len(got) != n {
					t.Fatalf("batch %d returned %d logits", n, len(got))
				}
				for s, x := range xs {
					want := ref.Infer(x)
					if !want.SameShape(got[s]) {
						t.Fatalf("batch %d sample %d: shape %v, want %v", n, s, got[s].Shape(), want.Shape())
					}
					for i, v := range want.Data() {
						if got[s].Data()[i] != v {
							t.Fatalf("batch %d sample %d logit %d: batch %v, serial %v",
								n, s, i, got[s].Data()[i], v)
						}
					}
				}
			}
		})
	}
}

// TestInferBatchBitsReusesScratch pins that consecutive calls —
// including shrinking and regrowing the batch — stay correct while
// reusing model-owned scratch.
func TestInferBatchBitsReusesScratch(t *testing.T) {
	m, err := NewModel("CNN-S", 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := m.CloneShared()
	for trial, n := range []int{64, 1, 17, 64, 2} {
		xs := zooInputs(t, m, n, int64(trial))
		got := m.InferBatchBits(xs)
		for s, x := range xs {
			want := ref.Infer(x)
			for i, v := range want.Data() {
				if got[s].Data()[i] != v {
					t.Fatalf("trial %d (n=%d) sample %d logit %d: batch %v, serial %v",
						trial, n, s, i, got[s].Data()[i], v)
				}
			}
		}
	}
}

// TestInferBatchBitsAllocs pins the steady-state batch path to zero
// allocations for MLP-S (every layer has a native batch path) and to a
// constant independent of batch content for CNN-S.
func TestInferBatchBitsAllocs(t *testing.T) {
	for _, name := range []string{"MLP-S", "CNN-S"} {
		m, err := NewModel(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		xs := zooInputs(t, m, 64, 7)
		m.InferBatchBits(xs) // warm scratch
		if n := testing.AllocsPerRun(5, func() { m.InferBatchBits(xs) }); n != 0 {
			t.Errorf("%s: steady-state InferBatchBits allocated %v times per run", name, n)
		}
	}
}

// TestInferBatchBitsValidates pins the batch-size and shape guards.
func TestInferBatchBitsValidates(t *testing.T) {
	m, err := NewModel("MLP-S", 1)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty batch", func() { m.InferBatchBits(nil) })
	mustPanic("oversized batch", func() { m.InferBatchBits(make([]*tensor.Float, 65)) })
	mustPanic("wrong input size", func() { m.InferBatchBits([]*tensor.Float{tensor.NewFloat(3)}) })
}

// TestCloneSharedBatchIsolated pins that clones of a batch-warmed model
// own fresh batch scratch and still match the reference.
func TestCloneSharedBatchIsolated(t *testing.T) {
	m, err := NewModel("MLP-S", 3)
	if err != nil {
		t.Fatal(err)
	}
	xs := zooInputs(t, m, 8, 1)
	m.InferBatchBits(xs) // warm the original's batch scratch
	c := m.CloneShared()
	got := c.InferBatchBits(xs)
	ref := m.CloneShared()
	for s, x := range xs {
		want := ref.Infer(x)
		for i, v := range want.Data() {
			if got[s].Data()[i] != v {
				t.Fatalf("clone sample %d logit %d: %v, want %v", s, i, got[s].Data()[i], v)
			}
		}
	}
}

func BenchmarkInferBatchBits(b *testing.B) {
	for _, name := range []string{"MLP-S", "CNN-S"} {
		m, err := NewModel(name, 1)
		if err != nil {
			b.Fatal(err)
		}
		xs := zooInputs(b, m, 64, 9)
		serial := m.CloneShared()
		b.Run(fmt.Sprintf("%s/serial64", name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, x := range xs {
					serial.Infer(x)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/64, "ns/sample")
		})
		b.Run(fmt.Sprintf("%s/batch64", name), func(b *testing.B) {
			m.InferBatchBits(xs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.InferBatchBits(xs)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/64, "ns/sample")
		})
	}
}
