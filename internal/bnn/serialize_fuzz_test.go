package bnn

import (
	"bytes"
	"testing"
)

// FuzzSerializeRoundTrip pins the EBNN format's canonical-form
// property: any byte stream that decodes into a valid model re-encodes
// to a stable canonical encoding — Encode→Decode→Encode is
// byte-identical. Seeds are the paper's three network shapes (a
// pool+conv CNN on MNIST-class input, a CIFAR-class conv stack, and a
// pure MLP), so the fuzzer starts from every layer tag the format
// knows.
func FuzzSerializeRoundTrip(f *testing.F) {
	for _, name := range []string{"CNN-S", "CNN-M", "MLP-S"} {
		m, err := NewModel(name, 3)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteModel(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Adversarial seeds: truncated magic, bad version, empty stream.
	f.Add([]byte("EBNN"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadModel(bytes.NewReader(data))
		if err != nil {
			return // malformed input must fail cleanly, never panic
		}
		var enc1 bytes.Buffer
		if err := WriteModel(&enc1, m); err != nil {
			t.Fatalf("decoded model does not re-encode: %v", err)
		}
		m2, err := ReadModel(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteModel(&enc2, m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("Encode→Decode→Encode not byte-identical: %d vs %d bytes", enc1.Len(), enc2.Len())
		}
	})
}
