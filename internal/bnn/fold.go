package bnn

import (
	"fmt"
	"math"
)

// Batch-norm folding. BNNs train with a batch-norm between the binary
// dot product and the sign activation (paper §II-B); at inference the
// whole BN+sign pair collapses into an integer threshold on the dot
// product:
//
//	sign(γ·(dot − µ)/σ + β) = +1
//	  ⇔ dot ≥ µ − β·σ/γ          (γ > 0)
//	  ⇔ dot ≤ µ − β·σ/γ          (γ < 0, comparison flips)
//
// A flipped comparison is realized without new hardware by negating the
// weight vector (dot → −dot) and negating the threshold — so the
// folded form is always "dot ≥ T" on possibly-complemented weights,
// exactly what BinaryDense/BinaryConv2D implement.

// BatchNorm holds per-output-channel inference-time BN parameters.
type BatchNorm struct {
	// Gamma, Beta are the learned scale and shift.
	Gamma, Beta []float64
	// Mean, Var are the running statistics.
	Mean, Var []float64
	// Eps stabilizes the variance (default 1e-5 if zero).
	Eps float64
}

// Validate checks dimensional consistency.
func (b BatchNorm) Validate() error {
	n := len(b.Gamma)
	if n == 0 || len(b.Beta) != n || len(b.Mean) != n || len(b.Var) != n {
		return fmt.Errorf("bnn: batchnorm arrays disagree: γ=%d β=%d µ=%d σ²=%d",
			len(b.Gamma), len(b.Beta), len(b.Mean), len(b.Var))
	}
	for i, v := range b.Var {
		if v < 0 {
			return fmt.Errorf("bnn: negative variance at %d", i)
		}
	}
	for i, g := range b.Gamma {
		if g == 0 {
			return fmt.Errorf("bnn: zero gamma at %d (fold undefined)", i)
		}
	}
	return nil
}

// eps returns the effective epsilon.
func (b BatchNorm) eps() float64 {
	if b.Eps > 0 {
		return b.Eps
	}
	return 1e-5
}

// foldOne returns the integer threshold and whether the weight vector
// must be complemented (γ < 0). sign uses the strict form v > 0, and
// dot is an integer, so "dot > t" becomes "dot ≥ ⌊t⌋+1".
func (b BatchNorm) foldOne(i int) (thresh int, flip bool) {
	sigma := math.Sqrt(b.Var[i] + b.eps())
	t := b.Mean[i] - b.Beta[i]*sigma/b.Gamma[i]
	if b.Gamma[i] > 0 {
		return int(math.Floor(t)) + 1, false
	}
	// v > 0 ⇔ dot < t ⇔ (−dot) > −t; negating the weights negates dot.
	return int(math.Floor(-t)) + 1, true
}

// FoldIntoDense rewrites a BinaryDense layer in place: thresholds take
// the folded values and rows with γ < 0 are complemented. After
// folding, Forward(x) computes sign(BN(dot)) exactly.
func FoldIntoDense(l *BinaryDense, bn BatchNorm) error {
	if err := bn.Validate(); err != nil {
		return err
	}
	if len(bn.Gamma) != l.W.Rows() {
		return fmt.Errorf("bnn: batchnorm width %d != layer outputs %d", len(bn.Gamma), l.W.Rows())
	}
	for o := 0; o < l.W.Rows(); o++ {
		t, flip := bn.foldOne(o)
		if flip {
			row := l.W.Row(o).Not()
			for c := 0; c < l.W.Cols(); c++ {
				l.W.Set(o, c, row.Get(c))
			}
		}
		l.Thresh[o] = t
	}
	return nil
}

// FoldIntoConv rewrites a BinaryConv2D layer in place (per output
// channel).
func FoldIntoConv(l *BinaryConv2D, bn BatchNorm) error {
	if err := bn.Validate(); err != nil {
		return err
	}
	if len(bn.Gamma) != l.OutC {
		return fmt.Errorf("bnn: batchnorm width %d != channels %d", len(bn.Gamma), l.OutC)
	}
	for o := 0; o < l.OutC; o++ {
		t, flip := bn.foldOne(o)
		if flip {
			row := l.K.Row(o).Not()
			for c := 0; c < l.K.Cols(); c++ {
				l.K.Set(o, c, row.Get(c))
			}
		}
		l.Thresh[o] = t
	}
	return nil
}

// ReferenceBNSign computes sign(BN(dot)) directly in floating point —
// the unfolded reference the fold is verified against.
func (b BatchNorm) ReferenceBNSign(i int, dot int) float64 {
	sigma := math.Sqrt(b.Var[i] + b.eps())
	v := b.Gamma[i]*(float64(dot)-b.Mean[i])/sigma + b.Beta[i]
	if v > 0 {
		return 1
	}
	return -1
}
