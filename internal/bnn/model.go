package bnn

import (
	"fmt"

	"einsteinbarrier/internal/tensor"
)

// Model is an ordered stack of layers with a fixed input shape.
type Model struct {
	// ModelName identifies the network (e.g. "MLP-L").
	ModelName string
	// InputShape is the shape of one sample (e.g. [784] or [3,32,32]).
	InputShape []int
	// Layers run in order.
	Layers []Layer
	// Classes is the output dimensionality.
	Classes int

	batch *modelBatch // InferBatchBits staging (batch.go); nil in clones
}

// Name returns the model name.
func (m *Model) Name() string { return m.ModelName }

// Validate shape-checks the whole stack.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("bnn: model %q has no layers", m.ModelName)
	}
	shape := m.InputShape
	for _, l := range m.Layers {
		func() {
			defer func() {
				if r := recover(); r != nil {
					panic(fmt.Sprintf("bnn: model %q layer %q: %v", m.ModelName, l.Name(), r))
				}
			}()
			shape = l.OutShape(shape)
		}()
	}
	if len(shape) != 1 || shape[0] != m.Classes {
		return fmt.Errorf("bnn: model %q final shape %v, want [%d]", m.ModelName, shape, m.Classes)
	}
	return nil
}

// Infer runs the reference forward pass and returns the logits.
//
// Layers reuse internal scratch buffers, so steady-state inference
// allocates nothing per layer; the returned tensor is owned by the
// final layer and overwritten by the next Infer call on this model
// (Clone it to retain). Infer is not safe for concurrent use on the
// same model — hand each goroutine its own CloneShared copy, or use the
// internal/infer engine, which does so automatically.
func (m *Model) Infer(x *tensor.Float) *tensor.Float {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Predict returns the argmax class of the logits.
func (m *Model) Predict(x *tensor.Float) int { return m.Infer(x).ArgMax() }

// CloneShared returns a copy of the model whose layers share the
// (inference-immutable) weight storage with m but own fresh scratch
// buffers, so the copy can run Infer concurrently with m. Layer types
// outside this package are reused as-is and must be stateless.
func (m *Model) CloneShared() *Model {
	c := &Model{
		ModelName:  m.ModelName,
		InputShape: append([]int(nil), m.InputShape...),
		Layers:     make([]Layer, len(m.Layers)),
		Classes:    m.Classes,
	}
	for i, l := range m.Layers {
		if sc, ok := l.(sharedCloner); ok {
			c.Layers[i] = sc.cloneShared()
		} else {
			c.Layers[i] = l
		}
	}
	return c
}

// BinaryWorkloads collects the XNOR+Popcount workload of every
// binarized layer, in execution order. This is the input to the
// compiler and to the analytic cost models.
func (m *Model) BinaryWorkloads() []Workload {
	var out []Workload
	for _, l := range m.Layers {
		if b, ok := l.(Binarized); ok {
			out = append(out, b.Workload())
		}
	}
	return out
}

// LayerCost summarizes one layer for the cost models.
type LayerCost struct {
	Name string
	// Kind is "binary", "fp", or "shape" (free reshapes/pools).
	Kind string
	// Work is the layer geometry: for binary layers the XNOR+Popcount
	// workload; for fp layers the equivalent N×M×Positions shape of the
	// bit-sliced crossbar execution.
	Work Workload
	// FP multiply-accumulates (Kind == "fp").
	MACs int64
	// ActivationBytes is the output traffic of the layer: BNN hidden
	// activations move as single bits (every hidden layer's output is
	// binarized by the next consumer), while the final logits are fp32.
	ActivationBytes int64
}

// Costs walks the stack and produces per-layer cost descriptors,
// tracking activation shapes to size the data movement.
func (m *Model) Costs() []LayerCost {
	var out []LayerCost
	shape := m.InputShape
	for i, l := range m.Layers {
		next := l.OutShape(shape)
		bytes := int64(sizeOf(next)+7) / 8 // binarized hidden traffic
		if i == len(m.Layers)-1 {
			bytes = int64(sizeOf(next)) * 4 // fp32 logits
		}
		switch t := l.(type) {
		case Binarized:
			out = append(out, LayerCost{
				Name: l.Name(), Kind: "binary", Work: t.Workload(), ActivationBytes: bytes,
			})
		case *DenseFP:
			out = append(out, LayerCost{
				Name: l.Name(), Kind: "fp", MACs: t.MACs(), ActivationBytes: bytes,
				Work: Workload{LayerName: l.Name(), N: t.OutDim(), M: t.InDim(), Positions: 1},
			})
		case *ConvFP:
			out = append(out, LayerCost{
				Name: l.Name(), Kind: "fp", MACs: t.MACs(), ActivationBytes: bytes,
				Work: Workload{LayerName: l.Name(), N: t.OutC, M: t.Geom.PatchLen(), Positions: t.Geom.Positions()},
			})
		default:
			out = append(out, LayerCost{Name: l.Name(), Kind: "shape", ActivationBytes: bytes})
		}
		shape = next
	}
	return out
}

// TotalBinaryOps sums the XNOR+Popcount bit operations per inference.
func (m *Model) TotalBinaryOps() int64 {
	var total int64
	for _, w := range m.BinaryWorkloads() {
		total += w.Ops()
	}
	return total
}

// TotalFPMACs sums the high-precision MACs per inference.
func (m *Model) TotalFPMACs() int64 {
	var total int64
	for _, c := range m.Costs() {
		total += c.MACs
	}
	return total
}

// WeightBits counts the binary weight storage of the model.
func (m *Model) WeightBits() int64 {
	var total int64
	for _, w := range m.BinaryWorkloads() {
		total += int64(w.N) * int64(w.M)
	}
	return total
}

func sizeOf(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
