package bnn

import (
	"fmt"
	"math/rand"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/tensor"
)

// The model zoo mirrors the paper's evaluation set (§V-C): six BNNs of
// varying size from the MlBench suite — three multilayer perceptrons on
// MNIST-scale inputs and three convolutional networks on MNIST/CIFAR
//-scale inputs. The paper does not publish exact layer tables, so the
// zoo uses representative MlBench/PRIME-style configurations spanning
// roughly two orders of magnitude in XNOR+Popcount work, which is what
// drives the network-to-network spread in Figs. 7–8.
//
// Weights are synthesized deterministically from a seed. TacitMap and
// EinsteinBarrier are exact accelerations of the same arithmetic, so
// model accuracy is orthogonal to the latency/energy evaluation (paper
// §V-C: "neither TacitMap nor EinsteinBarrier affect the accuracy");
// trained weights are only needed for the accuracy demos, which use the
// STE trainer in train.go.

// ZooNames lists the evaluation networks in the order used by the
// figures.
var ZooNames = []string{"CNN-S", "CNN-M", "CNN-L", "MLP-S", "MLP-M", "MLP-L"}

// NewModel builds a zoo network by name with deterministically
// synthesized weights.
func NewModel(name string, seed int64) (*Model, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "MLP-S":
		return newMLP(name, rng, []int{784, 1024, 1024, 512, 10}), nil
	case "MLP-M":
		return newMLP(name, rng, []int{784, 2048, 2048, 1024, 10}), nil
	case "MLP-L":
		return newMLP(name, rng, []int{784, 3072, 3072, 3072, 1536, 10}), nil
	case "CNN-S":
		return newCNNSmall(rng), nil
	case "CNN-M":
		return newCNNMedium(rng), nil
	case "CNN-L":
		return newCNNLarge(rng), nil
	default:
		return nil, fmt.Errorf("bnn: unknown zoo model %q (have %v)", name, ZooNames)
	}
}

// Zoo instantiates all six evaluation networks.
func Zoo(seed int64) ([]*Model, error) {
	out := make([]*Model, 0, len(ZooNames))
	for i, n := range ZooNames {
		m, err := NewModel(n, seed+int64(i))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// newMLP builds sizes[0] → … → sizes[last]: FP input layer, binary
// hidden layers, FP output layer.
func newMLP(name string, rng *rand.Rand, sizes []int) *Model {
	layers := []Layer{
		randomDenseFP(rng, "fc0-fp", sizes[0], sizes[1], true),
		&Sign{LayerName: "sign0"},
	}
	for i := 1; i < len(sizes)-2; i++ {
		layers = append(layers, randomBinaryDense(rng,
			fmt.Sprintf("fc%d-bin", i), sizes[i], sizes[i+1]))
	}
	last := len(sizes) - 2
	layers = append(layers, randomDenseFP(rng, "fc-out-fp", sizes[last], sizes[last+1], false))
	return &Model{
		ModelName:  name,
		InputShape: []int{sizes[0]},
		Layers:     layers,
		Classes:    sizes[len(sizes)-1],
	}
}

// newCNNSmall is a LeNet-scale MNIST network.
func newCNNSmall(rng *rand.Rand) *Model {
	g1 := tensor.ConvGeom{InC: 1, InH: 28, InW: 28, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	g2 := tensor.ConvGeom{InC: 8, InH: 14, InW: 14, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	return &Model{
		ModelName:  "CNN-S",
		InputShape: []int{1, 28, 28},
		Classes:    10,
		Layers: []Layer{
			randomConvFP(rng, "conv0-fp", g1, 8),
			&Sign{LayerName: "sign0"},
			&MaxPool2D{LayerName: "pool0", Size: 2},
			randomBinaryConv(rng, "conv1-bin", g2, 16),
			&MaxPool2D{LayerName: "pool1", Size: 2},
			&Flatten{LayerName: "flatten"},
			randomBinaryDense(rng, "fc0-bin", 16*7*7, 120),
			randomBinaryDense(rng, "fc1-bin", 120, 84),
			randomDenseFP(rng, "fc-out-fp", 84, 10, false),
		},
	}
}

// newCNNMedium is a mid-size CIFAR network.
func newCNNMedium(rng *rand.Rand) *Model {
	g0 := tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g1 := tensor.ConvGeom{InC: 64, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g2 := tensor.ConvGeom{InC: 64, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g3 := tensor.ConvGeom{InC: 128, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	return &Model{
		ModelName:  "CNN-M",
		InputShape: []int{3, 32, 32},
		Classes:    10,
		Layers: []Layer{
			randomConvFP(rng, "conv0-fp", g0, 64),
			&Sign{LayerName: "sign0"},
			randomBinaryConv(rng, "conv1-bin", g1, 64),
			&MaxPool2D{LayerName: "pool0", Size: 2},
			randomBinaryConv(rng, "conv2-bin", g2, 128),
			&MaxPool2D{LayerName: "pool1", Size: 2},
			randomBinaryConv(rng, "conv3-bin", g3, 128),
			&MaxPool2D{LayerName: "pool2", Size: 2},
			&Flatten{LayerName: "flatten"},
			randomBinaryDense(rng, "fc0-bin", 128*4*4, 1024),
			randomDenseFP(rng, "fc-out-fp", 1024, 10, false),
		},
	}
}

// newCNNLarge is a VGG-scale CIFAR network.
func newCNNLarge(rng *rand.Rand) *Model {
	g0 := tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g1 := tensor.ConvGeom{InC: 128, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g2 := tensor.ConvGeom{InC: 128, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g3 := tensor.ConvGeom{InC: 256, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g4 := tensor.ConvGeom{InC: 256, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g5 := tensor.ConvGeom{InC: 512, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	return &Model{
		ModelName:  "CNN-L",
		InputShape: []int{3, 32, 32},
		Classes:    10,
		Layers: []Layer{
			randomConvFP(rng, "conv0-fp", g0, 128),
			&Sign{LayerName: "sign0"},
			randomBinaryConv(rng, "conv1-bin", g1, 128),
			&MaxPool2D{LayerName: "pool0", Size: 2},
			randomBinaryConv(rng, "conv2-bin", g2, 256),
			randomBinaryConv(rng, "conv3-bin", g3, 256),
			&MaxPool2D{LayerName: "pool1", Size: 2},
			randomBinaryConv(rng, "conv4-bin", g4, 512),
			randomBinaryConv(rng, "conv5-bin", g5, 512),
			&MaxPool2D{LayerName: "pool2", Size: 2},
			&Flatten{LayerName: "flatten"},
			randomBinaryDense(rng, "fc0-bin", 512*4*4, 1024),
			randomBinaryDense(rng, "fc1-bin", 1024, 1024),
			randomDenseFP(rng, "fc-out-fp", 1024, 10, false),
		},
	}
}

// --- weight synthesis --------------------------------------------------

func randomDenseFP(rng *rand.Rand, name string, in, out int, relu bool) *DenseFP {
	w := tensor.NewFloat(out, in)
	scale := 1.0 / float64(in)
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64() * scale * 8
	}
	b := make([]float64, out)
	for i := range b {
		b[i] = rng.NormFloat64() * 0.01
	}
	return &DenseFP{LayerName: name, W: w, B: b, ReLU: relu}
}

func randomConvFP(rng *rand.Rand, name string, g tensor.ConvGeom, outC int) *ConvFP {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	k := tensor.NewFloat(outC, g.PatchLen())
	scale := 1.0 / float64(g.PatchLen())
	for i := range k.Data() {
		k.Data()[i] = rng.NormFloat64() * scale * 8
	}
	b := make([]float64, outC)
	for i := range b {
		b[i] = rng.NormFloat64() * 0.01
	}
	return &ConvFP{LayerName: name, Geom: g, OutC: outC, K: k, B: b}
}

func randomBits(rng *rand.Rand, rows, cols int) *bitops.Matrix {
	m := bitops.NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, rng.Intn(2) == 1)
		}
	}
	return m
}

// randomThresholds draws small thresholds around zero; a zero threshold
// is plain sign, non-zero values emulate folded batch-norm offsets.
func randomThresholds(rng *rand.Rand, n, m int) []int {
	t := make([]int, n)
	spread := m / 16
	if spread < 1 {
		spread = 1
	}
	for i := range t {
		t[i] = rng.Intn(2*spread+1) - spread
	}
	return t
}

func randomBinaryDense(rng *rand.Rand, name string, in, out int) *BinaryDense {
	return &BinaryDense{
		LayerName: name,
		W:         randomBits(rng, out, in),
		Thresh:    randomThresholds(rng, out, in),
	}
}

func randomBinaryConv(rng *rand.Rand, name string, g tensor.ConvGeom, outC int) *BinaryConv2D {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return &BinaryConv2D{
		LayerName: name,
		Geom:      g,
		OutC:      outC,
		K:         randomBits(rng, outC, g.PatchLen()),
		Thresh:    randomThresholds(rng, outC, g.PatchLen()),
	}
}
