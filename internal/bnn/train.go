package bnn

import (
	"fmt"
	"math"
	"math/rand"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/tensor"
)

// Trainer trains an MLP-shaped BNN with the straight-through estimator
// (STE), the standard BNN training recipe the paper relies on (§II-B):
// full-precision "shadow" weights accumulate gradient updates while the
// forward pass uses their binarized values; the sign non-linearity
// back-propagates as identity clipped to |x| ≤ 1.
//
// The first and last layers stay in full precision (paper §II-B,
// technique 2). Export produces a Model whose hidden layers are
// BinaryDense, ready for crossbar mapping.
type Trainer struct {
	sizes []int
	// w[l] is sizes[l+1]×sizes[l] shadow weights, b[l] biases.
	w [][]float64
	b [][]float64
	// lr is the SGD learning rate.
	lr  float64
	rng *rand.Rand
}

// TrainerConfig configures NewTrainer.
type TrainerConfig struct {
	// Sizes are the layer widths, e.g. [64, 128, 128, 10]. The first
	// and last affine layers are full precision; everything between is
	// binarized. Needs at least 3 entries (one hidden layer).
	Sizes []int
	// LR is the SGD learning rate (default 0.01 if zero).
	LR float64
	// Seed seeds weight init and shuffling.
	Seed int64
}

// NewTrainer initializes shadow weights with scaled Gaussian init.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	if len(cfg.Sizes) < 3 {
		return nil, fmt.Errorf("bnn: trainer needs ≥3 layer sizes, got %v", cfg.Sizes)
	}
	for _, s := range cfg.Sizes {
		if s < 1 {
			return nil, fmt.Errorf("bnn: non-positive layer size in %v", cfg.Sizes)
		}
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.01
	}
	t := &Trainer{sizes: cfg.Sizes, lr: lr, rng: rand.New(rand.NewSource(cfg.Seed))}
	for l := 0; l+1 < len(cfg.Sizes); l++ {
		in, out := cfg.Sizes[l], cfg.Sizes[l+1]
		w := make([]float64, in*out)
		scale := math.Sqrt(2.0 / float64(in))
		for i := range w {
			w[i] = t.rng.NormFloat64() * scale
		}
		t.w = append(t.w, w)
		t.b = append(t.b, make([]float64, out))
	}
	return t, nil
}

// nLayers returns the number of affine layers.
func (t *Trainer) nLayers() int { return len(t.w) }

// isBinary reports whether affine layer l uses binarized weights and
// inputs (all layers except the first and last).
func (t *Trainer) isBinary(l int) bool { return l > 0 && l < t.nLayers()-1 }

// forward runs one sample, caching pre-activations for backprop.
// Returns per-layer pre-activations z[l] (len out) and inputs a[l].
func (t *Trainer) forward(x []float64) (zs, as [][]float64) {
	a := x
	for l := 0; l < t.nLayers(); l++ {
		in, out := t.sizes[l], t.sizes[l+1]
		as = append(as, a)
		z := make([]float64, out)
		for o := 0; o < out; o++ {
			s := t.b[l][o]
			row := t.w[l][o*in : (o+1)*in]
			if t.isBinary(l) {
				for i, v := range a {
					if (row[i] > 0) == (v > 0) {
						s++
					} else {
						s--
					}
				}
			} else {
				for i, v := range a {
					s += row[i] * v
				}
			}
			z[o] = s
		}
		zs = append(zs, z)
		if l < t.nLayers()-1 {
			// Hidden activation: sign (binarization).
			na := make([]float64, out)
			for i, v := range z {
				if v > 0 {
					na[i] = 1
				} else {
					na[i] = -1
				}
			}
			a = na
		} else {
			a = z
		}
	}
	return zs, as
}

// softmaxCE returns the loss and dL/dlogits.
func softmaxCE(logits []float64, label int) (float64, []float64) {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	exp := make([]float64, len(logits))
	for i, v := range logits {
		exp[i] = math.Exp(v - maxv)
		sum += exp[i]
	}
	grad := make([]float64, len(logits))
	for i := range logits {
		p := exp[i] / sum
		grad[i] = p
		if i == label {
			grad[i] -= 1
		}
	}
	return -math.Log(exp[label]/sum + 1e-12), grad
}

// step runs one SGD step on a single sample and returns its loss.
func (t *Trainer) step(x []float64, label int) float64 {
	zs, as := t.forward(x)
	loss, delta := softmaxCE(zs[t.nLayers()-1], label)
	// Backward pass.
	for l := t.nLayers() - 1; l >= 0; l-- {
		in, out := t.sizes[l], t.sizes[l+1]
		a := as[l]
		// Gradient w.r.t. inputs, for the next (earlier) layer.
		var din []float64
		if l > 0 {
			din = make([]float64, in)
		}
		for o := 0; o < out; o++ {
			g := delta[o]
			if g == 0 {
				continue
			}
			row := t.w[l][o*in : (o+1)*in]
			for i := 0; i < in; i++ {
				av := a[i]
				if t.isBinary(l) {
					// Forward used sign(w)·sign(a); STE passes the
					// gradient to the shadow weight where |w| ≤ 1.
					sa := 1.0
					if av <= 0 {
						sa = -1
					}
					if row[i] >= -1 && row[i] <= 1 {
						row[i] -= t.lr * g * sa
					}
					if din != nil {
						sw := 1.0
						if t.w[l][o*in+i] <= 0 {
							sw = -1
						}
						din[i] += g * sw
					}
				} else {
					row[i] -= t.lr * g * av
					if din != nil {
						din[i] += g * t.w[l][o*in+i]
					}
				}
			}
			t.b[l][o] -= t.lr * g
		}
		if l > 0 {
			// Through the sign activation: STE with a clipped pass-through.
			// The clip bound scales with the fan-in because a binary
			// layer's pre-activation is an integer dot in ±fanIn; a unit
			// clip (the batch-norm-normalized convention) would zero
			// essentially every gradient here.
			bound := math.Sqrt(float64(t.sizes[l-1]))
			z := zs[l-1]
			for i := range din {
				if z[i] < -bound || z[i] > bound {
					din[i] = 0
				}
			}
			delta = din
		}
	}
	return loss
}

// TrainEpoch shuffles and SGD-steps through the dataset once, returning
// the mean loss. xs[i] must have length Sizes[0].
func (t *Trainer) TrainEpoch(xs [][]float64, labels []int) (float64, error) {
	if len(xs) != len(labels) || len(xs) == 0 {
		return 0, fmt.Errorf("bnn: %d samples vs %d labels", len(xs), len(labels))
	}
	perm := t.rng.Perm(len(xs))
	var total float64
	for _, i := range perm {
		if len(xs[i]) != t.sizes[0] {
			return 0, fmt.Errorf("bnn: sample %d has %d features, want %d", i, len(xs[i]), t.sizes[0])
		}
		total += t.step(xs[i], labels[i])
	}
	return total / float64(len(xs)), nil
}

// Accuracy evaluates top-1 accuracy with the binarized forward pass.
func (t *Trainer) Accuracy(xs [][]float64, labels []int) float64 {
	correct := 0
	for i, x := range xs {
		zs, _ := t.forward(x)
		logits := zs[t.nLayers()-1]
		best, bi := math.Inf(-1), 0
		for j, v := range logits {
			if v > best {
				best, bi = v, j
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// Export freezes the trainer into an inference Model: the first layer
// stays FP (followed by Sign), hidden layers become BinaryDense with
// weights = sign(shadow) and thresholds 0, and the last layer stays FP.
func (t *Trainer) Export(name string) *Model {
	layers := make([]Layer, 0, t.nLayers()+1)
	for l := 0; l < t.nLayers(); l++ {
		in, out := t.sizes[l], t.sizes[l+1]
		if t.isBinary(l) {
			// The trainer computes sign(dot + bias); fold the bias into
			// the integer threshold: dot + b > 0 ⟺ dot ≥ ⌊−b⌋ + 1
			// (dot is an integer).
			thresh := make([]int, out)
			for o := range thresh {
				thresh[o] = int(math.Floor(-t.b[l][o])) + 1
			}
			bd := &BinaryDense{
				LayerName: fmt.Sprintf("fc%d-bin", l),
				W:         floatsToBits(t.w[l], out, in),
				Thresh:    thresh,
			}
			layers = append(layers, bd)
			continue
		}
		w := tensor.NewFloat(out, in)
		copy(w.Data(), t.w[l])
		b := make([]float64, out)
		copy(b, t.b[l])
		layers = append(layers, &DenseFP{
			LayerName: fmt.Sprintf("fc%d-fp", l), W: w, B: b,
		})
		if l == 0 {
			layers = append(layers, &Sign{LayerName: "sign0"})
		}
	}
	return &Model{
		ModelName:  name,
		InputShape: []int{t.sizes[0]},
		Layers:     layers,
		Classes:    t.sizes[len(t.sizes)-1],
	}
}

func floatsToBits(w []float64, rows, cols int) *bitops.Matrix {
	m := bitops.NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, w[r*cols+c] > 0)
		}
	}
	return m
}
