// Package bnn is the binary-neural-network framework of the
// reproduction: layer types (high-precision first/last layers, binary
// hidden layers), a model graph with reference inference, a model zoo
// matching the paper's six MlBench-scale workloads, and a
// straight-through-estimator trainer.
//
// Following the paper (§II-B) and standard BNN practice (Courbariaux et
// al., Rastegari et al.):
//
//   - hidden layers use binarized weights and activations ({-1,+1}
//     encoded as {0,1}) and compute via XNOR+Popcount (Eq. (1));
//   - the input and output layers stay in higher precision;
//   - batch-norm + sign is folded into an integer threshold per output.
//
// The reference inference path here is exact integer math; the
// crossbar-mapped paths (internal/core) must agree with it bit for bit,
// which the integration tests check.
package bnn

import (
	"fmt"
	"math"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/tensor"
)

// Layer is one stage of a model's forward pass.
type Layer interface {
	// Name identifies the layer for reports and compilation.
	Name() string
	// OutShape maps an input shape to the layer's output shape.
	OutShape(in []int) []int
	// Forward runs the reference inference path. The returned tensor is
	// owned by the layer and overwritten by its next Forward call, so
	// steady-state inference allocates nothing; Clone the result to
	// retain it. Forward is not safe for concurrent use on the same
	// layer — see Model.CloneShared for cheap per-goroutine copies.
	Forward(x *tensor.Float) *tensor.Float
}

// sharedCloner is implemented by the built-in layers: cloneShared
// returns a copy sharing the (immutable at inference time) weights but
// owning fresh scratch buffers, so the copy can run Forward on another
// goroutine.
type sharedCloner interface{ cloneShared() Layer }

// Binarized is implemented by layers whose arithmetic is XNOR+Popcount
// and which are therefore mapped onto crossbars.
type Binarized interface {
	Layer
	// WeightMatrix returns the n×m binary weight matrix (one weight
	// vector per row).
	WeightMatrix() *bitops.Matrix
	// Workload describes the layer's XNOR+Popcount cost structure.
	Workload() Workload
}

// Workload describes the XNOR+Popcount work one binary layer generates
// per inference. It is the unit of currency between the model zoo and
// the compiler/simulator.
type Workload struct {
	// LayerName echoes the layer.
	LayerName string
	// N is the number of weight vectors (output neurons / kernels).
	N int
	// M is the weight-vector length in bits.
	M int
	// Positions is how many distinct input vectors the layer processes
	// per inference: 1 for a dense layer, OutH·OutW for a convolution.
	// Positions > 1 is intra-inference parallelism that WDM can batch
	// (paper §IV-A2).
	Positions int
}

// Ops returns the total XNOR+Popcount bit-operations of the workload.
func (w Workload) Ops() int64 { return int64(w.N) * int64(w.M) * int64(w.Positions) }

// binarize converts a float slice to the {0,1} encoding with sign
// (x > 0 → 1).
func binarize(xs []float64) *bitops.Vector { return bitops.FromFloats(xs) }

// --- High-precision layers -------------------------------------------

// DenseFP is a full-precision fully connected layer (used for the input
// and output layers, which BNNs keep in high resolution).
type DenseFP struct {
	LayerName string
	// W is out×in, B has length out.
	W *tensor.Float
	B []float64
	// ReLU applies max(0,·) when true (hidden FP layers); output layers
	// leave logits linear.
	ReLU bool

	out   *tensor.Float // reusable output buffer
	batch *denseFPBatch // batch-major lanes scratch (batch.go)
}

func (d *DenseFP) cloneShared() Layer {
	c := *d
	c.out, c.batch = nil, nil
	return &c
}

// Name implements Layer.
func (d *DenseFP) Name() string { return d.LayerName }

// InDim and OutDim report the weight dimensions.
func (d *DenseFP) InDim() int  { return d.W.Dim(1) }
func (d *DenseFP) OutDim() int { return d.W.Dim(0) }

// OutShape implements Layer.
func (d *DenseFP) OutShape(in []int) []int { return []int{d.OutDim()} }

// Forward implements Layer.
func (d *DenseFP) Forward(x *tensor.Float) *tensor.Float {
	in, out := d.InDim(), d.OutDim()
	if x.Size() != in {
		panic(fmt.Sprintf("bnn: %s: input size %d, want %d", d.LayerName, x.Size(), in))
	}
	if d.out == nil {
		d.out = tensor.NewFloat(out)
	}
	y := d.out
	xd, wd := x.Data(), d.W.Data()
	for o := 0; o < out; o++ {
		s := d.B[o]
		row := wd[o*in : (o+1)*in]
		for i, v := range xd {
			s += row[i] * v
		}
		if d.ReLU && s < 0 {
			s = 0
		}
		y.Data()[o] = s
	}
	return y
}

// MACs returns the multiply-accumulate count (FP cost model input).
func (d *DenseFP) MACs() int64 { return int64(d.InDim()) * int64(d.OutDim()) }

// ConvFP is a full-precision convolution (the high-resolution first
// layer of the CNN workloads).
type ConvFP struct {
	LayerName string
	Geom      tensor.ConvGeom
	// K is outC×patchLen, B has length outC.
	OutC int
	K    *tensor.Float
	B    []float64

	cols *tensor.Float // reusable im2col buffer
	out  *tensor.Float // reusable output buffer
}

func (c *ConvFP) cloneShared() Layer {
	cc := *c
	cc.cols, cc.out = nil, nil
	return &cc
}

// Name implements Layer.
func (c *ConvFP) Name() string { return c.LayerName }

// OutShape implements Layer.
func (c *ConvFP) OutShape(in []int) []int {
	return []int{c.OutC, c.Geom.OutH(), c.Geom.OutW()}
}

// Forward implements Layer.
func (c *ConvFP) Forward(x *tensor.Float) *tensor.Float {
	if c.out == nil {
		c.cols = tensor.NewFloat(c.Geom.Positions(), c.Geom.PatchLen())
		c.out = tensor.NewFloat(c.OutC, c.Geom.OutH(), c.Geom.OutW())
	}
	cols := c.Geom.Im2ColInto(x, c.cols)
	pl := c.Geom.PatchLen()
	y := c.out
	kd := c.K.Data()
	for o := 0; o < c.OutC; o++ {
		row := kd[o*pl : (o+1)*pl]
		for p := 0; p < c.Geom.Positions(); p++ {
			s := c.B[o]
			patch := cols.Data()[p*pl : (p+1)*pl]
			for i, v := range patch {
				s += row[i] * v
			}
			y.Data()[o*c.Geom.Positions()+p] = s
		}
	}
	return y
}

// MACs returns the multiply-accumulate count.
func (c *ConvFP) MACs() int64 {
	return int64(c.OutC) * int64(c.Geom.PatchLen()) * int64(c.Geom.Positions())
}

// --- Binary layers ----------------------------------------------------

// BinaryDense is a binarized fully connected hidden layer: weights are
// bits, the input is binarized with sign, the dot product is Eq. (1),
// and batch-norm + sign folds into per-output integer thresholds:
// output_o = +1 iff dot_o ≥ Thresh[o].
type BinaryDense struct {
	LayerName string
	// W is out×in bits.
	W *bitops.Matrix
	// Thresh has length out; compare against the bipolar dot product.
	Thresh []int

	// Reusable scratch: binarized input, popcount accumulator, output.
	xb    *bitops.Vector
	dots  []int
	out   *tensor.Float
	batch *binaryDenseBatch // batch-major bit-parallel scratch (batch.go)
}

func (b *BinaryDense) cloneShared() Layer {
	c := *b
	c.xb, c.dots, c.out, c.batch = nil, nil, nil, nil
	return &c
}

// Name implements Layer.
func (b *BinaryDense) Name() string { return b.LayerName }

// OutShape implements Layer.
func (b *BinaryDense) OutShape(in []int) []int { return []int{b.W.Rows()} }

// WeightMatrix implements Binarized.
func (b *BinaryDense) WeightMatrix() *bitops.Matrix { return b.W }

// Workload implements Binarized.
func (b *BinaryDense) Workload() Workload {
	return Workload{LayerName: b.LayerName, N: b.W.Rows(), M: b.W.Cols(), Positions: 1}
}

// Forward implements Layer; output entries are ±1. Steady-state calls
// reuse the layer's scratch buffers and allocate nothing.
func (b *BinaryDense) Forward(x *tensor.Float) *tensor.Float {
	if x.Size() != b.W.Cols() {
		panic(fmt.Sprintf("bnn: %s: input size %d, want %d", b.LayerName, x.Size(), b.W.Cols()))
	}
	if b.out == nil {
		b.xb = bitops.NewVector(b.W.Cols())
		b.dots = make([]int, b.W.Rows())
		b.out = tensor.NewFloat(b.W.Rows())
	}
	b.xb.SetFromFloats(x.Data())
	b.W.BipolarMatVecInto(b.xb, b.dots)
	y := b.out.Data()
	for o, d := range b.dots {
		if d >= b.Thresh[o] {
			y[o] = 1
		} else {
			y[o] = -1
		}
	}
	return b.out
}

// ForwardPopcounts exposes the raw popcounts for one binarized input —
// the quantity the crossbar returns — so integration tests can compare
// hardware and reference paths stage by stage.
func (b *BinaryDense) ForwardPopcounts(xb *bitops.Vector) []int {
	return b.W.XnorPopcountAll(xb)
}

// BinaryConv2D is a binarized convolution layer: binary kernels over
// binarized activations via im2col + XNOR+Popcount, thresholded per
// output channel.
type BinaryConv2D struct {
	LayerName string
	Geom      tensor.ConvGeom
	// K is outC×patchLen bits.
	OutC int
	K    *bitops.Matrix
	// Thresh has length outC.
	Thresh []int

	// Reusable scratch: im2col buffer, one binarized patch, popcounts,
	// output — so Forward allocates nothing per patch (or at all) in
	// steady state.
	cols  *tensor.Float
	xb    *bitops.Vector
	dots  []int
	out   *tensor.Float
	batch *binaryConvBatch // batch-major bit-parallel scratch (batch.go)
}

func (b *BinaryConv2D) cloneShared() Layer {
	c := *b
	c.cols, c.xb, c.dots, c.out, c.batch = nil, nil, nil, nil, nil
	return &c
}

// Name implements Layer.
func (b *BinaryConv2D) Name() string { return b.LayerName }

// OutShape implements Layer.
func (b *BinaryConv2D) OutShape(in []int) []int {
	return []int{b.OutC, b.Geom.OutH(), b.Geom.OutW()}
}

// WeightMatrix implements Binarized.
func (b *BinaryConv2D) WeightMatrix() *bitops.Matrix { return b.K }

// Workload implements Binarized.
func (b *BinaryConv2D) Workload() Workload {
	return Workload{
		LayerName: b.LayerName,
		N:         b.OutC,
		M:         b.Geom.PatchLen(),
		Positions: b.Geom.Positions(),
	}
}

// Forward implements Layer; output entries are ±1. The im2col buffer,
// the binarized patch vector, and the popcount accumulator are all
// layer-owned scratch, so steady-state calls allocate nothing per patch.
func (b *BinaryConv2D) Forward(x *tensor.Float) *tensor.Float {
	pl := b.Geom.PatchLen()
	pos := b.Geom.Positions()
	if b.out == nil {
		b.cols = tensor.NewFloat(pos, pl)
		b.xb = bitops.NewVector(pl)
		b.dots = make([]int, b.K.Rows())
		b.out = tensor.NewFloat(b.OutC, b.Geom.OutH(), b.Geom.OutW())
	}
	cols := b.Geom.Im2ColInto(x, b.cols).Data()
	y := b.out.Data()
	for p := 0; p < pos; p++ {
		b.xb.SetFromFloats(cols[p*pl : (p+1)*pl])
		b.K.BipolarMatVecInto(b.xb, b.dots)
		for o := 0; o < b.OutC; o++ {
			v := -1.0
			if b.dots[o] >= b.Thresh[o] {
				v = 1
			}
			y[o*pos+p] = v
		}
	}
	return b.out
}

// PatchVectors returns the binarized im2col patches of x — the exact
// input vectors a crossbar-mapped version of this layer consumes.
func (b *BinaryConv2D) PatchVectors(x *tensor.Float) []*bitops.Vector {
	cols := b.Geom.Im2Col(x)
	pl := b.Geom.PatchLen()
	out := make([]*bitops.Vector, b.Geom.Positions())
	for p := range out {
		out[p] = binarize(cols.Data()[p*pl : (p+1)*pl])
	}
	return out
}

// --- Shape/utility layers ---------------------------------------------

// Sign binarizes a float tensor to ±1 (the activation binarization
// between the FP input layer and the first binary layer).
type Sign struct {
	LayerName string

	out   *tensor.Float // reusable output buffer
	batch *signBatch    // batch-major scratch (batch.go)
}

func (s *Sign) cloneShared() Layer {
	c := *s
	c.out, c.batch = nil, nil
	return &c
}

// Name implements Layer.
func (s *Sign) Name() string { return s.LayerName }

// OutShape implements Layer.
func (s *Sign) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (s *Sign) Forward(x *tensor.Float) *tensor.Float {
	if s.out == nil || !s.out.SameShape(x) {
		s.out = tensor.NewFloat(x.Shape()...)
	}
	y := s.out.Data()
	for i, v := range x.Data() {
		if v > 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return s.out
}

// MaxPool2D pools CHW tensors with a square window; on ±1 activations
// this is an OR reduction.
type MaxPool2D struct {
	LayerName string
	Size      int

	out   *tensor.Float // reusable output buffer
	batch *poolBatch    // batch-major scratch (batch.go)
}

func (m *MaxPool2D) cloneShared() Layer {
	c := *m
	c.out, c.batch = nil, nil
	return &c
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.LayerName }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("bnn: %s: pooling needs CHW input, got %v", m.LayerName, in))
	}
	return []int{in[0], in[1] / m.Size, in[2] / m.Size}
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Float) *tensor.Float {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("bnn: %s: pooling needs CHW input, got %v", m.LayerName, x.Shape()))
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h/m.Size, w/m.Size
	if m.out == nil || m.out.Dim(0) != c || m.out.Dim(1) != oh || m.out.Dim(2) != ow {
		m.out = tensor.NewFloat(c, oh, ow)
	}
	xd, yd := x.Data(), m.out.Data()
	for ci := 0; ci < c; ci++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				best := math.Inf(-1)
				for di := 0; di < m.Size; di++ {
					rowBase := (ci*h + i*m.Size + di) * w
					for dj := 0; dj < m.Size; dj++ {
						if v := xd[rowBase+j*m.Size+dj]; v > best {
							best = v
						}
					}
				}
				yd[(ci*oh+i)*ow+j] = best
			}
		}
	}
	return m.out
}

// Flatten reshapes any tensor to rank 1.
type Flatten struct {
	LayerName string

	out   tensor.Float  // reusable alias view of the input
	batch *flattenBatch // batch-major scratch (batch.go)
}

func (f *Flatten) cloneShared() Layer {
	return &Flatten{LayerName: f.LayerName}
}

// Name implements Layer.
func (f *Flatten) Name() string { return f.LayerName }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// Forward implements Layer. The result is a reshaped alias of x's
// data, built without copying or allocating.
func (f *Flatten) Forward(x *tensor.Float) *tensor.Float {
	return f.out.Alias(x, x.Size())
}
