package core

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/device"
)

// Golden pinning of ideal-mode TacitMap execution through the full
// tile/drive/partial-sum path. Captured from the pre-refactor per-cell
// implementation; the flat-storage rewrite must reproduce these counts
// bit-identically. Regenerate (deliberately!) with UPDATE_GOLDENS=1.

type coreGoldens struct {
	// EPCMExecute[i] is Execute output for input i on an ideal ePCM
	// multi-tile mapping (layer 70×300 on 64×32 arrays).
	EPCMExecute [][]int `json:"epcm_execute"`
	// OPCMExecute is the same layer on ideal oPCM arrays.
	OPCMExecute [][]int `json:"opcm_execute"`
	// OPCMExecuteMMM[k] is a K=4 WDM batch through ExecuteMMM.
	OPCMExecuteMMM [][]int `json:"opcm_execute_mmm"`
}

const coreGoldenPath = "testdata/ideal_goldens.json"

func computeCoreGoldens(t *testing.T) coreGoldens {
	t.Helper()
	var g coreGoldens
	rng := rand.New(rand.NewSource(33))
	const n, m = 70, 300
	weights := bitops.NewMatrix(n, m)
	for r := 0; r < n; r++ {
		for c := 0; c < m; c++ {
			weights.Set(r, c, rng.Intn(2) == 1)
		}
	}
	inputs := make([]*bitops.Vector, 6)
	for i := range inputs {
		inputs[i] = bitops.NewVector(m)
		for b := 0; b < m; b++ {
			if rng.Intn(2) == 1 {
				inputs[i].Set(b)
			}
		}
	}

	for _, tech := range []device.Technology{device.EPCM, device.OPCM} {
		cfg := crossbar.DefaultConfig(tech)
		cfg.Rows, cfg.Cols = 64, 32
		cfg.ADCBits = 7
		cfg.Ideal = true
		mapped, err := MapTacit(weights, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			out, err := mapped.Execute(in)
			if err != nil {
				t.Fatal(err)
			}
			if tech == device.EPCM {
				g.EPCMExecute = append(g.EPCMExecute, out)
			} else {
				g.OPCMExecute = append(g.OPCMExecute, out)
			}
		}
		if tech == device.OPCM {
			mmm, err := mapped.ExecuteMMM(inputs[:4])
			if err != nil {
				t.Fatal(err)
			}
			g.OPCMExecuteMMM = mmm
		}
	}
	return g
}

func TestIdealExecuteMatchesGoldens(t *testing.T) {
	got := computeCoreGoldens(t)
	if os.Getenv("UPDATE_GOLDENS") == "1" {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(coreGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(coreGoldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", coreGoldenPath)
		return
	}
	data, err := os.ReadFile(coreGoldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with UPDATE_GOLDENS=1 to capture): %v", err)
	}
	var want coreGoldens
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.EPCMExecute, want.EPCMExecute) {
		t.Error("ideal ePCM Execute counts diverged from pre-refactor goldens")
	}
	if !reflect.DeepEqual(got.OPCMExecute, want.OPCMExecute) {
		t.Error("ideal oPCM Execute counts diverged from pre-refactor goldens")
	}
	if !reflect.DeepEqual(got.OPCMExecuteMMM, want.OPCMExecuteMMM) {
		t.Error("ideal oPCM ExecuteMMM counts diverged from pre-refactor goldens")
	}
}
