// Package core implements the paper's primary contribution: TacitMap,
// the highly parallel data mapping for BNN XNOR+Popcount on VMM-capable
// 1T1R crossbars, together with the state-of-the-art baseline mapping it
// is compared against (CustBinaryMap, Hirtzlin et al. 2020).
//
// A BNN layer is n weight vectors of m bits each. The two mappings:
//
//	TacitMap      — weight vector W_j occupies *column* j as [W_j ; ¬W_j]
//	                (2m cells). The input [X ; ¬X] drives the rows; one
//	                analog VMM evaluates all n columns simultaneously and
//	                the ADCs read the n popcounts directly. 1 step.
//	CustBinaryMap — weight vector W_j occupies *row* j as the interleaved
//	                pairs (w, ¬w) in 2T2R cells. Rows are activated one at
//	                a time; PCSAs sense m XNOR bits which digital counters
//	                + a popcount tree accumulate. n steps + digital logic.
//
// Layers larger than one physical array are tiled; Plan types capture
// the resulting geometry and primitive-operation counts, which the
// architecture simulator (internal/sim) converts into time and energy.
package core

import (
	"fmt"
)

// TacitPlan is the tiling geometry of one BNN layer under TacitMap.
type TacitPlan struct {
	// N is the number of weight vectors (layer outputs), M their length.
	N, M int
	// ArrayRows, ArrayCols are the physical crossbar dimensions.
	ArrayRows, ArrayCols int
	// BitsPerTile is how many weight bits fit one row-tile: the column
	// stores [w ; ¬w], so BitsPerTile = ArrayRows/2.
	BitsPerTile int
	// RowTiles = ceil(M / BitsPerTile): tiles along the bit dimension.
	// Their partial popcounts are summed by a small digital adder tree.
	RowTiles int
	// ColTiles = ceil(N / ArrayCols): tiles along the weight-vector
	// dimension; independent, no reduction needed.
	ColTiles int
}

// PlanTacit computes the TacitMap tiling of an n×m layer onto
// rows×cols arrays.
func PlanTacit(n, m, rows, cols int) (TacitPlan, error) {
	if n <= 0 || m <= 0 {
		return TacitPlan{}, fmt.Errorf("core: layer dims must be positive, got n=%d m=%d", n, m)
	}
	if rows < 2 || cols < 1 {
		return TacitPlan{}, fmt.Errorf("core: array %dx%d too small for TacitMap", rows, cols)
	}
	bpt := rows / 2
	return TacitPlan{
		N: n, M: m,
		ArrayRows: rows, ArrayCols: cols,
		BitsPerTile: bpt,
		RowTiles:    ceilDiv(m, bpt),
		ColTiles:    ceilDiv(n, cols),
	}, nil
}

// Tiles returns the total number of physical arrays the layer occupies.
func (p TacitPlan) Tiles() int { return p.RowTiles * p.ColTiles }

// VMMsPerInput is the number of array activations needed to process one
// input vector. All tiles can fire concurrently given enough arrays, so
// with full parallelism this is also the work, not the critical path.
func (p TacitPlan) VMMsPerInput() int { return p.Tiles() }

// SerialStepsPerInput is the critical-path step count for one input
// vector when tiles map to distinct physical arrays (the spatial-
// architecture case): a single VMM step, since every tile fires at once
// and the adder tree is pipelined behind the ADCs.
func (p TacitPlan) SerialStepsPerInput() int { return 1 }

// SingleArrayStepsPerInput is the step count when only one physical
// array exists and tiles must time-multiplex onto it (the E5
// microbenchmark configuration).
func (p TacitPlan) SingleArrayStepsPerInput() int { return p.Tiles() }

// ADCConversionsPerInput counts analog→digital conversions for one
// input: every occupied column of every tile converts once.
func (p TacitPlan) ADCConversionsPerInput() int {
	full := (p.ColTiles - 1) * p.ArrayCols
	last := p.N - full
	return p.RowTiles * (full + last)
}

// DACConversionsPerInput counts input-side conversions: each row-tile
// receives 2·bits driven rows (the slice and its complement).
func (p TacitPlan) DACConversionsPerInput() int {
	total := 0
	for t := 0; t < p.RowTiles; t++ {
		bits := p.BitsPerTile
		if t == p.RowTiles-1 {
			bits = p.M - t*p.BitsPerTile
		}
		total += 2 * bits
	}
	return total * p.ColTiles
}

// DigitalAddsPerInput counts the partial-popcount additions: each of the
// N outputs needs RowTiles−1 adds.
func (p TacitPlan) DigitalAddsPerInput() int { return p.N * (p.RowTiles - 1) }

// CellWrites counts device programming operations to load the layer:
// every stored bit and its complement.
func (p TacitPlan) CellWrites() int { return 2 * p.N * p.M }

// CustPlan is the tiling geometry of one BNN layer under CustBinaryMap.
type CustPlan struct {
	N, M int
	// ArrayRows is the word-line count; LogicalCols = physical cols / 2
	// is how many weight bits fit per row (2T2R interleaving).
	ArrayRows, LogicalCols int
	// RowTiles = ceil(N / ArrayRows), ColTiles = ceil(M / LogicalCols).
	RowTiles, ColTiles int
}

// PlanCust computes the CustBinaryMap tiling of an n×m layer onto
// arrays with `rows` word lines and `logicalCols` 2T2R cells per row.
func PlanCust(n, m, rows, logicalCols int) (CustPlan, error) {
	if n <= 0 || m <= 0 {
		return CustPlan{}, fmt.Errorf("core: layer dims must be positive, got n=%d m=%d", n, m)
	}
	if rows < 1 || logicalCols < 1 {
		return CustPlan{}, fmt.Errorf("core: array %dx%d too small for CustBinaryMap", rows, logicalCols)
	}
	return CustPlan{
		N: n, M: m,
		ArrayRows: rows, LogicalCols: logicalCols,
		RowTiles: ceilDiv(n, rows),
		ColTiles: ceilDiv(m, logicalCols),
	}, nil
}

// Tiles returns the number of physical arrays occupied.
func (p CustPlan) Tiles() int { return p.RowTiles * p.ColTiles }

// RowActivationsPerInput counts word-line activations for one input
// vector: every weight vector is visited once in every column tile.
func (p CustPlan) RowActivationsPerInput() int { return p.N * p.ColTiles }

// SerialStepsPerInput is the critical path for one input with tiles on
// distinct arrays: row activations within an array are inherently
// sequential, so the path is the tallest row tile.
func (p CustPlan) SerialStepsPerInput() int {
	if p.N < p.ArrayRows {
		return p.N
	}
	return p.ArrayRows
}

// SingleArrayStepsPerInput is the step count with one physical array.
func (p CustPlan) SingleArrayStepsPerInput() int { return p.RowActivationsPerInput() }

// PCSASensesPerInput counts sense-amplifier resolutions for one input.
func (p CustPlan) PCSASensesPerInput() int { return p.N * p.M }

// PopcountOpsPerInput counts digital popcount-tree operations (local
// 5-bit counters per column + the global tree, one invocation per row
// activation, per the paper's §III description).
func (p CustPlan) PopcountOpsPerInput() int { return p.RowActivationsPerInput() }

// DigitalAddsPerInput counts cross-tile partial merges: each output
// needs ColTiles−1 adds.
func (p CustPlan) DigitalAddsPerInput() int { return p.N * (p.ColTiles - 1) }

// CellWrites counts device programming operations (2 devices per bit).
func (p CustPlan) CellWrites() int { return 2 * p.N * p.M }

// TheoreticalSpeedup returns the paper's §III claim for this layer:
// using the same underlying device, TacitMap needs SerialSteps=1 where
// CustBinaryMap needs min(n, rows) — "up to n× lower execution time".
func TheoreticalSpeedup(tacit TacitPlan, cust CustPlan) float64 {
	return float64(cust.SerialStepsPerInput()) / float64(tacit.SerialStepsPerInput())
}

// CompactRect shapes a tile count into the most compact rectangle that
// fits a mesh of width maxW: the squarest w×h with w·h ≥ tiles and
// w ≤ maxW. This is the region-local layout the locality-aware placer
// gives every layer — a near-square footprint minimizes the XY hop
// distance between the layer's own tiles and to its neighbours, where
// the flat VCore allocator would smear the same tiles along a row.
func CompactRect(tiles, maxW int) (w, h int) {
	if tiles < 1 {
		tiles = 1
	}
	if maxW < 1 {
		maxW = 1
	}
	w = 1
	for w*w < tiles && w < maxW {
		w++
	}
	return w, ceilDiv(tiles, w)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
