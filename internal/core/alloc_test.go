package core

import (
	"math/rand"
	"testing"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/device"
)

// Zero-allocation regression pins for the mapped execution paths
// (ISSUE 2: TacitMapped carries per-tile drive and partial-sum scratch
// so steady-state hardware execution is allocation-free).

func allocTestLayer(t *testing.T, tech device.Technology) (*TacitMapped, *bitops.Vector) {
	t.Helper()
	rng := rand.New(rand.NewSource(20))
	const n, m = 70, 300 // multi-tile, word-unaligned extents
	weights := bitops.NewMatrix(n, m)
	for r := 0; r < n; r++ {
		for c := 0; c < m; c++ {
			weights.Set(r, c, rng.Intn(2) == 1)
		}
	}
	cfg := crossbar.DefaultConfig(tech)
	cfg.Rows, cfg.Cols = 64, 32
	cfg.ADCBits = 7
	cfg.Seed = 21 // noisy mode: noise draws must not allocate either
	mapped, err := MapTacit(weights, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := bitops.NewVector(m)
	for i := 0; i < m; i++ {
		if rng.Intn(2) == 1 {
			x.Set(i)
		}
	}
	return mapped, x
}

func TestExecuteIntoZeroAllocs(t *testing.T) {
	for _, tech := range []device.Technology{device.EPCM, device.OPCM} {
		mapped, x := allocTestLayer(t, tech)
		out := make([]int, mapped.Plan().N)
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := mapped.ExecuteInto(x, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%v ExecuteInto allocates %g times per run", tech, allocs)
		}
	}
}

func TestExecuteMMMIntoZeroAllocs(t *testing.T) {
	mapped, x := allocTestLayer(t, device.OPCM)
	const k = 4
	xs := make([]*bitops.Vector, k)
	out := make([][]int, k)
	for i := range xs {
		xs[i] = x
		out[i] = make([]int, mapped.Plan().N)
	}
	// Warm the K-sized scratch once, then pin.
	if _, err := mapped.ExecuteMMMInto(xs, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := mapped.ExecuteMMMInto(xs, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ExecuteMMMInto allocates %g times per run", allocs)
	}
}

func TestCustExecuteIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n, m = 40, 100
	weights := bitops.NewMatrix(n, m)
	for r := 0; r < n; r++ {
		for c := 0; c < m; c++ {
			weights.Set(r, c, rng.Intn(2) == 1)
		}
	}
	cfg := crossbar.DiffConfig{Rows: 32, Cols: 48, EPCM: device.DefaultEPCMParams(), Seed: 23}
	mapped, err := MapCust(weights, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := bitops.NewVector(m)
	for i := 0; i < m; i++ {
		if rng.Intn(2) == 1 {
			x.Set(i)
		}
	}
	out := make([]int, n)
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := mapped.ExecuteInto(x, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CustMapped.ExecuteInto allocates %g times per run", allocs)
	}
}

func TestExecuteIntoMatchesExecute(t *testing.T) {
	mapped, x := allocTestLayer(t, device.EPCM)
	want, err := mapped.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, mapped.Plan().N)
	got, err := mapped.ExecuteInto(x, out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExecuteInto[%d] = %d, Execute = %d", i, got[i], want[i])
		}
	}
}
