package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/device"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *bitops.Matrix {
	m := bitops.NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, rng.Intn(2) == 1)
		}
	}
	return m
}

func randomVector(rng *rand.Rand, n int) *bitops.Vector {
	v := bitops.NewVector(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func testArrayConfig(tech device.Technology) crossbar.Config {
	cfg := crossbar.DefaultConfig(tech)
	cfg.Rows, cfg.Cols = 64, 16
	cfg.ADCBits = 7
	cfg.Seed = 99
	return cfg
}

func testDiffConfig() crossbar.DiffConfig {
	return crossbar.DiffConfig{
		Rows: 24, Cols: 40,
		EPCM: device.DefaultEPCMParams(),
		Seed: 99,
	}
}

func TestPlanTacitGeometry(t *testing.T) {
	p, err := PlanTacit(100, 70, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitsPerTile != 32 {
		t.Fatalf("BitsPerTile = %d, want 32", p.BitsPerTile)
	}
	if p.RowTiles != 3 { // ceil(70/32)
		t.Fatalf("RowTiles = %d, want 3", p.RowTiles)
	}
	if p.ColTiles != 7 { // ceil(100/16)
		t.Fatalf("ColTiles = %d, want 7", p.ColTiles)
	}
	if p.Tiles() != 21 || p.VMMsPerInput() != 21 {
		t.Fatalf("Tiles = %d", p.Tiles())
	}
	if p.SerialStepsPerInput() != 1 {
		t.Fatal("TacitMap critical path must be 1 step")
	}
	if p.SingleArrayStepsPerInput() != 21 {
		t.Fatalf("single-array steps = %d", p.SingleArrayStepsPerInput())
	}
	if p.DigitalAddsPerInput() != 100*2 {
		t.Fatalf("DigitalAdds = %d", p.DigitalAddsPerInput())
	}
	if p.CellWrites() != 2*100*70 {
		t.Fatalf("CellWrites = %d", p.CellWrites())
	}
}

func TestPlanTacitADCAndDACCounts(t *testing.T) {
	p, _ := PlanTacit(20, 70, 64, 16)
	// ColTiles = 2: first full (16 cols), last 4 cols → 20 per row tile ×3.
	if got := p.ADCConversionsPerInput(); got != 60 {
		t.Fatalf("ADC conversions = %d, want 60", got)
	}
	// Row tiles carry 32, 32, 6 bits → (64+64+12) DACs × 2 col tiles.
	if got := p.DACConversionsPerInput(); got != 280 {
		t.Fatalf("DAC conversions = %d, want 280", got)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := PlanTacit(0, 1, 64, 16); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := PlanTacit(1, 1, 1, 16); err == nil {
		t.Fatal("expected error for 1-row array")
	}
	if _, err := PlanCust(0, 1, 8, 8); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := PlanCust(1, 1, 0, 8); err == nil {
		t.Fatal("expected error for 0-row array")
	}
}

func TestPlanCustGeometry(t *testing.T) {
	p, err := PlanCust(50, 100, 24, 40)
	if err != nil {
		t.Fatal(err)
	}
	if p.RowTiles != 3 || p.ColTiles != 3 {
		t.Fatalf("tiles = %dx%d", p.RowTiles, p.ColTiles)
	}
	if p.RowActivationsPerInput() != 150 {
		t.Fatalf("row activations = %d", p.RowActivationsPerInput())
	}
	if p.SerialStepsPerInput() != 24 {
		t.Fatalf("serial steps = %d", p.SerialStepsPerInput())
	}
	if p.PCSASensesPerInput() != 5000 {
		t.Fatalf("PCSA senses = %d", p.PCSASensesPerInput())
	}
	if p.DigitalAddsPerInput() != 100 {
		t.Fatalf("digital adds = %d", p.DigitalAddsPerInput())
	}
}

func TestTheoreticalSpeedup(t *testing.T) {
	// Paper §III: same device, TacitMap up to n× faster. For n ≤ rows the
	// speedup is exactly n.
	tp, _ := PlanTacit(20, 30, 64, 32)
	cp, _ := PlanCust(20, 30, 64, 32)
	if s := TheoreticalSpeedup(tp, cp); s != 20 {
		t.Fatalf("speedup = %g, want 20", s)
	}
}

func TestTacitExecuteMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Layer bigger than one tile in both dimensions: n=40 > 16 cols,
	// m=75 > 32 bits per tile.
	weights := randomMatrix(rng, 40, 75)
	mapped, err := MapTacit(weights, testArrayConfig(device.EPCM))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := randomVector(rng, 75)
		got, err := mapped.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		want := weights.XnorPopcountAll(x)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d output %d: got %d, want %d", trial, j, got[j], want[j])
			}
		}
	}
}

func TestTacitExecuteBipolar(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	weights := randomMatrix(rng, 10, 20)
	mapped, err := MapTacit(weights, testArrayConfig(device.EPCM))
	if err != nil {
		t.Fatal(err)
	}
	x := randomVector(rng, 20)
	got, err := mapped.ExecuteBipolar(x)
	if err != nil {
		t.Fatal(err)
	}
	want := weights.BipolarMatVec(x)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("output %d: got %d, want %d", j, got[j], want[j])
		}
	}
}

func TestCustExecuteMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// n=50 > 24 rows, m=100 > 40 logical cols: multi-tile both ways.
	weights := randomMatrix(rng, 50, 100)
	mapped, err := MapCust(weights, testDiffConfig())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := randomVector(rng, 100)
		got, err := mapped.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		want := weights.XnorPopcountAll(x)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d output %d: got %d, want %d", trial, j, got[j], want[j])
			}
		}
	}
}

// TestMappingsAgreeProperty is the paper's functional-equivalence claim:
// both mappings compute identical XNOR+Popcount results; only their cost
// differs.
func TestMappingsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(30), 1+rng.Intn(60)
		weights := randomMatrix(rng, n, m)
		tm, err := MapTacit(weights, testArrayConfig(device.EPCM))
		if err != nil {
			return false
		}
		cm, err := MapCust(weights, testDiffConfig())
		if err != nil {
			return false
		}
		x := randomVector(rng, m)
		a, err := tm.Execute(x)
		if err != nil {
			return false
		}
		b, err := cm.Execute(x)
		if err != nil {
			return false
		}
		ref := weights.XnorPopcountAll(x)
		for j := range ref {
			if a[j] != ref[j] || b[j] != ref[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestTacitMMMMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	weights := randomMatrix(rng, 30, 50)
	mapped, err := MapTacit(weights, testArrayConfig(device.OPCM))
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	xs := make([]*bitops.Vector, k)
	for i := range xs {
		xs[i] = randomVector(rng, 50)
	}
	got, err := mapped.ExecuteMMM(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want := weights.XnorPopcountAll(x)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("λ%d output %d: got %d, want %d", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestTacitMMMRequiresOPCM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	weights := randomMatrix(rng, 4, 8)
	mapped, err := MapTacit(weights, testArrayConfig(device.EPCM))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mapped.ExecuteMMM([]*bitops.Vector{randomVector(rng, 8)}); err == nil {
		t.Fatal("expected oPCM-required error")
	}
}

func TestExecuteErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	weights := randomMatrix(rng, 4, 8)
	tm, _ := MapTacit(weights, testArrayConfig(device.EPCM))
	if _, err := tm.Execute(bitops.NewVector(9)); err == nil {
		t.Fatal("expected input-length error (tacit)")
	}
	cm, _ := MapCust(weights, testDiffConfig())
	if _, err := cm.Execute(bitops.NewVector(9)); err == nil {
		t.Fatal("expected input-length error (cust)")
	}
	om, _ := MapTacit(weights, testArrayConfig(device.OPCM))
	if _, err := om.ExecuteMMM(nil); err == nil {
		t.Fatal("expected empty-inputs error")
	}
	if _, err := om.ExecuteMMM([]*bitops.Vector{bitops.NewVector(9)}); err == nil {
		t.Fatal("expected input-length error (MMM)")
	}
}

func TestStatsContrast(t *testing.T) {
	// The quantitative heart of §III: for the same layer and one input,
	// TacitMap performs Tiles() VMM activations while CustBinaryMap
	// performs n·ColTiles row activations.
	rng := rand.New(rand.NewSource(31))
	n, m := 48, 60
	weights := randomMatrix(rng, n, m)

	tm, err := MapTacit(weights, testArrayConfig(device.EPCM))
	if err != nil {
		t.Fatal(err)
	}
	tm.ResetStats()
	x := randomVector(rng, m)
	if _, err := tm.Execute(x); err != nil {
		t.Fatal(err)
	}
	ts := tm.Stats()
	if ts.VMMOps != int64(tm.Plan().Tiles()) {
		t.Fatalf("tacit VMMOps = %d, want %d", ts.VMMOps, tm.Plan().Tiles())
	}

	cm, err := MapCust(weights, testDiffConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm.ResetStats()
	if _, err := cm.Execute(x); err != nil {
		t.Fatal(err)
	}
	cs := cm.Stats()
	if cs.RowActivations != int64(cm.Plan().RowActivationsPerInput()) {
		t.Fatalf("cust RowActivations = %d, want %d",
			cs.RowActivations, cm.Plan().RowActivationsPerInput())
	}
	if cs.RowActivations <= ts.VMMOps {
		t.Fatal("baseline must need more serial crossbar operations than TacitMap")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	weights := randomMatrix(rng, 12, 20)
	tm, _ := MapTacit(weights, testArrayConfig(device.EPCM))
	got := tm.Weights()
	for r := 0; r < weights.Rows(); r++ {
		if !got.Row(r).Equal(weights.Row(r)) {
			t.Fatal("tacit Weights round trip failed")
		}
	}
	cm, _ := MapCust(weights, testDiffConfig())
	got = cm.Weights()
	for r := 0; r < weights.Rows(); r++ {
		if !got.Row(r).Equal(weights.Row(r)) {
			t.Fatal("cust Weights round trip failed")
		}
	}
}

// TestCompactRect: the region-local layout helper returns the
// squarest rectangle covering the tile count within the mesh width.
func TestCompactRect(t *testing.T) {
	for _, tc := range []struct{ tiles, maxW, w, h int }{
		{1, 4, 1, 1}, {2, 4, 2, 1}, {3, 4, 2, 2}, {4, 4, 2, 2},
		{5, 4, 3, 2}, {9, 4, 3, 3}, {10, 4, 4, 3}, {13, 4, 4, 4},
		{10, 2, 2, 5}, // clamped to the mesh width
		{0, 4, 1, 1}, {3, 0, 1, 3},
	} {
		w, h := CompactRect(tc.tiles, tc.maxW)
		if w != tc.w || h != tc.h {
			t.Fatalf("CompactRect(%d,%d) = %dx%d, want %dx%d", tc.tiles, tc.maxW, w, h, tc.w, tc.h)
		}
		if tc.tiles > 0 && w*h < tc.tiles {
			t.Fatalf("CompactRect(%d,%d) = %dx%d does not cover", tc.tiles, tc.maxW, w, h)
		}
	}
}
