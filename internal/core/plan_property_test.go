package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Plan invariants, checked over random layer and array shapes. These
// are the closed-form counts the compiler and the cross-validation
// tests rely on; an off-by-one here skews every figure.

func TestTacitPlanInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4000)
		m := 1 + rng.Intn(4000)
		rows := 2 * (1 + rng.Intn(512)) // even
		cols := 1 + rng.Intn(512)
		p, err := PlanTacit(n, m, rows, cols)
		if err != nil {
			return false
		}
		// Tiles cover the layer.
		if p.RowTiles*p.BitsPerTile < m {
			return false
		}
		if p.ColTiles*p.ArrayCols < n {
			return false
		}
		// No overshoot by a whole tile.
		if (p.RowTiles-1)*p.BitsPerTile >= m || (p.ColTiles-1)*p.ArrayCols >= n {
			return false
		}
		// The stored cells fit the allocated arrays.
		if int64(p.Tiles())*int64(rows)*int64(cols) < int64(p.CellWrites()) {
			return false
		}
		// ADC conversions: every weight vector converts once per row tile.
		if p.ADCConversionsPerInput() != p.RowTiles*n {
			return false
		}
		// DACs: each row tile drives 2×(its bits) rows per column tile.
		if p.DACConversionsPerInput() != 2*m*p.ColTiles {
			return false
		}
		// Critical path is always a single step (the mapping's point).
		return p.SerialStepsPerInput() == 1 && p.SingleArrayStepsPerInput() == p.Tiles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestCustPlanInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4000)
		m := 1 + rng.Intn(4000)
		rows := 1 + rng.Intn(512)
		cols := 1 + rng.Intn(512)
		p, err := PlanCust(n, m, rows, cols)
		if err != nil {
			return false
		}
		if p.RowTiles*p.ArrayRows < n || p.ColTiles*p.LogicalCols < m {
			return false
		}
		if (p.RowTiles-1)*p.ArrayRows >= n || (p.ColTiles-1)*p.LogicalCols >= m {
			return false
		}
		// Row activations: every weight vector visits every column tile.
		if p.RowActivationsPerInput() != n*p.ColTiles {
			return false
		}
		// One PCSA sense per logical weight bit.
		if p.PCSASensesPerInput() != n*m {
			return false
		}
		// The serial critical path equals the tallest tile.
		want := n
		if want > rows {
			want = rows
		}
		return p.SerialStepsPerInput() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSpeedupBoundProperty pins the §III bound: TacitMap's advantage on
// one array never exceeds min(n, rows) — "up to n×".
func TestSpeedupBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2000)
		m := 1 + rng.Intn(2000)
		rows := 2 * (1 + rng.Intn(256))
		cols := 1 + rng.Intn(256)
		tp, err := PlanTacit(n, m, rows, cols)
		if err != nil {
			return false
		}
		cp, err := PlanCust(n, m, rows, cols/2+1)
		if err != nil {
			return false
		}
		s := TheoreticalSpeedup(tp, cp)
		bound := float64(n)
		if float64(rows) < bound {
			bound = float64(rows)
		}
		return s >= 1 && s <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
