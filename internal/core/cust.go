package core

import (
	"fmt"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/crossbar"
)

// CustMapped is a BNN layer programmed onto 2T2R differential arrays
// under the CustBinaryMap layout (the SotA baseline, Hirtzlin et al.).
// Carries drive/sense scratch like TacitMapped; not safe for
// concurrent use.
type CustMapped struct {
	plan    CustPlan
	cfg     crossbar.DiffConfig
	weights *bitops.Matrix
	// arrays[rowTile][colTile]
	arrays [][]*crossbar.DiffArray
	// tileRows[rt] and tileCols[ct] are the occupied extents.
	tileRows []int
	tileCols []int
	// Reusable execution scratch.
	drive *bitops.Vector
	sense *bitops.Vector
}

// MapCust programs the n×m weight matrix onto differential arrays:
// weight vector j occupies word line j%rows of row-tile ⌊j/rows⌋, with
// its m bits split across column tiles of LogicalCols bits each.
func MapCust(weights *bitops.Matrix, cfg crossbar.DiffConfig) (*CustMapped, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := PlanCust(weights.Rows(), weights.Cols(), cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	c := &CustMapped{
		plan:     plan,
		cfg:      cfg,
		weights:  weights.Clone(),
		arrays:   make([][]*crossbar.DiffArray, plan.RowTiles),
		tileRows: make([]int, plan.RowTiles),
		tileCols: make([]int, plan.ColTiles),
		drive:    bitops.NewVector(cfg.Cols),
		sense:    bitops.NewVector(cfg.Cols),
	}
	for ct := 0; ct < plan.ColTiles; ct++ {
		bits := plan.LogicalCols
		if ct == plan.ColTiles-1 {
			bits = plan.M - ct*plan.LogicalCols
		}
		c.tileCols[ct] = bits
	}
	for rt := 0; rt < plan.RowTiles; rt++ {
		rows := cfg.Rows
		if rt == plan.RowTiles-1 {
			rows = plan.N - rt*cfg.Rows
		}
		c.tileRows[rt] = rows
		c.arrays[rt] = make([]*crossbar.DiffArray, plan.ColTiles)
		for ct := 0; ct < plan.ColTiles; ct++ {
			acfg := cfg
			acfg.Seed = cfg.Seed + int64(rt*plan.ColTiles+ct+1)
			arr, err := crossbar.NewDiffArray(acfg)
			if err != nil {
				return nil, err
			}
			layout := bitops.NewMatrix(cfg.Rows, cfg.Cols)
			lo := ct * plan.LogicalCols
			for r := 0; r < rows; r++ {
				// Word-wise copy of the weight slice into the tile row.
				layout.Row(r).Blit(0, weights.Row(rt*cfg.Rows+r), lo, lo+c.tileCols[ct])
			}
			if err := arr.Program(layout); err != nil {
				return nil, err
			}
			c.arrays[rt][ct] = arr
		}
	}
	return c, nil
}

// Plan returns the tiling geometry.
func (c *CustMapped) Plan() CustPlan { return c.plan }

// Weights returns a clone of the logical weight matrix.
func (c *CustMapped) Weights() *bitops.Matrix { return c.weights.Clone() }

// Execute performs the full XNOR+Popcount pass for input x: for every
// weight vector, one word-line activation per column tile, PCSA sensing
// and digital popcount, with partial sums merged across column tiles.
func (c *CustMapped) Execute(x *bitops.Vector) ([]int, error) {
	return c.ExecuteInto(x, nil)
}

// ExecuteInto is the allocation-free form of Execute: the popcounts are
// written into out (length n; nil allocates). Drive and sense vectors
// live in CustMapped-owned scratch.
func (c *CustMapped) ExecuteInto(x *bitops.Vector, out []int) ([]int, error) {
	if x.Len() != c.plan.M {
		return nil, fmt.Errorf("core: input length %d != m %d", x.Len(), c.plan.M)
	}
	if out == nil {
		out = make([]int, c.plan.N)
	} else if len(out) != c.plan.N {
		return nil, fmt.Errorf("core: ExecuteInto dst length %d != n %d", len(out), c.plan.N)
	}
	for i := range out {
		out[i] = 0
	}
	for rt := 0; rt < c.plan.RowTiles; rt++ {
		for ct := 0; ct < c.plan.ColTiles; ct++ {
			lo := ct * c.plan.LogicalCols
			// Pad the drive to the physical column count; padding columns
			// hold (0, 1) pairs which sense as XNOR(0, 0) = 1, so we only
			// count the occupied prefix.
			c.drive.Zero()
			c.drive.Blit(0, x, lo, lo+c.tileCols[ct])
			for r := 0; r < c.tileRows[rt]; r++ {
				bits, err := c.arrays[rt][ct].ReadRowXnorInto(r, c.drive, c.sense)
				if err != nil {
					return nil, err
				}
				out[rt*c.cfg.Rows+r] += bits.PopcountRange(0, c.tileCols[ct])
			}
		}
	}
	return out, nil
}

// ExecuteBipolar returns the {-1,+1} dot products via Eq. (1).
func (c *CustMapped) ExecuteBipolar(x *bitops.Vector) ([]int, error) {
	pc, err := c.Execute(x)
	if err != nil {
		return nil, err
	}
	for i := range pc {
		pc[i] = 2*pc[i] - c.plan.M
	}
	return pc, nil
}

// Stats aggregates event counters across all tiles.
func (c *CustMapped) Stats() crossbar.DiffStats {
	var s crossbar.DiffStats
	for _, row := range c.arrays {
		for _, a := range row {
			s.Add(a.Stats())
		}
	}
	return s
}

// ResetStats zeroes all tile counters.
func (c *CustMapped) ResetStats() {
	for _, row := range c.arrays {
		for _, a := range row {
			a.ResetStats()
		}
	}
}
