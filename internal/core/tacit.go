package core

import (
	"fmt"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/device"
)

// TacitMapped is a BNN layer programmed onto crossbar arrays under the
// TacitMap layout, ready to execute XNOR+Popcount workloads.
type TacitMapped struct {
	plan    TacitPlan
	cfg     crossbar.Config
	weights *bitops.Matrix // n×m logical weights, kept for reference
	// arrays[rowTile][colTile]
	arrays [][]*crossbar.Array
	// inputs[rowTile] caches the per-tile [x ; ¬x] drive vector length.
	tileBits []int
}

// MapTacit programs the n×m weight matrix (one weight vector per row of
// `weights`) onto arrays of the given configuration using TacitMap:
// weight vector j becomes column j%cols of tile (⌊bit/BitsPerTile⌋,
// ⌊j/cols⌋), stored as the slice [w ; ¬w].
func MapTacit(weights *bitops.Matrix, cfg crossbar.Config) (*TacitMapped, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := PlanTacit(weights.Rows(), weights.Cols(), cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	t := &TacitMapped{
		plan:     plan,
		cfg:      cfg,
		weights:  weights.Clone(),
		arrays:   make([][]*crossbar.Array, plan.RowTiles),
		tileBits: make([]int, plan.RowTiles),
	}
	for rt := 0; rt < plan.RowTiles; rt++ {
		bits := plan.BitsPerTile
		if rt == plan.RowTiles-1 {
			bits = plan.M - rt*plan.BitsPerTile
		}
		t.tileBits[rt] = bits
		t.arrays[rt] = make([]*crossbar.Array, plan.ColTiles)
		for ct := 0; ct < plan.ColTiles; ct++ {
			acfg := cfg
			acfg.Seed = cfg.Seed + int64(rt*plan.ColTiles+ct+1)
			arr, err := crossbar.NewArray(acfg)
			if err != nil {
				return nil, err
			}
			layout := bitops.NewMatrix(cfg.Rows, cfg.Cols)
			lo, hi := rt*plan.BitsPerTile, rt*plan.BitsPerTile+bits
			for j := 0; j < cfg.Cols; j++ {
				w := ct*cfg.Cols + j
				if w >= plan.N {
					break
				}
				slice := weights.Row(w).Slice(lo, hi)
				col := bitops.Concat(slice, slice.Not())
				for r := 0; r < col.Len(); r++ {
					layout.Set(r, j, col.Get(r))
				}
			}
			if err := arr.Program(layout); err != nil {
				return nil, err
			}
			t.arrays[rt][ct] = arr
		}
	}
	return t, nil
}

// Plan returns the tiling geometry.
func (t *TacitMapped) Plan() TacitPlan { return t.plan }

// Weights returns a clone of the logical weight matrix.
func (t *TacitMapped) Weights() *bitops.Matrix { return t.weights.Clone() }

// driveVector builds the [x_slice ; ¬x_slice] row drive for tile rt,
// zero-padded to the physical row count (undriven rows contribute no
// signal, matching unused cells programmed to 0).
func (t *TacitMapped) driveVector(x *bitops.Vector, rt int) *bitops.Vector {
	lo := rt * t.plan.BitsPerTile
	hi := lo + t.tileBits[rt]
	slice := x.Slice(lo, hi)
	pair := bitops.Concat(slice, slice.Not())
	drive := bitops.NewVector(t.cfg.Rows)
	for i := 0; i < pair.Len(); i++ {
		if pair.Get(i) {
			drive.Set(i)
		}
	}
	return drive
}

// Execute performs one full XNOR+Popcount pass for input x (length m):
// one VMM per tile plus the digital partial-sum adds, returning
// Popcount(XNOR(x, W_j)) for every weight vector j.
func (t *TacitMapped) Execute(x *bitops.Vector) ([]int, error) {
	if x.Len() != t.plan.M {
		return nil, fmt.Errorf("core: input length %d != m %d", x.Len(), t.plan.M)
	}
	out := make([]int, t.plan.N)
	for rt := 0; rt < t.plan.RowTiles; rt++ {
		drive := t.driveVector(x, rt)
		for ct := 0; ct < t.plan.ColTiles; ct++ {
			counts, err := t.arrays[rt][ct].VMM(drive)
			if err != nil {
				return nil, err
			}
			base := ct * t.cfg.Cols
			for j := 0; j < t.cfg.Cols && base+j < t.plan.N; j++ {
				out[base+j] += counts[j] // digital adder tree across row tiles
			}
		}
	}
	return out, nil
}

// ExecuteMMM processes up to K input vectors in a single crossbar
// activation per tile via WDM. Only valid on oPCM arrays. Returns
// popcounts[k][j].
func (t *TacitMapped) ExecuteMMM(xs []*bitops.Vector) ([][]int, error) {
	if t.cfg.Tech != device.OPCM {
		return nil, fmt.Errorf("core: ExecuteMMM requires oPCM arrays, have %v", t.cfg.Tech)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("core: ExecuteMMM with no inputs")
	}
	for i, x := range xs {
		if x.Len() != t.plan.M {
			return nil, fmt.Errorf("core: input %d length %d != m %d", i, x.Len(), t.plan.M)
		}
	}
	out := make([][]int, len(xs))
	for k := range out {
		out[k] = make([]int, t.plan.N)
	}
	drives := make([]*bitops.Vector, len(xs))
	for rt := 0; rt < t.plan.RowTiles; rt++ {
		for k, x := range xs {
			drives[k] = t.driveVector(x, rt)
		}
		for ct := 0; ct < t.plan.ColTiles; ct++ {
			counts, err := t.arrays[rt][ct].MMM(drives)
			if err != nil {
				return nil, err
			}
			base := ct * t.cfg.Cols
			for k := range xs {
				for j := 0; j < t.cfg.Cols && base+j < t.plan.N; j++ {
					out[k][base+j] += counts[k][j]
				}
			}
		}
	}
	return out, nil
}

// ExecuteBipolar returns the {-1,+1} dot products via Eq. (1):
// 2·popcount − m.
func (t *TacitMapped) ExecuteBipolar(x *bitops.Vector) ([]int, error) {
	pc, err := t.Execute(x)
	if err != nil {
		return nil, err
	}
	for i := range pc {
		pc[i] = 2*pc[i] - t.plan.M
	}
	return pc, nil
}

// Stats aggregates event counters across all tiles.
func (t *TacitMapped) Stats() crossbar.Stats {
	var s crossbar.Stats
	for _, row := range t.arrays {
		for _, a := range row {
			s.Add(a.Stats())
		}
	}
	return s
}

// ResetStats zeroes all tile counters.
func (t *TacitMapped) ResetStats() {
	for _, row := range t.arrays {
		for _, a := range row {
			a.ResetStats()
		}
	}
}

// InjectFaults applies a stuck-at defect model to every tile (each tile
// gets a distinct placement derived from the model's seed) and returns
// the total number of logically flipped cells.
func (t *TacitMapped) InjectFaults(f crossbar.FaultModel) (int, error) {
	flipped := 0
	i := int64(0)
	for _, row := range t.arrays {
		for _, a := range row {
			tf := f
			tf.Seed = f.Seed + i
			i++
			n, err := a.InjectFaults(tf)
			if err != nil {
				return flipped, err
			}
			flipped += n
		}
	}
	return flipped, nil
}

// Age advances every tile's post-programming age — the ePCM
// resistance-drift study (oPCM does not drift, paper §II-C).
func (t *TacitMapped) Age(seconds float64) {
	for _, row := range t.arrays {
		for _, a := range row {
			a.Age(seconds)
		}
	}
}

// FaultCount sums the injected defects across tiles.
func (t *TacitMapped) FaultCount() int {
	total := 0
	for _, row := range t.arrays {
		for _, a := range row {
			total += a.FaultCount()
		}
	}
	return total
}
