package core

import (
	"fmt"

	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/device"
)

// TacitMapped is a BNN layer programmed onto crossbar arrays under the
// TacitMap layout, ready to execute XNOR+Popcount workloads.
//
// A TacitMapped carries per-tile drive and partial-sum scratch, so the
// Into execution forms (ExecuteInto / ExecuteMMMInto) perform zero
// steady-state heap allocations. Consequently a TacitMapped is not safe
// for concurrent use.
type TacitMapped struct {
	plan    TacitPlan
	cfg     crossbar.Config
	weights *bitops.Matrix // n×m logical weights, kept for reference
	// arrays[rowTile][colTile]
	arrays [][]*crossbar.Array
	// tileBits[rowTile] is the number of weight bits the tile holds.
	tileBits []int
	// Reusable execution scratch.
	drive  *bitops.Vector   // [x_slice ; ¬x_slice ; 0…] row drive
	counts []int            // per-tile VMM output
	drives []*bitops.Vector // per-wavelength drives (MMM)
	mmmCnt [][]int          // per-wavelength per-tile MMM output
}

// MapTacit programs the n×m weight matrix (one weight vector per row of
// `weights`) onto arrays of the given configuration using TacitMap:
// weight vector j becomes column j%cols of tile (⌊bit/BitsPerTile⌋,
// ⌊j/cols⌋), stored as the slice [w ; ¬w].
func MapTacit(weights *bitops.Matrix, cfg crossbar.Config) (*TacitMapped, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := PlanTacit(weights.Rows(), weights.Cols(), cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	t := &TacitMapped{
		plan:     plan,
		cfg:      cfg,
		weights:  weights.Clone(),
		arrays:   make([][]*crossbar.Array, plan.RowTiles),
		tileBits: make([]int, plan.RowTiles),
		drive:    bitops.NewVector(cfg.Rows),
		counts:   make([]int, cfg.Cols),
	}
	// Each tile layout is assembled transposed (one matrix row per
	// crossbar column) so the [w ; ¬w] pairs are built with word-wise
	// blits off the weight rows, then flipped into row-major crossbar
	// orientation with the blocked Transpose — no per-bit Get/Set.
	colMajor := bitops.NewMatrix(cfg.Cols, cfg.Rows)
	for rt := 0; rt < plan.RowTiles; rt++ {
		bits := plan.BitsPerTile
		if rt == plan.RowTiles-1 {
			bits = plan.M - rt*plan.BitsPerTile
		}
		t.tileBits[rt] = bits
		t.arrays[rt] = make([]*crossbar.Array, plan.ColTiles)
		lo, hi := rt*plan.BitsPerTile, rt*plan.BitsPerTile+bits
		for ct := 0; ct < plan.ColTiles; ct++ {
			acfg := cfg
			acfg.Seed = cfg.Seed + int64(rt*plan.ColTiles+ct+1)
			arr, err := crossbar.NewArray(acfg)
			if err != nil {
				return nil, err
			}
			for j := 0; j < cfg.Cols; j++ {
				col := colMajor.Row(j) // view into the transposed layout
				col.Zero()
				w := ct*cfg.Cols + j
				if w >= plan.N {
					continue
				}
				wrow := weights.Row(w)
				col.Blit(0, wrow, lo, hi)
				col.BlitNot(bits, wrow, lo, hi)
			}
			if err := arr.Program(colMajor.Transpose()); err != nil {
				return nil, err
			}
			t.arrays[rt][ct] = arr
		}
	}
	return t, nil
}

// Plan returns the tiling geometry.
func (t *TacitMapped) Plan() TacitPlan { return t.plan }

// Weights returns a clone of the logical weight matrix.
func (t *TacitMapped) Weights() *bitops.Matrix { return t.weights.Clone() }

// driveInto builds the [x_slice ; ¬x_slice] row drive for tile rt into
// drive, zero-padded to the physical row count (undriven rows
// contribute no signal, matching unused cells programmed to 0). Both
// halves are written word-wise.
func (t *TacitMapped) driveInto(x *bitops.Vector, rt int, drive *bitops.Vector) {
	lo := rt * t.plan.BitsPerTile
	hi := lo + t.tileBits[rt]
	drive.Zero()
	drive.Blit(0, x, lo, hi)
	drive.BlitNot(hi-lo, x, lo, hi)
}

// Execute performs one full XNOR+Popcount pass for input x (length m):
// one VMM per tile plus the digital partial-sum adds, returning
// Popcount(XNOR(x, W_j)) for every weight vector j.
func (t *TacitMapped) Execute(x *bitops.Vector) ([]int, error) {
	return t.ExecuteInto(x, nil)
}

// ExecuteInto is the allocation-free form of Execute: the popcounts are
// written into out (length n; nil allocates). All intermediate drive
// vectors and per-tile counts live in TacitMapped-owned scratch.
func (t *TacitMapped) ExecuteInto(x *bitops.Vector, out []int) ([]int, error) {
	if x.Len() != t.plan.M {
		return nil, fmt.Errorf("core: input length %d != m %d", x.Len(), t.plan.M)
	}
	if out == nil {
		out = make([]int, t.plan.N)
	} else if len(out) != t.plan.N {
		return nil, fmt.Errorf("core: ExecuteInto dst length %d != n %d", len(out), t.plan.N)
	}
	for i := range out {
		out[i] = 0
	}
	for rt := 0; rt < t.plan.RowTiles; rt++ {
		t.driveInto(x, rt, t.drive)
		for ct := 0; ct < t.plan.ColTiles; ct++ {
			counts, err := t.arrays[rt][ct].VMMInto(t.drive, t.counts)
			if err != nil {
				return nil, err
			}
			base := ct * t.cfg.Cols
			for j := 0; j < t.cfg.Cols && base+j < t.plan.N; j++ {
				out[base+j] += counts[j] // digital adder tree across row tiles
			}
		}
	}
	return out, nil
}

// ExecuteMMM processes up to K input vectors in a single crossbar
// activation per tile via WDM. Only valid on oPCM arrays. Returns
// popcounts[k][j].
func (t *TacitMapped) ExecuteMMM(xs []*bitops.Vector) ([][]int, error) {
	return t.ExecuteMMMInto(xs, nil)
}

// ExecuteMMMInto is the allocation-free form of ExecuteMMM: out must be
// nil (fully allocated here) or hold one row of length n per input (nil
// rows are allocated). Drive vectors and per-tile count rows live in
// TacitMapped-owned scratch that grows to the largest K seen.
func (t *TacitMapped) ExecuteMMMInto(xs []*bitops.Vector, out [][]int) ([][]int, error) {
	if t.cfg.Tech != device.OPCM {
		return nil, fmt.Errorf("core: ExecuteMMM requires oPCM arrays, have %v", t.cfg.Tech)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("core: ExecuteMMM with no inputs")
	}
	for i, x := range xs {
		if x.Len() != t.plan.M {
			return nil, fmt.Errorf("core: input %d length %d != m %d", i, x.Len(), t.plan.M)
		}
	}
	k := len(xs)
	if out == nil {
		out = make([][]int, k)
	} else if len(out) != k {
		return nil, fmt.Errorf("core: ExecuteMMMInto dst has %d rows for %d inputs", len(out), k)
	}
	for i := range out {
		if out[i] == nil {
			out[i] = make([]int, t.plan.N)
		} else if len(out[i]) != t.plan.N {
			return nil, fmt.Errorf("core: ExecuteMMMInto dst row %d length %d != n %d", i, len(out[i]), t.plan.N)
		}
		for j := range out[i] {
			out[i][j] = 0
		}
	}
	for len(t.drives) < k {
		t.drives = append(t.drives, bitops.NewVector(t.cfg.Rows))
		t.mmmCnt = append(t.mmmCnt, make([]int, t.cfg.Cols))
	}
	drives := t.drives[:k]
	for rt := 0; rt < t.plan.RowTiles; rt++ {
		for i, x := range xs {
			t.driveInto(x, rt, drives[i])
		}
		for ct := 0; ct < t.plan.ColTiles; ct++ {
			counts, err := t.arrays[rt][ct].MMMInto(drives, t.mmmCnt[:k])
			if err != nil {
				return nil, err
			}
			base := ct * t.cfg.Cols
			for i := range xs {
				row := counts[i]
				for j := 0; j < t.cfg.Cols && base+j < t.plan.N; j++ {
					out[i][base+j] += row[j]
				}
			}
		}
	}
	return out, nil
}

// ExecuteBipolar returns the {-1,+1} dot products via Eq. (1):
// 2·popcount − m.
func (t *TacitMapped) ExecuteBipolar(x *bitops.Vector) ([]int, error) {
	pc, err := t.Execute(x)
	if err != nil {
		return nil, err
	}
	for i := range pc {
		pc[i] = 2*pc[i] - t.plan.M
	}
	return pc, nil
}

// Stats aggregates event counters across all tiles.
func (t *TacitMapped) Stats() crossbar.Stats {
	var s crossbar.Stats
	for _, row := range t.arrays {
		for _, a := range row {
			s.Add(a.Stats())
		}
	}
	return s
}

// ResetStats zeroes all tile counters.
func (t *TacitMapped) ResetStats() {
	for _, row := range t.arrays {
		for _, a := range row {
			a.ResetStats()
		}
	}
}

// InjectFaults applies a stuck-at defect model to every tile (each tile
// gets a distinct placement derived from the model's seed) and returns
// the total number of logically flipped cells.
func (t *TacitMapped) InjectFaults(f crossbar.FaultModel) (int, error) {
	flipped := 0
	i := int64(0)
	for _, row := range t.arrays {
		for _, a := range row {
			tf := f
			tf.Seed = f.Seed + i
			i++
			n, err := a.InjectFaults(tf)
			if err != nil {
				return flipped, err
			}
			flipped += n
		}
	}
	return flipped, nil
}

// Reprogram re-programs every tile from its stored layout with the
// tile's RNG reset to its seed — see crossbar.Array.Reprogram. Ages
// reset, program noise is re-drawn deterministically (idempotent across
// recalibrations), stuck-at defects survive. Returns the total SET and
// RESET write counts across tiles for pricing.
func (t *TacitMapped) Reprogram() (setWrites, resetWrites int64) {
	for _, row := range t.arrays {
		for _, a := range row {
			s, r := a.Reprogram()
			setWrites += s
			resetWrites += r
		}
	}
	return setWrites, resetWrites
}

// Tiles returns the number of crossbar arrays the mapping occupies.
func (t *TacitMapped) Tiles() int {
	n := 0
	for _, row := range t.arrays {
		n += len(row)
	}
	return n
}

// Age advances every tile's post-programming age — the ePCM
// resistance-drift study (oPCM does not drift, paper §II-C).
func (t *TacitMapped) Age(seconds float64) {
	for _, row := range t.arrays {
		for _, a := range row {
			a.Age(seconds)
		}
	}
}

// FaultCount sums the injected defects across tiles.
func (t *TacitMapped) FaultCount() int {
	total := 0
	for _, row := range t.arrays {
		for _, a := range row {
			total += a.FaultCount()
		}
	}
	return total
}
