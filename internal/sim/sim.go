// Package sim executes compiled instruction streams (internal/isa) over
// an architecture configuration (internal/arch), pricing every hardware
// event with the cost tables (internal/energy) and the interconnect
// model (internal/noc). It produces the per-design latency and energy
// numbers behind the paper's Fig. 7 and Fig. 8, and — through the
// tile-level pipeline engine (engine.go) — the steady-state batch
// throughput of the streaming extension.
package sim

import (
	"fmt"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/isa"
	"einsteinbarrier/internal/noc"
)

// Result is the outcome of simulating one inference.
type Result struct {
	// ModelName and Design echo the inputs.
	ModelName string
	Design    arch.Design
	// LatencyNs is the end-to-end critical-path latency of one
	// inference.
	LatencyNs float64
	// Energy is the energy breakdown (pJ).
	Energy energy.Breakdown
	// Counters aggregates raw event counts.
	Counters Counters
	// PerLayer holds per-SYNC-section latencies, keyed by order.
	PerLayer []LayerTime
}

// LayerTime is the latency contribution of one layer section.
type LayerTime struct {
	Name      string
	LatencyNs float64
}

// Counters tallies raw events.
type Counters struct {
	VMMs, MMMs, RowSteps, FPVMMs     int64
	ADCConversions, DACConversions   int64
	DigitalAdds, Popcounts, Threshes int64
	BytesMoved                       int64
	Instructions                     int64
}

// EnergyPJ is a convenience accessor.
func (r *Result) EnergyPJ() float64 { return r.Energy.TotalPJ() }

// Simulator prices instruction streams.
type Simulator struct {
	cfg   arch.Config
	costs energy.CostParams
	mesh  noc.Config
}

// New builds a simulator; it validates all configuration up front.
func New(cfg arch.Config, costs energy.CostParams) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	mesh := noc.DefaultConfig(cfg.MeshWidth())
	if err := mesh.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, costs: costs, mesh: mesh}, nil
}

// Costs exposes the active cost table.
func (s *Simulator) Costs() energy.CostParams { return s.costs }

// stageCost is the per-SYNC-section pricing the pipeline engine builds
// on: the section's tile-resident service time and its trailing NoC
// transfer, separated so the engine can overlap compute and movement of
// consecutive samples.
type stageCost struct {
	name string
	// serviceNs is everything the stage's tiles do per sample (analog
	// steps, digital post-processing, the SYNC overhead) — the time the
	// tiles stay busy.
	serviceNs float64
	// sendLatNs / sendBytes describe the stage's output transfer to the
	// next stage's tiles.
	sendLatNs float64
	sendBytes int64
}

// Run executes a compiled model and returns the inference result.
func (s *Simulator) Run(c *compiler.Compiled) (*Result, error) {
	res, _, err := s.price(c)
	return res, err
}

// designMesh returns the interconnect model for a design: the shared
// mesh, rebuilt (and re-validated) when the spec's TuneArch hook may
// have changed the tile geometry.
func (s *Simulator) designMesh(spec arch.DesignSpec, cfg arch.Config) (noc.Config, error) {
	if spec.TuneArch == nil {
		return s.mesh, nil
	}
	mesh := noc.DefaultConfig(cfg.MeshWidth())
	if err := mesh.Validate(); err != nil {
		return noc.Config{}, err
	}
	return mesh, nil
}

// price executes the instruction stream once, producing both the serial
// single-inference Result (the exact arithmetic of the original
// critical-path simulator — Fig. 7/8 metrics are bit-identical) and the
// SYNC-delimited stage costs the pipeline engine schedules.
func (s *Simulator) price(c *compiler.Compiled) (*Result, []stageCost, error) {
	if err := c.Program.Validate(); err != nil {
		return nil, nil, err
	}
	spec, err := c.Design.Spec()
	if err != nil {
		return nil, nil, err
	}
	// Per-design hooks: geometry and cost tables may be tuned by the
	// registered spec (nil hooks return the shared tables unchanged).
	cfg := spec.EffectiveArch(s.cfg)
	costs := spec.EffectiveCosts(s.costs)
	mesh, err := s.designMesh(spec, cfg)
	if err != nil {
		return nil, nil, err
	}
	effK := cfg.EffectiveK(c.Design)

	res := &Result{ModelName: c.ModelName, Design: c.Design}
	adcRounds := cfg.ADCRoundsPerVMM()
	// Optical power is duty-cycled: the transmitter (laser, modulators,
	// comb tuning — Eq. (3), scaled to the rows the layer actually
	// modulates) illuminates the array only for the optical settling
	// window. One transmitter stream is broadcast to all tiles holding
	// slices of the same input (on-chip optical broadcast, Cardoso et
	// al. 2022); replicas processing different positions need their own
	// streams. Each TIA is powered for its own deserialization slot, so
	// TIA energy rides on the conversion count. mW × ns = pJ.
	isOptical := spec.Tech == device.OPCM
	opticalStaticPJ := func(repeat, convs int64, rows, streams int) float64 {
		if !isOptical {
			return 0
		}
		if streams < 1 {
			streams = 1
		}
		if rows < 1 {
			rows = cfg.CrossbarRows
		}
		txMW := costs.TransmitterPowerMW(effK, rows)
		perStep := txMW * costs.SettleONs * float64(streams)
		tia := float64(convs) * costs.TIAEnergyPJ
		return float64(repeat) * (perStep + tia)
	}
	var stages []stageCost
	cur := stageCost{}
	sectionStart := 0.0
	for _, in := range c.Program {
		res.Counters.Instructions++
		var dt float64
		var e energy.Breakdown
		switch in.Op {
		case isa.OpNop, isa.OpHalt:
			// free
		case isa.OpSync:
			dt = costs.LayerOverheadNs
			e.ControlPJ = costs.LayerOverheadPJ
			// Sections are delimited by SYNC barriers and named by the
			// barrier's comment (the compiler stamps the layer name on
			// every SYNC it emits); an unnamed barrier still produces a
			// deterministic section label.
			name := in.Comment
			if name == "" {
				name = fmt.Sprintf("section-%d", len(res.PerLayer))
			}
			res.PerLayer = append(res.PerLayer, LayerTime{
				Name:      name,
				LatencyNs: res.LatencyNs + dt - sectionStart,
			})
			sectionStart = res.LatencyNs + dt
			cur.name = name
			cur.serviceNs += dt
			stages = append(stages, cur)
			cur = stageCost{}
		case isa.OpMVM:
			dt = float64(in.Repeat) * costs.VMMStepENs(adcRounds)
			res.Counters.VMMs += in.Repeat * int64(in.Tiles)
			res.Counters.ADCConversions += in.Repeat * in.Convs
			res.Counters.DACConversions += in.Repeat * in.DACs
			e.CrossbarPJ = float64(in.Repeat*in.Cells) * costs.CellReadEPJ
			e.ADCPJ = float64(in.Repeat*in.Convs) * costs.ADCEPJ
			e.DACPJ = float64(in.Repeat*in.DACs) * costs.DACPJ
			cur.serviceNs += dt
		case isa.OpMMM:
			dt = float64(in.Repeat) * costs.VMMStepONs(adcRounds)
			res.Counters.MMMs += in.Repeat * int64(in.Tiles)
			res.Counters.ADCConversions += in.Repeat * in.Convs
			res.Counters.DACConversions += in.Repeat * in.DACs
			e.CrossbarPJ = float64(in.Repeat*in.Cells) * costs.CellReadOPJ
			e.ADCPJ = float64(in.Repeat*in.Convs) * costs.ADCOPJ
			e.DACPJ = float64(in.Repeat*in.DACs) * costs.DACPJ
			e.StaticPJ = opticalStaticPJ(in.Repeat, in.Convs, int(in.Count), 1)
			cur.serviceNs += dt
		case isa.OpFPMVM:
			// Bit-streamed multi-bit VMM: Bits sequential analog steps.
			bits := float64(in.Bits)
			if isOptical {
				dt = float64(in.Repeat) * bits * costs.VMMStepONs(adcRounds)
				e.CrossbarPJ = float64(in.Repeat*in.Cells) * costs.CellReadOPJ
				e.ADCPJ = float64(in.Repeat*in.Convs) * costs.ADCOPJ
				e.StaticPJ = opticalStaticPJ(
					in.Repeat*int64(in.Bits), in.Convs/int64(in.Bits), int(in.Count), in.K)
			} else {
				dt = float64(in.Repeat) * bits * costs.VMMStepENs(adcRounds)
				e.CrossbarPJ = float64(in.Repeat*in.Cells) * costs.CellReadEPJ
				e.ADCPJ = float64(in.Repeat*in.Convs) * costs.ADCEPJ
			}
			res.Counters.FPVMMs += in.Repeat * int64(in.Tiles) * int64(in.Bits)
			res.Counters.ADCConversions += in.Repeat * in.Convs
			res.Counters.DACConversions += in.Repeat * in.DACs
			e.DACPJ = float64(in.Repeat*in.DACs) * costs.DACPJ
			cur.serviceNs += dt
		case isa.OpRowStep:
			dt = float64(in.Repeat) * float64(in.Count) * costs.RowStepNs
			res.Counters.RowSteps += in.Repeat * in.Count
			e.SensePJ = float64(in.Repeat*in.Cells)*costs.PCSADevicePJ +
				float64(in.Repeat*in.Count)*costs.CounterPJ
			cur.serviceNs += dt
		// The digital post-processing units (popcount trees, partial-sum
		// adders, threshold units) are pipelined behind the analog
		// steps — one result per step drains through them — so they
		// contribute energy but no critical-path latency.
		case isa.OpPopc:
			res.Counters.Popcounts += in.Count
			e.DigitalPJ = float64(in.Count) * costs.PopcountPJ
		case isa.OpAdd:
			res.Counters.DigitalAdds += in.Count
			e.DigitalPJ = float64(in.Count) * costs.DigitalAddPJ
		case isa.OpThresh:
			res.Counters.Threshes += in.Count
			e.DigitalPJ = float64(in.Count) * costs.DigitalAddPJ
		case isa.OpSend:
			lat, pj, err := mesh.Transfer(in.Bytes, in.Hops, in.ChipHops)
			if err != nil {
				return nil, nil, err
			}
			dt = lat
			res.Counters.BytesMoved += in.Bytes
			e.ControlPJ = pj
			cur.sendLatNs += lat
			cur.sendBytes += in.Bytes
		default:
			return nil, nil, fmt.Errorf("sim: unknown opcode %v", in.Op)
		}
		res.LatencyNs += dt
		res.Energy.Add(e)
	}
	// Work after the final SYNC (normally just HALT) forms a trailing
	// stage only if it did anything.
	if cur.serviceNs > 0 || cur.sendBytes > 0 {
		cur.name = fmt.Sprintf("section-%d", len(stages))
		stages = append(stages, cur)
	}
	return res, stages, nil
}

// RunModelOnDesigns compiles and simulates a model on all three CIM
// designs, returning results keyed by design.
func RunModelOnDesigns(s *Simulator, mcompile func(arch.Design) (*compiler.Compiled, error)) (map[arch.Design]*Result, error) {
	out := make(map[arch.Design]*Result, len(arch.CIMDesigns))
	for _, d := range arch.CIMDesigns {
		c, err := mcompile(d)
		if err != nil {
			return nil, err
		}
		r, err := s.Run(c)
		if err != nil {
			return nil, err
		}
		out[d] = r
	}
	return out, nil
}
