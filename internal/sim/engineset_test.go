package sim

import (
	"math"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
)

func compileSet(t *testing.T, names []string, placer compiler.Placer, cfg arch.Config) []*compiler.Compiled {
	t.Helper()
	var models []*bnn.Model
	for _, n := range names {
		m, err := bnn.NewModel(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	cs, err := compiler.CompileSet(models, cfg, arch.EinsteinBarrier, compiler.SetOptions{Placer: placer})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestEngineSetSingleModelMatchesRunBatch: a set of one is the engine —
// same code path, same floats.
func TestEngineSetSingleModelMatchesRunBatch(t *testing.T) {
	s := newSim(t)
	for _, placer := range []compiler.Placer{compiler.GreedyPlacer{}, compiler.MeshPlacer{}} {
		cs := compileSet(t, []string{"CNN-S"}, placer, arch.DefaultConfig())
		es, err := s.NewEngineSet(cs)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := s.NewEngine(cs[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []int{1, 7, 64} {
			want, err := eng.RunBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := es.RunSet(b)
			if err != nil {
				t.Fatal(err)
			}
			m := got.Models[0]
			if m.MakespanNs != want.MakespanNs || m.ThroughputPerSec != want.ThroughputPerSec {
				t.Fatalf("%s B=%d: set %v/%v != engine %v/%v", placer.Name(), b,
					m.MakespanNs, m.ThroughputPerSec, want.MakespanNs, want.ThroughputPerSec)
			}
			if m.LinkWaitNs != want.LinkWaitNs {
				t.Fatalf("%s B=%d: set wait %v != engine %v", placer.Name(), b, m.LinkWaitNs, want.LinkWaitNs)
			}
			if m.SlowdownX != 1 {
				t.Fatalf("single-model slowdown %v", m.SlowdownX)
			}
		}
	}
}

// TestEngineSetB1FillMatchesRun: the co-located fill latency of a lone
// model is the serial critical path — B=1 bit-identity carries through
// the set scheduler.
func TestEngineSetB1FillMatchesRun(t *testing.T) {
	s := newSim(t)
	cs := compileSet(t, []string{"MLP-S"}, compiler.GreedyPlacer{}, arch.DefaultConfig())
	serial, err := s.Run(cs[0])
	if err != nil {
		t.Fatal(err)
	}
	es, err := s.NewEngineSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := es.RunSet(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Models[0].FillLatencyNs != serial.LatencyNs {
		t.Fatalf("set fill %v != serial %v", r.Models[0].FillLatencyNs, serial.LatencyNs)
	}
}

// TestEngineSetCoLocationReportsInterference: two models on one fabric
// keep their isolated single-inference latency, run with bounded
// slowdown, and the interference accounting is self-consistent.
func TestEngineSetCoLocationReportsInterference(t *testing.T) {
	s := newSim(t)
	for _, placer := range []compiler.Placer{compiler.GreedyPlacer{}, compiler.MeshPlacer{}} {
		cs := compileSet(t, []string{"CNN-L", "MLP-M"}, placer, arch.DefaultConfig())
		es, err := s.NewEngineSet(cs)
		if err != nil {
			t.Fatal(err)
		}
		r, err := es.RunSet(64)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Models) != 2 {
			t.Fatalf("%d model results", len(r.Models))
		}
		for _, m := range r.Models {
			if m.SlowdownX < 1-1e-9 {
				t.Fatalf("%s: co-location sped the model up (%vx)", m.ModelName, m.SlowdownX)
			}
			if m.LinkWaitNs < m.IsolatedLinkWaitNs-1e-9 {
				t.Fatalf("%s: co-located wait %v below isolated %v", m.ModelName, m.LinkWaitNs, m.IsolatedLinkWaitNs)
			}
			if m.ThroughputPerSec > m.IsolatedPerSec*(1+1e-9) {
				t.Fatalf("%s: co-located throughput above isolated", m.ModelName)
			}
		}
		if r.FairnessJain <= 0 || r.FairnessJain > 1+1e-9 {
			t.Fatalf("fairness %v outside (0,1]", r.FairnessJain)
		}
		if r.MakespanNs < math.Max(r.Models[0].MakespanNs, r.Models[1].MakespanNs) {
			t.Fatal("set makespan below a member's")
		}
	}
}

// TestEngineSetDenseCoLocationInterferenceVisible: four high-rate
// models packed onto one chip share its egress port and column-0 spine;
// the round-robin admission clusters their transfers, so the shared
// links measurably stall versus the isolated baselines.
func TestEngineSetDenseCoLocationInterferenceVisible(t *testing.T) {
	s := newSim(t)
	cs := compileSet(t, []string{"MLP-S", "MLP-S", "MLP-S", "MLP-S"}, compiler.GreedyPlacer{}, arch.DefaultConfig())
	// All four strips must land on chip 0 for the contention to be real.
	for _, c := range cs {
		if c.Placement.Region.Chip != 0 {
			t.Fatalf("%s landed on chip %d; carve should pack chip 0 first", c.ModelName, c.Placement.Region.Chip)
		}
	}
	es, err := s.NewEngineSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := es.RunSet(256)
	if err != nil {
		t.Fatal(err)
	}
	if r.InterferenceWaitNs <= 0 {
		t.Fatalf("dense co-location shows no interference (wait %v)", r.InterferenceWaitNs)
	}
}

// TestEngineSetRejectsOverlapAndMixedDesigns.
func TestEngineSetRejectsOverlapAndMixedDesigns(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	m, err := bnn.NewModel("MLP-S", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two standalone compiles share the full fabric → overlapping tiles.
	c1, err := compiler.Compile(m, cfg, arch.EinsteinBarrier)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compiler.Compile(m, cfg, arch.EinsteinBarrier)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewEngineSet([]*compiler.Compiled{c1, c2}); err == nil {
		t.Fatal("overlapping placements must be rejected")
	}
	c3, err := compiler.Compile(m, cfg, arch.TacitEPCM)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewEngineSet([]*compiler.Compiled{c1, c3}); err == nil {
		t.Fatal("mixed designs must be rejected")
	}
	if _, err := s.NewEngineSet(nil); err == nil {
		t.Fatal("empty set must be rejected")
	}
	es, err := s.NewEngineSet([]*compiler.Compiled{c1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := es.RunSet(0); err == nil {
		t.Fatal("batch 0 must be rejected")
	}
}

// TestRunBatchesBitIdenticalToRunBatch pins the sweep satellite: one
// incremental pass over the largest batch produces the same results as
// re-running the schedule per size.
func TestRunBatchesBitIdenticalToRunBatch(t *testing.T) {
	s := newSim(t)
	for _, name := range []string{"CNN-S", "MLP-L"} {
		for _, d := range []arch.Design{arch.BaselineEPCM, arch.EinsteinBarrier} {
			eng, err := s.NewEngine(compiled(t, name, d))
			if err != nil {
				t.Fatal(err)
			}
			bs := []int{16, 1, 4, 64, 4}
			swept, err := eng.RunBatches(bs)
			if err != nil {
				t.Fatal(err)
			}
			// The per-size RunBatch calls below recycle the engine's pooled
			// results, so the sweep's must be retained as clones.
			for i := range swept {
				swept[i] = swept[i].Clone()
			}
			for i, b := range bs {
				single, err := eng.RunBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				got, want := swept[i], single
				if got.Batch != want.Batch || got.MakespanNs != want.MakespanNs ||
					got.ThroughputPerSec != want.ThroughputPerSec || got.LinkWaitNs != want.LinkWaitNs ||
					got.SteadyStatePerSec != want.SteadyStatePerSec {
					t.Fatalf("%s/%v B=%d: sweep %+v != single %+v", name, d, b, got, want)
				}
				for si := range got.Stages {
					if got.Stages[si].Busy != want.Stages[si].Busy {
						t.Fatalf("%s/%v B=%d stage %d busy differs", name, d, b, si)
					}
				}
			}
		}
	}
	eng, err := s.NewEngine(compiled(t, "CNN-S", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunBatches(nil); err == nil {
		t.Fatal("empty sweep must error")
	}
	if _, err := eng.RunBatches([]int{0}); err == nil {
		t.Fatal("batch 0 must error")
	}
}

// TestMeshPlacerCutsLinkWaitOnCNNL pins the placer acceptance: on
// CNN-L the locality-aware layout both out-runs the greedy layout and
// stalls measurably less on the NoC.
func TestMeshPlacerCutsLinkWaitOnCNNL(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	m, err := bnn.NewModel("CNN-L", 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p compiler.Placer) *BatchResult {
		c, err := compiler.CompileWith(m, cfg, arch.EinsteinBarrier, compiler.Options{Placer: p})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := s.NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		br, err := eng.RunBatch(256)
		if err != nil {
			t.Fatal(err)
		}
		return br
	}
	greedy := run(compiler.GreedyPlacer{})
	mesh := run(compiler.MeshPlacer{})
	if greedy.LinkWaitNs <= 0 {
		t.Fatalf("greedy CNN-L shows no NoC stall (%v)", greedy.LinkWaitNs)
	}
	if mesh.LinkWaitNs >= greedy.LinkWaitNs {
		t.Fatalf("mesh wait %v not below greedy %v", mesh.LinkWaitNs, greedy.LinkWaitNs)
	}
	if mesh.ThroughputPerSec <= greedy.ThroughputPerSec {
		t.Fatalf("mesh throughput %v not above greedy %v", mesh.ThroughputPerSec, greedy.ThroughputPerSec)
	}
}

// TestShardedCompileRunsEndToEnd: a cross-chip sharded placement prices
// and schedules (gather SENDs land in the section costs, chip ports in
// the contention model).
func TestShardedCompileRunsEndToEnd(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	cfg.TilesPerNode = 4
	cfg.Nodes = 8
	m, err := bnn.NewModel("MLP-L", 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compiler.CompileWith(m, cfg, arch.EinsteinBarrier, compiler.Options{Placer: compiler.ShardPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	// The sharded program must cost MORE serial latency than the greedy
	// one: inter-chip gathers are priced, not free.
	sim2, err := New(cfg, s.Costs())
	if err != nil {
		t.Fatal(err)
	}
	gc, err := compiler.Compile(m, cfg, arch.EinsteinBarrier)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := sim2.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := sim2.Run(gc)
	if err != nil {
		t.Fatal(err)
	}
	if shard.LatencyNs <= greedy.LatencyNs {
		t.Fatalf("sharded latency %v not above greedy %v (chip hops unpriced?)", shard.LatencyNs, greedy.LatencyNs)
	}
	eng, err := sim2.NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	br, err := eng.RunBatch(32)
	if err != nil {
		t.Fatal(err)
	}
	if br.ThroughputPerSec <= 0 || br.MakespanNs <= 0 {
		t.Fatalf("degenerate sharded batch result %+v", br)
	}
}
