package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bitops"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/tensor"
)

// randomModel draws hidden widths ≥ 64: below roughly n ≈ t_vmm/t_row
// ≈ 22 weight vectors, one full VMM costs more than n cheap PCSA row
// steps and the baseline legitimately wins — the paper's speedup claim
// is "up to n×", i.e. for layers wide enough to amortize the VMM.
func randomModel(rng *rand.Rand) *bnn.Model {
	in := 32 + rng.Intn(128)
	h := 64 + rng.Intn(256)
	classes := 2 + rng.Intn(10)
	return &bnn.Model{
		ModelName:  "rand",
		InputShape: []int{in},
		Classes:    classes,
		Layers: []bnn.Layer{
			&bnn.DenseFP{LayerName: "fc0", W: tensor.NewFloat(h, in), B: make([]float64, h)},
			&bnn.Sign{LayerName: "s"},
			&bnn.BinaryDense{LayerName: "b", W: bitops.NewMatrix(h, h), Thresh: make([]int, h)},
			&bnn.DenseFP{LayerName: "out", W: tensor.NewFloat(classes, h), B: make([]float64, classes)},
		},
	}
}

// TestSimOrderingProperty: the design ordering (latency: baseline >
// tacit > EB; energy: tacit > baseline > EB) holds for arbitrary valid
// MLP shapes, not just the zoo.
func TestSimOrderingProperty(t *testing.T) {
	cfg := arch.DefaultConfig()
	s, err := New(cfg, energy.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := randomModel(rng)
		results := make(map[arch.Design]*Result)
		for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
			c, err := compiler.Compile(model, cfg, d)
			if err != nil {
				return false
			}
			r, err := s.Run(c)
			if err != nil {
				return false
			}
			results[d] = r
		}
		base, tacit, eb := results[arch.BaselineEPCM], results[arch.TacitEPCM], results[arch.EinsteinBarrier]
		if !(base.LatencyNs > tacit.LatencyNs && tacit.LatencyNs >= eb.LatencyNs) {
			return false
		}
		if tacit.EnergyPJ() <= base.EnergyPJ() {
			return false
		}
		// EinsteinBarrier pays a fixed transmitter-energy floor per
		// inference (Eq. 3 duty-cycled); it undercuts TacitMap only once
		// there is enough binary work to amortize it. The zoo's smallest
		// network (CNN-S, ~0.7M binary ops) already sits near the
		// break-even — random toy models below ~1M ops may not.
		if model.TotalBinaryOps() >= 1<<20 && eb.EnergyPJ() >= tacit.EnergyPJ() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSimDeterministic: the simulator is a pure function of its inputs.
func TestSimDeterministic(t *testing.T) {
	cfg := arch.DefaultConfig()
	s, _ := New(cfg, energy.DefaultCostParams())
	m, _ := bnn.NewModel("CNN-S", 1)
	c, err := compiler.Compile(m, cfg, arch.EinsteinBarrier)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := s.Run(c)
	r2, _ := s.Run(c)
	if r1.LatencyNs != r2.LatencyNs || r1.EnergyPJ() != r2.EnergyPJ() {
		t.Fatal("simulation not deterministic")
	}
}

// TestEnergyScalesWithADCCost: raising only the ePCM ADC energy must
// raise TacitMap's inference energy and leave EinsteinBarrier's
// untouched — the knob/effect coupling behind Fig. 8's observation 1.
func TestEnergyScalesWithADCCost(t *testing.T) {
	cfg := arch.DefaultConfig()
	m, _ := bnn.NewModel("MLP-S", 1)

	run := func(costs energy.CostParams, d arch.Design) float64 {
		s, err := New(cfg, costs)
		if err != nil {
			t.Fatal(err)
		}
		c, err := compiler.Compile(m, cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return r.EnergyPJ()
	}

	base := energy.DefaultCostParams()
	hot := base
	hot.ADCEPJ *= 10

	if run(hot, arch.TacitEPCM) <= run(base, arch.TacitEPCM) {
		t.Fatal("TacitMap energy must grow with ePCM ADC cost")
	}
	if run(hot, arch.EinsteinBarrier) != run(base, arch.EinsteinBarrier) {
		t.Fatal("EinsteinBarrier must not depend on the ePCM ADC cost")
	}
}

// TestLatencyScalesWithRowStep: the baseline, and only the baseline,
// tracks the PCSA row-step time.
func TestLatencyScalesWithRowStep(t *testing.T) {
	cfg := arch.DefaultConfig()
	m, _ := bnn.NewModel("MLP-S", 1)
	run := func(costs energy.CostParams, d arch.Design) float64 {
		s, _ := New(cfg, costs)
		c, err := compiler.Compile(m, cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return r.LatencyNs
	}
	base := energy.DefaultCostParams()
	slow := base
	slow.RowStepNs *= 4
	if run(slow, arch.BaselineEPCM) <= run(base, arch.BaselineEPCM) {
		t.Fatal("baseline latency must track the row-step time")
	}
	if run(slow, arch.TacitEPCM) != run(base, arch.TacitEPCM) {
		t.Fatal("TacitMap latency must not depend on the row-step time")
	}
}
