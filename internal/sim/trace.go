package sim

import (
	"fmt"
	"strconv"

	"einsteinbarrier/internal/trace"
)

// Engine trace instrumentation. EnableTrace attaches a trace.Recorder
// to an engine; every subsequent RunBatch/runSample emits one event per
// stage occupancy interval, per link/chip-port booking on each virtual
// channel, and per completed sample — the schedule the calendar
// (resClock) actually built, not a reconstruction. All emission sites
// sit behind a single nil check, so an untraced run pays one predicted
// branch per stage and zero allocations (pinned by BenchmarkTrace and
// the engine bit-identity test), and tracing never touches the
// floating-point scheduling state, so traced and untraced results are
// bit-identical.
//
// Track scheme (Chrome-trace tids, in registration order):
//
//	samples             one instant per completed sample (host arrival)
//	stage[i] <name>     compute occupancy slices, Seq = sample index
//	fwd link/port …     forward-VC bookings of the anchor→anchor routes
//	bulk link/port …    bulk-VC bookings of the gather/scatter drains
//
// Link-wait is a flow arrow from the stalled stage's track to the first
// resource of the contended route; its duration is exactly the term
// added to BatchResult.LinkWaitNs at the same site, in the same order,
// so summing the flow durations of a trace reproduces LinkWaitNs
// bit-exactly (zero waits are skipped — adding 0.0 is the identity).
// Likewise the per-stage slice durations sum to the stage's busy time
// bit-exactly. TestTraceSumsMatchAggregates pins both.

// engineTrace is the per-engine emission state: the recorder plus the
// pre-registered track ids and interned names, so the hot path does no
// string work.
type engineTrace struct {
	r      *trace.Recorder
	proc   int32
	sample int32   // "samples" track
	stage  []int32 // per-stage compute track
	nm     []int32 // per-stage interned display name

	fwdLink  map[linkKey]int32
	fwdPort  map[int]int32
	bulkLink map[linkKey]int32
	bulkPort map[int]int32

	waitNm  int32 // "link-wait" (forward VC)
	drainNm int32 // "drain-wait" (bulk VC)
	doneNm  int32 // "sample-done"
	seq     int64 // next sample index on this engine's timeline
}

// EnableTrace attaches a recorder to the engine: it registers one
// process (the model on its design), a sample-completion track, one
// track per stage, and one track per interconnect resource the
// compiled routes touch, then arms emission in runSample. Passing nil
// detaches (zero-cost runs again). The registration order is fixed by
// the stage order of the compilation, so exports are deterministic.
func (e *Engine) EnableTrace(r *trace.Recorder) {
	if r == nil {
		e.tr = nil
		return
	}
	et := &engineTrace{
		r:        r,
		fwdLink:  map[linkKey]int32{},
		fwdPort:  map[int]int32{},
		bulkLink: map[linkKey]int32{},
		bulkPort: map[int]int32{},
	}
	et.proc = r.AddProcess(fmt.Sprintf("%s on %v", e.res.ModelName, e.res.Design))
	et.sample = r.AddTrack(et.proc, "samples")
	et.waitNm = r.Intern("link-wait")
	et.drainNm = r.Intern("drain-wait")
	et.doneNm = r.Intern("sample-done")
	for i, st := range e.stages {
		et.stage = append(et.stage, r.AddTrack(et.proc, fmt.Sprintf("stage[%d] %s", i, st.name)))
		et.nm = append(et.nm, r.Intern(st.name))
	}
	addLink := func(m map[linkKey]int32, vc string, l linkKey) {
		if _, ok := m[l]; !ok {
			m[l] = r.AddTrack(et.proc, fmt.Sprintf("%s link n%d:%d->%d", vc, l.node, l.from, l.to))
		}
	}
	addPort := func(m map[int]int32, vc string, p int) {
		if _, ok := m[p]; !ok {
			m[p] = r.AddTrack(et.proc, fmt.Sprintf("%s chip-port n%d", vc, p))
		}
	}
	for _, st := range e.stages {
		for _, l := range st.links {
			addLink(et.fwdLink, "fwd", l)
		}
		for _, p := range st.chipPorts {
			addPort(et.fwdPort, "fwd", p)
		}
		for _, bt := range st.bulk {
			for _, l := range bt.links {
				addLink(et.bulkLink, "bulk", l)
			}
			for _, p := range bt.ports {
				addPort(et.bulkPort, "bulk", p)
			}
		}
	}
	e.tr = et
}

// TraceEnabled reports whether the engine currently records.
func (e *Engine) TraceEnabled() bool { return e.tr != nil }

// TraceEventsPerSample returns how many events one sample emits at
// most — size a recorder ring as B × this (plus slack for metadata) so
// a batch export drops nothing.
func (e *Engine) TraceEventsPerSample() int {
	n := 1 // sample-done instant
	for _, st := range e.stages {
		n += 2 + len(st.links) + len(st.chipPorts) // slice + wait flow + bookings
		for _, bt := range st.bulk {
			n += 1 + len(bt.links) + len(bt.ports) // wait flow + bookings
		}
	}
	return n
}

// traceMeta stamps batch-level metadata onto the recorder after a run.
func (e *Engine) traceMeta(b int, makespan float64) {
	if e.tr == nil {
		return
	}
	r := e.tr.r
	r.SetMeta("model", e.res.ModelName)
	r.SetMeta("design", e.res.Design.String())
	r.SetMeta("batch", strconv.Itoa(b))
	r.SetMeta("makespan_ns", strconv.FormatFloat(makespan, 'g', -1, 64))
	r.SetMeta("fill_latency_ns", strconv.FormatFloat(e.res.LatencyNs, 'g', -1, 64))
	r.SetMeta("link_wait_ns", strconv.FormatFloat(e.linkWaitNs, 'g', -1, 64))
}

// traceStage emits one stage's compute occupancy slice.
func (et *engineTrace) traceStage(si int, seq int64, start, serviceNs float64) {
	et.r.Emit(trace.Event{
		Kind: trace.KindSlice, Track: et.stage[si], Name: et.nm[si],
		Seq: seq, Start: start, Dur: serviceNs,
	})
}

// traceXfer emits one transfer: the contention-wait flow arrow (when
// the booking slipped past ready) and the booked occupancy slice on
// every link and chip port of the route.
func (et *engineTrace) traceXfer(si int, seq int64, ready, booked, serNs, portNs float64,
	links []linkKey, ports []int, linkTrack map[linkKey]int32, portTrack map[int]int32, waitNm int32) {
	if booked > ready {
		dst := int32(0)
		if len(links) > 0 {
			dst = linkTrack[links[0]]
		} else if len(ports) > 0 {
			dst = portTrack[ports[0]]
		}
		et.r.Emit(trace.Event{
			Kind: trace.KindFlow, Track: et.stage[si], Name: waitNm,
			Seq: seq, Start: ready, Dur: booked - ready, A: float64(dst),
		})
	}
	for _, l := range links {
		et.r.Emit(trace.Event{
			Kind: trace.KindSlice, Track: linkTrack[l], Name: et.nm[si],
			Seq: seq, Start: booked, Dur: serNs,
		})
	}
	for _, p := range ports {
		et.r.Emit(trace.Event{
			Kind: trace.KindSlice, Track: portTrack[p], Name: et.nm[si],
			Seq: seq, Start: booked, Dur: portNs,
		})
	}
}

// traceDone emits the sample-completion instant (logits at the host).
func (et *engineTrace) traceDone(seq int64, t float64) {
	et.r.Emit(trace.Event{
		Kind: trace.KindInstant, Track: et.sample, Name: et.doneNm,
		Seq: seq, Start: t,
	})
}

// EnableTrace attaches one recorder to every engine of the set: each
// model keeps its own process/tracks, all interleaved on the shared
// fabric timeline. RunSet records only the co-located pass — the
// isolated baselines run untraced so the export shows one schedule.
func (es *EngineSet) EnableTrace(r *trace.Recorder) {
	for _, e := range es.engines {
		e.EnableTrace(r)
	}
}

// TraceEventsPerSample sums the per-sample event bound over the set's
// engines (one co-located round admits one sample of every model).
func (es *EngineSet) TraceEventsPerSample() int {
	n := 0
	for _, e := range es.engines {
		n += e.TraceEventsPerSample()
	}
	return n
}

// traceMeta stamps set-level metadata after a co-located run.
func (es *EngineSet) traceMeta(out *SetResult) {
	for _, e := range es.engines {
		if e.tr == nil {
			continue
		}
		r := e.tr.r
		r.SetMeta("batch", strconv.Itoa(out.Batch))
		r.SetMeta("colocated_models", strconv.Itoa(len(es.engines)))
		r.SetMeta("makespan_ns", strconv.FormatFloat(out.MakespanNs, 'g', -1, 64))
		r.SetMeta("fairness_jain", strconv.FormatFloat(out.FairnessJain, 'g', -1, 64))
		r.SetMeta("interference_wait_ns", strconv.FormatFloat(out.InterferenceWaitNs, 'g', -1, 64))
		return
	}
}
