package sim

import (
	"fmt"
	"math"
	"sort"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/noc"
)

// Tile-level pipelined batch engine. Run prices ONE inference as a
// serial critical path — the Fig. 7 latency. A spatial architecture
// additionally overlaps consecutive inferences: every SYNC-delimited
// layer section owns its own tiles, so once sample i leaves a section,
// sample i+1 can enter it, and the activations of different samples
// contend for the same NoC links. The Engine models that as a
// discrete-event pipeline: stages are the SYNC sections (service time =
// the section's tile-resident critical path, priced by the exact same
// arithmetic as Run), resources are the tile footprints of the
// compilation's placement IR and the directed mesh links (plus
// chip-egress ports) the transfers traverse. B samples stream through
// in order; the engine reports the fill latency (B = 1, bit-identical
// to Run), the makespan, the achieved throughput, and the analytic
// steady-state bound set by the busiest resource.
//
// Link traffic follows the placement: a stage's output drains from its
// shard tiles to its anchor (gather), crosses the XY route to the next
// stage's anchor — through the chip-egress corner and ChipDistance
// board links when the placement spans chips — and fans out to the
// consumer's tiles (scatter). All of a transfer's links are occupied
// for its serialization time, which is what makes sloppy layouts (and
// co-located neighbours, see engineset.go) measurably slower.
//
// The engine is the inner loop of placement search and online serving,
// so its scheduling state is built for reuse: every interconnect
// resource gets a dense index into one shared span arena (no map
// lookups on the hot path, reset is a length truncation), bookings use
// an append-mostly calendar (samples book in near-monotone order), the
// per-run BatchResults come from an engine-owned pool, and Reprice
// swaps in a new compilation without reconstructing the engine. See
// DESIGN.md "Engine internals".
//
// This goes beyond the paper's latency-only evaluation and is
// documented as an extension in DESIGN.md.

// linkKey identifies one contention resource of the interconnect: a
// directed mesh edge inside one node.
type linkKey struct {
	node     int
	from, to int
}

// bulkXfer is one drain/prefetch transfer of a stage: a gather from a
// shard tile to the stage anchor, or a scatter from the consumer's
// anchor into one of its tiles. Bulk traffic rides its own virtual
// channel (it never head-of-line-blocks the forward activation path)
// but its link occupancy is real: colliding bulk transfers stall the
// drain engines, and a stage whose drain has not finished when the next
// sample's compute wants the tiles is back-pressured.
type bulkXfer struct {
	links []linkKey
	ports []int
	serNs float64
}

// engineStage is one executable pipeline stage. The linkKey/port slices
// name the resources (trace registration, bottleneck attribution); the
// scheduler itself books through the dense indices of the engine's
// binding, never these keys.
type engineStage struct {
	name      string
	serviceNs float64    // tile-resident time per sample (analog+digital+SYNC)
	sendLatNs float64    // head latency of the output transfer
	sendSerNs float64    // per-link serialization occupancy of the transfer
	chipSerNs float64    // chip-port occupancy (0 when the send stays on-node)
	tiles     []int      // global tile footprint owned by the stage
	links     []linkKey  // mesh links of the forward anchor→anchor route
	chipPorts []int      // nodes whose chip ports the forward route occupies
	bulk      []bulkXfer // gather + scatter drain traffic
	conflicts []int      // indices of other stages sharing a tile with this one
}

// busySpan is one booked occupancy of an interconnect resource.
type busySpan struct{ s, e float64 }

// vcCal holds the booking calendars of ONE virtual channel: every
// resource (mesh link or chip port) owns a segment of one shared span
// arena, found by its dense index. Samples are scheduled sequentially
// but their transfers are not in global time order (an early stage of
// sample s+1 fires long before the last stage of sample s), so a scalar
// free-time would serialize transfers that never actually overlap; the
// calendar books the earliest window that is genuinely free.
//
// The arena is sized exactly: each admitted sample books each resource
// perSample[r] times (a static property of the bound stage routes), so
// a run of B samples needs perSample[r]×B spans — carved contiguously
// per resource, no per-booking allocation, and reset is a memclr of the
// fill counters.
type vcCal struct {
	arena     []busySpan
	off       []int // resource → segment start in arena
	segCap    []int // resource → segment capacity (perSample × sized)
	n         []int // resource → spans booked this run
	perSample []int // resource → bookings per admitted sample (all bound engines)
	sized     int   // samples the current layout accommodates
	dirty     bool  // perSample changed since the last layout
}

// grow registers room for resource index r.
func (c *vcCal) grow(r int) {
	for len(c.perSample) <= r {
		c.off = append(c.off, 0)
		c.segCap = append(c.segCap, 0)
		c.n = append(c.n, 0)
		c.perSample = append(c.perSample, 0)
	}
}

// beginCount zeroes the per-sample booking counts ahead of a reseal.
func (c *vcCal) beginCount() {
	clear(c.perSample)
	c.dirty = true
}

// ensure lays the arena out for runs of up to b samples. Layout is
// recomputed only when the booking counts changed (reseal) or b grew;
// the arena reallocates only when the total span count exceeds its
// capacity.
func (c *vcCal) ensure(b int) {
	if !c.dirty && b <= c.sized {
		return
	}
	if b < c.sized {
		b = c.sized // never shrink: RunBatches sweeps reuse one layout
	}
	total := 0
	for r, ps := range c.perSample {
		c.off[r] = total
		c.segCap[r] = ps * b
		total += ps * b
	}
	if total > cap(c.arena) {
		c.arena = make([]busySpan, total)
	} else {
		c.arena = c.arena[:total]
	}
	c.sized = b
	c.dirty = false
}

// reset starts a new run: every calendar becomes empty by truncation.
func (c *vcCal) reset() {
	clear(c.n)
}

// earliestFree returns the first start ≥ tc where resource r is free
// for dur.
func (c *vcCal) earliestFree(r int32, tc, dur float64) float64 {
	seg := c.arena[c.off[r] : c.off[r]+c.n[r]]
	// Binary search for the first span that could overlap [tc, tc+dur).
	lo, hi := 0, len(seg)
	for lo < hi {
		mid := (lo + hi) / 2
		if seg[mid].e <= tc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := tc
	for i := lo; i < len(seg); i++ {
		if seg[i].s >= start+dur {
			break
		}
		if seg[i].e > start {
			start = seg[i].e
		}
	}
	return start
}

// book inserts [start, start+dur) into resource r's calendar. The
// insertion hint is the segment tail: bookings arrive in near-monotone
// start order (sample after sample), so the common case is a pure
// append; an out-of-order booking (an early-stage transfer of the next
// sample landing before a late-stage one already booked) falls back to
// binary search + shift within the segment.
func (c *vcCal) book(r int32, start, dur float64) {
	o, n := c.off[r], c.n[r]
	if n == c.segCap[r] {
		panic("sim: calendar segment overflow — booking count exceeded the sealed per-sample sizing")
	}
	seg := c.arena[o : o+n]
	if n == 0 || start >= seg[n-1].s {
		c.arena[o+n] = busySpan{s: start, e: start + dur}
		c.n[r] = n + 1
		return
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if seg[mid].s < start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(c.arena[o+lo+1:o+n+1], c.arena[o+lo:o+n])
	c.arena[o+lo] = busySpan{s: start, e: start + dur}
	c.n[r] = n + 1
}

// bookXfer books one transfer on the channel: the earliest window at or
// after ready in which every link and port is simultaneously free.
// Returns the booked start. The fixed point terminates because every
// retry jumps past some already-booked interval.
func (c *vcCal) bookXfer(ready float64, links, ports []int32, serNs, portNs float64) float64 {
	start := ready
	for {
		next := start
		for _, l := range links {
			if f := c.earliestFree(l, next, serNs); f > next {
				next = f
			}
		}
		for _, p := range ports {
			if f := c.earliestFree(p, next, portNs); f > next {
				next = f
			}
		}
		if next == start {
			break
		}
		start = next
	}
	for _, l := range links {
		c.book(l, start, serNs)
	}
	for _, p := range ports {
		c.book(p, start, portNs)
	}
	return start
}

// vcSpace is one virtual channel's resource index space: the maps
// assign each link/chip-port a dense index into the channel's calendar.
// The maps are touched only when a compilation binds (NewEngine,
// Reprice, Swap), never on the scheduling hot path; indices are sticky,
// so rebinding a different placement reuses the space and only new
// resources register.
type vcSpace struct {
	linkIdx map[linkKey]int32
	chipIdx map[int]int32
	cal     vcCal
}

func (v *vcSpace) init() {
	v.linkIdx = map[linkKey]int32{}
	v.chipIdx = map[int]int32{}
}

func (v *vcSpace) linkID(k linkKey) int32 {
	if id, ok := v.linkIdx[k]; ok {
		return id
	}
	id := int32(len(v.linkIdx) + len(v.chipIdx))
	v.linkIdx[k] = id
	v.cal.grow(int(id))
	return id
}

func (v *vcSpace) chipID(n int) int32 {
	if id, ok := v.chipIdx[n]; ok {
		return id
	}
	id := int32(len(v.linkIdx) + len(v.chipIdx))
	v.chipIdx[n] = id
	v.cal.grow(int(id))
	return id
}

// fabricClock is the shared booking state of the interconnect: the
// forward activation channel (anchor→anchor routes, gates sample
// progress) and the bulk channel (gather/scatter drain traffic,
// occupancy + back-pressure only). Each Engine owns one for isolated
// runs; an EngineSet hands the same clock to every co-located engine.
type fabricClock struct {
	fwd  vcSpace
	bulk vcSpace
}

func newFabricClock() *fabricClock {
	f := &fabricClock{}
	f.fwd.init()
	f.bulk.init()
	return f
}

func (f *fabricClock) reset() {
	f.fwd.cal.reset()
	f.bulk.cal.reset()
}

// ensure sizes both channels' arenas for runs of up to b samples.
func (f *fabricClock) ensure(b int) {
	f.fwd.cal.ensure(b)
	f.bulk.cal.ensure(b)
}

// seal recomputes the per-sample booking counts from the given bindings
// (every engine bound to this clock must be listed — each admitted
// sample of each engine books its stage routes exactly once).
func (f *fabricClock) seal(binds ...*binding) {
	f.fwd.cal.beginCount()
	f.bulk.cal.beginCount()
	for _, bd := range binds {
		for i := range bd.st {
			bs := &bd.st[i]
			for _, l := range bs.fwdLinks {
				f.fwd.cal.perSample[l]++
			}
			for _, p := range bs.fwdPorts {
				f.fwd.cal.perSample[p]++
			}
			for bi := range bs.bulk {
				bx := &bs.bulk[bi]
				for _, l := range bx.links {
					f.bulk.cal.perSample[l]++
				}
				for _, p := range bx.ports {
					f.bulk.cal.perSample[p]++
				}
			}
		}
	}
}

// boundXfer is one bulk transfer resolved to dense calendar indices.
type boundXfer struct {
	links []int32
	ports []int32
	serNs float64
}

// boundStage is one stage's routes resolved against a fabric clock.
type boundStage struct {
	fwdLinks []int32
	fwdPorts []int32
	bulk     []boundXfer
}

// binding resolves an engine's stage routes to the dense resource
// indices of one fabric clock. An engine always carries a binding to
// its private clock; an EngineSet additionally binds every member to
// the shared clock. Bindings are rebuilt (in place, allocation-reusing)
// whenever the compilation or the clock changes.
type binding struct {
	fb *fabricClock
	st []boundStage
}

// bindTo resolves the engine's routes against fb into bd, reusing bd's
// slices.
func (e *Engine) bindTo(fb *fabricClock, bd *binding) {
	bd.fb = fb
	if cap(bd.st) < len(e.stages) {
		st := make([]boundStage, len(e.stages))
		copy(st, bd.st)
		bd.st = st
	} else {
		bd.st = bd.st[:len(e.stages)]
	}
	for i := range e.stages {
		st := &e.stages[i]
		bs := &bd.st[i]
		bs.fwdLinks = bs.fwdLinks[:0]
		bs.fwdPorts = bs.fwdPorts[:0]
		for _, k := range st.links {
			bs.fwdLinks = append(bs.fwdLinks, fb.fwd.linkID(k))
		}
		for _, p := range st.chipPorts {
			bs.fwdPorts = append(bs.fwdPorts, fb.fwd.chipID(p))
		}
		if cap(bs.bulk) < len(st.bulk) {
			bk := make([]boundXfer, len(st.bulk))
			copy(bk, bs.bulk)
			bs.bulk = bk
		} else {
			bs.bulk = bs.bulk[:len(st.bulk)]
		}
		for bi := range st.bulk {
			bt := &st.bulk[bi]
			bx := &bs.bulk[bi]
			bx.links = bx.links[:0]
			bx.ports = bx.ports[:0]
			for _, k := range bt.links {
				bx.links = append(bx.links, fb.bulk.linkID(k))
			}
			for _, p := range bt.ports {
				bx.ports = append(bx.ports, fb.bulk.chipID(p))
			}
			bx.serNs = bt.serNs
		}
	}
}

// Engine schedules batches of inferences over the pipeline of one
// compiled model. Build one with NewEngine; re-target it with Reprice.
// An Engine carries internal scratch, so concurrent RunBatch calls need
// one Engine per caller. Results returned by RunBatch/RunBatches are
// engine-owned and recycled by the next run (or Reprice) — callers that
// retain one across runs must Clone it.
type Engine struct {
	sim       *Simulator
	res       *Result
	stages    []engineStage
	mesh      noc.Config
	placement *compiler.Placement
	fb        *fabricClock // private clock for isolated runs
	priv      binding      // this engine's binding to fb
	// scratch reused across RunBatch calls.
	tileFree   []float64
	busyNs     []float64
	drainReady []float64 // when each stage's previous drain completes
	// cursor state for the incremental sample scheduler.
	linkWaitNs float64
	// result pool: snapshot hands out recycled BatchResults so a
	// steady-state RunBatch allocates nothing.
	results   []*BatchResult
	resUsed   int
	bsScratch [1]int
	brScratch [1]*BatchResult
	// construction scratch reused across Reprice calls.
	lb          *linkBuilder
	tileScratch map[int]bool
	// steady-state bottleneck, precomputed at configure time (static
	// per compilation) so snapshot stays allocation-free.
	bneckNs   float64
	bneckName string
	// tr is the optional trace emission state (trace.go); nil when
	// tracing is disabled, which keeps runSample branch-cheap.
	tr *engineTrace
}

// NewEngine lowers a compiled model into pipeline stages. The embedded
// single-inference Result is priced by the same pass Run uses, so
// Latency/Energy/Counters are bit-identical to the serial simulator.
func (s *Simulator) NewEngine(c *compiler.Compiled) (*Engine, error) {
	e := &Engine{sim: s, fb: newFabricClock()}
	if err := e.configure(c); err != nil {
		return nil, err
	}
	return e, nil
}

// Reprice re-targets the engine at a new compilation, reusing the stage
// slices, calendars and result pool — the cheap path for evaluators
// that price many candidates of the same model. The engine behaves
// bit-identically to a fresh NewEngine on the same compilation (pinned
// by TestRepriceMatchesNewEngine). Tracing is detached (the registered
// tracks belong to the old compilation); on error the engine is left in
// an undefined state and must be discarded.
func (e *Engine) Reprice(c *compiler.Compiled) error {
	e.tr = nil
	return e.configure(c)
}

// configure (re)builds the engine's stages, routes, binding and scratch
// from a compilation, reusing prior allocations where shapes allow.
func (e *Engine) configure(c *compiler.Compiled) error {
	s := e.sim
	res, costs, err := s.price(c)
	if err != nil {
		return err
	}
	spec, err := c.Design.Spec()
	if err != nil {
		return err
	}
	cfg := spec.EffectiveArch(s.cfg)
	mesh, err := s.designMesh(spec, cfg)
	if err != nil {
		return err
	}
	if len(costs) == 0 {
		return fmt.Errorf("sim: program has no pipeline stages")
	}
	pl := c.Placement
	if pl == nil {
		// Pre-placement-IR compilations: derive the legacy greedy layout
		// from the allocation.
		if pl, err = fallbackPlacement(c, cfg); err != nil {
			return err
		}
	}
	if err := pl.Validate(cfg); err != nil {
		return err
	}
	if len(pl.Layers) != len(costs) {
		return fmt.Errorf("sim: %d pipeline stages but %d placed layers", len(costs), len(pl.Layers))
	}
	e.res, e.mesh, e.placement = res, mesh, pl
	if e.lb == nil {
		e.lb = newLinkBuilder(mesh, cfg)
	} else {
		e.lb.mesh, e.lb.cfg = mesh, cfg
	}
	lb := e.lb
	if cap(e.stages) < len(costs) {
		st := make([]engineStage, len(costs))
		copy(st, e.stages)
		e.stages = st
	} else {
		e.stages = e.stages[:len(costs)]
	}
	for i, sc := range costs {
		st := &e.stages[i]
		st.name = sc.name
		st.serviceNs = sc.serviceNs
		st.sendLatNs = sc.sendLatNs
		st.sendSerNs, st.chipSerNs = 0, 0
		st.tiles = pl.GlobalTiles(i, cfg)
		st.links = st.links[:0]
		st.chipPorts = st.chipPorts[:0]
		st.bulk = st.bulk[:0]
		st.conflicts = st.conflicts[:0]
		if sc.sendBytes > 0 {
			st.sendSerNs = mesh.SerializationNs(sc.sendBytes)
			st.chipSerNs = mesh.ChipHopNs
			srcChip, srcTile := pl.Layers[i].Anchor()
			// Forward route: anchor to the consumer's anchor (or the host
			// through the egress corner after the last stage).
			lb.reset()
			dstChip, dstTile := -1, 0
			if i+1 < len(costs) {
				dstChip, dstTile = pl.Layers[i+1].Anchor()
			}
			if err := lb.addRoute(srcChip, srcTile, dstChip, dstTile); err != nil {
				return err
			}
			st.links = append(st.links, lb.links...)
			st.chipPorts = append(st.chipPorts, lb.ports...)
			// Bulk drain traffic: one gather per non-anchor tile of this
			// stage (each carries its slice of the output) and one
			// scatter per tile of the consumer (the activation is
			// broadcast — every consumer tile needs the full input).
			nTiles := len(st.tiles)
			gatherSer := mesh.SerializationNs((sc.sendBytes + int64(nTiles) - 1) / int64(nTiles))
			addBulk := func(sc2, st2, dc, dt int, ser float64) error {
				lb.reset()
				if err := lb.addRoute(sc2, st2, dc, dt); err != nil {
					return err
				}
				if len(lb.links)+len(lb.ports) == 0 {
					return nil
				}
				n := len(st.bulk)
				if n < cap(st.bulk) {
					st.bulk = st.bulk[:n+1]
				} else {
					st.bulk = append(st.bulk, bulkXfer{})
				}
				bx := &st.bulk[n]
				bx.links = append(bx.links[:0], lb.links...)
				bx.ports = append(bx.ports[:0], lb.ports...)
				bx.serNs = ser
				return nil
			}
			for _, sh := range pl.Layers[i].Shards {
				for _, t := range sh.Tiles {
					if sh.Chip == srcChip && t == srcTile {
						continue
					}
					if err := addBulk(sh.Chip, t, srcChip, srcTile, gatherSer); err != nil {
						return err
					}
				}
			}
			if i+1 < len(costs) {
				for _, sh := range pl.Layers[i+1].Shards {
					for _, t := range sh.Tiles {
						if sh.Chip == dstChip && t == dstTile {
							continue
						}
						if err := addBulk(dstChip, dstTile, sh.Chip, t, st.sendSerNs); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	// Stages whose tile footprints overlap (the greedy allocator packs
	// layer boundaries into shared tiles) cannot compute concurrently.
	if e.tileScratch == nil {
		e.tileScratch = map[int]bool{}
	}
	for i := range e.stages {
		clear(e.tileScratch)
		for _, t := range e.stages[i].tiles {
			e.tileScratch[t] = true
		}
		for j := range e.stages {
			if i == j {
				continue
			}
			for _, t := range e.stages[j].tiles {
				if e.tileScratch[t] {
					e.stages[i].conflicts = append(e.stages[i].conflicts, j)
					break
				}
			}
		}
	}
	e.tileFree = growF64(e.tileFree, len(e.stages))
	e.busyNs = growF64(e.busyNs, len(e.stages))
	e.drainReady = growF64(e.drainReady, len(e.stages))
	e.bindTo(e.fb, &e.priv)
	e.fb.seal(&e.priv)
	// The steady-state bottleneck is a static property of the stages and
	// routes; computing it here keeps snapshot allocation-free.
	e.bneckNs, e.bneckName = e.bottleneck()
	return nil
}

// growF64 resizes a scratch slice to n, reusing capacity.
func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// fallbackPlacement reconstructs the greedy layout from a compilation's
// allocation, for Compileds built without the placement IR.
func fallbackPlacement(c *compiler.Compiled, cfg arch.Config) (*compiler.Placement, error) {
	var demands []compiler.LayerDemand
	for _, a := range c.Allocs {
		if a.Kind == "shape" {
			continue
		}
		demands = append(demands, compiler.LayerDemand{Name: a.Name, VCores: a.VCores, Bytes: 1})
	}
	return compiler.GreedyPlacer{}.Place(demands, cfg, compiler.FullFabric(cfg))
}

// linkBuilder accumulates the deduplicated link and chip-port sets of
// one stage's transfers, in first-seen order for determinism. One
// builder is reused across all of an engine's routes (reset between
// transfers).
type linkBuilder struct {
	mesh  noc.Config
	cfg   arch.Config
	links []linkKey
	ports []int
	seenL map[linkKey]bool
	seenP map[int]bool
}

func newLinkBuilder(mesh noc.Config, cfg arch.Config) *linkBuilder {
	return &linkBuilder{mesh: mesh, cfg: cfg, seenL: map[linkKey]bool{}, seenP: map[int]bool{}}
}

func (lb *linkBuilder) reset() {
	clear(lb.seenL)
	clear(lb.seenP)
	lb.links = lb.links[:0]
	lb.ports = lb.ports[:0]
}

func (lb *linkBuilder) addLinks(node int, route []noc.Link) {
	for _, l := range route {
		k := linkKey{node: node, from: l.From, to: l.To}
		if !lb.seenL[k] {
			lb.seenL[k] = true
			lb.links = append(lb.links, k)
		}
	}
}

func (lb *linkBuilder) addPort(node int) {
	if !lb.seenP[node] {
		lb.seenP[node] = true
		lb.ports = append(lb.ports, node)
	}
}

// addRoute adds the links of one transfer. dstChip -1 means the host:
// the transfer drains to the source chip's egress corner and out its
// port.
func (lb *linkBuilder) addRoute(srcChip, srcTile, dstChip, dstTile int) error {
	if srcChip == dstChip {
		route, err := lb.mesh.RouteXY(srcTile, dstTile)
		if err != nil {
			return err
		}
		lb.addLinks(srcChip, route)
		return nil
	}
	out, err := lb.mesh.RouteXY(srcTile, lb.mesh.EgressTile())
	if err != nil {
		return err
	}
	lb.addLinks(srcChip, out)
	lb.addPort(srcChip)
	if dstChip < 0 {
		return nil
	}
	lb.addPort(dstChip)
	in, err := lb.mesh.RouteXY(lb.mesh.EgressTile(), dstTile)
	if err != nil {
		return err
	}
	lb.addLinks(dstChip, in)
	return nil
}

// Result returns the embedded single-inference pricing (bit-identical
// to Simulator.Run on the same compilation).
func (e *Engine) Result() *Result { return e.res }

// StageCount returns the pipeline depth.
func (e *Engine) StageCount() int { return len(e.stages) }

// StageOccupancy is one stage's utilization in a batch run.
type StageOccupancy struct {
	Name      string
	ServiceNs float64 // per-sample tile-resident service time
	SendNs    float64 // per-sample transfer head latency
	Tiles     int     // tile footprint owned by the stage
	Busy      float64 // fraction of the makespan the stage's tiles are busy
}

// BatchResult is the outcome of streaming a batch through the pipeline.
type BatchResult struct {
	// ModelName, Design and Batch echo the inputs.
	ModelName string
	Design    arch.Design
	Batch     int
	// LatencyNs is the single-inference critical path — identical to
	// Simulator.Run (and to the Fig. 7 series) by construction.
	LatencyNs float64
	// MakespanNs is when the last sample's logits reach the host.
	MakespanNs float64
	// ThroughputPerSec is Batch / Makespan.
	ThroughputPerSec float64
	// SteadyStatePerSec is the analytic throughput ceiling: the busiest
	// resource (tile footprint, mesh link or chip port) bounds the
	// per-sample interval at saturation.
	SteadyStatePerSec float64
	// BottleneckName names that resource.
	BottleneckName string
	// BottleneckNs is its per-sample busy time.
	BottleneckNs float64
	// LinkWaitNs is the total time samples stalled on busy NoC links —
	// the contention the serial simulator cannot see.
	LinkWaitNs float64
	// EnergyPJPerInference is the per-sample energy (batch-invariant:
	// optical power is duty-cycled per activation).
	EnergyPJPerInference float64
	// Stages is the per-stage utilization.
	Stages []StageOccupancy
}

// Clone deep-copies a result. RunBatch/RunBatches results are
// engine-owned and recycled by the engine's next run; callers that
// retain one past that point (caches, reports) must keep a Clone.
func (br *BatchResult) Clone() *BatchResult {
	cp := *br
	cp.Stages = append([]StageOccupancy(nil), br.Stages...)
	return &cp
}

// resetLocal clears the engine-owned scheduling state (tile clocks,
// busy accounting, drain back-pressure); the fabric clock is reset by
// whoever owns it — the engine itself for isolated runs, the EngineSet
// for co-located ones.
func (e *Engine) resetLocal() {
	for i := range e.tileFree {
		e.tileFree[i] = 0
		e.busyNs[i] = 0
		e.drainReady[i] = 0
	}
	e.linkWaitNs = 0
	if e.tr != nil {
		e.tr.seq = 0
	}
}

// runSample schedules one sample through every stage against the given
// binding's fabric clock and returns its completion time. Deterministic
// greedy list scheduling: the forward transfer books the earliest
// window in which every link and chip port on its route is
// simultaneously free; bulk drain traffic books on its own channel and
// back-pressures the stage's next sample instead of blocking this one.
func (e *Engine) runSample(bd *binding) float64 {
	t := 0.0 // completion time of the previous stage for this sample
	fwd := &bd.fb.fwd.cal
	bulk := &bd.fb.bulk.cal
	tr := e.tr
	var seq int64
	if tr != nil {
		seq = tr.seq
		tr.seq++
	}
	for si := range e.stages {
		st := &e.stages[si]
		bs := &bd.st[si]
		// Back-pressure: the tiles' drain of the previous sample must
		// finish before they take the next one.
		start := math.Max(math.Max(t, e.tileFree[si]), e.drainReady[si])
		for _, cj := range st.conflicts {
			start = math.Max(start, e.tileFree[cj])
		}
		computeDone := start + st.serviceNs
		e.tileFree[si] = computeDone
		e.busyNs[si] += st.serviceNs
		if tr != nil {
			tr.traceStage(si, seq, start, st.serviceNs)
		}
		sendStart := computeDone
		if len(bs.fwdLinks)+len(bs.fwdPorts) > 0 {
			sendStart = fwd.bookXfer(computeDone, bs.fwdLinks, bs.fwdPorts, st.sendSerNs, st.chipSerNs)
			if tr != nil {
				tr.traceXfer(si, seq, computeDone, sendStart, st.sendSerNs, st.chipSerNs,
					st.links, st.chipPorts, tr.fwdLink, tr.fwdPort, tr.waitNm)
			}
		}
		e.linkWaitNs += sendStart - computeDone
		drainEnd := computeDone
		for bi := range bs.bulk {
			bx := &bs.bulk[bi]
			bsStart := bulk.bookXfer(computeDone, bx.links, bx.ports, bx.serNs, st.chipSerNs)
			e.linkWaitNs += bsStart - computeDone
			drainEnd = math.Max(drainEnd, bsStart+bx.serNs)
			if tr != nil {
				bt := &st.bulk[bi]
				tr.traceXfer(si, seq, computeDone, bsStart, bt.serNs, st.chipSerNs,
					bt.links, bt.ports, tr.bulkLink, tr.bulkPort, tr.drainNm)
			}
		}
		e.drainReady[si] = drainEnd
		t = sendStart + st.sendLatNs
	}
	if tr != nil {
		tr.traceDone(seq, t)
	}
	return t
}

// takeResult hands out the next pooled BatchResult of the current run.
func (e *Engine) takeResult() *BatchResult {
	if e.resUsed < len(e.results) {
		r := e.results[e.resUsed]
		e.resUsed++
		return r
	}
	r := &BatchResult{}
	e.results = append(e.results, r)
	e.resUsed++
	return r
}

// snapshot assembles a BatchResult for the first b samples of the
// current run (makespan = completion time of sample b-1). The result
// comes from the engine's pool: valid until the next run.
func (e *Engine) snapshot(b int, makespan float64) *BatchResult {
	out := e.takeResult()
	out.ModelName = e.res.ModelName
	out.Design = e.res.Design
	out.Batch = b
	out.LatencyNs = e.res.LatencyNs
	out.MakespanNs = makespan
	out.ThroughputPerSec = float64(b) * 1e9 / makespan
	out.LinkWaitNs = e.linkWaitNs
	out.EnergyPJPerInference = e.res.EnergyPJ()
	out.BottleneckNs, out.BottleneckName = e.bneckNs, e.bneckName
	out.SteadyStatePerSec = 1e9 / out.BottleneckNs
	out.Stages = out.Stages[:0]
	for si := range e.stages {
		st := &e.stages[si]
		out.Stages = append(out.Stages, StageOccupancy{
			Name:      st.name,
			ServiceNs: st.serviceNs,
			SendNs:    st.sendLatNs,
			Tiles:     len(st.tiles),
			Busy:      e.busyNs[si] / makespan,
		})
	}
	return out
}

// RunBatch streams a batch of b inferences through the pipeline and
// returns the timing report. Deterministic: same engine, same b, same
// result. The result is engine-owned (recycled by the next run); Clone
// it to retain. Steady-state RunBatch performs zero allocations
// (pinned by TestRunBatchZeroAlloc).
func (e *Engine) RunBatch(b int) (*BatchResult, error) {
	e.bsScratch[0] = b
	e.brScratch[0] = nil
	if err := e.runBatches(e.bsScratch[:], e.brScratch[:]); err != nil {
		return nil, err
	}
	return e.brScratch[0], nil
}

// RunBatches sweeps several batch sizes in ONE schedule pass: the
// scheduler is incremental in the sample index, so the b-sample result
// is a snapshot of the maxB-sample run after sample b. Results are
// bit-identical to calling RunBatch per size (pinned by tests) at a
// fraction of the cost — the throughput sweep used to re-run the whole
// schedule per batch size. Results are engine-owned; Clone to retain
// past the next run.
func (e *Engine) RunBatches(bs []int) ([]*BatchResult, error) {
	out := make([]*BatchResult, len(bs))
	if err := e.runBatches(bs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// runBatches is the shared scheduling core: out[i] receives the
// snapshot after bs[i] samples (duplicated sizes share one snapshot).
func (e *Engine) runBatches(bs []int, out []*BatchResult) error {
	if len(bs) == 0 {
		return fmt.Errorf("sim: no batch sizes given")
	}
	maxB := 0
	for _, b := range bs {
		if b < 1 {
			return fmt.Errorf("sim: batch size %d must be ≥ 1", b)
		}
		maxB = max(maxB, b)
	}
	e.resUsed = 0
	e.resetLocal()
	e.fb.ensure(maxB)
	e.fb.reset()
	for sample := 0; sample < maxB; sample++ {
		t := e.runSample(&e.priv)
		var snap *BatchResult
		for i, b := range bs {
			if b != sample+1 {
				continue
			}
			if snap == nil {
				snap = e.snapshot(b, t)
				e.traceMeta(b, t)
			}
			out[i] = snap
		}
	}
	return nil
}

// bottleneck finds the resource with the largest per-sample busy time:
// the steady-state inter-departure interval of the saturated pipeline.
// Deterministic: ties resolve to the earliest stage/resource.
func (e *Engine) bottleneck() (ns float64, name string) {
	// Tile busy: stages sharing a tile cannot compute concurrently, so
	// the max per-tile service sum is the serialization bound.
	tileBusy := map[int]float64{}
	maxTile := 0
	for _, st := range e.stages {
		for _, t := range st.tiles {
			tileBusy[t] += st.serviceNs
			maxTile = max(maxTile, t)
		}
	}
	bneckTile := -1
	for t := 0; t <= maxTile; t++ {
		if busy, ok := tileBusy[t]; ok && busy > ns {
			ns, bneckTile = busy, t
		}
	}
	if bneckTile >= 0 {
		// Name the heaviest stage occupying the bottleneck tile.
		heaviest := -1.0
		for _, st := range e.stages {
			for _, t := range st.tiles {
				if t == bneckTile && st.serviceNs > heaviest {
					heaviest, name = st.serviceNs, st.name
				}
			}
		}
	}
	// Mesh links and chip ports: transfers crossing the same edge
	// serialize (per virtual channel — forward and bulk traffic are
	// tracked separately, matching the scheduler). Accumulate in
	// first-seen order for determinism.
	// Ports are booked per channel in the scheduler (fwd and bulk have
	// independent calendars), so their busy sums must stay separate too
	// — merging them would report a "ceiling" below what the schedule
	// actually sustains.
	linkBusy := map[linkKey]float64{}
	chipBusy := map[int]float64{}
	bulkBusy := map[linkKey]float64{}
	bulkChipBusy := map[int]float64{}
	var linkOrder, bulkOrder []linkKey
	var chipOrder, bulkChipOrder []int
	for _, st := range e.stages {
		for _, l := range st.links {
			if _, seen := linkBusy[l]; !seen {
				linkOrder = append(linkOrder, l)
			}
			linkBusy[l] += st.sendSerNs
		}
		for _, p := range st.chipPorts {
			if _, seen := chipBusy[p]; !seen {
				chipOrder = append(chipOrder, p)
			}
			chipBusy[p] += st.chipSerNs
		}
		for _, bt := range st.bulk {
			for _, l := range bt.links {
				if _, seen := bulkBusy[l]; !seen {
					bulkOrder = append(bulkOrder, l)
				}
				bulkBusy[l] += bt.serNs
			}
			for _, p := range bt.ports {
				if _, seen := bulkChipBusy[p]; !seen {
					bulkChipOrder = append(bulkChipOrder, p)
				}
				bulkChipBusy[p] += st.chipSerNs
			}
		}
	}
	for _, l := range bulkOrder {
		if busy := bulkBusy[l]; busy > ns {
			ns, name = busy, fmt.Sprintf("bulk-link n%d:%d->%d", l.node, l.from, l.to)
		}
	}
	for _, l := range linkOrder {
		if busy := linkBusy[l]; busy > ns {
			ns, name = busy, fmt.Sprintf("link n%d:%d->%d", l.node, l.from, l.to)
		}
	}
	for _, n := range chipOrder {
		if busy := chipBusy[n]; busy > ns {
			ns, name = busy, fmt.Sprintf("chip-port n%d", n)
		}
	}
	for _, n := range bulkChipOrder {
		if busy := bulkChipBusy[n]; busy > ns {
			ns, name = busy, fmt.Sprintf("bulk-chip-port n%d", n)
		}
	}
	return ns, name
}

// tileSet returns the engine's global tile footprint, sorted (the
// EngineSet disjointness check).
func (e *Engine) tileSet() []int {
	seen := map[int]bool{}
	for _, st := range e.stages {
		for _, t := range st.tiles {
			seen[t] = true
		}
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
