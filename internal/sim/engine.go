package sim

import (
	"fmt"
	"math"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/noc"
)

// Tile-level pipelined batch engine. Run prices ONE inference as a
// serial critical path — the Fig. 7 latency. A spatial architecture
// additionally overlaps consecutive inferences: every SYNC-delimited
// layer section owns its own tiles, so once sample i leaves a section,
// sample i+1 can enter it, and the activations of different samples
// contend for the same NoC links. The Engine models that as a
// discrete-event pipeline: stages are the SYNC sections (service time =
// the section's tile-resident critical path, priced by the exact same
// arithmetic as Run), resources are the tile spans the compiler
// allocated and the directed mesh links (plus chip-egress ports) the
// inter-stage transfers traverse. B samples stream through in order;
// the engine reports the fill latency (B = 1, bit-identical to Run),
// the makespan, the achieved throughput, and the analytic steady-state
// bound set by the busiest resource.
//
// This goes beyond the paper's latency-only evaluation and is
// documented as an extension in DESIGN.md.

// linkKey identifies one contention resource of the interconnect: a
// directed mesh edge inside one node.
type linkKey struct {
	node     int
	from, to int
}

// engineStage is one executable pipeline stage.
type engineStage struct {
	name      string
	serviceNs float64 // tile-resident time per sample (analog+digital+SYNC)
	sendLatNs float64 // head latency of the output transfer
	sendSerNs float64 // per-link serialization occupancy of the transfer
	chipSerNs float64 // chip-egress occupancy (0 when the send stays on-node)
	firstTile int     // global tile span owned by the stage
	lastTile  int
	links     []linkKey // mesh links of the XY route to the next stage
	chipNode  int       // node whose chip-egress port the send uses, -1 if none
	conflicts []int     // indices of other stages sharing a tile with this one
}

// Engine schedules batches of inferences over the pipeline of one
// compiled model. Build one with NewEngine; an Engine is immutable
// after construction and safe for concurrent RunBatch calls only if
// each caller uses its own Engine (RunBatch carries internal scratch).
type Engine struct {
	res    *Result
	stages []engineStage
	mesh   noc.Config
	// scratch reused across RunBatch calls.
	tileFree []float64
	linkFree map[linkKey]float64
	chipFree map[int]float64
	busyNs   []float64
}

// NewEngine lowers a compiled model into pipeline stages. The embedded
// single-inference Result is priced by the same pass Run uses, so
// Latency/Energy/Counters are bit-identical to the serial simulator.
func (s *Simulator) NewEngine(c *compiler.Compiled) (*Engine, error) {
	res, costs, err := s.price(c)
	if err != nil {
		return nil, err
	}
	spec, err := c.Design.Spec()
	if err != nil {
		return nil, err
	}
	cfg := spec.EffectiveArch(s.cfg)
	mesh, err := s.designMesh(spec, cfg)
	if err != nil {
		return nil, err
	}
	if len(costs) == 0 {
		return nil, fmt.Errorf("sim: program has no pipeline stages")
	}
	// Tile spans come from the compiler's allocation: the i-th stage is
	// the i-th VCore-owning layer (shape layers fuse into their
	// producer and own no section).
	spans := make([]compiler.LayerAlloc, 0, len(costs))
	for _, a := range c.Allocs {
		if a.Kind == "shape" {
			continue
		}
		spans = append(spans, a)
	}
	if len(spans) != len(costs) {
		return nil, fmt.Errorf("sim: %d pipeline stages but %d placed layers", len(costs), len(spans))
	}
	vcoresPerTile := cfg.ECoresPerTile * cfg.VCoresPerECore
	e := &Engine{res: res, mesh: mesh,
		linkFree: make(map[linkKey]float64), chipFree: make(map[int]float64)}
	e.stages = make([]engineStage, len(costs))
	for i, sc := range costs {
		a := spans[i]
		first := a.FirstVCore / vcoresPerTile
		last := first
		if a.VCores > 0 {
			last = (a.FirstVCore + a.VCores - 1) / vcoresPerTile
		}
		st := engineStage{
			name:      sc.name,
			serviceNs: sc.serviceNs,
			sendLatNs: sc.sendLatNs,
			firstTile: first,
			lastTile:  last,
			chipNode:  -1,
		}
		if sc.sendBytes > 0 {
			st.sendSerNs = mesh.SerializationNs(sc.sendBytes)
			srcNode, srcTile := first/cfg.TilesPerNode, first%cfg.TilesPerNode
			if i+1 < len(costs) {
				dstFirst := spans[i+1].FirstVCore / vcoresPerTile
				dstNode, dstTile := dstFirst/cfg.TilesPerNode, dstFirst%cfg.TilesPerNode
				links, err := mesh.RouteXY(srcTile, dstTile)
				if err != nil {
					return nil, err
				}
				for _, l := range links {
					st.links = append(st.links, linkKey{node: srcNode, from: l.From, to: l.To})
				}
				if dstNode != srcNode {
					st.chipNode = srcNode
					st.chipSerNs = mesh.ChipHopNs
				}
			} else {
				// The last stage delivers logits to the host through its
				// node's chip-egress port.
				st.chipNode = srcNode
				st.chipSerNs = mesh.ChipHopNs
			}
		}
		e.stages[i] = st
	}
	// Stages whose tile spans overlap (the linear allocator packs layer
	// boundaries into shared tiles) cannot compute concurrently.
	for i := range e.stages {
		for j := range e.stages {
			if i == j {
				continue
			}
			if e.stages[i].firstTile <= e.stages[j].lastTile &&
				e.stages[j].firstTile <= e.stages[i].lastTile {
				e.stages[i].conflicts = append(e.stages[i].conflicts, j)
			}
		}
	}
	e.tileFree = make([]float64, len(e.stages))
	e.busyNs = make([]float64, len(e.stages))
	return e, nil
}

// Result returns the embedded single-inference pricing (bit-identical
// to Simulator.Run on the same compilation).
func (e *Engine) Result() *Result { return e.res }

// StageCount returns the pipeline depth.
func (e *Engine) StageCount() int { return len(e.stages) }

// StageOccupancy is one stage's utilization in a batch run.
type StageOccupancy struct {
	Name      string
	ServiceNs float64 // per-sample tile-resident service time
	SendNs    float64 // per-sample transfer head latency
	Tiles     int     // tile span owned by the stage
	Busy      float64 // fraction of the makespan the stage's tiles are busy
}

// BatchResult is the outcome of streaming a batch through the pipeline.
type BatchResult struct {
	// ModelName, Design and Batch echo the inputs.
	ModelName string
	Design    arch.Design
	Batch     int
	// LatencyNs is the single-inference critical path — identical to
	// Simulator.Run (and to the Fig. 7 series) by construction.
	LatencyNs float64
	// MakespanNs is when the last sample's logits reach the host.
	MakespanNs float64
	// ThroughputPerSec is Batch / Makespan.
	ThroughputPerSec float64
	// SteadyStatePerSec is the analytic throughput ceiling: the busiest
	// resource (tile span, mesh link or chip port) bounds the
	// per-sample interval at saturation.
	SteadyStatePerSec float64
	// BottleneckName names that resource.
	BottleneckName string
	// BottleneckNs is its per-sample busy time.
	BottleneckNs float64
	// LinkWaitNs is the total time samples stalled on busy NoC links —
	// the contention the serial simulator cannot see.
	LinkWaitNs float64
	// EnergyPJPerInference is the per-sample energy (batch-invariant:
	// optical power is duty-cycled per activation).
	EnergyPJPerInference float64
	// Stages is the per-stage utilization.
	Stages []StageOccupancy
}

// RunBatch streams a batch of b inferences through the pipeline and
// returns the timing report. Deterministic: same engine, same b, same
// result.
func (e *Engine) RunBatch(b int) (*BatchResult, error) {
	if b < 1 {
		return nil, fmt.Errorf("sim: batch size %d must be ≥ 1", b)
	}
	for i := range e.tileFree {
		e.tileFree[i] = 0
		e.busyNs[i] = 0
	}
	clear(e.linkFree)
	clear(e.chipFree)

	makespan := 0.0
	linkWait := 0.0
	for sample := 0; sample < b; sample++ {
		t := 0.0 // completion time of the previous stage for this sample
		for si := range e.stages {
			st := &e.stages[si]
			start := math.Max(t, e.tileFree[si])
			for _, cj := range st.conflicts {
				start = math.Max(start, e.tileFree[cj])
			}
			computeDone := start + st.serviceNs
			e.tileFree[si] = computeDone
			e.busyNs[si] += st.serviceNs
			sendStart := computeDone
			for _, l := range st.links {
				sendStart = math.Max(sendStart, e.linkFree[l])
			}
			if st.chipNode >= 0 {
				sendStart = math.Max(sendStart, e.chipFree[st.chipNode])
			}
			linkWait += sendStart - computeDone
			for _, l := range st.links {
				e.linkFree[l] = sendStart + st.sendSerNs
			}
			if st.chipNode >= 0 {
				e.chipFree[st.chipNode] = sendStart + st.chipSerNs
			}
			t = sendStart + st.sendLatNs
		}
		makespan = t
	}

	out := &BatchResult{
		ModelName:            e.res.ModelName,
		Design:               e.res.Design,
		Batch:                b,
		LatencyNs:            e.res.LatencyNs,
		MakespanNs:           makespan,
		ThroughputPerSec:     float64(b) * 1e9 / makespan,
		LinkWaitNs:           linkWait,
		EnergyPJPerInference: e.res.EnergyPJ(),
	}
	out.BottleneckNs, out.BottleneckName = e.bottleneck()
	out.SteadyStatePerSec = 1e9 / out.BottleneckNs
	for si, st := range e.stages {
		out.Stages = append(out.Stages, StageOccupancy{
			Name:      st.name,
			ServiceNs: st.serviceNs,
			SendNs:    st.sendLatNs,
			Tiles:     st.lastTile - st.firstTile + 1,
			Busy:      e.busyNs[si] / makespan,
		})
	}
	return out, nil
}

// bottleneck finds the resource with the largest per-sample busy time:
// the steady-state inter-departure interval of the saturated pipeline.
// Deterministic: ties resolve to the earliest stage/resource.
func (e *Engine) bottleneck() (ns float64, name string) {
	// Tile busy: stage spans are intervals over the global tile index,
	// so the max per-tile service sum is the exact serialization bound
	// (intervals that pairwise overlap share a common tile — Helly's
	// theorem in one dimension — and stages sharing a tile cannot
	// compute concurrently).
	tileBusy := map[int]float64{}
	maxTile := 0
	for _, st := range e.stages {
		for t := st.firstTile; t <= st.lastTile; t++ {
			tileBusy[t] += st.serviceNs
		}
		maxTile = max(maxTile, st.lastTile)
	}
	bneckTile := -1
	for t := 0; t <= maxTile; t++ {
		if busy, ok := tileBusy[t]; ok && busy > ns {
			ns, bneckTile = busy, t
		}
	}
	if bneckTile >= 0 {
		// Name the heaviest stage occupying the bottleneck tile.
		heaviest := -1.0
		for _, st := range e.stages {
			if st.firstTile <= bneckTile && bneckTile <= st.lastTile && st.serviceNs > heaviest {
				heaviest, name = st.serviceNs, st.name
			}
		}
	}
	// Mesh links and chip ports: transfers crossing the same edge
	// serialize. Accumulate in first-seen order for determinism.
	linkBusy := map[linkKey]float64{}
	chipBusy := map[int]float64{}
	var linkOrder []linkKey
	var chipOrder []int
	for _, st := range e.stages {
		for _, l := range st.links {
			if _, seen := linkBusy[l]; !seen {
				linkOrder = append(linkOrder, l)
			}
			linkBusy[l] += st.sendSerNs
		}
		if st.chipNode >= 0 {
			if _, seen := chipBusy[st.chipNode]; !seen {
				chipOrder = append(chipOrder, st.chipNode)
			}
			chipBusy[st.chipNode] += st.chipSerNs
		}
	}
	for _, l := range linkOrder {
		if busy := linkBusy[l]; busy > ns {
			ns, name = busy, fmt.Sprintf("link n%d:%d->%d", l.node, l.from, l.to)
		}
	}
	for _, n := range chipOrder {
		if busy := chipBusy[n]; busy > ns {
			ns, name = busy, fmt.Sprintf("chip-egress n%d", n)
		}
	}
	return ns, name
}
