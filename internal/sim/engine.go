package sim

import (
	"fmt"
	"math"
	"sort"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/noc"
)

// Tile-level pipelined batch engine. Run prices ONE inference as a
// serial critical path — the Fig. 7 latency. A spatial architecture
// additionally overlaps consecutive inferences: every SYNC-delimited
// layer section owns its own tiles, so once sample i leaves a section,
// sample i+1 can enter it, and the activations of different samples
// contend for the same NoC links. The Engine models that as a
// discrete-event pipeline: stages are the SYNC sections (service time =
// the section's tile-resident critical path, priced by the exact same
// arithmetic as Run), resources are the tile footprints of the
// compilation's placement IR and the directed mesh links (plus
// chip-egress ports) the transfers traverse. B samples stream through
// in order; the engine reports the fill latency (B = 1, bit-identical
// to Run), the makespan, the achieved throughput, and the analytic
// steady-state bound set by the busiest resource.
//
// Link traffic follows the placement: a stage's output drains from its
// shard tiles to its anchor (gather), crosses the XY route to the next
// stage's anchor — through the chip-egress corner and ChipDistance
// board links when the placement spans chips — and fans out to the
// consumer's tiles (scatter). All of a transfer's links are occupied
// for its serialization time, which is what makes sloppy layouts (and
// co-located neighbours, see engineset.go) measurably slower.
//
// This goes beyond the paper's latency-only evaluation and is
// documented as an extension in DESIGN.md.

// linkKey identifies one contention resource of the interconnect: a
// directed mesh edge inside one node.
type linkKey struct {
	node     int
	from, to int
}

// bulkXfer is one drain/prefetch transfer of a stage: a gather from a
// shard tile to the stage anchor, or a scatter from the consumer's
// anchor into one of its tiles. Bulk traffic rides its own virtual
// channel (it never head-of-line-blocks the forward activation path)
// but its link occupancy is real: colliding bulk transfers stall the
// drain engines, and a stage whose drain has not finished when the next
// sample's compute wants the tiles is back-pressured.
type bulkXfer struct {
	links []linkKey
	ports []int
	serNs float64
}

// engineStage is one executable pipeline stage.
type engineStage struct {
	name      string
	serviceNs float64    // tile-resident time per sample (analog+digital+SYNC)
	sendLatNs float64    // head latency of the output transfer
	sendSerNs float64    // per-link serialization occupancy of the transfer
	chipSerNs float64    // chip-port occupancy (0 when the send stays on-node)
	tiles     []int      // global tile footprint owned by the stage
	links     []linkKey  // mesh links of the forward anchor→anchor route
	chipPorts []int      // nodes whose chip ports the forward route occupies
	bulk      []bulkXfer // gather + scatter drain traffic
	conflicts []int      // indices of other stages sharing a tile with this one
}

// busySpan is one booked occupancy of an interconnect resource.
type busySpan struct{ s, e float64 }

// resClock is the booking calendar of one resource: busy intervals
// sorted by start. Samples are scheduled sequentially but their
// transfers are not in global time order (an early stage of sample s+1
// fires long before the last stage of sample s), so a scalar free-time
// would serialize transfers that never actually overlap; the calendar
// books the earliest window that is genuinely free.
type resClock struct {
	spans []busySpan
}

// earliestFree returns the first start ≥ tc where the resource is free
// for dur.
func (r *resClock) earliestFree(tc, dur float64) float64 {
	// Binary search for the first span that could overlap [tc, tc+dur).
	lo, hi := 0, len(r.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.spans[mid].e <= tc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := tc
	for i := lo; i < len(r.spans); i++ {
		if r.spans[i].s >= start+dur {
			break
		}
		if r.spans[i].e > start {
			start = r.spans[i].e
		}
	}
	return start
}

// book inserts [start, start+dur) into the calendar.
func (r *resClock) book(start, dur float64) {
	lo, hi := 0, len(r.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.spans[mid].s < start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r.spans = append(r.spans, busySpan{})
	copy(r.spans[lo+1:], r.spans[lo:])
	r.spans[lo] = busySpan{s: start, e: start + dur}
}

// vcClock is one virtual channel's booking state: a calendar per link
// and per chip port.
type vcClock struct {
	links map[linkKey]*resClock
	chips map[int]*resClock
}

func newVCClock() *vcClock {
	return &vcClock{links: make(map[linkKey]*resClock), chips: make(map[int]*resClock)}
}

func (f *vcClock) reset() {
	clear(f.links)
	clear(f.chips)
}

func (f *vcClock) link(k linkKey) *resClock {
	r := f.links[k]
	if r == nil {
		r = &resClock{}
		f.links[k] = r
	}
	return r
}

func (f *vcClock) chip(n int) *resClock {
	r := f.chips[n]
	if r == nil {
		r = &resClock{}
		f.chips[n] = r
	}
	return r
}

// bookXfer books one transfer on the channel: the earliest window at or
// after ready in which every link and port is simultaneously free.
// Returns the booked start. The fixed point terminates because every
// retry jumps past some already-booked interval.
func (f *vcClock) bookXfer(ready float64, links []linkKey, ports []int, serNs, portNs float64) float64 {
	start := ready
	for {
		next := start
		for _, l := range links {
			next = math.Max(next, f.link(l).earliestFree(next, serNs))
		}
		for _, p := range ports {
			next = math.Max(next, f.chip(p).earliestFree(next, portNs))
		}
		if next == start {
			break
		}
		start = next
	}
	for _, l := range links {
		f.link(l).book(start, serNs)
	}
	for _, p := range ports {
		f.chip(p).book(start, portNs)
	}
	return start
}

// fabricClock is the shared booking state of the interconnect: the
// forward activation channel (anchor→anchor routes, gates sample
// progress) and the bulk channel (gather/scatter drain traffic,
// occupancy + back-pressure only). Each Engine owns one for isolated
// runs; an EngineSet hands the same clock to every co-located engine.
type fabricClock struct {
	fwd  *vcClock
	bulk *vcClock
}

func newFabricClock() *fabricClock {
	return &fabricClock{fwd: newVCClock(), bulk: newVCClock()}
}

func (f *fabricClock) reset() {
	f.fwd.reset()
	f.bulk.reset()
}

// Engine schedules batches of inferences over the pipeline of one
// compiled model. Build one with NewEngine; an Engine is immutable
// after construction and safe for concurrent RunBatch calls only if
// each caller uses its own Engine (RunBatch carries internal scratch).
type Engine struct {
	res       *Result
	stages    []engineStage
	mesh      noc.Config
	placement *compiler.Placement
	fb        *fabricClock // private clock for isolated runs
	// scratch reused across RunBatch calls.
	tileFree   []float64
	busyNs     []float64
	drainReady []float64 // when each stage's previous drain completes
	// cursor state for the incremental sample scheduler.
	linkWaitNs float64
	// tr is the optional trace emission state (trace.go); nil when
	// tracing is disabled, which keeps runSample branch-cheap.
	tr *engineTrace
}

// NewEngine lowers a compiled model into pipeline stages. The embedded
// single-inference Result is priced by the same pass Run uses, so
// Latency/Energy/Counters are bit-identical to the serial simulator.
func (s *Simulator) NewEngine(c *compiler.Compiled) (*Engine, error) {
	res, costs, err := s.price(c)
	if err != nil {
		return nil, err
	}
	spec, err := c.Design.Spec()
	if err != nil {
		return nil, err
	}
	cfg := spec.EffectiveArch(s.cfg)
	mesh, err := s.designMesh(spec, cfg)
	if err != nil {
		return nil, err
	}
	if len(costs) == 0 {
		return nil, fmt.Errorf("sim: program has no pipeline stages")
	}
	pl := c.Placement
	if pl == nil {
		// Pre-placement-IR compilations: derive the legacy greedy layout
		// from the allocation.
		if pl, err = fallbackPlacement(c, cfg); err != nil {
			return nil, err
		}
	}
	if err := pl.Validate(cfg); err != nil {
		return nil, err
	}
	if len(pl.Layers) != len(costs) {
		return nil, fmt.Errorf("sim: %d pipeline stages but %d placed layers", len(costs), len(pl.Layers))
	}
	e := &Engine{res: res, mesh: mesh, placement: pl, fb: newFabricClock()}
	e.stages = make([]engineStage, len(costs))
	for i, sc := range costs {
		st := engineStage{
			name:      sc.name,
			serviceNs: sc.serviceNs,
			sendLatNs: sc.sendLatNs,
			tiles:     pl.GlobalTiles(i, cfg),
		}
		if sc.sendBytes > 0 {
			st.sendSerNs = mesh.SerializationNs(sc.sendBytes)
			st.chipSerNs = mesh.ChipHopNs
			srcChip, srcTile := pl.Layers[i].Anchor()
			// Forward route: anchor to the consumer's anchor (or the host
			// through the egress corner after the last stage).
			lb := newLinkBuilder(mesh, cfg)
			dstChip, dstTile := -1, 0
			if i+1 < len(costs) {
				dstChip, dstTile = pl.Layers[i+1].Anchor()
			}
			if err := lb.addRoute(srcChip, srcTile, dstChip, dstTile); err != nil {
				return nil, err
			}
			st.links, st.chipPorts = lb.build()
			// Bulk drain traffic: one gather per non-anchor tile of this
			// stage (each carries its slice of the output) and one
			// scatter per tile of the consumer (the activation is
			// broadcast — every consumer tile needs the full input).
			nTiles := len(st.tiles)
			gatherSer := mesh.SerializationNs((sc.sendBytes + int64(nTiles) - 1) / int64(nTiles))
			addBulk := func(sc2, st2, dc, dt int, ser float64) error {
				b := newLinkBuilder(mesh, cfg)
				if err := b.addRoute(sc2, st2, dc, dt); err != nil {
					return err
				}
				links, ports := b.build()
				if len(links)+len(ports) == 0 {
					return nil
				}
				st.bulk = append(st.bulk, bulkXfer{links: links, ports: ports, serNs: ser})
				return nil
			}
			for _, sh := range pl.Layers[i].Shards {
				for _, t := range sh.Tiles {
					if sh.Chip == srcChip && t == srcTile {
						continue
					}
					if err := addBulk(sh.Chip, t, srcChip, srcTile, gatherSer); err != nil {
						return nil, err
					}
				}
			}
			if i+1 < len(costs) {
				for _, sh := range pl.Layers[i+1].Shards {
					for _, t := range sh.Tiles {
						if sh.Chip == dstChip && t == dstTile {
							continue
						}
						if err := addBulk(dstChip, dstTile, sh.Chip, t, st.sendSerNs); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		e.stages[i] = st
	}
	// Stages whose tile footprints overlap (the greedy allocator packs
	// layer boundaries into shared tiles) cannot compute concurrently.
	for i := range e.stages {
		ti := map[int]bool{}
		for _, t := range e.stages[i].tiles {
			ti[t] = true
		}
		for j := range e.stages {
			if i == j {
				continue
			}
			for _, t := range e.stages[j].tiles {
				if ti[t] {
					e.stages[i].conflicts = append(e.stages[i].conflicts, j)
					break
				}
			}
		}
	}
	e.tileFree = make([]float64, len(e.stages))
	e.busyNs = make([]float64, len(e.stages))
	e.drainReady = make([]float64, len(e.stages))
	return e, nil
}

// fallbackPlacement reconstructs the greedy layout from a compilation's
// allocation, for Compileds built without the placement IR.
func fallbackPlacement(c *compiler.Compiled, cfg arch.Config) (*compiler.Placement, error) {
	var demands []compiler.LayerDemand
	for _, a := range c.Allocs {
		if a.Kind == "shape" {
			continue
		}
		demands = append(demands, compiler.LayerDemand{Name: a.Name, VCores: a.VCores, Bytes: 1})
	}
	return compiler.GreedyPlacer{}.Place(demands, cfg, compiler.FullFabric(cfg))
}

// linkBuilder accumulates the deduplicated link and chip-port sets of
// one stage's transfers, in first-seen order for determinism.
type linkBuilder struct {
	mesh  noc.Config
	cfg   arch.Config
	links []linkKey
	ports []int
	seenL map[linkKey]bool
	seenP map[int]bool
}

func newLinkBuilder(mesh noc.Config, cfg arch.Config) *linkBuilder {
	return &linkBuilder{mesh: mesh, cfg: cfg, seenL: map[linkKey]bool{}, seenP: map[int]bool{}}
}

func (lb *linkBuilder) addLinks(node int, route []noc.Link) {
	for _, l := range route {
		k := linkKey{node: node, from: l.From, to: l.To}
		if !lb.seenL[k] {
			lb.seenL[k] = true
			lb.links = append(lb.links, k)
		}
	}
}

func (lb *linkBuilder) addPort(node int) {
	if !lb.seenP[node] {
		lb.seenP[node] = true
		lb.ports = append(lb.ports, node)
	}
}

// addRoute adds the links of one transfer. dstChip -1 means the host:
// the transfer drains to the source chip's egress corner and out its
// port.
func (lb *linkBuilder) addRoute(srcChip, srcTile, dstChip, dstTile int) error {
	if srcChip == dstChip {
		route, err := lb.mesh.RouteXY(srcTile, dstTile)
		if err != nil {
			return err
		}
		lb.addLinks(srcChip, route)
		return nil
	}
	out, err := lb.mesh.RouteXY(srcTile, lb.mesh.EgressTile())
	if err != nil {
		return err
	}
	lb.addLinks(srcChip, out)
	lb.addPort(srcChip)
	if dstChip < 0 {
		return nil
	}
	lb.addPort(dstChip)
	in, err := lb.mesh.RouteXY(lb.mesh.EgressTile(), dstTile)
	if err != nil {
		return err
	}
	lb.addLinks(dstChip, in)
	return nil
}

func (lb *linkBuilder) build() ([]linkKey, []int) { return lb.links, lb.ports }

// Result returns the embedded single-inference pricing (bit-identical
// to Simulator.Run on the same compilation).
func (e *Engine) Result() *Result { return e.res }

// StageCount returns the pipeline depth.
func (e *Engine) StageCount() int { return len(e.stages) }

// StageOccupancy is one stage's utilization in a batch run.
type StageOccupancy struct {
	Name      string
	ServiceNs float64 // per-sample tile-resident service time
	SendNs    float64 // per-sample transfer head latency
	Tiles     int     // tile footprint owned by the stage
	Busy      float64 // fraction of the makespan the stage's tiles are busy
}

// BatchResult is the outcome of streaming a batch through the pipeline.
type BatchResult struct {
	// ModelName, Design and Batch echo the inputs.
	ModelName string
	Design    arch.Design
	Batch     int
	// LatencyNs is the single-inference critical path — identical to
	// Simulator.Run (and to the Fig. 7 series) by construction.
	LatencyNs float64
	// MakespanNs is when the last sample's logits reach the host.
	MakespanNs float64
	// ThroughputPerSec is Batch / Makespan.
	ThroughputPerSec float64
	// SteadyStatePerSec is the analytic throughput ceiling: the busiest
	// resource (tile footprint, mesh link or chip port) bounds the
	// per-sample interval at saturation.
	SteadyStatePerSec float64
	// BottleneckName names that resource.
	BottleneckName string
	// BottleneckNs is its per-sample busy time.
	BottleneckNs float64
	// LinkWaitNs is the total time samples stalled on busy NoC links —
	// the contention the serial simulator cannot see.
	LinkWaitNs float64
	// EnergyPJPerInference is the per-sample energy (batch-invariant:
	// optical power is duty-cycled per activation).
	EnergyPJPerInference float64
	// Stages is the per-stage utilization.
	Stages []StageOccupancy
}

// resetLocal clears the engine-owned scheduling state (tile clocks,
// busy accounting, drain back-pressure); the fabric clock is reset by
// whoever owns it — the engine itself for isolated runs, the EngineSet
// for co-located ones.
func (e *Engine) resetLocal() {
	for i := range e.tileFree {
		e.tileFree[i] = 0
		e.busyNs[i] = 0
		e.drainReady[i] = 0
	}
	e.linkWaitNs = 0
	if e.tr != nil {
		e.tr.seq = 0
	}
}

// resetRun clears the per-run scheduling state.
func (e *Engine) resetRun() {
	e.resetLocal()
	e.fb.reset()
}

// runSample schedules one sample through every stage against the given
// fabric clock and returns its completion time. Deterministic greedy
// list scheduling: the forward transfer books the earliest window in
// which every link and chip port on its route is simultaneously free;
// bulk drain traffic books on its own channel and back-pressures the
// stage's next sample instead of blocking this one.
func (e *Engine) runSample(fb *fabricClock) float64 {
	t := 0.0 // completion time of the previous stage for this sample
	tr := e.tr
	var seq int64
	if tr != nil {
		seq = tr.seq
		tr.seq++
	}
	for si := range e.stages {
		st := &e.stages[si]
		// Back-pressure: the tiles' drain of the previous sample must
		// finish before they take the next one.
		start := math.Max(math.Max(t, e.tileFree[si]), e.drainReady[si])
		for _, cj := range st.conflicts {
			start = math.Max(start, e.tileFree[cj])
		}
		computeDone := start + st.serviceNs
		e.tileFree[si] = computeDone
		e.busyNs[si] += st.serviceNs
		if tr != nil {
			tr.traceStage(si, seq, start, st.serviceNs)
		}
		sendStart := computeDone
		if len(st.links)+len(st.chipPorts) > 0 {
			sendStart = fb.fwd.bookXfer(computeDone, st.links, st.chipPorts, st.sendSerNs, st.chipSerNs)
			if tr != nil {
				tr.traceXfer(si, seq, computeDone, sendStart, st.sendSerNs, st.chipSerNs,
					st.links, st.chipPorts, tr.fwdLink, tr.fwdPort, tr.waitNm)
			}
		}
		e.linkWaitNs += sendStart - computeDone
		drainEnd := computeDone
		for _, bt := range st.bulk {
			bs := fb.bulk.bookXfer(computeDone, bt.links, bt.ports, bt.serNs, st.chipSerNs)
			e.linkWaitNs += bs - computeDone
			drainEnd = math.Max(drainEnd, bs+bt.serNs)
			if tr != nil {
				tr.traceXfer(si, seq, computeDone, bs, bt.serNs, st.chipSerNs,
					bt.links, bt.ports, tr.bulkLink, tr.bulkPort, tr.drainNm)
			}
		}
		e.drainReady[si] = drainEnd
		t = sendStart + st.sendLatNs
	}
	if tr != nil {
		tr.traceDone(seq, t)
	}
	return t
}

// snapshot assembles a BatchResult for the first b samples of the
// current run (makespan = completion time of sample b-1).
func (e *Engine) snapshot(b int, makespan float64) *BatchResult {
	out := &BatchResult{
		ModelName:            e.res.ModelName,
		Design:               e.res.Design,
		Batch:                b,
		LatencyNs:            e.res.LatencyNs,
		MakespanNs:           makespan,
		ThroughputPerSec:     float64(b) * 1e9 / makespan,
		LinkWaitNs:           e.linkWaitNs,
		EnergyPJPerInference: e.res.EnergyPJ(),
	}
	out.BottleneckNs, out.BottleneckName = e.bottleneck()
	out.SteadyStatePerSec = 1e9 / out.BottleneckNs
	for si, st := range e.stages {
		out.Stages = append(out.Stages, StageOccupancy{
			Name:      st.name,
			ServiceNs: st.serviceNs,
			SendNs:    st.sendLatNs,
			Tiles:     len(st.tiles),
			Busy:      e.busyNs[si] / makespan,
		})
	}
	return out
}

// RunBatch streams a batch of b inferences through the pipeline and
// returns the timing report. Deterministic: same engine, same b, same
// result.
func (e *Engine) RunBatch(b int) (*BatchResult, error) {
	rs, err := e.RunBatches([]int{b})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// RunBatches sweeps several batch sizes in ONE schedule pass: the
// scheduler is incremental in the sample index, so the b-sample result
// is a snapshot of the maxB-sample run after sample b. Results are
// bit-identical to calling RunBatch per size (pinned by tests) at a
// fraction of the cost — the throughput sweep used to re-run the whole
// schedule per batch size.
func (e *Engine) RunBatches(bs []int) ([]*BatchResult, error) {
	if len(bs) == 0 {
		return nil, fmt.Errorf("sim: no batch sizes given")
	}
	maxB := 0
	for _, b := range bs {
		if b < 1 {
			return nil, fmt.Errorf("sim: batch size %d must be ≥ 1", b)
		}
		maxB = max(maxB, b)
	}
	want := make(map[int][]int, len(bs)) // batch size → result indices
	for i, b := range bs {
		want[b] = append(want[b], i)
	}
	out := make([]*BatchResult, len(bs))
	e.resetRun()
	for sample := 0; sample < maxB; sample++ {
		t := e.runSample(e.fb)
		if idxs, ok := want[sample+1]; ok {
			r := e.snapshot(sample+1, t)
			for _, i := range idxs {
				out[i] = r
			}
			e.traceMeta(sample+1, t)
		}
	}
	return out, nil
}

// bottleneck finds the resource with the largest per-sample busy time:
// the steady-state inter-departure interval of the saturated pipeline.
// Deterministic: ties resolve to the earliest stage/resource.
func (e *Engine) bottleneck() (ns float64, name string) {
	// Tile busy: stages sharing a tile cannot compute concurrently, so
	// the max per-tile service sum is the serialization bound.
	tileBusy := map[int]float64{}
	maxTile := 0
	for _, st := range e.stages {
		for _, t := range st.tiles {
			tileBusy[t] += st.serviceNs
			maxTile = max(maxTile, t)
		}
	}
	bneckTile := -1
	for t := 0; t <= maxTile; t++ {
		if busy, ok := tileBusy[t]; ok && busy > ns {
			ns, bneckTile = busy, t
		}
	}
	if bneckTile >= 0 {
		// Name the heaviest stage occupying the bottleneck tile.
		heaviest := -1.0
		for _, st := range e.stages {
			for _, t := range st.tiles {
				if t == bneckTile && st.serviceNs > heaviest {
					heaviest, name = st.serviceNs, st.name
				}
			}
		}
	}
	// Mesh links and chip ports: transfers crossing the same edge
	// serialize (per virtual channel — forward and bulk traffic are
	// tracked separately, matching the scheduler). Accumulate in
	// first-seen order for determinism.
	// Ports are booked per channel in the scheduler (fwd and bulk have
	// independent calendars), so their busy sums must stay separate too
	// — merging them would report a "ceiling" below what the schedule
	// actually sustains.
	linkBusy := map[linkKey]float64{}
	chipBusy := map[int]float64{}
	bulkBusy := map[linkKey]float64{}
	bulkChipBusy := map[int]float64{}
	var linkOrder, bulkOrder []linkKey
	var chipOrder, bulkChipOrder []int
	for _, st := range e.stages {
		for _, l := range st.links {
			if _, seen := linkBusy[l]; !seen {
				linkOrder = append(linkOrder, l)
			}
			linkBusy[l] += st.sendSerNs
		}
		for _, p := range st.chipPorts {
			if _, seen := chipBusy[p]; !seen {
				chipOrder = append(chipOrder, p)
			}
			chipBusy[p] += st.chipSerNs
		}
		for _, bt := range st.bulk {
			for _, l := range bt.links {
				if _, seen := bulkBusy[l]; !seen {
					bulkOrder = append(bulkOrder, l)
				}
				bulkBusy[l] += bt.serNs
			}
			for _, p := range bt.ports {
				if _, seen := bulkChipBusy[p]; !seen {
					bulkChipOrder = append(bulkChipOrder, p)
				}
				bulkChipBusy[p] += st.chipSerNs
			}
		}
	}
	for _, l := range bulkOrder {
		if busy := bulkBusy[l]; busy > ns {
			ns, name = busy, fmt.Sprintf("bulk-link n%d:%d->%d", l.node, l.from, l.to)
		}
	}
	for _, l := range linkOrder {
		if busy := linkBusy[l]; busy > ns {
			ns, name = busy, fmt.Sprintf("link n%d:%d->%d", l.node, l.from, l.to)
		}
	}
	for _, n := range chipOrder {
		if busy := chipBusy[n]; busy > ns {
			ns, name = busy, fmt.Sprintf("chip-port n%d", n)
		}
	}
	for _, n := range bulkChipOrder {
		if busy := bulkChipBusy[n]; busy > ns {
			ns, name = busy, fmt.Sprintf("bulk-chip-port n%d", n)
		}
	}
	return ns, name
}

// tileSet returns the engine's global tile footprint, sorted (the
// EngineSet disjointness check).
func (e *Engine) tileSet() []int {
	seen := map[int]bool{}
	for _, st := range e.stages {
		for _, t := range st.tiles {
			seen[t] = true
		}
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
