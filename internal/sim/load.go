package sim

import (
	"fmt"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/device"
)

// Weight-loading cost. Inference results (Figs. 7–8) assume weights are
// resident — the CIM premise. This prices the one-time programming
// pass: every cell write pays the device's SET/RESET latency and
// energy; tiles program in parallel, rows within a tile sequentially
// (one word line driven at a time), which is the standard array-
// programming discipline.

// LoadCost is the one-time weight-programming bill.
type LoadCost struct {
	// LatencyNs assumes per-tile row-sequential, cross-tile parallel
	// programming.
	LatencyNs float64
	// EnergyPJ is the total programming energy.
	EnergyPJ float64
	// Writes echoes the device-write count.
	Writes int64
}

// WeightLoadCost prices loading a compiled model's weights. Device
// write costs come from the technology defaults (an average of SET and
// RESET, since synthesized weights are balanced).
func WeightLoadCost(c *compiler.Compiled, cfg arch.Config) (LoadCost, error) {
	if err := cfg.Validate(); err != nil {
		return LoadCost{}, err
	}
	if c.WeightWrites <= 0 {
		return LoadCost{}, fmt.Errorf("sim: compilation has no weight writes")
	}
	var perWriteNs, perWritePJ float64
	if c.Design.Tech() == device.OPCM {
		p := device.DefaultOPCMParams()
		perWriteNs = p.WriteLatencyNs
		perWritePJ = p.WriteEnergyPJ
	} else {
		p := device.DefaultEPCMParams()
		setNs, setPJ := p.WriteCost(true)
		rstNs, rstPJ := p.WriteCost(false)
		perWriteNs = (setNs + rstNs) / 2
		perWritePJ = (setPJ + rstPJ) / 2
	}
	tiles := c.VCoresUsed
	if tiles < 1 {
		tiles = 1
	}
	// Rows program one at a time within a tile; a row's cells program
	// together. Writes per tile ≈ total/tiles; rows per tile =
	// writesPerTile / cols.
	writesPerTile := (c.WeightWrites + int64(tiles) - 1) / int64(tiles)
	rowsPerTile := (writesPerTile + int64(cfg.CrossbarCols) - 1) / int64(cfg.CrossbarCols)
	return LoadCost{
		LatencyNs: float64(rowsPerTile) * perWriteNs,
		EnergyPJ:  float64(c.WeightWrites) * perWritePJ,
		Writes:    c.WeightWrites,
	}, nil
}

// AmortizedOverhead returns the fraction the load adds to a batch of n
// inferences of the given per-inference latency: load/(n·t). CIM's
// premise is that this tends to zero for resident weights.
func (l LoadCost) AmortizedOverhead(inferenceNs float64, n int) float64 {
	if n < 1 || inferenceNs <= 0 {
		return 0
	}
	return l.LatencyNs / (float64(n) * inferenceNs)
}
