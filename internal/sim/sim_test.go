package sim

import (
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/energy"
)

func newSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := New(arch.DefaultConfig(), energy.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func compiled(t *testing.T, model string, d arch.Design) *compiler.Compiled {
	t.Helper()
	m, err := bnn.NewModel(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compiler.Compile(m, arch.DefaultConfig(), d)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidates(t *testing.T) {
	bad := arch.DefaultConfig()
	bad.Nodes = 0
	if _, err := New(bad, energy.DefaultCostParams()); err == nil {
		t.Fatal("invalid arch should fail")
	}
	costs := energy.DefaultCostParams()
	costs.ADCEPJ = -1
	if _, err := New(arch.DefaultConfig(), costs); err == nil {
		t.Fatal("invalid costs should fail")
	}
}

func TestRunProducesPositiveResults(t *testing.T) {
	s := newSim(t)
	for _, name := range bnn.ZooNames {
		for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
			r, err := s.Run(compiled(t, name, d))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
			if r.LatencyNs <= 0 || r.EnergyPJ() <= 0 {
				t.Fatalf("%s/%v: non-positive result %g ns %g pJ", name, d, r.LatencyNs, r.EnergyPJ())
			}
			if r.Counters.Instructions == 0 {
				t.Fatalf("%s/%v: no instructions executed", name, d)
			}
		}
	}
}

// TestDesignOrdering is the paper's core latency result: for every
// network, Baseline > TacitMap > EinsteinBarrier in latency.
func TestDesignOrdering(t *testing.T) {
	s := newSim(t)
	for _, name := range bnn.ZooNames {
		base, _ := s.Run(compiled(t, name, arch.BaselineEPCM))
		tacit, _ := s.Run(compiled(t, name, arch.TacitEPCM))
		eb, _ := s.Run(compiled(t, name, arch.EinsteinBarrier))
		if !(base.LatencyNs > tacit.LatencyNs && tacit.LatencyNs > eb.LatencyNs) {
			t.Fatalf("%s: latency ordering broken: base %g tacit %g eb %g",
				name, base.LatencyNs, tacit.LatencyNs, eb.LatencyNs)
		}
	}
}

// TestEnergyOrdering is the paper's Fig. 8 shape: TacitMap-ePCM costs
// MORE energy than the baseline (power-hungry ADCs), EinsteinBarrier
// costs less than TacitMap (K× fewer activations).
func TestEnergyOrdering(t *testing.T) {
	s := newSim(t)
	for _, name := range bnn.ZooNames {
		base, _ := s.Run(compiled(t, name, arch.BaselineEPCM))
		tacit, _ := s.Run(compiled(t, name, arch.TacitEPCM))
		eb, _ := s.Run(compiled(t, name, arch.EinsteinBarrier))
		if tacit.EnergyPJ() <= base.EnergyPJ() {
			t.Fatalf("%s: TacitMap energy %g must exceed baseline %g",
				name, tacit.EnergyPJ(), base.EnergyPJ())
		}
		if eb.EnergyPJ() >= tacit.EnergyPJ() {
			t.Fatalf("%s: EB energy %g must be below TacitMap %g",
				name, eb.EnergyPJ(), tacit.EnergyPJ())
		}
	}
}

func TestCountersConsistent(t *testing.T) {
	s := newSim(t)
	base, _ := s.Run(compiled(t, "MLP-S", arch.BaselineEPCM))
	if base.Counters.RowSteps == 0 || base.Counters.VMMs != 0 || base.Counters.MMMs != 0 {
		t.Fatalf("baseline counters wrong: %+v", base.Counters)
	}
	tacit, _ := s.Run(compiled(t, "MLP-S", arch.TacitEPCM))
	if tacit.Counters.VMMs == 0 || tacit.Counters.RowSteps != 0 {
		t.Fatalf("tacit counters wrong: %+v", tacit.Counters)
	}
	eb, _ := s.Run(compiled(t, "MLP-S", arch.EinsteinBarrier))
	if eb.Counters.MMMs == 0 || eb.Counters.VMMs != 0 {
		t.Fatalf("eb counters wrong: %+v", eb.Counters)
	}
	// Same mapping, so Tacit's ADC conversions for binary layers are K×
	// the EB per-activation count in aggregate — but totals match since
	// every output is converted exactly once per position on both.
	if eb.Counters.ADCConversions != tacit.Counters.ADCConversions {
		t.Fatalf("conversion totals differ: eb %d tacit %d",
			eb.Counters.ADCConversions, tacit.Counters.ADCConversions)
	}
}

func TestOpticalStaticOnlyOnEB(t *testing.T) {
	s := newSim(t)
	tacit, _ := s.Run(compiled(t, "CNN-S", arch.TacitEPCM))
	if tacit.Energy.StaticPJ != 0 {
		t.Fatal("electronic design must have no optical static energy")
	}
	eb, _ := s.Run(compiled(t, "CNN-S", arch.EinsteinBarrier))
	if eb.Energy.StaticPJ <= 0 {
		t.Fatal("EinsteinBarrier must pay transmitter/TIA energy")
	}
}

func TestPerLayerSumsToTotal(t *testing.T) {
	s := newSim(t)
	r, _ := s.Run(compiled(t, "CNN-S", arch.TacitEPCM))
	var sum float64
	for _, lt := range r.PerLayer {
		sum += lt.LatencyNs
	}
	// Sections cover everything up to the final SYNC; HALT adds nothing.
	if diff := r.LatencyNs - sum; diff < 0 || diff > r.LatencyNs*0.01 {
		t.Fatalf("per-layer sum %g vs total %g", sum, r.LatencyNs)
	}
}

func TestWDMCapacitySweepMonotone(t *testing.T) {
	// More wavelengths → never slower (E6 sanity).
	m, err := bnn.NewModel("CNN-M", 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, k := range []int{16, 8, 4, 2, 1} {
		cfg := arch.DefaultConfig()
		cfg.WDMCapacity = k
		s, err := New(cfg, energy.DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		c, err := compiler.Compile(m, cfg, arch.EinsteinBarrier)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if r.LatencyNs < prev {
			t.Fatalf("K=%d latency %g below K-larger latency %g", k, r.LatencyNs, prev)
		}
		prev = r.LatencyNs
	}
}

func TestRunModelOnDesigns(t *testing.T) {
	s := newSim(t)
	m, _ := bnn.NewModel("MLP-S", 1)
	results, err := RunModelOnDesigns(s, func(d arch.Design) (*compiler.Compiled, error) {
		return compiler.Compile(m, arch.DefaultConfig(), d)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for d, r := range results {
		if r.Design != d {
			t.Fatalf("result design mismatch: %v vs %v", r.Design, d)
		}
	}
}
