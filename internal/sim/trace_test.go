package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// traceRecorder builds a recorder sized so a b-sample run drops nothing.
func traceRecorder(e *Engine, b int) *trace.Recorder {
	return trace.New(b*e.TraceEventsPerSample() + 16)
}

// TestTracedRunBitIdentical pins the observer-effect contract: enabling
// the recorder must not change a single bit of the BatchResult.
func TestTracedRunBitIdentical(t *testing.T) {
	s := newSim(t)
	for _, name := range []string{"MLP-S", "CNN-L"} {
		for _, d := range allDesigns {
			c := compiled(t, name, d)
			plain, err := s.NewEngine(c)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
			traced, err := s.NewEngine(c)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
			traced.EnableTrace(traceRecorder(traced, 64))
			for _, b := range []int{1, 7, 64} {
				want, err := plain.RunBatch(b)
				if err != nil {
					t.Fatalf("%s/%v B=%d: %v", name, d, b, err)
				}
				got, err := traced.RunBatch(b)
				if err != nil {
					t.Fatalf("%s/%v B=%d: %v", name, d, b, err)
				}
				if got.MakespanNs != want.MakespanNs || got.LinkWaitNs != want.LinkWaitNs ||
					got.ThroughputPerSec != want.ThroughputPerSec {
					t.Fatalf("%s/%v B=%d: traced run diverged: %+v vs %+v", name, d, b, got, want)
				}
				for i := range want.Stages {
					if got.Stages[i].Busy != want.Stages[i].Busy {
						t.Fatalf("%s/%v B=%d stage %d: busy %v != %v", name, d, b,
							i, got.Stages[i].Busy, want.Stages[i].Busy)
					}
				}
			}
		}
	}
}

// TestTraceSumsMatchAggregates is the acceptance cross-check on the
// issue's named configuration (CNN-L/EinsteinBarrier, B=256): per-stage
// occupancy slices sum to each stage's busy fraction and the flow
// (wait) events sum to LinkWaitNs — both bit-exactly, because the
// trace emits the very terms the aggregates accumulate, in the same
// order.
func TestTraceSumsMatchAggregates(t *testing.T) {
	s := newSim(t)
	eng, err := s.NewEngine(compiled(t, "CNN-L", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	const b = 256
	r := traceRecorder(eng, b)
	eng.EnableTrace(r)
	br, err := eng.RunBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dropped() != 0 {
		t.Fatalf("sized ring dropped %d events", r.Dropped())
	}

	// Track id → stage index, via the registration order ("samples"
	// first, then one track per stage).
	tracks := r.Tracks()
	stageOf := map[int32]int{}
	for i := range eng.stages {
		stageOf[tracks[1+i].ID] = i
	}
	busy := make([]float64, len(eng.stages))
	wait := 0.0
	samples := map[int64]bool{}
	for _, ev := range r.Events() {
		switch ev.Kind {
		case trace.KindSlice:
			if si, ok := stageOf[ev.Track]; ok {
				busy[si] += ev.Dur
			}
		case trace.KindFlow:
			wait += ev.Dur
		case trace.KindInstant:
			samples[ev.Seq] = true
		}
	}
	if len(samples) != b {
		t.Fatalf("trace shows %d completed samples, want %d", len(samples), b)
	}
	if wait != br.LinkWaitNs {
		t.Fatalf("flow durations sum to %v, BatchResult.LinkWaitNs = %v", wait, br.LinkWaitNs)
	}
	for si, st := range br.Stages {
		if got := busy[si] / br.MakespanNs; got != st.Busy {
			t.Fatalf("stage %d (%s): trace busy %v != reported %v", si, st.Name, got, st.Busy)
		}
	}

	// The export must be loadable trace-event JSON.
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]string
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export not JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 || parsed.OtherData["batch"] != "256" {
		t.Fatalf("export shape wrong: %d events, otherData %v", len(parsed.TraceEvents), parsed.OtherData)
	}
}

// TestTraceReRunDeterministic: two traced runs of the same engine
// export byte-identical timelines (Reset between runs, same topology).
func TestTraceReRunDeterministic(t *testing.T) {
	s := newSim(t)
	eng, err := s.NewEngine(compiled(t, "CNN-M", arch.TacitEPCM))
	if err != nil {
		t.Fatal(err)
	}
	r := traceRecorder(eng, 32)
	eng.EnableTrace(r)
	export := func() []byte {
		r.Reset()
		if _, err := eng.RunBatch(32); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("re-run exported different bytes")
	}
}

// TestTraceDisableDetaches: EnableTrace(nil) stops emission.
func TestTraceDisableDetaches(t *testing.T) {
	s := newSim(t)
	eng, err := s.NewEngine(compiled(t, "MLP-S", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	r := traceRecorder(eng, 4)
	eng.EnableTrace(r)
	if !eng.TraceEnabled() {
		t.Fatal("TraceEnabled false after EnableTrace")
	}
	if _, err := eng.RunBatch(2); err != nil {
		t.Fatal(err)
	}
	n := r.Len()
	if n == 0 {
		t.Fatal("traced run emitted nothing")
	}
	eng.EnableTrace(nil)
	if eng.TraceEnabled() {
		t.Fatal("TraceEnabled true after detach")
	}
	if _, err := eng.RunBatch(2); err != nil {
		t.Fatal(err)
	}
	if r.Len() != n {
		t.Fatalf("detached engine still emitted: %d -> %d", n, r.Len())
	}
}

// TestEngineSetTraceOnlyColocated: RunSet's isolated baselines must not
// leak into the shared trace — every engine's events describe the one
// co-located schedule, and per-model flow sums reproduce the co-located
// LinkWaitNs (not iso + co-located).
func TestEngineSetTraceOnlyColocated(t *testing.T) {
	s := newSim(t)
	cs := compileSet(t, []string{"MLP-S", "MLP-M"}, compiler.GreedyPlacer{}, arch.DefaultConfig())
	es, err := s.NewEngineSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	const b = 16
	r := trace.New(2*b*es.TraceEventsPerSample() + 16)
	es.EnableTrace(r)
	sr, err := es.RunSet(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dropped() != 0 {
		t.Fatalf("sized ring dropped %d events", r.Dropped())
	}
	// Two processes, one per model.
	if got := len(r.Processes()); got != 2 {
		t.Fatalf("processes = %d, want 2", got)
	}
	// Per-process flow sums == co-located LinkWaitNs per model.
	procOf := map[int32]int32{} // track -> process
	for _, tr := range r.Tracks() {
		procOf[tr.ID] = tr.Proc
	}
	waits := map[int32]float64{}
	doneCount := map[int32]int{}
	for _, ev := range r.Events() {
		switch ev.Kind {
		case trace.KindFlow:
			waits[procOf[ev.Track]] += ev.Dur
		case trace.KindInstant:
			doneCount[procOf[ev.Track]]++
		}
	}
	for i, m := range sr.Models {
		pid := int32(i + 1)
		if doneCount[pid] != b {
			t.Fatalf("%s: %d completed samples in trace, want %d (iso run leaked?)",
				m.ModelName, doneCount[pid], b)
		}
		if waits[pid] != m.LinkWaitNs {
			t.Fatalf("%s: trace wait %v != co-located LinkWaitNs %v",
				m.ModelName, waits[pid], m.LinkWaitNs)
		}
	}
}

// TestGoldenB1Trace pins the B=1 MLP-S/EinsteinBarrier Chrome trace
// byte-for-byte. The engine's schedule is platform-deterministic (pure
// float64 arithmetic in a fixed order), so the export must never drift
// without an intentional schema change. Regenerate with
// `go test ./internal/sim -run TestGoldenB1Trace -update`.
func TestGoldenB1Trace(t *testing.T) {
	s := newSim(t)
	eng, err := s.NewEngine(compiled(t, "MLP-S", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	r := traceRecorder(eng, 1)
	eng.EnableTrace(r)
	if _, err := eng.RunBatch(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_mlps_eb_b1.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("B=1 trace drifted from golden %s (rerun with -update if intentional)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}
