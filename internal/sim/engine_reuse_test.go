package sim

import (
	"strings"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
)

// Reuse contracts of the fast engine: zero-alloc steady-state RunBatch
// (the warmed calendars must survive resets — the old vcClock.reset
// cleared its maps and rebuilt every resClock per run), Reprice
// bit-identity with a fresh NewEngine, EngineSet.Swap bit-identity with
// a fresh NewEngineSet, and the engine-owned result pool's Clone
// escape hatch.

// TestRunBatchZeroAlloc pins the tentpole: after the first (warming)
// run, RunBatch performs zero allocations per run — the calendars, the
// result pool and the scratch are all reused, so the second run cannot
// regress back to rebuilding them.
func TestRunBatchZeroAlloc(t *testing.T) {
	s := newSim(t)
	for _, tc := range []struct {
		model string
		b     int
	}{
		{"CNN-L", 256},
		{"CNN-S", 16},
		{"MLP-L", 64},
	} {
		eng, err := s.NewEngine(compiled(t, tc.model, arch.EinsteinBarrier))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunBatch(tc.b); err != nil { // warm calendars + pool
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := eng.RunBatch(tc.b); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s B=%d: steady-state RunBatch allocates %v/run, want 0", tc.model, tc.b, allocs)
		}
	}
}

// TestRunBatchesSweepNoAllocAfterWarm: a warmed engine sweeping the
// same sizes again allocates only the caller-owned result slice.
func TestRunBatchesSweepNoAllocAfterWarm(t *testing.T) {
	s := newSim(t)
	eng, err := s.NewEngine(compiled(t, "CNN-S", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	bs := []int{1, 4, 16, 64}
	out := make([]*BatchResult, len(bs))
	if err := eng.runBatches(bs, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := eng.runBatches(bs, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm sweep allocates %v/run, want 0", allocs)
	}
}

// batchResultsEqual compares every field including the per-stage
// occupancy (bit equality — both sides must run the identical schedule).
func batchResultsEqual(a, b *BatchResult) bool {
	if a.ModelName != b.ModelName || a.Design != b.Design || a.Batch != b.Batch ||
		a.LatencyNs != b.LatencyNs || a.MakespanNs != b.MakespanNs ||
		a.ThroughputPerSec != b.ThroughputPerSec || a.SteadyStatePerSec != b.SteadyStatePerSec ||
		a.BottleneckName != b.BottleneckName || a.BottleneckNs != b.BottleneckNs ||
		a.LinkWaitNs != b.LinkWaitNs || a.EnergyPJPerInference != b.EnergyPJPerInference ||
		len(a.Stages) != len(b.Stages) {
		return false
	}
	for i := range a.Stages {
		if a.Stages[i] != b.Stages[i] {
			return false
		}
	}
	return true
}

// TestRepriceMatchesNewEngine: an engine re-targeted at a new
// compilation behaves bit-identically to a fresh engine on it — across
// placements of one model and across entirely different models (stage
// counts, routes and calendars all change shape).
func TestRepriceMatchesNewEngine(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	greedy := compiled(t, "CNN-L", arch.EinsteinBarrier)
	mesh := recompiled(t, "CNN-L", arch.EinsteinBarrier, compiler.MeshPlacer{}, cfg)
	other := compiled(t, "MLP-S", arch.MLCEPCM)

	eng, err := s.NewEngine(greedy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunBatch(64); err != nil { // dirty every piece of scratch
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		c    *compiler.Compiled
	}{
		{"same model, new placement", mesh},
		{"different model and design", other},
		{"back to the original", greedy},
	} {
		if err := eng.Reprice(tc.c); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		fresh, err := s.NewEngine(tc.c)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []int{1, 7, 64} {
			got, err := eng.RunBatch(b)
			if err != nil {
				t.Fatalf("%s B=%d: %v", tc.name, b, err)
			}
			want, err := fresh.RunBatch(b)
			if err != nil {
				t.Fatalf("%s B=%d: %v", tc.name, b, err)
			}
			if !batchResultsEqual(got, want) {
				t.Fatalf("%s B=%d: repriced %+v != fresh %+v", tc.name, b, got, want)
			}
		}
	}
}

// recompiled compiles a model with an explicit placer.
func recompiled(t *testing.T, model string, d arch.Design, p compiler.Placer, cfg arch.Config) *compiler.Compiled {
	t.Helper()
	m, err := bnn.NewModel(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := compiler.CompileWith(m, cfg, d, compiler.Options{Placer: p})
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

// TestBatchResultClone: a clone is deep — mutating the original's
// stages does not leak into it (and vice versa).
func TestBatchResultClone(t *testing.T) {
	s := newSim(t)
	eng, err := s.NewEngine(compiled(t, "CNN-S", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	br, err := eng.RunBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	cp := br.Clone()
	if !batchResultsEqual(br, cp) {
		t.Fatalf("clone differs: %+v vs %+v", br, cp)
	}
	if len(br.Stages) > 0 {
		br.Stages[0].Busy = -1
		if cp.Stages[0].Busy == -1 {
			t.Fatal("clone shares the Stages backing array")
		}
	}
	// The engine-owned original is recycled by the next run; the clone
	// must survive it.
	want := *cp
	if _, err := eng.RunBatch(32); err != nil {
		t.Fatal(err)
	}
	if cp.Batch != want.Batch || cp.MakespanNs != want.MakespanNs {
		t.Fatal("clone mutated by a later engine run")
	}
}

// TestEngineSetSwapMatchesFresh: swapping a candidate into a pooled set
// prices bit-identically to building the set from scratch with the
// candidate in place — the SetEvaluator fast path.
func TestEngineSetSwapMatchesFresh(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	base := compileSet(t, []string{"MLP-S", "CNN-S"}, compiler.MeshPlacer{}, cfg)
	// A real swap candidate is re-placed inside its slot's region (the
	// co-location searcher compiles with Region pinned) — here the same
	// model under a different placer, so the schedule genuinely changes.
	m, err := bnn.NewModel("CNN-S", 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := base[1].Placement.Region
	cand, err := compiler.CompileWith(m, cfg, arch.EinsteinBarrier,
		compiler.Options{Placer: compiler.GreedyPlacer{}, Region: &reg})
	if err != nil {
		t.Fatal(err)
	}

	es, err := s.NewEngineSet(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := es.RunSet(16); err != nil { // warm the iso cache + calendars
		t.Fatal(err)
	}
	if err := es.Swap(1, cand); err != nil {
		t.Fatal(err)
	}
	got, err := es.RunSet(16)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.NewEngineSet([]*compiler.Compiled{base[0], cand})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.RunSet(16)
	if err != nil {
		t.Fatal(err)
	}
	if got.MakespanNs != want.MakespanNs || got.AggregatePerSec != want.AggregatePerSec ||
		got.FairnessJain != want.FairnessJain || got.InterferenceWaitNs != want.InterferenceWaitNs {
		t.Fatalf("swapped set diverged: %+v vs %+v", got, want)
	}
	for i := range got.Models {
		g, w := got.Models[i], want.Models[i]
		if g.MakespanNs != w.MakespanNs || g.ThroughputPerSec != w.ThroughputPerSec ||
			g.IsolatedPerSec != w.IsolatedPerSec || g.LinkWaitNs != w.LinkWaitNs ||
			g.IsolatedLinkWaitNs != w.IsolatedLinkWaitNs {
			t.Fatalf("model %d diverged after swap: %+v vs %+v", i, g, w)
		}
	}
	// Repeat runs of the swapped set (iso baselines now cached) stay
	// bit-identical.
	again, err := es.RunSet(16)
	if err != nil {
		t.Fatal(err)
	}
	if again.MakespanNs != got.MakespanNs || again.AggregatePerSec != got.AggregatePerSec {
		t.Fatal("repeat RunSet with cached iso baselines diverged")
	}
	// And a batch-size change invalidates the iso cache correctly.
	got8, err := es.RunSet(8)
	if err != nil {
		t.Fatal(err)
	}
	want8, err := fresh.RunSet(8)
	if err != nil {
		t.Fatal(err)
	}
	if got8.AggregatePerSec != want8.AggregatePerSec || got8.FairnessJain != want8.FairnessJain {
		t.Fatalf("B=8 after B=16 diverged: %+v vs %+v", got8, want8)
	}
}

// TestEngineSetSwapValidation: bad swaps error and name the problem.
func TestEngineSetSwapValidation(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	base := compileSet(t, []string{"MLP-S", "CNN-S"}, compiler.MeshPlacer{}, cfg)
	es, err := s.NewEngineSet(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := es.Swap(5, base[0]); err == nil {
		t.Fatal("out-of-range slot must error")
	}
	wrong := compiled(t, "CNN-S", arch.MLCEPCM)
	if err := es.Swap(1, wrong); err == nil || !strings.Contains(err.Error(), "mixes designs") {
		t.Fatalf("mixed-design swap error = %v", err)
	}
	// A candidate overlapping the neighbour's tiles must be rejected by
	// the disjointness check.
	es2, err := s.NewEngineSet(compileSet(t, []string{"MLP-S", "CNN-S"}, compiler.MeshPlacer{}, cfg))
	if err != nil {
		t.Fatal(err)
	}
	solo := compiled(t, "CNN-S", arch.EinsteinBarrier) // full-fabric layout overlaps slot 0
	if err := es2.Swap(1, solo); err == nil || !strings.Contains(err.Error(), "both occupy tile") {
		t.Fatalf("overlapping swap error = %v", err)
	}
}
