package sim

import (
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/device"
)

// allDesigns is the paper set plus the registry-added designs — the
// engine must handle every registered design end to end.
var allDesigns = []arch.Design{
	arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier,
	arch.MLCEPCM, arch.EinsteinBarrierK64,
}

// TestEngineB1BitIdenticalToRun is the tentpole contract: the pipeline
// engine's single-inference numbers are the serial simulator's numbers,
// bit for bit, for every network and every design.
func TestEngineB1BitIdenticalToRun(t *testing.T) {
	s := newSim(t)
	for _, name := range bnn.ZooNames {
		for _, d := range allDesigns {
			c := compiled(t, name, d)
			serial, err := s.Run(c)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
			eng, err := s.NewEngine(c)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
			br, err := eng.RunBatch(1)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
			if br.LatencyNs != serial.LatencyNs {
				t.Fatalf("%s/%v: engine B=1 latency %v != serial %v", name, d, br.LatencyNs, serial.LatencyNs)
			}
			if br.EnergyPJPerInference != serial.EnergyPJ() {
				t.Fatalf("%s/%v: engine energy %v != serial %v", name, d, br.EnergyPJPerInference, serial.EnergyPJ())
			}
			er := eng.Result()
			if er.LatencyNs != serial.LatencyNs || er.EnergyPJ() != serial.EnergyPJ() ||
				er.Counters != serial.Counters {
				t.Fatalf("%s/%v: embedded result diverges from serial Run", name, d)
			}
		}
	}
}

// TestThroughputMonotoneUpToBound: streaming more samples never lowers
// throughput, and the achieved rate stays below the analytic
// steady-state ceiling of the busiest resource.
func TestThroughputMonotoneUpToBound(t *testing.T) {
	s := newSim(t)
	for _, name := range []string{"CNN-S", "CNN-M", "MLP-L"} {
		for _, d := range allDesigns {
			eng, err := s.NewEngine(compiled(t, name, d))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, d, err)
			}
			prev := 0.0
			for _, b := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
				br, err := eng.RunBatch(b)
				if err != nil {
					t.Fatalf("%s/%v B=%d: %v", name, d, b, err)
				}
				if br.ThroughputPerSec < prev {
					t.Fatalf("%s/%v: throughput dropped at B=%d: %g < %g",
						name, d, b, br.ThroughputPerSec, prev)
				}
				if br.ThroughputPerSec > br.SteadyStatePerSec*(1+1e-9) {
					t.Fatalf("%s/%v B=%d: throughput %g exceeds ceiling %g (%s)",
						name, d, b, br.ThroughputPerSec, br.SteadyStatePerSec, br.BottleneckName)
				}
				prev = br.ThroughputPerSec
			}
			// A deep batch must approach the ceiling: the pipeline gain is
			// real, not an accounting artifact.
			br, err := eng.RunBatch(1024)
			if err != nil {
				t.Fatal(err)
			}
			if br.ThroughputPerSec < 0.8*br.SteadyStatePerSec {
				t.Fatalf("%s/%v: B=1024 throughput %g far below ceiling %g",
					name, d, br.ThroughputPerSec, br.SteadyStatePerSec)
			}
		}
	}
}

// TestPipelineGainOverSerial: for multi-layer networks, streaming beats
// back-to-back single-sample execution (B× the B=1 latency), bounded by
// the stage count.
func TestPipelineGainOverSerial(t *testing.T) {
	s := newSim(t)
	eng, err := s.NewEngine(compiled(t, "CNN-L", arch.TacitEPCM))
	if err != nil {
		t.Fatal(err)
	}
	const b = 256
	br, err := eng.RunBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	serialNs := float64(b) * br.LatencyNs
	gain := serialNs / br.MakespanNs
	if gain <= 1 {
		t.Fatalf("streaming gain %g must exceed 1", gain)
	}
	if gain > float64(eng.StageCount()) {
		t.Fatalf("streaming gain %g exceeds pipeline depth %d", gain, eng.StageCount())
	}
}

// TestEngineOccupancy: stage busy fractions are sane and the bottleneck
// resource is the busiest.
func TestEngineOccupancy(t *testing.T) {
	s := newSim(t)
	eng, err := s.NewEngine(compiled(t, "CNN-M", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	br, err := eng.RunBatch(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Stages) != eng.StageCount() {
		t.Fatalf("%d stage stats for %d stages", len(br.Stages), eng.StageCount())
	}
	for _, st := range br.Stages {
		if st.Busy < 0 || st.Busy > 1.0000001 {
			t.Fatalf("occupancy %g outside [0,1] for %s", st.Busy, st.Name)
		}
		if st.Tiles < 1 {
			t.Fatalf("stage %s owns no tiles", st.Name)
		}
	}
	if br.BottleneckName == "" || br.BottleneckNs <= 0 {
		t.Fatalf("bottleneck = %q %g", br.BottleneckName, br.BottleneckNs)
	}
	if br.LinkWaitNs < 0 {
		t.Fatalf("negative link wait %g", br.LinkWaitNs)
	}
}

// TestEngineDeterministic: same compilation, same batch — same numbers,
// including across engine reuse.
func TestEngineDeterministic(t *testing.T) {
	s := newSim(t)
	c := compiled(t, "CNN-S", arch.EinsteinBarrierK64)
	e1, err := s.NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	a0, err := e1.RunBatch(32)
	if err != nil {
		t.Fatal(err)
	}
	a := a0.Clone() // results are engine-owned: retain across runs via Clone
	if _, err := e1.RunBatch(7); err != nil { // dirty the scratch
		t.Fatal(err)
	}
	b, err := e1.RunBatch(32)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.RunBatch(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*BatchResult{b, c2} {
		if a.MakespanNs != other.MakespanNs || a.ThroughputPerSec != other.ThroughputPerSec ||
			a.LinkWaitNs != other.LinkWaitNs {
			t.Fatalf("engine not deterministic: %+v vs %+v", a, other)
		}
	}
}

// TestRegistryDesignOrdering: the registry-added designs behave as
// their specs promise — wide-K is at least as fast as stock
// EinsteinBarrier everywhere, and MLC's denser FP layers cost it
// energy (pricier ADC), not correctness.
func TestRegistryDesignOrdering(t *testing.T) {
	s := newSim(t)
	for _, name := range bnn.ZooNames {
		eb, err := s.Run(compiled(t, name, arch.EinsteinBarrier))
		if err != nil {
			t.Fatal(err)
		}
		wide, err := s.Run(compiled(t, name, arch.EinsteinBarrierK64))
		if err != nil {
			t.Fatal(err)
		}
		if wide.LatencyNs > eb.LatencyNs {
			t.Fatalf("%s: wide-K latency %g exceeds stock EB %g", name, wide.LatencyNs, eb.LatencyNs)
		}
		tacit, err := s.Run(compiled(t, name, arch.TacitEPCM))
		if err != nil {
			t.Fatal(err)
		}
		mlc, err := s.Run(compiled(t, name, arch.MLCEPCM))
		if err != nil {
			t.Fatal(err)
		}
		if mlc.LatencyNs <= 0 || mlc.EnergyPJ() <= 0 {
			t.Fatalf("%s: MLC design produced non-positive results", name)
		}
		if mlc.LatencyNs < tacit.LatencyNs*0.999 {
			// MLC only densifies storage; it must not beat Tacit's latency
			// (the ADC hook can only slow conversions down).
			t.Fatalf("%s: MLC latency %g below Tacit %g", name, mlc.LatencyNs, tacit.LatencyNs)
		}
	}
}

func TestRunBatchRejectsBadBatch(t *testing.T) {
	s := newSim(t)
	eng, err := s.NewEngine(compiled(t, "MLP-S", arch.TacitEPCM))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunBatch(0); err == nil {
		t.Fatal("batch 0 must error")
	}
}

// geomDesign registers (once) a design whose TuneArch hook reshapes the
// tile grid — the engine must rebuild its mesh from the tuned geometry
// instead of routing on the simulator's shared one.
var geomDesign = arch.MustRegister(arch.DesignSpec{
	Name:    "Test-Geometry-Tuned",
	Tech:    device.OPCM,
	Mapping: arch.MappingTacit,
	WDM:     true,
	TuneArch: func(c arch.Config) arch.Config {
		c.TilesPerNode = 64 // 8×8 mesh instead of the shared 4×4
		c.ECoresPerTile = 2
		return c
	},
})

func TestEngineHonorsTuneArchGeometry(t *testing.T) {
	s := newSim(t)
	m, err := bnn.NewModel("CNN-M", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.DefaultConfig()
	c, err := compiler.Compile(m, cfg, geomDesign)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := s.NewEngine(c)
	if err != nil {
		t.Fatalf("engine must route on the tuned mesh: %v", err)
	}
	br, err := eng.RunBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	if br.ThroughputPerSec <= 0 || br.ThroughputPerSec > br.SteadyStatePerSec*(1+1e-9) {
		t.Fatalf("tuned-geometry batch run inconsistent: %g vs ceiling %g",
			br.ThroughputPerSec, br.SteadyStatePerSec)
	}
}
