package sim

import (
	"testing"

	"einsteinbarrier/internal/arch"
)

func TestPipelineBasics(t *testing.T) {
	s := newSim(t)
	r, err := s.Run(compiled(t, "CNN-M", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Pipeline(r)
	if err != nil {
		t.Fatal(err)
	}
	if p.BottleneckName == "" || p.BottleneckNs <= 0 {
		t.Fatalf("bottleneck = %q %g", p.BottleneckName, p.BottleneckNs)
	}
	if p.ThroughputPerSec <= 0 {
		t.Fatal("non-positive throughput")
	}
	// Throughput × bottleneck = 1 sample.
	if d := p.ThroughputPerSec * p.BottleneckNs / 1e9; d < 0.999 || d > 1.001 {
		t.Fatalf("throughput inconsistency %g", d)
	}
}

func TestPipelineBeatsSerial(t *testing.T) {
	// Multi-layer networks must gain from streaming, bounded by the
	// section count.
	s := newSim(t)
	r, _ := s.Run(compiled(t, "CNN-L", arch.TacitEPCM))
	p, err := Pipeline(r)
	if err != nil {
		t.Fatal(err)
	}
	gain := p.SpeedupOverSerial()
	if gain <= 1 {
		t.Fatalf("streaming gain %g must exceed 1", gain)
	}
	if gain > float64(len(r.PerLayer)) {
		t.Fatalf("streaming gain %g exceeds stage count %d", gain, len(r.PerLayer))
	}
}

func TestPipelineOccupancy(t *testing.T) {
	s := newSim(t)
	r, _ := s.Run(compiled(t, "MLP-M", arch.TacitEPCM))
	p, err := Pipeline(r)
	if err != nil {
		t.Fatal(err)
	}
	sawBottleneck := false
	for _, o := range p.Occupancy {
		if o.Busy < 0 || o.Busy > 1.0000001 {
			t.Fatalf("occupancy %g outside [0,1] for %s", o.Busy, o.Name)
		}
		if o.Name == p.BottleneckName && o.Busy > 0.999 {
			sawBottleneck = true
		}
	}
	if !sawBottleneck {
		t.Fatal("bottleneck stage must be fully busy")
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := Pipeline(nil); err == nil {
		t.Fatal("nil result should fail")
	}
	if _, err := Pipeline(&Result{}); err == nil {
		t.Fatal("empty result should fail")
	}
}

func TestPipelineOrderingAcrossDesigns(t *testing.T) {
	// Streaming throughput preserves the design ordering too.
	s := newSim(t)
	var tput [3]float64
	for i, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
		r, _ := s.Run(compiled(t, "CNN-M", d))
		p, err := Pipeline(r)
		if err != nil {
			t.Fatal(err)
		}
		tput[i] = p.ThroughputPerSec
	}
	if !(tput[0] < tput[1] && tput[1] < tput[2]) {
		t.Fatalf("throughput ordering broken: %v", tput)
	}
}
