package sim

import (
	"fmt"
	"math"
)

// Pipelined (streaming) execution. The Run method prices one inference
// end-to-end — the latency the paper's Fig. 7 reports. A spatial
// architecture additionally overlaps consecutive inferences: each layer
// section owns its own tiles, so once sample i leaves layer l, sample
// i+1 can enter it. In steady state the throughput is set by the
// slowest layer section (the pipeline bottleneck), not by the sum.
// This goes beyond the paper's evaluation (which is latency-only) and
// is documented as an extension in DESIGN.md.

// PipelineResult summarizes steady-state streaming behaviour.
type PipelineResult struct {
	// BottleneckName is the slowest layer section.
	BottleneckName string
	// BottleneckNs is its per-sample service time.
	BottleneckNs float64
	// ThroughputPerSec is 1/BottleneckNs.
	ThroughputPerSec float64
	// LatencyNs is the single-sample fill latency (same as Run).
	LatencyNs float64
	// Occupancy[i] is section i's busy fraction at steady state.
	Occupancy []LayerOccupancy
}

// LayerOccupancy is one pipeline stage's utilization.
type LayerOccupancy struct {
	Name string
	// Busy is serviceTime/bottleneckTime ∈ (0, 1].
	Busy float64
}

// Pipeline derives steady-state throughput from a Run result.
func Pipeline(r *Result) (*PipelineResult, error) {
	if r == nil || len(r.PerLayer) == 0 {
		return nil, fmt.Errorf("sim: result has no layer sections")
	}
	p := &PipelineResult{LatencyNs: r.LatencyNs, BottleneckNs: -1}
	for _, lt := range r.PerLayer {
		if lt.LatencyNs > p.BottleneckNs {
			p.BottleneckNs = lt.LatencyNs
			p.BottleneckName = lt.Name
		}
	}
	if p.BottleneckNs <= 0 {
		return nil, fmt.Errorf("sim: degenerate bottleneck %g", p.BottleneckNs)
	}
	p.ThroughputPerSec = 1e9 / p.BottleneckNs
	for _, lt := range r.PerLayer {
		p.Occupancy = append(p.Occupancy, LayerOccupancy{
			Name: lt.Name,
			Busy: math.Max(0, lt.LatencyNs) / p.BottleneckNs,
		})
	}
	return p, nil
}

// SpeedupOverSerial reports how much streaming beats back-to-back
// single-sample execution for a long batch: latency/bottleneck.
func (p *PipelineResult) SpeedupOverSerial() float64 {
	return p.LatencyNs / p.BottleneckNs
}
