package sim

import (
	"strings"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
)

func compileOne(t *testing.T, name string, placer compiler.Placer, cfg arch.Config) *compiler.Compiled {
	t.Helper()
	m, err := bnn.NewModel(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compiler.CompileWith(m, cfg, arch.EinsteinBarrier, compiler.Options{Placer: placer})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlacementEvaluatorValidation(t *testing.T) {
	s := newSim(t)
	if _, err := s.PlacementEvaluator(0); err == nil {
		t.Fatal("batch 0 must error")
	}
	pe, err := s.PlacementEvaluator(8)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Batch() != 8 {
		t.Fatalf("Batch() = %d", pe.Batch())
	}
	if pe.HitRate() != 0 {
		t.Fatal("hit rate before first lookup must be 0")
	}
	bad := &compiler.Compiled{ModelName: "X"}
	if _, err := pe.Score(bad); err == nil || !strings.Contains(err.Error(), "placement") {
		t.Fatalf("nil placement: %v", err)
	}
}

// TestPlacementEvaluatorMatchesEngine: the evaluator is the engine —
// Score must equal a direct NewEngine+RunBatch measurement, and the
// cached Result must be the same floats on a hit.
func TestPlacementEvaluatorMatchesEngine(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	const batch = 32
	pe, err := s.PlacementEvaluator(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, placer := range []compiler.Placer{compiler.GreedyPlacer{}, compiler.MeshPlacer{}} {
		c := compileOne(t, "CNN-S", placer, cfg)
		eng, err := s.NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.RunBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pe.Score(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.ThroughputPerSec {
			t.Fatalf("%s: evaluator %v != engine %v", placer.Name(), got, want.ThroughputPerSec)
		}
	}
}

// TestPlacementEvaluatorCaches: same fingerprint → one engine run; a
// recompile of the same layout (even relabeled) is a hit, a different
// layout is a miss.
func TestPlacementEvaluatorCaches(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	pe, err := s.PlacementEvaluator(16)
	if err != nil {
		t.Fatal(err)
	}
	mesh := compileOne(t, "MLP-S", compiler.MeshPlacer{}, cfg)
	first, err := pe.Score(mesh)
	if err != nil {
		t.Fatal(err)
	}
	again := compileOne(t, "MLP-S", compiler.MeshPlacer{}, cfg)
	again.Placement.Placer = "relabeled" // fingerprint excludes the name
	second, err := pe.Score(again)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("cache hit returned different score: %v vs %v", first, second)
	}
	if l, h := pe.Stats(); l != 2 || h != 1 {
		t.Fatalf("lookups=%d hits=%d after an identical recompile", l, h)
	}
	if _, err := pe.Score(compileOne(t, "MLP-S", compiler.GreedyPlacer{}, cfg)); err != nil {
		t.Fatal(err)
	}
	if l, h := pe.Stats(); l != 3 || h != 1 {
		t.Fatalf("lookups=%d hits=%d after a different layout", l, h)
	}
	if got := pe.HitRate(); got != 1.0/3.0 {
		t.Fatalf("hit rate %v", got)
	}
	// The cached BatchResult is shared by pointer across hits.
	r1, err := pe.Result(mesh)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pe.Result(again)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("cache hits must share one BatchResult")
	}
}

// TestSetEvaluatorObjective: Score is AggregatePerSec × FairnessJain of
// the set with the candidate in its slot, and the incumbent's own
// placement reproduces the plain RunSet measurement.
func TestSetEvaluatorObjective(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	cs := compileSet(t, []string{"MLP-S", "CNN-S"}, compiler.ShardPlacer{}, cfg)
	es, err := s.NewEngineSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 16
	sr, err := es.RunSet(batch)
	if err != nil {
		t.Fatal(err)
	}
	want := sr.AggregatePerSec * sr.FairnessJain
	for idx := range cs {
		se, err := s.SetEvaluator(cs, idx, batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := se.Score(cs[idx])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("slot %d: evaluator %v != RunSet objective %v", idx, got, want)
		}
		// Second score of the same candidate is a memo hit.
		if _, err := se.Score(cs[idx]); err != nil {
			t.Fatal(err)
		}
		if l, h := se.Stats(); l != 2 || h != 1 {
			t.Fatalf("slot %d: lookups=%d hits=%d", idx, l, h)
		}
		if se.HitRate() != 0.5 {
			t.Fatalf("slot %d: hit rate %v", idx, se.HitRate())
		}
	}
}

func TestSetEvaluatorValidation(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	cs := compileSet(t, []string{"MLP-S", "CNN-S"}, compiler.ShardPlacer{}, cfg)
	if _, err := s.SetEvaluator(nil, 0, 8); err == nil {
		t.Fatal("empty set must error")
	}
	if _, err := s.SetEvaluator(cs, 2, 8); err == nil {
		t.Fatal("slot outside the set must error")
	}
	if _, err := s.SetEvaluator(cs, -1, 8); err == nil {
		t.Fatal("negative slot must error")
	}
	if _, err := s.SetEvaluator(cs, 0, 0); err == nil {
		t.Fatal("batch 0 must error")
	}
	se, err := s.SetEvaluator(cs, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.Score(&compiler.Compiled{ModelName: "X"}); err == nil {
		t.Fatal("nil placement must error")
	}
	// A candidate that collides with the fixed neighbor's tiles is an
	// engine-set construction error, surfaced — not silently scored.
	clash := *cs[1]
	if _, err := se.Score(&clash); err == nil {
		t.Fatal("overlapping candidate must error through NewEngineSet")
	}
}
