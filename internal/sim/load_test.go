package sim

import (
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
)

func TestWeightLoadCostBasics(t *testing.T) {
	cfg := arch.DefaultConfig()
	for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
		c := compiled(t, "MLP-S", d)
		lc, err := WeightLoadCost(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if lc.LatencyNs <= 0 || lc.EnergyPJ <= 0 || lc.Writes != c.WeightWrites {
			t.Fatalf("%v: degenerate load cost %+v", d, lc)
		}
	}
}

func TestLoadScalesWithModel(t *testing.T) {
	cfg := arch.DefaultConfig()
	small := compiled(t, "MLP-S", arch.TacitEPCM)
	large := compiled(t, "MLP-L", arch.TacitEPCM)
	ls, err := WeightLoadCost(small, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := WeightLoadCost(large, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ll.EnergyPJ <= ls.EnergyPJ {
		t.Fatal("bigger model must cost more programming energy")
	}
}

func TestAmortizedOverheadShrinks(t *testing.T) {
	cfg := arch.DefaultConfig()
	s := newSim(t)
	c := compiled(t, "CNN-S", arch.EinsteinBarrier)
	r, err := s.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := WeightLoadCost(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	one := lc.AmortizedOverhead(r.LatencyNs, 1)
	many := lc.AmortizedOverhead(r.LatencyNs, 10000)
	if one <= many {
		t.Fatal("amortization must shrink with batch size")
	}
	if many > 0.05 {
		t.Fatalf("resident-weight overhead %.4f should be negligible at 10k inferences", many)
	}
	if lc.AmortizedOverhead(0, 10) != 0 || lc.AmortizedOverhead(100, 0) != 0 {
		t.Fatal("degenerate inputs must yield 0")
	}
}

func TestWeightLoadCostErrors(t *testing.T) {
	cfg := arch.DefaultConfig()
	if _, err := WeightLoadCost(&compiler.Compiled{}, cfg); err == nil {
		t.Fatal("expected error for empty compilation")
	}
	bad := cfg
	bad.Nodes = 0
	m, _ := bnn.NewModel("MLP-S", 1)
	c, _ := compiler.Compile(m, cfg, arch.TacitEPCM)
	if _, err := WeightLoadCost(c, bad); err == nil {
		t.Fatal("expected config error")
	}
}
