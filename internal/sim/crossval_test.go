package sim

import (
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/core"
)

// Cross-validation: the simulator's event counters must equal the
// closed-form counts derived independently from the mapping plans
// (internal/core). A divergence means the compiler emitted wrong
// event fields or the simulator multiplied them wrongly — exactly the
// class of bug that silently corrupts Figs. 7–8.

func TestCrossValidateTacitCounters(t *testing.T) {
	cfg := arch.DefaultConfig()
	s := newSim(t)
	for _, name := range bnn.ZooNames {
		m, err := bnn.NewModel(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(compiled(t, name, arch.TacitEPCM))
		if err != nil {
			t.Fatal(err)
		}
		var wantVMMs, wantADC int64
		for _, lc := range m.Costs() {
			if lc.Kind != "binary" {
				continue
			}
			plan, err := core.PlanTacit(lc.Work.N, lc.Work.M, cfg.CrossbarRows, cfg.CrossbarCols)
			if err != nil {
				t.Fatal(err)
			}
			wantVMMs += int64(plan.Tiles()) * int64(lc.Work.Positions)
			wantADC += int64(plan.ADCConversionsPerInput()) * int64(lc.Work.Positions)
		}
		if r.Counters.VMMs != wantVMMs {
			t.Fatalf("%s: VMMs = %d, plans say %d", name, r.Counters.VMMs, wantVMMs)
		}
		// FP layers also convert; binary-layer conversions are a lower
		// bound and must be included exactly.
		if r.Counters.ADCConversions < wantADC {
			t.Fatalf("%s: ADC conversions %d below binary-layer bound %d",
				name, r.Counters.ADCConversions, wantADC)
		}
	}
}

func TestCrossValidateBaselineCounters(t *testing.T) {
	cfg := arch.DefaultConfig()
	s := newSim(t)
	for _, name := range bnn.ZooNames {
		m, err := bnn.NewModel(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(compiled(t, name, arch.BaselineEPCM))
		if err != nil {
			t.Fatal(err)
		}
		var wantSteps int64
		for _, lc := range m.Costs() {
			if lc.Kind != "binary" {
				continue
			}
			plan, err := core.PlanCust(lc.Work.N, lc.Work.M, cfg.CrossbarRows, cfg.CrossbarCols/2)
			if err != nil {
				t.Fatal(err)
			}
			wantSteps += int64(plan.RowActivationsPerInput()) * int64(lc.Work.Positions)
		}
		if r.Counters.RowSteps != wantSteps {
			t.Fatalf("%s: row steps = %d, plans say %d", name, r.Counters.RowSteps, wantSteps)
		}
	}
}

func TestCrossValidateEBBatching(t *testing.T) {
	// EB's MMM count must be ceil(positions/K) per tile set.
	cfg := arch.DefaultConfig()
	s := newSim(t)
	m, err := bnn.NewModel("CNN-M", 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(compiled(t, "CNN-M", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	k := cfg.WDMCapacity
	for _, lc := range m.Costs() {
		if lc.Kind != "binary" {
			continue
		}
		plan, err := core.PlanTacit(lc.Work.N, lc.Work.M, cfg.CrossbarRows, cfg.CrossbarCols)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(plan.Tiles()) * int64((lc.Work.Positions+k-1)/k)
	}
	if r.Counters.MMMs != want {
		t.Fatalf("MMMs = %d, plans say %d", r.Counters.MMMs, want)
	}
}
