package sim

import (
	"fmt"
	"sync"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
)

// Engine-backed placement evaluators: the objective functions behind
// compiler.SearchPlacer. Both price candidates with the pipeline engine
// itself — RunBatch for a single model, RunSet for a co-located set —
// and memoize on the placement's canonical fingerprint, generalizing
// serve.Pricer's batch-size memoization to layouts. Neighborhood moves
// revisit layouts constantly (a border shift clamps back to the
// incumbent, annealing walks retrace themselves), so the cache is what
// makes engine-in-the-loop search affordable; BenchmarkPlacerSearch
// pins the hit rate.
//
// Cache misses are engineered to be cheap too: each evaluator keeps a
// pool of idle engines (engine sets) keyed on the compiled program's
// structural shape and re-prices a pooled engine (Engine.Reprice /
// EngineSet.Swap) instead of rebuilding calendars and stages per
// candidate, and concurrent misses on one fingerprint are collapsed
// with singleflight so parallel search workers compute it once.

// EvalCounters reports what an evaluator did: cache effectiveness and
// engine-pool reuse. Hits counts memo hits plus singleflight waits
// (lookups that did not pay a schedule). PoolBuilds/PoolReuses split
// the computes by whether they constructed an engine or re-priced a
// pooled one.
type EvalCounters struct {
	Lookups    int64 `json:"lookups"`
	Hits       int64 `json:"hits"`
	Computes   int64 `json:"computes"`
	PoolBuilds int64 `json:"pool_builds"`
	PoolReuses int64 `json:"pool_reuses"`
}

// HitRate is Hits/Lookups (0 before the first lookup).
func (ec EvalCounters) HitRate() float64 {
	if ec.Lookups == 0 {
		return 0
	}
	return float64(ec.Hits) / float64(ec.Lookups)
}

// PoolReuseRate is PoolReuses/Computes (0 before the first compute).
func (ec EvalCounters) PoolReuseRate() float64 {
	if ec.Computes == 0 {
		return 0
	}
	return float64(ec.PoolReuses) / float64(ec.Computes)
}

// evalFlight is one in-flight computation other lookups can wait on.
type evalFlight struct {
	done chan struct{}
	br   *BatchResult
	err  error
}

// PlacementEvaluator scores one model's candidate placements by batch
// throughput. Safe for concurrent use; concurrent misses on the same
// key collapse into one computation (singleflight).
type PlacementEvaluator struct {
	s     *Simulator
	batch int

	mu       sync.Mutex
	memo     map[string]*BatchResult // evaluator-owned clones
	inflight map[string]*evalFlight
	pool     map[string][]*Engine // structural shape → idle engines
	counters EvalCounters
}

// PlacementEvaluator builds an evaluator that prices candidates with
// Engine.RunBatch at the given batch size.
func (s *Simulator) PlacementEvaluator(batch int) (*PlacementEvaluator, error) {
	if batch < 1 {
		return nil, fmt.Errorf("sim: evaluator batch %d must be ≥ 1", batch)
	}
	return &PlacementEvaluator{
		s:        s,
		batch:    batch,
		memo:     map[string]*BatchResult{},
		inflight: map[string]*evalFlight{},
		pool:     map[string][]*Engine{},
	}, nil
}

// Batch returns the objective batch size.
func (pe *PlacementEvaluator) Batch() int { return pe.batch }

// Score implements compiler.Evaluator: measured inf/s of the candidate
// at the evaluator's batch size.
func (pe *PlacementEvaluator) Score(c *compiler.Compiled) (float64, error) {
	br, err := pe.Result(c)
	if err != nil {
		return 0, err
	}
	return br.ThroughputPerSec, nil
}

// CachedScore implements compiler.CachedEvaluator: it reports a
// previously priced layout's objective from the fingerprint memo alone,
// letting the search placer skip candidate compilation entirely on
// revisits. A probe that hits counts as a lookup+hit; a miss counts
// nothing (the subsequent Result call records it).
func (pe *PlacementEvaluator) CachedScore(model string, design arch.Design, p *compiler.Placement) (float64, bool) {
	key := model + "/" + design.String() + "/" + p.Fingerprint()
	pe.mu.Lock()
	defer pe.mu.Unlock()
	if br, ok := pe.memo[key]; ok {
		pe.counters.Lookups++
		pe.counters.Hits++
		return br.ThroughputPerSec, true
	}
	return 0, false
}

// Result returns the full BatchResult of a candidate, from the cache
// when its placement fingerprint was priced before. Callers must treat
// the result as read-only — it is shared across cache hits.
func (pe *PlacementEvaluator) Result(c *compiler.Compiled) (*BatchResult, error) {
	if c.Placement == nil {
		return nil, fmt.Errorf("sim: compiled %s has no placement to fingerprint", c.ModelName)
	}
	key := c.ModelName + "/" + c.Design.String() + "/" + c.Placement.Fingerprint()
	pe.mu.Lock()
	pe.counters.Lookups++
	if br, ok := pe.memo[key]; ok {
		pe.counters.Hits++
		pe.mu.Unlock()
		return br, nil
	}
	if fl, ok := pe.inflight[key]; ok {
		// Another goroutine is already pricing this fingerprint: wait for
		// its result instead of re-running the schedule.
		pe.counters.Hits++
		pe.mu.Unlock()
		<-fl.done
		return fl.br, fl.err
	}
	fl := &evalFlight{done: make(chan struct{})}
	pe.inflight[key] = fl
	pe.mu.Unlock()

	br, err := pe.compute(c)

	pe.mu.Lock()
	fl.br, fl.err = br, err
	if err == nil {
		pe.memo[key] = br
	}
	delete(pe.inflight, key)
	pe.mu.Unlock()
	close(fl.done)
	return br, err
}

// compute prices one candidate on a pooled (or fresh) engine and
// returns an evaluator-owned clone of the result.
func (pe *PlacementEvaluator) compute(c *compiler.Compiled) (*BatchResult, error) {
	// Engines are interchangeable across candidates of one (model,
	// design): the stage structure is fixed, only placements differ.
	shape := c.ModelName + "|" + c.Design.String()
	pe.mu.Lock()
	var eng *Engine
	if idle := pe.pool[shape]; len(idle) > 0 {
		eng = idle[len(idle)-1]
		pe.pool[shape] = idle[:len(idle)-1]
	}
	pe.mu.Unlock()
	reused := eng != nil
	var err error
	if reused {
		err = eng.Reprice(c)
	} else {
		eng, err = pe.s.NewEngine(c)
	}
	if err != nil {
		// A failed configure leaves the engine undefined: drop it.
		return nil, err
	}
	br, err := eng.RunBatch(pe.batch)
	if err != nil {
		return nil, err
	}
	clone := br.Clone()
	pe.mu.Lock()
	pe.pool[shape] = append(pe.pool[shape], eng)
	pe.counters.Computes++
	if reused {
		pe.counters.PoolReuses++
	} else {
		pe.counters.PoolBuilds++
	}
	pe.mu.Unlock()
	return clone, nil
}

// Counters returns a snapshot of the evaluator's perf counters.
func (pe *PlacementEvaluator) Counters() EvalCounters {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.counters
}

// Stats returns the cache counters: total lookups and hits.
func (pe *PlacementEvaluator) Stats() (lookups, hits int64) {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.counters.Lookups, pe.counters.Hits
}

// HitRate is hits/lookups (0 before the first lookup).
func (pe *PlacementEvaluator) HitRate() float64 {
	return pe.Counters().HitRate()
}

// setFlight is one in-flight set computation.
type setFlight struct {
	done chan struct{}
	v    float64
	err  error
}

// SetEvaluator scores candidate placements of ONE model of a co-located
// set by the whole fabric's interference-aware objective: the set's
// aggregate throughput penalized by Jain fairness (AggregatePerSec ×
// FairnessJain), so a layout that speeds its own model up by starving a
// neighbor's NoC paths does not win. The other models' compilations are
// fixed for the evaluator's lifetime; co-location search runs one
// evaluator per model (coordinate descent, eval.SearchCoLocate).
type SetEvaluator struct {
	s     *Simulator
	set   []*compiler.Compiled
	idx   int
	batch int

	mu       sync.Mutex
	memo     map[string]float64
	inflight map[string]*setFlight
	pool     []*EngineSet // idle sets (all built from the same base set)
	counters EvalCounters
}

// SetEvaluator builds the co-location objective for slot idx of the
// set. The set slice is captured by copy; candidates replace slot idx.
func (s *Simulator) SetEvaluator(set []*compiler.Compiled, idx, batch int) (*SetEvaluator, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("sim: set evaluator needs a non-empty set")
	}
	if idx < 0 || idx >= len(set) {
		return nil, fmt.Errorf("sim: set evaluator slot %d outside set of %d", idx, len(set))
	}
	if batch < 1 {
		return nil, fmt.Errorf("sim: evaluator batch %d must be ≥ 1", batch)
	}
	cp := make([]*compiler.Compiled, len(set))
	copy(cp, set)
	return &SetEvaluator{
		s:        s,
		set:      cp,
		idx:      idx,
		batch:    batch,
		memo:     map[string]float64{},
		inflight: map[string]*setFlight{},
	}, nil
}

// Score implements compiler.Evaluator: AggregatePerSec × FairnessJain
// of the set with the candidate in its slot.
func (se *SetEvaluator) Score(c *compiler.Compiled) (float64, error) {
	if c.Placement == nil {
		return 0, fmt.Errorf("sim: compiled %s has no placement to fingerprint", c.ModelName)
	}
	// The other slots are fixed, so the candidate's fingerprint alone
	// keys the memo.
	key := c.Placement.Fingerprint()
	se.mu.Lock()
	se.counters.Lookups++
	if v, ok := se.memo[key]; ok {
		se.counters.Hits++
		se.mu.Unlock()
		return v, nil
	}
	if fl, ok := se.inflight[key]; ok {
		se.counters.Hits++
		se.mu.Unlock()
		<-fl.done
		return fl.v, fl.err
	}
	fl := &setFlight{done: make(chan struct{})}
	se.inflight[key] = fl
	se.mu.Unlock()

	v, err := se.compute(c)

	se.mu.Lock()
	fl.v, fl.err = v, err
	if err == nil {
		se.memo[key] = v
	}
	delete(se.inflight, key)
	se.mu.Unlock()
	close(fl.done)
	return v, err
}

// CachedScore implements compiler.CachedEvaluator (the model/design
// arguments are ignored: a SetEvaluator is bound to one slot of one
// set, and the memo is keyed by candidate fingerprint alone).
func (se *SetEvaluator) CachedScore(_ string, _ arch.Design, p *compiler.Placement) (float64, bool) {
	key := p.Fingerprint()
	se.mu.Lock()
	defer se.mu.Unlock()
	if v, ok := se.memo[key]; ok {
		se.counters.Lookups++
		se.counters.Hits++
		return v, true
	}
	return 0, false
}

// compute swaps the candidate into a pooled (or fresh) engine set and
// runs the co-located schedule.
func (se *SetEvaluator) compute(c *compiler.Compiled) (float64, error) {
	se.mu.Lock()
	var es *EngineSet
	if n := len(se.pool); n > 0 {
		es = se.pool[n-1]
		se.pool = se.pool[:n-1]
	}
	se.mu.Unlock()
	reused := es != nil
	if !reused {
		var err error
		// The base set (incumbent in the slot) compiles once; Swap below
		// re-prices the slot with the candidate.
		if es, err = se.s.NewEngineSet(se.set); err != nil {
			return 0, err
		}
	}
	// On any error the set's state is undefined (a half-applied swap, an
	// overlapping candidate): drop it rather than pooling it.
	if err := es.Swap(se.idx, c); err != nil {
		return 0, err
	}
	sr, err := es.RunSet(se.batch)
	if err != nil {
		return 0, err
	}
	v := sr.AggregatePerSec * sr.FairnessJain
	se.mu.Lock()
	se.pool = append(se.pool, es)
	se.counters.Computes++
	if reused {
		se.counters.PoolReuses++
	} else {
		se.counters.PoolBuilds++
	}
	se.mu.Unlock()
	return v, nil
}

// Counters returns a snapshot of the evaluator's perf counters.
func (se *SetEvaluator) Counters() EvalCounters {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.counters
}

// Stats returns the cache counters: total lookups and hits.
func (se *SetEvaluator) Stats() (lookups, hits int64) {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.counters.Lookups, se.counters.Hits
}

// HitRate is hits/lookups (0 before the first lookup).
func (se *SetEvaluator) HitRate() float64 {
	return se.Counters().HitRate()
}
