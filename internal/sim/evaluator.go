package sim

import (
	"fmt"
	"sync"

	"einsteinbarrier/internal/compiler"
)

// Engine-backed placement evaluators: the objective functions behind
// compiler.SearchPlacer. Both price candidates with the pipeline engine
// itself — RunBatch for a single model, RunSet for a co-located set —
// and memoize on the placement's canonical fingerprint, generalizing
// serve.Pricer's batch-size memoization to layouts. Neighborhood moves
// revisit layouts constantly (a border shift clamps back to the
// incumbent, annealing walks retrace themselves), so the cache is what
// makes engine-in-the-loop search affordable; BenchmarkPlacerSearch
// pins the hit rate.

// PlacementEvaluator scores one model's candidate placements by batch
// throughput. Safe for concurrent use; concurrent misses on the same
// key both compute (deterministically identical) results and the last
// insert wins.
type PlacementEvaluator struct {
	s     *Simulator
	batch int

	mu      sync.Mutex
	memo    map[string]*BatchResult
	lookups int64
	hits    int64
}

// PlacementEvaluator builds an evaluator that prices candidates with
// Engine.RunBatch at the given batch size.
func (s *Simulator) PlacementEvaluator(batch int) (*PlacementEvaluator, error) {
	if batch < 1 {
		return nil, fmt.Errorf("sim: evaluator batch %d must be ≥ 1", batch)
	}
	return &PlacementEvaluator{s: s, batch: batch, memo: map[string]*BatchResult{}}, nil
}

// Batch returns the objective batch size.
func (pe *PlacementEvaluator) Batch() int { return pe.batch }

// Score implements compiler.Evaluator: measured inf/s of the candidate
// at the evaluator's batch size.
func (pe *PlacementEvaluator) Score(c *compiler.Compiled) (float64, error) {
	br, err := pe.Result(c)
	if err != nil {
		return 0, err
	}
	return br.ThroughputPerSec, nil
}

// Result returns the full BatchResult of a candidate, from the cache
// when its placement fingerprint was priced before. Callers must treat
// the result as read-only — it is shared across cache hits.
func (pe *PlacementEvaluator) Result(c *compiler.Compiled) (*BatchResult, error) {
	if c.Placement == nil {
		return nil, fmt.Errorf("sim: compiled %s has no placement to fingerprint", c.ModelName)
	}
	key := c.ModelName + "/" + c.Design.String() + "/" + c.Placement.Fingerprint()
	pe.mu.Lock()
	pe.lookups++
	if br, ok := pe.memo[key]; ok {
		pe.hits++
		pe.mu.Unlock()
		return br, nil
	}
	pe.mu.Unlock()
	eng, err := pe.s.NewEngine(c)
	if err != nil {
		return nil, err
	}
	br, err := eng.RunBatch(pe.batch)
	if err != nil {
		return nil, err
	}
	pe.mu.Lock()
	pe.memo[key] = br
	pe.mu.Unlock()
	return br, nil
}

// Stats returns the cache counters: total lookups and hits.
func (pe *PlacementEvaluator) Stats() (lookups, hits int64) {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.lookups, pe.hits
}

// HitRate is hits/lookups (0 before the first lookup).
func (pe *PlacementEvaluator) HitRate() float64 {
	l, h := pe.Stats()
	if l == 0 {
		return 0
	}
	return float64(h) / float64(l)
}

// SetEvaluator scores candidate placements of ONE model of a co-located
// set by the whole fabric's interference-aware objective: the set's
// aggregate throughput penalized by Jain fairness (AggregatePerSec ×
// FairnessJain), so a layout that speeds its own model up by starving a
// neighbor's NoC paths does not win. The other models' compilations are
// fixed for the evaluator's lifetime; co-location search runs one
// evaluator per model (coordinate descent, eval.SearchCoLocate).
type SetEvaluator struct {
	s     *Simulator
	set   []*compiler.Compiled
	idx   int
	batch int

	mu      sync.Mutex
	memo    map[string]float64
	lookups int64
	hits    int64
}

// SetEvaluator builds the co-location objective for slot idx of the
// set. The set slice is captured by copy; candidates replace slot idx.
func (s *Simulator) SetEvaluator(set []*compiler.Compiled, idx, batch int) (*SetEvaluator, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("sim: set evaluator needs a non-empty set")
	}
	if idx < 0 || idx >= len(set) {
		return nil, fmt.Errorf("sim: set evaluator slot %d outside set of %d", idx, len(set))
	}
	if batch < 1 {
		return nil, fmt.Errorf("sim: evaluator batch %d must be ≥ 1", batch)
	}
	cp := make([]*compiler.Compiled, len(set))
	copy(cp, set)
	return &SetEvaluator{s: s, set: cp, idx: idx, batch: batch, memo: map[string]float64{}}, nil
}

// Score implements compiler.Evaluator: AggregatePerSec × FairnessJain
// of the set with the candidate in its slot.
func (se *SetEvaluator) Score(c *compiler.Compiled) (float64, error) {
	if c.Placement == nil {
		return 0, fmt.Errorf("sim: compiled %s has no placement to fingerprint", c.ModelName)
	}
	// The other slots are fixed, so the candidate's fingerprint alone
	// keys the memo.
	key := c.Placement.Fingerprint()
	se.mu.Lock()
	se.lookups++
	if v, ok := se.memo[key]; ok {
		se.hits++
		se.mu.Unlock()
		return v, nil
	}
	se.mu.Unlock()
	cand := make([]*compiler.Compiled, len(se.set))
	copy(cand, se.set)
	cand[se.idx] = c
	es, err := se.s.NewEngineSet(cand)
	if err != nil {
		return 0, err
	}
	sr, err := es.RunSet(se.batch)
	if err != nil {
		return 0, err
	}
	v := sr.AggregatePerSec * sr.FairnessJain
	se.mu.Lock()
	se.memo[key] = v
	se.mu.Unlock()
	return v, nil
}

// Stats returns the cache counters: total lookups and hits.
func (se *SetEvaluator) Stats() (lookups, hits int64) {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.lookups, se.hits
}

// HitRate is hits/lookups (0 before the first lookup).
func (se *SetEvaluator) HitRate() float64 {
	l, h := se.Stats()
	if l == 0 {
		return 0
	}
	return float64(h) / float64(l)
}
