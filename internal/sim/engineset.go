package sim

import (
	"fmt"
	"math"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
)

// Multi-program scheduling. An EngineSet runs several co-located
// compilations (compiler.CompileSet) against ONE fabric clock: every
// model owns its tiles (disjoint regions, enforced here), but the mesh
// links and chip ports are shared, so one model's drain traffic and
// host egress collide with its neighbours'. RunSet streams B samples
// of every model round-robin and reports per-model throughput next to
// the isolated baseline — the co-location interference the per-model
// engines cannot see — plus a Jain fairness index over the normalized
// rates.
//
// Like Engine, a set is built for reuse: Swap re-prices one slot with
// a new candidate compilation (the coordinate-descent move of
// SetEvaluator) without rebuilding the other engines, and the isolated
// baselines — which do not depend on the neighbours at all — are cached
// per slot until the slot or the batch size changes.

// EngineSet schedules co-located models. Build with NewEngineSet; like
// Engine, a set carries run scratch and is not safe for concurrent
// RunSet calls.
type EngineSet struct {
	engines []*Engine
	design  arch.Design
	fb      *fabricClock
	binds   []binding  // per-engine bindings to the shared clock
	bindPs  []*binding // the same bindings, for variadic reseal
	// iso caches the isolated per-model baselines (cloned — engine
	// results are recycled): invalidated per slot by Swap, wholesale by
	// a batch-size change.
	iso  []*BatchResult
	isoB int
	// run scratch.
	fill, mk []float64
}

// Engines exposes the per-model engines (isolated pricing, ceilings).
func (es *EngineSet) Engines() []*Engine { return es.engines }

// NewEngineSet builds the shared-fabric scheduler over co-located
// compilations. All models must target the same design (one fabric)
// and occupy pairwise-disjoint tiles.
func (s *Simulator) NewEngineSet(cs []*compiler.Compiled) (*EngineSet, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("sim: engine set needs at least one compilation")
	}
	es := &EngineSet{fb: newFabricClock(), design: cs[0].Design}
	for _, c := range cs {
		if c.Design != es.design {
			return nil, fmt.Errorf("sim: engine set mixes designs %v and %v (one fabric, one design)", es.design, c.Design)
		}
		e, err := s.NewEngine(c)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", c.ModelName, err)
		}
		es.engines = append(es.engines, e)
	}
	n := len(es.engines)
	es.binds = make([]binding, n)
	es.iso = make([]*BatchResult, n)
	es.fill = make([]float64, n)
	es.mk = make([]float64, n)
	for i, e := range es.engines {
		e.bindTo(es.fb, &es.binds[i])
		es.bindPs = append(es.bindPs, &es.binds[i])
	}
	es.fb.seal(es.bindPs...)
	if err := es.checkDisjoint(); err != nil {
		return nil, err
	}
	return es, nil
}

// checkDisjoint enforces that co-located models do not share compute
// tiles.
func (es *EngineSet) checkDisjoint() error {
	owner := map[int]string{}
	for _, e := range es.engines {
		for _, t := range e.tileSet() {
			if prev, ok := owner[t]; ok {
				return fmt.Errorf("sim: models %s and %s both occupy tile %d (regions must be disjoint)",
					prev, e.res.ModelName, t)
			}
			owner[t] = e.res.ModelName
		}
	}
	return nil
}

// Swap re-prices slot idx with a new compilation of the same design,
// reusing the slot's engine and the shared calendars — the cheap path
// for evaluating many candidate placements of one model against fixed
// neighbours. The slot's isolated baseline is invalidated; the
// neighbours' stay cached. On error the set is left in an undefined
// state and must be discarded.
func (es *EngineSet) Swap(idx int, c *compiler.Compiled) error {
	if idx < 0 || idx >= len(es.engines) {
		return fmt.Errorf("sim: swap slot %d outside set of %d", idx, len(es.engines))
	}
	if c.Design != es.design {
		return fmt.Errorf("sim: engine set mixes designs %v and %v (one fabric, one design)", es.design, c.Design)
	}
	if err := es.engines[idx].Reprice(c); err != nil {
		return fmt.Errorf("sim: %s: %w", c.ModelName, err)
	}
	es.engines[idx].bindTo(es.fb, &es.binds[idx])
	es.fb.seal(es.bindPs...)
	es.iso[idx] = nil
	return es.checkDisjoint()
}

// SetModelResult is one co-located model's view of a RunSet.
type SetModelResult struct {
	ModelName string
	Design    arch.Design
	// Region is the fabric slice the model was placed into.
	Region compiler.Region
	// LatencyNs is the model's single-inference critical path (Fig. 7
	// pricing, co-location independent).
	LatencyNs float64
	// FillLatencyNs is when the model's FIRST sample completed inside
	// the co-located schedule.
	FillLatencyNs float64
	// MakespanNs / ThroughputPerSec describe the model's B samples under
	// co-location; IsolatedPerSec is the same engine alone on the
	// fabric. SlowdownX = IsolatedPerSec / ThroughputPerSec (≥ ~1).
	MakespanNs       float64
	ThroughputPerSec float64
	IsolatedPerSec   float64
	SlowdownX        float64
	// LinkWaitNs is the model's NoC stall time under co-location;
	// IsolatedLinkWaitNs the same model alone — the difference is pure
	// interference.
	LinkWaitNs         float64
	IsolatedLinkWaitNs float64
	// EnergyPJPerInference is the per-sample energy.
	EnergyPJPerInference float64
}

// SetResult is the outcome of a co-located batch run.
type SetResult struct {
	// Batch is the per-model sample count.
	Batch int
	// MakespanNs is when the last sample of any model completed.
	MakespanNs float64
	// AggregatePerSec is the fabric's total delivered rate:
	// models × batch / makespan.
	AggregatePerSec float64
	// FairnessJain is Jain's index over the models' normalized rates
	// (co-located / isolated): 1.0 = perfectly even interference, 1/n =
	// one model starved.
	FairnessJain float64
	// InterferenceWaitNs is the total link-wait added by co-location
	// (Σ co-located waits − Σ isolated waits, floored at 0).
	InterferenceWaitNs float64
	// Models has one entry per co-located model, in input order.
	Models []SetModelResult
}

// RunSet streams b samples of every model through the shared fabric,
// round-robin by sample (sample i of every model is admitted before
// sample i+1 of any). Deterministic: same set, same b, same result.
func (es *EngineSet) RunSet(b int) (*SetResult, error) {
	if b < 1 {
		return nil, fmt.Errorf("sim: batch size %d must be ≥ 1", b)
	}
	// Isolated baselines first (each on a private fabric clock). These
	// run untraced — the exported timeline is the co-located schedule,
	// not three schedules overlaid on the same time axis. The baselines
	// are independent of the neighbours, so they are cached (cloned)
	// until their slot is swapped or the batch size changes.
	if es.isoB != b {
		clear(es.iso)
		es.isoB = b
	}
	for i, e := range es.engines {
		if es.iso[i] != nil {
			continue
		}
		tr := e.tr
		e.tr = nil
		br, err := e.RunBatch(b)
		e.tr = tr
		if err != nil {
			return nil, err
		}
		es.iso[i] = br.Clone()
	}
	iso := es.iso
	// Co-located run against the shared clock.
	es.fb.ensure(b)
	es.fb.reset()
	for _, e := range es.engines {
		e.resetLocal()
	}
	fill, mk := es.fill, es.mk
	for sample := 0; sample < b; sample++ {
		for i, e := range es.engines {
			t := e.runSample(&es.binds[i])
			if sample == 0 {
				fill[i] = t
			}
			mk[i] = t
		}
	}
	out := &SetResult{Batch: b}
	var sumX, sumX2 float64
	for i, e := range es.engines {
		co := float64(b) * 1e9 / mk[i]
		m := SetModelResult{
			ModelName:            e.res.ModelName,
			Design:               e.res.Design,
			LatencyNs:            e.res.LatencyNs,
			FillLatencyNs:        fill[i],
			MakespanNs:           mk[i],
			ThroughputPerSec:     co,
			IsolatedPerSec:       iso[i].ThroughputPerSec,
			SlowdownX:            iso[i].ThroughputPerSec / co,
			LinkWaitNs:           e.linkWaitNs,
			IsolatedLinkWaitNs:   iso[i].LinkWaitNs,
			EnergyPJPerInference: e.res.EnergyPJ(),
		}
		if pl := e.placement; pl != nil {
			m.Region = pl.Region
		}
		x := co / iso[i].ThroughputPerSec
		sumX += x
		sumX2 += x * x
		out.MakespanNs = math.Max(out.MakespanNs, mk[i])
		out.InterferenceWaitNs += math.Max(e.linkWaitNs-iso[i].LinkWaitNs, 0)
		out.Models = append(out.Models, m)
	}
	n := float64(len(es.engines))
	out.AggregatePerSec = n * float64(b) * 1e9 / out.MakespanNs
	if sumX2 > 0 {
		out.FairnessJain = sumX * sumX / (n * sumX2)
	}
	es.traceMeta(out)
	return out, nil
}
