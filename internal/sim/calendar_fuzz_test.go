package sim

import (
	"encoding/binary"
	"math"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/energy"
)

// FuzzResClock cross-checks the arena calendar (binary-search
// earliestFree, insertion-hint book) against a naive reference that
// keeps spans in insertion order and resolves conflicts by O(n²)
// fixpoint interval scanning. Both must agree bit-for-bit on every
// booked start, and the arena's sorted/non-overlapping invariant must
// hold after every insertion — this is the structure every engine
// schedule is built on.
//
// Input encoding: little-endian float64 pairs (ready, dur), each pair
// one booking request. Out-of-range values are clamped/skipped rather
// than rejected so the fuzzer explores freely.
func FuzzResClock(f *testing.F) {
	// Seed with the request stream of a real run: replay the busiest
	// resource calendar of a CNN-L B=256 EinsteinBarrier schedule as
	// (start, duration) bookings, plus hand-picked degenerate cases.
	f.Add(seedFromRun(f))
	f.Add(encodeReqs([][2]float64{{0, 10}, {0, 10}, {5, 3}, {100, 1}, {2, 200}}))
	f.Add(encodeReqs([][2]float64{{50, 5}, {10, 5}, {30, 5}, {10, 5}, {0, 100}}))
	f.Add(encodeReqs([][2]float64{{1e12, 1}, {0, 1e12}, {1e12 - 1, 2}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 256 // keeps the O(n²) reference fast enough to explore
		nOps := len(data) / 16
		if nOps > maxOps {
			nOps = maxOps
		}
		if nOps == 0 {
			return
		}

		var cal vcCal
		cal.grow(0)
		cal.beginCount()
		cal.perSample[0] = 1
		cal.ensure(nOps) // segCap = nOps bookings on resource 0
		cal.reset()

		var ref []busySpan // insertion order, deliberately unsorted
		for i := 0; i < nOps; i++ {
			ready := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16:]))
			dur := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
			if math.IsNaN(ready) || math.IsInf(ready, 0) || ready < 0 || ready > 1e15 {
				continue
			}
			if math.IsNaN(dur) || math.IsInf(dur, 0) || dur <= 0 || dur > 1e12 {
				continue
			}

			got := cal.earliestFree(0, ready, dur)
			want := naiveEarliestFree(ref, ready, dur)
			if got != want {
				t.Fatalf("op %d: earliestFree(%v, %v) = %v, reference = %v",
					i, ready, dur, got, want)
			}
			if got+dur == got {
				// The duration underflows at this magnitude: booking would
				// create a zero-width span, which the engine cannot produce
				// (durations are ns-scale serialization times). The query
				// above was still cross-checked.
				continue
			}
			cal.book(0, got, dur)
			ref = append(ref, busySpan{s: want, e: want + dur})

			// The arena segment must stay sorted and non-overlapping —
			// earliestFree's binary search depends on it.
			seg := cal.arena[cal.off[0] : cal.off[0]+cal.n[0]]
			if len(seg) != len(ref) {
				t.Fatalf("op %d: %d spans in arena, %d booked", i, len(seg), len(ref))
			}
			for j := 1; j < len(seg); j++ {
				if seg[j].s < seg[j-1].e {
					t.Fatalf("op %d: spans %d,%d overlap or unsorted: [%v,%v) then [%v,%v)",
						i, j-1, j, seg[j-1].s, seg[j-1].e, seg[j].s, seg[j].e)
				}
			}
		}
	})
}

// naiveEarliestFree is the obviously-correct reference: scan the
// unsorted span list to fixpoint, pushing start past any overlap.
func naiveEarliestFree(spans []busySpan, ready, dur float64) float64 {
	start := ready
	for changed := true; changed; {
		changed = false
		for _, sp := range spans {
			if sp.s < start+dur && sp.e > start {
				start = sp.e
				changed = true
			}
		}
	}
	return start
}

func encodeReqs(reqs [][2]float64) []byte {
	out := make([]byte, 0, len(reqs)*16)
	for _, r := range reqs {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[:8], math.Float64bits(r[0]))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(r[1]))
		out = append(out, b[:]...)
	}
	return out
}

// seedFromRun replays the busiest bulk-channel resource of a real
// CNN-L B=256 schedule as a booking-request stream.
func seedFromRun(f *testing.F) []byte {
	f.Helper()
	s, err := New(arch.DefaultConfig(), energy.DefaultCostParams())
	if err != nil {
		f.Fatal(err)
	}
	m, err := bnn.NewModel("CNN-L", 1)
	if err != nil {
		f.Fatal(err)
	}
	c, err := compiler.Compile(m, arch.DefaultConfig(), arch.EinsteinBarrier)
	if err != nil {
		f.Fatal(err)
	}
	eng, err := s.NewEngine(c)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := eng.RunBatch(256); err != nil {
		f.Fatal(err)
	}
	// Pick the resource with the most bookings across both channels.
	best, bestN := &eng.fb.fwd.cal, 0
	var bestR int32
	for _, cal := range []*vcCal{&eng.fb.fwd.cal, &eng.fb.bulk.cal} {
		for r, n := range cal.n {
			if n > bestN {
				best, bestR, bestN = cal, int32(r), n
			}
		}
	}
	reqs := make([][2]float64, 0, bestN)
	seg := best.arena[best.off[bestR] : best.off[bestR]+best.n[bestR]]
	for _, sp := range seg {
		reqs = append(reqs, [2]float64{sp.s, sp.e - sp.s})
	}
	if len(reqs) > 256 {
		reqs = reqs[:256]
	}
	return encodeReqs(reqs)
}
