package sim

import (
	"sync"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
)

// Concurrency contracts of the evaluators (run under -race in CI):
// parallel search workers hammering overlapping candidates must agree
// on every score, and singleflight must collapse concurrent misses so
// each unique fingerprint is computed exactly once no matter how many
// goroutines race on it.

// TestPlacementEvaluatorConcurrent: 8 goroutines × 4 rounds over 5
// candidates (two models, three placers) — every score identical to the
// serial answer, computes == unique fingerprints, and the bookkeeping
// identities hold.
func TestPlacementEvaluatorConcurrent(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	var cands []*compiler.Compiled
	for _, model := range []string{"CNN-S", "MLP-S"} {
		for _, p := range []compiler.Placer{compiler.GreedyPlacer{}, compiler.MeshPlacer{}, compiler.ShardPlacer{}} {
			m, err := bnn.NewModel(model, 1)
			if err != nil {
				t.Fatal(err)
			}
			c, err := compiler.CompileWith(m, cfg, arch.EinsteinBarrier, compiler.Options{Placer: p})
			if err != nil {
				t.Fatal(err)
			}
			cands = append(cands, c)
		}
	}
	unique := map[string]bool{}
	for _, c := range cands {
		unique[c.ModelName+"/"+c.Design.String()+"/"+c.Placement.Fingerprint()] = true
	}

	// Serial ground truth from an independent evaluator.
	ref, err := s.PlacementEvaluator(16)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(cands))
	for i, c := range cands {
		if want[i], err = ref.Score(c); err != nil {
			t.Fatal(err)
		}
	}

	pe, err := s.PlacementEvaluator(16)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 8, 4
	start := make(chan struct{})
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				for i := range cands {
					// Rotate per worker so goroutines collide on different
					// candidates at different times.
					j := (i + w) % len(cands)
					got, err := pe.Score(cands[j])
					if err != nil {
						errs <- err
						return
					}
					if got != want[j] {
						t.Errorf("worker %d: candidate %d scored %v, want %v", w, j, got, want[j])
						return
					}
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ec := pe.Counters()
	if ec.Computes != int64(len(unique)) {
		t.Fatalf("computes = %d, want one per unique fingerprint (%d)", ec.Computes, len(unique))
	}
	if wantL := int64(workers * rounds * len(cands)); ec.Lookups != wantL {
		t.Fatalf("lookups = %d, want %d", ec.Lookups, wantL)
	}
	if ec.Hits != ec.Lookups-ec.Computes {
		t.Fatalf("hits = %d, want lookups−computes = %d", ec.Hits, ec.Lookups-ec.Computes)
	}
	if ec.PoolBuilds+ec.PoolReuses != ec.Computes {
		t.Fatalf("pool builds %d + reuses %d != computes %d", ec.PoolBuilds, ec.PoolReuses, ec.Computes)
	}
}

// TestSetEvaluatorConcurrent: same contract for the co-location
// objective — candidates re-placed inside the slot's region, scored
// from many goroutines.
func TestSetEvaluatorConcurrent(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	cs := compileSet(t, []string{"MLP-S", "CNN-S"}, compiler.MeshPlacer{}, cfg)
	reg := cs[1].Placement.Region
	cands := []*compiler.Compiled{cs[1]}
	for _, p := range []compiler.Placer{compiler.GreedyPlacer{}, compiler.MeshPlacer{}} {
		m, err := bnn.NewModel("CNN-S", 1)
		if err != nil {
			t.Fatal(err)
		}
		c, err := compiler.CompileWith(m, cfg, arch.EinsteinBarrier, compiler.Options{Placer: p, Region: &reg})
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, c)
	}
	unique := map[string]bool{}
	for _, c := range cands {
		unique[c.Placement.Fingerprint()] = true
	}

	ref, err := s.SetEvaluator(cs, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(cands))
	for i, c := range cands {
		if want[i], err = ref.Score(c); err != nil {
			t.Fatal(err)
		}
	}

	se, err := s.SetEvaluator(cs, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 6, 3
	start := make(chan struct{})
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				for i := range cands {
					j := (i + w) % len(cands)
					got, err := se.Score(cands[j])
					if err != nil {
						errs <- err
						return
					}
					if got != want[j] {
						t.Errorf("worker %d: candidate %d scored %v, want %v", w, j, got, want[j])
						return
					}
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ec := se.Counters()
	if ec.Computes != int64(len(unique)) {
		t.Fatalf("computes = %d, want one per unique fingerprint (%d)", ec.Computes, len(unique))
	}
	if ec.Hits != ec.Lookups-ec.Computes {
		t.Fatalf("hits = %d, want lookups−computes = %d", ec.Hits, ec.Lookups-ec.Computes)
	}
	if ec.PoolBuilds+ec.PoolReuses != ec.Computes {
		t.Fatalf("pool builds %d + reuses %d != computes %d", ec.PoolBuilds, ec.PoolReuses, ec.Computes)
	}
}

// TestPlacementEvaluatorPoolReuse: sequential misses of one structural
// shape share one pooled engine — one build, the rest re-priced.
func TestPlacementEvaluatorPoolReuse(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	pe, err := s.PlacementEvaluator(16)
	if err != nil {
		t.Fatal(err)
	}
	unique := map[string]bool{}
	for _, p := range []compiler.Placer{compiler.GreedyPlacer{}, compiler.MeshPlacer{}, compiler.ShardPlacer{}} {
		c := compileOne(t, "CNN-S", p, cfg)
		unique[c.Placement.Fingerprint()] = true
		if _, err := pe.Score(c); err != nil {
			t.Fatal(err)
		}
	}
	n := int64(len(unique))
	if n < 2 {
		t.Fatalf("test needs ≥ 2 distinct layouts, got %d", n)
	}
	ec := pe.Counters()
	if ec.Computes != n || ec.PoolBuilds != 1 || ec.PoolReuses != n-1 {
		t.Fatalf("computes=%d builds=%d reuses=%d, want %d/1/%d", ec.Computes, ec.PoolBuilds, ec.PoolReuses, n, n-1)
	}
	if got := ec.PoolReuseRate(); got != float64(n-1)/float64(n) {
		t.Fatalf("pool reuse rate %v", got)
	}
}

// TestPlacementEvaluatorCachedScore: the compile-skipping probe hits
// only what Result has priced, and a hit counts as lookup+hit while a
// miss counts nothing.
func TestPlacementEvaluatorCachedScore(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	pe, err := s.PlacementEvaluator(16)
	if err != nil {
		t.Fatal(err)
	}
	c := compileOne(t, "MLP-S", compiler.MeshPlacer{}, cfg)
	if _, ok := pe.CachedScore(c.ModelName, c.Design, c.Placement); ok {
		t.Fatal("probe before any pricing must miss")
	}
	if ec := pe.Counters(); ec.Lookups != 0 || ec.Hits != 0 {
		t.Fatalf("miss probe mutated counters: %+v", ec)
	}
	want, err := pe.Score(c)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := pe.CachedScore(c.ModelName, c.Design, c.Placement)
	if !ok || got != want {
		t.Fatalf("probe after pricing = (%v, %v), want (%v, true)", got, ok, want)
	}
	if ec := pe.Counters(); ec.Lookups != 2 || ec.Hits != 1 {
		t.Fatalf("counters after probe hit: %+v", ec)
	}
	// A different model's identical fingerprint must not collide.
	if _, ok := pe.CachedScore("CNN-S", c.Design, c.Placement); ok {
		t.Fatal("probe keyed on a different model must miss")
	}
}

// TestSetEvaluatorCachedScore: the slot-bound probe keys on the
// candidate fingerprint alone.
func TestSetEvaluatorCachedScore(t *testing.T) {
	s := newSim(t)
	cfg := arch.DefaultConfig()
	cs := compileSet(t, []string{"MLP-S", "CNN-S"}, compiler.ShardPlacer{}, cfg)
	se, err := s.SetEvaluator(cs, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := se.CachedScore(cs[1].ModelName, cs[1].Design, cs[1].Placement); ok {
		t.Fatal("probe before any pricing must miss")
	}
	want, err := se.Score(cs[1])
	if err != nil {
		t.Fatal(err)
	}
	got, ok := se.CachedScore("ignored", cs[1].Design, cs[1].Placement)
	if !ok || got != want {
		t.Fatalf("probe after pricing = (%v, %v), want (%v, true)", got, ok, want)
	}
}
