// Package energy holds the per-event latency and energy cost tables the
// architecture simulator uses to turn counted hardware events into
// time and energy. The paper obtained these numbers from MNEMOSENE ePCM
// characterization and Synopsys synthesis; here they are explicit,
// literature-derived parameters (see DESIGN.md) that a user can
// re-calibrate. The photonic static powers implement the paper's
// Eq. (2) (TIAs) and Eq. (3) (transmitter).
package energy

import (
	"fmt"

	"einsteinbarrier/internal/photonics"
)

// CostParams is the complete cost table for one technology point.
type CostParams struct {
	// --- latencies (ns) ---

	// RowStepNs is one CustBinaryMap step: word-line activation, PCSA
	// sensing of all columns, and the local 5-bit counters (the digital
	// popcount tree is pipelined behind it).
	RowStepNs float64
	// SettleENs is the analog settling time of an ePCM crossbar VMM.
	SettleENs float64
	// SettleONs is the optical settling/propagation time of an oPCM
	// crossbar read — photonic reads are near-speed-of-light and fast
	// photodetectors follow at GHz rates.
	SettleONs float64
	// ADCENs is one conversion of the ePCM readout ADC (SAR-type).
	ADCENs float64
	// ADCONs is one conversion of the oPCM readout chain (TIA + fast
	// flash ADC, required anyway at photonic line rates).
	ADCONs float64
	// DigitalAddNs is one partial-popcount add in the ECore.
	DigitalAddNs float64
	// PopcountTreeNs is one pass of the baseline's global popcount tree.
	PopcountTreeNs float64
	// LayerOverheadNs is the fixed per-layer cost on the CIM designs:
	// instruction dispatch, operand steering, receiver-buffer drain and
	// the NoC transfer of activations to the next layer's tiles.
	LayerOverheadNs float64

	// --- energies (pJ) ---

	// PCSADevicePJ is the per-device energy of a pre-charge sense: the
	// 2T2R baseline senses 2·m devices per row step. SAs are cheap —
	// the baseline's energy advantage (paper §VI-B observation 1).
	PCSADevicePJ float64
	// CounterPJ is the per-step energy of the baseline's local 5-bit
	// counters + popcount-tree slice.
	CounterPJ float64
	// CellReadEPJ is the per-cell energy of an ePCM VMM: the cell
	// conducts at the read voltage for the full settling window, far
	// costlier than a transient PCSA sense.
	CellReadEPJ float64
	// CellReadOPJ is the per-cell optical absorption/pass energy of an
	// oPCM read (the 1 ns window; laser power is priced separately).
	CellReadOPJ float64
	// ADCEPJ / ADCOPJ per conversion; ADCs are the power-hungry part of
	// TacitMap's readout (paper §VI-B observation 1).
	ADCEPJ float64
	ADCOPJ float64
	// DACPJ per driven-row conversion.
	DACPJ float64
	// DigitalAddPJ and PopcountPJ per digital op.
	DigitalAddPJ float64
	PopcountPJ   float64
	// LayerOverheadPJ per layer (control, buffers, NoC).
	LayerOverheadPJ float64

	// --- static powers (mW) ---

	// TIAPowerMW per receiver column (Eq. (2) uses 2 mW each).
	TIAPowerMW float64
	// TIAEnergyPJ is the energy of one TIA conversion slot (the TIA is
	// powered while its column's sample is deserialized).
	TIAEnergyPJ float64
	// LaserPowerMW is the transmitter pump (part of Eq. (3)).
	LaserPowerMW float64
}

// DefaultCostParams returns the evaluation defaults. Latency anchors:
// PCSA row reads are SRAM-like (~10 ns); ePCM VMM settling is ~100 ns
// (ISAAC/PUMA-class); SAR ADC conversions ~15 ns; photonic reads settle
// in ~1 ns with ~5 ns conversion lanes. Energy anchors: SA sense ≈
// 50 fJ/column, SAR ADC ≈ 2 pJ, DAC ≈ 0.2 pJ, array activation a few
// tens of pJ.
func DefaultCostParams() CostParams {
	return CostParams{
		RowStepNs:       10,
		SettleENs:       100,
		SettleONs:       1,
		ADCENs:          15,
		ADCONs:          5,
		DigitalAddNs:    0.5,
		PopcountTreeNs:  2,
		LayerOverheadNs: 500,

		PCSADevicePJ:    0.03,
		CounterPJ:       0.4,
		CellReadEPJ:     1.5,
		CellReadOPJ:     0.15,
		ADCEPJ:          3.0,
		ADCOPJ:          3.0,
		DACPJ:           0.2,
		DigitalAddPJ:    0.05,
		PopcountPJ:      0.4,
		LayerOverheadPJ: 1500,

		TIAPowerMW:   photonics.TIAPowerMW,
		TIAEnergyPJ:  6.0,
		LaserPowerMW: 100,
	}
}

// Validate rejects non-physical tables.
func (c CostParams) Validate() error {
	pos := map[string]float64{
		"RowStepNs": c.RowStepNs, "SettleENs": c.SettleENs, "SettleONs": c.SettleONs,
		"ADCENs": c.ADCENs, "ADCONs": c.ADCONs,
		"PCSADevicePJ": c.PCSADevicePJ, "CellReadEPJ": c.CellReadEPJ,
		"CellReadOPJ": c.CellReadOPJ,
		"ADCEPJ":      c.ADCEPJ, "ADCOPJ": c.ADCOPJ,
	}
	for name, v := range pos {
		if v <= 0 {
			return fmt.Errorf("energy: %s must be positive, got %g", name, v)
		}
	}
	nonneg := map[string]float64{
		"DigitalAddNs": c.DigitalAddNs, "PopcountTreeNs": c.PopcountTreeNs,
		"LayerOverheadNs": c.LayerOverheadNs, "DACPJ": c.DACPJ,
		"DigitalAddPJ": c.DigitalAddPJ, "PopcountPJ": c.PopcountPJ,
		"LayerOverheadPJ": c.LayerOverheadPJ, "TIAPowerMW": c.TIAPowerMW,
		"LaserPowerMW": c.LaserPowerMW, "CounterPJ": c.CounterPJ,
		"TIAEnergyPJ": c.TIAEnergyPJ,
	}
	for name, v := range nonneg {
		if v < 0 {
			return fmt.Errorf("energy: %s must be non-negative, got %g", name, v)
		}
	}
	return nil
}

// WithADCResolutionScale returns a copy of the table with the
// electronic readout scaled for a higher-resolution conversion: a
// design that decodes more levels per cell (see device.MLCParams)
// needs extra ADC bits, which cost conversion time (latFactor) and
// energy (energyFactor — each extra SAR bit roughly doubles the
// converter energy). This is the standard cost hook for registry
// designs that trade cell density against readout precision.
func (c CostParams) WithADCResolutionScale(latFactor, energyFactor float64) CostParams {
	c.ADCENs *= latFactor
	c.ADCEPJ *= energyFactor
	return c
}

// VMMStepENs is the latency of one ePCM TacitMap VMM step including the
// shared-ADC readout rounds.
func (c CostParams) VMMStepENs(adcRounds int) float64 {
	return c.SettleENs + float64(adcRounds)*c.ADCENs
}

// VMMStepONs is the latency of one oPCM VMM/MMM step (K wavelengths are
// detected by parallel TIA lanes, so K does not appear here — the
// paper's deserializing-receiver design, §IV-A1).
func (c CostParams) VMMStepONs(adcRounds int) float64 {
	return c.SettleONs + float64(adcRounds)*c.ADCONs
}

// TransmitterPowerMW returns the paper's Eq. (3) transmitter power for
// WDM capacity k driving `rows` modulated rows (laser + modulators +
// tuning). Only the rows a layer actually drives are modulated.
func (c CostParams) TransmitterPowerMW(k, rows int) float64 {
	tx := photonics.TransmitterConfig{
		Capacity: k, RowCount: rows,
		LaserPowerMW:   c.LaserPowerMW,
		CombEfficiency: 0.3, VOAExtinctionDB: 25,
		MuxInsertionLossDB: 1.5, ChannelIsolationDB: -30,
	}
	return tx.TransmitterPowerMW()
}

// StaticOpticalPowerMW returns the total static optical power of one
// oPCM ECore per the paper's Eq. (2) + Eq. (3): N column TIAs plus the
// transmitter (laser, modulators, tuning) for capacity K and M rows.
func (c CostParams) StaticOpticalPowerMW(rows, cols, k int) float64 {
	return photonics.CrossbarTIAPowerMW(cols) + c.TransmitterPowerMW(k, rows)
}

// Breakdown is an energy report by component.
type Breakdown struct {
	CrossbarPJ float64 // array activations (rows driven, cells read)
	ADCPJ      float64
	DACPJ      float64
	SensePJ    float64 // PCSA row steps
	DigitalPJ  float64 // adds + popcount trees
	ControlPJ  float64 // per-layer overheads
	StaticPJ   float64 // optical static power × busy time
}

// TotalPJ sums the breakdown.
func (b Breakdown) TotalPJ() float64 {
	return b.CrossbarPJ + b.ADCPJ + b.DACPJ + b.SensePJ + b.DigitalPJ + b.ControlPJ + b.StaticPJ
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.CrossbarPJ += o.CrossbarPJ
	b.ADCPJ += o.ADCPJ
	b.DACPJ += o.DACPJ
	b.SensePJ += o.SensePJ
	b.DigitalPJ += o.DigitalPJ
	b.ControlPJ += o.ControlPJ
	b.StaticPJ += o.StaticPJ
}
