package energy

import "testing"

func TestDefaultAreaParamsValid(t *testing.T) {
	if err := DefaultAreaParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAreaValidateRejects(t *testing.T) {
	p := DefaultAreaParams()
	p.ADC = 0
	if err := p.Validate(); err == nil {
		t.Fatal("expected error")
	}
	p = DefaultAreaParams()
	p.Laser = -1
	if err := p.Validate(); err == nil {
		t.Fatal("expected error")
	}
}

func TestBaselineAreaComposition(t *testing.T) {
	p := DefaultAreaParams()
	b := p.BaselineArrayArea(256, 128)
	if b.Cells != 256*128*p.Cell2T2R {
		t.Fatalf("cells area = %g", b.Cells)
	}
	if b.Photonic != 0 {
		t.Fatal("electronic baseline has no photonics")
	}
	if b.Total() <= b.Cells {
		t.Fatal("total must include peripheries")
	}
}

func TestTacitAreaADCSharing(t *testing.T) {
	p := DefaultAreaParams()
	shared := p.TacitArrayArea(256, 256, 8)
	private := p.TacitArrayArea(256, 256, 1)
	if shared.Converters >= private.Converters {
		t.Fatal("ADC sharing must shrink converter area")
	}
	// 256 cols / 8 = 32 ADCs + 256 DACs.
	want := 32*p.ADC + 256*p.DAC
	if shared.Converters != want {
		t.Fatalf("converters = %g, want %g", shared.Converters, want)
	}
}

// TestSameDeviceCountSameCellBudget pins the paper's §III note: both
// mappings use the same total number of devices for a layer — the 2T2R
// cell is twice the 1T1R cell, and TacitMap stores twice the rows.
func TestSameDeviceCountSameCellBudget(t *testing.T) {
	p := DefaultAreaParams()
	// Layer n=128 weight vectors × m=128 bits.
	// CustBinaryMap: 128 rows × 128 logical cols of 2T2R.
	base := p.BaselineArrayArea(128, 128).Cells
	// TacitMap: 2m=256 rows × n=128 cols of 1T1R.
	tacit := p.TacitArrayArea(256, 128, 8).Cells
	if base != tacit {
		t.Fatalf("cell areas differ: baseline %g vs tacit %g", base, tacit)
	}
}

func TestEBAreaDominatedByPhotonics(t *testing.T) {
	p := DefaultAreaParams()
	eb := p.EinsteinBarrierArrayArea(256, 256, 8, 16, 8)
	if eb.Photonic <= eb.Converters {
		t.Fatal("photonic area should dominate converters in an oPCM core")
	}
	if eb.Total() <= p.TacitArrayArea(256, 256, 8).Total() {
		t.Fatal("the photonic core must be larger than the electronic one — that is its cost")
	}
}

func TestEBLaserAmortization(t *testing.T) {
	p := DefaultAreaParams()
	solo := p.EinsteinBarrierArrayArea(256, 256, 8, 16, 1)
	pooled := p.EinsteinBarrierArrayArea(256, 256, 8, 16, 16)
	if pooled.Photonic >= solo.Photonic {
		t.Fatal("sharing the laser must shrink per-core photonic area")
	}
	defaulted := p.EinsteinBarrierArrayArea(256, 256, 8, 16, 0)
	if defaulted.Photonic != solo.Photonic {
		t.Fatal("ecoresPerLaser < 1 should clamp to 1")
	}
}

func TestEBAreaGrowsWithK(t *testing.T) {
	p := DefaultAreaParams()
	prev := 0.0
	for _, k := range []int{1, 2, 4, 8, 16} {
		a := p.EinsteinBarrierArrayArea(256, 256, 8, k, 8).Total()
		if a <= prev {
			t.Fatalf("area not growing at K=%d", k)
		}
		prev = a
	}
}
