package energy

import (
	"einsteinbarrier/internal/device"
)

// ReprogramCost prices one full crossbar recalibration pass from the
// per-cell write counts a Reprogram call reports. Energy is the sum of
// per-cell write energies; latency assumes row-parallel programming
// (all cells of a row written together, SET and RESET pulses
// interleaved), so the time is writeRounds × the slower pulse. For
// ePCM, setWrites cells take the SET pulse and resetWrites the RESET
// pulse; oPCM prices every write with the single phase-transition cost
// (pass setWrites+resetWrites as setWrites and 0 resets, or split —
// only the sum matters).
type ReprogramCost struct {
	SetWrites   int64
	ResetWrites int64
	EnergyPJ    float64
	LatencyNs   float64
}

// TotalWrites is the number of cell writes priced.
func (c ReprogramCost) TotalWrites() int64 { return c.SetWrites + c.ResetWrites }

// Add accumulates o into c (counts and energy sum; latency sums too —
// tiles share programming circuitry, so recalibration is serialized
// across tiles).
func (c *ReprogramCost) Add(o ReprogramCost) {
	c.SetWrites += o.SetWrites
	c.ResetWrites += o.ResetWrites
	c.EnergyPJ += o.EnergyPJ
	c.LatencyNs += o.LatencyNs
}

// ReprogramEPCM prices an ePCM recalibration: setWrites SET pulses and
// resetWrites RESET pulses over a rows-tall array (rows ≤ 0 is treated
// as 1, i.e. fully serial programming).
func ReprogramEPCM(setWrites, resetWrites int64, rows int, p device.EPCMParams) ReprogramCost {
	if rows <= 0 {
		rows = 1
	}
	c := ReprogramCost{SetWrites: setWrites, ResetWrites: resetWrites}
	c.EnergyPJ = float64(setWrites)*p.SetEnergyPJ + float64(resetWrites)*p.ResetEnergyPJ
	// Row-parallel programming: ceil(writes/rows) pulse rounds per kind.
	setRounds := (setWrites + int64(rows) - 1) / int64(rows)
	resetRounds := (resetWrites + int64(rows) - 1) / int64(rows)
	c.LatencyNs = float64(setRounds)*p.SetLatencyNs + float64(resetRounds)*p.ResetLatencyNs
	return c
}

// ReprogramOPCM prices an oPCM recalibration: every cell write is one
// phase transition regardless of direction.
func ReprogramOPCM(setWrites, resetWrites int64, rows int, p device.OPCMParams) ReprogramCost {
	if rows <= 0 {
		rows = 1
	}
	c := ReprogramCost{SetWrites: setWrites, ResetWrites: resetWrites}
	writes := setWrites + resetWrites
	c.EnergyPJ = float64(writes) * p.WriteEnergyPJ
	rounds := (writes + int64(rows) - 1) / int64(rows)
	c.LatencyNs = float64(rounds) * p.WriteLatencyNs
	return c
}

// ReprogramForTech dispatches on the technology of the given array
// configuration-style inputs.
func ReprogramForTech(tech device.Technology, setWrites, resetWrites int64, rows int,
	epcm device.EPCMParams, opcm device.OPCMParams) ReprogramCost {
	if tech == device.OPCM {
		return ReprogramOPCM(setWrites, resetWrites, rows, opcm)
	}
	return ReprogramEPCM(setWrites, resetWrites, rows, epcm)
}
