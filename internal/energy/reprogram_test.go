package energy

import (
	"testing"

	"einsteinbarrier/internal/device"
)

func TestReprogramEPCMPricing(t *testing.T) {
	p := device.DefaultEPCMParams()
	c := ReprogramEPCM(100, 50, 10, p)
	wantE := 100*p.SetEnergyPJ + 50*p.ResetEnergyPJ
	if c.EnergyPJ != wantE {
		t.Fatalf("energy %g want %g", c.EnergyPJ, wantE)
	}
	// Row-parallel: ⌈100/10⌉ SET rounds + ⌈50/10⌉ RESET rounds.
	wantL := 10*p.SetLatencyNs + 5*p.ResetLatencyNs
	if c.LatencyNs != wantL {
		t.Fatalf("latency %g want %g", c.LatencyNs, wantL)
	}
	if c.TotalWrites() != 150 {
		t.Fatalf("total writes %d want 150", c.TotalWrites())
	}
	// rows ≤ 0 degrades to fully serial programming.
	serial := ReprogramEPCM(3, 2, 0, p)
	if serial.LatencyNs != 3*p.SetLatencyNs+2*p.ResetLatencyNs {
		t.Fatalf("serial latency %g", serial.LatencyNs)
	}
}

func TestReprogramOPCMPricing(t *testing.T) {
	p := device.DefaultOPCMParams()
	c := ReprogramOPCM(7, 3, 4, p)
	if c.EnergyPJ != 10*p.WriteEnergyPJ {
		t.Fatalf("energy %g want %g", c.EnergyPJ, 10*p.WriteEnergyPJ)
	}
	if c.LatencyNs != 3*p.WriteLatencyNs { // ⌈10/4⌉ rounds
		t.Fatalf("latency %g want %g", c.LatencyNs, 3*p.WriteLatencyNs)
	}
}

func TestReprogramForTechDispatchAndAdd(t *testing.T) {
	ep, op := device.DefaultEPCMParams(), device.DefaultOPCMParams()
	e := ReprogramForTech(device.EPCM, 5, 5, 1, ep, op)
	if e.EnergyPJ != 5*ep.SetEnergyPJ+5*ep.ResetEnergyPJ {
		t.Fatalf("ePCM dispatch priced %g", e.EnergyPJ)
	}
	o := ReprogramForTech(device.OPCM, 5, 5, 1, ep, op)
	if o.EnergyPJ != 10*op.WriteEnergyPJ {
		t.Fatalf("oPCM dispatch priced %g", o.EnergyPJ)
	}
	var sum ReprogramCost
	sum.Add(e)
	sum.Add(o)
	if sum.TotalWrites() != 20 || sum.EnergyPJ != e.EnergyPJ+o.EnergyPJ {
		t.Fatalf("Add: writes %d energy %g", sum.TotalWrites(), sum.EnergyPJ)
	}
	if sum.LatencyNs != e.LatencyNs+o.LatencyNs {
		t.Fatalf("Add latency %g", sum.LatencyNs)
	}
}
