package energy

import (
	"fmt"
)

// Area model. The paper's methodology (§V-A) synthesizes the extra CMOS
// components and applies technology scaling to put every design at the
// same node; here the same bookkeeping is explicit: per-component areas
// in µm², composed per design. The 2T2R baseline pays double the cell
// area but cheap sense amplifiers; TacitMap pays ADCs; EinsteinBarrier
// pays photonic real estate (microrings, waveguides, TIAs), which is
// the dominant cost of integrated photonics.

// AreaParams holds per-component areas in µm² (32 nm-class logic,
// literature-typical analog/photonic blocks).
type AreaParams struct {
	// Cell1T1R and Cell2T2R are per-logical-bit cell areas.
	Cell1T1R float64
	Cell2T2R float64
	// OPCMCell is one PCM-on-waveguide element including its waveguide
	// pitch share.
	OPCMCell float64
	// ADC is one SAR/flash ADC, DAC one row driver, SA one pre-charge
	// sense amplifier with its counter slice.
	ADC, DAC, SA float64
	// TIA is one transimpedance amplifier lane.
	TIA float64
	// Microring is one resonator (comb line or mux filter) with thermal
	// tuner; VOA one attenuator.
	Microring, VOA float64
	// Laser is the (possibly off-chip-coupled) pump footprint.
	Laser float64
	// DigitalPerPopcountBit is the popcount-tree area per column bit.
	DigitalPerPopcountBit float64
}

// DefaultAreaParams returns literature-typical values.
func DefaultAreaParams() AreaParams {
	return AreaParams{
		Cell1T1R:              0.05,
		Cell2T2R:              0.10,
		OPCMCell:              12,
		ADC:                   1500,
		DAC:                   50,
		SA:                    15,
		TIA:                   400,
		Microring:             300,
		VOA:                   250,
		Laser:                 250000,
		DigitalPerPopcountBit: 8,
	}
}

// Validate rejects non-physical areas.
func (p AreaParams) Validate() error {
	vals := map[string]float64{
		"Cell1T1R": p.Cell1T1R, "Cell2T2R": p.Cell2T2R, "OPCMCell": p.OPCMCell,
		"ADC": p.ADC, "DAC": p.DAC, "SA": p.SA, "TIA": p.TIA,
		"Microring": p.Microring, "VOA": p.VOA, "Laser": p.Laser,
		"DigitalPerPopcountBit": p.DigitalPerPopcountBit,
	}
	for name, v := range vals {
		if v <= 0 {
			return fmt.Errorf("energy: area %s must be positive, got %g", name, v)
		}
	}
	return nil
}

// AreaBreakdown reports per-component crossbar-unit area in µm².
type AreaBreakdown struct {
	Cells      float64
	Converters float64 // ADCs + DACs (or SAs)
	Photonic   float64 // TIAs + rings + VOAs + laser share
	Digital    float64 // popcount trees and adders
}

// Total sums the breakdown.
func (b AreaBreakdown) Total() float64 {
	return b.Cells + b.Converters + b.Photonic + b.Digital
}

// BaselineArrayArea returns the area of one CustBinaryMap 2T2R array
// with `rows` word lines and `logicalCols` 2T2R bit positions.
func (p AreaParams) BaselineArrayArea(rows, logicalCols int) AreaBreakdown {
	return AreaBreakdown{
		Cells:      float64(rows*logicalCols) * p.Cell2T2R,
		Converters: float64(logicalCols) * p.SA,
		Digital:    float64(logicalCols) * 5 * p.DigitalPerPopcountBit, // 5-bit counters + tree share
	}
}

// TacitArrayArea returns the area of one TacitMap 1T1R ePCM array with
// shared ADCs (one per colsPerADC columns).
func (p AreaParams) TacitArrayArea(rows, cols, colsPerADC int) AreaBreakdown {
	nADC := (cols + colsPerADC - 1) / colsPerADC
	return AreaBreakdown{
		Cells:      float64(rows*cols) * p.Cell1T1R,
		Converters: float64(nADC)*p.ADC + float64(rows)*p.DAC,
		Digital:    float64(cols) * p.DigitalPerPopcountBit,
	}
}

// EinsteinBarrierArrayArea returns the area of one oPCM VCore plus its
// ECore transmitter share: K comb rings, per-row VOAs and mux rings,
// per-column TIAs, shared ADCs, and a laser share amortized over
// `ecoresPerLaser` cores.
func (p AreaParams) EinsteinBarrierArrayArea(rows, cols, colsPerADC, k, ecoresPerLaser int) AreaBreakdown {
	if ecoresPerLaser < 1 {
		ecoresPerLaser = 1
	}
	nADC := (cols + colsPerADC - 1) / colsPerADC
	photonic := float64(cols)*p.TIA + // receiver lanes (Eq. 2's N TIAs)
		float64(k)*p.Microring + // comb lines
		float64(k*rows)*p.VOA/float64(k) + // VOA banks are row-wide, shared across λ in time
		float64(2*k)*p.Microring + // DMUX+MUX filters
		p.Laser/float64(ecoresPerLaser)
	return AreaBreakdown{
		Cells:      float64(rows*cols) * p.OPCMCell,
		Converters: float64(nADC) * p.ADC,
		Photonic:   photonic,
		Digital:    float64(cols) * p.DigitalPerPopcountBit,
	}
}
