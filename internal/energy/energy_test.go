package energy

import (
	"math"
	"testing"

	"einsteinbarrier/internal/photonics"
)

func TestDefaultsValid(t *testing.T) {
	if err := DefaultCostParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*CostParams){
		func(c *CostParams) { c.RowStepNs = 0 },
		func(c *CostParams) { c.SettleENs = -1 },
		func(c *CostParams) { c.ADCEPJ = 0 },
		func(c *CostParams) { c.CellReadOPJ = 0 },
		func(c *CostParams) { c.DACPJ = -1 },
		func(c *CostParams) { c.TIAEnergyPJ = -1 },
		func(c *CostParams) { c.LayerOverheadNs = -1 },
	}
	for i, mutate := range cases {
		c := DefaultCostParams()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestVMMStepLatencies(t *testing.T) {
	c := DefaultCostParams()
	if got, want := c.VMMStepENs(8), c.SettleENs+8*c.ADCENs; got != want {
		t.Fatalf("ePCM step = %g, want %g", got, want)
	}
	if got, want := c.VMMStepONs(8), c.SettleONs+8*c.ADCONs; got != want {
		t.Fatalf("oPCM step = %g, want %g", got, want)
	}
	// The photonic speed advantage is the point of the technology.
	if c.VMMStepONs(8) >= c.VMMStepENs(8) {
		t.Fatal("oPCM step must be faster than ePCM step")
	}
}

func TestBaselineStepCheaperThanVMM(t *testing.T) {
	// §VI-B observation 1 requires the per-device PCSA sense to be far
	// cheaper than a conducting cell read.
	c := DefaultCostParams()
	if c.PCSADevicePJ*5 > c.CellReadEPJ {
		t.Fatalf("PCSA %g pJ not meaningfully cheaper than cell read %g pJ",
			c.PCSADevicePJ, c.CellReadEPJ)
	}
}

func TestTransmitterPowerMatchesEq3(t *testing.T) {
	c := DefaultCostParams()
	k, rows := 16, 256
	km := float64(k * rows)
	want := c.LaserPowerMW + photonics.ModulatorPowerMW*km +
		photonics.ModulatorPowerMW*(km+1)/float64(k)*photonics.TuningPowerMW
	if got := c.TransmitterPowerMW(k, rows); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Eq.3 = %g, want %g", got, want)
	}
}

func TestStaticOpticalPowerIncludesEq2(t *testing.T) {
	c := DefaultCostParams()
	total := c.StaticOpticalPowerMW(256, 256, 16)
	tx := c.TransmitterPowerMW(16, 256)
	if math.Abs(total-tx-512) > 1e-9 { // Eq.2: 256 × 2 mW
		t.Fatalf("TIA share = %g, want 512", total-tx)
	}
}

func TestTransmitterPowerScalesWithRows(t *testing.T) {
	c := DefaultCostParams()
	if c.TransmitterPowerMW(16, 64) >= c.TransmitterPowerMW(16, 256) {
		t.Fatal("transmitter power must grow with modulated rows")
	}
}

func TestBreakdownTotalAndAdd(t *testing.T) {
	a := Breakdown{CrossbarPJ: 1, ADCPJ: 2, DACPJ: 3, SensePJ: 4, DigitalPJ: 5, ControlPJ: 6, StaticPJ: 7}
	if a.TotalPJ() != 28 {
		t.Fatalf("TotalPJ = %g", a.TotalPJ())
	}
	b := a
	b.Add(a)
	if b.TotalPJ() != 56 {
		t.Fatalf("Add/TotalPJ = %g", b.TotalPJ())
	}
}

func TestWithADCResolutionScale(t *testing.T) {
	base := DefaultCostParams()
	scaled := base.WithADCResolutionScale(1.5, 2)
	if scaled.ADCENs != 1.5*base.ADCENs || scaled.ADCEPJ != 2*base.ADCEPJ {
		t.Fatalf("ADC scaling wrong: %g/%g", scaled.ADCENs, scaled.ADCEPJ)
	}
	// Everything else untouched, and the base is not mutated.
	if scaled.ADCONs != base.ADCONs || scaled.SettleENs != base.SettleENs {
		t.Fatal("unrelated fields changed")
	}
	if base.ADCENs != DefaultCostParams().ADCENs {
		t.Fatal("receiver mutated")
	}
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
}
