// Package device models the non-volatile memory cells underlying the
// simulated crossbars: electronic phase-change memory (ePCM, a resistive
// 1T1R/2T2R cell read electrically) and optical phase-change memory
// (oPCM, a PCM patch on a waveguide read by light transmission).
//
// The paper's evaluation uses proprietary MNEMOSENE ePCM
// characterization data; this package substitutes parameterized models
// with defaults taken from the open literature (see DESIGN.md). All
// constants are exposed through Params structs so a user with real
// characterization data can re-calibrate.
//
// Both technologies are used in *binary* mode in this work: Cardoso et
// al. (DATE 2023) showed multi-level oPCM scalar multiplication loses
// accuracy at realistic noise, while two well-separated levels remain
// robust — exactly the property BNN vectors need (paper §II-C).
package device

import (
	"fmt"
	"math"
	"math/rand"
)

// Technology identifies the physical substrate of a cell or array.
type Technology int

const (
	// EPCM is electronic phase-change memory (resistive read-out).
	EPCM Technology = iota
	// OPCM is optical phase-change memory (transmittance read-out).
	OPCM
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case EPCM:
		return "ePCM"
	case OPCM:
		return "oPCM"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// EPCMParams describes an electronic PCM cell population.
type EPCMParams struct {
	// GOn is the mean low-resistance (crystalline, SET) conductance in
	// siemens. Default 50 µS.
	GOn float64
	// GOff is the mean high-resistance (amorphous, RESET) conductance in
	// siemens. Default 0.5 µS (100× ratio).
	GOff float64
	// ProgramSigma is the relative (lognormal) programming variability of
	// the SET state; the RESET state uses 2× this value, reflecting the
	// larger spread of amorphous PCM.
	ProgramSigma float64
	// DriftNu is the amorphous resistance drift exponent: at time t the
	// RESET conductance decays as G(t) = G0 · (t/t0)^(-DriftNu). Drift is
	// one of the ePCM design challenges that oPCM avoids (paper §II-C).
	DriftNu float64
	// DriftT0Seconds is the reference time t0 for drift, typically the
	// read-after-program delay used during characterization.
	DriftT0Seconds float64
	// ReadNoiseSigma is the relative 1/f + thermal read-noise applied per
	// read as a Gaussian multiplier on the instantaneous conductance.
	ReadNoiseSigma float64
	// ReadVoltage is the bit-line read voltage in volts.
	ReadVoltage float64
	// SetLatency / ResetLatency are per-cell write latencies in ns.
	SetLatencyNs, ResetLatencyNs float64
	// SetEnergy / ResetEnergy are per-cell write energies in pJ.
	SetEnergyPJ, ResetEnergyPJ float64
}

// DefaultEPCMParams returns literature-typical ePCM constants
// (Ge2Sb2Te5-class devices, e.g. Joshi et al., Nat. Commun. 2020).
func DefaultEPCMParams() EPCMParams {
	// ProgramSigma reflects binary programming with iterative
	// program-and-verify (the standard practice for PCM inference
	// arrays, cf. Joshi et al. 2020): the SET distribution is tightened
	// to ~1%, which keeps a 256-row popcount decodable by a 9-bit ADC.
	return EPCMParams{
		GOn:            50e-6,
		GOff:           0.5e-6,
		ProgramSigma:   0.01,
		DriftNu:        0.05,
		DriftT0Seconds: 1e-6,
		ReadNoiseSigma: 0.003,
		ReadVoltage:    0.2,
		SetLatencyNs:   100,
		ResetLatencyNs: 50,
		SetEnergyPJ:    10,
		ResetEnergyPJ:  15,
	}
}

// Validate checks physical plausibility of the parameters.
func (p EPCMParams) Validate() error {
	switch {
	case p.GOn <= 0 || p.GOff <= 0:
		return fmt.Errorf("device: conductances must be positive (GOn=%g GOff=%g)", p.GOn, p.GOff)
	case p.GOff >= p.GOn:
		return fmt.Errorf("device: GOff (%g) must be below GOn (%g)", p.GOff, p.GOn)
	case p.ProgramSigma < 0 || p.ReadNoiseSigma < 0:
		return fmt.Errorf("device: negative noise sigma")
	case p.DriftNu < 0:
		return fmt.Errorf("device: negative drift exponent")
	case p.ReadVoltage <= 0:
		return fmt.Errorf("device: read voltage must be positive")
	}
	return nil
}

// OnOffRatio returns GOn/GOff, the read window of the binary cell.
func (p EPCMParams) OnOffRatio() float64 { return p.GOn / p.GOff }

// ProgramConductance returns one as-programmed conductance draw for the
// given binary state: the nominal level (SET → GOn, RESET → GOff) with
// lognormal multiplicative spread when rng is non-nil. The RESET spread
// is 2× ProgramSigma, reflecting the larger variability of amorphous
// PCM. This is the per-cell program-time physics used by the flat
// conductance planes in internal/crossbar; EPCMCell delegates to it, so
// a plane programmed from a given rand stream is bit-identical to the
// equivalent sequence of NewEPCMCell calls.
func (p EPCMParams) ProgramConductance(state bool, rng *rand.Rand) float64 {
	mean, sigma := p.GOff, 2*p.ProgramSigma
	if state {
		mean, sigma = p.GOn, p.ProgramSigma
	}
	if rng != nil && sigma > 0 {
		// Lognormal multiplicative spread around the nominal level.
		return mean * math.Exp(rng.NormFloat64()*sigma-0.5*sigma*sigma)
	}
	return mean
}

// DriftFactor returns the multiplicative conductance decay of a RESET
// (amorphous) cell ageSeconds after programming: (t/t0)^(-ν), or 1
// inside the reference window. SET cells do not drift; callers apply
// the factor only to RESET state.
func (p EPCMParams) DriftFactor(ageSeconds float64) float64 {
	if p.DriftNu <= 0 || ageSeconds <= p.DriftT0Seconds {
		return 1
	}
	return math.Pow(ageSeconds/p.DriftT0Seconds, -p.DriftNu)
}

// ReadConductance applies one per-read noise draw to the instantaneous
// (already drifted) conductance g: a Gaussian multiplier of relative
// sigma ReadNoiseSigma, clamped at zero. With a nil rng it returns g
// unchanged. One rng draw iff rng ≠ nil and ReadNoiseSigma > 0 — the
// contract the crossbar hot loops inline.
func (p EPCMParams) ReadConductance(g float64, rng *rand.Rand) float64 {
	if rng != nil && p.ReadNoiseSigma > 0 {
		g *= 1 + rng.NormFloat64()*p.ReadNoiseSigma
		if g < 0 {
			g = 0
		}
	}
	return g
}

// EPCMCell is one programmed electronic PCM device. It is a thin
// wrapper over the EPCMParams pure functions, kept for single-device
// studies and tests; the crossbar simulator stores flat per-array
// planes instead of cell objects.
type EPCMCell struct {
	params EPCMParams
	// programmed target state: true = SET (low resistance / logic 1).
	state bool
	// g0 is the as-programmed conductance including variability.
	g0 float64
	// ageSeconds accumulates time since programming, for drift.
	ageSeconds float64
}

// NewEPCMCell programs a cell to the given binary state using rng for
// programming variability. A nil rng programs the nominal conductance.
func NewEPCMCell(p EPCMParams, state bool, rng *rand.Rand) *EPCMCell {
	return &EPCMCell{params: p, state: state, g0: p.ProgramConductance(state, rng)}
}

// State reports the programmed logical state.
func (c *EPCMCell) State() bool { return c.state }

// Age advances the cell's post-programming age (drift accumulation).
func (c *EPCMCell) Age(seconds float64) {
	if seconds < 0 {
		panic("device: negative ageing time")
	}
	c.ageSeconds += seconds
}

// Conductance returns the instantaneous conductance in siemens,
// including drift (RESET state only — crystalline PCM barely drifts)
// and, if rng is non-nil, per-read noise.
func (c *EPCMCell) Conductance(rng *rand.Rand) float64 {
	g := c.g0
	if !c.state {
		g *= c.params.DriftFactor(c.ageSeconds)
	}
	return c.params.ReadConductance(g, rng)
}

// ReadCurrent returns the read current in amperes for the configured
// read voltage (Ohm's law; the crossbar sums these per Kirchhoff).
func (c *EPCMCell) ReadCurrent(rng *rand.Rand) float64 {
	return c.Conductance(rng) * c.params.ReadVoltage
}

// WriteCost returns the latency (ns) and energy (pJ) of programming the
// given state transition.
func (p EPCMParams) WriteCost(toState bool) (latencyNs, energyPJ float64) {
	if toState {
		return p.SetLatencyNs, p.SetEnergyPJ
	}
	return p.ResetLatencyNs, p.ResetEnergyPJ
}
