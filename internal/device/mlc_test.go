package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMLCParamsValidate(t *testing.T) {
	if err := DefaultMLCParams(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MLCParams{
		{Levels: 1, Low: 0, High: 1},
		{Levels: 4, Low: -1, High: 1},
		{Levels: 4, Low: 0.5, High: 0.5},
		{Levels: 4, Low: 0, High: 1, ProgramSigma: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestLevelValuesUniform(t *testing.T) {
	p := DefaultMLCParams(4)
	if p.LevelValue(0) != p.Low || p.LevelValue(3) != p.High {
		t.Fatal("endpoints wrong")
	}
	gap := p.LevelGap()
	for l := 1; l < 4; l++ {
		if math.Abs(p.LevelValue(l)-p.LevelValue(l-1)-gap) > 1e-12 {
			t.Fatal("levels not uniform")
		}
	}
}

func TestLevelValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultMLCParams(4).LevelValue(4)
}

func TestDecodeNominalExact(t *testing.T) {
	for _, levels := range []int{2, 4, 8, 16} {
		p := DefaultMLCParams(levels)
		for l := 0; l < levels; l++ {
			cell := NewMLCCell(p, l, nil)
			if got := p.Decode(cell.Read(nil)); got != l {
				t.Fatalf("L=%d level %d decoded as %d", levels, l, got)
			}
		}
	}
}

func TestDecodeClamps(t *testing.T) {
	p := DefaultMLCParams(4)
	if p.Decode(-10) != 0 || p.Decode(10) != 3 {
		t.Fatal("decode must clamp to valid levels")
	}
}

// TestBinaryRobustMultiLevelFragile is the §II-C/Cardoso argument:
// at the same realistic noise, binary cells decode essentially without
// error while 16-level cells fail frequently.
func TestBinaryRobustMultiLevelFragile(t *testing.T) {
	noise := 0.04 // pessimistic combined spread
	binary := MLCParams{Levels: 2, Low: 0.10, High: 0.85, ProgramSigma: noise, ReadNoiseSigma: noise / 4}
	mlc16 := binary
	mlc16.Levels = 16
	be := binary.MonteCarloErrorRate(20000, 1)
	me := mlc16.MonteCarloErrorRate(20000, 1)
	if be > 1e-3 {
		t.Fatalf("binary error rate %g too high at realistic noise", be)
	}
	if me < 0.05 {
		t.Fatalf("16-level error rate %g implausibly low — the binary argument would vanish", me)
	}
}

func TestAnalyticTracksMonteCarlo(t *testing.T) {
	p := MLCParams{Levels: 8, Low: 0.10, High: 0.85, ProgramSigma: 0.02, ReadNoiseSigma: 0.005}
	analytic := p.AnalyticErrorRate()
	mc := p.MonteCarloErrorRate(200000, 7)
	// The analytic bound treats all levels as interior (two-sided), so
	// it should be within ~2× of Monte-Carlo.
	if mc == 0 || analytic == 0 {
		t.Fatalf("degenerate rates: analytic %g mc %g", analytic, mc)
	}
	ratio := analytic / mc
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("analytic %g vs MC %g: ratio %g outside [0.4, 2.5]", analytic, mc, ratio)
	}
}

func TestErrorRateGrowsWithLevels(t *testing.T) {
	prev := -1.0
	for _, l := range []int{2, 4, 8, 16, 32} {
		p := DefaultMLCParams(l)
		e := p.AnalyticErrorRate()
		if e < prev {
			t.Fatalf("error rate not monotone at L=%d", l)
		}
		prev = e
	}
}

func TestRobustLevelLimit(t *testing.T) {
	// Tight devices allow more levels; sloppy devices force binary.
	tight := MLCParams{Levels: 2, Low: 0.10, High: 0.85, ProgramSigma: 0.002, ReadNoiseSigma: 0.001}
	sloppy := MLCParams{Levels: 2, Low: 0.10, High: 0.85, ProgramSigma: 0.08, ReadNoiseSigma: 0.02}
	lt := tight.RobustLevelLimit(1e-4)
	ls := sloppy.RobustLevelLimit(1e-4)
	if lt <= ls {
		t.Fatalf("tight devices (%d levels) must beat sloppy (%d)", lt, ls)
	}
	if ls > 2 {
		t.Fatalf("sloppy devices should be limited to ~binary, got %d levels", ls)
	}
}

// Property: decoding a noiselessly-read programmed cell is always exact
// for any level count in [2, 32].
func TestNoiselessDecodeProperty(t *testing.T) {
	f := func(rawLevels, rawL uint8) bool {
		levels := 2 + int(rawLevels)%31
		l := int(rawL) % levels
		p := DefaultMLCParams(levels)
		cell := NewMLCCell(p, l, nil)
		return p.Decode(cell.Read(nil)) == l && cell.Level() == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
