package device

import (
	"fmt"
	"math"
	"math/rand"
)

// OPCMParams describes an optical PCM cell population: a GST patch on a
// silicon waveguide whose crystalline/amorphous phase sets the optical
// transmittance seen by a probe wavelength. Binary use (two phases, two
// transmittance levels) is the robust operating point identified by
// Cardoso et al. (DATE 2023) and adopted by the paper.
type OPCMParams struct {
	// THigh is the transmittance of the amorphous (transparent) state.
	// In the crossbar convention used here, logic 1 stores the
	// high-transmittance state so that more light = larger accumulated
	// photocurrent, mirroring the electrical G_on convention.
	THigh float64
	// TLow is the transmittance of the crystalline (absorbing) state.
	TLow float64
	// ProgramSigma is the relative variability of the programmed
	// transmittance (pulse-energy and geometry spread).
	ProgramSigma float64
	// RelIntensityNoise is the laser relative intensity noise (RIN)
	// expressed as a per-read relative sigma at the detection bandwidth.
	RelIntensityNoise float64
	// ShotNoiseFactor scales the √signal shot-noise contribution at the
	// photodetector, in units of the single-cell signal. Zero disables.
	ShotNoiseFactor float64
	// CrossTalkDB is the inter-wavelength crosstalk floor of the WDM
	// (de)multiplexers in dB (negative number, e.g. -30 dB). Used by the
	// photonics package when K > 1 wavelengths share a waveguide.
	CrossTalkDB float64
	// InputPowerMW is the optical probe power per wavelength in mW.
	InputPowerMW float64
	// Responsivity is the photodetector responsivity in A/W.
	Responsivity float64
	// WriteLatencyNs / WriteEnergyPJ cost one phase transition.
	WriteLatencyNs float64
	WriteEnergyPJ  float64
	// ReadLatencyNs is the optical read (settling + detection) time for
	// one VMM/MMM step. Photonic reads are substantially faster than
	// electrical crossbar settling — the source of the extra speedup of
	// EinsteinBarrier beyond WDM (paper §VI-A observation 3).
	ReadLatencyNs float64
}

// DefaultOPCMParams returns literature-typical oPCM constants
// (Feldmann et al., Nature 2021; Ríos et al.).
func DefaultOPCMParams() OPCMParams {
	return OPCMParams{
		THigh:             0.85,
		TLow:              0.10,
		ProgramSigma:      0.01,
		RelIntensityNoise: 0.003,
		ShotNoiseFactor:   0.002,
		CrossTalkDB:       -30,
		InputPowerMW:      0.5,
		Responsivity:      1.0,
		WriteLatencyNs:    200,
		WriteEnergyPJ:     30,
		ReadLatencyNs:     1.0,
	}
}

// Validate checks physical plausibility.
func (p OPCMParams) Validate() error {
	switch {
	case p.THigh <= 0 || p.THigh > 1:
		return fmt.Errorf("device: THigh %g outside (0,1]", p.THigh)
	case p.TLow < 0 || p.TLow >= p.THigh:
		return fmt.Errorf("device: TLow %g must be in [0, THigh)", p.TLow)
	case p.ProgramSigma < 0 || p.RelIntensityNoise < 0 || p.ShotNoiseFactor < 0:
		return fmt.Errorf("device: negative noise parameter")
	case p.CrossTalkDB > 0:
		return fmt.Errorf("device: crosstalk must be ≤ 0 dB, got %g", p.CrossTalkDB)
	case p.InputPowerMW <= 0 || p.Responsivity <= 0:
		return fmt.Errorf("device: optical power and responsivity must be positive")
	}
	return nil
}

// ExtinctionRatioDB returns 10·log10(THigh/TLow), the optical read
// window.
func (p OPCMParams) ExtinctionRatioDB() float64 {
	return 10 * math.Log10(p.THigh/p.TLow)
}

// CrossTalkLinear converts CrossTalkDB to a linear power fraction.
func (p OPCMParams) CrossTalkLinear() float64 {
	return math.Pow(10, p.CrossTalkDB/10)
}

// ProgramTransmittance returns one as-programmed transmittance draw for
// the given binary state: the nominal level (1 → THigh, 0 → TLow) with
// lognormal spread when rng is non-nil, clamped to [0,1]. This is the
// program-time physics behind the flat transmittance planes in
// internal/crossbar; OPCMCell delegates to it, so a plane programmed
// from a given rand stream is bit-identical to the equivalent sequence
// of NewOPCMCell calls.
func (p OPCMParams) ProgramTransmittance(state bool, rng *rand.Rand) float64 {
	mean := p.TLow
	if state {
		mean = p.THigh
	}
	if rng != nil && p.ProgramSigma > 0 {
		mean *= math.Exp(rng.NormFloat64()*p.ProgramSigma - 0.5*p.ProgramSigma*p.ProgramSigma)
	}
	return clamp01(mean)
}

// ReadTransmittance applies one per-read laser-RIN draw to the
// as-programmed transmittance t0, clamped to [0,1]. One rng draw iff
// rng ≠ nil and RelIntensityNoise > 0.
func (p OPCMParams) ReadTransmittance(t0 float64, rng *rand.Rand) float64 {
	if rng != nil && p.RelIntensityNoise > 0 {
		t0 *= 1 + rng.NormFloat64()*p.RelIntensityNoise
	}
	return clamp01(t0)
}

// PhotocurrentFrom returns the photodetector current (A) of a cell with
// as-programmed transmittance t0 when probed at the configured
// per-wavelength power: RIN on the transmittance, then a √signal shot
// noise term at the detector (two rng draws per read when both noise
// terms are enabled — the order the crossbar hot loops preserve).
func (p *OPCMParams) PhotocurrentFrom(t0 float64, rng *rand.Rand) float64 {
	i := p.InputPowerMW * 1e-3 * p.ReadTransmittance(t0, rng) * p.Responsivity
	if rng != nil && p.ShotNoiseFactor > 0 {
		// Shot noise grows with √signal; expressed relative to the
		// single-cell full-scale signal for simplicity.
		full := p.InputPowerMW * 1e-3 * p.THigh * p.Responsivity
		i += rng.NormFloat64() * p.ShotNoiseFactor * math.Sqrt(math.Max(i, 0)*full)
	}
	return i
}

// OPCMCell is one programmed optical PCM patch — a thin wrapper over
// the OPCMParams pure functions, kept for single-device studies and
// tests; the crossbar simulator stores flat per-array planes instead.
type OPCMCell struct {
	params OPCMParams
	state  bool
	t0     float64 // as-programmed transmittance including variability
}

// NewOPCMCell programs an oPCM cell to the given binary state; rng (may
// be nil) supplies programming variability.
func NewOPCMCell(p OPCMParams, state bool, rng *rand.Rand) *OPCMCell {
	return &OPCMCell{params: p, state: state, t0: p.ProgramTransmittance(state, rng)}
}

// State reports the programmed logical state.
func (c *OPCMCell) State() bool { return c.state }

// Transmittance returns the instantaneous optical transmittance of the
// cell including, if rng is non-nil, per-read laser RIN.
// oPCM has no drift term: the crystalline fraction is stable, one of the
// paper's §II-C arguments for photonic CIM.
func (c *OPCMCell) Transmittance(rng *rand.Rand) float64 {
	return c.params.ReadTransmittance(c.t0, rng)
}

// Photocurrent returns the photodetector current (A) contributed by the
// cell when probed with the configured per-wavelength power.
func (c *OPCMCell) Photocurrent(rng *rand.Rand) float64 {
	return c.params.PhotocurrentFrom(c.t0, rng)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// SeparationSNR returns the worst-case ratio between the level gap and
// the combined noise sigma for an accumulation of n cells, a quick
// analytic check that a popcount of n remains decodable. It is used by
// tests and by the design-space example to show why binary (not
// multi-level) PCM is the robust choice at high readout bandwidth.
func (p OPCMParams) SeparationSNR(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	gap := p.THigh - p.TLow
	// Noise of a sum of n cells: per-cell RIN is common-mode to first
	// order but programming spread is independent.
	sigma := math.Sqrt(float64(n)) * (p.ProgramSigma*p.THigh + p.RelIntensityNoise*p.THigh)
	if sigma == 0 {
		return math.Inf(1)
	}
	return gap / sigma
}
