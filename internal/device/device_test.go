package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultEPCMParamsValid(t *testing.T) {
	if err := DefaultEPCMParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEPCMValidateRejectsBadParams(t *testing.T) {
	cases := []func(*EPCMParams){
		func(p *EPCMParams) { p.GOn = 0 },
		func(p *EPCMParams) { p.GOff = -1 },
		func(p *EPCMParams) { p.GOff = p.GOn * 2 },
		func(p *EPCMParams) { p.ProgramSigma = -0.1 },
		func(p *EPCMParams) { p.DriftNu = -1 },
		func(p *EPCMParams) { p.ReadVoltage = 0 },
	}
	for i, mutate := range cases {
		p := DefaultEPCMParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestEPCMCellNominalStates(t *testing.T) {
	p := DefaultEPCMParams()
	on := NewEPCMCell(p, true, nil)
	off := NewEPCMCell(p, false, nil)
	if got := on.Conductance(nil); got != p.GOn {
		t.Fatalf("SET conductance = %g, want %g", got, p.GOn)
	}
	if got := off.Conductance(nil); got != p.GOff {
		t.Fatalf("RESET conductance = %g, want %g", got, p.GOff)
	}
	if !on.State() || off.State() {
		t.Fatal("State() wrong")
	}
}

func TestEPCMOnOffSeparationUnderVariability(t *testing.T) {
	// With default variability, SET and RESET populations must remain
	// separable — the essence of binary PCM robustness.
	p := DefaultEPCMParams()
	rng := rand.New(rand.NewSource(42))
	minOn, maxOff := math.Inf(1), math.Inf(-1)
	for i := 0; i < 2000; i++ {
		gOn := NewEPCMCell(p, true, rng).Conductance(rng)
		gOff := NewEPCMCell(p, false, rng).Conductance(rng)
		minOn = math.Min(minOn, gOn)
		maxOff = math.Max(maxOff, gOff)
	}
	if minOn <= maxOff {
		t.Fatalf("ON/OFF populations overlap: minOn=%g maxOff=%g", minOn, maxOff)
	}
	if ratio := minOn / maxOff; ratio < 5 {
		t.Fatalf("worst-case read window %g too small", ratio)
	}
}

func TestEPCMDriftMonotone(t *testing.T) {
	p := DefaultEPCMParams()
	cell := NewEPCMCell(p, false, nil)
	g0 := cell.Conductance(nil)
	cell.Age(1.0) // 1 s after programming
	g1 := cell.Conductance(nil)
	cell.Age(3600)
	g2 := cell.Conductance(nil)
	if !(g0 > g1 && g1 > g2) {
		t.Fatalf("RESET drift not monotone: %g %g %g", g0, g1, g2)
	}
	// Crystalline state must not drift.
	on := NewEPCMCell(p, true, nil)
	on.Age(3600)
	if on.Conductance(nil) != p.GOn {
		t.Fatal("SET state drifted")
	}
}

func TestEPCMDriftExponent(t *testing.T) {
	p := DefaultEPCMParams()
	cell := NewEPCMCell(p, false, nil)
	cell.Age(p.DriftT0Seconds * 100)
	want := p.GOff * math.Pow(100, -p.DriftNu)
	if got := cell.Conductance(nil); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("drifted conductance = %g, want %g", got, want)
	}
}

func TestEPCMNegativeAgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEPCMCell(DefaultEPCMParams(), true, nil).Age(-1)
}

func TestEPCMReadCurrentOhm(t *testing.T) {
	p := DefaultEPCMParams()
	cell := NewEPCMCell(p, true, nil)
	if got, want := cell.ReadCurrent(nil), p.GOn*p.ReadVoltage; got != want {
		t.Fatalf("ReadCurrent = %g, want %g", got, want)
	}
}

func TestEPCMWriteCost(t *testing.T) {
	p := DefaultEPCMParams()
	lns, epj := p.WriteCost(true)
	if lns != p.SetLatencyNs || epj != p.SetEnergyPJ {
		t.Fatal("SET cost wrong")
	}
	lns, epj = p.WriteCost(false)
	if lns != p.ResetLatencyNs || epj != p.ResetEnergyPJ {
		t.Fatal("RESET cost wrong")
	}
}

func TestTechnologyString(t *testing.T) {
	if EPCM.String() != "ePCM" || OPCM.String() != "oPCM" {
		t.Fatal("Technology strings wrong")
	}
	if Technology(99).String() == "" {
		t.Fatal("unknown technology should still print")
	}
}

func TestDefaultOPCMParamsValid(t *testing.T) {
	if err := DefaultOPCMParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOPCMValidateRejectsBadParams(t *testing.T) {
	cases := []func(*OPCMParams){
		func(p *OPCMParams) { p.THigh = 0 },
		func(p *OPCMParams) { p.THigh = 1.5 },
		func(p *OPCMParams) { p.TLow = p.THigh },
		func(p *OPCMParams) { p.TLow = -0.1 },
		func(p *OPCMParams) { p.CrossTalkDB = 3 },
		func(p *OPCMParams) { p.InputPowerMW = 0 },
		func(p *OPCMParams) { p.ShotNoiseFactor = -1 },
	}
	for i, mutate := range cases {
		p := DefaultOPCMParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestOPCMNominalStates(t *testing.T) {
	p := DefaultOPCMParams()
	hi := NewOPCMCell(p, true, nil)
	lo := NewOPCMCell(p, false, nil)
	if hi.Transmittance(nil) != p.THigh || lo.Transmittance(nil) != p.TLow {
		t.Fatal("nominal transmittances wrong")
	}
}

func TestOPCMPhotocurrentScalesWithPower(t *testing.T) {
	p := DefaultOPCMParams()
	c1 := NewOPCMCell(p, true, nil)
	i1 := c1.Photocurrent(nil)
	p.InputPowerMW *= 2
	c2 := NewOPCMCell(p, true, nil)
	i2 := c2.Photocurrent(nil)
	if math.Abs(i2-2*i1) > 1e-15 {
		t.Fatalf("photocurrent not linear in power: %g vs %g", i1, i2)
	}
}

func TestOPCMTransmittanceClamped(t *testing.T) {
	// Even with huge noise the transmittance must stay in [0,1].
	p := DefaultOPCMParams()
	p.RelIntensityNoise = 2.0
	rng := rand.New(rand.NewSource(1))
	cell := NewOPCMCell(p, true, rng)
	for i := 0; i < 1000; i++ {
		tr := cell.Transmittance(rng)
		if tr < 0 || tr > 1 {
			t.Fatalf("transmittance %g outside [0,1]", tr)
		}
	}
}

func TestOPCMExtinctionRatio(t *testing.T) {
	p := DefaultOPCMParams()
	want := 10 * math.Log10(p.THigh/p.TLow)
	if got := p.ExtinctionRatioDB(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("extinction ratio = %g, want %g", got, want)
	}
	if p.ExtinctionRatioDB() < 6 {
		t.Fatal("default extinction ratio implausibly small")
	}
}

func TestOPCMCrossTalkLinear(t *testing.T) {
	p := DefaultOPCMParams()
	p.CrossTalkDB = -30
	if got := p.CrossTalkLinear(); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("crosstalk linear = %g, want 0.001", got)
	}
}

func TestSeparationSNRDecreasesWithN(t *testing.T) {
	p := DefaultOPCMParams()
	prev := math.Inf(1)
	for _, n := range []int{1, 4, 16, 64, 256} {
		snr := p.SeparationSNR(n)
		if snr >= prev {
			t.Fatalf("SNR not decreasing at n=%d: %g >= %g", n, snr, prev)
		}
		prev = snr
	}
	if p.SeparationSNR(0) != math.Inf(1) {
		t.Fatal("SNR of empty accumulation should be infinite")
	}
}

// Property: programming variability preserves state ordering — any SET
// cell population sample must not fall below any RESET sample for the
// default (binary-robust) parameters at modest sigma.
func TestOPCMBinarySeparationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := DefaultOPCMParams()
		hi := NewOPCMCell(p, true, rng).Transmittance(rng)
		lo := NewOPCMCell(p, false, rng).Transmittance(rng)
		return hi > lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
