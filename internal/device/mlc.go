package device

import (
	"fmt"
	"math"
	"math/rand"
)

// Multi-level-cell (MLC) support. The paper uses PCM strictly in binary
// mode and leaves multi-bit cells as future work (§VI-C), citing
// Cardoso et al. (DATE 2023): at realistic noise, multi-level oPCM
// scalar multiplication loses accuracy, while two well-separated levels
// stay robust. This file implements that trade-off quantitatively: an
// L-level cell model plus the analytic and Monte-Carlo decode error
// rates that justify the binary choice (and let a user explore the
// future-work direction).

// MLCParams describes an L-level PCM cell population. It generalizes
// both technologies: Low/High are conductances (S) for ePCM or
// transmittances for oPCM; only ratios matter for decoding.
type MLCParams struct {
	// Levels is the number of programmable levels L ≥ 2 (L = 2 is the
	// paper's binary operating point).
	Levels int
	// Low and High bound the programmable range; intermediate levels
	// are spaced uniformly (amorphous-fraction control).
	Low, High float64
	// ProgramSigma is the relative programming spread per level.
	ProgramSigma float64
	// ReadNoiseSigma is the relative per-read noise.
	ReadNoiseSigma float64
}

// DefaultMLCParams returns an L-level population matching the binary
// oPCM defaults' range and noise.
func DefaultMLCParams(levels int) MLCParams {
	return MLCParams{
		Levels:         levels,
		Low:            0.10,
		High:           0.85,
		ProgramSigma:   0.01,
		ReadNoiseSigma: 0.003,
	}
}

// Validate checks the parameters.
func (p MLCParams) Validate() error {
	switch {
	case p.Levels < 2:
		return fmt.Errorf("device: MLC needs ≥ 2 levels, got %d", p.Levels)
	case p.Low < 0 || p.High <= p.Low:
		return fmt.Errorf("device: bad MLC range [%g, %g]", p.Low, p.High)
	case p.ProgramSigma < 0 || p.ReadNoiseSigma < 0:
		return fmt.Errorf("device: negative MLC noise")
	}
	return nil
}

// LevelValue returns the nominal analog value of level l ∈ [0, Levels).
func (p MLCParams) LevelValue(l int) float64 {
	if l < 0 || l >= p.Levels {
		panic(fmt.Sprintf("device: level %d outside [0,%d)", l, p.Levels))
	}
	if p.Levels == 1 {
		return p.Low
	}
	step := (p.High - p.Low) / float64(p.Levels-1)
	return p.Low + float64(l)*step
}

// BitsPerCell returns how many weight-bit slices one L-level cell
// stores: floor(log2(Levels)) — 1 for binary operation, 2 for the
// four-level population, and so on. This is the density lever a
// multi-level design buys with its decode-error budget (see
// RobustLevelLimit).
func (p MLCParams) BitsPerCell() int {
	bits := int(math.Floor(math.Log2(float64(p.Levels))))
	if bits < 1 {
		return 1
	}
	return bits
}

// LevelGap returns the spacing between adjacent nominal levels.
func (p MLCParams) LevelGap() float64 {
	return (p.High - p.Low) / float64(p.Levels-1)
}

// MLCCell is one programmed multi-level cell.
type MLCCell struct {
	params MLCParams
	level  int
	v0     float64
}

// NewMLCCell programs a cell to the given level; rng (may be nil)
// supplies programming variability.
func NewMLCCell(p MLCParams, level int, rng *rand.Rand) *MLCCell {
	c := &MLCCell{params: p, level: level, v0: p.LevelValue(level)}
	if rng != nil && p.ProgramSigma > 0 {
		c.v0 *= math.Exp(rng.NormFloat64()*p.ProgramSigma - 0.5*p.ProgramSigma*p.ProgramSigma)
	}
	return c
}

// Level returns the programmed level.
func (c *MLCCell) Level() int { return c.level }

// Read returns the instantaneous analog value with per-read noise.
func (c *MLCCell) Read(rng *rand.Rand) float64 {
	v := c.v0
	if rng != nil && c.params.ReadNoiseSigma > 0 {
		v *= 1 + rng.NormFloat64()*c.params.ReadNoiseSigma
	}
	return v
}

// Decode maps an analog value back to the nearest level.
func (p MLCParams) Decode(v float64) int {
	step := p.LevelGap()
	l := int(math.Round((v - p.Low) / step))
	if l < 0 {
		l = 0
	}
	if l >= p.Levels {
		l = p.Levels - 1
	}
	return l
}

// AnalyticErrorRate estimates the per-read single-cell decode error
// probability for a uniformly random programmed level. Noise is
// multiplicative (programming spread ⊕ read noise, combined in
// quadrature), so each level l has σ_l = value_l·σ_rel and errs when
// the read leaves its ±gap/2 decision window (one-sided at the edge
// levels).
func (p MLCParams) AnalyticErrorRate() float64 {
	rel := math.Sqrt(p.ProgramSigma*p.ProgramSigma + p.ReadNoiseSigma*p.ReadNoiseSigma)
	if rel == 0 {
		return 0
	}
	half := p.LevelGap() / 2
	total := 0.0
	for l := 0; l < p.Levels; l++ {
		sigma := p.LevelValue(l) * rel
		if sigma == 0 {
			continue
		}
		tail := 0.5 * math.Erfc(half/sigma/math.Sqrt2)
		if l == 0 || l == p.Levels-1 {
			total += tail // can only err inward
		} else {
			total += 2 * tail
		}
	}
	return total / float64(p.Levels)
}

// MonteCarloErrorRate measures the decode error rate over trials
// programmed to uniformly random levels.
func (p MLCParams) MonteCarloErrorRate(trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	errs := 0
	for i := 0; i < trials; i++ {
		l := rng.Intn(p.Levels)
		cell := NewMLCCell(p, l, rng)
		if p.Decode(cell.Read(rng)) != l {
			errs++
		}
	}
	return float64(errs) / float64(trials)
}

// RobustLevelLimit returns the largest level count whose analytic
// decode error rate stays below maxErr at these noise parameters — the
// quantitative version of the paper's §II-C argument: at realistic
// noise the answer is small, and binary (L = 2) is the safe choice.
func (p MLCParams) RobustLevelLimit(maxErr float64) int {
	best := 1
	for l := 2; l <= 64; l++ {
		q := p
		q.Levels = l
		if q.AnalyticErrorRate() <= maxErr {
			best = l
		} else {
			break
		}
	}
	return best
}
