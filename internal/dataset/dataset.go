// Package dataset provides deterministic synthetic stand-ins for the
// MNIST and CIFAR-10 datasets used in the paper's evaluation. The real
// datasets are not available offline; these generators produce
// classification problems with the same tensor shapes (1×28×28
// grayscale digits, 3×32×32 color textures) and enough class structure
// for the training/accuracy demos, while the latency/energy evaluation
// depends only on the shapes (see DESIGN.md substitution table).
package dataset

import (
	"fmt"
	"math/rand"

	"einsteinbarrier/internal/tensor"
)

// Sample is one labeled example.
type Sample struct {
	// X is the input tensor (1×28×28 for digits, 3×32×32 for textures).
	X *tensor.Float
	// Label is the class index in [0, Classes).
	Label int
}

// Classes is the number of classes both generators produce.
const Classes = 10

// digitGlyphs are 5×7 bitmaps of the digits 0–9 (row-major, '#' = ink),
// the structural seed the MNIST-like generator perturbs.
var digitGlyphs = [Classes][7]string{
	{"#####", "#...#", "#...#", "#...#", "#...#", "#...#", "#####"}, // 0
	{"..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."}, // 1
	{"#####", "....#", "....#", "#####", "#....", "#....", "#####"}, // 2
	{"#####", "....#", "....#", ".####", "....#", "....#", "#####"}, // 3
	{"#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"}, // 4
	{"#####", "#....", "#....", "#####", "....#", "....#", "#####"}, // 5
	{"#####", "#....", "#....", "#####", "#...#", "#...#", "#####"}, // 6
	{"#####", "....#", "...#.", "..#..", "..#..", "..#..", "..#.."}, // 7
	{"#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"}, // 8
	{"#####", "#...#", "#...#", "#####", "....#", "....#", "#####"}, // 9
}

// Digits generates n MNIST-like 1×28×28 samples: each is a digit glyph
// scaled 3×, randomly translated by up to ±3 pixels, with per-pixel
// amplitude jitter and background noise. Deterministic in seed.
func Digits(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		label := rng.Intn(Classes)
		x := tensor.NewFloat(1, 28, 28)
		// Background noise.
		for j := range x.Data() {
			x.Data()[j] = rng.Float64() * 0.1
		}
		dx := rng.Intn(7) - 3
		dy := rng.Intn(7) - 3
		amp := 0.7 + rng.Float64()*0.3
		glyph := digitGlyphs[label]
		for gr := 0; gr < 7; gr++ {
			for gc := 0; gc < 5; gc++ {
				if glyph[gr][gc] != '#' {
					continue
				}
				for sr := 0; sr < 3; sr++ {
					for sc := 0; sc < 3; sc++ {
						r := 3 + gr*3 + sr + dy
						c := 6 + gc*3 + sc + dx
						if r >= 0 && r < 28 && c >= 0 && c < 28 {
							v := amp * (0.8 + rng.Float64()*0.2)
							x.Set(v, 0, r, c)
						}
					}
				}
			}
		}
		out[i] = Sample{X: x, Label: label}
	}
	return out
}

// Textures generates n CIFAR-like 3×32×32 samples. Each class is a
// parameterized procedural texture (oriented stripes with a
// class-specific angle, frequency and palette) plus noise, giving ten
// linearly-inseparable but learnable classes. Deterministic in seed.
func Textures(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		label := rng.Intn(Classes)
		x := tensor.NewFloat(3, 32, 32)
		// Class-specific stripe direction and frequency.
		fx := 0.15 + 0.08*float64(label%5)
		fy := 0.10 + 0.07*float64(label/5)
		phase := rng.Float64() * 6.28318
		// Class palette: channel mixture weights.
		pr := 0.3 + 0.07*float64(label)
		pg := 1.0 - pr
		pb := 0.5 + 0.05*float64(label%3)
		for r := 0; r < 32; r++ {
			for c := 0; c < 32; c++ {
				s := stripe(fx*float64(c) + fy*float64(r) + phase) // in [0,1]
				noise := func() float64 { return (rng.Float64() - 0.5) * 0.15 }
				x.Set(clamp01(pr*s+noise()), 0, r, c)
				x.Set(clamp01(pg*s+noise()), 1, r, c)
				x.Set(clamp01(pb*(1-s)+noise()), 2, r, c)
			}
		}
		out[i] = Sample{X: x, Label: label}
	}
	return out
}

// stripe maps a phase to a triangle wave in [0,1].
func stripe(t float64) float64 {
	t = t - float64(int(t))
	if t < 0 {
		t++
	}
	if t < 0.5 {
		return 2 * t
	}
	return 2 * (1 - t)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Flatten converts samples to flat feature vectors plus labels, the
// format the MLP trainer consumes.
func Flatten(samples []Sample) ([][]float64, []int) {
	xs := make([][]float64, len(samples))
	ys := make([]int, len(samples))
	for i, s := range samples {
		d := s.X.Data()
		xs[i] = make([]float64, len(d))
		copy(xs[i], d)
		ys[i] = s.Label
	}
	return xs, ys
}

// Split partitions samples into train/test at the given ratio.
func Split(samples []Sample, trainFrac float64) (train, test []Sample, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %g outside (0,1)", trainFrac)
	}
	k := int(float64(len(samples)) * trainFrac)
	if k == 0 || k == len(samples) {
		return nil, nil, fmt.Errorf("dataset: split of %d samples at %g leaves an empty side", len(samples), trainFrac)
	}
	return samples[:k], samples[k:], nil
}
