package dataset

import (
	"testing"
)

func TestDigitsShapeAndDeterminism(t *testing.T) {
	a := Digits(50, 7)
	b := Digits(50, 7)
	if len(a) != 50 {
		t.Fatalf("got %d samples", len(a))
	}
	for i := range a {
		sh := a[i].X.Shape()
		if len(sh) != 3 || sh[0] != 1 || sh[1] != 28 || sh[2] != 28 {
			t.Fatalf("digit shape = %v", sh)
		}
		if a[i].Label < 0 || a[i].Label >= Classes {
			t.Fatalf("label %d out of range", a[i].Label)
		}
		if a[i].Label != b[i].Label {
			t.Fatal("not deterministic")
		}
		for j := range a[i].X.Data() {
			if a[i].X.Data()[j] != b[i].X.Data()[j] {
				t.Fatal("pixel data not deterministic")
			}
			if v := a[i].X.Data()[j]; v < 0 || v > 1 {
				t.Fatalf("pixel %g outside [0,1]", v)
			}
		}
	}
}

func TestDigitsCoverAllClasses(t *testing.T) {
	seen := make(map[int]bool)
	for _, s := range Digits(400, 1) {
		seen[s.Label] = true
	}
	if len(seen) != Classes {
		t.Fatalf("only %d classes seen in 400 samples", len(seen))
	}
}

func TestDigitsClassesAreDistinct(t *testing.T) {
	// Mean images of different classes must differ substantially —
	// otherwise the dataset carries no signal.
	samples := Digits(500, 3)
	means := make([][]float64, Classes)
	counts := make([]int, Classes)
	for _, s := range samples {
		if means[s.Label] == nil {
			means[s.Label] = make([]float64, s.X.Size())
		}
		for j, v := range s.X.Data() {
			means[s.Label][j] += v
		}
		counts[s.Label]++
	}
	for a := 0; a < Classes; a++ {
		for b := a + 1; b < Classes; b++ {
			if counts[a] == 0 || counts[b] == 0 {
				continue
			}
			var dist float64
			for j := range means[a] {
				d := means[a][j]/float64(counts[a]) - means[b][j]/float64(counts[b])
				dist += d * d
			}
			if dist < 0.5 {
				t.Fatalf("classes %d and %d nearly identical (dist %g)", a, b, dist)
			}
		}
	}
}

func TestTexturesShape(t *testing.T) {
	samples := Textures(30, 5)
	for _, s := range samples {
		sh := s.X.Shape()
		if len(sh) != 3 || sh[0] != 3 || sh[1] != 32 || sh[2] != 32 {
			t.Fatalf("texture shape = %v", sh)
		}
		for _, v := range s.X.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("texture value %g outside [0,1]", v)
			}
		}
	}
}

func TestTexturesDeterministic(t *testing.T) {
	a := Textures(10, 11)
	b := Textures(10, 11)
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("labels not deterministic")
		}
		for j := range a[i].X.Data() {
			if a[i].X.Data()[j] != b[i].X.Data()[j] {
				t.Fatal("pixels not deterministic")
			}
		}
	}
}

func TestFlatten(t *testing.T) {
	samples := Digits(5, 1)
	xs, ys := Flatten(samples)
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatal("flatten sizes wrong")
	}
	if len(xs[0]) != 784 {
		t.Fatalf("feature length = %d", len(xs[0]))
	}
	// Mutating the flattened copy must not touch the sample.
	orig := samples[0].X.Data()[0]
	xs[0][0] = 42
	if samples[0].X.Data()[0] != orig {
		t.Fatal("Flatten did not copy")
	}
}

func TestSplit(t *testing.T) {
	samples := Digits(10, 1)
	train, test, err := Split(samples, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 8 || len(test) != 2 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	if _, _, err := Split(samples, 0); err == nil {
		t.Fatal("expected error for frac 0")
	}
	if _, _, err := Split(samples[:1], 0.5); err == nil {
		t.Fatal("expected error for empty side")
	}
}
