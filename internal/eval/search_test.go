package eval

import (
	"reflect"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/sim"
)

// goldenSearchFP pins the searched placement per zoo network on
// EinsteinBarrier at the paper batch (B=256), default step count, seed
// 1. These are load-bearing: the search is specified to be a pure
// function of (model, config, design, seed, steps), so any drift here
// is a determinism break or an intentional algorithm change — update
// only in the latter case.
var goldenSearchFP = map[string]string{
	"CNN-S": "r0+4:0,0,4x4!|n0@64:0|n0@2:1|n0@7:2|n0@1:3|n0@1:4",
	"CNN-M": "r0+4:0,0,4x4!|n0@64:0|n0@5:1|n0@5:2|n0@9:3|n0@64:4|n0@2:5",
	"CNN-L": "r0+4:0,0,4x4!|n0@64:0|n0@9:1|n0@9:2|n0@18:3|n0@36:4|n0@72:5,6|n0@256:8,9,12,13|n0@32:10|n0@2:11",
	"MLP-S": "r0+4:0,0,4x4!|n0@98:0,1|n0@32:2|n0@16:3|n0@1:4",
	"MLP-M": "r0+4:0,0,4x4!|n0@196:6,7,10,11|n0@128:13,14|n0@64:4|n0@2:0",
	"MLP-L": "r0+4:0,0,4x4!|n2@294:0,1,2,4,5|n3@288:0,1,4,5,8|n1@288:4,5,6,8,9|n0@144:8,9,10|n0@2:0",
}

// TestSearchPlacementGolden: end-to-end determinism with the REAL
// engine objective — the searched layout for every zoo network is
// byte-pinned, and the evaluation cache pays ≥50% once layouts repeat
// (the acceptance criterion BenchmarkPlacerSearch reports).
func TestSearchPlacementGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-in-the-loop search across the zoo")
	}
	cfg := arch.DefaultConfig()
	s, err := sim.New(cfg, energy.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	pe, err := s.PlacementEvaluator(256)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range bnn.ZooNames {
		m, err := bnn.NewModel(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := compiler.NewSearchPlacer(m, cfg, arch.EinsteinBarrier, pe, compiler.SearchOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		c, err := compiler.CompileWith(m, cfg, arch.EinsteinBarrier, compiler.Options{Placer: sp})
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Placement.Fingerprint(); got != goldenSearchFP[name] {
			t.Errorf("%s searched placement drifted\n got: %s\nwant: %s", name, got, goldenSearchFP[name])
		}
	}
	// A second sweep against the warm cache is all hits by determinism —
	// the repeated-search pattern ComparePlacements and the benchmark
	// rely on — which lifts the overall rate past the pinned floor.
	l0, h0 := pe.Stats()
	for _, name := range bnn.ZooNames {
		m, err := bnn.NewModel(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := compiler.NewSearchPlacer(m, cfg, arch.EinsteinBarrier, pe, compiler.SearchOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := compiler.CompileWith(m, cfg, arch.EinsteinBarrier, compiler.Options{Placer: sp}); err != nil {
			t.Fatal(err)
		}
	}
	l1, h1 := pe.Stats()
	if h1-h0 != l1-l0 {
		t.Fatalf("warm second sweep missed: %d lookups, %d hits", l1-l0, h1-h0)
	}
	if rate := pe.HitRate(); rate < 0.5 {
		t.Fatalf("cache hit rate %.2f below the 50%% floor", rate)
	}
}

// TestSearchBeatsOrMatchesAllDesigns: the acceptance table — on every
// paper design, for every zoo network, search ≥ the best heuristic at
// B=256, and MLP-L strictly beats MeshPlacer on EinsteinBarrier.
func TestSearchBeatsOrMatchesAllDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("full zoo × design sweep")
	}
	cfg := DefaultConfig()
	cfg.Search = SearchSpec{Seed: 1}
	strictEB := false
	for _, d := range arch.Designs() {
		rows, err := ComparePlacements(cfg, nil, nil, d, 256)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		wins := PlacementWins(rows)
		if len(wins) != len(bnn.ZooNames) {
			t.Fatalf("%v: %d win rows for %d networks", d, len(wins), len(bnn.ZooNames))
		}
		for _, w := range wins {
			if w.SearchPerSec < w.HeuristicPerSec {
				t.Errorf("%v/%s: search %.0f below best heuristic %s %.0f",
					d, w.Network, w.SearchPerSec, w.BestHeuristic, w.HeuristicPerSec)
			}
			if d == arch.EinsteinBarrier && w.Network == "MLP-L" &&
				w.BestHeuristic == "mesh" && w.SearchPerSec > w.HeuristicPerSec {
				strictEB = true
			}
		}
	}
	if !strictEB {
		t.Fatal("no strict win over mesh on EinsteinBarrier MLP-L")
	}
}

// TestComparePlacementsSearchWorkerInvariance: the comparison with the
// search placer in the mix is bit-identical at any worker count,
// annealing trace included.
func TestComparePlacementsSearchWorkerInvariance(t *testing.T) {
	base := DefaultConfig()
	base.Search = SearchSpec{Steps: 32, Seed: 5}
	networks := []string{"MLP-S", "CNN-S"}
	placers := []string{"mesh", "search"}
	var want []PlacementRow
	for i, workers := range []int{1, 4, 3} {
		cfg := base
		cfg.Workers = workers
		rows, err := ComparePlacements(cfg, networks, placers, arch.EinsteinBarrier, 32)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = rows
			for _, r := range rows {
				if r.Placer == "search" && r.Search == nil {
					t.Fatalf("%s: search row missing its trace", r.Network)
				}
			}
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("workers=%d: comparison drifted from serial", workers)
		}
	}
}

// TestSearchCoLocate: coordinate descent under the interference-aware
// set objective never decreases it (the shard warm start reproduces the
// incumbent), and the whole pass is deterministic.
func TestSearchCoLocate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Search = SearchSpec{Steps: 24, Seed: 2}
	names := []string{"MLP-S", "CNN-S"}
	const batch = 32

	// Baseline: the shard-carved co-location SearchCoLocate starts from.
	baseCS, baseES, err := CoLocate(cfg, names, arch.EinsteinBarrier, compiler.ShardPlacer{})
	if err != nil {
		t.Fatal(err)
	}
	baseSR, err := baseES.RunSet(batch)
	if err != nil {
		t.Fatal(err)
	}
	baseline := baseSR.AggregatePerSec * baseSR.FairnessJain

	cs, es, trace, err := SearchCoLocate(cfg, names, arch.EinsteinBarrier, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || len(trace) != 2 {
		t.Fatalf("%d compiled, %d trace entries", len(cs), len(trace))
	}
	sr, err := es.RunSet(batch)
	if err != nil {
		t.Fatal(err)
	}
	got := sr.AggregatePerSec * sr.FairnessJain
	if got < baseline {
		t.Fatalf("set objective decreased: %.1f below shard baseline %.1f", got, baseline)
	}
	for i, ms := range trace {
		if ms.Model != names[i] {
			t.Fatalf("trace[%d] = %s", i, ms.Model)
		}
		if ms.Stats.BestFrom == "" || len(ms.Stats.WarmStarts) == 0 {
			t.Fatalf("%s: empty search trace %+v", ms.Model, ms.Stats)
		}
		// Every searched model stays inside its carved region — that is
		// what keeps the set tile-disjoint during the descent.
		if cs[i].Placement.Region != baseCS[i].Placement.Region {
			t.Fatalf("%s: region drifted from the carve", ms.Model)
		}
	}
	// Determinism: the same config reproduces the same layouts.
	cs2, _, _, err := SearchCoLocate(cfg, names, arch.EinsteinBarrier, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cs {
		if cs[i].Placement.Fingerprint() != cs2[i].Placement.Fingerprint() {
			t.Fatalf("%s: co-location search not deterministic", names[i])
		}
	}
}

func TestSearchCoLocateRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	if _, _, _, err := SearchCoLocate(cfg, nil, arch.EinsteinBarrier, 8); err == nil {
		t.Fatal("no models must error")
	}
	if _, _, _, err := SearchCoLocate(cfg, []string{"MLP-S"}, arch.EinsteinBarrier, 0); err == nil {
		t.Fatal("batch 0 must error")
	}
	if _, _, _, err := SearchCoLocate(cfg, []string{"nope"}, arch.EinsteinBarrier, 8); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, _, _, err := SearchCoLocate(cfg, []string{"MLP-S"}, arch.Design(99), 8); err == nil {
		t.Fatal("unknown design must error")
	}
}
