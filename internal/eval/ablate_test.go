package eval

import (
	"strings"
	"testing"
)

func TestAblateWDMCapacityMonotone(t *testing.T) {
	points, err := AblateWDMCapacity(DefaultConfig(), []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// EB speedup must grow with K; TacitMap must be K-independent.
	if !(points[0].MeanEBSpeedup < points[1].MeanEBSpeedup &&
		points[1].MeanEBSpeedup < points[2].MeanEBSpeedup) {
		t.Fatalf("EB speedup not monotone in K: %+v", points)
	}
	for i := 1; i < 3; i++ {
		if points[i].MeanTacitSpeedup != points[0].MeanTacitSpeedup {
			t.Fatal("TacitMap-ePCM must not depend on K")
		}
	}
	// EB energy improves with K (fewer activations).
	if points[2].MeanEBEnergyGain <= points[0].MeanEBEnergyGain {
		t.Fatal("EB energy gain must grow with K")
	}
}

func TestAblateColumnsPerADC(t *testing.T) {
	points, err := AblateColumnsPerADC(DefaultConfig(), []int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	// More sharing → slower VMM readout → smaller Tacit speedup.
	if !(points[0].MeanTacitSpeedup > points[1].MeanTacitSpeedup &&
		points[1].MeanTacitSpeedup > points[2].MeanTacitSpeedup) {
		t.Fatalf("Tacit speedup should fall with ADC sharing: %+v", points)
	}
}

func TestAblateCrossbarSize(t *testing.T) {
	points, err := AblateCrossbarSize(DefaultConfig(), []int{128, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.MeanTacitSpeedup <= 1 || p.MeanEBSpeedup <= p.MeanTacitSpeedup {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestAblationTableRenders(t *testing.T) {
	points, err := AblateWDMCapacity(DefaultConfig(), []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	s := AblationTable("WDM sweep", points)
	for _, frag := range []string{"WDM sweep", "K=1", "K=16", "eb/tacit"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("table missing %q", frag)
		}
	}
}
