package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/robust"
	"einsteinbarrier/internal/serve"
	"einsteinbarrier/internal/trace"
)

// Device-lifetime evaluation: the robustness study (Fig. 8) prices
// drift and faults statically; RunLifetime closes the loop by serving a
// live request stream on ageing hardware replicas and measuring what
// the canary-driven recalibration policy delivers — availability, the
// accuracy-over-time trace, recalibration energy in joules, and the
// latency SLO inside drain windows.

// LifetimeScenario parameterizes one device-lifetime serving run.
type LifetimeScenario struct {
	// Model is a zoo network name (bnn.NewModel).
	Model string
	// Design selects the accelerator used for per-batch pricing; a
	// negative value disables the Pricer.
	Design arch.Design
	// Eval supplies the architecture/cost tables for the Pricer
	// (DefaultConfig when zero-valued Arch dims are detected is NOT
	// applied — pass eval.DefaultConfig()).
	Eval Config
	// Hardware is the device corner the replicas are mapped at.
	Hardware robust.Config
	// Workers is the hardware replica count (default 1); MaxBatch caps
	// the dynamic batcher (default 4).
	Workers  int
	MaxBatch int
	// Requests is the total arrivals (required).
	Requests int
	// Seed drives the model weights, the canary probes, and the request
	// payloads.
	Seed int64
	// CanarySize is the labeled probe count (default 16).
	CanarySize int
	// Lifetime is the lifecycle policy. Clock and Canary may be left
	// nil: the runner installs a BatchClock{SecondsPerSample} and a
	// seeded canary set.
	Lifetime serve.LifetimeConfig
	// SecondsPerSample scales simulated device time per served sample
	// when Lifetime.Clock is nil. The drift horizon covered by the run
	// is Requests·SecondsPerSample.
	SecondsPerSample float64
	// Fallback enables the fail-open software path.
	Fallback bool
	// Diurnal, when non-nil, drives arrivals with a rate-modulated
	// Poisson schedule (serve.DiurnalSchedule); nil uses the
	// deterministic closed loop with Clients clients (default 1 —
	// fully reproducible trace at Workers=1).
	Diurnal *DiurnalLoad
	Clients int
	// Trace, when non-nil, receives the serving-side span trace
	// (serve.Config.Trace): request spans, batch slices, and the
	// lifetime lifecycle events (canary/recalibrate/retire/fallback).
	Trace *trace.Recorder
}

// DiurnalLoad is the day/night arrival modulation.
type DiurnalLoad struct {
	// BaseRate/PeakRate bound the instantaneous arrival rate (req/s,
	// wall clock); Period is one full day/night cycle.
	BaseRate float64
	PeakRate float64
	Period   time.Duration
}

// LifetimeReport is the outcome of one device-lifetime run.
type LifetimeReport struct {
	Model  string `json:"model"`
	Design string `json:"design"`
	// HorizonSeconds is the simulated device time the run spans (max
	// replica wear).
	HorizonSeconds float64 `json:"horizon_seconds"`
	// Requests partition: Completed replies arrived, Shed were refused
	// at admission, Failed errored.
	Requests  int   `json:"requests"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Failed    int64 `json:"failed"`
	// AvailabilityPct is Completed / (Accepted + Shed) — the fraction
	// of offered load that got an answer.
	AvailabilityPct float64 `json:"availability_pct"`
	// Recalibration accounting, priced by the energy cost model.
	Recalibrations int64   `json:"recalibrations"`
	Retired        int     `json:"retired"`
	RecalEnergyJ   float64 `json:"recal_energy_j"`
	RecalLatencyMs float64 `json:"recal_latency_ms"`
	// FallbackServed counts samples answered by the fail-open software
	// path.
	FallbackServed int64 `json:"fallback_served"`
	// Drain-window latency SLO: requests served while a replica was out
	// of rotation.
	DrainServed int64   `json:"drain_served"`
	DrainP99Ms  float64 `json:"drain_p99_ms"`
	// MeanCanary / MinCanary summarize the accuracy-over-time trace;
	// Trace is the full canary series.
	MeanCanary float64             `json:"mean_canary_accuracy"`
	MinCanary  float64             `json:"min_canary_accuracy"`
	Trace      []serve.CanaryPoint `json:"trace"`
	// Lifetime is the final per-replica lifecycle state.
	Lifetime *serve.LifetimeSnapshot `json:"lifetime"`
	// Stats is the server's full metrics snapshot.
	Stats serve.Snapshot `json:"stats"`
}

// RunLifetime serves sc.Requests arrivals through ageing hardware
// replicas of the zoo model and reports the closed recalibration loop's
// outcome. With the closed-loop generator, one worker, and a
// jitter-free clock the entire report (minus wall-clock latencies) is a
// deterministic function of the scenario.
func RunLifetime(sc LifetimeScenario) (LifetimeReport, error) {
	if sc.Requests <= 0 {
		return LifetimeReport{}, fmt.Errorf("eval: lifetime run needs Requests > 0, got %d", sc.Requests)
	}
	model, err := bnn.NewModel(sc.Model, sc.Seed)
	if err != nil {
		return LifetimeReport{}, err
	}
	backend, err := serve.NewHardwareBackend(model, sc.Hardware)
	if err != nil {
		return LifetimeReport{}, err
	}
	size := 1
	for _, d := range model.InputShape {
		size *= d
	}

	life := sc.Lifetime
	if life.Clock == nil {
		if sc.SecondsPerSample <= 0 {
			return LifetimeReport{}, fmt.Errorf("eval: lifetime run needs a Clock or SecondsPerSample > 0")
		}
		life.Clock = serve.BatchClock{SecondsPerSample: sc.SecondsPerSample}
	}
	if life.Canary == nil {
		n := sc.CanarySize
		if n <= 0 {
			n = 16
		}
		canary, err := serve.NewCanarySet(model, serve.SyntheticInputs(size, n, sc.Seed+1))
		if err != nil {
			return LifetimeReport{}, err
		}
		life.Canary = canary
	}
	if sc.Fallback && life.Fallback == nil {
		life.Fallback = model
	}

	cfg := serve.Config{
		Backend:  backend,
		Workers:  max(sc.Workers, 1),
		MaxBatch: sc.MaxBatch,
		Lifetime: &life,
		Trace:    sc.Trace,
	}
	designName := ""
	if sc.Design >= 0 {
		eng, err := Pipeline(sc.Eval, model, sc.Design)
		if err != nil {
			return LifetimeReport{}, err
		}
		pricer, err := serve.NewPricer(eng)
		if err != nil {
			return LifetimeReport{}, err
		}
		cfg.Pricer = pricer
		designName = sc.Design.String()
	}
	s, err := serve.New(cfg)
	if err != nil {
		return LifetimeReport{}, err
	}
	defer s.Stop()

	load := serve.LoadConfig{
		Requests: sc.Requests,
		Seed:     sc.Seed + 2,
		Clients:  max(sc.Clients, 1),
		Inputs:   serve.SyntheticInputs(size, min(sc.Requests, 256), sc.Seed+3),
	}
	if d := sc.Diurnal; d != nil {
		load.Arrivals, err = serve.DiurnalSchedule(sc.Seed+2, d.BaseRate, d.PeakRate, d.Period, sc.Requests)
		if err != nil {
			return LifetimeReport{}, err
		}
	}
	lr, err := serve.Run(s, load)
	if err != nil {
		return LifetimeReport{}, err
	}
	// Replies are delivered before the lifecycle bookkeeping for their
	// batch runs; Stop joins the workers so the final snapshot and trace
	// include every served batch.
	s.Stop()
	lr.Stats = s.Stats()
	return buildLifetimeReport(sc, designName, s, lr), nil
}

func buildLifetimeReport(sc LifetimeScenario, designName string, s *serve.Server, lr serve.LoadReport) LifetimeReport {
	rep := LifetimeReport{
		Model:     sc.Model,
		Design:    designName,
		Requests:  sc.Requests,
		Completed: lr.Completed,
		Shed:      lr.Shed,
		Failed:    lr.Failed,
		Trace:     s.Trace(),
		Stats:     lr.Stats,
		Lifetime:  lr.Stats.Lifetime,
	}
	if offered := lr.Stats.Accepted + lr.Stats.Shed; offered > 0 {
		rep.AvailabilityPct = 100 * float64(lr.Completed) / float64(offered)
	}
	if lt := rep.Lifetime; lt != nil {
		rep.Recalibrations = lt.Recalibrations
		rep.Retired = lt.Retired
		rep.RecalEnergyJ = lt.RecalEnergyPJ * 1e-12
		rep.RecalLatencyMs = lt.RecalLatencyNs * 1e-6
		rep.FallbackServed = lt.FallbackServed
		for _, r := range lt.Replicas {
			if r.WearSeconds > rep.HorizonSeconds {
				rep.HorizonSeconds = r.WearSeconds
			}
		}
	}
	if dl := lr.Stats.DrainLatency; dl != nil {
		rep.DrainServed = lr.Stats.DrainServed
		rep.DrainP99Ms = dl.P99
	}
	if len(rep.Trace) > 0 {
		sum, minAcc := 0.0, rep.Trace[0].Accuracy
		for _, p := range rep.Trace {
			sum += p.Accuracy
			if p.Accuracy < minAcc {
				minAcc = p.Accuracy
			}
		}
		rep.MeanCanary = sum / float64(len(rep.Trace))
		rep.MinCanary = minAcc
	}
	return rep
}

// LifetimeTable renders the report as a text summary plus the canary
// accuracy-over-time trace.
func LifetimeTable(r LifetimeReport) string {
	var sb []byte
	app := func(s string) { sb = append(sb, s...) }
	app(fmt.Sprintf("Device lifetime: %s", r.Model))
	if r.Design != "" {
		app(fmt.Sprintf(" on %s", r.Design))
	}
	app(fmt.Sprintf(" — %.0f simulated device-seconds\n", r.HorizonSeconds))
	app(fmt.Sprintf("  availability      %8.3f %%  (%d completed, %d shed, %d failed)\n",
		r.AvailabilityPct, r.Completed, r.Shed, r.Failed))
	app(fmt.Sprintf("  recalibrations    %8d     (%.3g J, %.3g ms write time)\n",
		r.Recalibrations, r.RecalEnergyJ, r.RecalLatencyMs))
	app(fmt.Sprintf("  retired replicas  %8d\n", r.Retired))
	app(fmt.Sprintf("  fallback served   %8d samples\n", r.FallbackServed))
	if r.DrainServed > 0 {
		app(fmt.Sprintf("  drain p99         %8.3f ms  over %d requests\n", r.DrainP99Ms, r.DrainServed))
	}
	app(fmt.Sprintf("  canary accuracy   %8.4f mean, %.4f min over %d probes\n",
		r.MeanCanary, r.MinCanary, len(r.Trace)))
	app("\n  served      replica   age s     accuracy  event\n")
	for _, p := range r.Trace {
		event := ""
		switch {
		case p.PostRecal:
			event = "post-recal"
		case p.Flagged:
			event = "flagged"
		}
		app(fmt.Sprintf("  %-11d %-9d %-9.0f %-9.4f %s\n",
			p.ServedSamples, p.Replica, p.AgeSeconds, p.Accuracy, event))
	}
	return string(sb)
}

// WriteLifetimeJSON emits the full report as indented JSON.
func WriteLifetimeJSON(w io.Writer, r LifetimeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteLifetimeCSV emits the accuracy-over-time trace, one row per
// canary probe — the plottable Fig. 8 dynamic counterpart. Since the
// trace-observability PR this rides the shared internal/trace CSV
// schema (kind,pid,tid,track,name,seq,start_ns,dur_ns,a,b): track is
// the replica, name the lifecycle state (canary/flagged/post-recal),
// seq and start the served-sample count, a the accuracy, b the wear
// age in device-seconds.
func WriteLifetimeCSV(w io.Writer, r LifetimeReport) error {
	return trace.WriteCSV(w, LifetimeTraceRecorder(r))
}
