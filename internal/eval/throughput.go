package eval

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/sim"
)

// Batch-throughput evaluation: the paper's Fig. 7/8 price a single
// inference; the pipelined engine (internal/sim/engine.go) additionally
// streams batches through the tile pipeline. ThroughputAt sweeps batch
// sizes for every network×design pair and reports inferences/s — the
// serving-oriented metric the latency figures cannot show.

// ThroughputPoint is one batch size of a sweep.
type ThroughputPoint struct {
	// Batch is the number of inferences in flight.
	Batch int `json:"batch"`
	// PerSec is the achieved throughput Batch/makespan.
	PerSec float64 `json:"inferences_per_sec"`
	// MakespanNs is when the last sample's logits reach the host.
	MakespanNs float64 `json:"makespan_ns"`
}

// ThroughputResult is the batch sweep of one network on one design.
type ThroughputResult struct {
	Network string
	Design  arch.Design
	// LatencyNs is the single-inference critical path (identical to the
	// Fig. 7 series).
	LatencyNs float64
	// SteadyStatePerSec is the pipeline's analytic throughput ceiling;
	// BottleneckName names the saturated resource (stage, mesh link or
	// chip port).
	SteadyStatePerSec float64
	BottleneckName    string
	// Points holds the sweep, in the requested batch order.
	Points []ThroughputPoint
}

// ThroughputAt runs the batch sweep for every zoo network on every
// given design (nil means all registered designs). Jobs fan out over
// cfg.Workers like Run; the engine is deterministic, so results are
// bit-identical at any worker count.
func ThroughputAt(cfg Config, designs []arch.Design, batches []int) ([]ThroughputResult, error) {
	if len(designs) == 0 {
		designs = arch.Designs()
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("eval: no batch sizes given")
	}
	for _, b := range batches {
		if b < 1 {
			return nil, fmt.Errorf("eval: batch size %d must be ≥ 1", b)
		}
	}
	for _, d := range designs {
		if _, err := d.Spec(); err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
	}
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		return nil, err
	}
	models, err := bnn.Zoo(cfg.Seed)
	if err != nil {
		return nil, err
	}
	nd := len(designs)
	return infer.Map(cfg.Workers, len(models)*nd, func(_, j int) (ThroughputResult, error) {
		m, d := models[j/nd], designs[j%nd]
		out := ThroughputResult{Network: m.Name(), Design: d}
		c, err := compiler.Compile(m, cfg.Arch, d)
		if err != nil {
			return out, fmt.Errorf("eval: %s/%v: %w", m.Name(), d, err)
		}
		eng, err := simulator.NewEngine(c)
		if err != nil {
			return out, fmt.Errorf("eval: %s/%v: %w", m.Name(), d, err)
		}
		// One incremental schedule pass covers the whole sweep
		// (Engine.RunBatches) — compilation and scheduling both happen
		// once per network×design, not once per batch size; results are
		// bit-identical to the per-size path (test-pinned).
		brs, err := eng.RunBatches(batches)
		if err != nil {
			return out, fmt.Errorf("eval: %s/%v: %w", m.Name(), d, err)
		}
		for i, br := range brs {
			out.LatencyNs = br.LatencyNs
			out.SteadyStatePerSec = br.SteadyStatePerSec
			out.BottleneckName = br.BottleneckName
			out.Points = append(out.Points, ThroughputPoint{
				Batch: batches[i], PerSec: br.ThroughputPerSec, MakespanNs: br.MakespanNs,
			})
		}
		return out, nil
	})
}

// ThroughputTable renders a sweep as an aligned text table, one row per
// network×design, one column per batch size.
func ThroughputTable(rows []ThroughputResult) string {
	var sb strings.Builder
	sb.WriteString("Pipelined batch throughput (inferences/s)\n")
	if len(rows) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-8s %-20s", "network", "design")
	for _, p := range rows[0].Points {
		fmt.Fprintf(&sb, " %11s", fmt.Sprintf("B=%d", p.Batch))
	}
	fmt.Fprintf(&sb, " %12s  %s\n", "ceiling", "bottleneck")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-20v", r.Network, r.Design)
		for _, p := range r.Points {
			fmt.Fprintf(&sb, " %11.0f", p.PerSec)
		}
		fmt.Fprintf(&sb, " %12.0f  %s\n", r.SteadyStatePerSec, r.BottleneckName)
	}
	return sb.String()
}

// WriteThroughputCSV emits one row per network×design×batch.
func WriteThroughputCSV(w io.Writer, rows []ThroughputResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"network", "design", "batch", "inferences_per_sec", "makespan_ns",
		"latency_ns", "steady_state_per_sec", "bottleneck",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range rows {
		for _, p := range r.Points {
			if err := cw.Write([]string{
				r.Network, r.Design.String(), strconv.Itoa(p.Batch),
				f(p.PerSec), f(p.MakespanNs),
				f(r.LatencyNs), f(r.SteadyStatePerSec), r.BottleneckName,
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonThroughputRow is the serialized shape of one sweep row.
type jsonThroughputRow struct {
	Network           string            `json:"network"`
	Design            string            `json:"design"`
	LatencyNs         float64           `json:"latency_ns"`
	SteadyStatePerSec float64           `json:"steady_state_per_sec"`
	Bottleneck        string            `json:"bottleneck"`
	Points            []ThroughputPoint `json:"points"`
}

// WriteThroughputJSON emits the sweep as indented JSON.
func WriteThroughputJSON(w io.Writer, rows []ThroughputResult) error {
	out := make([]jsonThroughputRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, jsonThroughputRow{
			Network:           r.Network,
			Design:            r.Design.String(),
			LatencyNs:         r.LatencyNs,
			SteadyStatePerSec: r.SteadyStatePerSec,
			Bottleneck:        r.BottleneckName,
			Points:            r.Points,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Pipeline compiles one model for one design and returns the tile-level
// pipelined pricing engine. This is the online per-batch pricing hook:
// the serving subsystem (internal/serve) calls RunBatch on it for every
// dynamically formed batch, so a live request stream is priced by the
// exact same arithmetic as the offline ThroughputAt sweep.
func Pipeline(cfg Config, model *bnn.Model, d arch.Design) (*sim.Engine, error) {
	if _, err := d.Spec(); err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		return nil, err
	}
	c, err := compiler.Compile(model, cfg.Arch, d)
	if err != nil {
		return nil, fmt.Errorf("eval: %s/%v: %w", model.Name(), d, err)
	}
	return simulator.NewEngine(c)
}
