package eval

import (
	"strings"
	"testing"
)

// runOnce caches the default evaluation across tests (it simulates all
// six networks on four designs).
var cachedReport *Report

func report(t *testing.T) *Report {
	t.Helper()
	if cachedReport == nil {
		rep, err := Run(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cachedReport = rep
	}
	return cachedReport
}

func TestRunCoversZoo(t *testing.T) {
	rep := report(t)
	if len(rep.Networks) != 6 {
		t.Fatalf("got %d networks", len(rep.Networks))
	}
	for _, n := range rep.Networks {
		if n.LatBaseline <= 0 || n.LatTacit <= 0 || n.LatEB <= 0 || n.LatGPU <= 0 {
			t.Fatalf("%s: non-positive latency", n.Network)
		}
		if n.EnergyBaseline <= 0 || n.EnergyTacit <= 0 || n.EnergyEB <= 0 {
			t.Fatalf("%s: non-positive energy", n.Network)
		}
		if len(n.Results) != 3 {
			t.Fatalf("%s: missing per-design results", n.Network)
		}
	}
}

// TestFig7Bands pins the reproduction of Fig. 7 / §VI-A to the paper's
// observation bands (direction exact, magnitude within a rough factor —
// our substrate is a parameterized simulator, not the authors' testbed).
func TestFig7Bands(t *testing.T) {
	s := report(t).Summarize()
	checks := []struct {
		name   string
		got    float64
		lo, hi float64
	}{
		{"TacitMap mean speedup (paper ~78x)", s.MeanTacitSpeedup, 35, 170},
		{"TacitMap max speedup (paper ~154x)", s.MaxTacitSpeedup, 75, 320},
		{"EB mean speedup (paper ~1205x)", s.MeanEBSpeedup, 500, 2500},
		{"EB min speedup (paper ~22x)", s.MinEBSpeedup, 10, 50},
		{"EB max speedup (paper ~3113x)", s.MaxEBSpeedup, 1500, 6500},
		{"EB over TacitMap (paper ~15x)", s.MeanEBOverTacit, 7, 32},
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s: got %.1f, want in [%g, %g]", c.name, c.got, c.lo, c.hi)
		}
	}
}

// TestFig8Bands pins the Fig. 8 / §VI-B energy observations.
func TestFig8Bands(t *testing.T) {
	s := report(t).Summarize()
	if s.MeanTacitEnergyX < 2.5 || s.MeanTacitEnergyX > 11 {
		t.Errorf("TacitMap energy increase (paper ~5.35x): got %.2f", s.MeanTacitEnergyX)
	}
	if s.MeanEBEnergyGain < 1.1 || s.MeanEBEnergyGain > 4.5 {
		t.Errorf("EB energy gain vs baseline (paper ~1.56x): got %.2f", s.MeanEBEnergyGain)
	}
	if s.MeanEBOverTacitEnergy < 6 || s.MeanEBOverTacitEnergy > 24 {
		t.Errorf("EB energy gain vs TacitMap (paper ~11.94x): got %.2f", s.MeanEBOverTacitEnergy)
	}
}

// TestGPUCrossover pins §VI-A observation 4: Baseline-ePCM beats the
// GPU on the first CNN but loses on MLPs (≈27× on MLP-L).
func TestGPUCrossover(t *testing.T) {
	rep := report(t)
	s := rep.Summarize()
	if s.BaselineVsGPUBest < 1.5 {
		t.Errorf("baseline should beat the GPU somewhere by ≥1.5x (paper ~4x), best %.2f", s.BaselineVsGPUBest)
	}
	if s.GPUFasterCount == 0 {
		t.Error("GPU should beat the baseline on at least one network")
	}
	for _, n := range rep.Networks {
		if n.Network == "CNN-S" && n.LatGPU <= n.LatBaseline {
			t.Error("baseline must beat the GPU on the first CNN")
		}
		if n.Network == "MLP-L" {
			slower := n.LatBaseline / n.LatGPU
			if slower < 10 || slower > 80 {
				t.Errorf("MLP-L baseline-vs-GPU slowdown %.1f outside [10,80] (paper ~27x)", slower)
			}
		}
	}
}

// TestPerNetworkDirections: every network individually preserves the
// paper's ordering.
func TestPerNetworkDirections(t *testing.T) {
	for _, n := range report(t).Networks {
		tacit, eb, _ := n.Fig7Speedups()
		if tacit <= 1 {
			t.Errorf("%s: TacitMap speedup %.2f must exceed 1", n.Network, tacit)
		}
		if eb <= tacit {
			t.Errorf("%s: EB speedup %.2f must exceed TacitMap %.2f", n.Network, eb, tacit)
		}
		tn, en := n.Fig8Normalized()
		if tn <= 1 {
			t.Errorf("%s: TacitMap normalized energy %.2f must exceed 1", n.Network, tn)
		}
		if en >= tn {
			t.Errorf("%s: EB normalized energy %.2f must be below TacitMap %.2f", n.Network, en, tn)
		}
	}
}

// TestEBBelowWDMCapacity: §VI-A observation 3 — the technology gain of
// EB over TacitMap-ePCM on conv-free MLPs stays below K because a dense
// layer at batch 1 offers a single input vector.
func TestEBBelowWDMCapacity(t *testing.T) {
	rep := report(t)
	k := float64(rep.Config.Arch.WDMCapacity)
	for _, n := range rep.Networks {
		if !strings.HasPrefix(n.Network, "MLP") {
			continue
		}
		ratio := n.LatTacit / n.LatEB
		if ratio >= k {
			t.Errorf("%s: EB/Tacit ratio %.1f should stay below K=%g", n.Network, ratio, k)
		}
	}
}

func TestTablesRender(t *testing.T) {
	rep := report(t)
	f7 := rep.Fig7Table()
	for _, frag := range []string{"Fig. 7", "CNN-L", "MLP-L", "MEAN", "GMEAN"} {
		if !strings.Contains(f7, frag) {
			t.Fatalf("Fig7Table missing %q", frag)
		}
	}
	f8 := rep.Fig8Table()
	if !strings.Contains(f8, "Fig. 8") || !strings.Contains(f8, "EinsteinBarrier") {
		t.Fatal("Fig8Table malformed")
	}
	sum := rep.SummaryTable()
	for _, frag := range []string{"~78x", "~1205x", "~5.35x", "~11.94x"} {
		if !strings.Contains(sum, frag) {
			t.Fatalf("SummaryTable missing paper reference %q", frag)
		}
	}
}

func TestSortedByName(t *testing.T) {
	rep := report(t)
	sorted := rep.SortedByName()
	want := []string{"CNN-S", "CNN-M", "CNN-L", "MLP-S", "MLP-M", "MLP-L"}
	for i, n := range sorted {
		if n.Network != want[i] {
			t.Fatalf("order[%d] = %s, want %s", i, n.Network, want[i])
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GPU.FP32PerNs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid GPU model should fail")
	}
	cfg = DefaultConfig()
	cfg.Arch.Nodes = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid arch should fail")
	}
}
