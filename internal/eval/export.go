package eval

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Export: machine-readable forms of the evaluation for plotting
// pipelines (the published figures are log-scale bar charts; the CSV
// columns are exactly their series).

// WriteCSV emits one row per network with the Fig. 7 and Fig. 8 series
// plus the raw latencies/energies.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"network",
		"fig7_tacit_speedup", "fig7_eb_speedup", "gpu_vs_baseline",
		"fig8_tacit_norm_energy", "fig8_eb_norm_energy",
		"latency_baseline_ns", "latency_tacit_ns", "latency_eb_ns", "latency_gpu_ns",
		"energy_baseline_pj", "energy_tacit_pj", "energy_eb_pj",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, n := range r.SortedByName() {
		tacit, eb, _ := n.Fig7Speedups()
		tn, en := n.Fig8Normalized()
		row := []string{
			n.Network,
			f(tacit), f(eb), f(n.LatGPU / n.LatBaseline),
			f(tn), f(en),
			f(n.LatBaseline), f(n.LatTacit), f(n.LatEB), f(n.LatGPU),
			f(n.EnergyBaseline), f(n.EnergyTacit), f(n.EnergyEB),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonReport is the serialized shape of a Report.
type jsonReport struct {
	Summary  Summary          `json:"summary"`
	Networks []jsonNetworkRow `json:"networks"`
}

type jsonNetworkRow struct {
	Network         string  `json:"network"`
	TacitSpeedup    float64 `json:"fig7_tacit_speedup"`
	EBSpeedup       float64 `json:"fig7_eb_speedup"`
	GPUVsBaseline   float64 `json:"gpu_vs_baseline"`
	TacitNormEnergy float64 `json:"fig8_tacit_norm_energy"`
	EBNormEnergy    float64 `json:"fig8_eb_norm_energy"`
	LatencyBaseline float64 `json:"latency_baseline_ns"`
	LatencyTacit    float64 `json:"latency_tacit_ns"`
	LatencyEB       float64 `json:"latency_eb_ns"`
	LatencyGPU      float64 `json:"latency_gpu_ns"`
	EnergyBaseline  float64 `json:"energy_baseline_pj"`
	EnergyTacit     float64 `json:"energy_tacit_pj"`
	EnergyEB        float64 `json:"energy_eb_pj"`
}

// WriteJSON emits the summary and per-network rows as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{Summary: r.Summarize()}
	for _, n := range r.SortedByName() {
		tacit, eb, _ := n.Fig7Speedups()
		tn, en := n.Fig8Normalized()
		out.Networks = append(out.Networks, jsonNetworkRow{
			Network:         n.Network,
			TacitSpeedup:    tacit,
			EBSpeedup:       eb,
			GPUVsBaseline:   n.LatGPU / n.LatBaseline,
			TacitNormEnergy: tn,
			EBNormEnergy:    en,
			LatencyBaseline: n.LatBaseline,
			LatencyTacit:    n.LatTacit,
			LatencyEB:       n.LatEB,
			LatencyGPU:      n.LatGPU,
			EnergyBaseline:  n.EnergyBaseline,
			EnergyTacit:     n.EnergyTacit,
			EnergyEB:        n.EnergyEB,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSONSummary parses a JSON report back (round-trip support for
// archival comparisons).
func ReadJSONSummary(r io.Reader) (Summary, error) {
	var jr jsonReport
	if err := json.NewDecoder(r).Decode(&jr); err != nil {
		return Summary{}, fmt.Errorf("eval: %w", err)
	}
	return jr.Summary, nil
}
