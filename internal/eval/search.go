package eval

import (
	"fmt"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/sim"
)

// Interference-aware co-location search. CoLocate carves the fabric
// into per-model regions and places each model with one heuristic;
// SearchCoLocate then improves the models one at a time (coordinate
// descent): model i's region is annealed with compiler.SearchPlacer
// against sim.SetEvaluator — the WHOLE set's aggregate throughput
// penalized by Jain fairness, with the other models' current layouts
// live on the fabric — so a layout that wins by starving a neighbour's
// NoC paths does not win. The shard warm start reproduces each model's
// incumbent layout, so no pass can decrease the set objective.

// ModelSearch records one model's co-location search outcome.
type ModelSearch struct {
	Model string               `json:"model"`
	Stats compiler.SearchStats `json:"stats"`
	// Eval is the slot evaluator's perf accounting: cache hits,
	// singleflight collapses and engine-set pool reuse.
	Eval sim.EvalCounters `json:"eval"`
}

// SearchCoLocate co-locates the named models like CoLocate with the
// shard placer, then runs one coordinate-descent pass of annealing per
// model under the set objective at the given batch size
// (cfg.Search.Batch overrides when non-zero). Model i uses seed
// cfg.Search.Seed+i so the searches explore independent neighborhoods.
// Deterministic: a pure function of (cfg, names, d, batch).
func SearchCoLocate(cfg Config, names []string, d arch.Design, batch int) ([]*compiler.Compiled, *sim.EngineSet, []ModelSearch, error) {
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("eval: no models to co-locate")
	}
	if batch < 1 {
		return nil, nil, nil, fmt.Errorf("eval: batch %d must be ≥ 1", batch)
	}
	if _, err := d.Spec(); err != nil {
		return nil, nil, nil, fmt.Errorf("eval: %w", err)
	}
	var models []*bnn.Model
	for _, n := range names {
		m, err := bnn.NewModel(n, cfg.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
		models = append(models, m)
	}
	cs, err := compiler.CompileSet(models, cfg.Arch, d, compiler.SetOptions{Placer: compiler.ShardPlacer{}})
	if err != nil {
		return nil, nil, nil, err
	}
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		return nil, nil, nil, err
	}
	sb := cfg.Search.Batch
	if sb == 0 {
		sb = batch
	}
	seed := cfg.Search.Seed
	if seed == 0 {
		seed = 1
	}
	var trace []ModelSearch
	for i, m := range models {
		se, err := simulator.SetEvaluator(cs, i, sb)
		if err != nil {
			return nil, nil, nil, err
		}
		sp, err := compiler.NewSearchPlacer(m, cfg.Arch, d, se, compiler.SearchOptions{
			Steps: cfg.Search.Steps, Seed: seed + int64(i), Workers: cfg.Workers,
			Trace: cfg.Search.Trace,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		// Search only inside the model's carved region — every candidate
		// stays tile-disjoint from the neighbours by construction.
		region := cs[i].Placement.Region
		c, err := compiler.CompileWith(m, cfg.Arch, d, compiler.Options{Placer: sp, Region: &region})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("eval: %s/search: %w", m.Name(), err)
		}
		cs[i] = c
		trace = append(trace, ModelSearch{Model: m.Name(), Stats: sp.Stats(), Eval: se.Counters()})
	}
	es, err := simulator.NewEngineSet(cs)
	if err != nil {
		return nil, nil, nil, err
	}
	return cs, es, trace, nil
}
