package eval

import (
	"bytes"
	"fmt"
	"io"
	"strconv"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/trace"
)

// Trace evaluation surface: TraceBatch records one network×design batch
// schedule through the pipeline engine's recorder and TraceZoo fans the
// whole zoo out over workers — with the same determinism contract as
// every other eval entry point: byte-identical exports at any worker
// count (test-pinned across {1,2,4,0}).

// TraceBatch compiles one zoo network for one design, streams a batch
// through the pipeline engine with tracing armed, and returns the
// recorder (ring sized so nothing drops) together with the batch
// result it describes.
func TraceBatch(cfg Config, network string, d arch.Design, batch int) (*trace.Recorder, *sim.BatchResult, error) {
	if batch < 1 {
		return nil, nil, fmt.Errorf("eval: batch size %d must be ≥ 1", batch)
	}
	m, err := bnn.NewModel(network, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	eng, err := Pipeline(cfg, m, d)
	if err != nil {
		return nil, nil, err
	}
	r := trace.New(batch*eng.TraceEventsPerSample() + 16)
	eng.EnableTrace(r)
	br, err := eng.RunBatch(batch)
	if err != nil {
		return nil, nil, err
	}
	return r, br, nil
}

// TraceExport is one traced network×design schedule, serialized in both
// export formats.
type TraceExport struct {
	Network string
	Design  arch.Design
	Chrome  []byte // Chrome-trace / Perfetto JSON
	CSV     []byte // flat per-event CSV
}

// TraceZoo records every zoo network on every given design (nil = all
// registered designs) at one batch size, fanning out over cfg.Workers.
// Each job owns a private recorder and serializes inside the worker, so
// the byte output is independent of scheduling — bit-identical at any
// worker count.
func TraceZoo(cfg Config, designs []arch.Design, batch int) ([]TraceExport, error) {
	if len(designs) == 0 {
		designs = arch.Designs()
	}
	for _, d := range designs {
		if _, err := d.Spec(); err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
	}
	models, err := bnn.Zoo(cfg.Seed)
	if err != nil {
		return nil, err
	}
	nd := len(designs)
	return infer.Map(cfg.Workers, len(models)*nd, func(_, j int) (TraceExport, error) {
		m, d := models[j/nd], designs[j%nd]
		out := TraceExport{Network: m.Name(), Design: d}
		r, _, err := TraceBatch(cfg, m.Name(), d, batch)
		if err != nil {
			return out, fmt.Errorf("eval: %s/%v: %w", m.Name(), d, err)
		}
		var chrome, csv bytes.Buffer
		if err := trace.WriteChrome(&chrome, r); err != nil {
			return out, err
		}
		if err := trace.WriteCSV(&csv, r); err != nil {
			return out, err
		}
		out.Chrome = chrome.Bytes()
		out.CSV = csv.Bytes()
		return out, nil
	})
}

// LifetimeTraceRecorder converts a lifetime run's canary series into
// the shared trace representation: one process per run (time axis =
// served samples, noted in the process name), one track per hardware
// replica, one counter event per canary probe whose name records the
// lifecycle state (canary / flagged / post-recal), value the canary
// accuracy, and payload B the replica's wear age in device-seconds.
// This is what `ebserve -lifetime` CSV output and the trace JSON both
// serialize — one trace format everywhere.
func LifetimeTraceRecorder(r LifetimeReport) *trace.Recorder {
	rec := trace.New(len(r.Trace) + 1)
	proc := rec.AddProcess(lifetimeProcName(r))
	canary := rec.Intern("canary")
	flagged := rec.Intern("flagged")
	postRecal := rec.Intern("post-recal")
	tracks := map[int]int32{}
	for _, p := range r.Trace {
		tr, ok := tracks[p.Replica]
		if !ok {
			tr = rec.AddTrack(proc, "replica "+strconv.Itoa(p.Replica))
			tracks[p.Replica] = tr
		}
		name := canary
		switch {
		case p.PostRecal:
			name = postRecal
		case p.Flagged:
			name = flagged
		}
		rec.Emit(trace.Event{
			Kind: trace.KindCounter, Track: tr, Name: name,
			Seq: p.ServedSamples, Start: float64(p.ServedSamples),
			A: p.Accuracy, B: p.AgeSeconds,
		})
	}
	rec.SetMeta("model", r.Model)
	if r.Design != "" {
		rec.SetMeta("design", r.Design)
	}
	rec.SetMeta("time_axis", "served_samples")
	rec.SetMeta("horizon_seconds", strconv.FormatFloat(r.HorizonSeconds, 'g', -1, 64))
	rec.SetMeta("recalibrations", strconv.FormatInt(r.Recalibrations, 10))
	rec.SetMeta("fallback_served", strconv.FormatInt(r.FallbackServed, 10))
	return rec
}

func lifetimeProcName(r LifetimeReport) string {
	if r.Design != "" {
		return fmt.Sprintf("lifetime %s on %s (t = served samples)", r.Model, r.Design)
	}
	return fmt.Sprintf("lifetime %s (t = served samples)", r.Model)
}

// WriteLifetimeTrace emits the canary series as Chrome-trace JSON —
// load it next to an engine trace to line recalibration windows up
// with the schedule they disturbed.
func WriteLifetimeTrace(w io.Writer, r LifetimeReport) error {
	return trace.WriteChrome(w, LifetimeTraceRecorder(r))
}
