package eval

import (
	"testing"

	"einsteinbarrier/internal/arch"
)

// TestRunParallelBitIdenticalToSerial pins the engine guarantee: the
// worker-pool evaluation must produce exactly the same report — every
// latency, every energy term, bit for bit — as the serial path under
// the same seed.
func TestRunParallelBitIdenticalToSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0} {
		cfg.Workers = workers
		parallel, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel.Networks) != len(serial.Networks) {
			t.Fatalf("workers=%d: %d networks, want %d",
				workers, len(parallel.Networks), len(serial.Networks))
		}
		for i, s := range serial.Networks {
			p := parallel.Networks[i]
			if p.Network != s.Network {
				t.Fatalf("workers=%d: network order changed: %s != %s", workers, p.Network, s.Network)
			}
			pairs := []struct {
				what string
				a, b float64
			}{
				{"LatBaseline", p.LatBaseline, s.LatBaseline},
				{"LatTacit", p.LatTacit, s.LatTacit},
				{"LatEB", p.LatEB, s.LatEB},
				{"LatGPU", p.LatGPU, s.LatGPU},
				{"EnergyBaseline", p.EnergyBaseline, s.EnergyBaseline},
				{"EnergyTacit", p.EnergyTacit, s.EnergyTacit},
				{"EnergyEB", p.EnergyEB, s.EnergyEB},
				{"EnergyGPU", p.EnergyGPU, s.EnergyGPU},
			}
			for _, pr := range pairs {
				if pr.a != pr.b {
					t.Errorf("workers=%d %s %s: parallel %v != serial %v",
						workers, s.Network, pr.what, pr.a, pr.b)
				}
			}
			for _, d := range []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier} {
				sr, pr := s.Results[d], p.Results[d]
				if sr.LatencyNs != pr.LatencyNs || sr.EnergyPJ() != pr.EnergyPJ() ||
					sr.Counters != pr.Counters {
					t.Errorf("workers=%d %s %v: drill-down result diverged", workers, s.Network, d)
				}
			}
		}
	}
}
