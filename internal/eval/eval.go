// Package eval is the experiment harness: it runs the four evaluated
// designs (Baseline-ePCM, TacitMap-ePCM, EinsteinBarrier, Baseline-GPU)
// over the six-network zoo and produces the series behind the paper's
// Fig. 7 (normalized latency) and Fig. 8 (normalized energy), plus the
// headline aggregates called out in §VI (observations 1–4).
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/gpu"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/trace"
)

// Config parameterizes one evaluation run.
type Config struct {
	// Arch is the accelerator configuration (shared by the CIM designs).
	Arch arch.Config
	// Costs is the event cost table.
	Costs energy.CostParams
	// GPU is the Baseline-GPU model.
	GPU gpu.Model
	// Seed synthesizes the zoo weights.
	Seed int64
	// Workers bounds the compile+simulate fan-out: every network×design
	// pair is an independent job run on a worker pool. 0 (the default)
	// means one worker per available CPU; 1 forces the serial path. The
	// report is bit-identical at any worker count.
	Workers int
	// Designs selects the CIM designs to evaluate, resolved through the
	// arch design registry. Nil means the paper's Fig. 7/8 set
	// (arch.CIMDesigns). The paper's three designs must be included —
	// the figure series are normalized to Baseline-ePCM — but any
	// registered design may ride along and lands in
	// NetworkResult.Results.
	Designs []arch.Design
	// Search parameterizes the annealing placer wherever a placement
	// experiment names "search" (ComparePlacements, SearchCoLocate).
	Search SearchSpec
}

// SearchSpec configures the search placer's budget and objective.
type SearchSpec struct {
	// Steps is the candidate-evaluation budget
	// (0 = compiler.DefaultSearchSteps).
	Steps int
	// Seed seeds the search RNG streams (0 = 1). Co-location search
	// offsets it per model.
	Seed int64
	// Batch is the objective's batch size — candidates are accepted on
	// Engine.RunBatch(Batch) throughput. 0 means the experiment's own
	// batch size.
	Batch int
	// Trace, when non-nil, receives the search trajectory (one process
	// per searched model) — see compiler.SearchOptions.Trace.
	Trace *trace.Recorder
}

// designs returns the evaluated design set.
func (c Config) designs() []arch.Design {
	if len(c.Designs) == 0 {
		return arch.CIMDesigns
	}
	return c.Designs
}

// DefaultConfig returns the calibrated evaluation defaults.
func DefaultConfig() Config {
	return Config{
		Arch:  arch.DefaultConfig(),
		Costs: energy.DefaultCostParams(),
		GPU:   gpu.DefaultModel(),
		Seed:  1,
	}
}

// NetworkResult holds every measured quantity for one network.
type NetworkResult struct {
	Network string
	// Latencies in ns.
	LatBaseline, LatTacit, LatEB, LatGPU float64
	// Energies in pJ (CIM designs only; the GPU energy is reported but
	// not part of Fig. 8).
	EnergyBaseline, EnergyTacit, EnergyEB float64
	EnergyGPU                             float64
	// Per-design simulation results for drill-down.
	Results map[arch.Design]*sim.Result
}

// Fig7Speedups returns the Fig. 7 series for this network: latency
// improvements over Baseline-ePCM (higher is better).
func (n NetworkResult) Fig7Speedups() (tacit, eb, gpuRel float64) {
	return n.LatBaseline / n.LatTacit,
		n.LatBaseline / n.LatEB,
		n.LatBaseline / n.LatGPU
}

// Fig8Normalized returns the Fig. 8 series: energy normalized to
// Baseline-ePCM (lower is better).
func (n NetworkResult) Fig8Normalized() (tacit, eb float64) {
	return n.EnergyTacit / n.EnergyBaseline, n.EnergyEB / n.EnergyBaseline
}

// Report is a full evaluation run.
type Report struct {
	Config   Config
	Networks []NetworkResult
}

// Run executes the full evaluation. Every network×design pair is
// compiled and simulated as an independent job on a worker pool of
// cfg.Workers goroutines (see Config.Workers); both the compiler and
// the simulator are deterministic pure functions of their inputs, so
// the report is bit-identical to the serial (Workers = 1) path.
func Run(cfg Config) (*Report, error) {
	if err := cfg.GPU.Validate(); err != nil {
		return nil, err
	}
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		return nil, err
	}
	models, err := bnn.Zoo(cfg.Seed)
	if err != nil {
		return nil, err
	}
	designs := cfg.designs()
	for _, need := range arch.CIMDesigns {
		found := false
		for _, d := range designs {
			if d == need {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("eval: design set must include %v (figure series are normalized to it)", need)
		}
	}
	for _, d := range designs {
		if _, err := d.Spec(); err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
	}
	nd := len(designs)
	results, err := infer.Map(cfg.Workers, len(models)*nd, func(_, j int) (*sim.Result, error) {
		m, d := models[j/nd], designs[j%nd]
		c, err := compiler.Compile(m, cfg.Arch, d)
		if err != nil {
			return nil, fmt.Errorf("eval: %s/%v: %w", m.Name(), d, err)
		}
		r, err := simulator.Run(c)
		if err != nil {
			return nil, fmt.Errorf("eval: %s/%v: %w", m.Name(), d, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{Config: cfg}
	for mi, m := range models {
		byDesign := make(map[arch.Design]*sim.Result, nd)
		for di, d := range designs {
			byDesign[d] = results[mi*nd+di]
		}
		nr := NetworkResult{
			Network:        m.Name(),
			LatBaseline:    byDesign[arch.BaselineEPCM].LatencyNs,
			LatTacit:       byDesign[arch.TacitEPCM].LatencyNs,
			LatEB:          byDesign[arch.EinsteinBarrier].LatencyNs,
			LatGPU:         cfg.GPU.InferenceLatencyNs(m),
			EnergyBaseline: byDesign[arch.BaselineEPCM].EnergyPJ(),
			EnergyTacit:    byDesign[arch.TacitEPCM].EnergyPJ(),
			EnergyEB:       byDesign[arch.EinsteinBarrier].EnergyPJ(),
			EnergyGPU:      cfg.GPU.InferenceEnergyPJ(m),
			Results:        byDesign,
		}
		rep.Networks = append(rep.Networks, nr)
	}
	return rep, nil
}

// Summary aggregates the headline numbers of §VI.
type Summary struct {
	// MeanTacitSpeedup / MeanEBSpeedup are the Fig. 7 averages
	// (paper: ~78× and ~1205×).
	MeanTacitSpeedup, MeanEBSpeedup float64
	// MaxTacitSpeedup (paper: up to ~154×), MinEBSpeedup / MaxEBSpeedup
	// (paper: ~22× … ~3113×).
	MaxTacitSpeedup            float64
	MinEBSpeedup, MaxEBSpeedup float64
	// MeanEBOverTacit (paper: ~15×).
	MeanEBOverTacit float64
	// MeanTacitEnergyX is Fig. 8's TacitMap-ePCM mean normalized energy
	// expressed as an increase factor (paper: ~5.35× more energy).
	MeanTacitEnergyX float64
	// MeanEBEnergyGain is Baseline/EB energy (paper: ~1.56×), and
	// MeanEBOverTacitEnergy is Tacit/EB (paper: ~11.94×).
	MeanEBEnergyGain, MeanEBOverTacitEnergy float64
	// GPUFasterCount counts networks where Baseline-ePCM loses to the
	// GPU (paper observation 4: it happens for MLPs).
	GPUFasterCount int
	// BaselineVsGPUBest / Worst are the extremes of Baseline-ePCM vs
	// GPU (paper: ~4× faster on a CNN, ~27× slower on MLP-L).
	BaselineVsGPUBest, BaselineVsGPUWorst float64
}

// Summarize computes the aggregates. Means are arithmetic over the six
// networks, matching the paper's "on average" phrasing; geometric means
// are also reported by the String method for completeness.
func (r *Report) Summarize() Summary {
	var s Summary
	s.MinEBSpeedup = math.Inf(1)
	s.BaselineVsGPUBest = math.Inf(-1)
	s.BaselineVsGPUWorst = math.Inf(1)
	var tacitSum, ebSum, ratioSum, tEnergySum, ebEnergyGainSum, ebOverTacitESum float64
	for _, n := range r.Networks {
		tacit, eb, _ := n.Fig7Speedups()
		tacitSum += tacit
		ebSum += eb
		ratioSum += n.LatTacit / n.LatEB
		s.MaxTacitSpeedup = math.Max(s.MaxTacitSpeedup, tacit)
		s.MinEBSpeedup = math.Min(s.MinEBSpeedup, eb)
		s.MaxEBSpeedup = math.Max(s.MaxEBSpeedup, eb)
		tn, en := n.Fig8Normalized()
		tEnergySum += tn
		ebEnergyGainSum += 1 / en
		ebOverTacitESum += tn / en
		baseVsGPU := n.LatGPU / n.LatBaseline // >1 ⇒ baseline faster
		if baseVsGPU < 1 {
			s.GPUFasterCount++
		}
		s.BaselineVsGPUBest = math.Max(s.BaselineVsGPUBest, baseVsGPU)
		s.BaselineVsGPUWorst = math.Min(s.BaselineVsGPUWorst, baseVsGPU)
	}
	k := float64(len(r.Networks))
	s.MeanTacitSpeedup = tacitSum / k
	s.MeanEBSpeedup = ebSum / k
	s.MeanEBOverTacit = ratioSum / k
	s.MeanTacitEnergyX = tEnergySum / k
	s.MeanEBEnergyGain = ebEnergyGainSum / k
	s.MeanEBOverTacitEnergy = ebOverTacitESum / k
	return s
}

// Fig7Table renders the Fig. 7 series as an aligned text table.
func (r *Report) Fig7Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 7 — Latency improvement over Baseline-ePCM (higher = better)\n")
	fmt.Fprintf(&sb, "%-8s %16s %16s %18s\n", "Network", "TacitMap-ePCM", "EinsteinBarrier", "GPU-vs-Baseline*")
	for _, n := range r.Networks {
		tacit, eb, _ := n.Fig7Speedups()
		fmt.Fprintf(&sb, "%-8s %15.1fx %15.1fx %17.2fx\n",
			n.Network, tacit, eb, n.LatGPU/n.LatBaseline)
	}
	s := r.Summarize()
	fmt.Fprintf(&sb, "%-8s %15.1fx %15.1fx\n", "MEAN", s.MeanTacitSpeedup, s.MeanEBSpeedup)
	fmt.Fprintf(&sb, "%-8s %15.1fx %15.1fx\n", "GMEAN", r.geomean(func(n NetworkResult) float64 {
		t, _, _ := n.Fig7Speedups()
		return t
	}), r.geomean(func(n NetworkResult) float64 {
		_, e, _ := n.Fig7Speedups()
		return e
	}))
	fmt.Fprintf(&sb, "* >1 means Baseline-ePCM beats the GPU on that network.\n")
	return sb.String()
}

// Fig8Table renders the Fig. 8 series.
func (r *Report) Fig8Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 8 — Energy normalized to Baseline-ePCM (lower = better)\n")
	fmt.Fprintf(&sb, "%-8s %16s %16s\n", "Network", "TacitMap-ePCM", "EinsteinBarrier")
	for _, n := range r.Networks {
		tn, en := n.Fig8Normalized()
		fmt.Fprintf(&sb, "%-8s %15.2fx %15.2fx\n", n.Network, tn, en)
	}
	s := r.Summarize()
	fmt.Fprintf(&sb, "%-8s %15.2fx %15.2fx\n", "MEAN", s.MeanTacitEnergyX, 1/s.MeanEBEnergyGain)
	return sb.String()
}

// SummaryTable renders the §VI callouts next to the paper's values.
func (r *Report) SummaryTable() string {
	s := r.Summarize()
	rows := []struct {
		what     string
		measured float64
		paper    string
	}{
		{"TacitMap mean latency speedup", s.MeanTacitSpeedup, "~78x"},
		{"TacitMap max latency speedup", s.MaxTacitSpeedup, "~154x"},
		{"EinsteinBarrier mean latency speedup", s.MeanEBSpeedup, "~1205x"},
		{"EinsteinBarrier min latency speedup", s.MinEBSpeedup, "~22x"},
		{"EinsteinBarrier max latency speedup", s.MaxEBSpeedup, "~3113x"},
		{"EinsteinBarrier over TacitMap (mean)", s.MeanEBOverTacit, "~15x"},
		{"TacitMap energy increase vs baseline", s.MeanTacitEnergyX, "~5.35x"},
		{"EinsteinBarrier energy gain vs baseline", s.MeanEBEnergyGain, "~1.56x"},
		{"EinsteinBarrier energy gain vs TacitMap", s.MeanEBOverTacitEnergy, "~11.94x"},
		{"Baseline-ePCM best case vs GPU", s.BaselineVsGPUBest, "~4x faster"},
		{"Baseline-ePCM worst case vs GPU", 1 / s.BaselineVsGPUWorst, "~27x slower"},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %12s %14s\n", "Observation (§VI)", "measured", "paper")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-42s %11.2fx %14s\n", row.what, row.measured, row.paper)
	}
	return sb.String()
}

func (r *Report) geomean(f func(NetworkResult) float64) float64 {
	logSum := 0.0
	for _, n := range r.Networks {
		logSum += math.Log(f(n))
	}
	return math.Exp(logSum / float64(len(r.Networks)))
}

// SortedByName returns the networks in figure order (CNNs then MLPs,
// each ascending — the zoo order).
func (r *Report) SortedByName() []NetworkResult {
	out := make([]NetworkResult, len(r.Networks))
	copy(out, r.Networks)
	order := map[string]int{}
	for i, n := range bnn.ZooNames {
		order[n] = i
	}
	sort.Slice(out, func(i, j int) bool { return order[out[i].Network] < order[out[j].Network] })
	return out
}
