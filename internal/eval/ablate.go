package eval

import (
	"fmt"
	"strings"
)

// Ablations: the design-choice sweeps DESIGN.md calls out, exposed as
// first-class API so studies are reproducible rather than ad-hoc flag
// combinations.

// AblationPoint is one configuration of a sweep with its headline
// results.
type AblationPoint struct {
	// Label identifies the point (e.g. "K=8" or "cols/adc=16").
	Label string
	// MeanTacitSpeedup / MeanEBSpeedup over the zoo.
	MeanTacitSpeedup, MeanEBSpeedup float64
	// MeanEBOverTacit isolates the technology gain.
	MeanEBOverTacit float64
	// MeanTacitEnergyX / MeanEBEnergyGain are the Fig. 8 aggregates.
	MeanTacitEnergyX, MeanEBEnergyGain float64
}

func pointFrom(label string, rep *Report) AblationPoint {
	s := rep.Summarize()
	return AblationPoint{
		Label:            label,
		MeanTacitSpeedup: s.MeanTacitSpeedup,
		MeanEBSpeedup:    s.MeanEBSpeedup,
		MeanEBOverTacit:  s.MeanEBOverTacit,
		MeanTacitEnergyX: s.MeanTacitEnergyX,
		MeanEBEnergyGain: s.MeanEBEnergyGain,
	}
}

// AblateWDMCapacity sweeps K (paper §IV-A2 / §VI-A observation 3).
func AblateWDMCapacity(base Config, ks []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, k := range ks {
		cfg := base
		cfg.Arch.WDMCapacity = k
		rep, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: K=%d: %w", k, err)
		}
		out = append(out, pointFrom(fmt.Sprintf("K=%d", k), rep))
	}
	return out, nil
}

// AblateColumnsPerADC sweeps the readout sharing factor (the paper's
// footnote-1 idealization knob).
func AblateColumnsPerADC(base Config, shares []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, s := range shares {
		cfg := base
		cfg.Arch.ColumnsPerADC = s
		rep, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: cols/adc=%d: %w", s, err)
		}
		out = append(out, pointFrom(fmt.Sprintf("cols/adc=%d", s), rep))
	}
	return out, nil
}

// AblateCrossbarSize sweeps the (square) array dimension.
func AblateCrossbarSize(base Config, sizes []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, n := range sizes {
		cfg := base
		cfg.Arch.CrossbarRows = n
		cfg.Arch.CrossbarCols = n
		if cfg.Arch.ColumnsPerADC > n {
			cfg.Arch.ColumnsPerADC = n
		}
		rep, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: size=%d: %w", n, err)
		}
		out = append(out, pointFrom(fmt.Sprintf("size=%d", n), rep))
	}
	return out, nil
}

// AblationTable renders points as an aligned text table.
func AblationTable(title string, points []AblationPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-14s %12s %12s %12s %14s %14s\n",
		"point", "tacit x", "eb x", "eb/tacit", "tacit energy", "eb energy gain")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-14s %11.1fx %11.1fx %11.1fx %13.2fx %13.2fx\n",
			p.Label, p.MeanTacitSpeedup, p.MeanEBSpeedup, p.MeanEBOverTacit,
			p.MeanTacitEnergyX, p.MeanEBEnergyGain)
	}
	return sb.String()
}
