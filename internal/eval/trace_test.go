package eval

import (
	"bytes"
	"encoding/json"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/serve"
	"einsteinbarrier/internal/trace"
)

// TestTraceZooWorkerInvariant is the eval-layer determinism pin: the
// serialized exports of every zoo network on every design are
// byte-identical at any worker count, including the library default
// (0) — same contract as eval.Run and ThroughputAt.
func TestTraceZooWorkerInvariant(t *testing.T) {
	cfg := DefaultConfig()
	designs := []arch.Design{arch.TacitEPCM, arch.EinsteinBarrier}
	const batch = 8
	base, err := TraceZoo(cfg, designs, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("no exports")
	}
	for _, ex := range base {
		if len(ex.Chrome) == 0 || len(ex.CSV) == 0 {
			t.Fatalf("%s/%v: empty export", ex.Network, ex.Design)
		}
	}
	for _, workers := range []int{2, 4, 0} {
		cfg2 := cfg
		cfg2.Workers = workers
		got, err := TraceZoo(cfg2, designs, batch)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d exports, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i].Network != base[i].Network || got[i].Design != base[i].Design {
				t.Fatalf("workers=%d: order diverged at %d", workers, i)
			}
			if !bytes.Equal(got[i].Chrome, base[i].Chrome) {
				t.Fatalf("workers=%d: %s/%v chrome export differs", workers, got[i].Network, got[i].Design)
			}
			if !bytes.Equal(got[i].CSV, base[i].CSV) {
				t.Fatalf("workers=%d: %s/%v CSV export differs", workers, got[i].Network, got[i].Design)
			}
		}
	}
}

// TestTraceBatchValidates rejects nonsense inputs.
func TestTraceBatchValidates(t *testing.T) {
	cfg := DefaultConfig()
	if _, _, err := TraceBatch(cfg, "MLP-S", arch.EinsteinBarrier, 0); err == nil {
		t.Fatal("batch 0 should fail")
	}
	if _, _, err := TraceBatch(cfg, "no-such-net", arch.EinsteinBarrier, 1); err == nil {
		t.Fatal("unknown network should fail")
	}
}

// TestLifetimeTraceRecorder pins the canary-series mapping into the
// shared trace representation.
func TestLifetimeTraceRecorder(t *testing.T) {
	rep := LifetimeReport{
		Model: "MLP-S", Design: "EinsteinBarrier",
		HorizonSeconds: 120, Recalibrations: 1, FallbackServed: 3,
		Trace: []serve.CanaryPoint{
			{Replica: 0, ServedSamples: 4, AgeSeconds: 80, Accuracy: 0.9},
			{Replica: 1, ServedSamples: 6, AgeSeconds: 120, Accuracy: 0.75, Flagged: true},
			{Replica: 1, ServedSamples: 6, AgeSeconds: 0, Accuracy: 1, PostRecal: true},
		},
	}
	r := LifetimeTraceRecorder(rep)
	if got := len(r.Tracks()); got != 2 {
		t.Fatalf("tracks = %d, want one per replica (2)", got)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	wantNames := []string{"canary", "flagged", "post-recal"}
	for i, ev := range evs {
		if ev.Kind != trace.KindCounter {
			t.Fatalf("event %d kind %v", i, ev.Kind)
		}
		if got := r.Name(ev.Name); got != wantNames[i] {
			t.Fatalf("event %d name %q, want %q", i, got, wantNames[i])
		}
		if ev.A != rep.Trace[i].Accuracy || ev.B != rep.Trace[i].AgeSeconds {
			t.Fatalf("event %d payload (%v,%v) != point (%v,%v)",
				i, ev.A, ev.B, rep.Trace[i].Accuracy, rep.Trace[i].AgeSeconds)
		}
		if ev.Seq != rep.Trace[i].ServedSamples {
			t.Fatalf("event %d seq %d != served %d", i, ev.Seq, rep.Trace[i].ServedSamples)
		}
	}

	var buf bytes.Buffer
	if err := WriteLifetimeTrace(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("lifetime trace not JSON: %v", err)
	}
	if parsed.OtherData["time_axis"] != "served_samples" || parsed.OtherData["fallback_served"] != "3" {
		t.Fatalf("otherData = %v", parsed.OtherData)
	}
}
