package eval

import (
	"strings"
	"testing"
)

// TestSoftwareThroughput exercises the host-measured software rows.
// Wall-clock magnitudes are machine-dependent, so the test pins
// structure and invariants (positive timings, correctness gate), not
// absolute numbers — the bit-identity of the two paths is enforced
// inside SoftwareThroughput itself before any timing happens.
func TestSoftwareThroughput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	rows, err := SoftwareThroughput(cfg, []string{"MLP-S"}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Network != "MLP-S" || rows[0].Samples != 80 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.SerialNsPerInf <= 0 || r.BatchNsPerInf <= 0 || r.Speedup <= 0 || r.BatchPerSec <= 0 {
		t.Fatalf("non-positive measurement: %+v", r)
	}

	tbl := SoftwareTable(rows)
	if !strings.Contains(tbl, "MLP-S") || !strings.Contains(tbl, "speedup") {
		t.Fatalf("table missing fields:\n%s", tbl)
	}
	var sb strings.Builder
	if err := WriteSoftwareCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(sb.String()), "\n") + 1; lines != 2 {
		t.Fatalf("CSV has %d lines, want header+1:\n%s", lines, sb.String())
	}
}

func TestSoftwareThroughputValidates(t *testing.T) {
	if _, err := SoftwareThroughput(DefaultConfig(), nil, 0); err == nil {
		t.Fatal("accepted zero samples")
	}
	if _, err := SoftwareThroughput(DefaultConfig(), []string{"no-such-net"}, 4); err == nil {
		t.Fatal("accepted unknown network")
	}
}
