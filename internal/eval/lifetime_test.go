package eval

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/robust"
	"einsteinbarrier/internal/serve"
	"einsteinbarrier/internal/trace"
)

// lifetimeScenario is the pinned MLP-S × EinsteinBarrier run: read
// noise off so the trace is an exact function of the seeds, default
// programming spread on so drift visibly degrades the canary (see the
// serve package's lifetime corner for why).
func lifetimeScenario() LifetimeScenario {
	hw := robust.DefaultConfig(device.EPCM)
	hw.Array.EPCM.ReadNoiseSigma = 0
	hw.Array.Seed = 7
	return LifetimeScenario{
		Model:    "MLP-S",
		Design:   arch.EinsteinBarrier,
		Eval:     DefaultConfig(),
		Hardware: hw,
		Workers:  1,
		MaxBatch: 4,
		Requests: 18,
		Seed:     1,
		Lifetime: serve.LifetimeConfig{
			CanaryEvery: 3,
			Floor:       0.99,
			Window:      4,
			FlagAfter:   2,
		},
		SecondsPerSample: 20,
	}
}

func TestRunLifetimeClosedLoop(t *testing.T) {
	rep, err := RunLifetime(lifetimeScenario())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 18 || rep.Failed != 0 || rep.Shed != 0 {
		t.Fatalf("completed/failed/shed = %d/%d/%d", rep.Completed, rep.Failed, rep.Shed)
	}
	if rep.AvailabilityPct != 100 {
		t.Fatalf("availability %g, want 100", rep.AvailabilityPct)
	}
	if rep.Recalibrations == 0 {
		t.Fatalf("drift never triggered a recalibration: %+v", rep.Lifetime)
	}
	if rep.Retired != 0 {
		t.Fatalf("unexpected retirement: %+v", rep.Lifetime)
	}
	if rep.RecalEnergyJ <= 0 || rep.RecalLatencyMs <= 0 {
		t.Fatalf("recalibration not priced: %g J, %g ms", rep.RecalEnergyJ, rep.RecalLatencyMs)
	}
	if rep.HorizonSeconds != 18*20 {
		t.Fatalf("horizon %g, want %g", rep.HorizonSeconds, 18.0*20)
	}
	if len(rep.Trace) == 0 || rep.MinCanary >= 1 || rep.MeanCanary <= rep.MinCanary {
		t.Fatalf("degradation not visible in trace: mean %g min %g (%d probes)",
			rep.MeanCanary, rep.MinCanary, len(rep.Trace))
	}
	recovered := false
	for _, p := range rep.Trace {
		if p.PostRecal && p.Accuracy == 1 && p.AgeSeconds == 0 {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("no post-recal probe restored fresh accuracy: %+v", rep.Trace)
	}
	if rep.Stats.Sim == nil || rep.Stats.Sim.Samples != 18 {
		t.Fatalf("EinsteinBarrier pricer did not price the stream: %+v", rep.Stats.Sim)
	}
	if rep.Design != "EinsteinBarrier" {
		t.Fatalf("design name %q", rep.Design)
	}
}

func TestRunLifetimeDeterministic(t *testing.T) {
	a, err := RunLifetime(lifetimeScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLifetime(lifetimeScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatalf("trace not reproducible:\n%+v\nvs\n%+v", a.Trace, b.Trace)
	}
	if a.Recalibrations != b.Recalibrations || a.RecalEnergyJ != b.RecalEnergyJ {
		t.Fatalf("recal accounting not reproducible: %d/%g vs %d/%g",
			a.Recalibrations, a.RecalEnergyJ, b.Recalibrations, b.RecalEnergyJ)
	}
}

func TestRunLifetimeDiurnal(t *testing.T) {
	sc := lifetimeScenario()
	// Fast wall-clock day/night cycles; the simulated device clock is
	// unaffected (it ticks per served sample). Bursty arrivals form
	// larger batches, so probe every batch to keep the canary cadence.
	sc.Diurnal = &DiurnalLoad{BaseRate: 200, PeakRate: 2000, Period: 100 * time.Millisecond}
	sc.Lifetime.CanaryEvery = 1
	rep, err := RunLifetime(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Shed+rep.Failed != 18 {
		t.Fatalf("requests not accounted for: %+v", rep)
	}
	if rep.Completed == 0 {
		t.Fatalf("diurnal run completed nothing: %+v", rep)
	}
	if rep.Recalibrations == 0 {
		t.Fatalf("diurnal run never recalibrated: %+v", rep.Lifetime)
	}
}

func TestRunLifetimeValidation(t *testing.T) {
	if _, err := RunLifetime(LifetimeScenario{Model: "MLP-S", Design: -1}); err == nil {
		t.Fatal("want error for Requests == 0")
	}
	sc := lifetimeScenario()
	sc.SecondsPerSample = 0
	if _, err := RunLifetime(sc); err == nil {
		t.Fatal("want error for missing clock")
	}
	sc = lifetimeScenario()
	sc.Model = "no-such-model"
	if _, err := RunLifetime(sc); err == nil {
		t.Fatal("want error for unknown model")
	}
}

func TestLifetimeWriters(t *testing.T) {
	rep := LifetimeReport{
		Model: "MLP-S", Design: "EinsteinBarrier", HorizonSeconds: 360,
		Requests: 18, Completed: 18, AvailabilityPct: 100,
		Recalibrations: 2, RecalEnergyJ: 4.2e-5, RecalLatencyMs: 0.01,
		DrainServed: 3, DrainP99Ms: 1.5,
		MeanCanary: 0.9, MinCanary: 0.625,
		Trace: []serve.CanaryPoint{
			{Replica: 0, ServedSamples: 6, AgeSeconds: 120, Accuracy: 0.75, Flagged: true},
			{Replica: 0, ServedSamples: 6, AgeSeconds: 0, Accuracy: 1, PostRecal: true},
		},
	}

	var jsonBuf bytes.Buffer
	if err := WriteLifetimeJSON(&jsonBuf, rep); err != nil {
		t.Fatal(err)
	}
	var back LifetimeReport
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rep) {
		t.Fatalf("JSON round trip:\n%+v\nvs\n%+v", back, rep)
	}

	var csvBuf bytes.Buffer
	if err := WriteLifetimeCSV(&csvBuf, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+len(rep.Trace) {
		t.Fatalf("CSV rows %d, want %d:\n%s", len(lines), 1+len(rep.Trace), csvBuf.String())
	}
	if lines[0] != trace.CSVHeader {
		t.Fatalf("CSV header %q, want shared trace schema %q", lines[0], trace.CSVHeader)
	}
	if !strings.Contains(lines[1], "flagged") || !strings.Contains(lines[1], "replica 0") {
		t.Fatalf("flagged row not marked: %q", lines[1])
	}
	if !strings.Contains(lines[2], "post-recal") {
		t.Fatalf("post-recal row not marked: %q", lines[2])
	}

	table := LifetimeTable(rep)
	for _, want := range []string{"MLP-S", "EinsteinBarrier", "availability", "post-recal", "flagged", "drain p99"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}
