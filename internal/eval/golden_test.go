package eval

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"einsteinbarrier/internal/arch"
)

// TestFig78GoldenBitIdentical pins the Fig. 7/8 series — every latency,
// energy and derived ratio for the four paper designs (three CIM + GPU)
// — to the CSV captured from the pre-registry, pre-pipeline serial
// simulator. The refactor must not move a single bit.
func TestFig78GoldenBitIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "fig78_pre_pr3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rep := report(t)
	var got bytes.Buffer
	if err := rep.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("Fig. 7/8 CSV diverged from the pinned golden:\n--- want ---\n%s\n--- got ---\n%s",
			want, got.Bytes())
	}
}

// TestRunWithRegistryDesigns: the registry-added designs run end to end
// through eval.Run, riding along the paper set.
func TestRunWithRegistryDesigns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Designs = []arch.Design{
		arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier,
		arch.MLCEPCM, arch.EinsteinBarrierK64,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Networks {
		if len(n.Results) != 5 {
			t.Fatalf("%s: %d per-design results, want 5", n.Network, len(n.Results))
		}
		for _, d := range cfg.Designs {
			r := n.Results[d]
			if r == nil || r.LatencyNs <= 0 || r.EnergyPJ() <= 0 {
				t.Fatalf("%s/%v: missing or non-positive result", n.Network, d)
			}
		}
		// The figure columns must be untouched by the ride-alongs.
		if n.LatBaseline != n.Results[arch.BaselineEPCM].LatencyNs ||
			n.LatEB != n.Results[arch.EinsteinBarrier].LatencyNs {
			t.Fatalf("%s: figure series corrupted by extra designs", n.Network)
		}
	}
}

// TestRunRejectsDesignSetWithoutPaperTrio: the figure series are
// normalized to Baseline-ePCM, so dropping a paper design is an error.
func TestRunRejectsDesignSetWithoutPaperTrio(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Designs = []arch.Design{arch.TacitEPCM, arch.EinsteinBarrier}
	if _, err := Run(cfg); err == nil {
		t.Fatal("design set without Baseline-ePCM must error")
	}
	cfg.Designs = []arch.Design{arch.BaselineEPCM, arch.TacitEPCM, arch.EinsteinBarrier, arch.Design(99)}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unregistered design must error")
	}
}
