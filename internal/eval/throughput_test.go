package eval

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"einsteinbarrier/internal/arch"
)

func throughputRows(t *testing.T, workers int) []ThroughputResult {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	rows, err := ThroughputAt(cfg, nil, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestThroughputAtCoversAllRegisteredDesigns(t *testing.T) {
	rows := throughputRows(t, 0)
	perDesign := map[arch.Design]int{}
	for _, r := range rows {
		perDesign[r.Design]++
		if len(r.Points) != 3 {
			t.Fatalf("%s/%v: %d points, want 3", r.Network, r.Design, len(r.Points))
		}
		prev := 0.0
		for _, p := range r.Points {
			if p.PerSec <= 0 || p.MakespanNs <= 0 {
				t.Fatalf("%s/%v B=%d: non-positive point", r.Network, r.Design, p.Batch)
			}
			if p.PerSec < prev {
				t.Fatalf("%s/%v: throughput not monotone at B=%d", r.Network, r.Design, p.Batch)
			}
			prev = p.PerSec
		}
		if r.SteadyStatePerSec < prev*(1-1e-9) {
			t.Fatalf("%s/%v: ceiling %g below achieved %g", r.Network, r.Design, r.SteadyStatePerSec, prev)
		}
	}
	// Every registered design — including MLC-ePCM and the wide-K
	// variant — appears for all six networks.
	for _, d := range []arch.Design{arch.MLCEPCM, arch.EinsteinBarrierK64, arch.BaselineEPCM} {
		if perDesign[d] != 6 {
			t.Fatalf("design %v covered %d times, want 6", d, perDesign[d])
		}
	}
}

// TestThroughputAtParallelBitIdentical: the sweep fans out over the
// worker pool; results must not depend on the worker count.
func TestThroughputAtParallelBitIdentical(t *testing.T) {
	serial := throughputRows(t, 1)
	parallel := throughputRows(t, 4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel throughput sweep differs from serial")
	}
}

func TestThroughputAtRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := ThroughputAt(cfg, nil, nil); err == nil {
		t.Fatal("empty batch list must error")
	}
	if _, err := ThroughputAt(cfg, nil, []int{0}); err == nil {
		t.Fatal("batch 0 must error")
	}
	if _, err := ThroughputAt(cfg, []arch.Design{arch.Design(99)}, []int{1}); err == nil {
		t.Fatal("unregistered design must error")
	}
}

func TestThroughputExports(t *testing.T) {
	rows := throughputRows(t, 0)

	var buf bytes.Buffer
	if err := WriteThroughputCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 // header
	for _, r := range rows {
		wantRows += len(r.Points)
	}
	if len(recs) != wantRows {
		t.Fatalf("CSV has %d rows, want %d", len(recs), wantRows)
	}
	if recs[0][0] != "network" || recs[0][3] != "inferences_per_sec" {
		t.Fatalf("CSV header wrong: %v", recs[0])
	}

	buf.Reset()
	if err := WriteThroughputJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(rows) {
		t.Fatalf("JSON has %d rows, want %d", len(decoded), len(rows))
	}
	if _, ok := decoded[0]["steady_state_per_sec"]; !ok {
		t.Fatal("JSON missing steady_state_per_sec")
	}

	table := ThroughputTable(rows)
	for _, frag := range []string{"MLC-ePCM", "EinsteinBarrier-K64", "B=16", "bottleneck"} {
		if !strings.Contains(table, frag) {
			t.Fatalf("table missing %q", frag)
		}
	}
}
