package eval

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/tensor"
)

// Software-reference throughput: the simulated designs are priced
// analytically, but the repo also carries a real, runnable software
// forward path (bnn.Model.Infer and the batch-major bit-parallel
// bnn.Model.InferBatchBits behind infer.Engine). SoftwareThroughput
// measures that path on the host — per-sample vs lane-chunked — so
// reports can put a concrete software baseline next to the simulated
// accelerator numbers, and so the bit-parallel speedup is observable
// from the harness rather than only from go test -bench.

// SoftwareRow is the host-measured software throughput of one network.
type SoftwareRow struct {
	Network string `json:"network"`
	// Samples is the number of inputs timed per path.
	Samples int `json:"samples"`
	// SerialNsPerInf is the per-sample reference path (Model.Infer).
	SerialNsPerInf float64 `json:"serial_ns_per_inf"`
	// BatchNsPerInf is the lane-chunked engine path
	// (infer.Engine.InferBatch, 64 samples per machine word).
	BatchNsPerInf float64 `json:"batch_ns_per_inf"`
	// Speedup is SerialNsPerInf / BatchNsPerInf.
	Speedup float64 `json:"speedup"`
	// BatchPerSec is 1e9 / BatchNsPerInf.
	BatchPerSec float64 `json:"batch_inferences_per_sec"`
}

// SoftwareThroughput times the software forward path for the named zoo
// networks (nil means the full zoo) over `samples` synthetic inputs:
// once through the per-sample reference and once through the
// lane-chunked batch engine with cfg.Workers workers. Timings are host
// wall-clock measurements — machine-dependent by nature, unlike every
// other eval output — but the two paths are verified bit-identical
// before timing, so a row is never reported for a diverging pair.
func SoftwareThroughput(cfg Config, names []string, samples int) ([]SoftwareRow, error) {
	if samples < 1 {
		return nil, fmt.Errorf("eval: software throughput needs ≥ 1 sample, got %d", samples)
	}
	if len(names) == 0 {
		names = bnn.ZooNames
	}
	rows := make([]SoftwareRow, 0, len(names))
	for _, name := range names {
		m, err := bnn.NewModel(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 977))
		xs := make([]*tensor.Float, samples)
		for i := range xs {
			xs[i] = tensor.NewFloat(m.InputShape...)
			for j := range xs[i].Data() {
				xs[i].Data()[j] = rng.NormFloat64()
			}
		}
		eng := infer.New(m, cfg.Workers)
		serial := m.CloneShared()

		// Correctness gate before any timing: engine logits must equal the
		// per-sample reference bit for bit.
		got, err := eng.InferBatch(xs)
		if err != nil {
			return nil, err
		}
		for i, x := range xs {
			want := serial.Infer(x)
			for j, v := range want.Data() {
				if got[i].Data()[j] != v {
					return nil, fmt.Errorf("eval: %s: batch path diverged from reference at sample %d logit %d", name, i, j)
				}
			}
		}

		t0 := time.Now()
		for _, x := range xs {
			serial.Infer(x)
		}
		serialNs := float64(time.Since(t0).Nanoseconds()) / float64(samples)

		t0 = time.Now()
		if _, err := eng.InferBatch(xs); err != nil {
			return nil, err
		}
		batchNs := float64(time.Since(t0).Nanoseconds()) / float64(samples)

		row := SoftwareRow{
			Network:        name,
			Samples:        samples,
			SerialNsPerInf: serialNs,
			BatchNsPerInf:  batchNs,
		}
		if batchNs > 0 {
			row.Speedup = serialNs / batchNs
			row.BatchPerSec = 1e9 / batchNs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SoftwareTable renders the software-reference throughput as an aligned
// text table.
func SoftwareTable(rows []SoftwareRow) string {
	var sb strings.Builder
	sb.WriteString("Software forward path (host wall clock, bit-parallel batch vs per-sample)\n")
	fmt.Fprintf(&sb, "%-8s %10s %14s %14s %9s %12s\n",
		"network", "samples", "serial ns/inf", "batch ns/inf", "speedup", "batch inf/s")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %10d %14.0f %14.0f %8.2fx %12.0f\n",
			r.Network, r.Samples, r.SerialNsPerInf, r.BatchNsPerInf, r.Speedup, r.BatchPerSec)
	}
	return sb.String()
}

// WriteSoftwareCSV emits one row per network.
func WriteSoftwareCSV(w io.Writer, rows []SoftwareRow) error {
	if _, err := fmt.Fprintln(w, "network,samples,serial_ns_per_inf,batch_ns_per_inf,speedup,batch_inferences_per_sec"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%g\n",
			r.Network, r.Samples, r.SerialNsPerInf, r.BatchNsPerInf, r.Speedup, r.BatchPerSec); err != nil {
			return err
		}
	}
	return nil
}
