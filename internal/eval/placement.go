package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/isa"
	"einsteinbarrier/internal/sim"
)

// Placement comparison: the BenchmarkPlacement experiment. For every
// network × placer the table reports the layout's footprint, the
// program's total SEND hop count, the serial latency (layout-exact
// placers pay their real hops), and the pipelined batch behaviour —
// throughput, ceiling and NoC stall time. This is where the placement
// IR's trade-off is visible in one screen: greedy packs densest,
// mesh pipelines ~2× faster and stalls least, shard is the only one
// that survives chip-splitting.

// PlacementRow is one network × placer measurement.
type PlacementRow struct {
	Network string       `json:"network"`
	Placer  string       `json:"placer"`
	Design  arch.Design  `json:"-"`
	// Tiles is the distinct tile count of the layout; VCores the logical
	// allocation (placer-independent).
	Tiles  int `json:"tiles"`
	VCores int `json:"vcores"`
	// TotalHops sums the program's SEND mesh hops; ChipHops the board
	// hops (sharded layouts pay these).
	TotalHops int `json:"total_hops"`
	ChipHops  int `json:"chip_hops"`
	// LatencyNs is the serial critical path of the placed program.
	LatencyNs float64 `json:"latency_ns"`
	// Batch throughput numbers at the requested batch size.
	Batch             int     `json:"batch"`
	ThroughputPerSec  float64 `json:"inferences_per_sec"`
	SteadyStatePerSec float64 `json:"steady_state_per_sec"`
	LinkWaitNs        float64 `json:"link_wait_ns"`
	Bottleneck        string  `json:"bottleneck"`
}

// ComparePlacements runs every zoo network named in networks (nil means
// all) under every placer, on one design, and reports the table rows.
// Jobs fan out over cfg.Workers; the result is deterministic at any
// worker count.
func ComparePlacements(cfg Config, networks []string, placers []compiler.Placer, d arch.Design, batch int) ([]PlacementRow, error) {
	if len(networks) == 0 {
		networks = bnn.ZooNames
	}
	if len(placers) == 0 {
		placers = []compiler.Placer{compiler.GreedyPlacer{}, compiler.MeshPlacer{}, compiler.ShardPlacer{}}
	}
	if batch < 1 {
		return nil, fmt.Errorf("eval: batch %d must be ≥ 1", batch)
	}
	spec, err := d.Spec()
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	// Tile accounting must use the design's effective geometry (TuneArch
	// hooks may resize the fabric the placement was computed against).
	ecfg := spec.EffectiveArch(cfg.Arch)
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		return nil, err
	}
	np := len(placers)
	return infer.Map(cfg.Workers, len(networks)*np, func(_, j int) (PlacementRow, error) {
		name, placer := networks[j/np], placers[j%np]
		row := PlacementRow{Network: name, Placer: placer.Name(), Design: d, Batch: batch}
		m, err := bnn.NewModel(name, cfg.Seed)
		if err != nil {
			return row, err
		}
		c, err := compiler.CompileWith(m, cfg.Arch, d, compiler.Options{Placer: placer})
		if err != nil {
			return row, fmt.Errorf("eval: %s/%s: %w", name, placer.Name(), err)
		}
		row.VCores = c.VCoresUsed
		row.Tiles = c.Placement.TotalTiles(ecfg)
		for _, in := range c.Program {
			if in.Op == isa.OpSend {
				row.TotalHops += in.Hops
				row.ChipHops += in.ChipHops
			}
		}
		eng, err := simulator.NewEngine(c)
		if err != nil {
			return row, fmt.Errorf("eval: %s/%s: %w", name, placer.Name(), err)
		}
		br, err := eng.RunBatch(batch)
		if err != nil {
			return row, fmt.Errorf("eval: %s/%s: %w", name, placer.Name(), err)
		}
		row.LatencyNs = br.LatencyNs
		row.ThroughputPerSec = br.ThroughputPerSec
		row.SteadyStatePerSec = br.SteadyStatePerSec
		row.LinkWaitNs = br.LinkWaitNs
		row.Bottleneck = br.BottleneckName
		return row, nil
	})
}

// PlacementTable renders the comparison as an aligned text table.
func PlacementTable(rows []PlacementRow) string {
	var sb strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "Placement comparison on %v (B=%d)\n", rows[0].Design, rows[0].Batch)
	}
	fmt.Fprintf(&sb, "%-8s %-7s %6s %7s %5s %6s %12s %11s %11s %12s  %s\n",
		"network", "placer", "tiles", "vcores", "hops", "chip", "latency_us", "inf/s", "ceiling", "linkwait_us", "bottleneck")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-7s %6d %7d %5d %6d %12.2f %11.0f %11.0f %12.2f  %s\n",
			r.Network, r.Placer, r.Tiles, r.VCores, r.TotalHops, r.ChipHops,
			r.LatencyNs/1e3, r.ThroughputPerSec, r.SteadyStatePerSec, r.LinkWaitNs/1e3, r.Bottleneck)
	}
	return sb.String()
}

// WritePlacementCSV emits one row per network×placer.
func WritePlacementCSV(w io.Writer, rows []PlacementRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"network", "placer", "design", "tiles", "vcores", "total_hops", "chip_hops",
		"latency_ns", "batch", "inferences_per_sec", "steady_state_per_sec", "link_wait_ns", "bottleneck",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Network, r.Placer, r.Design.String(), strconv.Itoa(r.Tiles), strconv.Itoa(r.VCores),
			strconv.Itoa(r.TotalHops), strconv.Itoa(r.ChipHops),
			f(r.LatencyNs), strconv.Itoa(r.Batch), f(r.ThroughputPerSec), f(r.SteadyStatePerSec),
			f(r.LinkWaitNs), r.Bottleneck,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CoLocate compiles several zoo models onto one shared fabric with
// disjoint regions and returns the compilations plus the shared-fabric
// scheduler. This is the serving path's entry point: the multi-model
// router prices every model against the co-located pipeline.
func CoLocate(cfg Config, names []string, d arch.Design, placer compiler.Placer) ([]*compiler.Compiled, *sim.EngineSet, error) {
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("eval: no models to co-locate")
	}
	if _, err := d.Spec(); err != nil {
		return nil, nil, fmt.Errorf("eval: %w", err)
	}
	var models []*bnn.Model
	for _, n := range names {
		m, err := bnn.NewModel(n, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		models = append(models, m)
	}
	cs, err := compiler.CompileSet(models, cfg.Arch, d, compiler.SetOptions{Placer: placer})
	if err != nil {
		return nil, nil, err
	}
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		return nil, nil, err
	}
	es, err := simulator.NewEngineSet(cs)
	if err != nil {
		return nil, nil, err
	}
	return cs, es, nil
}
