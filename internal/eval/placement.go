package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/isa"
	"einsteinbarrier/internal/sim"
)

// Placement comparison: the BenchmarkPlacement experiment. For every
// network × placer the table reports the layout's footprint, the
// program's total SEND hop count, the serial latency (layout-exact
// placers pay their real hops), and the pipelined batch behaviour —
// throughput, ceiling and NoC stall time. This is where the placement
// IR's trade-off is visible in one screen: greedy packs densest,
// mesh pipelines ~2× faster and stalls least, shard is the only one
// that survives chip-splitting — and "search" anneals past all three,
// accepted on the same engine-measured inf/s the table reports.

// PlacementRow is one network × placer measurement.
type PlacementRow struct {
	Network string      `json:"network"`
	Placer  string      `json:"placer"`
	Design  arch.Design `json:"-"`
	// Tiles is the distinct tile count of the layout; VCores the logical
	// allocation (placer-independent).
	Tiles  int `json:"tiles"`
	VCores int `json:"vcores"`
	// TotalHops sums the program's SEND mesh hops; ChipHops the board
	// hops (sharded layouts pay these).
	TotalHops int `json:"total_hops"`
	ChipHops  int `json:"chip_hops"`
	// LatencyNs is the serial critical path of the placed program.
	LatencyNs float64 `json:"latency_ns"`
	// Batch throughput numbers at the requested batch size.
	Batch             int     `json:"batch"`
	ThroughputPerSec  float64 `json:"inferences_per_sec"`
	SteadyStatePerSec float64 `json:"steady_state_per_sec"`
	LinkWaitNs        float64 `json:"link_wait_ns"`
	Bottleneck        string  `json:"bottleneck"`
	// Search carries the annealing trace when Placer == "search".
	Search *compiler.SearchStats `json:"search,omitempty"`
}

// ComparePlacements runs every zoo network named in networks (nil means
// all) under every placer named in placers (nil means all registered
// names, search included), on one design, and reports the table rows.
// Heuristic names resolve through compiler.ParsePlacer; "search" builds
// a per-network SearchPlacer whose objective is Engine.RunBatch
// throughput at cfg.Search.Batch (0 = the table's batch), sharing one
// fingerprint-keyed evaluation cache across networks. Jobs fan out over
// cfg.Workers (the search itself then runs serial candidates inside its
// job); the result is deterministic at any worker count.
func ComparePlacements(cfg Config, networks []string, placers []string, d arch.Design, batch int) ([]PlacementRow, error) {
	if len(networks) == 0 {
		networks = bnn.ZooNames
	}
	if len(placers) == 0 {
		placers = compiler.PlacerNames
	}
	if batch < 1 {
		return nil, fmt.Errorf("eval: batch %d must be ≥ 1", batch)
	}
	spec, err := d.Spec()
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	// Tile accounting must use the design's effective geometry (TuneArch
	// hooks may resize the fabric the placement was computed against).
	ecfg := spec.EffectiveArch(cfg.Arch)
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		return nil, err
	}
	// Resolve placer names up front; "search" shares one evaluation
	// cache (keyed by model/design/fingerprint) across every network.
	heuristics := make([]compiler.Placer, len(placers))
	var pe *sim.PlacementEvaluator
	for i, pname := range placers {
		if pname == "search" {
			if pe == nil {
				sb := cfg.Search.Batch
				if sb == 0 {
					sb = batch
				}
				pe, err = simulator.PlacementEvaluator(sb)
				if err != nil {
					return nil, err
				}
			}
			continue
		}
		heuristics[i], err = compiler.ParsePlacer(pname)
		if err != nil {
			return nil, err
		}
	}
	np := len(placers)
	return infer.Map(cfg.Workers, len(networks)*np, func(_, j int) (PlacementRow, error) {
		name, pname := networks[j/np], placers[j%np]
		row := PlacementRow{Network: name, Placer: pname, Design: d, Batch: batch}
		m, err := bnn.NewModel(name, cfg.Seed)
		if err != nil {
			return row, err
		}
		placer := heuristics[j%np]
		var sp *compiler.SearchPlacer
		if placer == nil {
			// The outer Map already saturates the pool; the nested
			// search evaluates its candidates serially.
			sp, err = compiler.NewSearchPlacer(m, cfg.Arch, d, pe, compiler.SearchOptions{
				Steps: cfg.Search.Steps, Seed: cfg.Search.Seed, Workers: 1,
			})
			if err != nil {
				return row, fmt.Errorf("eval: %s/%s: %w", name, pname, err)
			}
			placer = sp
		}
		c, err := compiler.CompileWith(m, cfg.Arch, d, compiler.Options{Placer: placer})
		if err != nil {
			return row, fmt.Errorf("eval: %s/%s: %w", name, pname, err)
		}
		if sp != nil {
			st := sp.Stats()
			row.Search = &st
		}
		row.VCores = c.VCoresUsed
		row.Tiles = c.Placement.TotalTiles(ecfg)
		for _, in := range c.Program {
			if in.Op == isa.OpSend {
				row.TotalHops += in.Hops
				row.ChipHops += in.ChipHops
			}
		}
		eng, err := simulator.NewEngine(c)
		if err != nil {
			return row, fmt.Errorf("eval: %s/%s: %w", name, placer.Name(), err)
		}
		br, err := eng.RunBatch(batch)
		if err != nil {
			return row, fmt.Errorf("eval: %s/%s: %w", name, placer.Name(), err)
		}
		row.LatencyNs = br.LatencyNs
		row.ThroughputPerSec = br.ThroughputPerSec
		row.SteadyStatePerSec = br.SteadyStatePerSec
		row.LinkWaitNs = br.LinkWaitNs
		row.Bottleneck = br.BottleneckName
		return row, nil
	})
}

// PlacementTable renders the comparison as an aligned text table.
func PlacementTable(rows []PlacementRow) string {
	var sb strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "Placement comparison on %v (B=%d)\n", rows[0].Design, rows[0].Batch)
	}
	fmt.Fprintf(&sb, "%-8s %-7s %6s %7s %5s %6s %12s %11s %11s %12s  %s\n",
		"network", "placer", "tiles", "vcores", "hops", "chip", "latency_us", "inf/s", "ceiling", "linkwait_us", "bottleneck")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-7s %6d %7d %5d %6d %12.2f %11.0f %11.0f %12.2f  %s\n",
			r.Network, r.Placer, r.Tiles, r.VCores, r.TotalHops, r.ChipHops,
			r.LatencyNs/1e3, r.ThroughputPerSec, r.SteadyStatePerSec, r.LinkWaitNs/1e3, r.Bottleneck)
	}
	return sb.String()
}

// WritePlacementCSV emits one row per network×placer.
func WritePlacementCSV(w io.Writer, rows []PlacementRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"network", "placer", "design", "tiles", "vcores", "total_hops", "chip_hops",
		"latency_ns", "batch", "inferences_per_sec", "steady_state_per_sec", "link_wait_ns", "bottleneck",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Network, r.Placer, r.Design.String(), strconv.Itoa(r.Tiles), strconv.Itoa(r.VCores),
			strconv.Itoa(r.TotalHops), strconv.Itoa(r.ChipHops),
			f(r.LatencyNs), strconv.Itoa(r.Batch), f(r.ThroughputPerSec), f(r.SteadyStatePerSec),
			f(r.LinkWaitNs), r.Bottleneck,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PlacementWin summarizes one network's beats-or-matches outcome: the
// search placer's throughput against the best heuristic in the same
// table.
type PlacementWin struct {
	Network         string  `json:"network"`
	Design          string  `json:"design"`
	Batch           int     `json:"batch"`
	BestHeuristic   string  `json:"best_heuristic"`
	HeuristicPerSec float64 `json:"heuristic_inferences_per_sec"`
	SearchPerSec    float64 `json:"search_inferences_per_sec"`
	// GainX is search/heuristic (≥ 1 by the warm-start construction).
	GainX float64 `json:"gain_x"`
}

// PlacementWins distills a comparison into the beats-or-matches table:
// one row per network that has both a search row and at least one
// heuristic row. Networks keep their first-appearance order.
func PlacementWins(rows []PlacementRow) []PlacementWin {
	type acc struct {
		win  PlacementWin
		hasH bool
		hasS bool
	}
	var order []string
	by := map[string]*acc{}
	for _, r := range rows {
		a, ok := by[r.Network]
		if !ok {
			a = &acc{win: PlacementWin{Network: r.Network, Design: r.Design.String(), Batch: r.Batch}}
			by[r.Network] = a
			order = append(order, r.Network)
		}
		if r.Placer == "search" {
			a.hasS = true
			a.win.SearchPerSec = r.ThroughputPerSec
		} else if !a.hasH || r.ThroughputPerSec > a.win.HeuristicPerSec {
			a.hasH = true
			a.win.BestHeuristic = r.Placer
			a.win.HeuristicPerSec = r.ThroughputPerSec
		}
	}
	var out []PlacementWin
	for _, n := range order {
		a := by[n]
		if !a.hasH || !a.hasS {
			continue
		}
		a.win.GainX = a.win.SearchPerSec / a.win.HeuristicPerSec
		out = append(out, a.win)
	}
	return out
}

// WinsTable renders the beats-or-matches summary.
func WinsTable(wins []PlacementWin) string {
	var sb strings.Builder
	if len(wins) > 0 {
		fmt.Fprintf(&sb, "Search vs best heuristic on %s (B=%d)\n", wins[0].Design, wins[0].Batch)
	}
	fmt.Fprintf(&sb, "%-8s %-10s %14s %14s %7s\n", "network", "best-heur", "heur inf/s", "search inf/s", "gain")
	for _, w := range wins {
		fmt.Fprintf(&sb, "%-8s %-10s %14.0f %14.0f %6.3fx\n",
			w.Network, w.BestHeuristic, w.HeuristicPerSec, w.SearchPerSec, w.GainX)
	}
	return sb.String()
}

// CoLocate compiles several zoo models onto one shared fabric with
// disjoint regions and returns the compilations plus the shared-fabric
// scheduler. This is the serving path's entry point: the multi-model
// router prices every model against the co-located pipeline.
func CoLocate(cfg Config, names []string, d arch.Design, placer compiler.Placer) ([]*compiler.Compiled, *sim.EngineSet, error) {
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("eval: no models to co-locate")
	}
	if _, err := d.Spec(); err != nil {
		return nil, nil, fmt.Errorf("eval: %w", err)
	}
	var models []*bnn.Model
	for _, n := range names {
		m, err := bnn.NewModel(n, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		models = append(models, m)
	}
	cs, err := compiler.CompileSet(models, cfg.Arch, d, compiler.SetOptions{Placer: placer})
	if err != nil {
		return nil, nil, err
	}
	simulator, err := sim.New(cfg.Arch, cfg.Costs)
	if err != nil {
		return nil, nil, err
	}
	es, err := simulator.NewEngineSet(cs)
	if err != nil {
		return nil, nil, err
	}
	return cs, es, nil
}
