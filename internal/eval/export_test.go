package eval

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	rep := report(t)
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // header + 6 networks
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][0] != "network" || rows[1][0] != "CNN-S" {
		t.Fatalf("ordering wrong: %v %v", rows[0][0], rows[1][0])
	}
	// Fig. 7 column must parse and exceed 1 for all networks.
	for _, row := range rows[1:] {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil || v <= 1 {
			t.Fatalf("bad tacit speedup %q", row[1])
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rep := report(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{"\"summary\"", "\"networks\"", "CNN-L", "fig8_eb_norm_energy"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("JSON missing %q", frag)
		}
	}
	got, err := ReadJSONSummary(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	want := rep.Summarize()
	if math.Abs(got.MeanTacitSpeedup-want.MeanTacitSpeedup) > 1e-9 ||
		math.Abs(got.MeanEBEnergyGain-want.MeanEBEnergyGain) > 1e-9 {
		t.Fatal("summary round trip diverged")
	}
}

func TestReadJSONSummaryErrors(t *testing.T) {
	if _, err := ReadJSONSummary(strings.NewReader("{garbage")); err == nil {
		t.Fatal("expected JSON error")
	}
}
