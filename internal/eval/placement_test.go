package eval

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
)

func TestComparePlacementsTableAndDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	networks := []string{"CNN-S", "CNN-L"}
	placers := []string{"greedy", "mesh"}
	rows, err := ComparePlacements(cfg, networks, placers, arch.EinsteinBarrier, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(networks)*len(placers) {
		t.Fatalf("%d rows", len(rows))
	}
	// Parallel fan-out is bit-identical to serial.
	serial := cfg
	serial.Workers = 1
	srows, err := ComparePlacements(serial, networks, placers, arch.EinsteinBarrier, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, srows) {
		t.Fatal("parallel and serial comparison differ")
	}
	// The table and CSV render every row.
	table := PlacementTable(rows)
	for _, frag := range []string{"greedy", "mesh", "CNN-L", "bottleneck"} {
		if !strings.Contains(table, frag) {
			t.Fatalf("table missing %q:\n%s", frag, table)
		}
	}
	var buf bytes.Buffer
	if err := WritePlacementCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(rows)+1 {
		t.Fatalf("CSV has %d lines for %d rows", lines, len(rows))
	}
	// The headline trade-off holds on CNN-L: mesh out-runs greedy and
	// stalls less on the NoC.
	var greedy, mesh PlacementRow
	for _, r := range rows {
		if r.Network == "CNN-L" && r.Placer == "greedy" {
			greedy = r
		}
		if r.Network == "CNN-L" && r.Placer == "mesh" {
			mesh = r
		}
	}
	if mesh.ThroughputPerSec <= greedy.ThroughputPerSec {
		t.Fatalf("mesh %v not above greedy %v", mesh.ThroughputPerSec, greedy.ThroughputPerSec)
	}
	if mesh.LinkWaitNs >= greedy.LinkWaitNs {
		t.Fatalf("mesh wait %v not below greedy %v", mesh.LinkWaitNs, greedy.LinkWaitNs)
	}
}

func TestComparePlacementsRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := ComparePlacements(cfg, nil, nil, arch.EinsteinBarrier, 0); err == nil {
		t.Fatal("batch 0 must error")
	}
	if _, err := ComparePlacements(cfg, []string{"nope"}, nil, arch.EinsteinBarrier, 1); err == nil {
		t.Fatal("unknown network must error")
	}
	if _, err := ComparePlacements(cfg, nil, nil, arch.Design(99), 1); err == nil {
		t.Fatal("unknown design must error")
	}
	if _, err := ComparePlacements(cfg, nil, []string{"nope"}, arch.EinsteinBarrier, 1); err == nil {
		t.Fatal("unknown placer must error")
	}
}

func TestCoLocateBuildsSharedFabric(t *testing.T) {
	cfg := DefaultConfig()
	cs, es, err := CoLocate(cfg, []string{"MLP-S", "CNN-S"}, arch.EinsteinBarrier, compiler.MeshPlacer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || len(es.Engines()) != 2 {
		t.Fatalf("%d compileds, %d engines", len(cs), len(es.Engines()))
	}
	if cs[0].Placement.Region.Overlaps(cs[1].Placement.Region) {
		t.Fatal("co-located regions overlap")
	}
	r, err := es.RunSet(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Models) != 2 || r.AggregatePerSec <= 0 {
		t.Fatalf("bad set result %+v", r)
	}
	if _, _, err := CoLocate(cfg, nil, arch.EinsteinBarrier, nil); err == nil {
		t.Fatal("empty model list must error")
	}
}
