package serve

import (
	"fmt"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/tensor"
)

// Canary-based replica health. A CanarySet is a small fixed labeled
// probe stream; the lifetime loop plays it through each hardware
// replica on a period and watches the windowed accuracy. The labels are
// the *software* model's own predictions over the same inputs, so a
// fresh replica at an agreement-preserving device corner scores exactly
// 1.0 and any decay is attributable to device physics, not model
// quality — the canary determinism contract (see DESIGN.md).

// CanarySet is an immutable labeled probe set. Safe for concurrent
// Evaluate calls: the inputs are only ever read, and each call owns its
// own output scratch.
type CanarySet struct {
	inputs []*tensor.Float
	want   []int
}

// NewCanarySet labels the inputs with the software model's predictions
// (reshaping flat vectors to the model's input shape).
func NewCanarySet(model *bnn.Model, inputs []*tensor.Float) (*CanarySet, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: canary set needs a model")
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("serve: canary set needs at least one input")
	}
	size := 1
	for _, d := range model.InputShape {
		size *= d
	}
	c := &CanarySet{
		inputs: make([]*tensor.Float, len(inputs)),
		want:   make([]int, len(inputs)),
	}
	for i, x := range inputs {
		if x == nil || x.Size() != size {
			return nil, fmt.Errorf("serve: canary input %d has %d elements, model wants %d", i, x.Size(), size)
		}
		if x.Dims() != len(model.InputShape) {
			x = x.Reshape(model.InputShape...)
		}
		c.inputs[i] = x
		c.want[i] = model.Predict(x.Clone())
	}
	return c, nil
}

// Len is the probe count.
func (c *CanarySet) Len() int { return len(c.inputs) }

// Evaluate plays the probe set through the replica and returns the
// fraction of predictions matching the software labels.
func (c *CanarySet) Evaluate(rep Replica) (float64, error) {
	preds := make([]Prediction, len(c.inputs))
	if err := rep.RunBatch(c.inputs, preds); err != nil {
		return 0, err
	}
	match := 0
	for i, p := range preds {
		if p.Class == c.want[i] {
			match++
		}
	}
	return float64(match) / float64(len(c.inputs)), nil
}

// healthWindow is one replica's canary accuracy tracker with
// flap-proof hysteresis: the replica is flagged only after FlagAfter
// *consecutive* below-floor canary passes, and once flagged it stays
// flagged until the lifecycle resets it after recalibration — a single
// recovered pass can neither unflag a degrading replica nor can a
// single bad pass flag a healthy one.
type healthWindow struct {
	floor     float64
	window    int
	flagAfter int

	recent  []float64 // ring buffer of the last `window` accuracies
	n       int64     // total observations
	last    float64
	below   int // consecutive below-floor passes
	flagged bool
}

func newHealthWindow(floor float64, window, flagAfter int) *healthWindow {
	return &healthWindow{floor: floor, window: window, flagAfter: flagAfter,
		recent: make([]float64, 0, window)}
}

// observe folds one canary accuracy in and reports the flagged state.
func (h *healthWindow) observe(acc float64) bool {
	if len(h.recent) < h.window {
		h.recent = append(h.recent, acc)
	} else {
		h.recent[h.n%int64(h.window)] = acc
	}
	h.n++
	h.last = acc
	if acc < h.floor {
		h.below++
	} else {
		h.below = 0
	}
	if h.below >= h.flagAfter {
		h.flagged = true
	}
	return h.flagged
}

// mean is the windowed accuracy estimate (1.0 before any observation —
// a replica is presumed healthy until probed).
func (h *healthWindow) mean() float64 {
	if len(h.recent) == 0 {
		return 1
	}
	sum := 0.0
	for _, a := range h.recent {
		sum += a
	}
	return sum / float64(len(h.recent))
}

// reset clears the window after recalibration: the replica starts a
// fresh health history.
func (h *healthWindow) reset() {
	h.recent = h.recent[:0]
	h.below = 0
	h.flagged = false
}
