package serve

import (
	"fmt"
	"sync"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/infer"
	"einsteinbarrier/internal/robust"
	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/tensor"
)

// Prediction is one request's output as produced by a backend.
type Prediction struct {
	// Class is the argmax of the logits.
	Class int
	// Logits is owned by the caller (backends must not reuse it).
	Logits []float64
}

// Backend is an inference execution engine the server can batch onto.
// Backends are factories: each server worker owns one Replica, so a
// backend implementation only needs its replicas — not itself — to be
// usable from a single goroutine at a time.
type Backend interface {
	// Name describes the backend for /stats and error messages.
	Name() string
	// InputShape is the model's per-request input shape; flat vectors
	// of the matching element count are also admitted.
	InputShape() []int
	// NewReplica builds an independent executor (own scratch, own
	// simulated arrays) for one worker goroutine.
	NewReplica() (Replica, error)
}

// Replica executes batches for one worker. RunBatch fills out[i] for
// xs[i]; out has len(xs). Replicas are never shared across goroutines.
type Replica interface {
	RunBatch(xs []*tensor.Float, out []Prediction) error
}

// LifetimeReplica is a Replica whose simulated device physics can age,
// degrade, and be recalibrated online — the contract device-lifetime
// mode (Config.Lifetime) requires of every replica. Hardware replicas
// implement it; software replicas do not age and cannot serve in
// lifetime mode (except as the fail-open fallback).
type LifetimeReplica interface {
	Replica
	// Age advances the replica's simulated device age (drift).
	Age(seconds float64)
	// Recalibrate re-programs every crossbar plane in place, resetting
	// drift age, and reports the priced write pass.
	Recalibrate() robust.RecalReport
	// InjectFaults re-draws the stuck-at population (wear-driven fault
	// arrival); returns the logically flipped cell count.
	InjectFaults(f crossbar.FaultModel) (int, error)
}

// --- software backend ----------------------------------------------------

// SoftwareBackend runs the exact bitops fast path: every replica is an
// internal/infer engine whose workers carry bnn.Model.CloneShared
// copies, so batch items fan out over the pool with zero steady-state
// allocations inside each worker.
type SoftwareBackend struct {
	model   *bnn.Model
	workers int
}

// NewSoftwareBackend validates the model and wraps it. inferWorkers is
// the per-replica pool size (< 1 means one per CPU).
func NewSoftwareBackend(m *bnn.Model, inferWorkers int) (*SoftwareBackend, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: software backend needs a model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &SoftwareBackend{model: m, workers: inferWorkers}, nil
}

// Name implements Backend.
func (b *SoftwareBackend) Name() string { return "software/" + b.model.Name() }

// InputShape implements Backend.
func (b *SoftwareBackend) InputShape() []int { return b.model.InputShape }

// NewReplica implements Backend.
func (b *SoftwareBackend) NewReplica() (Replica, error) {
	return &softwareReplica{eng: infer.New(b.model, b.workers)}, nil
}

type softwareReplica struct {
	eng *infer.Engine
}

func (r *softwareReplica) RunBatch(xs []*tensor.Float, out []Prediction) error {
	logits, err := r.eng.InferBatch(xs)
	if err != nil {
		return err
	}
	for i, l := range logits {
		// InferBatch clones results out of worker scratch, so the data
		// slice is safe to hand to the caller.
		out[i] = Prediction{Class: l.ArgMax(), Logits: l.Data()}
	}
	return nil
}

// --- hardware backend ----------------------------------------------------

// HardwareBackend runs the binary layers of every request on simulated
// analog crossbars (robust.HardwareModel) — the hardware-in-the-loop
// serving path. Each replica maps its own arrays (mapped layers carry
// scratch and are not concurrency-safe); replicas of one backend are
// seeded identically, so they are functionally interchangeable.
type HardwareBackend struct {
	model *bnn.Model
	cfg   robust.Config
}

// NewHardwareBackend validates the model and the hardware corner.
func NewHardwareBackend(m *bnn.Model, cfg robust.Config) (*HardwareBackend, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: hardware backend needs a model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &HardwareBackend{model: m, cfg: cfg}, nil
}

// Name implements Backend.
func (b *HardwareBackend) Name() string {
	return fmt.Sprintf("hardware/%s/%v", b.model.Name(), b.cfg.Array.Tech)
}

// InputShape implements Backend.
func (b *HardwareBackend) InputShape() []int { return b.model.InputShape }

// NewReplica implements Backend.
func (b *HardwareBackend) NewReplica() (Replica, error) {
	// Each replica owns a CloneShared copy: the model's non-binarized
	// layers still run in software inside HardwareModel.Infer and reuse
	// layer scratch, which must not be shared across worker goroutines.
	hw, err := robust.Map(b.model.CloneShared(), b.cfg)
	if err != nil {
		return nil, err
	}
	return &hardwareReplica{hw: hw}, nil
}

type hardwareReplica struct {
	hw *robust.HardwareModel
}

func (r *hardwareReplica) RunBatch(xs []*tensor.Float, out []Prediction) error {
	for i, x := range xs {
		y, err := r.hw.Infer(x)
		if err != nil {
			return err
		}
		// The final software layers reuse model scratch — copy out.
		out[i] = Prediction{Class: y.ArgMax(), Logits: append([]float64(nil), y.Data()...)}
	}
	return nil
}

// Age implements LifetimeReplica: simulated drift on every mapped tile.
func (r *hardwareReplica) Age(seconds float64) { r.hw.AgeAll(seconds) }

// Recalibrate implements LifetimeReplica.
func (r *hardwareReplica) Recalibrate() robust.RecalReport { return r.hw.Recalibrate() }

// InjectFaults implements LifetimeReplica.
func (r *hardwareReplica) InjectFaults(f crossbar.FaultModel) (int, error) {
	return r.hw.InjectFaults(f)
}

// --- per-batch accelerator pricing ---------------------------------------

// Pricer prices every served batch on the tile-level pipelined
// simulator: the serving layer reports what the selected accelerator
// design *would* have delivered for the dynamic batch sizes the live
// stream actually produced — directly comparable to the offline
// eval.ThroughputAt ceiling. Safe for concurrent use by the server
// workers.
type Pricer struct {
	mu  sync.Mutex
	eng *sim.Engine
	// memo caches RunBatch by batch size: the engine is a pure
	// deterministic function of b, so each size is simulated once and a
	// saturated stream (every batch MaxBatch-sized) prices in O(1).
	memo map[int]*sim.BatchResult

	batches   int64
	samples   int64
	simNs     float64 // Σ batch makespans
	energyPJ  float64 // Σ per-sample energy
	latencyNs float64 // single-inference critical path (Fig. 7)
	ceiling   float64 // analytic steady-state inferences/s
	bneck     string
}

// NewPricer wraps a pipelined engine (see eval.Pipeline) and captures
// the design's analytic ceiling.
func NewPricer(eng *sim.Engine) (*Pricer, error) {
	br, err := eng.RunBatch(1)
	if err != nil {
		return nil, err
	}
	// Engine results are recycled by the engine's next run; the memo
	// keeps pricer-owned clones.
	br = br.Clone()
	return &Pricer{
		eng:       eng,
		memo:      map[int]*sim.BatchResult{1: br},
		latencyNs: br.LatencyNs,
		ceiling:   br.SteadyStatePerSec,
		bneck:     br.BottleneckName,
	}, nil
}

// price accumulates one served batch and returns the engine's result
// for that batch size (nil only on an engine error) — the trace joins
// the serving timeline to the simulated schedule through it. Called by
// server workers.
func (p *Pricer) price(b int) *sim.BatchResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	br, ok := p.memo[b]
	if !ok {
		var err error
		br, err = p.eng.RunBatch(b)
		if err != nil {
			return nil // unreachable for b ≥ 1; keep the serving path alive
		}
		br = br.Clone()
		p.memo[b] = br
	}
	p.batches++
	p.samples += int64(b)
	p.simNs += br.MakespanNs
	p.energyPJ += float64(b) * br.EnergyPJPerInference
	return br
}

// SimSnapshot is the accumulated simulated-accelerator view of the
// served stream.
type SimSnapshot struct {
	// Batches/Samples priced so far.
	Batches int64 `json:"batches"`
	Samples int64 `json:"samples"`
	// PerSec is the achieved simulated throughput: samples over the sum
	// of the batch makespans (what the accelerator would sustain if it
	// served exactly these batches back to back).
	PerSec float64 `json:"inferences_per_sec"`
	// CeilingPerSec is the pipeline's analytic steady-state bound;
	// Bottleneck names the saturated resource.
	CeilingPerSec float64 `json:"ceiling_per_sec"`
	Bottleneck    string  `json:"bottleneck"`
	// LatencyNs is the single-inference critical path (the Fig. 7
	// number for this network×design).
	LatencyNs float64 `json:"latency_ns"`
	// MeanEnergyPJ is the per-inference energy.
	MeanEnergyPJ float64 `json:"mean_energy_pj"`
}

// Snapshot returns the current simulated-accelerator accounting.
func (p *Pricer) Snapshot() SimSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := SimSnapshot{
		Batches:       p.batches,
		Samples:       p.samples,
		CeilingPerSec: p.ceiling,
		Bottleneck:    p.bneck,
		LatencyNs:     p.latencyNs,
	}
	if p.simNs > 0 {
		out.PerSec = float64(p.samples) * 1e9 / p.simNs
	}
	if p.samples > 0 {
		out.MeanEnergyPJ = p.energyPJ / float64(p.samples)
	}
	return out
}
