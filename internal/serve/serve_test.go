package serve

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/robust"
	"einsteinbarrier/internal/tensor"
)

// defaultHardwareCorner is the default ePCM device corner.
func defaultHardwareCorner() robust.Config { return robust.DefaultConfig(device.EPCM) }

// testInputs builds n seeded shaped inputs for a model.
func testInputs(t testing.TB, m *bnn.Model, n int, seed int64) []*tensor.Float {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.Float, n)
	for i := range xs {
		xs[i] = tensor.NewFloat(m.InputShape...)
		for j := range xs[i].Data() {
			xs[i].Data()[j] = rng.NormFloat64()
		}
	}
	return xs
}

func zooModel(t testing.TB, name string) *bnn.Model {
	t.Helper()
	m, err := bnn.NewModel(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBatcherDeterministicBoundaries is the determinism pin: requests
// enqueued before Start are served in enqueue order in full MaxBatch
// batches, every reply carries the predicted batch seq/size, and the
// logits are bit-identical to serial Model.Infer. Two runs produce the
// identical assignment.
func TestBatcherDeterministicBoundaries(t *testing.T) {
	model := zooModel(t, "MLP-S")
	xs := testInputs(t, model, 24, 42)

	// Serial reference on a scratch-isolated clone.
	serial := model.CloneShared()
	wantLogits := make([][]float64, len(xs))
	for i, x := range xs {
		wantLogits[i] = append([]float64(nil), serial.Infer(x).Data()...)
	}

	const maxBatch = 8
	runOnce := func() []Result {
		backend, err := NewSoftwareBackend(model, 2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{
			Backend:  backend,
			MaxBatch: maxBatch,
			MaxWait:  time.Hour,
			QueueCap: len(xs),
			Workers:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		chans := make([]<-chan Reply, len(xs))
		for i, x := range xs {
			ch, err := s.SubmitAsync(x)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			chans[i] = ch
		}
		s.Start()
		out := make([]Result, len(xs))
		for i, ch := range chans {
			rep := <-ch
			if rep.Err != nil {
				t.Fatalf("reply %d: %v", i, rep.Err)
			}
			out[i] = rep.Result
		}
		s.Stop()
		return out
	}

	first := runOnce()
	for i, r := range first {
		if r.BatchSize != maxBatch {
			t.Fatalf("request %d: batch size %d, want %d", i, r.BatchSize, maxBatch)
		}
		if want := int64(i / maxBatch); r.BatchSeq != want {
			t.Fatalf("request %d: batch seq %d, want %d", i, r.BatchSeq, want)
		}
		if len(r.Logits) != len(wantLogits[i]) {
			t.Fatalf("request %d: %d logits, want %d", i, len(r.Logits), len(wantLogits[i]))
		}
		for j := range r.Logits {
			if r.Logits[j] != wantLogits[i][j] {
				t.Fatalf("request %d logit %d: batched %v != serial %v",
					i, j, r.Logits[j], wantLogits[i][j])
			}
		}
	}
	second := runOnce()
	for i := range first {
		if first[i].BatchSeq != second[i].BatchSeq || first[i].BatchSize != second[i].BatchSize ||
			first[i].Class != second[i].Class {
			t.Fatalf("request %d: run 1 (seq %d size %d class %d) != run 2 (seq %d size %d class %d)",
				i, first[i].BatchSeq, first[i].BatchSize, first[i].Class,
				second[i].BatchSeq, second[i].BatchSize, second[i].Class)
		}
	}
}

// TestMaxWaitFlushesPartialBatch: with MaxBatch far above the offered
// load, the MaxWait deadline — not the size cap — dispatches the batch.
func TestMaxWaitFlushesPartialBatch(t *testing.T) {
	model := zooModel(t, "MLP-S")
	backend, err := NewSoftwareBackend(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: backend, MaxBatch: 64, MaxWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	xs := testInputs(t, model, 3, 7)
	chans := make([]<-chan Reply, len(xs))
	for i, x := range xs {
		ch, err := s.SubmitAsync(x)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	s.Start()
	for i, ch := range chans {
		rep := <-ch
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		if rep.Result.BatchSize != len(xs) || rep.Result.BatchSeq != 0 {
			t.Fatalf("request %d: batch size %d seq %d, want size %d seq 0",
				i, rep.Result.BatchSize, rep.Result.BatchSeq, len(xs))
		}
	}
	s.Stop()
	if st := s.Stats(); st.Batches != 1 || st.MeanBatch != float64(len(xs)) {
		t.Fatalf("stats: %d batches mean %v, want 1 batch of %d", st.Batches, st.MeanBatch, len(xs))
	}
}

// blockingBackend parks every RunBatch on a gate, so tests can hold the
// pipeline full and observe admission control deterministically.
type blockingBackend struct {
	gate    chan struct{}
	started chan struct{}
}

func newBlockingBackend() *blockingBackend {
	return &blockingBackend{gate: make(chan struct{}), started: make(chan struct{}, 128)}
}

func (b *blockingBackend) Name() string      { return "test/blocking" }
func (b *blockingBackend) InputShape() []int { return []int{4} }
func (b *blockingBackend) NewReplica() (Replica, error) {
	return blockingReplica{b}, nil
}

type blockingReplica struct{ b *blockingBackend }

func (r blockingReplica) RunBatch(xs []*tensor.Float, out []Prediction) error {
	r.b.started <- struct{}{}
	<-r.b.gate
	for i := range out {
		out[i] = Prediction{Class: i, Logits: []float64{1}}
	}
	return nil
}

// TestSheddingEngagesUnderOverload pins the admission-control contract:
// with the worker wedged, the system holds at most 1 (in service) + 1
// (batcher hand) + QueueCap requests; everything beyond sheds with
// ErrOverloaded, and accepted requests still complete with finite
// latency once the backend recovers — overload degrades throughput,
// never latency correctness.
func TestSheddingEngagesUnderOverload(t *testing.T) {
	backend := newBlockingBackend()
	const queueCap = 4
	s, err := New(Config{Backend: backend, MaxBatch: 1, MaxWait: time.Hour, QueueCap: queueCap})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	x := tensor.NewFloat(4)

	ch0, err := s.SubmitAsync(x)
	if err != nil {
		t.Fatal(err)
	}
	<-backend.started // request 0 is in service and wedged

	var chans []<-chan Reply
	shed := 0
	for i := 0; i < 20; i++ {
		ch, err := s.SubmitAsync(x)
		switch {
		case err == nil:
			chans = append(chans, ch)
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("submit %d: unexpected error %v", i, err)
		}
		time.Sleep(200 * time.Microsecond) // let the batcher drain its hand
	}
	// Capacity beyond the in-service request: batcher hand + queue.
	if len(chans) > 1+queueCap {
		t.Fatalf("accepted %d requests beyond service, capacity is %d", len(chans), 1+queueCap)
	}
	if shed < 14 {
		t.Fatalf("shed %d of 20, want ≥ 14", shed)
	}
	if st := s.Stats(); st.Shed != int64(shed) || st.ShedRate <= 0 {
		t.Fatalf("stats shed %d rate %v, want %d and > 0", st.Shed, st.ShedRate, shed)
	}

	close(backend.gate) // recover
	if rep := <-ch0; rep.Err != nil {
		t.Fatal(rep.Err)
	}
	for i, ch := range chans {
		rep := <-ch
		if rep.Err != nil {
			t.Fatalf("accepted request %d failed after recovery: %v", i, rep.Err)
		}
		if rep.Result.LatencyNs <= 0 {
			t.Fatalf("accepted request %d: non-positive latency", i)
		}
	}
	s.Stop()
	st := s.Stats()
	if want := int64(1 + len(chans)); st.Completed != want {
		t.Fatalf("completed %d, want %d", st.Completed, want)
	}
	if st.Latency.P99 <= 0 || st.Latency.Max < st.Latency.P99 {
		t.Fatalf("latency block inconsistent: %+v", st.Latency)
	}
}

// TestSubmitValidationAndClose: malformed inputs are rejected with a
// clear error (and counted), and a stopped server refuses service.
func TestSubmitValidationAndClose(t *testing.T) {
	model := zooModel(t, "MLP-S")
	backend, err := NewSoftwareBackend(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: backend, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if _, err := s.SubmitAsync(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := s.SubmitAsync(tensor.NewFloat(3)); err == nil {
		t.Fatal("wrong-size input accepted")
	}
	// Right element count, wrong rank: must be rejected at admission,
	// before it can reach (and poison or crash) a backend batch.
	if _, err := s.SubmitAsync(tensor.NewFloat(28, 28)); err == nil {
		t.Fatal("wrong-rank input accepted")
	}
	if st := s.Stats(); st.Rejected != 3 {
		t.Fatalf("rejected = %d, want 3", st.Rejected)
	}
	if _, err := s.Submit(testInputs(t, model, 1, 1)[0]); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if _, err := s.Submit(testInputs(t, model, 1, 1)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after stop: %v, want ErrClosed", err)
	}
}

// panicBackend panics on every batch — a worst-case buggy backend.
type panicBackend struct{}

func (panicBackend) Name() string      { return "test/panic" }
func (panicBackend) InputShape() []int { return []int{4} }
func (panicBackend) NewReplica() (Replica, error) {
	return panicReplica{}, nil
}

type panicReplica struct{}

func (panicReplica) RunBatch([]*tensor.Float, []Prediction) error { panic("kaboom") }

// TestBackendPanicFailsBatchNotServer: a replica panic becomes the
// batch's error; the server keeps serving subsequent requests.
func TestBackendPanicFailsBatchNotServer(t *testing.T) {
	s, err := New(Config{Backend: panicBackend{}, MaxBatch: 2, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	for i := 0; i < 3; i++ {
		_, err := s.Submit(tensor.NewFloat(4))
		if err == nil || !strings.Contains(err.Error(), "backend panic") {
			t.Fatalf("request %d: err = %v, want backend panic error", i, err)
		}
	}
	if st := s.Stats(); st.Failed != 3 || st.Completed != 0 {
		t.Fatalf("failed %d completed %d, want 3/0", st.Failed, st.Completed)
	}
}

// TestHardwareBackendServesAndAgreesWithSoftware: the hardware-in-the-
// loop backend serves requests whose predictions match the software
// path at the default device corner (§V-C: the designs do not affect
// accuracy).
func TestHardwareBackendServesAndAgreesWithSoftware(t *testing.T) {
	model := zooModel(t, "MLP-S")
	hw, err := NewHardwareBackend(model, defaultHardwareCorner())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: hw, MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	serial := model.CloneShared()
	for i, x := range testInputs(t, model, 6, 9) {
		res, err := s.Submit(x)
		if err != nil {
			t.Fatal(err)
		}
		if want := serial.Predict(x); res.Class != want {
			t.Fatalf("sample %d: hardware served class %d, software %d", i, res.Class, want)
		}
	}
}
