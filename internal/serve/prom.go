package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a Snapshot — the
// GET /metrics surface. No client library: the format is lines of
// `name{labels} value` grouped under # HELP / # TYPE comments, which
// fmt can produce directly, keeping the serving layer dependency-free.
//
// Metric scheme: everything is prefixed eb_serve_. Cumulative counts
// are counters; instantaneous readings (queue depth, shed rate, mean
// batch) are gauges; the latency quantiles are emitted as a summary
// (pre-computed quantiles from the histogram — the server already owns
// the aggregation, so a summary is the honest type).

// promMetric is one metric family: help text, type, and its samples.
type promMetric struct {
	name, help, typ string
	samples         []promSample
}

type promSample struct {
	labels string // rendered `{k="v",...}` or ""
	value  float64
}

// promLabel renders one escaped label pair.
func promLabel(k, v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return k + `="` + r.Replace(v) + `"`
}

// promLabels joins rendered pairs into a label set.
func promLabels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// promValue formats a sample value the way Prometheus expects.
func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeProm renders metric families in the order given.
func writeProm(w io.Writer, metrics []promMetric) error {
	for _, m := range metrics {
		if len(m.samples) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		for _, s := range m.samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, s.labels, promValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// snapshotMetrics flattens one Snapshot into metric families, each
// sample labeled with extra (e.g. the model name on a router). A nil
// extra is the single-server case.
func snapshotMetrics(s Snapshot, extra []string) []promMetric {
	lbl := func(pairs ...string) string {
		return promLabels(append(append([]string(nil), extra...), pairs...)...)
	}
	counter := func(name, help string, v float64) promMetric {
		return promMetric{name: name, help: help, typ: "counter",
			samples: []promSample{{labels: lbl(), value: v}}}
	}
	gauge := func(name, help string, v float64) promMetric {
		return promMetric{name: name, help: help, typ: "gauge",
			samples: []promSample{{labels: lbl(), value: v}}}
	}
	const msToSec = 1e-3
	latency := promMetric{
		name: "eb_serve_latency_seconds",
		help: "Request latency quantiles (enqueue to reply, histogram upper bounds).",
		typ:  "summary",
		samples: []promSample{
			{labels: lbl(promLabel("quantile", "0.5")), value: s.Latency.P50 * msToSec},
			{labels: lbl(promLabel("quantile", "0.95")), value: s.Latency.P95 * msToSec},
			{labels: lbl(promLabel("quantile", "0.99")), value: s.Latency.P99 * msToSec},
		},
	}
	out := []promMetric{
		gauge("eb_serve_uptime_seconds", "Seconds since server construction.", s.UptimeSec),
		counter("eb_serve_accepted_total", "Requests admitted to the queue.", float64(s.Accepted)),
		counter("eb_serve_shed_total", "Requests shed by a full admission queue.", float64(s.Shed)),
		counter("eb_serve_rejected_total", "Requests failing shape validation.", float64(s.Rejected)),
		counter("eb_serve_timed_out_total", "HTTP requests whose deadline expired before the reply.", float64(s.TimedOut)),
		counter("eb_serve_retried_total", "Batch re-executions after transient replica errors.", float64(s.Retried)),
		counter("eb_serve_fallback_served_total", "Samples answered by the fail-open software path.", float64(s.FallbackServed)),
		counter("eb_serve_completed_total", "Requests answered successfully.", float64(s.Completed)),
		counter("eb_serve_failed_total", "Requests answered with an error.", float64(s.Failed)),
		counter("eb_serve_batches_total", "Dispatched dynamic batches.", float64(s.Batches)),
		counter("eb_serve_drain_served_total", "Requests served inside a drain window.", float64(s.DrainServed)),
		gauge("eb_serve_queue_depth", "Instantaneous admission-queue length.", float64(s.QueueDepth)),
		gauge("eb_serve_shed_rate", "Shed over (accepted + shed).", s.ShedRate),
		gauge("eb_serve_mean_batch", "Mean dynamic batch size.", s.MeanBatch),
		gauge("eb_serve_throughput_per_sec", "Completed requests over uptime.", s.ThroughputPerSec),
		latency,
		gauge("eb_serve_latency_max_seconds", "Maximum observed request latency.", s.Latency.Max*msToSec),
	}
	if s.Sim != nil {
		out = append(out,
			gauge("eb_serve_sim_inferences_per_sec", "Achieved simulated accelerator throughput.", s.Sim.PerSec),
			gauge("eb_serve_sim_ceiling_per_sec", "Analytic steady-state pipeline bound.", s.Sim.CeilingPerSec),
			gauge("eb_serve_sim_mean_energy_pj", "Simulated per-inference energy.", s.Sim.MeanEnergyPJ),
		)
	}
	if s.Lifetime != nil {
		out = append(out,
			gauge("eb_serve_lifetime_healthy_replicas", "Hardware replicas not permanently retired.", float64(len(s.Lifetime.Replicas)-s.Lifetime.Retired)),
			counter("eb_serve_lifetime_recalibrations_total", "Closed-loop recalibration passes.", float64(s.Lifetime.Recalibrations)),
			counter("eb_serve_lifetime_retired_total", "Replicas permanently retired.", float64(s.Lifetime.Retired)),
		)
	}
	return out
}

// WriteMetrics renders one server's Snapshot in the Prometheus text
// exposition format.
func WriteMetrics(w io.Writer, s Snapshot) error {
	return writeProm(w, snapshotMetrics(s, nil))
}

// mergeMetrics folds per-model families into one family per metric
// name, preserving first-seen family order so multi-model output stays
// grouped per metric, as the exposition format requires.
func mergeMetrics(groups [][]promMetric) []promMetric {
	var order []string
	byName := map[string]*promMetric{}
	for _, ms := range groups {
		for _, m := range ms {
			if got, ok := byName[m.name]; ok {
				got.samples = append(got.samples, m.samples...)
			} else {
				cp := m
				cp.samples = append([]promSample(nil), m.samples...)
				byName[m.name] = &cp
				order = append(order, m.name)
			}
		}
	}
	out := make([]promMetric, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}

// WriteFleetMetrics renders multiple servers' snapshots, one `model`
// label per entry, sorted by model name for deterministic output.
func WriteFleetMetrics(w io.Writer, byModel map[string]Snapshot) error {
	names := make([]string, 0, len(byModel))
	for n := range byModel {
		names = append(names, n)
	}
	sort.Strings(names)
	groups := make([][]promMetric, 0, len(names))
	for _, n := range names {
		groups = append(groups, snapshotMetrics(byModel[n], []string{promLabel("model", n)}))
	}
	return writeProm(w, mergeMetrics(groups))
}
