package serve

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"einsteinbarrier/internal/device"
	"einsteinbarrier/internal/robust"
	"einsteinbarrier/internal/tensor"
)

// lifetimeCorner is the deterministic device corner for the closed-loop
// pins: read noise off, so every prediction is an exact function of the
// seeded conductance planes and the device age. The default programming
// spread stays on — it is what puts popcount sums near their decision
// boundaries so that drift visibly degrades the synthetic zoo models
// (at zero spread the nominal margins absorb any realistic drift).
func lifetimeCorner() robust.Config {
	cfg := robust.DefaultConfig(device.EPCM)
	cfg.Array.EPCM.ReadNoiseSigma = 0
	cfg.Array.Seed = 7
	return cfg
}

type lifetimeOutcome struct {
	classes []int
	trace   []CanaryPoint
	snap    Snapshot
}

// runLifetimeScenario drives a serial seeded request stream through a
// lifetime-mode server and returns everything observable.
func runLifetimeScenario(t *testing.T, workers int, life *LifetimeConfig, requests int) lifetimeOutcome {
	t.Helper()
	model := zooModel(t, "MLP-S")
	hw, err := NewHardwareBackend(model, lifetimeCorner())
	if err != nil {
		t.Fatal(err)
	}
	if life.Canary == nil {
		canary, err := NewCanarySet(model, testInputs(t, model, 16, 33))
		if err != nil {
			t.Fatal(err)
		}
		life.Canary = canary
	}
	s, err := New(Config{Backend: hw, Workers: workers, MaxBatch: 4, Lifetime: life})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	out := lifetimeOutcome{classes: make([]int, 0, requests)}
	xs := testInputs(t, model, requests, 99)
	for i, x := range xs {
		res, err := s.Submit(x)
		if err != nil {
			t.Fatalf("request %d dropped/errored during lifetime scenario: %v", i, err)
		}
		out.classes = append(out.classes, res.Class)
	}
	s.Stop()
	out.trace = s.Trace()
	out.snap = s.Stats()
	return out
}

// TestClosedLoopRecalibration is the pinned closed-loop test: under a
// seeded serial load with an aggressive drift clock, the replica is
// flagged by the canary, drained with zero dropped requests,
// recalibrated, and returns with canary accuracy restored to the
// fresh-replica level — and the whole trajectory is deterministic
// across runs.
func TestClosedLoopRecalibration(t *testing.T) {
	mk := func() *LifetimeConfig {
		return &LifetimeConfig{
			// ~10 simulated seconds of drift per served sample: synthetic
			// zoo margins collapse within a few batches.
			Clock:       BatchClock{SecondsPerSample: 10},
			CanaryEvery: 2,
			Floor:       0.99,
			Window:      4,
			FlagAfter:   2,
		}
	}
	model := zooModel(t, "MLP-S")
	hwb, err := NewHardwareBackend(model, lifetimeCorner())
	if err != nil {
		t.Fatal(err)
	}
	freshRep, err := hwb.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	canary, err := NewCanarySet(model, testInputs(t, model, 16, 33))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := canary.Evaluate(freshRep)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != 1.0 {
		t.Fatalf("fresh replica canary accuracy %.3f, want 1.0 at the noise-free corner", fresh)
	}

	a := runLifetimeScenario(t, 1, mk(), 40)
	b := runLifetimeScenario(t, 1, mk(), 40)

	// Determinism across runs: identical predictions and identical
	// canary trajectories.
	if !reflect.DeepEqual(a.classes, b.classes) {
		t.Fatal("served classes differ between two identical runs")
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("canary traces differ between two identical runs:\n%v\n%v", a.trace, b.trace)
	}

	lt := a.snap.Lifetime
	if lt == nil {
		t.Fatal("no lifetime block in snapshot")
	}
	if lt.Recalibrations == 0 {
		t.Fatalf("drift never triggered a recalibration: %+v\ntrace: %v", lt, a.trace)
	}
	if lt.RecalEnergyPJ <= 0 || lt.RecalLatencyNs <= 0 {
		t.Fatalf("recalibration not priced: %+v", lt)
	}
	if lt.Retired != 0 {
		t.Fatalf("drift-only degradation must be fully repairable, got %d retired", lt.Retired)
	}
	// The loop closed: a flagged probe is followed by a post-recal probe
	// restored to the fresh-replica level.
	sawFlag, sawRestore := false, false
	for _, p := range a.trace {
		if p.Flagged {
			sawFlag = true
		}
		if p.PostRecal {
			sawRestore = true
			if p.Accuracy != fresh {
				t.Fatalf("post-recal canary %.3f != fresh level %.3f", p.Accuracy, fresh)
			}
			if p.AgeSeconds != 0 {
				t.Fatalf("post-recal age %.1f, want 0", p.AgeSeconds)
			}
		}
	}
	if !sawFlag || !sawRestore {
		t.Fatalf("trace missing flag (%v) or restore (%v): %v", sawFlag, sawRestore, a.trace)
	}
	// Degradation was real: some pre-recal probe fell below the floor.
	degraded := false
	for _, p := range a.trace {
		if !p.PostRecal && p.Accuracy < 0.99 {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("no canary probe ever saw degradation")
	}
	// Zero drops, every request answered.
	if a.snap.Completed != 40 || a.snap.Failed != 0 || a.snap.Shed != 0 {
		t.Fatalf("accounting: %+v", a.snap)
	}
	// Requests served during the drain window were tracked for the SLO
	// view (the queued-behind-drain batches).
	if a.snap.DrainServed == 0 || a.snap.DrainLatency == nil {
		t.Fatalf("no drain-window latency accounting: %+v", a.snap)
	}
}

// TestClosedLoopAcrossWorkerCounts: the outcome-level invariants hold
// at any worker count — zero dropped requests, every flagged replica
// recalibrated and restored above the floor, nothing retired.
func TestClosedLoopAcrossWorkerCounts(t *testing.T) {
	for _, workers := range []int{2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			life := &LifetimeConfig{
				Clock:       BatchClock{SecondsPerSample: 40},
				CanaryEvery: 2,
				Floor:       0.99,
				Window:      4,
				FlagAfter:   2,
			}
			out := runLifetimeScenario(t, workers, life, 48)
			if out.snap.Completed != 48 || out.snap.Failed != 0 {
				t.Fatalf("dropped work: %+v", out.snap)
			}
			lt := out.snap.Lifetime
			if lt.Recalibrations == 0 {
				t.Fatalf("no recalibration at workers=%d: trace %v", workers, out.trace)
			}
			if lt.Retired != 0 {
				t.Fatalf("unexpected retirement: %+v", lt)
			}
			for _, r := range lt.Replicas {
				if r.State != repActive {
					t.Fatalf("replica %d finished in state %q", r.ID, r.State)
				}
				if r.Recals > 0 && r.WindowAccuracy < life.Floor {
					t.Fatalf("replica %d recalibrated but window %.3f below floor", r.ID, r.WindowAccuracy)
				}
			}
		})
	}
}

// TestFallbackFailOpen: wear-driven stuck-at faults make recalibration
// insufficient, the replica retires, and the software fallback serves
// the remainder of the stream — zero client-visible errors, flagged in
// the stats block.
func TestFallbackFailOpen(t *testing.T) {
	model := zooModel(t, "MLP-S")
	life := &LifetimeConfig{
		Clock:       BatchClock{SecondsPerSample: 10},
		CanaryEvery: 2,
		Floor:       0.99,
		Window:      4,
		FlagAfter:   2,
		// Wear 0.004/s: by the first flag (age ~100 s) the stuck-off
		// population is large enough that recalibration cannot restore
		// the floor — permanent damage, retirement.
		FaultRatePerSecond: 0.004,
		FaultSeed:          5,
		Fallback:           model,
		FallbackWorkers:    1,
	}
	out := runLifetimeScenario(t, 1, life, 48)
	lt := out.snap.Lifetime
	if lt.Retired != 1 {
		t.Fatalf("replica not retired: %+v\ntrace: %v", lt, out.trace)
	}
	if lt.FallbackServed == 0 {
		t.Fatalf("fallback never served: %+v", lt)
	}
	if out.snap.Completed != 48 || out.snap.Failed != 0 {
		t.Fatalf("fail-open dropped work: %+v", out.snap)
	}
	// Fallback output is the exact software path.
	serial := model.CloneShared()
	xs := testInputs(t, model, 48, 99)
	last := xs[len(xs)-1]
	if want := serial.Predict(last.Clone()); out.classes[len(out.classes)-1] != want {
		t.Fatalf("fallback-served class %d != software %d", out.classes[len(out.classes)-1], want)
	}
}

// TestAllRetiredNoFallbackFailsLoudly: with fallback disabled, a fully
// retired fleet fails requests with ErrNoHealthyReplica instead of
// queueing them forever.
func TestAllRetiredNoFallbackFailsLoudly(t *testing.T) {
	model := zooModel(t, "MLP-S")
	hw, err := NewHardwareBackend(model, lifetimeCorner())
	if err != nil {
		t.Fatal(err)
	}
	canary, err := NewCanarySet(model, testInputs(t, model, 16, 33))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: hw, Workers: 1, MaxBatch: 4, Lifetime: &LifetimeConfig{
		Clock:              BatchClock{SecondsPerSample: 10},
		CanaryEvery:        2,
		Floor:              0.99,
		FlagAfter:          2,
		Canary:             canary,
		FaultRatePerSecond: 0.004,
		FaultSeed:          5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	xs := testInputs(t, model, 64, 99)
	var failed error
	for _, x := range xs {
		if _, err := s.Submit(x); err != nil {
			failed = err
			break
		}
	}
	if !errors.Is(failed, ErrNoHealthyReplica) {
		t.Fatalf("want ErrNoHealthyReplica after full retirement, got %v (lifetime %+v)",
			failed, s.Stats().Lifetime)
	}
	if s.Stats().Lifetime.Retired != 1 {
		t.Fatalf("replica not retired: %+v", s.Stats().Lifetime)
	}
}

// TestHealthWindowHysteresis pins the no-flap contract: isolated dips
// below the floor never flag, FlagAfter consecutive dips do, and the
// flag only clears via reset (post-recalibration).
func TestHealthWindowHysteresis(t *testing.T) {
	h := newHealthWindow(0.95, 4, 2)
	for i := 0; i < 10; i++ { // alternating dip/recover: never flags
		if h.observe(0.5) {
			t.Fatalf("flagged on isolated dip %d", i)
		}
		if h.observe(1.0) {
			t.Fatal("flagged on a healthy pass")
		}
	}
	h.observe(0.5)
	if !h.observe(0.5) { // second consecutive dip crosses FlagAfter
		t.Fatal("two consecutive dips did not flag")
	}
	if !h.observe(1.0) {
		t.Fatal("flag cleared by a single recovery — flapping")
	}
	h.reset()
	if h.flagged || h.below != 0 || len(h.recent) != 0 {
		t.Fatalf("reset left state behind: %+v", h)
	}
	if h.mean() != 1 {
		t.Fatalf("fresh window mean %v, want presumed-healthy 1", h.mean())
	}
}

// --- transient-error retry ----------------------------------------------

// flakyBackend fails the first attempt of every batch.
type flakyBackend struct {
	inner Backend
}

func (b *flakyBackend) Name() string      { return "flaky/" + b.inner.Name() }
func (b *flakyBackend) InputShape() []int { return b.inner.InputShape() }
func (b *flakyBackend) NewReplica() (Replica, error) {
	r, err := b.inner.NewReplica()
	if err != nil {
		return nil, err
	}
	return &flakyReplica{inner: r}, nil
}

type flakyReplica struct {
	inner Replica
	calls int
}

func (r *flakyReplica) RunBatch(xs []*tensor.Float, out []Prediction) error {
	r.calls++
	if r.calls%2 == 1 {
		return errors.New("transient hiccup")
	}
	return r.inner.RunBatch(xs, out)
}

// TestRetryAbsorbsTransientErrors: with MaxRetries, a replica that
// fails every first attempt still serves every request; without
// retries, clients see the errors.
func TestRetryAbsorbsTransientErrors(t *testing.T) {
	model := zooModel(t, "MLP-S")
	sw, err := NewSoftwareBackend(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: &flakyBackend{inner: sw}, MaxBatch: 4,
		MaxRetries: 2, RetryBackoff: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	for i, x := range testInputs(t, model, 8, 3) {
		if _, err := s.Submit(x); err != nil {
			t.Fatalf("request %d not absorbed by retry: %v", i, err)
		}
	}
	s.Stop()
	snap := s.Stats()
	if snap.Retried == 0 {
		t.Fatal("no retries recorded")
	}
	if snap.Failed != 0 || snap.Completed != 8 {
		t.Fatalf("accounting: %+v", snap)
	}

	// Control: no retries → client-visible failures.
	s2, err := New(Config{Backend: &flakyBackend{inner: sw}, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	sawErr := false
	for _, x := range testInputs(t, model, 4, 3) {
		if _, err := s2.Submit(x); err != nil {
			sawErr = true
		}
	}
	s2.Stop()
	if !sawErr {
		t.Fatal("flaky backend without retries never surfaced an error")
	}
}

// TestLifetimeRequiresAgingReplicas: lifetime mode on a software
// backend must fail fast at construction.
func TestLifetimeRequiresAgingReplicas(t *testing.T) {
	model := zooModel(t, "MLP-S")
	sw, err := NewSoftwareBackend(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	canary, err := NewCanarySet(model, testInputs(t, model, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{Backend: sw, Lifetime: &LifetimeConfig{
		Clock: BatchClock{SecondsPerSample: 1}, Canary: canary}})
	if err == nil {
		t.Fatal("software backend accepted in lifetime mode")
	}
}

// TestJitterClockDeterministic: same seed, same tick sequence.
func TestJitterClockDeterministic(t *testing.T) {
	mk := func() *JitterClock {
		c, err := NewJitterClock(BatchClock{SecondsPerSample: 1}, 0.2, 11)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for i := 0; i < 32; i++ {
		ta, tb := a.Tick(i%5+1), b.Tick(i%5+1)
		if ta != tb {
			t.Fatalf("tick %d: %g != %g", i, ta, tb)
		}
		base := float64(i%5 + 1)
		if ta < base*0.8 || ta > base*1.2 {
			t.Fatalf("tick %d: %g outside ±20%% of %g", i, ta, base)
		}
	}
	if _, err := NewJitterClock(nil, 0.1, 1); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, err := NewJitterClock(BatchClock{}, 1.5, 1); err == nil {
		t.Fatal("jitter ≥ 1 accepted")
	}
}
