package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"einsteinbarrier/internal/sim"
)

// routerUnderTest builds a started two-model router: MLP-S (784
// inputs) + CNN-M (3072 inputs), so routing is observable through the
// accepted shapes.
func routerUnderTest(t *testing.T) *Router {
	t.Helper()
	entries := make([]RouterEntry, 0, 2)
	for _, name := range []string{"MLP-S", "CNN-M"} {
		backend, err := NewSoftwareBackend(zooModel(t, name), 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Backend: backend, MaxBatch: 8, MaxWait: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, RouterEntry{Name: name, Server: s})
	}
	r, err := NewRouter(entries)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Stop)
	return r
}

func inferBody(t *testing.T, n int) string {
	t.Helper()
	input := make([]float64, n)
	for i := range input {
		input[i] = float64(i%13)/6.0 - 1
	}
	body, err := json.Marshal(InferRequest{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestRouterRoutesByModel(t *testing.T) {
	r := routerUnderTest(t)
	h := r.Handler()
	rec, out := doJSON(t, h, http.MethodPost, "/infer?model=MLP-S", inferBody(t, 784))
	if rec.Code != http.StatusOK {
		t.Fatalf("MLP-S: status %d: %v", rec.Code, out)
	}
	rec, out = doJSON(t, h, http.MethodPost, "/infer?model=CNN-M", inferBody(t, 3072))
	if rec.Code != http.StatusOK {
		t.Fatalf("CNN-M: status %d: %v", rec.Code, out)
	}
	// The wrong shape for the routed model is a 400, proving the request
	// reached CNN-M and not MLP-S.
	rec, _ = doJSON(t, h, http.MethodPost, "/infer?model=CNN-M", inferBody(t, 784))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong shape: status %d", rec.Code)
	}
	// Unknown model is 404; missing model with >1 served is 404 too.
	rec, _ = doJSON(t, h, http.MethodPost, "/infer?model=nope", inferBody(t, 784))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", rec.Code)
	}
	rec, _ = doJSON(t, h, http.MethodPost, "/infer", inferBody(t, 784))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("ambiguous model: status %d", rec.Code)
	}
}

func TestRouterSingleModelDefault(t *testing.T) {
	backend, err := NewSoftwareBackend(zooModel(t, "MLP-S"), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: backend, MaxBatch: 4, MaxWait: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter([]RouterEntry{{Name: "MLP-S", Server: s}})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()
	rec, out := doJSON(t, r.Handler(), http.MethodPost, "/infer", inferBody(t, 784))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
}

func TestRouterStatsAndModelsIncludeFabric(t *testing.T) {
	r := routerUnderTest(t)
	r.SetFabric(FabricSnapshot{
		Design: "EinsteinBarrier", Placer: "mesh", Batch: 64,
		AggregatePerSec: 1000, FairnessJain: 0.99,
		Models: []FabricModel{
			{Name: "MLP-S", Region: "n0 [0,0 4x1]", CoLocatedPerSec: 600, IsolatedPerSec: 610, SlowdownX: 1.016},
			{Name: "CNN-M", Region: "n0 [0,1 4x1]", CoLocatedPerSec: 400, IsolatedPerSec: 400, SlowdownX: 1},
		},
	})
	h := r.Handler()
	rec, out := doJSON(t, h, http.MethodGet, "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	models, ok := out["models"].(map[string]any)
	if !ok || len(models) != 2 {
		t.Fatalf("stats models = %v", out["models"])
	}
	fabric, ok := out["fabric"].(map[string]any)
	if !ok {
		t.Fatalf("no fabric block in %v", out)
	}
	if fabric["placer"] != "mesh" {
		t.Fatalf("fabric = %v", fabric)
	}
	mreq := httptest.NewRequest(http.MethodGet, "/models", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, mreq)
	if mrec.Code != http.StatusOK {
		t.Fatalf("models status %d", mrec.Code)
	}
	var list []map[string]any
	if err := json.Unmarshal(mrec.Body.Bytes(), &list); err != nil || len(list) != 2 {
		t.Fatalf("models payload %q (%v)", mrec.Body.String(), err)
	}
	if list[0]["region"] == "" {
		t.Fatalf("model region missing: %v", list[0])
	}
	rec, _ = doJSON(t, h, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
}

func TestNewFabricSnapshotFromSetResult(t *testing.T) {
	sr := &sim.SetResult{
		Batch:           32,
		AggregatePerSec: 123,
		FairnessJain:    0.9,
		Models: []sim.SetModelResult{
			{ModelName: "A", ThroughputPerSec: 10, IsolatedPerSec: 12, SlowdownX: 1.2, LatencyNs: 5},
		},
	}
	snap := NewFabricSnapshot("eb", "greedy", sr)
	if snap.Batch != 32 || len(snap.Models) != 1 || snap.Models[0].SlowdownX != 1.2 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestNewRouterRejectsBadEntries(t *testing.T) {
	if _, err := NewRouter(nil); err == nil {
		t.Fatal("empty router must error")
	}
	backend, err := NewSoftwareBackend(zooModel(t, "MLP-S"), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if _, err := NewRouter([]RouterEntry{{Name: "", Server: s}}); err == nil {
		t.Fatal("unnamed entry must error")
	}
	if _, err := NewRouter([]RouterEntry{{Name: "a", Server: s}, {Name: "a", Server: s}}); err == nil {
		t.Fatal("duplicate names must error")
	}
}

func TestRouterUnknownModel404(t *testing.T) {
	r := routerUnderTest(t)
	h := r.Handler()
	rec, out := doJSON(t, h, http.MethodPost, "/infer?model=ghost", inferBody(t, 784))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404: %v", rec.Code, out)
	}
	// The error names the offender and the served set.
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "ghost") || !strings.Contains(msg, "MLP-S") {
		t.Fatalf("404 body should name the model and the served set: %q", msg)
	}
	// Multi-model router: an omitted model cannot be defaulted.
	if rec, _ := doJSON(t, h, http.MethodPost, "/infer", inferBody(t, 784)); rec.Code != http.StatusNotFound {
		t.Fatalf("omitted model on multi-model router: status %d, want 404", rec.Code)
	}
	if rec, _ := doJSON(t, h, http.MethodGet, "/nope", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", rec.Code)
	}
}

func TestRouterStoppedServer(t *testing.T) {
	r := routerUnderTest(t)
	h := r.Handler()
	r.Stop()
	rec, _ := doJSON(t, h, http.MethodPost, "/infer?model=MLP-S", inferBody(t, 784))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("infer on stopped router: status %d, want 503", rec.Code)
	}
	rec, out := doJSON(t, h, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz on stopped router: status %d, want 503: %v", rec.Code, out)
	}
	models, ok := out["models"].(map[string]any)
	if !ok || models["MLP-S"] != "stopped" || models["CNN-M"] != "stopped" {
		t.Fatalf("healthz should report every model stopped: %v", out)
	}
	// Stats still answers on a stopped router (post-mortem inspection).
	if rec, _ := doJSON(t, h, http.MethodGet, "/stats", ""); rec.Code != http.StatusOK {
		t.Fatalf("stats on stopped router: status %d, want 200", rec.Code)
	}
}
