package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"einsteinbarrier/internal/tensor"
	"einsteinbarrier/internal/trace"
)

// JSON wire format of the /infer endpoint.

// InferRequest is the POST /infer body: a flat input vector of the
// backend's element count.
type InferRequest struct {
	Input []float64 `json:"input"`
}

// InferResponse is the /infer reply. RequestID is also echoed as the
// X-Request-ID response header (set at admission, before the batch is
// even formed, so timed-out connections still carry it) — the span id
// to look the request up by in a GET /trace export.
type InferResponse struct {
	RequestID int64     `json:"request_id"`
	Class     int       `json:"class"`
	Logits    []float64 `json:"logits"`
	BatchSize int       `json:"batch_size"`
	BatchSeq  int64     `json:"batch_seq"`
	QueueMs   float64   `json:"queue_ms"`
	LatencyMs float64   `json:"latency_ms"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the HTTP front end:
//
//	POST /infer   — run one inference through the dynamic batcher
//	GET  /stats   — metrics snapshot (Snapshot, JSON)
//	GET  /metrics — the same counters in Prometheus text exposition
//	GET  /trace   — Chrome-trace snapshot of the serving span ring
//	                (404 unless Config.Trace is set)
//	GET  /healthz — liveness + backend identity
//
// Overload (a shed request) maps to 503 with Retry-After, malformed
// input to 400 — load shedding is part of the API contract, not an
// internal failure.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /infer", s.handleInfer)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	var req InferRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(req.Input) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty input"})
		return
	}
	// Admission errors are this request's own fault (400/503); an error
	// on the reply channel is an execution failure inside the server
	// (500) — the distinction keeps backend faults from being blamed on
	// the client.
	ch, id, err := s.SubmitTraced(tensor.FromSlice(req.Input, len(req.Input)))
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "0")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("X-Request-ID", strconv.FormatInt(id, 10))
	// Honor the request context while waiting for the reply: a stuck or
	// slow replica must not hang the connection past the caller's
	// deadline. The request itself still completes server-side (it is
	// already batched); only this connection gives up.
	var rep Reply
	select {
	case rep = <-ch:
	case <-r.Context().Done():
		s.metrics.timedOut.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: fmt.Sprintf("request timed out: %v", r.Context().Err())})
		return
	}
	if rep.Err != nil {
		status := http.StatusInternalServerError
		if errors.Is(rep.Err, ErrNoHealthyReplica) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorBody{Error: rep.Err.Error()})
		return
	}
	res := rep.Result
	writeJSON(w, http.StatusOK, InferResponse{
		RequestID: res.RequestID,
		Class:     res.Class,
		Logits:    res.Logits,
		BatchSize: res.BatchSize,
		BatchSeq:  res.BatchSeq,
		QueueMs:   float64(res.QueueNs) * 1e-6,
		LatencyMs: float64(res.LatencyNs) * 1e-6,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteMetrics(w, s.Stats())
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Trace == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "tracing disabled: start the server with a trace recorder (ebserve -trace)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteChrome(w, s.cfg.Trace)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed, started := s.closed, s.started
	s.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	switch {
	case closed:
		status, state = http.StatusServiceUnavailable, "stopped"
	case !started:
		status, state = http.StatusServiceUnavailable, "not started"
	}
	writeJSON(w, status, map[string]any{
		"status":  state,
		"backend": s.cfg.Backend.Name(),
		"workers": len(s.replicas),
	})
}
