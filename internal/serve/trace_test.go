package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/compiler"
	"einsteinbarrier/internal/energy"
	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/trace"
)

// containsLine reports whether text has a line starting with want.
func containsLine(text, want string) bool {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, want) {
			return true
		}
	}
	return false
}

// pipelineEngine builds a sim engine without eval (which imports serve
// — an in-package test would cycle).
func pipelineEngine(t *testing.T, network string, d arch.Design) *sim.Engine {
	t.Helper()
	cfg := arch.DefaultConfig()
	simulator, err := sim.New(cfg, energy.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := compiler.Compile(zooModel(t, network), cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := simulator.NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// tracedServer builds a started software server with a span recorder
// and a sim pricer attached.
func tracedServer(t *testing.T, rec *trace.Recorder) *Server {
	t.Helper()
	model := zooModel(t, "MLP-S")
	backend, err := NewSoftwareBackend(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	pricer, err := NewPricer(pipelineEngine(t, "MLP-S", arch.EinsteinBarrier))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Backend: backend, MaxBatch: 4, MaxWait: 100 * time.Microsecond,
		Pricer: pricer, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)
	return s
}

// TestServeTraceSpans pins the span scheme: one async span per request
// with its admission-assigned id, batch slices whose sizes sum to the
// served total, and one pricer join per executed batch.
func TestServeTraceSpans(t *testing.T) {
	rec := trace.New(1024)
	s := tracedServer(t, rec)
	const n = 10
	for _, x := range testInputs(t, zooModel(t, "MLP-S"), n, 1) {
		res, err := s.Submit(x)
		if err != nil {
			t.Fatal(err)
		}
		if res.RequestID <= 0 {
			t.Fatalf("request id %d not assigned", res.RequestID)
		}
	}
	s.Stop()

	procs := rec.Processes()
	if len(procs) != 1 || procs[0].Name != "serve "+s.cfg.Backend.Name() {
		t.Fatalf("processes %+v", procs)
	}
	var spans, sliceN, prices int
	ids := map[int64]bool{}
	batchSeqs := map[int64]bool{}
	priceSeqs := map[int64]bool{}
	for _, e := range rec.Events() {
		switch {
		case e.Kind == trace.KindAsync && rec.Name(e.Name) == "request":
			spans++
			if ids[e.Seq] {
				t.Fatalf("duplicate request id %d", e.Seq)
			}
			ids[e.Seq] = true
			if e.Dur <= 0 || e.A < 0 {
				t.Fatalf("span %+v", e)
			}
		case e.Kind == trace.KindSlice && rec.Name(e.Name) == "batch":
			sliceN += int(e.A)
			batchSeqs[e.Seq] = true
		case e.Kind == trace.KindInstant && rec.Name(e.Name) == "sim-price":
			prices++
			priceSeqs[e.Seq] = true
			if e.A <= 0 {
				t.Fatalf("priced makespan %+v", e)
			}
		}
	}
	if spans != n || sliceN != n {
		t.Fatalf("spans %d, batch-slice samples %d, want %d each", spans, sliceN, n)
	}
	if prices != len(batchSeqs) {
		t.Fatalf("%d pricer joins for %d batches", prices, len(batchSeqs))
	}
	for seq := range priceSeqs {
		if !batchSeqs[seq] {
			t.Fatalf("pricer seq %d has no batch slice", seq)
		}
	}
	if rec.Dropped() != 0 {
		t.Fatalf("dropped %d events", rec.Dropped())
	}
}

// TestServeTraceRetryInstants pins retry attribution: a flaky replica's
// re-executions land as instants on the worker's track.
func TestServeTraceRetryInstants(t *testing.T) {
	rec := trace.New(256)
	sw, err := NewSoftwareBackend(zooModel(t, "MLP-S"), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: &flakyBackend{inner: sw}, MaxBatch: 4,
		MaxRetries: 2, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	for _, x := range testInputs(t, zooModel(t, "MLP-S"), 4, 2) {
		if _, err := s.Submit(x); err != nil {
			t.Fatal(err)
		}
	}
	s.Stop()
	var retries int
	for _, e := range rec.Events() {
		if e.Kind == trace.KindInstant && rec.Name(e.Name) == "retry" {
			retries++
		}
	}
	if retries == 0 {
		t.Fatal("no retry instants recorded")
	}
	if got := s.Stats().Retried; int64(retries) != got {
		t.Fatalf("%d retry instants, %d counted retries", retries, got)
	}
}

// TestHTTPTraceMetricsRequestID drives the three new HTTP surfaces:
// X-Request-ID on /infer, the Chrome-trace snapshot on /trace, and the
// Prometheus text exposition on /metrics.
func TestHTTPTraceMetricsRequestID(t *testing.T) {
	rec := trace.New(1024)
	s := tracedServer(t, rec)
	h := s.Handler()

	input := make([]float64, 784)
	for i := range input {
		input[i] = float64(i%13)/6.0 - 1
	}
	body, _ := json.Marshal(InferRequest{Input: input})
	r, out := doJSON(t, h, http.MethodPost, "/infer", string(body))
	if r.Code != http.StatusOK {
		t.Fatalf("status %d: %v", r.Code, out)
	}
	hdr := r.Header().Get("X-Request-ID")
	if hdr == "" {
		t.Fatal("no X-Request-ID header")
	}
	if want := strconv.FormatFloat(out["request_id"].(float64), 'f', -1, 64); hdr != want {
		t.Fatalf("X-Request-ID %q, body request_id %v", hdr, out["request_id"])
	}

	req, errBody := doJSON(t, h, http.MethodGet, "/trace", "")
	if req.Code != http.StatusOK {
		t.Fatalf("GET /trace: %d %v", req.Code, errBody)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(req.Body.Bytes(), &tr); err != nil {
		t.Fatalf("GET /trace not JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("empty trace snapshot after a served request")
	}
	if tr.OtherData["time_axis"] != "wall_ns_since_start" {
		t.Fatalf("otherData %v", tr.OtherData)
	}

	rm, _ := doJSON(t, h, http.MethodGet, "/metrics", "")
	if rm.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rm.Code)
	}
	if ct := rm.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	text := rm.Body.String()
	for _, want := range []string{
		"# TYPE eb_serve_accepted_total counter",
		"eb_serve_accepted_total 1",
		"eb_serve_completed_total 1",
		"eb_serve_fallback_served_total 0",
		`eb_serve_latency_seconds{quantile="0.99"}`,
		"# TYPE eb_serve_queue_depth gauge",
		"eb_serve_sim_ceiling_per_sec",
	} {
		if !containsLine(text, want) {
			t.Errorf("GET /metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestHTTPTraceDisabled404 pins the no-recorder contract.
func TestHTTPTraceDisabled404(t *testing.T) {
	s := httpServer(t) // no Config.Trace
	r, out := doJSON(t, s.Handler(), http.MethodGet, "/trace", "")
	if r.Code != http.StatusNotFound {
		t.Fatalf("GET /trace without a recorder: %d %v", r.Code, out)
	}
	if out["error"] == "" {
		t.Fatalf("no error body: %v", out)
	}
}

// TestRouterMetricsLabelsModels pins the fleet exposition: one model
// label per server, grouped per metric family, deterministic order.
func TestRouterMetricsLabelsModels(t *testing.T) {
	mkServer := func(network string) *Server {
		backend, err := NewSoftwareBackend(zooModel(t, network), 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Backend: backend, MaxBatch: 4, MaxWait: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	rt, err := NewRouter([]RouterEntry{
		{Name: "MLP-S", Server: mkServer("MLP-S")},
		{Name: "MLP-M", Server: mkServer("MLP-M")},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)

	r, _ := doJSON(t, rt.Handler(), http.MethodGet, "/metrics", "")
	if r.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", r.Code)
	}
	text := r.Body.String()
	for _, want := range []string{
		`eb_serve_accepted_total{model="MLP-M"} 0`,
		`eb_serve_accepted_total{model="MLP-S"} 0`,
		`eb_serve_latency_seconds{model="MLP-M",quantile="0.5"}`,
	} {
		if !containsLine(text, want) {
			t.Errorf("router /metrics missing %q in:\n%s", want, text)
		}
	}
	// Families must not repeat: each # TYPE line appears exactly once.
	if n := strings.Count(text, "# TYPE eb_serve_accepted_total counter"); n != 1 {
		t.Fatalf("family header repeated %d times", n)
	}

	// /trace routes through the model picker: no recorder → 404, unknown
	// model → 404 with the model list.
	if r, _ := doJSON(t, rt.Handler(), http.MethodGet, "/trace?model=MLP-S", ""); r.Code != http.StatusNotFound {
		t.Fatalf("traceless model /trace: %d", r.Code)
	}
	if r, out := doJSON(t, rt.Handler(), http.MethodGet, "/trace?model=nope", ""); r.Code != http.StatusNotFound || out["error"] == "" {
		t.Fatalf("unknown model /trace: %d %v", r.Code, out)
	}
}
