package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/crossbar"
	"einsteinbarrier/internal/tensor"
)

// timeNow is the wall clock for trace timestamps (a var for tests).
var timeNow = time.Now

// Device-lifetime serving: replicas age with served work, a canary
// stream detects drift-induced degradation, and a closed recalibration
// loop drains the flagged replica, re-programs its crossbar planes
// (priced in joules), and returns it to rotation — with optional
// fail-open software fallback when no hardware replica is available.
//
// Simulated time is *injected*, never read from the wall clock: a Clock
// turns each served batch into simulated device-seconds, so a lifetime
// scenario is a pure function of the request trace and the seeds (the
// clock injection rule — see DESIGN.md "Device lifetime").

// Clock converts served work into simulated device time.
type Clock interface {
	// Tick returns the simulated seconds that pass while one batch of n
	// samples is served.
	Tick(n int) float64
}

// BatchClock is the deterministic work-driven clock: every batch costs
// SecondsPerBatch plus SecondsPerSample per sample, so total simulated
// age is an exact function of served sample count regardless of how the
// batcher formed batches.
type BatchClock struct {
	SecondsPerBatch  float64
	SecondsPerSample float64
}

// Tick implements Clock.
func (c BatchClock) Tick(n int) float64 {
	return c.SecondsPerBatch + float64(n)*c.SecondsPerSample
}

// JitterClock wraps a base clock with seeded multiplicative jitter
// (uniform in [1-j, 1+j]) — still fully deterministic for a given seed
// and tick sequence, but no longer a pure function of sample count.
type JitterClock struct {
	base   Clock
	jitter float64
	rng    *rand.Rand
}

// NewJitterClock builds a seeded jittered clock. jitter must be in
// [0, 1).
func NewJitterClock(base Clock, jitter float64, seed int64) (*JitterClock, error) {
	if base == nil {
		return nil, fmt.Errorf("serve: jitter clock needs a base clock")
	}
	if jitter < 0 || jitter >= 1 {
		return nil, fmt.Errorf("serve: jitter %g outside [0,1)", jitter)
	}
	return &JitterClock{base: base, jitter: jitter, rng: rand.New(rand.NewSource(seed))}, nil
}

// Tick implements Clock. Not safe for concurrent use — serialize via a
// single worker or wrap externally.
func (c *JitterClock) Tick(n int) float64 {
	f := 1 + c.jitter*(2*c.rng.Float64()-1)
	return c.base.Tick(n) * f
}

// LifetimeConfig switches the server into device-lifetime mode.
type LifetimeConfig struct {
	// Clock drives simulated device ageing per served batch. Required.
	Clock Clock
	// CanaryEvery runs the canary probe after this many served batches
	// per replica (default 8).
	CanaryEvery int
	// Canary is the labeled probe set. Required.
	Canary *CanarySet
	// Floor is the canary accuracy below which a pass counts against
	// the replica (default 0.95).
	Floor float64
	// Window is the canary accuracies kept per replica (default 4).
	Window int
	// FlagAfter is the consecutive below-floor passes before the
	// replica is flagged for recalibration (default 2) — the hysteresis.
	FlagAfter int
	// Fallback, when non-nil, enables fail-open: a software replica of
	// this model serves whenever no hardware replica is in rotation.
	Fallback *bnn.Model
	// FallbackWorkers sizes the fallback infer pool (< 1: one per CPU).
	FallbackWorkers int
	// FaultRatePerSecond, when > 0, grows a stuck-OFF defect population
	// with device wear: at total wear w seconds the stuck-off rate is
	// min(0.5, FaultRatePerSecond·w), re-drawn from FaultSeed so the
	// population only ever grows. Recalibration cannot heal it.
	FaultRatePerSecond float64
	FaultSeed          int64
}

func (c *LifetimeConfig) withDefaults() *LifetimeConfig {
	out := *c
	if out.CanaryEvery <= 0 {
		out.CanaryEvery = 8
	}
	if out.Floor <= 0 {
		out.Floor = 0.95
	}
	if out.Window <= 0 {
		out.Window = 4
	}
	if out.FlagAfter <= 0 {
		out.FlagAfter = 2
	}
	return &out
}

func (c *LifetimeConfig) validate() error {
	if c.Clock == nil {
		return fmt.Errorf("serve: lifetime mode needs a Clock")
	}
	if c.Canary == nil {
		return fmt.Errorf("serve: lifetime mode needs a CanarySet")
	}
	if c.FaultRatePerSecond < 0 {
		return fmt.Errorf("serve: negative fault arrival rate")
	}
	return nil
}

// Replica lifecycle states.
const (
	repActive        = "active"
	repRecalibrating = "recalibrating"
	repRetired       = "retired"
)

// replicaLife is one replica's lifecycle record. The age/wear/health
// fields are touched only by the replica's own worker goroutine; the
// snapshot copy is taken under the lifetime mutex, which the worker
// also holds while publishing.
type replicaLife struct {
	state      string
	age        float64 // simulated seconds since last (re)programming
	wear       float64 // simulated seconds since manufacture (never resets)
	sinceCan   int     // batches since the last canary pass
	health     *healthWindow
	canaryRuns int64
	recals     int64
	energyPJ   float64
	latencyNs  float64
	faultRate  float64
	faultCells int
}

// CanaryPoint is one canary observation — the accuracy-over-time trace.
type CanaryPoint struct {
	// Replica is the worker/replica index.
	Replica int `json:"replica"`
	// ServedSamples is the fleet-wide completed sample count when the
	// probe ran — the trace's time axis.
	ServedSamples int64 `json:"served_samples"`
	// AgeSeconds is the replica's simulated device age at the probe.
	AgeSeconds float64 `json:"age_seconds"`
	// Accuracy against the canary labels.
	Accuracy float64 `json:"accuracy"`
	// Flagged: the probe left the replica flagged for recalibration.
	Flagged bool `json:"flagged"`
	// PostRecal: the probe ran immediately after a recalibration.
	PostRecal bool `json:"post_recal"`
}

// ReplicaLife is the exported per-replica lifecycle view.
type ReplicaLife struct {
	ID             int     `json:"id"`
	State          string  `json:"state"`
	AgeSeconds     float64 `json:"age_seconds"`
	WearSeconds    float64 `json:"wear_seconds"`
	CanaryRuns     int64   `json:"canary_runs"`
	LastCanary     float64 `json:"last_canary_accuracy"`
	WindowAccuracy float64 `json:"window_accuracy"`
	Flagged        bool    `json:"flagged"`
	Recals         int64   `json:"recalibrations"`
	RecalEnergyPJ  float64 `json:"recal_energy_pj"`
	FaultCells     int     `json:"fault_cells"`
}

// LifetimeSnapshot is the lifetime block of /stats.
type LifetimeSnapshot struct {
	Replicas       []ReplicaLife `json:"replicas"`
	Recalibrations int64         `json:"recalibrations"`
	RecalEnergyPJ  float64       `json:"recal_energy_pj"`
	RecalLatencyNs float64       `json:"recal_latency_ns"`
	Retired        int           `json:"retired"`
	// FallbackServed counts samples served by the software fail-open
	// path (0 when fallback is disabled or never engaged).
	FallbackServed int64 `json:"fallback_served"`
	FallbackActive bool  `json:"fallback_active"`
}

// lifetime is the server-side lifecycle controller.
type lifetime struct {
	cfg *LifetimeConfig
	// tr mirrors the server's trace state (nil when tracing is off):
	// canary probes, drain/recalibration windows and retirements land
	// on the owning worker's track.
	tr *serveTrace

	mu     sync.Mutex
	cond   *sync.Cond // signaled when `active` drops (fallback gate)
	reps   []replicaLife
	active int // replicas currently in rotation
	alive  int // replicas not permanently retired
	trace  []CanaryPoint

	// dead is closed when every replica is retired and no fallback
	// exists — the batcher fails batches instead of blocking forever.
	dead        chan struct{}
	hasFallback bool

	draining       atomic.Int64 // replicas currently out of rotation recalibrating
	drainTail      atomic.Int64 // post-recal batches still attributed to the drain window
	servedSamples  atomic.Int64
	fallbackServed atomic.Int64
	fallbackBusy   atomic.Bool
}

func newLifetime(cfg *LifetimeConfig, workers int) *lifetime {
	l := &lifetime{
		cfg:         cfg,
		reps:        make([]replicaLife, workers),
		active:      workers,
		alive:       workers,
		dead:        make(chan struct{}),
		hasFallback: cfg.Fallback != nil,
	}
	l.cond = sync.NewCond(&l.mu)
	for i := range l.reps {
		l.reps[i].state = repActive
		l.reps[i].health = newHealthWindow(cfg.Floor, cfg.Window, cfg.FlagAfter)
	}
	return l
}

// inDrain reports whether the current batch should be attributed to a
// drain window: a replica is out of rotation right now, or the batch is
// within the short post-recalibration tail (requests that queued behind
// the drain).
func (l *lifetime) inDrain() bool {
	if l.draining.Load() > 0 {
		return true
	}
	for {
		t := l.drainTail.Load()
		if t <= 0 {
			return false
		}
		if l.drainTail.CompareAndSwap(t, t-1) {
			return true
		}
	}
}

// workerExit is deferred by every workLoop: it removes the worker from
// rotation at shutdown so the fallback gate cannot wait on a goroutine
// that no longer exists.
func (l *lifetime) workerExit(id int) {
	l.mu.Lock()
	if l.reps[id].state == repActive {
		l.active--
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// setState publishes a worker's rotation transition.
func (l *lifetime) setState(id int, state string) {
	l.mu.Lock()
	prev := l.reps[id].state
	l.reps[id].state = state
	if prev == repActive && state != repActive {
		l.active--
		l.cond.Broadcast()
	}
	if prev != repActive && state == repActive {
		l.active++
	}
	if state == repRetired {
		l.alive--
		if l.alive == 0 && !l.hasFallback {
			close(l.dead) // no consumer will ever return: fail open loudly
		}
	}
	l.mu.Unlock()
}

func (l *lifetime) record(p CanaryPoint) {
	l.mu.Lock()
	l.trace = append(l.trace, p)
	l.mu.Unlock()
}

// afterBatch runs the lifecycle for one replica after it served a
// batch of n samples: advance the simulated clock, periodically probe
// the canary (and grow the wear-driven fault population), and on a
// flagged health window drain + recalibrate + return (or retire when
// recalibration cannot restore the floor). Returns true when the
// replica retired — its worker leaves the rotation for good.
//
// All mutation of reps[id] happens on the replica's own worker
// goroutine; cross-goroutine visibility is via the lifetime mutex in
// setState/snapshot.
func (l *lifetime) afterBatch(id int, rep Replica, n int) bool {
	lr := rep.(LifetimeReplica) // enforced at server construction
	st := &l.reps[id]
	l.servedSamples.Add(int64(n))
	dt := l.cfg.Clock.Tick(n)
	if dt > 0 {
		lr.Age(dt)
	}
	l.mu.Lock()
	st.age += dt
	st.wear += dt
	st.sinceCan++
	due := st.sinceCan >= l.cfg.CanaryEvery
	if due {
		st.sinceCan = 0
	}
	l.mu.Unlock()
	if !due {
		return false
	}

	// Wear-driven fault arrival: the stuck-off population grows with
	// total wear; a fixed seed makes growth monotone (a faulted cell
	// stays faulted at every higher rate).
	if l.cfg.FaultRatePerSecond > 0 {
		rate := l.cfg.FaultRatePerSecond * st.wear
		if rate > 0.5 {
			rate = 0.5
		}
		if rate > st.faultRate {
			cells, err := lr.InjectFaults(crossbar.FaultModel{StuckOffRate: rate, Seed: l.cfg.FaultSeed})
			if err == nil {
				l.mu.Lock()
				st.faultRate = rate
				st.faultCells = cells
				l.mu.Unlock()
			}
		}
	}

	acc, err := l.cfg.Canary.Evaluate(rep)
	if err != nil {
		acc = 0 // a replica that cannot serve the canary is unhealthy
	}
	l.mu.Lock()
	st.canaryRuns++
	flagged := st.health.observe(acc)
	l.mu.Unlock()
	probe := CanaryPoint{Replica: id, ServedSamples: l.servedSamples.Load(),
		AgeSeconds: st.age, Accuracy: acc, Flagged: flagged}
	l.record(probe)
	if l.tr != nil {
		l.tr.canary(id, probe)
	}
	if !flagged {
		return false
	}

	// --- drain & recalibrate -------------------------------------------
	// The worker stops pulling batches (out of rotation) simply by
	// running the recalibration inline; its in-flight batch already
	// completed above, so nothing is dropped — the drain protocol.
	l.setState(id, repRecalibrating)
	l.draining.Add(1)
	recalBegan := timeNow()
	report := lr.Recalibrate()
	post, err := l.cfg.Canary.Evaluate(rep)
	if err != nil {
		post = 0
	}
	l.mu.Lock()
	st.age = 0
	st.recals++
	st.energyPJ += report.EnergyPJ
	st.latencyNs += report.LatencyNs
	st.health.reset()
	st.health.observe(post)
	st.canaryRuns++
	l.mu.Unlock()
	l.draining.Add(-1)
	l.record(CanaryPoint{Replica: id, ServedSamples: l.servedSamples.Load(),
		AgeSeconds: 0, Accuracy: post, PostRecal: true})
	if l.tr != nil {
		l.tr.recal(id, recalBegan, post)
	}
	if post < l.cfg.Floor {
		// Recalibration cannot restore the floor (permanent damage —
		// e.g. accumulated stuck-at faults): retire the replica.
		l.setState(id, repRetired)
		if l.tr != nil {
			l.tr.retired(id)
		}
		return true
	}
	l.drainTail.Add(2) // attribute the queued-behind-drain batches too
	l.setState(id, repActive)
	return false
}

// snapshot assembles the lifetime block.
func (l *lifetime) snapshot() *LifetimeSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := &LifetimeSnapshot{
		Replicas:       make([]ReplicaLife, len(l.reps)),
		FallbackServed: l.fallbackServed.Load(),
		FallbackActive: l.fallbackBusy.Load(),
	}
	for i := range l.reps {
		st := &l.reps[i]
		out.Replicas[i] = ReplicaLife{
			ID:             i,
			State:          st.state,
			AgeSeconds:     st.age,
			WearSeconds:    st.wear,
			CanaryRuns:     st.canaryRuns,
			LastCanary:     st.health.last,
			WindowAccuracy: st.health.mean(),
			Flagged:        st.health.flagged,
			Recals:         st.recals,
			RecalEnergyPJ:  st.energyPJ,
			FaultCells:     st.faultCells,
		}
		out.Recalibrations += st.recals
		out.RecalEnergyPJ += st.energyPJ
		out.RecalLatencyNs += st.latencyNs
		if st.state == repRetired {
			out.Retired++
		}
	}
	return out
}

// Trace returns a copy of the canary accuracy-over-time trace (nil when
// lifetime mode is off).
func (s *Server) Trace() []CanaryPoint {
	if s.life == nil {
		return nil
	}
	s.life.mu.Lock()
	defer s.life.mu.Unlock()
	return append([]CanaryPoint(nil), s.life.trace...)
}

// fallbackLoop is the fail-open path: a software replica that consumes
// batches only while no hardware replica is in rotation (all draining,
// recalibrating, or retired). Served samples are counted separately so
// /stats flags the degraded mode.
func (s *Server) fallbackLoop(rep Replica) {
	defer s.wg.Done()
	l := s.life
	var (
		xs    []*tensor.Float
		preds []Prediction
	)
	for {
		l.mu.Lock()
		for l.active > 0 {
			l.cond.Wait()
		}
		l.mu.Unlock()
		l.fallbackBusy.Store(true)
		job, ok := <-s.batches
		if !ok {
			l.fallbackBusy.Store(false)
			return
		}
		s.serveBatch(-1, rep, job, &xs, &preds, true)
		l.fallbackServed.Add(int64(len(job.reqs)))
		l.fallbackBusy.Store(false)
	}
}
