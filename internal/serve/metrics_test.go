package serve

import (
	"math"
	"testing"
)

// TestHistogramBuckets pins the log-linear bucket math: indexes are
// monotone, every value lands in a bucket whose upper bound is ≥ the
// value, and the relative overestimate is within the 1/32 design bound.
func TestHistogramBuckets(t *testing.T) {
	values := []int64{0, 1, 2, 31, 32, 63, 64, 65, 127, 128, 1000, 4096, 1e6, 1e9, 123456789, math.MaxInt64}
	prev := -1
	for _, v := range []int64{0, 1, 5, 63, 64, 100, 1024, 1 << 20} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
	}
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histSize {
			t.Fatalf("v=%d: bucket %d out of range [0,%d)", v, idx, histSize)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("v=%d: bucket upper %d < value", v, up)
		}
		if v >= histExact {
			if float64(up-v) > float64(v)/16 {
				t.Fatalf("v=%d: upper %d overestimates by more than 1/16", v, up)
			}
		} else if up != v {
			t.Fatalf("v=%d: exact bucket reports %d", v, up)
		}
	}
	// Adjacent buckets tile the value axis without gaps.
	for idx := 0; idx < 500; idx++ {
		if next := bucketIndex(bucketUpper(idx) + 1); next != idx+1 {
			t.Fatalf("bucket %d upper+1 lands in %d, want %d", idx, next, idx+1)
		}
	}
}

// TestQuantiles feeds a known population and checks the SLO numbers.
func TestQuantiles(t *testing.T) {
	m := newMetrics()
	// 1..100 ms, one observation each.
	for i := 1; i <= 100; i++ {
		m.observeLatency(int64(i) * 1e6)
	}
	m.batchServed(100, true)
	s := m.snapshot("test", 0)
	if s.Completed != 100 || s.Batches != 1 || s.MeanBatch != 100 {
		t.Fatalf("counters wrong: %+v", s)
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if got < want || got > want*1.05 {
			t.Fatalf("%s = %v ms, want within [%v, %v]", name, got, want, want*1.05)
		}
	}
	check("p50", s.Latency.P50, 50)
	check("p95", s.Latency.P95, 95)
	check("p99", s.Latency.P99, 99)
	if s.Latency.Max != 100 {
		t.Fatalf("max = %v, want exactly 100 (tracked outside the histogram)", s.Latency.Max)
	}
	if s.Latency.P50 > s.Latency.P95 || s.Latency.P95 > s.Latency.P99 || s.Latency.P99 > s.Latency.Max {
		t.Fatalf("quantiles not ordered: %+v", s.Latency)
	}
}

// TestEmptySnapshot: a fresh metrics block reports zeros, not NaNs.
func TestEmptySnapshot(t *testing.T) {
	s := newMetrics().snapshot("test", 0)
	for name, v := range map[string]float64{
		"shed rate": s.ShedRate, "mean batch": s.MeanBatch,
		"throughput": s.ThroughputPerSec, "p99": s.Latency.P99,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v != 0 {
			t.Fatalf("%s = %v on empty metrics, want 0", name, v)
		}
	}
}
