package serve_test

import (
	"math/rand"
	"testing"
	"time"

	"einsteinbarrier/internal/arch"
	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/eval"
	"einsteinbarrier/internal/serve"
	"einsteinbarrier/internal/tensor"
)

// This test lives in an external test package: it wires the serving
// layer to eval.Pipeline, and eval itself imports serve (RunLifetime),
// which an in-package test file would turn into an import cycle.

func zooModel(t testing.TB, name string) *bnn.Model {
	t.Helper()
	m, err := bnn.NewModel(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testInputs(t testing.TB, m *bnn.Model, n int, seed int64) []*tensor.Float {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.Float, n)
	for i := range xs {
		x := tensor.NewFloat(m.InputShape...)
		for j := range x.Data() {
			x.Data()[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	return xs
}

// TestSimThroughputApproachesCeiling is the acceptance pin: a saturated
// stream forms full batches, and the per-batch sim pricing of those
// batches approaches the analytic pipeline ceiling of the design —
// the online counterpart of eval.ThroughputAt.
func TestSimThroughputApproachesCeiling(t *testing.T) {
	model := zooModel(t, "CNN-S")
	eng, err := eval.Pipeline(eval.DefaultConfig(), model, arch.EinsteinBarrier)
	if err != nil {
		t.Fatal(err)
	}
	pricer, err := serve.NewPricer(eng)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := serve.NewSoftwareBackend(model, 0)
	if err != nil {
		t.Fatal(err)
	}
	const maxBatch, n = 256, 512
	s, err := serve.New(serve.Config{
		Backend:  backend,
		MaxBatch: maxBatch,
		MaxWait:  time.Hour,
		QueueCap: n,
		Pricer:   pricer,
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := testInputs(t, model, 16, 3)
	chans := make([]<-chan serve.Reply, n)
	for i := 0; i < n; i++ {
		ch, err := s.SubmitAsync(xs[i%len(xs)])
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	s.Start()
	for i, ch := range chans {
		if rep := <-ch; rep.Err != nil {
			t.Fatalf("reply %d: %v", i, rep.Err)
		}
	}
	s.Stop()

	sim := s.Stats().Sim
	if sim == nil {
		t.Fatal("no sim snapshot with a pricer attached")
	}
	if sim.Samples != n || sim.Batches != n/maxBatch {
		t.Fatalf("priced %d samples in %d batches, want %d in %d", sim.Samples, sim.Batches, n, n/maxBatch)
	}
	// The saturated stream produced only full batches, so the achieved
	// simulated throughput equals RunBatch(MaxBatch) exactly…
	want, err := eng.RunBatch(maxBatch)
	if err != nil {
		t.Fatal(err)
	}
	if rel := (sim.PerSec - want.ThroughputPerSec) / want.ThroughputPerSec; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("sim throughput %v, want %v (rel %v)", sim.PerSec, want.ThroughputPerSec, rel)
	}
	// …and approaches the analytic steady-state ceiling.
	if sim.CeilingPerSec <= 0 || sim.PerSec < 0.9*sim.CeilingPerSec {
		t.Fatalf("sim throughput %v is below 90%% of ceiling %v (bottleneck %s)",
			sim.PerSec, sim.CeilingPerSec, sim.Bottleneck)
	}
	if sim.MeanEnergyPJ <= 0 || sim.LatencyNs <= 0 {
		t.Fatalf("sim snapshot missing energy/latency: %+v", sim)
	}
}
