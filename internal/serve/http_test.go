package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"einsteinbarrier/internal/bnn"
	"einsteinbarrier/internal/tensor"
)

// httpServer builds a started software server with a fast flush.
func httpServer(t *testing.T) *Server {
	t.Helper()
	model := zooModel(t, "MLP-S")
	backend, err := NewSoftwareBackend(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: backend, MaxBatch: 8, MaxWait: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)
	return s
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec, out
}

func TestHTTPInferHappyPath(t *testing.T) {
	s := httpServer(t)
	h := s.Handler()
	input := make([]float64, 784)
	for i := range input {
		input[i] = float64(i%13)/6.0 - 1
	}
	body, _ := json.Marshal(InferRequest{Input: input})
	rec, out := doJSON(t, h, http.MethodPost, "/infer", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	logits, ok := out["logits"].([]any)
	if !ok || len(logits) == 0 {
		t.Fatalf("no logits in %v", out)
	}
	if _, ok := out["class"].(float64); !ok {
		t.Fatalf("no class in %v", out)
	}
	if bs := out["batch_size"].(float64); bs < 1 {
		t.Fatalf("batch_size %v", bs)
	}
	if lat := out["latency_ms"].(float64); lat <= 0 {
		t.Fatalf("latency_ms %v", lat)
	}
}

func TestHTTPInferErrors(t *testing.T) {
	s := httpServer(t)
	h := s.Handler()
	for name, tc := range map[string]struct {
		method, path, body string
		want               int
	}{
		"bad json":      {http.MethodPost, "/infer", "{nope", http.StatusBadRequest},
		"unknown field": {http.MethodPost, "/infer", `{"inputs":[1]}`, http.StatusBadRequest},
		"empty input":   {http.MethodPost, "/infer", `{"input":[]}`, http.StatusBadRequest},
		"wrong size":    {http.MethodPost, "/infer", `{"input":[1,2,3]}`, http.StatusBadRequest},
		"wrong method":  {http.MethodGet, "/infer", "", http.StatusMethodNotAllowed},
		"unknown path":  {http.MethodGet, "/nope", "", http.StatusNotFound},
	} {
		rec, _ := doJSON(t, h, tc.method, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d", name, rec.Code, tc.want)
		}
	}
}

func TestHTTPStatsAndHealthz(t *testing.T) {
	s := httpServer(t)
	h := s.Handler()
	// Serve one request so the stats are non-trivial.
	input := make([]float64, 784)
	body, _ := json.Marshal(InferRequest{Input: input})
	if rec, out := doJSON(t, h, http.MethodPost, "/infer", string(body)); rec.Code != http.StatusOK {
		t.Fatalf("infer failed: %d %v", rec.Code, out)
	}

	rec, out := doJSON(t, h, http.MethodGet, "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	if out["completed"].(float64) != 1 || out["accepted"].(float64) != 1 {
		t.Fatalf("stats counters wrong: %v", out)
	}
	if _, ok := out["latency_ms"].(map[string]any); !ok {
		t.Fatalf("stats missing latency block: %v", out)
	}
	if out["backend"] != "software/MLP-S" {
		t.Fatalf("backend %v", out["backend"])
	}

	rec, out = doJSON(t, h, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", rec.Code, out)
	}
}

// hangBackend's replicas block on a gate until it is closed — it pins
// the HTTP deadline path without depending on wall-clock slop.
type hangBackend struct {
	model *bnn.Model
	gate  chan struct{}
}

func (b *hangBackend) Name() string      { return "hang" }
func (b *hangBackend) InputShape() []int { return b.model.InputShape }
func (b *hangBackend) NewReplica() (Replica, error) {
	return &hangReplica{gate: b.gate}, nil
}

type hangReplica struct{ gate chan struct{} }

func (r *hangReplica) RunBatch(xs []*tensor.Float, out []Prediction) error {
	<-r.gate
	for i := range out {
		out[i] = Prediction{Class: 0, Logits: []float64{0}}
	}
	return nil
}

func TestHTTPInferTimeout(t *testing.T) {
	model := zooModel(t, "MLP-S")
	gate := make(chan struct{})
	s, err := New(Config{Backend: &hangBackend{model: model, gate: gate}, MaxBatch: 1, MaxWait: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)

	input := make([]float64, 784)
	body, _ := json.Marshal(InferRequest{Input: input})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(string(body))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()

	// Wait until the request is actually admitted, then hang up the
	// connection while the replica is still stuck on the gate.
	waitFor(t, "request admitted", func() bool { return s.Stats().Accepted == 1 })
	cancel()
	<-done
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", rec.Code, rec.Body.String())
	}
	if got := s.Stats().TimedOut; got != 1 {
		t.Fatalf("TimedOut = %d, want 1", got)
	}

	// The batch was already dispatched: releasing the replica completes
	// it server-side even though the connection is gone.
	close(gate)
	waitFor(t, "abandoned request completed", func() bool { return s.Stats().Completed == 1 })
}

// waitFor polls cond with a deadline so a broken invariant fails the
// test instead of hanging it.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHTTPServiceUnavailableWhenStopped(t *testing.T) {
	s := httpServer(t)
	h := s.Handler()
	s.Stop()
	body := fmt.Sprintf(`{"input":[%s1]}`, strings.Repeat("1,", 783))
	rec, _ := doJSON(t, h, http.MethodPost, "/infer", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("infer on stopped server: %d, want 503", rec.Code)
	}
	rec, out := doJSON(t, h, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusServiceUnavailable || out["status"] != "stopped" {
		t.Fatalf("healthz on stopped server: %d %v", rec.Code, out)
	}
}
