package serve

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Latency histogram: log-linear buckets, 32 sub-buckets per power of
// two (quantile upper-bound error ≤ ~3%), bounded memory no matter how
// long the server runs. Values below 64ns land in exact unit buckets.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits                   // 32
	histExact   = 2 * histSub                        // exact buckets for v < 64
	histSize    = (63-histSubBits)*histSub + histSub // e ≤ 63 ⇒ idx < histSize
)

// bucketIndex maps a non-negative latency (ns) to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histExact {
		return int(u)
	}
	e := bits.Len64(u) // ≥ histSubBits+2
	sub := (u >> (e - 1 - histSubBits)) & (histSub - 1)
	return (e-histSubBits)*histSub + int(sub)
}

// bucketUpper is the inclusive upper bound of a bucket — the value
// reported for quantiles, so SLO numbers are conservative.
func bucketUpper(idx int) int64 {
	if idx < histExact {
		return int64(idx)
	}
	e := idx/histSub + histSubBits
	sub := uint64(idx % histSub)
	lo := uint64(1)<<(e-1) | sub<<(e-1-histSubBits)
	return int64(lo + 1<<(e-1-histSubBits) - 1)
}

// metrics is the server's accounting block. Admission counters are
// atomics (hit on every Submit); the histogram and batch counters are
// guarded by a mutex taken once per batch / reply.
type metrics struct {
	start time.Time

	accepted atomic.Int64
	shed     atomic.Int64
	rejected atomic.Int64
	timedOut atomic.Int64
	retries  atomic.Int64

	mu        sync.Mutex
	completed int64
	failed    int64
	batches   int64
	sumBatch  int64
	maxNs     int64
	total     int64
	hist      [histSize]int64
	// Drain-window latencies (lifetime mode): requests served while a
	// replica was out of rotation, or queued behind a drain.
	drainMaxNs int64
	drainTotal int64
	drainHist  [histSize]int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// batchServed records one executed batch.
func (m *metrics) batchServed(n int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.sumBatch += int64(n)
	if ok {
		m.completed += int64(n)
	} else {
		m.failed += int64(n)
	}
}

// observeLatency records one request's enqueue→reply latency.
func (m *metrics) observeLatency(ns int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hist[bucketIndex(ns)]++
	m.total++
	if ns > m.maxNs {
		m.maxNs = ns
	}
}

// observeDrainLatency additionally attributes a latency to the drain
// window (the request was served while a replica was being drained or
// recalibrated).
func (m *metrics) observeDrainLatency(ns int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drainHist[bucketIndex(ns)]++
	m.drainTotal++
	if ns > m.drainMaxNs {
		m.drainMaxNs = ns
	}
}

// histQuantileNs returns the q-quantile upper bound of a histogram.
// Callers hold mu.
func histQuantileNs(hist *[histSize]int64, total, maxNs int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, c := range hist {
		cum += c
		if cum >= rank {
			// The bucket upper bound can overshoot the true maximum by
			// the bucket width; the exact max is tracked separately.
			return min(bucketUpper(i), maxNs)
		}
	}
	return maxNs
}

// quantileNs returns the q-quantile latency upper bound. Callers hold mu.
func (m *metrics) quantileNs(q float64) int64 {
	return histQuantileNs(&m.hist, m.total, m.maxNs, q)
}

// LatencyMs is the latency SLO block of a Snapshot, in milliseconds.
type LatencyMs struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Snapshot is a point-in-time view of the serving metrics.
type Snapshot struct {
	// Backend names the execution engine.
	Backend string `json:"backend"`
	// UptimeSec counts from the server's construction.
	UptimeSec float64 `json:"uptime_sec"`
	// Admission accounting: Accepted entered the queue; Shed were
	// refused by a full queue (ErrOverloaded); Rejected failed shape
	// validation.
	Accepted int64 `json:"accepted"`
	Shed     int64 `json:"shed"`
	Rejected int64 `json:"rejected"`
	// TimedOut counts HTTP requests whose context deadline expired
	// before the reply (504s); the request itself still completed
	// server-side. Retried counts batch re-executions after transient
	// replica errors. FallbackServed counts samples answered by the
	// fail-open software path (lifetime mode; also inside the Lifetime
	// block — surfaced here so the cumulative counters read uniformly
	// on /metrics).
	TimedOut       int64 `json:"timed_out"`
	Retried        int64 `json:"retried"`
	FallbackServed int64 `json:"fallback_served"`
	// ShedRate is Shed / (Accepted + Shed).
	ShedRate float64 `json:"shed_rate"`
	// Completed/Failed counts replies; Batches the dispatched batches;
	// MeanBatch the mean dynamic batch size — the scheduling decision
	// the arrival rate made.
	Completed int64   `json:"completed"`
	Failed    int64   `json:"failed"`
	Batches   int64   `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	// QueueDepth is the instantaneous admission-queue length.
	QueueDepth int `json:"queue_depth"`
	// ThroughputPerSec is Completed over uptime (wall clock).
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// Latency quantiles (enqueue→reply, histogram upper bounds).
	Latency LatencyMs `json:"latency_ms"`
	// DrainLatency quantiles over requests served inside a drain window
	// (lifetime mode; nil when no drain has been observed) — the SLO
	// view of recalibration pressure.
	DrainLatency *LatencyMs `json:"drain_latency_ms,omitempty"`
	// DrainServed counts the requests attributed to drain windows.
	DrainServed int64 `json:"drain_served,omitempty"`
	// Sim is the simulated-accelerator view when a Pricer is attached.
	Sim *SimSnapshot `json:"sim,omitempty"`
	// Lifetime is the device-lifetime block when lifetime mode is on.
	Lifetime *LifetimeSnapshot `json:"lifetime,omitempty"`
}

// snapshot assembles a Snapshot.
func (m *metrics) snapshot(backend string, queueDepth int) Snapshot {
	accepted, shed := m.accepted.Load(), m.shed.Load()
	s := Snapshot{
		Backend:    backend,
		Accepted:   accepted,
		Shed:       shed,
		Rejected:   m.rejected.Load(),
		TimedOut:   m.timedOut.Load(),
		Retried:    m.retries.Load(),
		QueueDepth: queueDepth,
	}
	if accepted+shed > 0 {
		s.ShedRate = float64(shed) / float64(accepted+shed)
	}
	if !m.start.IsZero() {
		s.UptimeSec = time.Since(m.start).Seconds()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s.Completed, s.Failed, s.Batches = m.completed, m.failed, m.batches
	if m.batches > 0 {
		s.MeanBatch = float64(m.sumBatch) / float64(m.batches)
	}
	if s.UptimeSec > 0 {
		s.ThroughputPerSec = float64(m.completed) / s.UptimeSec
	}
	const msPerNs = 1e-6
	s.Latency = LatencyMs{
		P50: float64(m.quantileNs(0.50)) * msPerNs,
		P95: float64(m.quantileNs(0.95)) * msPerNs,
		P99: float64(m.quantileNs(0.99)) * msPerNs,
		Max: float64(m.maxNs) * msPerNs,
	}
	if m.drainTotal > 0 {
		s.DrainServed = m.drainTotal
		s.DrainLatency = &LatencyMs{
			P50: float64(histQuantileNs(&m.drainHist, m.drainTotal, m.drainMaxNs, 0.50)) * msPerNs,
			P95: float64(histQuantileNs(&m.drainHist, m.drainTotal, m.drainMaxNs, 0.95)) * msPerNs,
			P99: float64(histQuantileNs(&m.drainHist, m.drainTotal, m.drainMaxNs, 0.99)) * msPerNs,
			Max: float64(m.drainMaxNs) * msPerNs,
		}
	}
	return s
}
