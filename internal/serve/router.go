package serve

import (
	"fmt"
	"net/http"
	"sort"

	"einsteinbarrier/internal/sim"
)

// Multi-model serving. A Router fronts several models that share ONE
// accelerator fabric: the compiler co-located them into disjoint tile
// regions (compiler.CompileSet) and the shared-fabric pipeline engine
// (sim.EngineSet) quantified what the co-location costs each of them.
// Requests pick their model with ?model=... and flow through that
// model's dynamic batcher; /stats reports every model's serving metrics
// next to the fabric-level co-location snapshot, so operators see
// per-tenant throughput AND the interference behind it in one place.

// RouterEntry names one served model.
type RouterEntry struct {
	Name   string
	Server *Server
}

// FabricModel is one co-located model's fabric-level accounting.
type FabricModel struct {
	Name   string `json:"name"`
	Region string `json:"region"`
	// LatencyNs is the single-inference critical path on the fabric.
	LatencyNs float64 `json:"latency_ns"`
	// CoLocatedPerSec / IsolatedPerSec are the pipelined throughput with
	// and without the neighbours; SlowdownX their ratio.
	CoLocatedPerSec float64 `json:"colocated_per_sec"`
	IsolatedPerSec  float64 `json:"isolated_per_sec"`
	SlowdownX       float64 `json:"slowdown_x"`
	// LinkWaitNs is the model's NoC stall under co-location.
	LinkWaitNs float64 `json:"link_wait_ns"`
}

// FabricSnapshot is the shared-fabric co-location report served under
// /stats.
type FabricSnapshot struct {
	Design string `json:"design"`
	Placer string `json:"placer"`
	// Batch is the per-model depth the snapshot was measured at.
	Batch int `json:"batch"`
	// AggregatePerSec is the fabric's total delivered rate at that
	// depth; FairnessJain the Jain index over normalized per-model
	// rates; InterferenceWaitNs the co-location-added NoC stall.
	AggregatePerSec    float64       `json:"aggregate_per_sec"`
	FairnessJain       float64       `json:"fairness_jain"`
	InterferenceWaitNs float64       `json:"interference_wait_ns"`
	Models             []FabricModel `json:"models"`
}

// NewFabricSnapshot converts a co-located engine-set run into the
// /stats wire form.
func NewFabricSnapshot(design, placer string, sr *sim.SetResult) FabricSnapshot {
	out := FabricSnapshot{
		Design:             design,
		Placer:             placer,
		Batch:              sr.Batch,
		AggregatePerSec:    sr.AggregatePerSec,
		FairnessJain:       sr.FairnessJain,
		InterferenceWaitNs: sr.InterferenceWaitNs,
	}
	for _, m := range sr.Models {
		out.Models = append(out.Models, FabricModel{
			Name:            m.ModelName,
			Region:          m.Region.String(),
			LatencyNs:       m.LatencyNs,
			CoLocatedPerSec: m.ThroughputPerSec,
			IsolatedPerSec:  m.IsolatedPerSec,
			SlowdownX:       m.SlowdownX,
			LinkWaitNs:      m.LinkWaitNs,
		})
	}
	return out
}

// Router routes requests to co-located model servers.
type Router struct {
	entries []RouterEntry
	byName  map[string]*Server
	fabric  *FabricSnapshot
}

// NewRouter builds a router over named servers. Names must be unique
// and non-empty.
func NewRouter(entries []RouterEntry) (*Router, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one model")
	}
	r := &Router{entries: entries, byName: make(map[string]*Server, len(entries))}
	for _, e := range entries {
		if e.Name == "" || e.Server == nil {
			return nil, fmt.Errorf("serve: router entry needs a name and a server")
		}
		if _, dup := r.byName[e.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate model %q", e.Name)
		}
		r.byName[e.Name] = e.Server
	}
	return r, nil
}

// SetFabric attaches the shared-fabric co-location snapshot to /stats.
func (r *Router) SetFabric(snap FabricSnapshot) { r.fabric = &snap }

// Server returns the named model's server (the lone server when only
// one model is routed and name is empty).
func (r *Router) Server(name string) (*Server, bool) {
	if name == "" && len(r.entries) == 1 {
		return r.entries[0].Server, true
	}
	s, ok := r.byName[name]
	return s, ok
}

// Names lists the served models, sorted.
func (r *Router) Names() []string {
	out := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Start launches every model server.
func (r *Router) Start() {
	for _, e := range r.entries {
		e.Server.Start()
	}
}

// Stop drains every model server.
func (r *Router) Stop() {
	for _, e := range r.entries {
		e.Server.Stop()
	}
}

// Handler returns the multi-model HTTP front end:
//
//	POST /infer?model=NAME — run one inference through NAME's batcher
//	                         (model may be omitted with a single model)
//	GET  /models           — served models and their backends
//	GET  /stats            — per-model snapshots + shared-fabric report
//	GET  /metrics          — every model's counters in Prometheus text,
//	                         one model="NAME" label per sample
//	GET  /trace?model=NAME — a model server's serving-trace snapshot
//	GET  /healthz          — aggregate liveness
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /infer", r.handleInfer)
	mux.HandleFunc("GET /models", r.handleModels)
	mux.HandleFunc("GET /stats", r.handleStats)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /trace", r.handleTrace)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	return mux
}

func (r *Router) pick(w http.ResponseWriter, req *http.Request) (*Server, bool) {
	name := req.URL.Query().Get("model")
	s, ok := r.Server(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{
			Error: fmt.Sprintf("unknown model %q (serving %v)", name, r.Names()),
		})
		return nil, false
	}
	return s, true
}

func (r *Router) handleInfer(w http.ResponseWriter, req *http.Request) {
	// Route, then delegate to the model server's own handler so the
	// single- and multi-model paths share one admission/error contract.
	if s, ok := r.pick(w, req); ok {
		s.handleInfer(w, req)
	}
}

func (r *Router) handleModels(w http.ResponseWriter, _ *http.Request) {
	type modelInfo struct {
		Name    string `json:"name"`
		Backend string `json:"backend"`
		Region  string `json:"region,omitempty"`
	}
	out := make([]modelInfo, 0, len(r.entries))
	regions := map[string]string{}
	if r.fabric != nil {
		for _, fm := range r.fabric.Models {
			regions[fm.Name] = fm.Region
		}
	}
	for _, e := range r.entries {
		out = append(out, modelInfo{
			Name:    e.Name,
			Backend: e.Server.cfg.Backend.Name(),
			Region:  regions[e.Name],
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// RouterStats is the /stats payload.
type RouterStats struct {
	Models map[string]Snapshot `json:"models"`
	Fabric *FabricSnapshot     `json:"fabric,omitempty"`
}

// Stats snapshots every model server plus the fabric report.
func (r *Router) Stats() RouterStats {
	out := RouterStats{Models: make(map[string]Snapshot, len(r.entries)), Fabric: r.fabric}
	for _, e := range r.entries {
		out.Models[e.Name] = e.Server.Stats()
	}
	return out
}

func (r *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats())
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteFleetMetrics(w, r.Stats().Models)
}

func (r *Router) handleTrace(w http.ResponseWriter, req *http.Request) {
	if s, ok := r.pick(w, req); ok {
		s.handleTrace(w, req)
	}
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	states := make(map[string]string, len(r.entries))
	status := http.StatusOK
	for _, e := range r.entries {
		e.Server.mu.Lock()
		closed, started := e.Server.closed, e.Server.started
		e.Server.mu.Unlock()
		switch {
		case closed:
			states[e.Name] = "stopped"
			status = http.StatusServiceUnavailable
		case !started:
			states[e.Name] = "not started"
			status = http.StatusServiceUnavailable
		default:
			states[e.Name] = "ok"
		}
	}
	writeJSON(w, status, map[string]any{"models": states})
}
