package serve

import (
	"strconv"
	"time"

	"einsteinbarrier/internal/sim"
	"einsteinbarrier/internal/trace"
)

// Serving-side trace instrumentation. When Config.Trace carries a
// recorder, the server emits per-request spans and per-worker batch
// slices onto it — wall-clock nanoseconds since server construction as
// the time axis (the same origin the metrics block uses), so a serving
// trace and a /stats window describe the same interval.
//
// Track scheme:
//
//	requests       one async span per request (id = request ID):
//	               span start = admission, end = reply; args carry the
//	               queue wait and the batch that served it
//	worker N       one slice per executed batch (Seq = batch sequence,
//	               A = batch size); retry instants; lifetime lifecycle
//	               events (canary counters, recalibrate slices, retire
//	               instants) for the replica the worker owns
//	fallback       same, for the fail-open software replica
//	sim pricer     one instant per priced batch joining the serving
//	               timeline to the engine's model: A = the simulated
//	               makespan the design would have needed for the batch
//
// This is a sliding window over live traffic: the ring keeps the
// newest events (Dropped counts overwrites), and GET /trace snapshots
// it without stopping the server. Unlike the engine's simulated-time
// traces, wall-clock spans are NOT deterministic — the deterministic
// joins are the batch sequence numbers, which the engine-side pricer
// events share.

// serveTrace is the per-server emission state.
type serveTrace struct {
	r     *trace.Recorder
	start time.Time

	requests int32   // async request spans
	workers  []int32 // per-worker batch tracks
	fallback int32   // fail-open replica track
	pricer   int32   // sim join track

	reqNm      int32
	batchNm    int32
	retryNm    int32
	fallbackNm int32
	priceNm    int32
	canaryNm   int32
	flaggedNm  int32
	recalNm    int32
	retiredNm  int32
}

// newServeTrace registers the server's tracks. start is the metrics
// epoch, so span timestamps and Snapshot.UptimeSec share an origin.
func newServeTrace(r *trace.Recorder, backend string, workers int, hasFallback, hasPricer bool, start time.Time) *serveTrace {
	t := &serveTrace{r: r, start: start}
	proc := r.AddProcess("serve " + backend)
	t.requests = r.AddTrack(proc, "requests")
	for w := 0; w < workers; w++ {
		t.workers = append(t.workers, r.AddTrack(proc, "worker "+strconv.Itoa(w)))
	}
	if hasFallback {
		t.fallback = r.AddTrack(proc, "fallback")
	}
	if hasPricer {
		t.pricer = r.AddTrack(proc, "sim pricer")
	}
	t.reqNm = r.Intern("request")
	t.batchNm = r.Intern("batch")
	t.retryNm = r.Intern("retry")
	t.fallbackNm = r.Intern("fallback-batch")
	t.priceNm = r.Intern("sim-price")
	t.canaryNm = r.Intern("canary")
	t.flaggedNm = r.Intern("flagged")
	t.recalNm = r.Intern("recalibrate")
	t.retiredNm = r.Intern("retired")
	r.SetMeta("backend", backend)
	r.SetMeta("time_axis", "wall_ns_since_start")
	return t
}

// sinceNs converts a wall-clock instant to the trace's time axis.
func (t *serveTrace) sinceNs(at time.Time) float64 {
	return float64(at.Sub(t.start).Nanoseconds())
}

// workerTrack maps a worker id to its track (-1 = the fallback replica).
func (t *serveTrace) workerTrack(worker int) int32 {
	if worker < 0 {
		return t.fallback
	}
	return t.workers[worker]
}

// request emits one completed request's span: admission → reply, with
// the queue wait and the serving batch as args.
func (t *serveTrace) request(id int64, enq time.Time, latencyNs, queueNs, batchSeq int64) {
	t.r.Emit(trace.Event{
		Kind: trace.KindAsync, Track: t.requests, Name: t.reqNm,
		Seq: id, Start: t.sinceNs(enq), Dur: float64(latencyNs),
		A: float64(queueNs), B: float64(batchSeq),
	})
}

// batch emits one executed batch's service slice on its worker track.
func (t *serveTrace) batch(worker int, seq int64, dispatched time.Time, durNs int64, n int, viaFallback bool) {
	name := t.batchNm
	if viaFallback {
		name = t.fallbackNm
	}
	t.r.Emit(trace.Event{
		Kind: trace.KindSlice, Track: t.workerTrack(worker), Name: name,
		Seq: seq, Start: t.sinceNs(dispatched), Dur: float64(durNs), A: float64(n),
	})
}

// retry marks one batch re-execution after a replica error.
func (t *serveTrace) retry(worker int, seq int64, attempt int) {
	t.r.Emit(trace.Event{
		Kind: trace.KindInstant, Track: t.workerTrack(worker), Name: t.retryNm,
		Seq: seq, Start: t.sinceNs(time.Now()), A: float64(attempt),
	})
}

// price joins a served batch to the engine's simulated view: A is the
// makespan the traced design would have needed for this batch size.
func (t *serveTrace) price(seq int64, n int, br *sim.BatchResult) {
	if br == nil {
		return
	}
	t.r.Emit(trace.Event{
		Kind: trace.KindInstant, Track: t.pricer, Name: t.priceNm,
		Seq: seq, Start: t.sinceNs(time.Now()), A: br.MakespanNs, B: float64(n),
	})
}

// canary emits one lifetime canary probe as a counter on the replica's
// worker track (value = accuracy, B = device age).
func (t *serveTrace) canary(worker int, p CanaryPoint) {
	name := t.canaryNm
	if p.Flagged {
		name = t.flaggedNm
	}
	t.r.Emit(trace.Event{
		Kind: trace.KindCounter, Track: t.workerTrack(worker), Name: name,
		Seq: p.ServedSamples, Start: t.sinceNs(time.Now()), A: p.Accuracy, B: p.AgeSeconds,
	})
}

// recal emits the drain+recalibration window as a slice (A = the
// post-recalibration canary accuracy).
func (t *serveTrace) recal(worker int, began time.Time, post float64) {
	start := t.sinceNs(began)
	t.r.Emit(trace.Event{
		Kind: trace.KindSlice, Track: t.workerTrack(worker), Name: t.recalNm,
		Start: start, Dur: t.sinceNs(time.Now()) - start, A: post,
	})
}

// retired marks a replica's permanent exit from rotation.
func (t *serveTrace) retired(worker int) {
	t.r.Emit(trace.Event{
		Kind: trace.KindInstant, Track: t.workerTrack(worker), Name: t.retiredNm,
		Start: t.sinceNs(time.Now()),
	})
}
