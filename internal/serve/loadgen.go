package serve

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"einsteinbarrier/internal/tensor"
)

// Load generation: an embedded open-loop Poisson generator (arrivals
// keep coming whether or not the server keeps up — the regime where
// admission control matters) and a closed-loop generator (each client
// waits for its reply — the regime that measures service capacity).
// Arrival schedules and payload selection are seeded, so two runs of
// the same sweep offer the identical request sequence; wall-clock
// latencies still vary with the host, which is why the simulated
// accelerator view (Pricer) is the reproducible half of the report.

// LoadConfig parameterizes one load-generation run.
type LoadConfig struct {
	// Rate > 0 selects the open-loop Poisson generator at that many
	// requests/s; Rate == 0 selects the closed loop.
	Rate float64
	// Clients is the closed-loop concurrency (default 4; ignored when
	// Rate > 0).
	Clients int
	// Requests is the total number of arrivals (required).
	Requests int
	// Seed drives the arrival schedule.
	Seed int64
	// Arrivals, when non-empty, is an explicit open-loop arrival
	// schedule (offsets from the run start); it overrides Rate/Seed and
	// must have at least Requests entries. See DiurnalSchedule.
	Arrivals []time.Duration
	// Inputs are the request payloads, cycled in arrival order
	// (required — see SyntheticInputs).
	Inputs []*tensor.Float
}

func (c LoadConfig) validate() error {
	switch {
	case c.Requests <= 0:
		return fmt.Errorf("serve: loadgen needs Requests > 0, got %d", c.Requests)
	case len(c.Inputs) == 0:
		return fmt.Errorf("serve: loadgen needs at least one input payload")
	case c.Rate < 0:
		return fmt.Errorf("serve: negative arrival rate %g", c.Rate)
	case len(c.Arrivals) > 0 && len(c.Arrivals) < c.Requests:
		return fmt.Errorf("serve: %d arrivals for %d requests", len(c.Arrivals), c.Requests)
	}
	return nil
}

// LoadReport is the outcome of one run.
type LoadReport struct {
	// OfferedPerSec echoes the open-loop rate (0 for closed loop).
	OfferedPerSec float64 `json:"offered_per_sec"`
	// DurationSec is first arrival to last reply.
	DurationSec float64 `json:"duration_sec"`
	// AchievedPerSec is Completed / Duration.
	AchievedPerSec float64 `json:"achieved_per_sec"`
	// Completed / Shed / Failed partition the Requests.
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Failed    int64 `json:"failed"`
	// Stats is the server's metrics snapshot at the end of the run.
	Stats Snapshot `json:"stats"`
}

// Schedule returns the deterministic open-loop arrival offsets for a
// seed: n exponential inter-arrival gaps at the given rate, summed into
// offsets from the run start. Identical (seed, rate, n) → identical
// schedule, on any host.
func Schedule(seed int64, rate float64, n int) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / rate
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}

// DiurnalSchedule returns deterministic arrival offsets for a
// rate-modulated (nonhomogeneous) Poisson process: the instantaneous
// rate swings sinusoidally between baseRate and peakRate over the given
// period, starting at the trough. Arrivals are drawn by Lewis–Shedler
// thinning of a homogeneous peakRate process, so identical arguments
// give the identical schedule on any host — the diurnal counterpart of
// Schedule.
func DiurnalSchedule(seed int64, baseRate, peakRate float64, period time.Duration, n int) ([]time.Duration, error) {
	switch {
	case baseRate <= 0:
		return nil, fmt.Errorf("serve: diurnal base rate %g must be > 0", baseRate)
	case peakRate < baseRate:
		return nil, fmt.Errorf("serve: diurnal peak rate %g below base %g", peakRate, baseRate)
	case period <= 0:
		return nil, fmt.Errorf("serve: diurnal period %v must be > 0", period)
	case n <= 0:
		return nil, fmt.Errorf("serve: diurnal schedule needs n > 0, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, 0, n)
	t := 0.0
	ps := period.Seconds()
	for len(out) < n {
		t += rng.ExpFloat64() / peakRate
		// rate(t): trough at t=0, crest at t=period/2.
		rate := baseRate + (peakRate-baseRate)*0.5*(1-math.Cos(2*math.Pi*t/ps))
		if rng.Float64()*peakRate <= rate {
			out = append(out, time.Duration(t*float64(time.Second)))
		}
	}
	return out, nil
}

// Run drives one server with one load configuration. The server is
// started if it was not already; it is left running (callers own Stop)
// so sweeps can inspect it afterwards.
func Run(s *Server, cfg LoadConfig) (LoadReport, error) {
	if err := cfg.validate(); err != nil {
		return LoadReport{}, err
	}
	s.Start()
	var completed, shed, failed atomic.Int64
	submit := func(i int) {
		_, err := s.Submit(cfg.Inputs[i%len(cfg.Inputs)])
		switch {
		case err == nil:
			completed.Add(1)
		case errors.Is(err, ErrOverloaded):
			shed.Add(1)
		default:
			failed.Add(1)
		}
	}
	begin := time.Now()
	var wg sync.WaitGroup
	schedule := cfg.Arrivals
	if len(schedule) == 0 && cfg.Rate > 0 {
		schedule = Schedule(cfg.Seed, cfg.Rate, cfg.Requests)
	}
	if len(schedule) > 0 {
		for i, off := range schedule[:cfg.Requests] {
			if d := time.Until(begin.Add(off)); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				submit(i)
			}(i)
		}
	} else {
		clients := cfg.Clients
		if clients < 1 {
			clients = 4
		}
		if clients > cfg.Requests {
			clients = cfg.Requests
		}
		wg.Add(clients)
		for c := 0; c < clients; c++ {
			go func(c int) {
				defer wg.Done()
				// Client c issues arrivals c, c+clients, c+2·clients, …
				for i := c; i < cfg.Requests; i += clients {
					submit(i)
				}
			}(c)
		}
	}
	wg.Wait()
	dur := time.Since(begin).Seconds()
	rep := LoadReport{
		OfferedPerSec: cfg.Rate,
		DurationSec:   dur,
		Completed:     completed.Load(),
		Shed:          shed.Load(),
		Failed:        failed.Load(),
		Stats:         s.Stats(),
	}
	if dur > 0 {
		rep.AchievedPerSec = float64(rep.Completed) / dur
	}
	return rep, nil
}

// RatePoint is one arrival rate of a sweep.
type RatePoint struct {
	RatePerSec float64    `json:"rate_per_sec"`
	Report     LoadReport `json:"report"`
}

// SweepRates runs the open-loop generator at every rate, each against a
// fresh server from newServer (fresh metrics, fresh queue), and returns
// the latency–throughput curve. Rates at or beyond the backend's
// capacity show shedding engaging while tail latency stays bounded by
// the queue depth — the overload half of the SLO story.
func SweepRates(newServer func() (*Server, error), rates []float64, base LoadConfig) ([]RatePoint, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("serve: sweep needs at least one rate")
	}
	out := make([]RatePoint, 0, len(rates))
	for _, rate := range rates {
		if rate <= 0 {
			return nil, fmt.Errorf("serve: sweep rate %g must be > 0", rate)
		}
		s, err := newServer()
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.Rate = rate
		rep, err := Run(s, cfg)
		s.Stop()
		if err != nil {
			return nil, err
		}
		out = append(out, RatePoint{RatePerSec: rate, Report: rep})
	}
	return out, nil
}

// SyntheticInputs builds n seeded request payloads of the given element
// count, in the flat wire format the HTTP front end uses.
func SyntheticInputs(size, n int, seed int64) []*tensor.Float {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Float, n)
	for i := range out {
		x := tensor.NewFloat(size)
		for j := range x.Data() {
			x.Data()[j] = rng.NormFloat64()
		}
		out[i] = x
	}
	return out
}

// WriteLoadCSV emits one row per sweep point.
func WriteLoadCSV(w io.Writer, points []RatePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"rate_per_sec", "achieved_per_sec", "completed", "shed", "failed",
		"shed_rate", "mean_batch", "p50_ms", "p95_ms", "p99_ms", "max_ms",
		"sim_per_sec", "sim_ceiling_per_sec", "sim_energy_pj",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		st := p.Report.Stats
		simPerSec, simCeil, simPJ := 0.0, 0.0, 0.0
		if st.Sim != nil {
			simPerSec, simCeil, simPJ = st.Sim.PerSec, st.Sim.CeilingPerSec, st.Sim.MeanEnergyPJ
		}
		if err := cw.Write([]string{
			f(p.RatePerSec), f(p.Report.AchievedPerSec),
			d(p.Report.Completed), d(p.Report.Shed), d(p.Report.Failed),
			f(st.ShedRate), f(st.MeanBatch),
			f(st.Latency.P50), f(st.Latency.P95), f(st.Latency.P99), f(st.Latency.Max),
			f(simPerSec), f(simCeil), f(simPJ),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLoadJSON emits the sweep as indented JSON.
func WriteLoadJSON(w io.Writer, points []RatePoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}

// LoadTable renders a sweep as an aligned text table.
func LoadTable(points []RatePoint) string {
	var sb []byte
	app := func(s string) { sb = append(sb, s...) }
	app("Latency–throughput curve (open-loop Poisson arrivals)\n")
	app(fmt.Sprintf("%-12s %12s %10s %8s %10s %9s %9s %9s %12s %12s\n",
		"rate/s", "achieved/s", "completed", "shed", "mean batch",
		"p50 ms", "p95 ms", "p99 ms", "sim inf/s", "sim ceiling"))
	for _, p := range points {
		st := p.Report.Stats
		simPerSec, simCeil := 0.0, 0.0
		if st.Sim != nil {
			simPerSec, simCeil = st.Sim.PerSec, st.Sim.CeilingPerSec
		}
		app(fmt.Sprintf("%-12.0f %12.0f %10d %8d %10.1f %9.3f %9.3f %9.3f %12.0f %12.0f\n",
			p.RatePerSec, p.Report.AchievedPerSec, p.Report.Completed, p.Report.Shed,
			st.MeanBatch, st.Latency.P50, st.Latency.P95, st.Latency.P99,
			simPerSec, simCeil))
	}
	return string(sb)
}

// BatchPoint is one dynamic-batcher size cap of a MaxBatch sweep.
type BatchPoint struct {
	MaxBatch int        `json:"max_batch"`
	Report   LoadReport `json:"report"`
}

// SweepMaxBatch runs the closed-loop generator against a fresh server
// for every MaxBatch cap and returns the throughput curve. This is the
// software-batching story: the bit-parallel forward path packs up to 64
// samples into each machine word, so the software backend's throughput
// climbs with the batcher's size cap until a lane word is full. The
// closed loop keeps 2×MaxBatch clients in flight (unless base.Clients
// is set), so each point measures the backend at its own saturation
// batch size rather than an arrival-rate artifact.
func SweepMaxBatch(newServer func(maxBatch int) (*Server, error), maxBatches []int, base LoadConfig) ([]BatchPoint, error) {
	if len(maxBatches) == 0 {
		return nil, fmt.Errorf("serve: sweep needs at least one MaxBatch")
	}
	out := make([]BatchPoint, 0, len(maxBatches))
	for _, mb := range maxBatches {
		if mb < 1 {
			return nil, fmt.Errorf("serve: MaxBatch %d must be ≥ 1", mb)
		}
		s, err := newServer(mb)
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.Rate = 0
		if cfg.Clients == 0 {
			cfg.Clients = 2 * mb
		}
		rep, err := Run(s, cfg)
		s.Stop()
		if err != nil {
			return nil, err
		}
		out = append(out, BatchPoint{MaxBatch: mb, Report: rep})
	}
	return out, nil
}

// WriteBatchJSON emits the MaxBatch sweep as indented JSON.
func WriteBatchJSON(w io.Writer, points []BatchPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}

// BatchTable renders a MaxBatch sweep as an aligned text table.
func BatchTable(points []BatchPoint) string {
	var sb []byte
	app := func(s string) { sb = append(sb, s...) }
	app("Throughput vs dynamic-batch cap (closed loop, bit-parallel software path)\n")
	app(fmt.Sprintf("%-10s %12s %10s %10s %9s %9s %9s %12s\n",
		"max-batch", "achieved/s", "completed", "mean batch",
		"p50 ms", "p95 ms", "p99 ms", "sim inf/s"))
	for _, p := range points {
		st := p.Report.Stats
		simPerSec := 0.0
		if st.Sim != nil {
			simPerSec = st.Sim.PerSec
		}
		app(fmt.Sprintf("%-10d %12.0f %10d %10.1f %9.3f %9.3f %9.3f %12.0f\n",
			p.MaxBatch, p.Report.AchievedPerSec, p.Report.Completed,
			st.MeanBatch, st.Latency.P50, st.Latency.P95, st.Latency.P99, simPerSec))
	}
	return string(sb)
}

// WriteBatchCSV emits one row per MaxBatch point.
func WriteBatchCSV(w io.Writer, points []BatchPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"max_batch", "achieved_per_sec", "completed", "shed", "failed",
		"mean_batch", "p50_ms", "p95_ms", "p99_ms", "sim_per_sec",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		st := p.Report.Stats
		simPerSec := 0.0
		if st.Sim != nil {
			simPerSec = st.Sim.PerSec
		}
		if err := cw.Write([]string{
			strconv.Itoa(p.MaxBatch), f(p.Report.AchievedPerSec), d(p.Report.Completed),
			d(p.Report.Shed), d(p.Report.Failed), f(st.MeanBatch),
			f(st.Latency.P50), f(st.Latency.P95), f(st.Latency.P99), f(simPerSec),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
