// Package serve is the online serving subsystem: it turns a live
// request stream into dynamically sized inference batches and reports
// tail latency against the pipeline ceiling the offline sweeps
// (eval.ThroughputAt) make measurable.
//
// The pieces:
//
//   - a deadline-aware dynamic batcher: requests are collected until
//     either MaxBatch is reached or MaxWait has elapsed since the first
//     request of the batch, whichever comes first;
//   - admission control: a bounded queue sheds load when full
//     (ErrOverloaded) instead of letting latency grow without bound,
//     with shed-count accounting in the metrics block;
//   - pluggable backends (Backend): SoftwareBackend runs the exact
//     bitops fast path through the internal/infer pool; HardwareBackend
//     runs the binary layers on simulated analog crossbars
//     (robust.HardwareModel);
//   - optional per-batch accelerator pricing (Pricer): every served
//     batch is priced by sim.Engine.RunBatch, so a live stream reports
//     simulated latency/energy/throughput for a selected design;
//   - a snapshot-able metrics block (Snapshot): throughput, p50/p95/p99
//     /max latency, mean batch size, queue depth, shed rate.
//
// Batch boundaries are a scheduling decision, not a constant: under
// light load the MaxWait deadline flushes small batches (latency-bound
// regime), under saturation every batch fills to MaxBatch and the
// simulated throughput approaches the pipeline's analytic ceiling
// (throughput-bound regime). The loadgen (loadgen.go) sweeps arrival
// rates across both regimes.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"einsteinbarrier/internal/tensor"
	"einsteinbarrier/internal/trace"
)

// Admission errors. ErrOverloaded is retryable (the queue was full at
// arrival time); ErrClosed is not.
var (
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	ErrClosed     = errors.New("serve: server is stopped")
	// ErrNoHealthyReplica fails batches when every hardware replica has
	// been retired and no software fallback is configured (lifetime
	// mode) — fail loudly rather than queue forever.
	ErrNoHealthyReplica = errors.New("serve: no healthy replica")
)

// Config parameterizes a Server.
type Config struct {
	// Backend executes the batches. Required.
	Backend Backend
	// MaxBatch is the dispatch size cap (default 64).
	MaxBatch int
	// MaxWait is how long the batcher holds a non-full batch, measured
	// from the enqueue of its first request (default 500µs). 0 means
	// dispatch greedily: a batch is whatever is queued at drain time.
	MaxWait time.Duration
	// QueueCap bounds the admission queue (default 4×MaxBatch). A full
	// queue sheds new requests with ErrOverloaded.
	QueueCap int
	// Workers is the number of batch executors, each owning an
	// independent backend replica (default 1). More than one worker
	// lets batches overlap, at the cost of out-of-order completion.
	Workers int
	// Pricer, when non-nil, prices every served batch on the simulated
	// accelerator (see NewPricer).
	Pricer *Pricer
	// MaxRetries re-runs a failed batch on its replica up to this many
	// extra times before failing the requests (default 0: no retries) —
	// transient-fault absorption at the batcher layer.
	MaxRetries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt (default 0: immediate).
	RetryBackoff time.Duration
	// Lifetime, when non-nil, turns on device-lifetime mode: replicas
	// age with served work, canary probes detect degradation, and a
	// closed loop drains + recalibrates flagged replicas. Requires every
	// replica to implement LifetimeReplica (i.e. a hardware backend).
	Lifetime *LifetimeConfig
	// Trace, when non-nil, records per-request spans, per-worker batch
	// slices, retry/drain/fallback transitions and sim-pricer joins
	// into the shared trace ring (internal/trace) — snapshot it live
	// via GET /trace. The ring keeps the newest events under overflow.
	Trace *trace.Recorder
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Lifetime != nil {
		c.Lifetime = c.Lifetime.withDefaults()
	}
	return c
}

// Result is one request's reply.
type Result struct {
	// RequestID is the admission-assigned identity of the request —
	// echoed as X-Request-ID over HTTP and used as the span id in the
	// serving trace.
	RequestID int64
	// Class is the argmax prediction; Logits the full output vector.
	Class  int
	Logits []float64
	// BatchSize is the size of the dynamic batch that served the
	// request; BatchSeq its dispatch sequence number (0-based).
	BatchSize int
	BatchSeq  int64
	// QueueNs is enqueue→dispatch, LatencyNs enqueue→reply.
	QueueNs   int64
	LatencyNs int64
}

// Reply pairs a Result with its error, for the async submit path.
type Reply struct {
	Result Result
	Err    error
}

// request is one queued inference.
type request struct {
	id    int64
	x     *tensor.Float
	enq   time.Time
	reply chan Reply
}

// batchJob is one dispatched batch: the batcher stamps the sequence
// number, so batch boundaries are observable (and test-pinned) even
// when several workers complete out of order.
type batchJob struct {
	seq  int64
	reqs []*request
}

// Server is the online serving front: Submit (or the HTTP handler in
// http.go) feeds the admission queue, the batcher forms dynamic
// batches, and worker goroutines execute them on backend replicas.
type Server struct {
	cfg       Config
	inputSize int
	queue     chan *request
	batches   chan batchJob
	replicas  []Replica
	fallback  Replica   // software fail-open replica (lifetime mode)
	life      *lifetime // nil unless Config.Lifetime is set
	metrics   *metrics
	tr        *serveTrace // nil unless Config.Trace is set
	reqSeq    atomic.Int64
	batchSeq  int64 // owned by the batcher goroutine

	mu      sync.Mutex // guards closed and the queue close
	closed  bool
	started bool
	wg      sync.WaitGroup
}

// New builds a server (replicas are created eagerly so misconfigured
// backends fail fast). Call Start to begin serving.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serve: config needs a backend")
	}
	cfg = cfg.withDefaults()
	size := 1
	for _, d := range cfg.Backend.InputShape() {
		size *= d
	}
	s := &Server{
		cfg:       cfg,
		inputSize: size,
		queue:     make(chan *request, cfg.QueueCap),
		batches:   make(chan batchJob),
		metrics:   newMetrics(),
	}
	for w := 0; w < cfg.Workers; w++ {
		r, err := cfg.Backend.NewReplica()
		if err != nil {
			return nil, fmt.Errorf("serve: replica %d: %w", w, err)
		}
		s.replicas = append(s.replicas, r)
	}
	if cfg.Lifetime != nil {
		if err := cfg.Lifetime.validate(); err != nil {
			return nil, err
		}
		for w, r := range s.replicas {
			if _, ok := r.(LifetimeReplica); !ok {
				return nil, fmt.Errorf("serve: lifetime mode needs aging replicas; %q replica %d cannot age",
					cfg.Backend.Name(), w)
			}
		}
		if m := cfg.Lifetime.Fallback; m != nil {
			fb, err := NewSoftwareBackend(m, cfg.Lifetime.FallbackWorkers)
			if err != nil {
				return nil, fmt.Errorf("serve: fallback: %w", err)
			}
			if s.fallback, err = fb.NewReplica(); err != nil {
				return nil, fmt.Errorf("serve: fallback replica: %w", err)
			}
		}
		s.life = newLifetime(cfg.Lifetime, cfg.Workers)
	}
	if cfg.Trace != nil {
		s.tr = newServeTrace(cfg.Trace, cfg.Backend.Name(), cfg.Workers,
			s.fallback != nil, cfg.Pricer != nil, s.metrics.start)
		if s.life != nil {
			s.life.tr = s.tr
		}
	}
	return s, nil
}

// TraceRecorder exposes the attached span recorder (nil when tracing
// is off) — the GET /trace surface snapshots it.
func (s *Server) TraceRecorder() *trace.Recorder { return s.cfg.Trace }

// Start launches the batcher and the batch workers. Requests submitted
// before Start queue up (subject to admission control) and are served
// in enqueue order once the batcher runs — which is what makes batch
// boundaries deterministic under test.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.wg.Add(1 + len(s.replicas))
	go s.batchLoop()
	for w, r := range s.replicas {
		go s.workLoop(w, r)
	}
	if s.fallback != nil {
		s.wg.Add(1)
		go s.fallbackLoop(s.fallback)
	}
}

// Stop drains the queue (every accepted request is answered) and waits
// for the pipeline to finish. Further submissions fail with ErrClosed.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	started := s.started
	close(s.queue)
	s.mu.Unlock()
	if !started {
		// No batcher is running: answer queued requests directly.
		for r := range s.queue {
			r.reply <- Reply{Err: ErrClosed}
		}
		return
	}
	s.wg.Wait()
}

// SubmitAsync validates and enqueues one request and returns the
// channel its Reply will arrive on (buffered — the server never blocks
// on a slow consumer). This is the streaming submit path; Submit is the
// blocking wrapper.
//
// Inputs must either match the backend's input shape exactly or be a
// flat vector of the right element count (the HTTP wire format), which
// is reshaped here — so batches reaching a replica are always
// well-shaped and one caller's malformed tensor can never poison the
// requests it would have been batched with.
func (s *Server) SubmitAsync(x *tensor.Float) (<-chan Reply, error) {
	ch, _, err := s.SubmitTraced(x)
	return ch, err
}

// SubmitTraced is SubmitAsync plus the request ID assigned at
// admission — the identity the HTTP layer echoes as X-Request-ID and
// the serving trace uses as the span id. The ID is valid (non-zero)
// exactly when err is nil.
func (s *Server) SubmitTraced(x *tensor.Float) (<-chan Reply, int64, error) {
	want := s.cfg.Backend.InputShape()
	ok := x != nil && x.Size() == s.inputSize
	if ok && x.Dims() != 1 {
		ok = x.Dims() == len(want)
		for d := 0; ok && d < len(want); d++ {
			ok = x.Dim(d) == want[d]
		}
	}
	if !ok {
		s.metrics.rejected.Add(1)
		shape := []int(nil)
		if x != nil {
			shape = x.Shape()
		}
		return nil, 0, fmt.Errorf("serve: input shape %v, backend %q wants %v (or a flat vector of %d)",
			shape, s.cfg.Backend.Name(), want, s.inputSize)
	}
	if x.Dims() != len(want) {
		x = x.Reshape(want...)
	}
	r := &request{id: s.reqSeq.Add(1), x: x, enq: time.Now(), reply: make(chan Reply, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	select {
	case s.queue <- r:
		s.metrics.accepted.Add(1)
		s.mu.Unlock()
		return r.reply, r.id, nil
	default:
		s.metrics.shed.Add(1)
		s.mu.Unlock()
		return nil, 0, ErrOverloaded
	}
}

// Submit enqueues one request and blocks until its reply.
func (s *Server) Submit(x *tensor.Float) (Result, error) {
	ch, err := s.SubmitAsync(x)
	if err != nil {
		return Result{}, err
	}
	rep := <-ch
	return rep.Result, rep.Err
}

// QueueDepth is the number of requests waiting for a batch slot.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Stats snapshots the metrics block.
func (s *Server) Stats() Snapshot {
	snap := s.metrics.snapshot(s.cfg.Backend.Name(), len(s.queue))
	if s.cfg.Pricer != nil {
		sim := s.cfg.Pricer.Snapshot()
		snap.Sim = &sim
	}
	if s.life != nil {
		snap.Lifetime = s.life.snapshot()
		snap.FallbackServed = snap.Lifetime.FallbackServed
	}
	return snap
}

// batchLoop is the deadline-aware dynamic batcher: collect up to
// MaxBatch requests or until MaxWait past the first request's enqueue,
// whichever comes first, then hand the batch to a worker.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	defer close(s.batches)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := make([]*request, 1, s.cfg.MaxBatch)
		batch[0] = first
		deadline := first.enq.Add(s.cfg.MaxWait)
		closed := false
	collect:
		for len(batch) < s.cfg.MaxBatch {
			// Fast path: drain whatever is already queued, in order.
			select {
			case r, rok := <-s.queue:
				if !rok {
					closed = true
					break collect
				}
				batch = append(batch, r)
				continue
			default:
			}
			wait := time.Until(deadline)
			if wait <= 0 {
				break collect
			}
			timer.Reset(wait)
			select {
			case r, rok := <-s.queue:
				if !timer.Stop() {
					<-timer.C
				}
				if !rok {
					closed = true
					break collect
				}
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		s.dispatch(batch)
		if closed {
			// Flush the remainder of the drained queue in full batches.
			// (Fresh slices — the dispatched batch is owned by a worker.)
			batch = make([]*request, 0, s.cfg.MaxBatch)
			for r := range s.queue {
				batch = append(batch, r)
				if len(batch) == s.cfg.MaxBatch {
					s.dispatch(batch)
					batch = make([]*request, 0, s.cfg.MaxBatch)
				}
			}
			if len(batch) > 0 {
				s.dispatch(batch)
			}
			return
		}
	}
}

// dispatch stamps the batch sequence number and hands the batch off.
// In lifetime mode, when the last replica retires with no fallback the
// dead channel fires and batches fail with ErrNoHealthyReplica instead
// of blocking the batcher forever.
func (s *Server) dispatch(batch []*request) {
	job := batchJob{seq: s.batchSeq, reqs: batch}
	s.batchSeq++
	if s.life != nil {
		select {
		case <-s.life.dead:
			s.failBatch(batch, ErrNoHealthyReplica)
			return
		default:
		}
		select {
		case s.batches <- job:
		case <-s.life.dead:
			s.failBatch(batch, ErrNoHealthyReplica)
		}
		return
	}
	s.batches <- job
}

// failBatch answers every request of an undeliverable batch.
func (s *Server) failBatch(batch []*request, err error) {
	s.metrics.batchServed(len(batch), false)
	for _, r := range batch {
		r.reply <- Reply{Err: err}
	}
}

// runReplica executes one batch, converting a replica panic into an
// error: a buggy backend fails its batch, not the whole server.
func runReplica(rep Replica, xs []*tensor.Float, preds []Prediction) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: backend panic: %v", r)
		}
	}()
	return rep.RunBatch(xs, preds)
}

// workLoop executes batches on one backend replica. In lifetime mode
// the replica ages with its served work and runs the canary /
// recalibration lifecycle between batches; a retired replica's worker
// leaves the rotation for good.
func (s *Server) workLoop(id int, rep Replica) {
	defer s.wg.Done()
	if s.life != nil {
		defer s.life.workerExit(id)
	}
	var (
		xs    []*tensor.Float
		preds []Prediction
	)
	for job := range s.batches {
		s.serveBatch(id, rep, job, &xs, &preds, false)
		if s.life != nil && s.life.afterBatch(id, rep, len(job.reqs)) {
			return // retired
		}
	}
}

// serveBatch executes one dispatched batch on a replica, retrying
// failed runs up to Config.MaxRetries with doubling backoff, then
// answers every request. Scratch slices live with the calling loop.
// worker is the executing worker's id (-1 for the fallback replica) —
// the trace attributes the batch to its track.
func (s *Server) serveBatch(worker int, rep Replica, job batchJob, xsp *[]*tensor.Float, predsp *[]Prediction, viaFallback bool) {
	batch := job.reqs
	dispatched := time.Now()
	xs := (*xsp)[:0]
	for _, r := range batch {
		xs = append(xs, r.x)
	}
	*xsp = xs
	preds := *predsp
	if cap(preds) < len(batch) {
		preds = make([]Prediction, len(batch))
	}
	preds = preds[:len(batch)]
	*predsp = preds
	err := runReplica(rep, xs, preds)
	for attempt := 0; err != nil && attempt < s.cfg.MaxRetries; attempt++ {
		s.metrics.retries.Add(1)
		if s.tr != nil {
			s.tr.retry(worker, job.seq, attempt+1)
		}
		if s.cfg.RetryBackoff > 0 {
			time.Sleep(s.cfg.RetryBackoff << attempt)
		}
		err = runReplica(rep, xs, preds)
	}
	if err == nil && s.cfg.Pricer != nil {
		br := s.cfg.Pricer.price(len(batch))
		if s.tr != nil {
			s.tr.price(job.seq, len(batch), br)
		}
	}
	drain := s.life != nil && (viaFallback || s.life.inDrain())
	done := time.Now()
	s.metrics.batchServed(len(batch), err == nil)
	if s.tr != nil {
		s.tr.batch(worker, job.seq, dispatched, done.Sub(dispatched).Nanoseconds(), len(batch), viaFallback)
	}
	for i, r := range batch {
		lat := done.Sub(r.enq).Nanoseconds()
		if err != nil {
			r.reply <- Reply{Err: err}
			continue
		}
		s.metrics.observeLatency(lat)
		if drain {
			s.metrics.observeDrainLatency(lat)
		}
		queueNs := dispatched.Sub(r.enq).Nanoseconds()
		if s.tr != nil {
			s.tr.request(r.id, r.enq, lat, queueNs, job.seq)
		}
		r.reply <- Reply{Result: Result{
			RequestID: r.id,
			Class:     preds[i].Class,
			Logits:    preds[i].Logits,
			BatchSize: len(batch),
			BatchSeq:  job.seq,
			QueueNs:   queueNs,
			LatencyNs: lat,
		}}
	}
}
