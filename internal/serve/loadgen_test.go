package serve

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"einsteinbarrier/internal/tensor"
)

// TestScheduleDeterministic: the open-loop arrival schedule is a pure
// function of (seed, rate, n) — reproducible runs on any host.
func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(11, 5000, 64)
	b := Schedule(11, 5000, 64)
	if len(a) != 64 {
		t.Fatalf("schedule length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs across identical seeds: %v != %v", i, a[i], b[i])
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("offsets not strictly increasing at %d: %v ≤ %v", i, a[i], a[i-1])
		}
	}
	c := Schedule(12, 5000, 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestClosedLoopLoadgen: every request of a closed-loop run completes,
// the metrics block accounts for all of them, and dynamic batching
// actually batched (mean batch > 1 with more clients than batch slots).
func TestClosedLoopLoadgen(t *testing.T) {
	model := zooModel(t, "MLP-S")
	backend, err := NewSoftwareBackend(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: backend, MaxBatch: 16, MaxWait: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, LoadConfig{
		Clients:  8,
		Requests: 120,
		Seed:     5,
		Inputs:   testInputs(t, model, 16, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if rep.Completed != 120 || rep.Shed != 0 || rep.Failed != 0 {
		t.Fatalf("completed %d shed %d failed %d, want 120/0/0", rep.Completed, rep.Shed, rep.Failed)
	}
	if rep.Stats.Completed != 120 || rep.Stats.Accepted != 120 {
		t.Fatalf("stats completed %d accepted %d, want 120/120", rep.Stats.Completed, rep.Stats.Accepted)
	}
	if rep.AchievedPerSec <= 0 || rep.Stats.Latency.P99 <= 0 {
		t.Fatalf("throughput %v p99 %v, want > 0", rep.AchievedPerSec, rep.Stats.Latency.P99)
	}
	if rep.Stats.MeanBatch <= 1 {
		t.Logf("mean batch %.2f (closed loop did not batch on this host — acceptable)", rep.Stats.MeanBatch)
	}
}

// slowBackend serves any batch in a fixed service time — a backend with
// a known capacity, for overload tests.
type slowBackend struct {
	service time.Duration
}

func (b slowBackend) Name() string      { return "test/slow" }
func (b slowBackend) InputShape() []int { return []int{4} }
func (b slowBackend) NewReplica() (Replica, error) {
	return slowReplica{b.service}, nil
}

type slowReplica struct{ service time.Duration }

func (r slowReplica) RunBatch(xs []*tensor.Float, out []Prediction) error {
	time.Sleep(r.service)
	for i := range out {
		out[i] = Prediction{Class: 0, Logits: []float64{1}}
	}
	return nil
}

// TestOpenLoopOverloadShedsAndBoundsTail: offered load ~5× capacity —
// the bounded queue must shed, every accepted request must still
// complete, and the tail latency stays bounded by the queue depth
// rather than growing with the arrival backlog.
func TestOpenLoopOverloadShedsAndBoundsTail(t *testing.T) {
	// Capacity: MaxBatch=4 per 2ms ⇒ 2000 req/s. Offered: 10000 req/s.
	s, err := New(Config{
		Backend:  slowBackend{service: 2 * time.Millisecond},
		MaxBatch: 4,
		MaxWait:  100 * time.Microsecond,
		QueueCap: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, LoadConfig{
		Rate:     10000,
		Requests: 200,
		Seed:     21,
		Inputs:   []*tensor.Float{tensor.NewFloat(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if rep.Completed+rep.Shed+rep.Failed != 200 {
		t.Fatalf("requests unaccounted: %d + %d + %d != 200", rep.Completed, rep.Shed, rep.Failed)
	}
	if rep.Shed == 0 {
		t.Fatal("overload did not shed: admission control is not engaging")
	}
	if rep.Failed != 0 {
		t.Fatalf("%d requests failed (only shedding is expected)", rep.Failed)
	}
	if rep.Stats.ShedRate <= 0 {
		t.Fatalf("shed rate %v, want > 0", rep.Stats.ShedRate)
	}
	// Tail bound: ≤ (QueueCap + 2 batches in flight) service times, with
	// generous scheduling slack — the point is "finite and queue-bound",
	// not a tight constant.
	if p99 := rep.Stats.Latency.P99; p99 <= 0 || p99 > 500 {
		t.Fatalf("p99 %v ms, want finite and ≪ 500ms under overload", p99)
	}
}

// TestSweepRatesAndWriters: the rate sweep produces one point per rate
// on a fresh server each, and the CSV/JSON exports round-trip.
func TestSweepRatesAndWriters(t *testing.T) {
	model := zooModel(t, "MLP-S")
	inputs := testInputs(t, model, 8, 13)
	newServer := func() (*Server, error) {
		backend, err := NewSoftwareBackend(model, 1)
		if err != nil {
			return nil, err
		}
		return New(Config{Backend: backend, MaxBatch: 16, MaxWait: 200 * time.Microsecond})
	}
	points, err := SweepRates(newServer, []float64{2000, 8000}, LoadConfig{
		Requests: 60,
		Seed:     31,
		Inputs:   inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].RatePerSec != 2000 || points[1].RatePerSec != 8000 {
		t.Fatalf("sweep points wrong: %+v", points)
	}
	for _, p := range points {
		if p.Report.Completed+p.Report.Shed+p.Report.Failed != 60 {
			t.Fatalf("rate %v: requests unaccounted", p.RatePerSec)
		}
	}

	var buf bytes.Buffer
	if err := WriteLoadCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "rate_per_sec" {
		t.Fatalf("CSV shape wrong: %d rows, header %v", len(recs), recs[0])
	}

	buf.Reset()
	if err := WriteLoadJSON(&buf, points); err != nil {
		t.Fatal(err)
	}
	var back []RatePoint
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].RatePerSec != 2000 {
		t.Fatalf("JSON round-trip wrong: %+v", back)
	}

	table := LoadTable(points)
	for _, frag := range []string{"rate/s", "p99 ms", "2000", "8000"} {
		if !strings.Contains(table, frag) {
			t.Fatalf("table missing %q:\n%s", frag, table)
		}
	}
}

// TestLoadConfigValidation covers the error paths.
func TestLoadConfigValidation(t *testing.T) {
	model := zooModel(t, "MLP-S")
	backend, err := NewSoftwareBackend(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for name, cfg := range map[string]LoadConfig{
		"no requests": {Inputs: testInputs(t, model, 1, 1)},
		"no inputs":   {Requests: 5},
		"neg rate":    {Requests: 5, Rate: -1, Inputs: testInputs(t, model, 1, 1)},
	} {
		if _, err := Run(s, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := SweepRates(func() (*Server, error) { return s, nil }, nil, LoadConfig{}); err == nil {
		t.Error("empty sweep accepted")
	}
}

// TestSweepMaxBatch: the MaxBatch sweep runs the closed loop once per
// cap, every request completes at every point, and larger caps actually
// form larger batches (the precondition for the bit-parallel speedup).
func TestSweepMaxBatch(t *testing.T) {
	model := zooModel(t, "MLP-S")
	points, err := SweepMaxBatch(func(mb int) (*Server, error) {
		backend, err := NewSoftwareBackend(model, 1)
		if err != nil {
			return nil, err
		}
		return New(Config{Backend: backend, MaxBatch: mb, MaxWait: 200 * time.Microsecond})
	}, []int{1, 8}, LoadConfig{
		Requests: 64,
		Seed:     3,
		Inputs:   testInputs(t, model, 16, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].MaxBatch != 1 || points[1].MaxBatch != 8 {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.Report.Completed != 64 || p.Report.Shed != 0 || p.Report.Failed != 0 {
			t.Fatalf("maxBatch %d: %+v", p.MaxBatch, p.Report)
		}
	}
	if points[1].Report.Stats.MeanBatch <= points[0].Report.Stats.MeanBatch {
		t.Fatalf("cap 8 did not batch more than cap 1: %v vs %v",
			points[1].Report.Stats.MeanBatch, points[0].Report.Stats.MeanBatch)
	}

	tbl := BatchTable(points)
	for _, frag := range []string{"max-batch", "achieved/s", "mean batch"} {
		if !strings.Contains(tbl, frag) {
			t.Fatalf("batch table missing %q:\n%s", frag, tbl)
		}
	}
	var buf bytes.Buffer
	if err := WriteBatchCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "max_batch" || recs[1][0] != "1" || recs[2][0] != "8" {
		t.Fatalf("CSV shape wrong: %v", recs)
	}
	buf.Reset()
	if err := WriteBatchJSON(&buf, points); err != nil {
		t.Fatal(err)
	}
	var back []BatchPoint
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].MaxBatch != 8 {
		t.Fatalf("JSON round trip: %+v", back)
	}

	// Validation: empty and non-positive caps are rejected.
	if _, err := SweepMaxBatch(nil, nil, LoadConfig{}); err == nil {
		t.Fatal("accepted empty sweep")
	}
	if _, err := SweepMaxBatch(nil, []int{0}, LoadConfig{}); err == nil {
		t.Fatal("accepted MaxBatch 0")
	}
}

// TestDiurnalSchedule: the rate-modulated schedule is a pure function
// of its arguments, offsets are ordered, and arrivals concentrate in
// the crest half of each period.
func TestDiurnalSchedule(t *testing.T) {
	a, err := DiurnalSchedule(9, 10, 100, time.Second, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := DiurnalSchedule(9, 10, 100, time.Second, 500)
	if len(a) != 500 {
		t.Fatalf("schedule length %d", len(a))
	}
	crest, trough := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs across identical seeds: %v != %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("offsets decrease at %d: %v < %v", i, a[i], a[i-1])
		}
		// The rate troughs at phase 0 and crests at phase 0.5.
		phase := a[i].Seconds() - float64(int(a[i].Seconds()))
		if phase >= 0.25 && phase < 0.75 {
			crest++
		} else {
			trough++
		}
	}
	if crest < 2*trough {
		t.Fatalf("no diurnal modulation: %d crest vs %d trough arrivals", crest, trough)
	}
	for name, call := range map[string]func() ([]time.Duration, error){
		"zero base":       func() ([]time.Duration, error) { return DiurnalSchedule(9, 0, 100, time.Second, 10) },
		"peak below base": func() ([]time.Duration, error) { return DiurnalSchedule(9, 10, 5, time.Second, 10) },
		"zero period":     func() ([]time.Duration, error) { return DiurnalSchedule(9, 10, 100, 0, 10) },
		"zero n":          func() ([]time.Duration, error) { return DiurnalSchedule(9, 10, 100, time.Second, 0) },
	} {
		if _, err := call(); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}
