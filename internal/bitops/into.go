package bitops

import "fmt"

// This file holds the allocation-free "Into" variants of the Vector
// constructors and bitwise operators. The convention, shared across the
// repo (see DESIGN.md): an Into method writes its result into a
// caller-owned destination of matching length and returns it; a nil
// destination allocates, so `op.Into(x, nil)` ≡ `op(x)`. The allocating
// APIs in vector.go are thin wrappers over these.

func (v *Vector) checkDst(dst *Vector, op string) *Vector {
	if dst == nil {
		return NewVector(v.n)
	}
	if dst.n != v.n {
		panic(fmt.Sprintf("bitops: %s dst length %d, want %d", op, dst.n, v.n))
	}
	return dst
}

// Zero clears every bit of v.
func (v *Vector) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// CopyFrom overwrites v with the bits of u (lengths must match).
func (v *Vector) CopyFrom(u *Vector) {
	v.sameLen(u)
	copy(v.words, u.words)
}

// SetFromFloats re-binarizes v in place from a float slice with the
// sign function (x > 0 → 1, x ≤ 0 → 0); len(xs) must equal v.Len().
// This is the steady-state form of FromFloats: one packed word is built
// per 64 inputs and no memory is allocated.
func (v *Vector) SetFromFloats(xs []float64) *Vector {
	if len(xs) != v.n {
		panic(fmt.Sprintf("bitops: SetFromFloats input length %d, want %d", len(xs), v.n))
	}
	for wi := range v.words {
		base := wi * wordBits
		span := v.n - base
		if span > wordBits {
			span = wordBits
		}
		var w uint64
		for b, f := range xs[base : base+span] {
			if f > 0 {
				w |= 1 << uint(b)
			}
		}
		v.words[wi] = w
	}
	return v
}

// SetFromBipolar re-binarizes v in place from a {-1,+1} (or
// real-valued) int slice with the same s > 0 → 1 rule as FromBipolar.
func (v *Vector) SetFromBipolar(xs []int) *Vector {
	if len(xs) != v.n {
		panic(fmt.Sprintf("bitops: SetFromBipolar input length %d, want %d", len(xs), v.n))
	}
	for wi := range v.words {
		base := wi * wordBits
		span := v.n - base
		if span > wordBits {
			span = wordBits
		}
		var w uint64
		for b, s := range xs[base : base+span] {
			if s > 0 {
				w |= 1 << uint(b)
			}
		}
		v.words[wi] = w
	}
	return v
}

// NotInto writes the bitwise complement of v into dst (canonical form).
func (v *Vector) NotInto(dst *Vector) *Vector {
	dst = v.checkDst(dst, "NotInto")
	for i, w := range v.words {
		dst.words[i] = ^w
	}
	dst.canonicalize()
	return dst
}

// XnorInto writes the bitwise XNOR of v and u into dst (canonical form).
func (v *Vector) XnorInto(u, dst *Vector) *Vector {
	v.sameLen(u)
	dst = v.checkDst(dst, "XnorInto")
	for i, w := range v.words {
		dst.words[i] = ^(w ^ u.words[i])
	}
	dst.canonicalize()
	return dst
}

// XorInto writes the bitwise XOR of v and u into dst.
func (v *Vector) XorInto(u, dst *Vector) *Vector {
	v.sameLen(u)
	dst = v.checkDst(dst, "XorInto")
	for i, w := range v.words {
		dst.words[i] = w ^ u.words[i]
	}
	return dst
}

// AndInto writes the bitwise AND of v and u into dst.
func (v *Vector) AndInto(u, dst *Vector) *Vector {
	v.sameLen(u)
	dst = v.checkDst(dst, "AndInto")
	for i, w := range v.words {
		dst.words[i] = w & u.words[i]
	}
	return dst
}

// OrInto writes the bitwise OR of v and u into dst.
func (v *Vector) OrInto(u, dst *Vector) *Vector {
	v.sameLen(u)
	dst = v.checkDst(dst, "OrInto")
	for i, w := range v.words {
		dst.words[i] = w | u.words[i]
	}
	return dst
}
