package bitops

import (
	"math/rand"
	"testing"
)

// naiveTranspose is the bit-by-bit reference the word-wise Transpose
// must match.
func naiveTranspose(m *Matrix) *Matrix {
	t := NewMatrix(m.Cols(), m.Rows())
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			if m.Get(r, c) {
				t.Set(c, r, true)
			}
		}
	}
	return t
}

func matricesEqual(a, b *Matrix) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for r := 0; r < a.Rows(); r++ {
		if !a.Row(r).Equal(b.Row(r)) {
			return false
		}
	}
	return true
}

func TestTransposeWordWiseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dims := [][2]int{
		{1, 1}, {1, 64}, {64, 1}, {64, 64}, {63, 65}, {65, 63},
		{7, 200}, {200, 7}, {128, 128}, {100, 300}, {129, 257},
	}
	for _, d := range dims {
		m := randomMatrix(rng, d[0], d[1])
		if !matricesEqual(m.Transpose(), naiveTranspose(m)) {
			t.Errorf("Transpose mismatch for %dx%d", d[0], d[1])
		}
	}
}

func TestColWordWiseMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, d := range [][2]int{{1, 1}, {65, 70}, {130, 3}, {64, 128}} {
		m := randomMatrix(rng, d[0], d[1])
		for c := 0; c < m.Cols(); c++ {
			col := m.Col(c)
			for r := 0; r < m.Rows(); r++ {
				if col.Get(r) != m.Get(r, c) {
					t.Fatalf("%dx%d: Col(%d) bit %d mismatch", d[0], d[1], c, r)
				}
			}
		}
	}
}

func TestRowViewSharesStorage(t *testing.T) {
	m := NewMatrix(3, 70)
	m.Row(1).Set(69)
	if !m.Get(1, 69) {
		t.Fatal("Row view mutation not visible in matrix")
	}
	if m.Get(0, 69) || m.Get(2, 69) {
		t.Fatal("Row view mutation leaked into another row")
	}
}

func TestXnorPopcountAllIntoMatchesAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomMatrix(rng, 33, 130)
	x := randomVector(rng, 130)
	want := m.XnorPopcountAll(x)
	dst := make([]int, m.Rows())
	got := m.XnorPopcountAllInto(x, dst)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestXnorPopcountAllStride16MatchesPerRow pins the specialized
// stride-16 kernel (cols in (960, 1024]) against the per-row reference,
// including a column count that is not a multiple of 64.
func TestXnorPopcountAllStride16MatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, cols := range []int{1024, 1000, 961} {
		m := randomMatrix(rng, 37, cols)
		if m.Stride() != 16 {
			t.Fatalf("cols=%d: stride %d, want 16", cols, m.Stride())
		}
		x := randomVector(rng, cols)
		got := m.XnorPopcountAll(x)
		for r := 0; r < m.Rows(); r++ {
			if want := XnorPopcount(x, m.Row(r)); got[r] != want {
				t.Fatalf("cols=%d row %d: got %d, want %d", cols, r, got[r], want)
			}
		}
	}
}

func TestBipolarMatVecIntoMatchesAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := randomMatrix(rng, 20, 99)
	x := randomVector(rng, 99)
	want := m.BipolarMatVec(x)
	dst := make([]int, m.Rows())
	m.BipolarMatVecInto(x, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("row %d: got %d, want %d", i, dst[i], want[i])
		}
	}
}

// TestXnorPopcountAllIntoZeroAllocs is the steady-state allocation
// regression test for the fused flat-storage kernel.
func TestXnorPopcountAllIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	m := randomMatrix(rng, 256, 1024)
	x := randomVector(rng, 1024)
	dst := make([]int, m.Rows())
	if avg := testing.AllocsPerRun(100, func() {
		m.XnorPopcountAllInto(x, dst)
	}); avg != 0 {
		t.Fatalf("XnorPopcountAllInto allocates %.1f objects per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		m.BipolarMatVecInto(x, dst)
	}); avg != 0 {
		t.Fatalf("BipolarMatVecInto allocates %.1f objects per run, want 0", avg)
	}
}

func TestSetFromFloatsMatchesFromFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		want := FromFloats(xs)
		v := NewVector(n)
		for i := 0; i < n; i++ { // pre-dirty so stale bits would be caught
			v.Set(i)
		}
		if !v.SetFromFloats(xs).Equal(want) {
			t.Fatalf("n=%d: SetFromFloats != FromFloats", n)
		}
	}
}

func TestIntoOperatorsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	a, b := randomVector(rng, 133), randomVector(rng, 133)
	dst := NewVector(133)
	if !a.XnorInto(b, dst).Equal(a.Xnor(b)) {
		t.Fatal("XnorInto mismatch")
	}
	if !a.XorInto(b, dst).Equal(a.Xor(b)) {
		t.Fatal("XorInto mismatch")
	}
	if !a.AndInto(b, dst).Equal(a.And(b)) {
		t.Fatal("AndInto mismatch")
	}
	if !a.OrInto(b, dst).Equal(a.Or(b)) {
		t.Fatal("OrInto mismatch")
	}
	if !a.NotInto(dst).Equal(a.Not()) {
		t.Fatal("NotInto mismatch")
	}
	dst2 := NewVector(133)
	dst2.CopyFrom(a)
	if !dst2.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	dst2.Zero()
	if dst2.Popcount() != 0 {
		t.Fatal("Zero left bits set")
	}
}

func BenchmarkTransposeWordWise(b *testing.B) {
	rng := rand.New(rand.NewSource(28))
	m := randomMatrix(rng, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}
