package bitops

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, rng.Intn(2) == 1)
		}
	}
	return m
}

// TestPackUnpackRoundTrip pins the batch transpose against the
// per-sample layout across ragged lane counts and word-boundary
// feature counts.
func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, features := range []int{1, 63, 64, 65, 128, 300} {
		for _, lanes := range []int{1, 2, 63, 64} {
			samples := make([]*Vector, lanes)
			for s := range samples {
				samples[s] = randVec(rng, features)
			}
			b := PackSamples(samples)
			if b.Features() != features || b.Lanes() != lanes {
				t.Fatalf("pack dims %dx%d, want %dx%d", b.Features(), b.Lanes(), features, lanes)
			}
			// Element-level check against Get.
			for s := range samples {
				for f := 0; f < features; f++ {
					if b.Get(f, s) != samples[s].Get(f) {
						t.Fatalf("features=%d lanes=%d: bit (%d,%d) mismatch", features, lanes, f, s)
					}
				}
			}
			// Canonical form: no bits at or beyond Lanes().
			mask := b.laneMask()
			for f, w := range b.Words() {
				if w&^mask != 0 {
					t.Fatalf("features=%d lanes=%d: junk lane bits in word %d", features, lanes, f)
				}
			}
			// Unpack into vectors.
			back := make([]*Vector, lanes)
			for s := range back {
				back[s] = NewVector(features)
			}
			b.UnpackSamplesInto(back)
			for s := range back {
				if !back[s].Equal(samples[s]) {
					t.Fatalf("features=%d lanes=%d: unpack lane %d mismatch", features, lanes, s)
				}
			}
			// Unpack into a sample-major matrix.
			sm := b.UnpackLanesInto(nil)
			if sm.Rows() != lanes || sm.Cols() != features {
				t.Fatalf("lanes matrix %dx%d, want %dx%d", sm.Rows(), sm.Cols(), lanes, features)
			}
			for s := range samples {
				if !sm.Row(s).Equal(samples[s]) {
					t.Fatalf("features=%d lanes=%d: lanes-matrix row %d mismatch", features, lanes, s)
				}
			}
		}
	}
}

// TestBatchKernelsMatchPerSample pins the fused batch kernels against
// the per-sample reference path for every lane.
func TestBatchKernelsMatchPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ rows, cols, lanes int }{
		{1, 1, 1}, {10, 64, 3}, {65, 100, 64}, {128, 1024, 64}, {120, 784, 17}, {64, 65, 2},
	} {
		m := randMat(rng, tc.rows, tc.cols)
		samples := make([]*Vector, tc.lanes)
		for s := range samples {
			samples[s] = randVec(rng, tc.cols)
		}
		thresh := make([]int, tc.rows)
		for i := range thresh {
			thresh[i] = rng.Intn(2*tc.cols+1) - tc.cols
		}
		x := PackSamples(samples)
		scr := &BatchScratch{}

		pcs := m.XnorPopcountBatchInto(x, nil, scr)
		dots := m.BipolarMatBatchInto(x, nil, scr)
		out := m.BipolarSignBatchInto(x, thresh, nil, scr)
		for s, v := range samples {
			refPC := m.XnorPopcountAll(v)
			refDot := m.BipolarMatVec(v)
			for o := 0; o < tc.rows; o++ {
				if pcs[s*tc.rows+o] != refPC[o] {
					t.Fatalf("%dx%d lanes=%d: popcount (s=%d,o=%d) = %d, want %d",
						tc.rows, tc.cols, tc.lanes, s, o, pcs[s*tc.rows+o], refPC[o])
				}
				if dots[s*tc.rows+o] != refDot[o] {
					t.Fatalf("%dx%d lanes=%d: dot (s=%d,o=%d) = %d, want %d",
						tc.rows, tc.cols, tc.lanes, s, o, dots[s*tc.rows+o], refDot[o])
				}
				if out.Get(o, s) != (refDot[o] >= thresh[o]) {
					t.Fatalf("%dx%d lanes=%d: sign bit (s=%d,o=%d) mismatch",
						tc.rows, tc.cols, tc.lanes, s, o)
				}
			}
		}
	}
}

// TestXnorPopAsmMatchesGeneric pins the AVX-512 matrix kernel against
// the portable path on hosts that have it (skips silently elsewhere —
// the dispatch just never fires there).
func TestXnorPopAsmMatchesGeneric(t *testing.T) {
	if !hasXnorPopAsm {
		t.Skip("no AVX-512 VPOPCNTDQ on this host")
	}
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ rows, cols int }{
		{1, 512}, {7, 513}, {256, 1024}, {33, 640}, {3, 2048},
	} {
		m := randMat(rng, tc.rows, tc.cols)
		x := randVec(rng, tc.cols)
		got := m.XnorPopcountAllInto(x, nil)
		hasXnorPopAsm = false
		want := m.XnorPopcountAllInto(x, nil)
		hasXnorPopAsm = true
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("%dx%d row %d: asm %d, generic %d", tc.rows, tc.cols, r, got[r], want[r])
			}
		}
	}
}

// TestBatchKernelAllocs pins the steady-state batch path to zero
// allocations once scratch is warm.
func TestBatchKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMat(rng, 128, 512)
	samples := make([]*Vector, 64)
	for s := range samples {
		samples[s] = randVec(rng, 512)
	}
	thresh := make([]int, 128)
	scr := &BatchScratch{}
	x := PackSamples(samples)
	out := m.BipolarSignBatchInto(x, thresh, nil, scr)
	dst := m.XnorPopcountBatchInto(x, nil, scr)
	if n := testing.AllocsPerRun(10, func() {
		PackSamplesInto(samples, x)
		m.XnorPopcountBatchInto(x, dst, scr)
		m.BipolarSignBatchInto(x, thresh, out, scr)
	}); n != 0 {
		t.Fatalf("steady-state batch kernels allocated %v times per run", n)
	}
}

// FuzzBitBatchRoundTrip drives arbitrary shapes — ragged lane counts,
// word-boundary feature/row counts — through pack → batch kernels →
// unpack and checks every lane against the per-sample reference.
func FuzzBitBatchRoundTrip(f *testing.F) {
	f.Add(int64(1), 64, 10, 64)
	f.Add(int64(2), 1, 1, 1)
	f.Add(int64(3), 65, 63, 3)
	f.Add(int64(4), 128, 64, 17)
	f.Add(int64(5), 127, 129, 33)
	f.Fuzz(func(t *testing.T, seed int64, cols, rows, lanes int) {
		// Clamp to sane shapes rather than rejecting, so every input
		// exercises the kernels.
		cols = 1 + abs(cols)%700
		rows = 1 + abs(rows)%200
		lanes = 1 + abs(lanes)%64
		rng := rand.New(rand.NewSource(seed))
		m := randMat(rng, rows, cols)
		samples := make([]*Vector, lanes)
		for s := range samples {
			samples[s] = randVec(rng, cols)
		}
		thresh := make([]int, rows)
		for i := range thresh {
			thresh[i] = rng.Intn(2*cols+1) - cols
		}

		x := PackSamplesInto(samples, nil)
		// Round trip must be lossless.
		back := make([]*Vector, lanes)
		for s := range back {
			back[s] = NewVector(cols)
		}
		x.UnpackSamplesInto(back)
		for s := range back {
			if !back[s].Equal(samples[s]) {
				t.Fatalf("round trip lane %d mismatch (cols=%d lanes=%d)", s, cols, lanes)
			}
		}
		// Fused sign kernel must match the per-sample path bit for bit.
		scr := &BatchScratch{}
		out := m.BipolarSignBatchInto(x, thresh, nil, scr)
		for s, v := range samples {
			ref := m.BipolarMatVec(v)
			for o := 0; o < rows; o++ {
				if out.Get(o, s) != (ref[o] >= thresh[o]) {
					t.Fatalf("sign (s=%d,o=%d) mismatch (rows=%d cols=%d lanes=%d)", s, o, rows, cols, lanes)
				}
			}
		}
		// Output block stays canonical.
		mask := out.laneMask()
		for f2, w := range out.Words() {
			if w&^mask != 0 {
				t.Fatalf("junk lane bits in output word %d", f2)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // MinInt
			return 0
		}
		return -v
	}
	return v
}

func BenchmarkBitBatchKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := randMat(rng, 1024, 1024)
	samples := make([]*Vector, 64)
	for s := range samples {
		samples[s] = randVec(rng, 1024)
	}
	thresh := make([]int, 1024)
	scr := &BatchScratch{}
	x := PackSamples(samples)
	out := m.BipolarSignBatchInto(x, thresh, nil, scr)
	b.Run("BipolarSignBatch/1024x1024x64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.BipolarSignBatchInto(x, thresh, out, scr)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/64, "ns/sample")
	})
}
