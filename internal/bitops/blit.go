package bitops

import (
	"fmt"
	"math/bits"
)

// This file holds the word-wise bit-range primitives behind the analog
// drive construction: TacitMap applies [X ; ¬X] to the crossbar rows
// and CustBinaryMap copies input slices onto bit lines, both of which
// reduce to "copy (possibly complemented) bits [from,to) of src into
// dst at an arbitrary offset". The loops below move 64 bits per step
// with funnel shifts instead of per-bit Get/Set.

// window64 returns 64 bits of words starting at bit offset off (bits
// past the end of the slice read as zero).
func window64(words []uint64, off int) uint64 {
	wi, sh := off/wordBits, uint(off)%wordBits
	w := words[wi] >> sh
	if sh != 0 && wi+1 < len(words) {
		w |= words[wi+1] << (wordBits - sh)
	}
	return w
}

func (v *Vector) checkRange(from, to int) {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitops: bad range [%d,%d) of %d", from, to, v.n))
	}
}

// Blit copies bits [from,to) of src into v starting at bit dstOff,
// word-wise. Bits of v outside [dstOff, dstOff+to-from) are unchanged.
// src must not alias v over an overlapping range.
func (v *Vector) Blit(dstOff int, src *Vector, from, to int) {
	v.blit(dstOff, src, from, to, false)
}

// BlitNot is Blit with the copied bits complemented — the ¬X half of
// the TacitMap drive pair in one pass.
func (v *Vector) BlitNot(dstOff int, src *Vector, from, to int) {
	v.blit(dstOff, src, from, to, true)
}

func (v *Vector) blit(dstOff int, src *Vector, from, to int, invert bool) {
	src.checkRange(from, to)
	n := to - from
	if dstOff < 0 || dstOff+n > v.n {
		panic(fmt.Sprintf("bitops: blit of %d bits at %d overflows %d", n, dstOff, v.n))
	}
	pos := 0
	for pos < n {
		dBit := dstOff + pos
		di, dsh := dBit/wordBits, uint(dBit)%wordBits
		chunk := wordBits - int(dsh)
		if chunk > n-pos {
			chunk = n - pos
		}
		mask := ^uint64(0)
		if chunk < wordBits {
			mask = (1 << uint(chunk)) - 1
		}
		w := window64(src.words, from+pos)
		if invert {
			w = ^w
		}
		w &= mask
		v.words[di] = v.words[di]&^(mask<<dsh) | w<<dsh
		pos += chunk
	}
}

// SliceInto extracts the sub-vector [from,to) of v into dst (length
// to−from; nil allocates), word-wise. This is the allocation-free form
// of Slice.
func (v *Vector) SliceInto(from, to int, dst *Vector) *Vector {
	v.checkRange(from, to)
	if dst == nil {
		dst = NewVector(to - from)
	} else if dst.n != to-from {
		panic(fmt.Sprintf("bitops: SliceInto dst length %d, want %d", dst.n, to-from))
	}
	dst.Blit(0, v, from, to)
	return dst
}

// PopcountRange returns the number of set bits of v in [from,to),
// counted word-wise with edge masks.
func (v *Vector) PopcountRange(from, to int) int {
	v.checkRange(from, to)
	if from == to {
		return 0
	}
	wi, wj := from/wordBits, (to-1)/wordBits
	lo := ^uint64(0) << (uint(from) % wordBits)
	hi := ^uint64(0) >> (wordBits - 1 - uint(to-1)%wordBits)
	if wi == wj {
		return bits.OnesCount64(v.words[wi] & lo & hi)
	}
	c := bits.OnesCount64(v.words[wi] & lo)
	for k := wi + 1; k < wj; k++ {
		c += bits.OnesCount64(v.words[k])
	}
	return c + bits.OnesCount64(v.words[wj]&hi)
}

// CopyFrom overwrites m with the bits of other, which must have the
// same dimensions. One word-level copy, no per-bit loop.
func (m *Matrix) CopyFrom(other *Matrix) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("bitops: CopyFrom %dx%d into %dx%d",
			other.rows, other.cols, m.rows, m.cols))
	}
	copy(m.words, other.words)
}
