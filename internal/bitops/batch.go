package bitops

import "fmt"

// BitBatch is the batch-major activation layout of the bit-parallel
// inference path: up to 64 samples ("lanes") ride side by side, one
// uint64 word per feature, with bit s of Word(f) holding feature f of
// sample s. One word-op therefore advances all lanes of one feature at
// once, and a whole batch-major activation block is just Features()
// contiguous words — no per-sample objects.
//
// Lane bits at or beyond Lanes() are always zero (the canonical form,
// mirroring Vector), so ragged batches (< 64 samples) use the same code
// paths with no masking in the kernels.
//
// Conversion to and from per-sample form is the blocked 64×64 bit
// transpose (transpose64) that also powers Matrix.Transpose: a feature
// block of 64 words in sample-major order is one transpose away from
// the same block in batch-major order.
type BitBatch struct {
	features, lanes int
	words           []uint64 // len == features
}

// NewBitBatch returns an all-zero batch block. Panics unless
// 0 ≤ lanes ≤ 64 and features ≥ 0.
func NewBitBatch(features, lanes int) *BitBatch {
	checkBatchDims(features, lanes)
	return &BitBatch{features: features, lanes: lanes, words: make([]uint64, features)}
}

func checkBatchDims(features, lanes int) {
	if features < 0 {
		panic(fmt.Sprintf("bitops: negative BitBatch features %d", features))
	}
	if lanes < 0 || lanes > wordBits {
		panic(fmt.Sprintf("bitops: BitBatch lanes %d out of range [0,%d]", lanes, wordBits))
	}
}

// EnsureBitBatch resizes b to features×lanes, reusing its storage when
// capacity allows; a nil b allocates. The contents are undefined until
// overwritten (every producer in this package writes all words).
func EnsureBitBatch(b *BitBatch, features, lanes int) *BitBatch {
	if b == nil {
		return NewBitBatch(features, lanes)
	}
	checkBatchDims(features, lanes)
	if cap(b.words) < features {
		b.words = make([]uint64, features)
	} else {
		b.words = b.words[:features]
	}
	b.features, b.lanes = features, lanes
	return b
}

// Features returns the per-sample feature count.
func (b *BitBatch) Features() int { return b.features }

// Lanes returns the live sample count (≤ 64).
func (b *BitBatch) Lanes() int { return b.lanes }

// Words exposes the backing slice — one word per feature, bit s =
// sample s. Kernels in internal/bnn compose on these words directly
// (OR-pooling, im2col gathers); writers must keep lane bits ≥ Lanes()
// zero.
func (b *BitBatch) Words() []uint64 { return b.words }

// Word returns the packed lanes of feature f.
func (b *BitBatch) Word(f int) uint64 { return b.words[f] }

// laneMask is the canonical-form mask for the live lanes.
func (b *BitBatch) laneMask() uint64 {
	if b.lanes == wordBits {
		return ^uint64(0)
	}
	return (1 << uint(b.lanes)) - 1
}

// Get reports the bit of feature f, lane s.
func (b *BitBatch) Get(f, s int) bool {
	b.check(f, s)
	return b.words[f]>>uint(s)&1 == 1
}

// SetBool sets the bit of feature f, lane s.
func (b *BitBatch) SetBool(f, s int, v bool) {
	b.check(f, s)
	if v {
		b.words[f] |= 1 << uint(s)
	} else {
		b.words[f] &^= 1 << uint(s)
	}
}

func (b *BitBatch) check(f, s int) {
	if f < 0 || f >= b.features {
		panic(fmt.Sprintf("bitops: BitBatch feature %d out of range [0,%d)", f, b.features))
	}
	if s < 0 || s >= b.lanes {
		panic(fmt.Sprintf("bitops: BitBatch lane %d out of range [0,%d)", s, b.lanes))
	}
}

// Zero clears every word.
func (b *BitBatch) Zero() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// PackSamples transposes up to 64 equal-length sample vectors into a
// fresh batch-major block; PackSamplesInto is the zero-alloc form.
func PackSamples(samples []*Vector) *BitBatch { return PackSamplesInto(samples, nil) }

// PackSamplesInto transposes the samples into dst (nil allocates),
// lane s ← samples[s], 64×64 bit-block at a time. All samples must
// share one length; len(samples) must be in [1,64].
func PackSamplesInto(samples []*Vector, dst *BitBatch) *BitBatch {
	if len(samples) == 0 || len(samples) > wordBits {
		panic(fmt.Sprintf("bitops: PackSamplesInto got %d samples, want 1..%d", len(samples), wordBits))
	}
	features := samples[0].n
	for i, s := range samples {
		if s.n != features {
			panic(fmt.Sprintf("bitops: PackSamplesInto sample %d has %d features, want %d", i, s.n, features))
		}
	}
	dst = EnsureBitBatch(dst, features, len(samples))
	var blk [64]uint64
	for wb := 0; wb < wordsFor(features); wb++ {
		for s, v := range samples {
			blk[s] = v.words[wb]
		}
		for s := len(samples); s < wordBits; s++ {
			blk[s] = 0
		}
		transpose64(&blk)
		base := wb * wordBits
		span := features - base
		if span > wordBits {
			span = wordBits
		}
		copy(dst.words[base:base+span], blk[:span])
	}
	return dst
}

// UnpackSamplesInto is the inverse of PackSamplesInto: lane s → dst[s].
// dst must hold exactly Lanes() vectors of length Features().
func (b *BitBatch) UnpackSamplesInto(dst []*Vector) {
	if len(dst) != b.lanes {
		panic(fmt.Sprintf("bitops: UnpackSamplesInto got %d dst vectors, want %d lanes", len(dst), b.lanes))
	}
	var blk [64]uint64
	for wb := 0; wb < wordsFor(b.features); wb++ {
		b.loadBlock(wb, &blk)
		for s, v := range dst {
			if v.n != b.features {
				panic(fmt.Sprintf("bitops: UnpackSamplesInto dst %d has length %d, want %d", s, v.n, b.features))
			}
			v.words[wb] = blk[s]
		}
	}
}

// UnpackLanesInto transposes the block into a sample-major Lanes() ×
// Features() matrix (row s = sample s), reusing dst's storage when
// capacity allows (nil allocates). This is how the dense batch kernels
// feed the flat per-row XNOR+popcount path.
func (b *BitBatch) UnpackLanesInto(dst *Matrix) *Matrix {
	dst = ensureMatrix(dst, b.lanes, b.features)
	var blk [64]uint64
	for wb := 0; wb < dst.stride; wb++ {
		b.loadBlock(wb, &blk)
		for s := 0; s < b.lanes; s++ {
			dst.words[s*dst.stride+wb] = blk[s]
		}
	}
	return dst
}

// loadBlock transposes feature block wb (features [wb*64, wb*64+64))
// into blk, so blk[s] holds those 64 features of sample s. Features
// beyond the end read as zero, keeping every output row canonical.
func (b *BitBatch) loadBlock(wb int, blk *[64]uint64) {
	base := wb * wordBits
	span := b.features - base
	if span > wordBits {
		span = wordBits
	}
	copy(blk[:span], b.words[base:base+span])
	for j := span; j < wordBits; j++ {
		blk[j] = 0
	}
	transpose64(blk)
}

// ensureMatrix resizes m to rows×cols reusing its storage when capacity
// allows (nil allocates). Contents are undefined until overwritten.
func ensureMatrix(m *Matrix, rows, cols int) *Matrix {
	if m == nil {
		return NewMatrix(rows, cols)
	}
	stride := wordsFor(cols)
	need := rows * stride
	if cap(m.words) < need {
		m.words = make([]uint64, need)
	} else {
		m.words = m.words[:need]
	}
	m.rows, m.cols, m.stride = rows, cols, stride
	return m
}

// BatchScratch holds the reusable buffers of the dense batch kernels:
// the sample-major view of the input block, the sample-major output
// bits, and one lane's popcount accumulator. A zero BatchScratch is
// ready to use; buffers grow to the largest layer that passes through
// and are owned by whoever owns the scratch (one per layer clone in
// internal/bnn).
type BatchScratch struct {
	lanesSM *Matrix // Lanes() × cols sample-major input
	outSM   *Matrix // Lanes() × rows sample-major output bits
	dots    []int   // rows-long popcounts of one lane
	rowv    Vector  // reusable row-view header
}

// ensureDots returns the rows-long accumulator.
func (s *BatchScratch) ensureDots(rows int) []int {
	if cap(s.dots) < rows {
		s.dots = make([]int, rows)
	}
	s.dots = s.dots[:rows]
	return s.dots
}

// XnorPopcountBatchInto computes dst[s*Rows()+o] = Popcount(lane s ⊙
// row o) for every live lane s and matrix row o — one binary dense
// layer applied to the whole batch. dst must have length
// x.Lanes()*Rows() (nil allocates); scr must be non-nil. Internally the
// batch transposes to sample-major lanes and streams each lane through
// the flat XnorPopcountAllInto kernel (AVX-512 VPOPCNTQ when
// available), which profiling shows beats bit-sliced vertical counters
// on any CPU with a hardware popcount.
func (m *Matrix) XnorPopcountBatchInto(x *BitBatch, dst []int, scr *BatchScratch) []int {
	if x.features != m.cols {
		panic(fmt.Sprintf("bitops: batch features %d != cols %d", x.features, m.cols))
	}
	if dst == nil {
		dst = make([]int, x.lanes*m.rows)
	} else if len(dst) != x.lanes*m.rows {
		panic(fmt.Sprintf("bitops: XnorPopcountBatchInto dst length %d, want %d", len(dst), x.lanes*m.rows))
	}
	scr.lanesSM = x.UnpackLanesInto(scr.lanesSM)
	for s := 0; s < x.lanes; s++ {
		m.XnorPopcountAllInto(scr.lanesSM.rowInto(s, &scr.rowv), dst[s*m.rows:(s+1)*m.rows])
	}
	return dst
}

// BipolarMatBatchInto is the Eq. (1) form of XnorPopcountBatchInto:
// dst[s*Rows()+o] = 2·Popcount(lane s ⊙ row o) − cols.
func (m *Matrix) BipolarMatBatchInto(x *BitBatch, dst []int, scr *BatchScratch) []int {
	dst = m.XnorPopcountBatchInto(x, dst, scr)
	for i, pc := range dst {
		dst[i] = 2*pc - m.cols
	}
	return dst
}

// BipolarSignBatchInto fuses a binary dense layer over the whole batch:
// out's feature o, lane s is set iff 2·Popcount(lane s ⊙ row o) − cols
// ≥ thresh[o] — the XNOR+popcount, threshold, and re-binarization of
// BinaryDense.Forward with the result left directly in batch-major
// form, never round-tripping through per-sample vectors. out is resized
// to Rows()×x.Lanes() (nil allocates); steady-state calls allocate
// nothing.
func (m *Matrix) BipolarSignBatchInto(x *BitBatch, thresh []int, out *BitBatch, scr *BatchScratch) *BitBatch {
	if x.features != m.cols {
		panic(fmt.Sprintf("bitops: batch features %d != cols %d", x.features, m.cols))
	}
	if len(thresh) != m.rows {
		panic(fmt.Sprintf("bitops: thresh length %d, want %d rows", len(thresh), m.rows))
	}
	scr.lanesSM = x.UnpackLanesInto(scr.lanesSM)
	scr.outSM = ensureMatrix(scr.outSM, x.lanes, m.rows)
	dots := scr.ensureDots(m.rows)
	ostride := scr.outSM.stride
	for s := 0; s < x.lanes; s++ {
		m.XnorPopcountAllInto(scr.lanesSM.rowInto(s, &scr.rowv), dots)
		orow := scr.outSM.words[s*ostride : (s+1)*ostride]
		for wi := range orow {
			base := wi * wordBits
			span := m.rows - base
			if span > wordBits {
				span = wordBits
			}
			var w uint64
			for k := 0; k < span; k++ {
				o := base + k
				if 2*dots[o]-m.cols >= thresh[o] {
					w |= 1 << uint(k)
				}
			}
			orow[wi] = w
		}
	}
	out = EnsureBitBatch(out, m.rows, x.lanes)
	packMatrixLanes(scr.outSM, out)
	return out
}

// packMatrixLanes transposes a sample-major src (rows = lanes) into the
// batch-major dst (features = src cols); the inverse of
// UnpackLanesInto.
func packMatrixLanes(src *Matrix, dst *BitBatch) {
	var blk [64]uint64
	for wb := 0; wb < src.stride; wb++ {
		for s := 0; s < src.rows; s++ {
			blk[s] = src.words[s*src.stride+wb]
		}
		for s := src.rows; s < wordBits; s++ {
			blk[s] = 0
		}
		transpose64(&blk)
		base := wb * wordBits
		span := dst.features - base
		if span > wordBits {
			span = wordBits
		}
		copy(dst.words[base:base+span], blk[:span])
	}
}

// rowInto fills v with a zero-alloc view of row i (same storage as
// Row, but reusing a caller-owned header).
func (m *Matrix) rowInto(i int, v *Vector) *Vector {
	m.checkRow(i)
	v.n = m.cols
	v.words = m.words[i*m.stride : (i+1)*m.stride : (i+1)*m.stride]
	return v
}
