package bitops

import "fmt"

// Matrix is a dense binary matrix stored as a slice of row Vectors.
// In BNN terms a weight matrix has one row per output neuron (a "weight
// vector" in the paper's language) and one column per input feature.
type Matrix struct {
	rows, cols int
	data       []*Vector // len == rows, each of length cols
}

// NewMatrix returns an all-zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitops: negative matrix dims %dx%d", rows, cols))
	}
	m := &Matrix{rows: rows, cols: cols, data: make([]*Vector, rows)}
	for i := range m.data {
		m.data[i] = NewVector(cols)
	}
	return m
}

// MatrixFromRows builds a matrix from row vectors, which must all share
// the same length. The vectors are cloned.
func MatrixFromRows(rows []*Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := rows[0].Len()
	m := &Matrix{rows: len(rows), cols: cols, data: make([]*Vector, len(rows))}
	for i, r := range rows {
		if r.Len() != cols {
			panic(fmt.Sprintf("bitops: ragged rows: row %d has %d cols, want %d", i, r.Len(), cols))
		}
		m.data[i] = r.Clone()
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i (not a copy; treat as read-only).
func (m *Matrix) Row(i int) *Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitops: row %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i]
}

// Get reports bit (r, c).
func (m *Matrix) Get(r, c int) bool { return m.Row(r).Get(c) }

// Set sets bit (r, c) to b.
func (m *Matrix) Set(r, c int, b bool) { m.Row(r).SetBool(c, b) }

// Col extracts column c as a fresh Vector of length rows.
func (m *Matrix) Col(c int) *Vector {
	if c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitops: col %d out of range [0,%d)", c, m.cols))
	}
	v := NewVector(m.rows)
	for r := 0; r < m.rows; r++ {
		if m.data[r].Get(c) {
			v.Set(r)
		}
	}
	return v
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for r := 0; r < m.rows; r++ {
		row := m.data[r]
		for c := 0; c < m.cols; c++ {
			if row.Get(c) {
				t.data[c].Set(r)
			}
		}
	}
	return t
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]*Vector, m.rows)}
	for i, r := range m.data {
		c.data[i] = r.Clone()
	}
	return c
}

// XnorPopcountAll computes Popcount(x ⊙ row) for every row of the
// matrix — the full XNOR+Popcount workload of one BNN layer on one
// input vector, and the software-reference result that one TacitMap VMM
// step must reproduce across its columns.
func (m *Matrix) XnorPopcountAll(x *Vector) []int {
	if x.Len() != m.cols {
		panic(fmt.Sprintf("bitops: input length %d != cols %d", x.Len(), m.cols))
	}
	out := make([]int, m.rows)
	for i, row := range m.data {
		out[i] = XnorPopcount(x, row)
	}
	return out
}

// BipolarMatVec computes the {-1,+1} matrix-vector product via Eq. (1):
// out[i] = 2·Popcount(x ⊙ row_i) − cols.
func (m *Matrix) BipolarMatVec(x *Vector) []int {
	pc := m.XnorPopcountAll(x)
	for i := range pc {
		pc[i] = 2*pc[i] - m.cols
	}
	return pc
}
