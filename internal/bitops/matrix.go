package bitops

import (
	"fmt"
	"math/bits"
)

// Matrix is a dense binary matrix stored as a single contiguous
// row-major []uint64 with a fixed words-per-row stride, so the
// XNOR+Popcount inner loop streams one flat slice with no pointer
// chasing and no per-row heap objects.
//
// In BNN terms a weight matrix has one row per output neuron (a "weight
// vector" in the paper's language) and one column per input feature.
// Every row starts on a word boundary and keeps the Vector canonical
// form (tail bits of the last word in each row are zero).
type Matrix struct {
	rows, cols int
	stride     int      // words per row == wordsFor(cols)
	words      []uint64 // len == rows*stride, row-major
}

// NewMatrix returns an all-zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitops: negative matrix dims %dx%d", rows, cols))
	}
	stride := wordsFor(cols)
	return &Matrix{rows: rows, cols: cols, stride: stride, words: make([]uint64, rows*stride)}
}

// MatrixFromRows builds a matrix from row vectors, which must all share
// the same length. The vectors are copied.
func MatrixFromRows(rows []*Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := rows[0].Len()
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if r.Len() != cols {
			panic(fmt.Sprintf("bitops: ragged rows: row %d has %d cols, want %d", i, r.Len(), cols))
		}
		copy(m.words[i*m.stride:(i+1)*m.stride], r.words)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Stride returns the number of 64-bit words per row.
func (m *Matrix) Stride() int { return m.stride }

// Words exposes the flat row-major backing slice (read-only by
// convention); row r occupies words[r*Stride() : (r+1)*Stride()].
func (m *Matrix) Words() []uint64 { return m.words }

// RowWords returns the packed words of row i as a subslice of the
// backing array (no copy).
func (m *Matrix) RowWords(i int) []uint64 {
	m.checkRow(i)
	return m.words[i*m.stride : (i+1)*m.stride]
}

// Row returns row i as a Vector view sharing the matrix storage:
// mutations through the view are visible in the matrix. Only the small
// Vector header is allocated.
func (m *Matrix) Row(i int) *Vector {
	m.checkRow(i)
	return &Vector{n: m.cols, words: m.words[i*m.stride : (i+1)*m.stride : (i+1)*m.stride]}
}

func (m *Matrix) checkRow(i int) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitops: row %d out of range [0,%d)", i, m.rows))
	}
}

// Get reports bit (r, c).
func (m *Matrix) Get(r, c int) bool {
	m.checkRow(r)
	if c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitops: col %d out of range [0,%d)", c, m.cols))
	}
	return m.words[r*m.stride+c/wordBits]>>(uint(c)%wordBits)&1 == 1
}

// Set sets bit (r, c) to b.
func (m *Matrix) Set(r, c int, b bool) {
	m.checkRow(r)
	if c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitops: col %d out of range [0,%d)", c, m.cols))
	}
	if b {
		m.words[r*m.stride+c/wordBits] |= 1 << (uint(c) % wordBits)
	} else {
		m.words[r*m.stride+c/wordBits] &^= 1 << (uint(c) % wordBits)
	}
}

// Col extracts column c as a fresh Vector of length rows.
func (m *Matrix) Col(c int) *Vector { return m.ColInto(c, nil) }

// ColInto extracts column c into dst (length rows), allocating only
// when dst is nil. The gather is word-wise over the flat storage: each
// output word collects the column bit of 64 consecutive rows.
func (m *Matrix) ColInto(c int, dst *Vector) *Vector {
	if c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitops: col %d out of range [0,%d)", c, m.cols))
	}
	if dst == nil {
		dst = NewVector(m.rows)
	} else if dst.n != m.rows {
		panic(fmt.Sprintf("bitops: ColInto dst length %d, want %d", dst.n, m.rows))
	}
	wi, sh := c/wordBits, uint(c)%wordBits
	for wo := range dst.words {
		rbase := wo * wordBits
		span := m.rows - rbase
		if span > wordBits {
			span = wordBits
		}
		var w uint64
		idx := rbase*m.stride + wi
		for k := 0; k < span; k++ {
			w |= (m.words[idx] >> sh & 1) << uint(k)
			idx += m.stride
		}
		dst.words[wo] = w
	}
	return dst
}

// transpose64 transposes a 64×64 bit block in place. Bit c of a[r] is
// entry (r, c) — the package's LSB-first convention — so this is the
// Hacker's Delight recursive block swap with the shifts mirrored.
func transpose64(a *[64]uint64) {
	j := uint(32)
	mask := uint64(0x00000000FFFFFFFF)
	// The mask update must see the halved j (C's comma operator does;
	// Go's tuple assignment evaluates the RHS with the old j).
	for ; j != 0; j, mask = j>>1, mask^(mask<<(j>>1)) {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>j ^ a[k+j]) & mask
			a[k] ^= t << j
			a[k+j] ^= t
		}
	}
}

// Transpose returns the transposed matrix, built 64×64 bit-block at a
// time over the flat storage rather than bit by bit.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	var blk [64]uint64
	for rb := 0; rb < m.rows; rb += wordBits {
		span := m.rows - rb
		if span > wordBits {
			span = wordBits
		}
		wcol := rb / wordBits // destination word index within each t row
		for cb := 0; cb < m.stride; cb++ {
			for k := 0; k < span; k++ {
				blk[k] = m.words[(rb+k)*m.stride+cb]
			}
			for k := span; k < wordBits; k++ {
				blk[k] = 0
			}
			transpose64(&blk)
			cmax := m.cols - cb*wordBits
			if cmax > wordBits {
				cmax = wordBits
			}
			for j := 0; j < cmax; j++ {
				t.words[(cb*wordBits+j)*t.stride+wcol] = blk[j]
			}
		}
	}
	return t
}

// Clone deep-copies the matrix with a single allocation.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, stride: m.stride, words: make([]uint64, len(m.words))}
	copy(c.words, m.words)
	return c
}

// XnorPopcountAll computes Popcount(x ⊙ row) for every row of the
// matrix — the full XNOR+Popcount workload of one BNN layer on one
// input vector, and the software-reference result that one TacitMap VMM
// step must reproduce across its columns.
func (m *Matrix) XnorPopcountAll(x *Vector) []int {
	return m.XnorPopcountAllInto(x, nil)
}

// XnorPopcountAllInto is the fused allocation-free kernel behind
// XnorPopcountAll: it streams the flat backing slice row by row and
// writes the per-row popcounts into dst (length Rows), allocating only
// when dst is nil.
func (m *Matrix) XnorPopcountAllInto(x *Vector, dst []int) []int {
	if x.Len() != m.cols {
		panic(fmt.Sprintf("bitops: input length %d != cols %d", x.Len(), m.cols))
	}
	if dst == nil {
		dst = make([]int, m.rows)
	} else if len(dst) != m.rows {
		panic(fmt.Sprintf("bitops: XnorPopcountAllInto dst length %d, want %d", len(dst), m.rows))
	}
	// Both x and every row are canonical (tail bits zero), so the XOR of
	// corresponding words has a clean tail and
	//
	//	Popcount(x ⊙ row) = cols − Σ Popcount(x ^ row words)
	//
	// — no per-word complement and no tail-mask special case.
	if m.rows == 0 {
		return dst
	}
	if hasXnorPopAsm && m.stride >= 8 {
		xnorPopMatrixAVX512(&m.words[0], &x.words[0], m.rows, m.stride, &dst[0])
		for r, c := range dst {
			dst[r] = m.cols - c
		}
		return dst
	}
	if m.stride == 16 {
		m.xnorPop16(x.words, dst)
		return dst
	}
	stride := m.stride
	xw := x.words[:stride] // bounds-check hint for the inner loop
	base := 0
	for r := 0; r < m.rows; r++ {
		c := 0
		for i, w := range m.words[base : base+stride] {
			c += bits.OnesCount64(w ^ xw[i])
		}
		dst[r] = m.cols - c
		base += stride
	}
	return dst
}

// xnorPop16 is the stride-16 (cols ≤ 1024) specialization of
// XnorPopcountAllInto: the 16 input words are hoisted into locals and
// each row is a straight-line chain of XOR+popcounts, which removes the
// inner loop control and the repeated x loads that dominate the generic
// path at this width.
func (m *Matrix) xnorPop16(xw []uint64, dst []int) {
	x0, x1, x2, x3 := xw[0], xw[1], xw[2], xw[3]
	x4, x5, x6, x7 := xw[4], xw[5], xw[6], xw[7]
	x8, x9, x10, x11 := xw[8], xw[9], xw[10], xw[11]
	x12, x13, x14, x15 := xw[12], xw[13], xw[14], xw[15]
	base := 0
	for r := 0; r < m.rows; r++ {
		row := m.words[base : base+16 : base+16]
		c := bits.OnesCount64(row[0]^x0) + bits.OnesCount64(row[1]^x1) +
			bits.OnesCount64(row[2]^x2) + bits.OnesCount64(row[3]^x3) +
			bits.OnesCount64(row[4]^x4) + bits.OnesCount64(row[5]^x5) +
			bits.OnesCount64(row[6]^x6) + bits.OnesCount64(row[7]^x7) +
			bits.OnesCount64(row[8]^x8) + bits.OnesCount64(row[9]^x9) +
			bits.OnesCount64(row[10]^x10) + bits.OnesCount64(row[11]^x11) +
			bits.OnesCount64(row[12]^x12) + bits.OnesCount64(row[13]^x13) +
			bits.OnesCount64(row[14]^x14) + bits.OnesCount64(row[15]^x15)
		dst[r] = m.cols - c
		base += 16
	}
}

// BipolarMatVec computes the {-1,+1} matrix-vector product via Eq. (1):
// out[i] = 2·Popcount(x ⊙ row_i) − cols.
func (m *Matrix) BipolarMatVec(x *Vector) []int {
	return m.BipolarMatVecInto(x, nil)
}

// BipolarMatVecInto is the zero-allocation variant of BipolarMatVec;
// dst must have length Rows (nil allocates).
func (m *Matrix) BipolarMatVecInto(x *Vector, dst []int) []int {
	dst = m.XnorPopcountAllInto(x, dst)
	for i, pc := range dst {
		dst[i] = 2*pc - m.cols
	}
	return dst
}
