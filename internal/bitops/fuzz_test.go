package bitops

import (
	"math/rand"
	"testing"
)

// Fuzz targets for the word-wise bit-range primitives (Blit, BlitNot,
// SliceInto, PopcountRange), cross-checked against naive bit-at-a-time
// references. The funnel-shift loops have their hairiest behavior
// around word boundaries — offsets and lengths straddling multiples of
// 64 — so the seed corpus pins those and the fuzzer mutates from there.
//
// Run with `go test -fuzz FuzzBlit ./internal/bitops` to explore; the
// seed corpus runs as part of the normal test suite.

// fuzzVector builds a deterministic pseudo-random vector of n bits.
func fuzzVector(n int, seed int64) *Vector {
	rng := rand.New(rand.NewSource(seed))
	v := NewVector(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

// clampRange maps arbitrary fuzz integers onto a valid [from,to) range
// of an n-bit vector.
func clampRange(n int, from, to int) (int, int) {
	if n == 0 {
		return 0, 0
	}
	from = ((from % n) + n) % n
	to = ((to % (n + 1)) + n + 1) % (n + 1)
	if from > to {
		from, to = to, from
	}
	return from, to
}

// seedBoundaryCorpus adds word-boundary-straddling cases shared by all
// four targets.
func seedBoundaryCorpus(f *testing.F) {
	f.Helper()
	f.Add(128, 130, 0, 64, 0, int64(1))
	f.Add(200, 200, 63, 129, 1, int64(2))   // crosses two word boundaries
	f.Add(64, 64, 0, 64, 0, int64(3))       // exactly one word
	f.Add(65, 191, 64, 65, 63, int64(4))    // single bit at a boundary
	f.Add(300, 300, 120, 250, 70, int64(5)) // long unaligned run
	f.Add(7, 70, 3, 7, 60, int64(6))        // tail-word only
	f.Add(1, 1, 0, 1, 0, int64(7))          // minimal
	f.Add(512, 512, 191, 385, 1, int64(8))  // off-by-one around 192/384
}

func FuzzBlit(f *testing.F) {
	seedBoundaryCorpus(f)
	f.Fuzz(func(t *testing.T, srcN, dstN, from, to, dstOff int, seed int64) {
		srcN, dstN = srcN%4096, dstN%4096
		if srcN <= 0 || dstN <= 0 {
			t.Skip()
		}
		from, to = clampRange(srcN, from, to)
		n := to - from
		if n > dstN {
			to = from + dstN
			n = dstN
		}
		dstOff = ((dstOff % dstN) + dstN) % dstN
		if dstOff+n > dstN {
			dstOff = dstN - n
		}
		src := fuzzVector(srcN, seed)
		dst := fuzzVector(dstN, seed+1)
		want := dst.Clone()
		for i := 0; i < n; i++ { // naive bit-at-a-time reference
			want.SetBool(dstOff+i, src.Get(from+i))
		}
		dst.Blit(dstOff, src, from, to)
		if !dst.Equal(want) {
			t.Fatalf("Blit(dstOff=%d, [%d,%d)) of %d→%d bits diverges from bitwise reference",
				dstOff, from, to, srcN, dstN)
		}
	})
}

func FuzzBlitNot(f *testing.F) {
	seedBoundaryCorpus(f)
	f.Fuzz(func(t *testing.T, srcN, dstN, from, to, dstOff int, seed int64) {
		srcN, dstN = srcN%4096, dstN%4096
		if srcN <= 0 || dstN <= 0 {
			t.Skip()
		}
		from, to = clampRange(srcN, from, to)
		n := to - from
		if n > dstN {
			to = from + dstN
			n = dstN
		}
		dstOff = ((dstOff % dstN) + dstN) % dstN
		if dstOff+n > dstN {
			dstOff = dstN - n
		}
		src := fuzzVector(srcN, seed)
		dst := fuzzVector(dstN, seed+1)
		want := dst.Clone()
		for i := 0; i < n; i++ {
			want.SetBool(dstOff+i, !src.Get(from+i))
		}
		dst.BlitNot(dstOff, src, from, to)
		if !dst.Equal(want) {
			t.Fatalf("BlitNot(dstOff=%d, [%d,%d)) of %d→%d bits diverges from bitwise reference",
				dstOff, from, to, srcN, dstN)
		}
		// Canonical form: tail bits past Len stay zero.
		if w := dst.Words(); len(w) > 0 && dstN%64 != 0 && w[len(w)-1]>>(uint(dstN)%64) != 0 {
			t.Fatalf("BlitNot left non-canonical tail bits")
		}
	})
}

func FuzzSliceInto(f *testing.F) {
	seedBoundaryCorpus(f)
	f.Fuzz(func(t *testing.T, srcN, _unused, from, to, reuse int, seed int64) {
		srcN = srcN % 4096
		if srcN <= 0 {
			t.Skip()
		}
		from, to = clampRange(srcN, from, to)
		src := fuzzVector(srcN, seed)
		var dst *Vector
		if reuse%2 == 1 {
			dst = fuzzVector(to-from, seed+2) // dirty destination must be fully overwritten
		}
		got := src.SliceInto(from, to, dst)
		if got.Len() != to-from {
			t.Fatalf("SliceInto [%d,%d): length %d", from, to, got.Len())
		}
		for i := 0; i < to-from; i++ {
			if got.Get(i) != src.Get(from+i) {
				t.Fatalf("SliceInto [%d,%d): bit %d diverges from bitwise reference", from, to, i)
			}
		}
		if got.Popcount() != src.PopcountRange(from, to) {
			t.Fatalf("SliceInto/PopcountRange disagree on [%d,%d)", from, to)
		}
	})
}

func FuzzPopcountRange(f *testing.F) {
	seedBoundaryCorpus(f)
	f.Fuzz(func(t *testing.T, srcN, _unused, from, to, _unused2 int, seed int64) {
		srcN = srcN % 4096
		if srcN <= 0 {
			t.Skip()
		}
		from, to = clampRange(srcN, from, to)
		src := fuzzVector(srcN, seed)
		want := 0
		for i := from; i < to; i++ {
			if src.Get(i) {
				want++
			}
		}
		if got := src.PopcountRange(from, to); got != want {
			t.Fatalf("PopcountRange [%d,%d) of %d bits = %d, bitwise reference %d",
				from, to, srcN, got, want)
		}
	})
}
