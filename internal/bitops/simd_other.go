//go:build !amd64

package bitops

var hasXnorPopAsm = false

func xnorPopMatrixAVX512(words, x *uint64, rows, stride int, dst *int) {
	panic("bitops: no assembly kernel on this architecture")
}
