package bitops

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomVector(rng *rand.Rand, n int) *Vector {
	v := NewVector(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestNewVectorZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := NewVector(n)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if v.Popcount() != 0 {
			t.Fatalf("new vector of len %d has popcount %d", n, v.Popcount())
		}
	}
}

func TestNewVectorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative length")
		}
	}()
	NewVector(-1)
}

func TestSetGetClear(t *testing.T) {
	v := NewVector(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	v := NewVector(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for index %d", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestNotCanonicalForm(t *testing.T) {
	// Complementing must not set bits beyond Len (would corrupt Popcount).
	for _, n := range []int{1, 5, 63, 64, 65, 100} {
		v := NewVector(n)
		nv := v.Not()
		if nv.Popcount() != n {
			t.Fatalf("Not of zero vector len %d has popcount %d, want %d", n, nv.Popcount(), n)
		}
		if nn := nv.Not(); !nn.Equal(v) {
			t.Fatalf("double complement differs for len %d", n)
		}
	}
}

func TestXnorKnownValues(t *testing.T) {
	a, err := Parse("1100")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("1010")
	if err != nil {
		t.Fatal(err)
	}
	got := a.Xnor(b).String()
	if got != "1001" {
		t.Fatalf("Xnor = %s, want 1001", got)
	}
	if pc := XnorPopcount(a, b); pc != 2 {
		t.Fatalf("XnorPopcount = %d, want 2", pc)
	}
	if dot := BipolarDot(a, b); dot != 0 {
		// {+1,+1,-1,-1}·{+1,-1,+1,-1} = 1-1-1+1 = 0
		t.Fatalf("BipolarDot = %d, want 0", dot)
	}
}

func TestBipolarDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		a := randomVector(rng, n)
		b := randomVector(rng, n)
		want := 0
		ab, bb := a.Bipolar(), b.Bipolar()
		for i := 0; i < n; i++ {
			want += ab[i] * bb[i]
		}
		if got := BipolarDot(a, b); got != want {
			t.Fatalf("n=%d: BipolarDot = %d, want %d", n, got, want)
		}
	}
}

// TestEquationOneIdentity checks the paper's Eq. (1):
// dot = 2*Popcount(XNOR) - len, via quick.Check over random bool slices.
func TestEquationOneIdentity(t *testing.T) {
	f := func(xs, ws []bool) bool {
		n := len(xs)
		if len(ws) < n {
			n = len(ws)
		}
		x := FromBools(xs[:n])
		w := FromBools(ws[:n])
		dot := 0
		for i := 0; i < n; i++ {
			xv, wv := -1, -1
			if xs[i] {
				xv = 1
			}
			if ws[i] {
				wv = 1
			}
			dot += xv * wv
		}
		return BipolarDot(x, w) == dot && XnorPopcount(x, w) == x.Xnor(w).Popcount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTacitMapColumnIdentity verifies the algebraic core of TacitMap:
// AND-popcount of [x ; ¬x] against [w ; ¬w] equals Popcount(XNOR(x,w)).
// This is why a 1T1R column storing [w ; ¬w] and driven with [x ; ¬x]
// reads out the XNOR+Popcount directly.
func TestTacitMapColumnIdentity(t *testing.T) {
	f := func(xs, ws []bool) bool {
		n := len(xs)
		if len(ws) < n {
			n = len(ws)
		}
		x := FromBools(xs[:n])
		w := FromBools(ws[:n])
		input := Concat(x, x.Not())
		column := Concat(w, w.Not())
		return AndPopcount(input, column) == XnorPopcount(x, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCustBinaryMapRowIdentity verifies the 2T2R interleaved layout:
// AND-popcount of interleaved (x, ¬x) against interleaved (w, ¬w) equals
// Popcount(XNOR(x,w)) as well — both mappings compute the same function,
// they differ only in geometry (rows vs columns) and hence parallelism.
func TestCustBinaryMapRowIdentity(t *testing.T) {
	f := func(xs, ws []bool) bool {
		n := len(xs)
		if len(ws) < n {
			n = len(ws)
		}
		x := FromBools(xs[:n])
		w := FromBools(ws[:n])
		input := Interleave(x, x.Not())
		row := Interleave(w, w.Not())
		return AndPopcount(input, row) == XnorPopcount(x, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := randomVector(rng, rng.Intn(150))
		b := randomVector(rng, rng.Intn(150))
		c := Concat(a, b)
		if c.Len() != a.Len()+b.Len() {
			t.Fatalf("concat len = %d", c.Len())
		}
		if !c.Slice(0, a.Len()).Equal(a) || !c.Slice(a.Len(), c.Len()).Equal(b) {
			t.Fatal("slice round trip failed")
		}
	}
}

func TestInterleave(t *testing.T) {
	a, _ := Parse("10")
	b, _ := Parse("01")
	got := Interleave(a, b).String()
	if got != "1001" {
		t.Fatalf("Interleave = %s, want 1001", got)
	}
}

func TestXorAndOr(t *testing.T) {
	a, _ := Parse("1100")
	b, _ := Parse("1010")
	if got := a.Xor(b).String(); got != "0110" {
		t.Fatalf("Xor = %s", got)
	}
	if got := a.And(b).String(); got != "1000" {
		t.Fatalf("And = %s", got)
	}
	if got := a.Or(b).String(); got != "1110" {
		t.Fatalf("Or = %s", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a := NewVector(4)
	b := NewVector(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	a.Xnor(b)
}

func TestFromBipolarFromFloats(t *testing.T) {
	v := FromBipolar([]int{1, -1, 1, -1, 0})
	if v.String() != "10100" {
		t.Fatalf("FromBipolar = %s", v.String())
	}
	f := FromFloats([]float64{0.5, -0.5, 0, 3})
	if f.String() != "1001" {
		t.Fatalf("FromFloats = %s", f.String())
	}
	bp := v.Bipolar()
	want := []int{1, -1, 1, -1, -1}
	for i := range want {
		if bp[i] != want[i] {
			t.Fatalf("Bipolar[%d] = %d, want %d", i, bp[i], want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("10x"); err == nil {
		t.Fatal("expected parse error")
	}
	v, err := Parse("0110")
	if err != nil || v.String() != "0110" {
		t.Fatalf("Parse round trip: %v %q", err, v.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := Parse("1010")
	b := a.Clone()
	b.Set(1)
	if a.Get(1) {
		t.Fatal("Clone shares storage")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if NewVector(3).Equal(NewVector(4)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestBoolsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randomVector(rng, 77)
	if !FromBools(v.Bools()).Equal(v) {
		t.Fatal("Bools round trip failed")
	}
}
