package bitops

import "einsteinbarrier/internal/cpu"

// xnorPopMatrixAVX512 is implemented in simd_amd64.s: for each of the
// rows it writes Σ Popcount(row word ^ x word) over the stride words to
// dst — the XOR-popcount sum XnorPopcountAllInto turns into
// Popcount(x ⊙ row) by subtracting from cols. One call covers the whole
// matrix, amortizing the per-call ZMM reduce over all rows.
//
//go:noescape
func xnorPopMatrixAVX512(words, x *uint64, rows, stride int, dst *int)

// hasXnorPopAsm gates the assembly path; tests flip it to pin both
// implementations against each other on capable hosts.
var hasXnorPopAsm = cpu.HasAVX512VPOPCNTDQ
