package bitops

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Intn(2) == 1 {
				m.Set(r, c, true)
			}
		}
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 5)
	if m.Rows() != 3 || m.Cols() != 5 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 4, true)
	if !m.Get(1, 4) || m.Get(0, 4) {
		t.Fatal("Set/Get broken")
	}
	col := m.Col(4)
	if col.String() != "010" {
		t.Fatalf("Col = %s", col.String())
	}
}

func TestMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	MatrixFromRows([]*Vector{NewVector(3), NewVector(4)})
}

func TestMatrixFromRowsClones(t *testing.T) {
	r := NewVector(4)
	m := MatrixFromRows([]*Vector{r})
	r.Set(0)
	if m.Get(0, 0) {
		t.Fatal("MatrixFromRows did not clone")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		m := randomMatrix(rng, 1+rng.Intn(20), 1+rng.Intn(20))
		tt := m.Transpose().Transpose()
		for r := 0; r < m.Rows(); r++ {
			if !tt.Row(r).Equal(m.Row(r)) {
				t.Fatal("transpose involution failed")
			}
		}
	}
}

func TestTransposeEntries(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 2, true)
	m.Set(1, 0, true)
	tr := m.Transpose()
	if !tr.Get(2, 0) || !tr.Get(0, 1) || tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatal("transpose entries wrong")
	}
}

func TestXnorPopcountAllMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 17, 40)
	x := randomVector(rng, 40)
	all := m.XnorPopcountAll(x)
	for r := 0; r < m.Rows(); r++ {
		if all[r] != XnorPopcount(x, m.Row(r)) {
			t.Fatalf("row %d mismatch", r)
		}
	}
}

func TestBipolarMatVecProperty(t *testing.T) {
	// For any binary matrix and input, BipolarMatVec must equal the naive
	// {-1,+1} matrix-vector product.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(40)
		m := randomMatrix(rng, rows, cols)
		x := randomVector(rng, cols)
		got := m.BipolarMatVec(x)
		xb := x.Bipolar()
		for r := 0; r < rows; r++ {
			wb := m.Row(r).Bipolar()
			want := 0
			for c := 0; c < cols; c++ {
				want += xb[c] * wb[c]
			}
			if got[r] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestXnorPopcountAllSizeMismatchPanics(t *testing.T) {
	m := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.XnorPopcountAll(NewVector(4))
}

func TestMatrixClone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMatrix(rng, 5, 9)
	c := m.Clone()
	c.Set(0, 0, !m.Get(0, 0))
	if c.Get(0, 0) == m.Get(0, 0) {
		t.Fatal("clone shares storage")
	}
}
