package bitops

import (
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, n int) *Vector {
	v := NewVector(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestBlitMatchesPerBitReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		srcLen := 1 + rng.Intn(300)
		dstLen := 1 + rng.Intn(300)
		src := randVec(rng, srcLen)
		dst := randVec(rng, dstLen)
		from := rng.Intn(srcLen + 1)
		to := from + rng.Intn(srcLen-from+1)
		n := to - from
		if n > dstLen {
			to = from + dstLen
			n = to - from
		}
		dstOff := rng.Intn(dstLen - n + 1)
		invert := rng.Intn(2) == 1

		want := dst.Clone()
		for i := 0; i < n; i++ {
			want.SetBool(dstOff+i, src.Get(from+i) != invert)
		}
		got := dst.Clone()
		if invert {
			got.BlitNot(dstOff, src, from, to)
		} else {
			got.Blit(dstOff, src, from, to)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: blit(%d, [%d,%d), invert=%v) mismatch\ngot  %s\nwant %s",
				trial, dstOff, from, to, invert, got, want)
		}
	}
}

func TestBlitPanicsOutOfRange(t *testing.T) {
	src := NewVector(10)
	dst := NewVector(10)
	for _, f := range []func(){
		func() { dst.Blit(5, src, 0, 10) },   // overflows dst
		func() { dst.Blit(0, src, 3, 11) },   // src range out of bounds
		func() { dst.Blit(-1, src, 0, 1) },   // negative offset
		func() { dst.BlitNot(0, src, 5, 4) }, // inverted range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSliceIntoMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(250)
		v := randVec(rng, n)
		from := rng.Intn(n + 1)
		to := from + rng.Intn(n-from+1)
		want := v.Slice(from, to)
		got := v.SliceInto(from, to, nil)
		if !got.Equal(want) {
			t.Fatalf("SliceInto [%d,%d) of %d mismatch", from, to, n)
		}
		dst := randVec(rng, to-from)
		if !v.SliceInto(from, to, dst).Equal(want) {
			t.Fatalf("SliceInto reuse [%d,%d) of %d mismatch", from, to, n)
		}
	}
}

func TestPopcountRangeMatchesPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(300)
		v := randVec(rng, n)
		from := rng.Intn(n + 1)
		to := from + rng.Intn(n-from+1)
		want := 0
		for i := from; i < to; i++ {
			if v.Get(i) {
				want++
			}
		}
		if got := v.PopcountRange(from, to); got != want {
			t.Fatalf("PopcountRange(%d,%d) = %d, want %d", from, to, got, want)
		}
	}
	v := NewVector(130)
	if v.PopcountRange(0, 0) != 0 || v.PopcountRange(130, 130) != 0 {
		t.Fatal("empty range must count zero")
	}
}

func TestMatrixCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := NewMatrix(9, 70)
	for r := 0; r < 9; r++ {
		for c := 0; c < 70; c++ {
			src.Set(r, c, rng.Intn(2) == 1)
		}
	}
	dst := NewMatrix(9, 70)
	dst.Set(0, 0, true)
	dst.CopyFrom(src)
	for r := 0; r < 9; r++ {
		if !dst.Row(r).Equal(src.Row(r)) {
			t.Fatal("CopyFrom mismatch")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	dst.CopyFrom(NewMatrix(3, 3))
}
