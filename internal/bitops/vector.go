// Package bitops provides bit-packed binary vectors and the low-level
// XNOR/popcount arithmetic that underpins binary neural networks (BNNs).
//
// A BNN replaces the multiply-accumulate at the heart of a dense or
// convolutional layer with the identity (Eq. (1) of the paper):
//
//	In ⊛ W = 2 × Popcount(In' ⊙ W') − VectorLength
//
// where ⊙ is XNOR over the {0,1} encodings In', W' of the {-1,+1}
// vectors In, W. Everything in this package is exact integer math and is
// the software reference against which the analog crossbar simulator
// (internal/crossbar) and the mapping engines (internal/mapping) are
// verified.
package bitops

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector packed into 64-bit words.
// Bit i of the vector is bit (i % 64) of word i/64. Bits beyond Len in
// the final word are always zero ("canonical form"); every mutating
// operation restores this invariant so Popcount and Equal are O(words).
type Vector struct {
	n     int
	words []uint64
}

// NewVector returns an all-zero vector of length n bits.
// It panics if n is negative.
func NewVector(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitops: negative vector length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, wordsFor(n))}
}

// FromBools builds a vector from a slice of booleans (true = 1).
func FromBools(b []bool) *Vector {
	v := NewVector(len(b))
	for i, bit := range b {
		if bit {
			v.Set(i)
		}
	}
	return v
}

// FromBipolar builds a {0,1} vector from a {-1,+1} slice using the
// standard BNN encoding +1 → 1, -1 → 0. Any value > 0 maps to 1 so that
// the same helper binarizes real-valued pre-activations (sign function).
func FromBipolar(x []int) *Vector {
	return NewVector(len(x)).SetFromBipolar(x)
}

// FromFloats binarizes a float slice with the sign function
// (x > 0 → 1, x ≤ 0 → 0), the binarization used for BNN activations.
// The allocation-free form is Vector.SetFromFloats.
func FromFloats(x []float64) *Vector {
	return NewVector(len(x)).SetFromFloats(x)
}

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Len returns the length of the vector in bits.
func (v *Vector) Len() int { return v.n }

// Words exposes the underlying packed words (read-only by convention).
// The final word is in canonical form (tail bits zero).
func (v *Vector) Words() []uint64 { return v.words }

// Get reports whether bit i is set. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetBool sets bit i to b.
func (v *Vector) SetBool(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitops: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := NewVector(v.n)
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and u have the same length and bits.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// mask returns the canonical-form mask for the last word.
func (v *Vector) mask() uint64 {
	r := uint(v.n % wordBits)
	if r == 0 {
		return ^uint64(0)
	}
	return (1 << r) - 1
}

// canonicalize zeroes the tail bits of the final word.
func (v *Vector) canonicalize() {
	if len(v.words) > 0 {
		v.words[len(v.words)-1] &= v.mask()
	}
}

// Popcount returns the number of set bits in v.
func (v *Vector) Popcount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Not returns the bitwise complement of v (in canonical form).
// The complement is central to both mappings in the paper: TacitMap
// stores [W ; ¬W] vertically, CustBinaryMap interleaves W with ¬W.
func (v *Vector) Not() *Vector { return v.NotInto(nil) }

// Xnor returns the bitwise XNOR of v and u. It panics on length mismatch.
func (v *Vector) Xnor(u *Vector) *Vector { return v.XnorInto(u, nil) }

// Xor returns the bitwise XOR of v and u. It panics on length mismatch.
func (v *Vector) Xor(u *Vector) *Vector { return v.XorInto(u, nil) }

// And returns the bitwise AND of v and u. It panics on length mismatch.
func (v *Vector) And(u *Vector) *Vector { return v.AndInto(u, nil) }

// Or returns the bitwise OR of v and u. It panics on length mismatch.
func (v *Vector) Or(u *Vector) *Vector { return v.OrInto(u, nil) }

func (v *Vector) sameLen(u *Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitops: length mismatch %d vs %d", v.n, u.n))
	}
}

// XnorPopcount returns Popcount(v ⊙ u) without allocating the
// intermediate vector. This is the exact quantity a TacitMap column
// produces in one analog step.
func XnorPopcount(v, u *Vector) int {
	v.sameLen(u)
	if len(v.words) == 0 {
		return 0
	}
	c := 0
	last := len(v.words) - 1
	for i := 0; i < last; i++ {
		c += bits.OnesCount64(^(v.words[i] ^ u.words[i]))
	}
	c += bits.OnesCount64(^(v.words[last] ^ u.words[last]) & v.mask())
	return c
}

// BipolarDot returns the {-1,+1} dot product of the vectors encoded by
// v and u using the Eq. (1) identity:
//
//	dot = 2·Popcount(v ⊙ u) − Len
func BipolarDot(v, u *Vector) int {
	return 2*XnorPopcount(v, u) - v.Len()
}

// AndPopcount returns Popcount(v & u), the quantity a raw (non-mapped)
// binary crossbar column accumulates: current flows only where the input
// line is driven (bit 1) and the cell is in the low-resistance /
// high-transmittance state (bit 1).
func AndPopcount(v, u *Vector) int {
	v.sameLen(u)
	c := 0
	for i := range v.words {
		c += bits.OnesCount64(v.words[i] & u.words[i])
	}
	return c
}

// Concat returns the concatenation v ∥ u. TacitMap applies [X ; ¬X] to
// the crossbar rows, i.e. Concat(x, x.Not()).
func Concat(v, u *Vector) *Vector {
	w := NewVector(v.n + u.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			w.Set(i)
		}
	}
	for i := 0; i < u.n; i++ {
		if u.Get(i) {
			w.Set(v.n + i)
		}
	}
	return w
}

// Interleave returns the bitwise interleaving v0 u0 v1 u1 …, the layout
// CustBinaryMap uses to store a weight row (w ¬w pairs in 2T2R cells).
// It panics if the lengths differ.
func Interleave(v, u *Vector) *Vector {
	v.sameLen(u)
	w := NewVector(2 * v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			w.Set(2 * i)
		}
		if u.Get(i) {
			w.Set(2*i + 1)
		}
	}
	return w
}

// Slice returns the sub-vector [from, to). It panics if the range is
// invalid.
func (v *Vector) Slice(from, to int) *Vector {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitops: bad slice [%d,%d) of %d", from, to, v.n))
	}
	w := NewVector(to - from)
	for i := from; i < to; i++ {
		if v.Get(i) {
			w.Set(i - from)
		}
	}
	return w
}

// Bools expands the vector to a []bool.
func (v *Vector) Bools() []bool {
	out := make([]bool, v.n)
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

// Bipolar expands the vector to a {-1,+1} int slice (1 → +1, 0 → −1).
func (v *Vector) Bipolar() []int {
	out := make([]int, v.n)
	for i := range out {
		if v.Get(i) {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// String renders the vector MSB-last as a 0/1 string, e.g. "01101".
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse parses a 0/1 string produced by String.
func Parse(s string) (*Vector, error) {
	v := NewVector(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			v.Set(i)
		case '0':
		default:
			return nil, fmt.Errorf("bitops: invalid character %q at %d", s[i], i)
		}
	}
	return v, nil
}
