#include "textflag.h"

// func xnorPopMatrixAVX512(words, x *uint64, rows, stride int, dst *int)
//
// dst[r] = Σ_i Popcount(words[r*stride+i] ^ x[i]) for r in [0, rows).
// Full 8-word chunks go through VPXORQ+VPOPCNTQ+VPADDQ on ZMM; the
// stride%8 tail is scalar XORQ+POPCNTQ. Requires AVX-512F + VPOPCNTDQ.
TEXT ·xnorPopMatrixAVX512(SB), NOSPLIT, $0-40
	MOVQ words+0(FP), AX
	MOVQ x+8(FP), BX
	MOVQ rows+16(FP), CX
	MOVQ stride+24(FP), DX
	MOVQ dst+32(FP), DI

rowloop:
	TESTQ CX, CX
	JZ    done
	VPXORQ Z0, Z0, Z0
	MOVQ  AX, R9
	MOVQ  BX, R10
	MOVQ  DX, R8

chunk:
	CMPQ R8, $8
	JL   reduce
	VMOVDQU64 (R9), Z1
	VPXORQ (R10), Z1, Z1
	VPOPCNTQ Z1, Z1
	VPADDQ Z1, Z0, Z0
	ADDQ $64, R9
	ADDQ $64, R10
	SUBQ $8, R8
	JMP  chunk

reduce:
	VEXTRACTI64X4 $1, Z0, Y1
	VPADDQ Y1, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDQ X1, X0, X0
	VPSRLDQ $8, X0, X1
	VPADDQ X1, X0, X0
	MOVQ X0, R12

tailloop:
	TESTQ R8, R8
	JZ    rowdone
	MOVQ  (R9), R11
	XORQ  (R10), R11
	POPCNTQ R11, R11
	ADDQ  R11, R12
	ADDQ  $8, R9
	ADDQ  $8, R10
	DECQ  R8
	JMP   tailloop

rowdone:
	MOVQ R12, (DI)
	ADDQ $8, DI
	LEAQ (AX)(DX*8), AX
	DECQ CX
	JMP  rowloop

done:
	VZEROUPPER
	RET
