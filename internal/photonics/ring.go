package photonics

import (
	"fmt"
	"math"
)

// Microresonator model. The transmitter's frequency comb and the
// (de)multiplexer filters (paper Fig. 6, components 2 and 3) are ring
// resonators. Their Lorentzian response sets how closely WDM channels
// can be packed: adjacent-channel leakage through a filter's tail is
// exactly the crosstalk floor that bounds the usable capacity K — the
// physics behind the paper's "current technologies can support up to a
// capacity of K = 16".

// Ring describes one add-drop microresonator.
type Ring struct {
	// FSRGHz is the free spectral range — the comb's total usable span.
	FSRGHz float64
	// LinewidthGHz is the full width at half maximum of the resonance
	// (FSR / finesse).
	LinewidthGHz float64
	// TuningMWPerGHz is the thermal tuning power to shift the resonance
	// by 1 GHz.
	TuningMWPerGHz float64
}

// DefaultRing returns silicon-microring typicals: 1 THz FSR, 5 GHz
// linewidth (finesse 200), 0.25 mW/GHz thermal tuning.
func DefaultRing() Ring {
	return Ring{FSRGHz: 1000, LinewidthGHz: 5, TuningMWPerGHz: 0.25}
}

// Validate checks physical plausibility.
func (r Ring) Validate() error {
	switch {
	case r.FSRGHz <= 0:
		return fmt.Errorf("photonics: FSR must be positive")
	case r.LinewidthGHz <= 0 || r.LinewidthGHz >= r.FSRGHz:
		return fmt.Errorf("photonics: linewidth %g must be in (0, FSR)", r.LinewidthGHz)
	case r.TuningMWPerGHz < 0:
		return fmt.Errorf("photonics: negative tuning efficiency")
	}
	return nil
}

// Finesse returns FSR/linewidth.
func (r Ring) Finesse() float64 { return r.FSRGHz / r.LinewidthGHz }

// DropTransmission returns the drop-port power transmission at a
// detuning δ from resonance: the Lorentzian 1 / (1 + (2δ/Δν)²).
func (r Ring) DropTransmission(detuneGHz float64) float64 {
	x := 2 * detuneGHz / r.LinewidthGHz
	return 1 / (1 + x*x)
}

// AdjacentChannelIsolationDB returns the drop-port suppression of a
// neighbor `spacingGHz` away: 10·log10 of its Lorentzian tail.
func (r Ring) AdjacentChannelIsolationDB(spacingGHz float64) float64 {
	return 10 * math.Log10(r.DropTransmission(spacingGHz))
}

// TuningPowerMW returns the thermal power to hold the ring at a given
// detuning from its as-fabricated resonance.
func (r Ring) TuningPowerMW(detuneGHz float64) float64 {
	return math.Abs(detuneGHz) * r.TuningMWPerGHz
}

// ChannelPlan is a WDM grid realized with identical rings.
type ChannelPlan struct {
	// K is the channel count, SpacingGHz the grid pitch.
	K          int
	SpacingGHz float64
	// IsolationDB is the resulting adjacent-channel isolation.
	IsolationDB float64
	// WorstEye is the worst-case eye opening of a K-channel link at
	// that isolation (via TransmitterConfig).
	WorstEye float64
}

// PlanChannels spreads K channels across the ring's FSR and reports the
// resulting isolation and link eye. It errs if the channels do not fit
// (pitch below 3 linewidths makes even the center channel lossy).
func (r Ring) PlanChannels(k int) (ChannelPlan, error) {
	if err := r.Validate(); err != nil {
		return ChannelPlan{}, err
	}
	if k < 1 {
		return ChannelPlan{}, fmt.Errorf("photonics: k %d must be ≥ 1", k)
	}
	spacing := r.FSRGHz / float64(k)
	if spacing < 3*r.LinewidthGHz {
		return ChannelPlan{}, fmt.Errorf("photonics: %d channels need %.1f GHz pitch < 3 linewidths (%g GHz)",
			k, spacing, 3*r.LinewidthGHz)
	}
	iso := r.AdjacentChannelIsolationDB(spacing)
	cfg := DefaultTransmitterConfig(minInt(k, MaxWDMCapacity), 256)
	cfg.ChannelIsolationDB = iso
	plan := ChannelPlan{K: k, SpacingGHz: spacing, IsolationDB: iso}
	if k <= MaxWDMCapacity {
		plan.WorstEye = cfg.WorstCaseEyeOpening()
	}
	return plan, nil
}

// MaxRobustCapacity returns the largest K whose planned eye opening
// stays above minEye — the device-level derivation of the paper's
// capacity limit.
func (r Ring) MaxRobustCapacity(minEye float64) int {
	best := 1
	for k := 2; k <= MaxWDMCapacity; k++ {
		plan, err := r.PlanChannels(k)
		if err != nil {
			break
		}
		if plan.WorstEye >= minEye {
			best = k
		}
	}
	return best
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
