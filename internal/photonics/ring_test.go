package photonics

import (
	"math"
	"testing"
)

func TestRingValidate(t *testing.T) {
	if err := DefaultRing().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Ring{
		{FSRGHz: 0, LinewidthGHz: 5},
		{FSRGHz: 100, LinewidthGHz: 0},
		{FSRGHz: 100, LinewidthGHz: 200},
		{FSRGHz: 100, LinewidthGHz: 5, TuningMWPerGHz: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestLorentzianShape(t *testing.T) {
	r := DefaultRing()
	if got := r.DropTransmission(0); got != 1 {
		t.Fatalf("on-resonance transmission = %g", got)
	}
	// Half maximum at δ = linewidth/2.
	if got := r.DropTransmission(r.LinewidthGHz / 2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FWHM point = %g, want 0.5", got)
	}
	if r.DropTransmission(10) <= r.DropTransmission(50) {
		t.Fatal("transmission must fall with detuning")
	}
	if r.DropTransmission(-7) != r.DropTransmission(7) {
		t.Fatal("Lorentzian must be symmetric")
	}
}

func TestFinesseAndTuning(t *testing.T) {
	r := DefaultRing()
	if got := r.Finesse(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("finesse = %g", got)
	}
	if r.TuningPowerMW(-4) != r.TuningPowerMW(4) {
		t.Fatal("tuning power must be symmetric in detuning")
	}
	if r.TuningPowerMW(10) != 2.5 {
		t.Fatalf("tuning power = %g, want 2.5 mW", r.TuningPowerMW(10))
	}
}

func TestIsolationImprovesWithSpacing(t *testing.T) {
	r := DefaultRing()
	prev := 0.0
	for _, s := range []float64{20.0, 62.5, 125, 250} {
		iso := r.AdjacentChannelIsolationDB(s)
		if iso >= prev {
			t.Fatalf("isolation not improving at %g GHz: %g >= %g", s, iso, prev)
		}
		prev = iso
	}
}

func TestPlanChannels(t *testing.T) {
	r := DefaultRing()
	plan, err := r.PlanChannels(16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SpacingGHz != 62.5 {
		t.Fatalf("spacing = %g", plan.SpacingGHz)
	}
	if plan.IsolationDB > -20 {
		t.Fatalf("K=16 isolation %g dB too weak for a finesse-200 ring", plan.IsolationDB)
	}
	if plan.WorstEye <= 0.9 {
		t.Fatalf("K=16 eye %g should be clean at this isolation", plan.WorstEye)
	}
}

func TestPlanChannelsRejectsOverpacking(t *testing.T) {
	r := DefaultRing()
	r.LinewidthGHz = 30 // sloppy ring: 16 channels at 62.5 GHz < 3 linewidths
	if _, err := r.PlanChannels(16); err == nil {
		t.Fatal("expected overpacking error")
	}
	if _, err := r.PlanChannels(0); err == nil {
		t.Fatal("expected k≥1 error")
	}
}

// TestCapacityLimitDerivation: a good ring supports the paper's K = 16;
// a lossy one cannot — the device-level origin of the capacity bound.
func TestCapacityLimitDerivation(t *testing.T) {
	good := DefaultRing()
	if k := good.MaxRobustCapacity(0.9); k != MaxWDMCapacity {
		t.Fatalf("finesse-200 ring should reach K=%d, got %d", MaxWDMCapacity, k)
	}
	bad := DefaultRing()
	bad.LinewidthGHz = 25 // finesse 40
	if k := bad.MaxRobustCapacity(0.9); k >= MaxWDMCapacity {
		t.Fatalf("finesse-40 ring should not reach K=16, got %d", k)
	}
}
