// Package photonics models the optical path of an EinsteinBarrier ECore:
// the WDM transmitter (laser → microresonator frequency comb → DMUX →
// per-wavelength variable optical attenuators (VOAs) → MUX) that encodes
// up to K input vectors onto K wavelengths of a single waveguide
// (paper Fig. 6), and the receiver (per-column photodetection → DMUX →
// transimpedance amplifiers (TIAs) feeding the ADCs, paper §IV-A1).
//
// It also implements the paper's two power-overhead models:
//
//	Eq. (2):  P_crossbar = N × 2 mW              (one TIA per column)
//	Eq. (3):  P_total = P_laser + 3·K·M mW + 3·(K·M+1)/K × 45 mW
//
// for a WDM capacity K and an M×N crossbar.
package photonics

import (
	"fmt"
	"math"
	"math/rand"
)

// TIAPowerMW is the per-TIA power from Eq. (2), in mW.
const TIAPowerMW = 2.0

// TuningPowerMW is the per-group microresonator tuning power from
// Eq. (3), in mW.
const TuningPowerMW = 45.0

// ModulatorPowerMW is the per-(wavelength·row) modulator drive power
// from Eq. (3), in mW.
const ModulatorPowerMW = 3.0

// MaxWDMCapacity is the largest wavelength count current technology
// supports while keeping channels separable at the TIA (paper §IV-A2,
// citing Feldmann et al.): K = 16.
const MaxWDMCapacity = 16

// TransmitterConfig describes one ECore transmitter.
type TransmitterConfig struct {
	// Capacity is the WDM capacity K: how many wavelengths (hence input
	// vectors) can share the waveguide and still be detected.
	Capacity int
	// RowCount M is the number of crossbar rows the transmitter feeds.
	RowCount int
	// LaserPowerMW is the continuous-wave pump power (P_laser in Eq. 3).
	LaserPowerMW float64
	// CombEfficiency is the fraction of pump power converted into comb
	// lines (the rest is lost in the resonator).
	CombEfficiency float64
	// VOAExtinctionDB is the attenuation a VOA applies for a 0 bit.
	VOAExtinctionDB float64
	// MuxInsertionLossDB is the per-pass insertion loss of each
	// MUX/DMUX stage.
	MuxInsertionLossDB float64
	// ChannelIsolationDB is the inter-channel isolation of the receiver
	// DMUX (negative: e.g. -30 dB leaks 0.1%).
	ChannelIsolationDB float64
}

// DefaultTransmitterConfig returns the evaluation defaults for an M-row
// crossbar at capacity K.
func DefaultTransmitterConfig(k, rows int) TransmitterConfig {
	return TransmitterConfig{
		Capacity:           k,
		RowCount:           rows,
		LaserPowerMW:       100,
		CombEfficiency:     0.3,
		VOAExtinctionDB:    25,
		MuxInsertionLossDB: 1.5,
		ChannelIsolationDB: -30,
	}
}

// Validate checks the configuration.
func (c TransmitterConfig) Validate() error {
	switch {
	case c.Capacity < 1 || c.Capacity > MaxWDMCapacity:
		return fmt.Errorf("photonics: capacity %d outside [1,%d]", c.Capacity, MaxWDMCapacity)
	case c.RowCount < 1:
		return fmt.Errorf("photonics: row count %d must be positive", c.RowCount)
	case c.LaserPowerMW <= 0:
		return fmt.Errorf("photonics: laser power must be positive")
	case c.CombEfficiency <= 0 || c.CombEfficiency > 1:
		return fmt.Errorf("photonics: comb efficiency %g outside (0,1]", c.CombEfficiency)
	case c.VOAExtinctionDB <= 0:
		return fmt.Errorf("photonics: VOA extinction must be positive dB")
	case c.MuxInsertionLossDB < 0:
		return fmt.Errorf("photonics: negative insertion loss")
	case c.ChannelIsolationDB > 0:
		return fmt.Errorf("photonics: channel isolation must be ≤ 0 dB")
	}
	return nil
}

// CrossbarTIAPowerMW implements Eq. (2): the receiver adds one 2 mW TIA
// per crossbar column (N columns).
func CrossbarTIAPowerMW(nCols int) float64 {
	if nCols < 0 {
		panic("photonics: negative column count")
	}
	return float64(nCols) * TIAPowerMW
}

// TransmitterPowerMW implements Eq. (3) for WDM capacity K and M rows:
//
//	P_total = P_laser + 3·K·M + 3·(K·M+1)/K × 45   [mW]
//
// The middle term is the modulator (VOA) drive power, the last the
// microresonator comb and MUX thermal tuning.
func (c TransmitterConfig) TransmitterPowerMW() float64 {
	km := float64(c.Capacity * c.RowCount)
	return c.LaserPowerMW + ModulatorPowerMW*km +
		ModulatorPowerMW*(km+1)/float64(c.Capacity)*TuningPowerMW
}

// dbToLinear converts a dB power ratio to linear.
func dbToLinear(db float64) float64 { return math.Pow(10, db/10) }

// Frame is one WDM-encoded symbol: per-wavelength, per-row optical
// powers (mW) on the shared waveguide.
type Frame struct {
	// Power[k][r] is the power of wavelength k on row r.
	Power [][]float64
	// K and Rows echo the dimensions.
	K, Rows int
}

// Modulate encodes up to Capacity binary input vectors (bits[k][r],
// true = transmit) into a Frame: the comb splits the pump into K lines,
// the DMUX routes each to its VOA bank, a VOA passes (1) or attenuates
// (0) each row's light, and the MUX recombines everything onto the
// waveguide. Returns an error if more vectors than Capacity are given
// or the lengths disagree with RowCount.
func (c TransmitterConfig) Modulate(bits [][]bool) (*Frame, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(bits) == 0 || len(bits) > c.Capacity {
		return nil, fmt.Errorf("photonics: %d input vectors for capacity %d", len(bits), c.Capacity)
	}
	for i, b := range bits {
		if len(b) != c.RowCount {
			return nil, fmt.Errorf("photonics: vector %d has %d rows, want %d", i, len(b), c.RowCount)
		}
	}
	// Pump power divides across K comb lines after conversion loss, then
	// suffers DMUX + MUX insertion loss (two passes).
	perLine := c.LaserPowerMW * c.CombEfficiency / float64(c.Capacity)
	perLine *= dbToLinear(-2 * c.MuxInsertionLossDB)
	off := dbToLinear(-c.VOAExtinctionDB)
	f := &Frame{K: len(bits), Rows: c.RowCount, Power: make([][]float64, len(bits))}
	for k, vec := range bits {
		f.Power[k] = make([]float64, c.RowCount)
		for r, bit := range vec {
			if bit {
				f.Power[k][r] = perLine
			} else {
				f.Power[k][r] = perLine * off
			}
		}
	}
	return f, nil
}

// Receiver models the per-column detection chain: DMUX (with finite
// channel isolation), photodiode, and TIA.
type Receiver struct {
	cfg TransmitterConfig
	// Responsivity of the photodiodes in A/W.
	Responsivity float64
	// TIANoiseSigma is the input-referred TIA noise as a fraction of the
	// per-line full-scale signal.
	TIANoiseSigma float64
	rng           *rand.Rand
}

// NewReceiver builds a receiver matched to the transmitter configuration.
// A nil rng disables TIA noise.
func NewReceiver(cfg TransmitterConfig, rng *rand.Rand) *Receiver {
	return &Receiver{cfg: cfg, Responsivity: 1.0, TIANoiseSigma: 0.002, rng: rng}
}

// Demodulate recovers, for each wavelength, the per-row received power
// including inter-channel leakage, and thresholds it back to bits.
// It is the loopback validation of the transmitter: Demodulate ∘
// Modulate must be the identity at sane isolation levels.
func (rx *Receiver) Demodulate(f *Frame) ([][]bool, error) {
	if f == nil || f.K == 0 {
		return nil, fmt.Errorf("photonics: empty frame")
	}
	leak := dbToLinear(rx.cfg.ChannelIsolationDB)
	perLine := rx.cfg.LaserPowerMW * rx.cfg.CombEfficiency / float64(rx.cfg.Capacity) *
		dbToLinear(-2*rx.cfg.MuxInsertionLossDB)
	threshold := perLine / 2
	out := make([][]bool, f.K)
	for k := 0; k < f.K; k++ {
		out[k] = make([]bool, f.Rows)
		for r := 0; r < f.Rows; r++ {
			p := f.Power[k][r]
			for j := 0; j < f.K; j++ {
				if j != k {
					p += leak * f.Power[j][r]
				}
			}
			if rx.rng != nil && rx.TIANoiseSigma > 0 {
				p += rx.rng.NormFloat64() * rx.TIANoiseSigma * perLine
			}
			out[k][r] = p > threshold
		}
	}
	return out, nil
}

// WorstCaseEyeOpening returns the normalized eye opening (1 = perfect)
// of a K-channel link: the gap between the lowest 1-level and the
// highest 0-level after worst-case crosstalk, divided by the nominal
// swing. A non-positive value means the link cannot be decoded — the
// analytic justification for the K ≤ 16 capacity limit.
func (c TransmitterConfig) WorstCaseEyeOpening() float64 {
	leak := dbToLinear(c.ChannelIsolationDB)
	off := dbToLinear(-c.VOAExtinctionDB)
	k := float64(c.Capacity)
	// Worst case: victim 1 with all aggressors 0 vs victim 0 with all
	// aggressors 1 (normalized to per-line power).
	low1 := 1.0 + leak*(k-1)*off
	high0 := off + leak*(k-1)*1.0
	return (low1 - high0) / (1.0 - off)
}
