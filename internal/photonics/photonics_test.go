package photonics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultTransmitterConfig(16, 256).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*TransmitterConfig){
		func(c *TransmitterConfig) { c.Capacity = 0 },
		func(c *TransmitterConfig) { c.Capacity = MaxWDMCapacity + 1 },
		func(c *TransmitterConfig) { c.RowCount = 0 },
		func(c *TransmitterConfig) { c.LaserPowerMW = 0 },
		func(c *TransmitterConfig) { c.CombEfficiency = 0 },
		func(c *TransmitterConfig) { c.CombEfficiency = 1.1 },
		func(c *TransmitterConfig) { c.VOAExtinctionDB = 0 },
		func(c *TransmitterConfig) { c.MuxInsertionLossDB = -1 },
		func(c *TransmitterConfig) { c.ChannelIsolationDB = 5 },
	}
	for i, mutate := range cases {
		cfg := DefaultTransmitterConfig(8, 64)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestEquation2(t *testing.T) {
	// Eq. (2): P_crossbar = N × 2 mW.
	if got := CrossbarTIAPowerMW(256); got != 512 {
		t.Fatalf("Eq.2 for N=256 = %g, want 512", got)
	}
	if got := CrossbarTIAPowerMW(0); got != 0 {
		t.Fatalf("Eq.2 for N=0 = %g", got)
	}
}

func TestEquation2NegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossbarTIAPowerMW(-1)
}

func TestEquation3(t *testing.T) {
	// Eq. (3): P_total = P_laser + 3·K·M + 3·(K·M+1)/K·45 mW.
	cfg := DefaultTransmitterConfig(16, 256)
	cfg.LaserPowerMW = 100
	km := 16.0 * 256.0
	want := 100 + 3*km + 3*(km+1)/16*45
	if got := cfg.TransmitterPowerMW(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Eq.3 = %g, want %g", got, want)
	}
}

func TestEquation3MonotoneInK(t *testing.T) {
	prev := 0.0
	for k := 1; k <= MaxWDMCapacity; k++ {
		cfg := DefaultTransmitterConfig(k, 256)
		p := cfg.TransmitterPowerMW()
		if p <= prev {
			t.Fatalf("Eq.3 not increasing at K=%d: %g <= %g", k, p, prev)
		}
		prev = p
	}
}

func TestModulateDemodulateRoundTrip(t *testing.T) {
	cfg := DefaultTransmitterConfig(16, 64)
	rng := rand.New(rand.NewSource(3))
	bits := make([][]bool, 16)
	for k := range bits {
		bits[k] = make([]bool, 64)
		for r := range bits[k] {
			bits[k][r] = rng.Intn(2) == 1
		}
	}
	frame, err := cfg.Modulate(bits)
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver(cfg, rng)
	got, err := rx.Demodulate(frame)
	if err != nil {
		t.Fatal(err)
	}
	for k := range bits {
		for r := range bits[k] {
			if got[k][r] != bits[k][r] {
				t.Fatalf("λ%d row %d: decoded %v, want %v", k, r, got[k][r], bits[k][r])
			}
		}
	}
}

func TestModulateErrors(t *testing.T) {
	cfg := DefaultTransmitterConfig(2, 4)
	if _, err := cfg.Modulate(nil); err == nil {
		t.Fatal("expected error for no vectors")
	}
	three := [][]bool{make([]bool, 4), make([]bool, 4), make([]bool, 4)}
	if _, err := cfg.Modulate(three); err == nil {
		t.Fatal("expected error for > capacity vectors")
	}
	if _, err := cfg.Modulate([][]bool{make([]bool, 5)}); err == nil {
		t.Fatal("expected error for wrong row count")
	}
}

func TestDemodulateEmptyFrame(t *testing.T) {
	rx := NewReceiver(DefaultTransmitterConfig(2, 4), nil)
	if _, err := rx.Demodulate(nil); err == nil {
		t.Fatal("expected error for nil frame")
	}
}

func TestFrameConservesPowerBudget(t *testing.T) {
	// Total frame power can never exceed pump power (passive optics).
	cfg := DefaultTransmitterConfig(8, 32)
	bits := make([][]bool, 8)
	for k := range bits {
		bits[k] = make([]bool, 32)
		for r := range bits[k] {
			bits[k][r] = true
		}
	}
	frame, err := cfg.Modulate(bits)
	if err != nil {
		t.Fatal(err)
	}
	perRowTotal := 0.0
	for k := range frame.Power {
		perRowTotal += frame.Power[k][0]
	}
	if perRowTotal > cfg.LaserPowerMW {
		t.Fatalf("frame power %g mW exceeds pump %g mW", perRowTotal, cfg.LaserPowerMW)
	}
}

func TestEyeOpeningShrinksWithK(t *testing.T) {
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8, 16} {
		cfg := DefaultTransmitterConfig(k, 64)
		eye := cfg.WorstCaseEyeOpening()
		if eye >= prev {
			t.Fatalf("eye not shrinking at K=%d: %g >= %g", k, eye, prev)
		}
		if eye <= 0 {
			t.Fatalf("K=%d undecodable at default isolation", k)
		}
		prev = eye
	}
}

func TestEyeClosesAtPoorIsolation(t *testing.T) {
	cfg := DefaultTransmitterConfig(16, 64)
	cfg.ChannelIsolationDB = -8 // terrible demux
	if eye := cfg.WorstCaseEyeOpening(); eye > 0 {
		t.Fatalf("eye should close at -8 dB isolation with K=16, got %g", eye)
	}
}

// Property: round trip holds for any capacity and bit pattern at
// default (sane) optics.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(MaxWDMCapacity)
		rows := 1 + rng.Intn(40)
		cfg := DefaultTransmitterConfig(k, rows)
		nvec := 1 + rng.Intn(k)
		bits := make([][]bool, nvec)
		for i := range bits {
			bits[i] = make([]bool, rows)
			for r := range bits[i] {
				bits[i][r] = rng.Intn(2) == 1
			}
		}
		frame, err := cfg.Modulate(bits)
		if err != nil {
			return false
		}
		got, err := NewReceiver(cfg, rng).Demodulate(frame)
		if err != nil {
			return false
		}
		for i := range bits {
			for r := range bits[i] {
				if got[i][r] != bits[i][r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
