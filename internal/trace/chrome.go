package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// chromeEvent is one entry in the Chrome trace-event JSON array. Field
// order and encoding/json's sorted map keys make the export
// deterministic, which the golden and worker-invariance tests rely on.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	ID   *int64         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// usec converts recorded nanoseconds to the microseconds Chrome's ts/dur
// fields expect.
func usec(ns float64) float64 { return ns / 1e3 }

// WriteChrome serialises the recorder's snapshot as Chrome trace-event
// JSON (the format chrome://tracing and Perfetto load). Processes and
// tracks become pid/tid metadata; slices become complete ("X") events;
// flows become "s"/"f" arrow pairs (link-wait attribution); async spans
// become "b"/"e" pairs keyed by Seq (request spans); counters become
// "C" samples. Output is byte-deterministic for a deterministic
// producer.
func WriteChrome(w io.Writer, r *Recorder) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`+"\n")
		return err
	}
	tracks := r.Tracks()
	procs := r.Processes()
	events := r.Events()
	meta := r.Meta()

	proc := make(map[int32]int32, len(tracks)) // track id -> pid
	for _, t := range tracks {
		proc[t.ID] = t.Proc
	}

	evs := make([]chromeEvent, 0, 2*len(tracks)+2*len(events))
	for _, p := range procs {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: p.ID,
			Args: map[string]any{"name": p.Name},
		})
	}
	for _, t := range tracks {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: t.Proc, Tid: t.ID,
			Args: map[string]any{"name": t.Name},
		})
		// sort_index keeps registration order as display order.
		evs = append(evs, chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: t.Proc, Tid: t.ID,
			Args: map[string]any{"sort_index": t.ID},
		})
	}

	var flowID int64
	for _, ev := range events {
		pid := proc[ev.Track]
		name := r.Name(ev.Name)
		switch ev.Kind {
		case KindSlice:
			d := usec(ev.Dur)
			evs = append(evs, chromeEvent{
				Name: name, Ph: "X", Ts: usec(ev.Start), Dur: &d,
				Pid: pid, Tid: ev.Track,
				Args: sliceArgs(ev),
			})
		case KindInstant:
			evs = append(evs, chromeEvent{
				Name: name, Ph: "i", Ts: usec(ev.Start),
				Pid: pid, Tid: ev.Track, S: "t",
				Args: sliceArgs(ev),
			})
		case KindFlow:
			flowID++
			id := flowID
			dst := int32(ev.A)
			args := map[string]any{"seq": ev.Seq, "wait_ns": ev.Dur}
			evs = append(evs, chromeEvent{
				Name: name, Cat: "wait", Ph: "s", Ts: usec(ev.Start),
				Pid: pid, Tid: ev.Track, ID: &id, Args: args,
			})
			evs = append(evs, chromeEvent{
				Name: name, Cat: "wait", Ph: "f", Ts: usec(ev.Start + ev.Dur),
				Pid: proc[dst], Tid: dst, ID: &id, BP: "e", Args: args,
			})
		case KindAsync:
			id := ev.Seq
			args := sliceArgs(ev)
			evs = append(evs, chromeEvent{
				Name: name, Cat: "span", Ph: "b", Ts: usec(ev.Start),
				Pid: pid, Tid: ev.Track, ID: &id, Args: args,
			})
			evs = append(evs, chromeEvent{
				Name: name, Cat: "span", Ph: "e", Ts: usec(ev.Start + ev.Dur),
				Pid: pid, Tid: ev.Track, ID: &id,
			})
		case KindCounter:
			evs = append(evs, chromeEvent{
				Name: name, Ph: "C", Ts: usec(ev.Start),
				Pid: pid, Tid: ev.Track,
				Args: map[string]any{"value": ev.A},
			})
		}
	}

	out := chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"}
	if len(meta) > 0 || r.Dropped() > 0 {
		out.OtherData = make(map[string]string, len(meta)+1)
		for _, kv := range meta {
			out.OtherData[kv.Key] = kv.Value
		}
		if d := r.Dropped(); d > 0 {
			out.OtherData["dropped_events"] = strconv.FormatInt(d, 10)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// sliceArgs packs the event payload into Chrome args; zero payloads are
// elided so timelines stay readable.
func sliceArgs(ev Event) map[string]any {
	args := map[string]any{"seq": ev.Seq}
	if ev.A != 0 {
		args["a"] = ev.A
	}
	if ev.B != 0 {
		args["b"] = ev.B
	}
	return args
}

// CSVHeader is the first line of every WriteCSV export.
const CSVHeader = "kind,pid,tid,track,name,seq,start_ns,dur_ns,a,b"

// WriteCSV serialises the recorder's snapshot as a flat CSV — one row
// per event — for spreadsheet and pandas-style analysis. Same
// determinism contract as WriteChrome.
func WriteCSV(w io.Writer, r *Recorder) error {
	if _, err := io.WriteString(w, CSVHeader+"\n"); err != nil {
		return err
	}
	if r == nil {
		return nil
	}
	tracks := r.Tracks()
	proc := make(map[int32]int32, len(tracks))
	tname := make(map[int32]string, len(tracks))
	for _, t := range tracks {
		proc[t.ID] = t.Proc
		tname[t.ID] = t.Name
	}
	for _, ev := range r.Events() {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%s,%s,%d,%s,%s,%s,%s\n",
			ev.Kind, proc[ev.Track], ev.Track,
			csvQuote(tname[ev.Track]), csvQuote(r.Name(ev.Name)), ev.Seq,
			ftoa(ev.Start), ftoa(ev.Dur), ftoa(ev.A), ftoa(ev.B))
		if err != nil {
			return err
		}
	}
	return nil
}

// ftoa renders a float with the shortest exact representation —
// strconv's 'g'/-1 is deterministic, so CSV exports golden-pin cleanly.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// csvQuote guards names that would break the row format.
func csvQuote(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '"' || s[i] == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}
