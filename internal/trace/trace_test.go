package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingBasics(t *testing.T) {
	r := New(4)
	if r.Capacity() != 4 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", r.Capacity(), r.Len())
	}
	p := r.AddProcess("engine")
	tr := r.AddTrack(p, "stage0")
	name := r.Intern("busy")
	if p != 1 || tr != 1 || name != 1 {
		t.Fatalf("ids: p=%d tr=%d name=%d", p, tr, name)
	}
	if again := r.Intern("busy"); again != name {
		t.Fatalf("Intern not idempotent: %d vs %d", again, name)
	}
	for i := 0; i < 3; i++ {
		r.Emit(Event{Kind: KindSlice, Track: tr, Name: name, Seq: int64(i), Start: float64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len=%d want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d — order lost", i, ev.Seq)
		}
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Seq: int64(i)})
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped=%d want 6", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len=%d want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Seq != want {
			t.Fatalf("event %d: seq=%d want %d (newest must survive)", i, ev.Seq, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("after Reset: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	r.Emit(Event{Seq: 99})
	if evs := r.Events(); len(evs) != 1 || evs[0].Seq != 99 {
		t.Fatalf("post-reset emit lost: %+v", evs)
	}
}

// TestNilRecorderSafe pins the disabled-recorder contract: every method
// on a nil *Recorder is a safe no-op.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.Emit(Event{})
	r.Reset()
	r.SetMeta("k", "v")
	if r.Intern("x") != 0 || r.AddProcess("p") != 0 || r.AddTrack(1, "t") != 0 {
		t.Fatal("nil recorder returned non-zero id")
	}
	if r.Len() != 0 || r.Dropped() != 0 || r.Capacity() != 0 {
		t.Fatal("nil recorder has state")
	}
	if r.Events() != nil || r.Tracks() != nil || r.Processes() != nil || r.Meta() != nil {
		t.Fatal("nil recorder returned data")
	}
	if r.Name(1) != "" {
		t.Fatal("nil recorder returned a name")
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil-recorder chrome export not JSON: %v", err)
	}
	buf.Reset()
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != CSVHeader {
		t.Fatalf("nil-recorder CSV = %q", got)
	}
}

// TestDisabledRecorderZeroAlloc pins the hot-path cost of tracing when
// it is off: the nil-receiver Emit must not allocate.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	ev := Event{Kind: KindSlice, Track: 1, Name: 1, Seq: 7, Start: 1, Dur: 2}
	if n := testing.AllocsPerRun(1000, func() {
		r.Emit(ev)
	}); n != 0 {
		t.Fatalf("disabled Emit allocates %v/op, want 0", n)
	}
}

// TestEnabledEmitZeroAlloc pins the steady-state cost when tracing is
// on: the ring is preallocated, so Emit must not allocate either.
func TestEnabledEmitZeroAlloc(t *testing.T) {
	r := New(64)
	ev := Event{Kind: KindSlice, Track: 1, Name: 1, Seq: 7, Start: 1, Dur: 2}
	if n := testing.AllocsPerRun(1000, func() {
		r.Emit(ev)
	}); n != 0 {
		t.Fatalf("enabled Emit allocates %v/op, want 0", n)
	}
}

func TestSetMetaLastWriteWins(t *testing.T) {
	r := New(4)
	r.SetMeta("batch", "16")
	r.SetMeta("makespan_ns", "100")
	r.SetMeta("batch", "256")
	m := r.Meta()
	if len(m) != 2 || m[0] != (MetaKV{"batch", "256"}) || m[1] != (MetaKV{"makespan_ns", "100"}) {
		t.Fatalf("meta = %+v", m)
	}
}

func TestWriteChromeShape(t *testing.T) {
	r := New(16)
	p := r.AddProcess("MLP-S on EinsteinBarrier")
	st := r.AddTrack(p, "stage[0] input")
	lk := r.AddTrack(p, "fwd link 0->1")
	busy := r.Intern("busy")
	wait := r.Intern("link-wait")
	done := r.Intern("sample-done")
	span := r.Intern("request")
	q := r.Intern("queue-depth")

	r.Emit(Event{Kind: KindSlice, Track: st, Name: busy, Seq: 0, Start: 0, Dur: 100, A: 3})
	r.Emit(Event{Kind: KindFlow, Track: st, Name: wait, Seq: 0, Start: 100, Dur: 25, A: float64(lk)})
	r.Emit(Event{Kind: KindInstant, Track: st, Name: done, Seq: 0, Start: 150})
	r.Emit(Event{Kind: KindAsync, Track: lk, Name: span, Seq: 42, Start: 10, Dur: 200, B: 8})
	r.Emit(Event{Kind: KindCounter, Track: lk, Name: q, Start: 5, A: 3})
	r.SetMeta("batch", "1")

	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]string
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export not JSON: %v\n%s", err, buf.String())
	}
	if parsed.OtherData["batch"] != "1" {
		t.Fatalf("otherData = %v", parsed.OtherData)
	}
	count := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		count[ev["ph"].(string)]++
	}
	// 1 process_name + 2 thread_name + 2 thread_sort_index metadata.
	want := map[string]int{"M": 5, "X": 1, "s": 1, "f": 1, "i": 1, "b": 1, "e": 1, "C": 1}
	for ph, n := range want {
		if count[ph] != n {
			t.Fatalf("ph %q: got %d want %d (all: %v)", ph, count[ph], n, count)
		}
	}
	// Flow source/destination must land on the right tracks with
	// matching ids so the arrow renders.
	var src, dst map[string]any
	for _, ev := range parsed.TraceEvents {
		switch ev["ph"] {
		case "s":
			src = ev
		case "f":
			dst = ev
		}
	}
	if src["id"] != dst["id"] {
		t.Fatalf("flow ids differ: %v vs %v", src["id"], dst["id"])
	}
	if int32(src["tid"].(float64)) != st || int32(dst["tid"].(float64)) != lk {
		t.Fatalf("flow tracks: s tid=%v f tid=%v want %d -> %d", src["tid"], dst["tid"], st, lk)
	}
	if dst["ts"].(float64) != usec(125) {
		t.Fatalf("flow end ts=%v want %v", dst["ts"], usec(125))
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := New(8)
		p := r.AddProcess("p")
		tr := r.AddTrack(p, "t")
		n := r.Intern("e")
		for i := 0; i < 12; i++ { // overflow on purpose
			r.Emit(Event{Kind: KindSlice, Track: tr, Name: n, Seq: int64(i), Start: float64(i), Dur: 1})
		}
		r.SetMeta("k", "v")
		return r
	}
	var a, b bytes.Buffer
	if err := WriteChrome(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recorders exported different bytes")
	}
	a.Reset()
	b.Reset()
	if err := WriteCSV(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recorders exported different CSV bytes")
	}
}

func TestWriteCSVShape(t *testing.T) {
	r := New(8)
	p := r.AddProcess("p")
	tr := r.AddTrack(p, "with,comma")
	n := r.Intern("busy")
	r.Emit(Event{Kind: KindSlice, Track: tr, Name: n, Seq: 3, Start: 1.5, Dur: 2.25, A: 4, B: 0.5})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	if lines[0] != CSVHeader {
		t.Fatalf("header = %q", lines[0])
	}
	want := `slice,1,1,"with,comma",busy,3,1.5,2.25,4,0.5`
	if lines[1] != want {
		t.Fatalf("row = %q want %q", lines[1], want)
	}
}
