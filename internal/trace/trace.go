// Package trace is the engine-wide observability substrate: a
// deterministic, ring-buffered event recorder shared by the pipeline
// engine (stage occupancy, link bookings, contention waits), the
// serving subsystem (per-request spans, batch membership, lifetime
// transitions), and the lifetime evaluator (canary/recalibration
// traces). Recorded timelines export as Chrome-trace JSON (loadable in
// chrome://tracing and Perfetto) and as a flat CSV (chrome.go).
//
// Design rules:
//
//   - Disabled is free: every emission site guards on a nil *Recorder,
//     and Emit itself is a nil-safe no-op, so an untraced run performs
//     zero allocations and one predicted-not-taken branch per site
//     (pinned by TestDisabledRecorderZeroAlloc and the BenchmarkTrace
//     regression gate).
//   - Enabled is allocation-free in steady state: the ring buffer is
//     allocated once at construction and events are fixed-size values;
//     names are interned up front, so no strings flow through Emit.
//   - Deterministic: events carry simulated or caller-supplied times
//     and are stored in emission order. A deterministic producer (the
//     pipeline engine) therefore yields byte-identical exports at any
//     worker count — the same contract every engine result obeys.
//   - Ring overflow keeps the NEWEST events: when the buffer is full
//     the oldest event is overwritten and Dropped() counts the loss.
//     A serving ring is a sliding window over recent traffic; an
//     engine export sizes the ring to the schedule up front
//     (sim.Engine.TraceEventsPerSample) so nothing drops.
package trace

import "sync"

// Kind classifies an event for the writers.
type Kind uint8

const (
	// KindSlice is a complete interval on its track (Chrome "X").
	KindSlice Kind = iota
	// KindInstant is a point event on its track (Chrome "i").
	KindInstant
	// KindFlow is a contention wait: an arrow from (Track, Start) to
	// (track A, Start+Dur) — Chrome "s"/"f" flow pair. A holds the
	// destination track id.
	KindFlow
	// KindAsync is an interval that may overlap others on the same
	// track (Chrome "b"/"e" async pair keyed by Seq) — per-request
	// serving spans.
	KindAsync
	// KindCounter is a sampled value A at Start (Chrome "C").
	KindCounter
)

// String names the kind for the CSV export.
func (k Kind) String() string {
	switch k {
	case KindSlice:
		return "slice"
	case KindInstant:
		return "instant"
	case KindFlow:
		return "flow"
	case KindAsync:
		return "async"
	case KindCounter:
		return "counter"
	}
	return "unknown"
}

// Event is one recorded observation. Times are nanoseconds on the
// producer's own axis (simulated ns for the engine, wall-clock ns since
// server start for serving spans, served samples for lifetime traces —
// the track's process names the axis).
type Event struct {
	Kind  Kind
	Track int32 // track id from AddTrack
	Name  int32 // interned name id from Intern
	Seq   int64 // sample index / request id / batch sequence
	Start float64
	Dur   float64
	// A and B are kind-specific payloads: flow destination track (A,
	// KindFlow), wait/queue ns, batch size, accuracy — the writers
	// surface them as args.
	A, B float64
}

// Track is one named timeline row (a Chrome thread).
type Track struct {
	Proc int32  // owning process id from AddProcess
	ID   int32  // track id, unique across the recorder
	Name string // display name
}

// Process is one group of tracks (a Chrome process) — a model on the
// fabric, a serving front end, a lifetime run.
type Process struct {
	ID   int32
	Name string
}

// Recorder is the ring-buffered event store. The zero value is NOT
// usable — build one with New. A nil *Recorder is the disabled
// recorder: every method is a safe no-op (Emit, Intern, …), which is
// what keeps untraced hot paths branch-cheap.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // live events in the ring
	dropped int64

	names   []string
	nameIdx map[string]int32
	procs   []Process
	tracks  []Track
	meta    []MetaKV
}

// MetaKV is one exported metadata pair (batch fill, makespan, model
// name, …) — an ordered list, not a map, so exports are deterministic.
type MetaKV struct {
	Key, Value string
}

// DefaultCapacity is the ring size when New is given cap <= 0: large
// enough for a serving window or a mid-size batch timeline, small
// enough (~3.5 MB) to leave resident in a server.
const DefaultCapacity = 1 << 16

// New builds a recorder with the given ring capacity (<= 0 selects
// DefaultCapacity). The ring is allocated eagerly so Emit never
// allocates.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		buf:     make([]Event, capacity),
		names:   []string{""}, // id 0 = unnamed
		nameIdx: map[string]int32{"": 0},
	}
}

// Enabled reports whether the recorder records (false on nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Intern registers a display name and returns its id. Call at setup
// time, not on hot paths. Nil-safe (returns 0).
func (r *Recorder) Intern(s string) int32 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.nameIdx[s]; ok {
		return id
	}
	id := int32(len(r.names))
	r.names = append(r.names, s)
	r.nameIdx[s] = id
	return id
}

// Name returns the interned string for an id ("" when unknown).
func (r *Recorder) Name(id int32) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || int(id) >= len(r.names) {
		return ""
	}
	return r.names[id]
}

// AddProcess registers a track group and returns its process id.
// Nil-safe (returns 0).
func (r *Recorder) AddProcess(name string) int32 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := int32(len(r.procs) + 1) // Chrome pids start at 1
	r.procs = append(r.procs, Process{ID: id, Name: name})
	return id
}

// AddTrack registers a timeline row under a process and returns its
// track id (unique across the whole recorder). Nil-safe (returns 0).
func (r *Recorder) AddTrack(proc int32, name string) int32 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := int32(len(r.tracks) + 1)
	r.tracks = append(r.tracks, Track{Proc: proc, ID: id, Name: name})
	return id
}

// SetMeta records an exported metadata pair (last write wins).
func (r *Recorder) SetMeta(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.meta {
		if r.meta[i].Key == key {
			r.meta[i].Value = value
			return
		}
	}
	r.meta = append(r.meta, MetaKV{Key: key, Value: value})
}

// Emit records one event. Nil-safe no-op when the recorder is disabled;
// allocation-free when enabled. When the ring is full the oldest event
// is overwritten (Dropped counts the overwrites).
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.buf[r.start] = ev
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
		r.dropped++
	} else {
		i := r.start + r.n
		if i >= len(r.buf) {
			i -= len(r.buf)
		}
		r.buf[i] = ev
		r.n++
	}
	r.mu.Unlock()
}

// Len is the number of live events in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped counts events overwritten by ring overflow.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Capacity is the ring size.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Events returns the live events oldest-first (a copy).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	head := copy(out, r.buf[r.start:min(r.start+r.n, len(r.buf))])
	copy(out[head:], r.buf[:r.n-head])
	return out
}

// Tracks returns the registered tracks (a copy).
func (r *Recorder) Tracks() []Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Track(nil), r.tracks...)
}

// Processes returns the registered processes (a copy).
func (r *Recorder) Processes() []Process {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Process(nil), r.procs...)
}

// Meta returns the metadata pairs in insertion order (a copy).
func (r *Recorder) Meta() []MetaKV {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]MetaKV(nil), r.meta...)
}

// Reset clears the ring and the drop counter, keeping the registered
// names, tracks, processes and metadata — re-run the same producer
// into the same topology.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.start, r.n, r.dropped = 0, 0, 0
}
